# SCIERA reproduction — build/verify entry points.
#
# `make verify` is the full pre-merge gate: compile everything, the
# race-enabled test suite (includes the allocation guards and telemetry
# conservation tests), vet, and a gofmt cleanliness check.

GO ?= go

.PHONY: all build test race vet fmt-check alloc-guard verify bench bench-micro bench-campaign reference

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# The allocation guards skip under -race (its instrumentation
# allocates), so verify runs them separately without it.
alloc-guard:
	$(GO) test -count=1 -run ZeroAlloc . ./internal/simnet

verify: build race alloc-guard vet fmt-check
	@echo "verify: OK"

bench: bench-micro bench-campaign

bench-micro:
	$(GO) test -run xxx -bench . -benchmem . ./internal/simnet ./internal/combinator

# Times the full-scale measurement campaign at one worker and at
# NumCPU workers, checks the figure outputs are byte-identical, and
# refreshes BENCH_campaign.json.
bench-campaign:
	$(GO) run ./cmd/campaignbench -out BENCH_campaign.json

# Regenerates the committed reference run; diff must be empty.
reference:
	$(GO) run ./cmd/experiments -all -seed 42 > /tmp/sciera-run.txt
	diff docs/reference-run.txt /tmp/sciera-run.txt
