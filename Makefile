# SCIERA reproduction — build/verify entry points.
#
# `make verify` is the full pre-merge gate: compile everything, the
# race-enabled test suite (includes the allocation guards and telemetry
# conservation tests), vet, and a gofmt cleanliness check.

GO ?= go

.PHONY: all build test race vet fmt-check alloc-guard doc-check scenario-check snapshot-check verify bench bench-micro bench-campaign bench-signing bench-dataplane bench-load bench-control bench-setup reference reference-pki

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector is ~20x on a single-core host and the experiments
# package runs dozens of full campaigns; the default 10m per-package
# timeout is not enough there.
race:
	$(GO) test -race -timeout 40m ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# The allocation guards skip under -race (its instrumentation
# allocates), so verify runs them separately without it. Covers the
# router fast path (single-packet and batched), the simulator, the
# warm chain-cache verify path, the daemon's warm combine-cache
# lookup, and path lookups on a snapshot-cloned replica.
alloc-guard:
	$(GO) test -count=1 -run ZeroAlloc . ./internal/simnet ./internal/cppki ./internal/daemon ./internal/core

# Every internal package must carry a godoc package comment: the
# architecture guide (docs/architecture.md) leans on them as the
# per-package reference, so a missing one is a docs regression.
doc-check:
	@missing=""; \
	for d in internal/*/; do \
		ok=0; \
		for f in $$d*.go; do \
			case "$$f" in *_test.go) continue;; esac; \
			[ -e "$$f" ] || continue; \
			if grep -B1 -m1 '^package ' "$$f" | head -1 | grep -q '^//'; then ok=1; break; fi; \
		done; \
		if [ "$$ok" -eq 0 ]; then missing="$$missing $$d"; fi; \
	done; \
	if [ -n "$$missing" ]; then echo "doc-check: missing package comments:$$missing"; exit 1; fi; \
	echo "doc-check: OK"

# Scenario hygiene (docs/scenarios.md): every committed scenario file
# must load and validate; scenarios/sciera.json must stay in sync with
# the builtin it mirrors; and a 1-day quick campaign must run end to end
# on a freshly generated multi-ISD topology.
scenario-check:
	@for f in scenarios/*.json; do \
		$(GO) run ./cmd/experiments -scenario-dump -scenario "$$f" > /dev/null || exit 1; \
		echo "scenario-check: $$f loads and validates"; \
	done
	@$(GO) run ./cmd/experiments -scenario-dump -scenario sciera | diff -u scenarios/sciera.json - \
		|| { echo "scenario-check: scenarios/sciera.json is out of sync with the builtin (regenerate with -scenario-dump)"; exit 1; }
	@$(GO) run ./cmd/experiments -quick -run fig5 -scenario gen:isds=3,ases=100,seed=1 > /dev/null
	@echo "scenario-check: OK"

# Snapshot round-trip hygiene: snapshot -> serialize -> load -> clone
# must reproduce the cold campaign byte for byte, across seeds and on
# both the builtin and a generated scenario.
snapshot-check:
	$(GO) test -count=1 -run 'TestSnapshotWarmStartByteIdentical|TestSnapshotFileRoundTrip' ./internal/core ./internal/experiments
	@echo "snapshot-check: OK"

verify: build race alloc-guard vet fmt-check doc-check scenario-check snapshot-check
	@echo "verify: OK"

bench: bench-micro bench-campaign bench-signing bench-dataplane bench-load bench-control bench-setup

# Replica warm-start: N independent convergences (cold) vs one
# convergence + N copy-on-write snapshot clones (warm) on a generated
# 200-AS topology, snapshot-cloned campaigns byte-identity-checked at
# 1/2/4/8 workers, warm setup speedup gated at >= 5x; refreshes
# BENCH_setup.json.
bench-setup:
	$(GO) run ./cmd/campaignbench -setup -out BENCH_setup.json

bench-micro:
	$(GO) test -run xxx -bench . -benchmem . ./internal/simnet ./internal/combinator ./internal/segment ./internal/beacon

# Times the full-scale measurement campaign at one worker and at
# NumCPU workers, checks the figure outputs are byte-identical, and
# refreshes BENCH_campaign.json.
bench-campaign:
	$(GO) run ./cmd/campaignbench -out BENCH_campaign.json

# The signed-control-plane ablation: the full campaign with and without
# -pki, byte-identity asserted, signed/unsigned wall ratio checked
# against the 1.3x budget; refreshes BENCH_signing.json.
bench-signing:
	$(GO) run ./cmd/campaignbench -signing -workers 1 -out BENCH_signing.json

# Batched data-plane pps at batch=1/8/32 against the single-packet
# baseline (>= 5x at batch=32 asserted), plus the mixed-burst
# determinism cross-check at several batch-worker counts; refreshes
# BENCH_dataplane.json.
bench-dataplane:
	$(GO) run ./cmd/dataplanebench -out BENCH_dataplane.json

# The million-endpoint flow-level load run: open-loop traffic holding
# >100k flows in flight from >2M simulated endpoints, run once per
# scheduler (binary heap vs calendar queue) with exact workload
# agreement asserted; refreshes BENCH_load.json.
bench-load:
	$(GO) run ./cmd/loadbench -out BENCH_load.json

# Control-plane scale-out on generated 50/100/200-AS topologies:
# path-lookup latency in scan / indexed / memoized-warm modes (warm
# must beat the linear-scan baseline by >= 5x at 200 ASes) plus the
# best-K-vs-unbounded beacon round ablation; refreshes
# BENCH_control.json.
bench-control:
	$(GO) run ./cmd/controlbench -out BENCH_control.json

# Regenerates the committed reference run; diff must be empty.
reference:
	$(GO) run ./cmd/experiments -all -seed 42 > /tmp/sciera-run.txt
	diff docs/reference-run.txt /tmp/sciera-run.txt

# Same, with the signed control plane: -pki must not change a byte.
reference-pki:
	$(GO) run ./cmd/experiments -all -seed 42 -pki > /tmp/sciera-run-pki.txt
	diff docs/reference-run.txt /tmp/sciera-run-pki.txt
