module sciera

go 1.22
