// Netcat is the third enablement case study (Section 5.2 / Appendix G):
// a UDP netcat whose sockets are drop-in replaced with SCION sockets —
// ListenUDP/DialUDP instead of the net package, nothing else changes.
//
//	go run ./examples/netcat            # demo: server + client in one process
//	go run ./examples/netcat -listen    # server only (prints its address)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"sciera/internal/addr"
	"sciera/internal/core"
	"sciera/internal/pan"
	"sciera/internal/simnet"
	"sciera/internal/topology"
)

var listenOnly = flag.Bool("listen", false, "run only the listener")

func main() {
	flag.Parse()

	// Substrate: two ASes over loopback UDP.
	topo := topology.New()
	a := addr.MustParseIA("71-1")
	b := addr.MustParseIA("71-2")
	must(topo.AddAS(topology.ASInfo{IA: a, Core: true}))
	must(topo.AddAS(topology.ASInfo{IA: b, Core: true}))
	_, err := topo.AddLink(topology.LinkEnd{IA: a}, topology.LinkEnd{IA: b}, topology.LinkCore, 3, "")
	must(err)
	net := simnet.NewUDPNet()
	defer net.Close()
	n, err := core.Build(topo, net, core.Options{Seed: 1})
	must(err)
	defer n.Close()

	dB, err := n.NewDaemon(b)
	must(err)
	hostB := pan.WithDaemon(net, dB)

	// The netcat listener: with the plain net package this would be
	// net.ListenUDP("udp", ...); the SCION version is the same shape.
	server, err := hostB.ListenUDP(0)
	must(err)
	defer server.Close()
	fmt.Printf("listening on %s\n", server.LocalAddr())
	go func() {
		for {
			msg, err := server.ReadFrom()
			if err != nil {
				return
			}
			fmt.Printf("< %s: %s", msg.From, msg.Payload)
			_, _ = server.WriteTo(msg.Payload, msg.From) // echo back
		}
	}()
	if *listenOnly {
		select {}
	}

	// The netcat dialer: net.DialUDP becomes host.DialUDP.
	dA, err := n.NewDaemon(a)
	must(err)
	hostA := pan.WithDaemon(net, dA)
	client, err := hostA.DialUDP(server.LocalAddr())
	must(err)
	defer client.Close()

	lines := []string{"hello over SCION\n", "still feels like netcat\n"}
	if fi, err := os.Stdin.Stat(); err == nil && fi.Mode()&os.ModeCharDevice == 0 {
		// Piped input: forward it instead of the demo lines.
		lines = nil
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			lines = append(lines, sc.Text()+"\n")
		}
	}
	for _, line := range lines {
		if _, err := client.Write([]byte(line)); err != nil {
			log.Fatal(err)
		}
		reply, err := client.Read()
		must(err)
		fmt.Printf("> echoed: %s", strings.TrimSuffix(string(reply), "\n")+"\n")
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
