// Peering: demonstrate SCION's shortcut and peering-link paths
// (Section 2's "shortcuts and utilization of peering links"). Two
// research networks hang off different cores but run a direct peering
// circuit; two departments share a campus AS below the core. The
// example shows how the combinator surfaces both non-core crossings,
// how much latency they save over the core route, and that traffic
// actually flows across them.
//
//	go run ./examples/peering
package main

import (
	"fmt"
	"log"
	"time"

	"sciera/internal/addr"
	"sciera/internal/core"
	"sciera/internal/pan"
	"sciera/internal/simnet"
	"sciera/internal/topology"
)

func main() {
	// Topology: two cores 40ms apart; netA and netB peer directly
	// (6ms); the campus AS connects two departments (2ms each).
	//
	//	   core1 ========== core2
	//	   /    \              \
	//	campus   netA --peer-- netB
	//	 /  \
	//	dep1 dep2
	topo := topology.New()
	core1 := addr.MustParseIA("71-1")
	core2 := addr.MustParseIA("71-2")
	netA := addr.MustParseIA("71-10")
	netB := addr.MustParseIA("71-11")
	campus := addr.MustParseIA("71-20")
	dep1 := addr.MustParseIA("71-21")
	dep2 := addr.MustParseIA("71-22")

	for _, as := range []struct {
		ia   addr.IA
		core bool
		name string
	}{
		{core1, true, "core-1"}, {core2, true, "core-2"},
		{netA, false, "net-a"}, {netB, false, "net-b"},
		{campus, false, "campus"}, {dep1, false, "dep-1"}, {dep2, false, "dep-2"},
	} {
		must(topo.AddAS(topology.ASInfo{IA: as.ia, Core: as.core, Name: as.name}))
	}
	link := func(a, b addr.IA, typ topology.LinkType, ms float64) {
		_, err := topo.AddLink(topology.LinkEnd{IA: a}, topology.LinkEnd{IA: b}, typ, ms, "")
		must(err)
	}
	link(core1, core2, topology.LinkCore, 40)
	link(core1, netA, topology.LinkParent, 10)
	link(core2, netB, topology.LinkParent, 10)
	link(netA, netB, topology.LinkPeer, 6) // the peering circuit
	link(core1, campus, topology.LinkParent, 8)
	link(campus, dep1, topology.LinkParent, 2)
	link(campus, dep2, topology.LinkParent, 2)

	sim := simnet.NewSim(time.Now())
	n, err := core.Build(topo, sim, core.Options{Seed: 7})
	must(err)
	defer n.Close()

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); sim.RunLive(stop) }()
	defer func() { close(stop); <-done }()

	// --- Peering link: netA -> netB ---------------------------------
	fmt.Println("netA -> netB (peering circuit between the networks):")
	for _, p := range n.Paths(netA, netB) {
		kind := "via core"
		if p.Raw.Infos[0].Peer {
			kind = "PEERING"
		}
		fmt.Printf("  %-8s %d hop(s), %5.1f ms: %s\n", kind, p.NumHops(), p.LatencyMS, p.Fingerprint)
	}

	// --- Shortcut: dep1 -> dep2 -------------------------------------
	fmt.Println("dep1 -> dep2 (shortcut at the shared campus AS):")
	for _, p := range n.Paths(dep1, dep2) {
		kind := "via core"
		if len(p.ASes()) == 3 && p.ASes()[1] == campus {
			kind = "SHORTCUT"
		}
		fmt.Printf("  %-8s %d hop(s), %5.1f ms: %s\n", kind, p.NumHops(), p.LatencyMS, p.Fingerprint)
	}

	// --- And the packets really take them ---------------------------
	dB, err := n.NewDaemon(netB)
	must(err)
	hostB := pan.WithDaemon(sim, dB)
	server, err := hostB.ListenUDP(0)
	must(err)
	defer server.Close()
	go func() {
		for {
			msg, err := server.ReadFrom()
			if err != nil {
				return
			}
			_, _ = server.WriteTo(append([]byte("peered: "), msg.Payload...), msg.From)
		}
	}()

	dA, err := n.NewDaemon(netA)
	must(err)
	hostA := pan.WithDaemon(sim, dA)
	// Fastest picks the 6ms peering circuit over the 60ms core route.
	client, err := hostA.DialUDP(server.LocalAddr(), pan.WithPolicy(pan.Fastest{}))
	must(err)
	defer client.Close()

	start := sim.Now() // virtual clock: the simulator compresses real time
	_, err = client.Write([]byte("hello neighbor"))
	must(err)
	reply, err := client.Read()
	must(err)
	rtt := sim.Now().Sub(start)
	fmt.Printf("client: %q, rtt %.0f ms (peering: ~12 ms; the core route would be ~120 ms)\n",
		reply, float64(rtt.Microseconds())/1000)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
