// Webclient is the bat case study of Section 5.2: a cURL-like command
// line client made SCION-native with a handful of lines — swapping the
// default http.Transport for shttp and adding path-selection flags
// (interactive, sequence, preference), exactly the diff of Appendix E.
//
//	go run ./examples/webclient                      # demo against a built-in server
//	go run ./examples/webclient -preference fastest  # choose the path policy
//	go run ./examples/webclient -interactive         # pick the path by hand
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"

	"sciera/internal/addr"
	"sciera/internal/combinator"
	"sciera/internal/core"
	"sciera/internal/pan"
	"sciera/internal/shttp"
	"sciera/internal/simnet"
	"sciera/internal/topology"
)

var (
	interactive = flag.Bool("interactive", false, "Prompt user for interactive path selection")
	sequence    = flag.String("sequence", "", "Sequence of space separated hop predicates to specify path")
	preference  = flag.String("preference", "", "Preference sorting order for paths. "+
		"Available: "+strings.Join(pan.AvailablePreferencePolicies, "|"))
)

// policyFromFlags mirrors pan.PolicyFromCommandline in the real PAN
// library: sequence > interactive > named preference.
func policyFromFlags() (pan.Policy, error) {
	if *sequence != "" {
		return pan.ParseSequence(*sequence), nil
	}
	if *interactive {
		return pan.Interactive{Choose: choosePath}, nil
	}
	return pan.PolicyByName(*preference)
}

func choosePath(paths []*combinator.Path) int {
	fmt.Println("available paths:")
	for i, p := range paths {
		fmt.Printf("  [%d] %d hops, %.1f ms: %s\n", i, p.NumHops(), p.LatencyMS, p.Fingerprint)
	}
	var idx int
	fmt.Print("path index: ")
	if _, err := fmt.Scanln(&idx); err != nil {
		return 0
	}
	return idx
}

func main() {
	flag.Parse()

	// Demo substrate: a two-AS network with parallel core links (so the
	// path flags have something to choose between) and a web server on
	// the far side.
	topo := topology.New()
	c1 := addr.MustParseIA("71-1")
	c2 := addr.MustParseIA("71-2")
	must(topo.AddAS(topology.ASInfo{IA: c1, Core: true, Name: "client-AS"}))
	must(topo.AddAS(topology.ASInfo{IA: c2, Core: true, Name: "server-AS"}))
	for i, lat := range []float64{8, 20} {
		_, err := topo.AddLink(topology.LinkEnd{IA: c1}, topology.LinkEnd{IA: c2},
			topology.LinkCore, lat, fmt.Sprintf("circuit-%d", i+1))
		must(err)
	}
	net := simnet.NewUDPNet()
	defer net.Close()
	n, err := core.Build(topo, net, core.Options{Seed: 1})
	must(err)
	defer n.Close()

	dServer, err := n.NewDaemon(c2)
	must(err)
	hostServer := pan.WithDaemon(net, dServer)
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "hello from %s over SCION (you came from %s)\n", c2, r.RemoteAddr)
	})
	srv, err := shttp.Serve(hostServer, 443, mux)
	must(err)
	defer srv.Close()

	// The SCION-enabling changes (Appendix E): a policy from CLI flags
	// and the shttp transport. Everything below is plain net/http.
	dClient, err := n.NewDaemon(c1)
	must(err)
	host := pan.WithDaemon(net, dClient)
	policy, err := policyFromFlags()
	must(err)
	client := &http.Client{Transport: shttp.NewTransport(host, policy)}

	rawURL := "http://" + srv.Addr().String() + "/"
	url := shttp.MangleSCIONAddrURL(rawURL)
	fmt.Printf("GET %s\n", rawURL)
	resp, err := client.Get(url)
	must(err)
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	must(err)
	fmt.Printf("%s %s\n%s", resp.Proto, resp.Status, body)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
