// Quickstart: bring up a small SCION network on real loopback UDP
// sockets, open a path-aware socket in one AS, and exchange messages
// with a server in another AS — the "it just works" experience of
// Section 4.1, in one file.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sciera/internal/addr"
	"sciera/internal/core"
	"sciera/internal/pan"
	"sciera/internal/simnet"
	"sciera/internal/topology"
)

func main() {
	// 1. Describe a topology: two core ASes and two leaves.
	//
	//	  core1 ==== core2
	//	    |          |
	//	  leafA      leafB
	topo := topology.New()
	core1 := addr.MustParseIA("71-1")
	core2 := addr.MustParseIA("71-2")
	leafA := addr.MustParseIA("71-10")
	leafB := addr.MustParseIA("71-11")
	must(topo.AddAS(topology.ASInfo{IA: core1, Core: true, Name: "core-1"}))
	must(topo.AddAS(topology.ASInfo{IA: core2, Core: true, Name: "core-2"}))
	must(topo.AddAS(topology.ASInfo{IA: leafA, Name: "leaf-a"}))
	must(topo.AddAS(topology.ASInfo{IA: leafB, Name: "leaf-b"}))
	link := func(a, b addr.IA, typ topology.LinkType) {
		_, err := topo.AddLink(topology.LinkEnd{IA: a}, topology.LinkEnd{IA: b}, typ, 5, "")
		must(err)
	}
	link(core1, core2, topology.LinkCore)
	link(core1, leafA, topology.LinkParent)
	link(core2, leafB, topology.LinkParent)

	// 2. Build the network on real UDP loopback sockets: border
	// routers, control services, beaconing — the whole stack.
	net := simnet.NewUDPNet()
	defer net.Close()
	n, err := core.Build(topo, net, core.Options{Seed: 1})
	must(err)
	defer n.Close()
	fmt.Println("network up: 4 ASes, full SCION control and data plane on loopback UDP")

	// 3. A server in leafB listens on a SCION/UDP socket.
	dB, err := n.NewDaemon(leafB)
	must(err)
	hostB := pan.WithDaemon(net, dB)
	server, err := hostB.ListenUDP(0)
	must(err)
	defer server.Close()
	go func() {
		for {
			msg, err := server.ReadFrom()
			if err != nil {
				return
			}
			fmt.Printf("server: %q from %s\n", msg.Payload, msg.From)
			_, _ = server.WriteTo(append([]byte("echo: "), msg.Payload...), msg.From)
		}
	}()

	// 4. A client in leafA inspects its paths and dials across.
	dA, err := n.NewDaemon(leafA)
	must(err)
	hostA := pan.WithDaemon(net, dA)
	client, err := hostA.DialUDP(server.LocalAddr(), pan.WithPolicy(pan.Fastest{}))
	must(err)
	defer client.Close()

	paths, err := client.Paths(leafB)
	must(err)
	fmt.Printf("client: %d path(s) to %s\n", len(paths), leafB)
	for _, p := range paths {
		fmt.Printf("  %d hops, %.1f ms one-way: %s\n", p.NumHops(), p.LatencyMS, p.Fingerprint)
	}

	if _, err := client.Write([]byte("hello sciera")); err != nil {
		log.Fatal(err)
	}
	reply, err := client.Read()
	must(err)
	fmt.Printf("client: got %q\n", reply)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
