// Sciencedmz demonstrates the SCIERA Science-DMZ of Section 4.7.1: a
// KREONET-like ring with capacity-limited parallel circuits, a
// LightningFilter protecting the transfer node, and a Hercules bulk
// transfer striping a dataset across disjoint paths — first over a
// single path, then over four, showing the aggregated throughput.
//
//	go run ./examples/sciencedmz
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"sciera/internal/addr"
	"sciera/internal/core"
	"sciera/internal/hercules"
	"sciera/internal/lightningfilter"
	"sciera/internal/pan"
	"sciera/internal/simnet"
	"sciera/internal/slayers"
	"sciera/internal/topology"
)

func main() {
	// Science-DMZ topology: the HPC site and the data source connect
	// through two cores joined by four parallel 200 Mbps circuits.
	topo := topology.New()
	c1 := addr.MustParseIA("71-2:0:3d") // Singapore core
	c2 := addr.MustParseIA("71-2:0:3e") // Amsterdam core
	hpc := addr.MustParseIA("71-50999") // KAUST-like HPC site
	src := addr.MustParseIA("71-2:0:18")
	must(topo.AddAS(topology.ASInfo{IA: c1, Core: true, Name: "core-SG"}))
	must(topo.AddAS(topology.ASInfo{IA: c2, Core: true, Name: "core-AMS"}))
	must(topo.AddAS(topology.ASInfo{IA: hpc, Name: "HPC site"}))
	must(topo.AddAS(topology.ASInfo{IA: src, Name: "data source"}))
	for i, name := range []string{"KREONET", "CAE-1", "KAUST-I", "KAUST-II"} {
		l, err := topo.AddLink(topology.LinkEnd{IA: c1}, topology.LinkEnd{IA: c2},
			topology.LinkCore, 80+float64(3*i), name)
		must(err)
		l.SetBandwidth(200)
	}
	la, err := topo.AddLink(topology.LinkEnd{IA: c1}, topology.LinkEnd{IA: src}, topology.LinkParent, 2, "")
	must(err)
	la.SetBandwidth(10_000)
	lb, err := topo.AddLink(topology.LinkEnd{IA: c2}, topology.LinkEnd{IA: hpc}, topology.LinkParent, 2, "")
	must(err)
	lb.SetBandwidth(10_000)

	// The DES enforces link capacities, so throughput numbers reflect
	// the circuits, not the host machine.
	sim := simnet.NewSim(time.Unix(1_737_000_000, 0))
	n, err := core.Build(topo, sim, core.Options{Seed: 7})
	must(err)
	defer n.Close()
	stop := make(chan struct{})
	go sim.RunLive(stop)
	defer close(stop)

	// The HPC border runs a LightningFilter: only authenticated traffic
	// from the collaboration's ISD reaches the transfer node.
	master := []byte("hpc-drkey-master")
	filter, err := lightningfilter.New(lightningfilter.Config{
		Local:       hpc,
		Master:      master,
		AllowedISDs: []addr.ISD{71},
		Now:         sim.Now,
	})
	must(err)
	demo := &slayers.Packet{
		Hdr: slayers.SCION{DstIA: hpc, SrcIA: src},
		UDP: &slayers.UDP{},
	}
	sealed, err := lightningfilter.Seal(master, sim.Now(), 3*time.Hour, src, []byte("dataset chunk"))
	must(err)
	demo.Payload = sealed
	fmt.Printf("lightningfilter verdict for authenticated packet: %v\n", filter.Check(demo))
	demo.Payload = []byte("probe")
	fmt.Printf("lightningfilter verdict for unauthenticated packet: %v\n", filter.Check(demo))

	// Hercules transfer: 2 MB dataset, single path vs four paths.
	dSrc, err := n.NewDaemon(src)
	must(err)
	dHpc, err := n.NewDaemon(hpc)
	must(err)
	hostSrc := pan.WithDaemon(sim, dSrc)
	hostHpc := pan.WithDaemon(sim, dHpc)
	recv, err := hercules.Receive(hostHpc, 0)
	must(err)
	defer recv.Close()

	data := make([]byte, 2<<20)
	rand.New(rand.NewSource(1)).Read(data)

	for _, paths := range []int{1, 4} {
		stats, err := hercules.Send(hostSrc, recv.Addr(), uint32(paths), data, hercules.Options{
			MaxPaths: paths,
			Window:   64,
			RTO:      400 * time.Millisecond,
		})
		must(err)
		res := <-recv.Results()
		fmt.Printf("transfer over %d path(s): %.1f Mbps (%d chunks, %d retransmits, %d bytes verified)\n",
			stats.PathsUsed, stats.ThroughputMbps, stats.Chunks, stats.Retransmits, len(res.Data))
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
