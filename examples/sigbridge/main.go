// Sigbridge demonstrates the SCION-IP gateway — the mechanism behind
// every *production* SCION use case the paper's introduction describes:
// "all the productive use cases make use of IP-to-SCION-to-IP
// translation by SCION-IP-Gateways (SIG), such that applications are
// unaware of the NGN communication."
//
// Two legacy IPv4 hosts exchange datagrams; neither contains a line of
// SCION code. Their SIGs encapsulate the traffic over the SCION
// inter-domain path — with hop-field MAC verification at every border
// router on the way.
//
//	go run ./examples/sigbridge
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"sciera/internal/addr"
	"sciera/internal/core"
	"sciera/internal/pan"
	"sciera/internal/sig"
	"sciera/internal/simnet"
	"sciera/internal/topology"
)

func main() {
	// A finance-network-like pair of ASes (the SSFN story): two sites
	// joined over two core ASes.
	topo := topology.New()
	c1 := addr.MustParseIA("64-1")
	c2 := addr.MustParseIA("64-2")
	bankA := addr.MustParseIA("64-100")
	bankB := addr.MustParseIA("64-200")
	must(topo.AddAS(topology.ASInfo{IA: c1, Core: true, Name: "core-1"}))
	must(topo.AddAS(topology.ASInfo{IA: c2, Core: true, Name: "core-2"}))
	must(topo.AddAS(topology.ASInfo{IA: bankA, Name: "site-A"}))
	must(topo.AddAS(topology.ASInfo{IA: bankB, Name: "site-B"}))
	link := func(a, b addr.IA, typ topology.LinkType) {
		_, err := topo.AddLink(topology.LinkEnd{IA: a}, topology.LinkEnd{IA: b}, typ, 4, "")
		must(err)
	}
	link(c1, c2, topology.LinkCore)
	link(c1, bankA, topology.LinkParent)
	link(c2, bankB, topology.LinkParent)

	sim := simnet.NewSim(time.Now())
	n, err := core.Build(topo, sim, core.Options{Seed: 3})
	must(err)
	defer n.Close()
	stop := make(chan struct{})
	go sim.RunLive(stop)
	defer close(stop)

	// One SIG per site, announcing its internal prefix to the peer.
	dA, err := n.NewDaemon(bankA)
	must(err)
	dB, err := n.NewDaemon(bankB)
	must(err)
	gwA, err := sig.New(pan.WithDaemon(sim, dA), sim)
	must(err)
	defer gwA.Close()
	gwB, err := sig.New(pan.WithDaemon(sim, dB), sim)
	must(err)
	defer gwB.Close()
	gwA.AddRoute(netip.MustParsePrefix("172.16.20.0/24"), gwB.SCIONAddr())
	gwB.AddRoute(netip.MustParsePrefix("172.16.10.0/24"), gwA.SCIONAddr())
	fmt.Println("SIGs up: 172.16.10.0/24 <-> 172.16.20.0/24 bridged over SCION")

	// Legacy applications: plain IP datagrams, zero SCION awareness.
	atm, err := sig.NewClient(sim, gwA, netip.MustParseAddr("172.16.10.5"))
	must(err)
	defer atm.Close()
	ledger, err := sig.NewClient(sim, gwB, netip.MustParseAddr("172.16.20.9"))
	must(err)
	defer ledger.Close()

	go func() {
		for {
			src, payload, err := ledger.Recv()
			if err != nil {
				return
			}
			fmt.Printf("ledger: %q from %s\n", payload, src)
			_ = ledger.Send(src, []byte("ack:"+string(payload)))
		}
	}()

	must(atm.Send(netip.MustParseAddrPort("172.16.20.9:7000"), []byte("withdrawal #42")))
	_, reply, err := atm.Recv()
	must(err)
	fmt.Printf("atm: got %q\n", reply)
	fmt.Printf("gateway A encapsulated %d, decapsulated %d packets\n",
		gwA.Metrics().Encapsulated.Load(), gwA.Metrics().Decapsulated.Load())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
