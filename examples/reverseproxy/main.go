// Reverseproxy is the Caddy-plugin case study (Section 5.2 / Appendix F):
// an existing HTTP application served over SCION through a small
// middleware that tags requests with X-SCION headers, exactly like the
// scion-caddy plugin.
//
//	go run ./examples/reverseproxy
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"

	"sciera/internal/addr"
	"sciera/internal/core"
	"sciera/internal/pan"
	"sciera/internal/shttp"
	"sciera/internal/simnet"
	"sciera/internal/topology"
)

// scionMiddleware is the plugin's ServeHTTP addition (Appendix F): tag
// whether the request arrived over SCION and from which address.
func scionMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := addr.ParseUDPAddr(r.RemoteAddr); err == nil {
			r.Header.Add("X-SCION", "on")
			r.Header.Add("X-SCION-Remote-Addr", r.RemoteAddr)
		} else {
			r.Header.Add("X-SCION", "off")
		}
		next.ServeHTTP(w, r)
	})
}

func main() {
	// Substrate: two ASes on loopback UDP.
	topo := topology.New()
	a := addr.MustParseIA("71-1")
	b := addr.MustParseIA("71-2")
	must(topo.AddAS(topology.ASInfo{IA: a, Core: true}))
	must(topo.AddAS(topology.ASInfo{IA: b, Core: true}))
	_, err := topo.AddLink(topology.LinkEnd{IA: a}, topology.LinkEnd{IA: b}, topology.LinkCore, 4, "")
	must(err)
	net := simnet.NewUDPNet()
	defer net.Close()
	n, err := core.Build(topo, net, core.Options{Seed: 1})
	must(err)
	defer n.Close()

	// The existing application: an ordinary http.Handler that knows
	// nothing about SCION.
	app := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "upstream says hi; X-SCION=%s remote=%s\n",
			r.Header.Get("X-SCION"), r.Header.Get("X-SCION-Remote-Addr"))
	})

	// The plugin: serve it over SCION with the middleware in front.
	dB, err := n.NewDaemon(b)
	must(err)
	hostB := pan.WithDaemon(net, dB)
	srv, err := shttp.Serve(hostB, 443, scionMiddleware(app))
	must(err)
	defer srv.Close()
	fmt.Printf("reverse proxy serving over SCION at %s\n", srv.Addr())

	// A SCION client hits it.
	dA, err := n.NewDaemon(a)
	must(err)
	hostA := pan.WithDaemon(net, dA)
	client := &http.Client{Transport: shttp.NewTransport(hostA, nil)}
	resp, err := client.Get("http://" + shttp.MangleSCIONAddrURL(srv.Addr().String()) + "/")
	must(err)
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	must(err)
	fmt.Printf("response: %s", body)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
