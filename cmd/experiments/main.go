// Command experiments regenerates the paper's tables and figures on the
// simulated SCIERA deployment.
//
// Usage:
//
//	experiments -all              # every experiment (full scale)
//	experiments -run fig5         # one experiment
//	experiments -quick -run fig6  # reduced scale for a fast look
//	experiments -list             # list experiment names
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sciera/internal/experiments"
)

func main() {
	var (
		all   = flag.Bool("all", false, "run every experiment")
		run   = flag.String("run", "", "run one experiment by name")
		quick = flag.Bool("quick", false, "reduced scale (shorter campaign, fewer runs)")
		seed  = flag.Int64("seed", 42, "random seed (fixed seeds reproduce EXPERIMENTS.md)")
		list  = flag.Bool("list", false, "list experiment names")
	)
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	switch {
	case *list:
		fmt.Println(strings.Join(experiments.Names, "\n"))
	case *all:
		if err := experiments.RunAll(os.Stdout, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case *run != "":
		if err := experiments.Run(os.Stdout, *run, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
