// Command experiments regenerates the paper's tables and figures on the
// simulated SCIERA deployment.
//
// Usage:
//
//	experiments -all              # every experiment (full scale)
//	experiments -run fig5         # one experiment
//	experiments -quick -run fig6  # reduced scale for a fast look
//	experiments -list             # list experiment names
//	experiments -all -workers 4   # shard the campaign across 4 workers
//	                              # (same bytes out, less wall clock)
//	experiments -all -pki         # signed+verified control plane
//	                              # (same bytes out, signed-overhead arm)
//	experiments -all -telemetry t.json   # also dump the campaign's telemetry
//	experiments -telemetry-report t.json # digest dump file(s) instead
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"sciera/internal/experiments"
	"sciera/internal/telemetry"
)

func main() {
	var (
		all     = flag.Bool("all", false, "run every experiment")
		run     = flag.String("run", "", "run one experiment by name")
		quick   = flag.Bool("quick", false, "reduced scale (shorter campaign, fewer runs)")
		seed    = flag.Int64("seed", 42, "random seed (fixed seeds reproduce EXPERIMENTS.md)")
		list    = flag.Bool("list", false, "list experiment names")
		telem   = flag.String("telemetry", "", "write the campaign's telemetry snapshot as JSON to this file")
		rep     = flag.String("telemetry-report", "", "print a report from telemetry dump file(s), comma-separated")
		workers = flag.Int("workers", runtime.NumCPU(), "parallel campaign workers (output is byte-identical for any count)")
		pki     = flag.Bool("pki", false, "sign and verify the control plane (output is byte-identical, wall time higher)")
	)
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Quick: *quick, TelemetryPath: *telem, Workers: *workers, WithPKI: *pki}
	switch {
	case *rep != "":
		var snaps []telemetry.Snapshot
		for _, path := range strings.Split(*rep, ",") {
			s, err := experiments.LoadTelemetry(strings.TrimSpace(path))
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			snaps = append(snaps, s)
		}
		experiments.TelemetryReport(os.Stdout, snaps...)
	case *list:
		fmt.Println(strings.Join(experiments.Names, "\n"))
	case *all:
		if err := experiments.RunAll(os.Stdout, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case *run != "":
		if err := experiments.Run(os.Stdout, *run, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
