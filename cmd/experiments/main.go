// Command experiments regenerates the paper's tables and figures on a
// simulated deployment — by default the built-in SCIERA reference
// scenario, or any scenario selected with -scenario.
//
// Usage:
//
//	experiments -all              # every experiment (full scale)
//	experiments -run fig5         # one experiment
//	experiments -quick -run fig6  # reduced scale for a fast look
//	experiments -list             # list experiment names
//	experiments -all -workers 4   # shard the campaign across 4 workers
//	                              # (same bytes out, less wall clock)
//	experiments -all -pki         # signed+verified control plane
//	                              # (same bytes out, signed-overhead arm)
//	experiments -all -telemetry t.json   # also dump the campaign's telemetry
//	experiments -telemetry-report t.json # digest dump file(s) instead
//	experiments -all -snapshot s.json    # persist/reuse the converged-state
//	                                     # snapshot (restart-and-resume)
//	experiments -all -cold-start         # every worker converges its own
//	                                     # replica (warm-start ablation)
//
// Scenario selection (see docs/scenarios.md):
//
//	experiments -all -scenario sciera              # builtin by name
//	experiments -all -scenario scenarios/foo.json  # scenario file
//	experiments -all -quick -scenario gen:ases=210,isds=3,seed=1
//	                                               # generated topology
//	experiments -list-scenarios                    # builtin names
//	experiments -scenario-dump -scenario gen:seed=7 > gen7.json
//	                                               # canonical JSON for diffing
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"sciera/internal/experiments"
	"sciera/internal/scenario"
	_ "sciera/internal/sciera" // registers the builtin "sciera" scenario
	"sciera/internal/telemetry"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run every experiment")
		run      = flag.String("run", "", "run one experiment by name")
		quick    = flag.Bool("quick", false, "reduced scale (shorter campaign, fewer runs)")
		seed     = flag.Int64("seed", 42, "random seed (fixed seeds reproduce EXPERIMENTS.md)")
		list     = flag.Bool("list", false, "list experiment names")
		telem    = flag.String("telemetry", "", "write the campaign's telemetry snapshot as JSON to this file")
		rep      = flag.String("telemetry-report", "", "print a report from telemetry dump file(s), comma-separated")
		workers  = flag.Int("workers", runtime.NumCPU(), "parallel campaign workers (output is byte-identical for any count)")
		pki      = flag.Bool("pki", false, "sign and verify the control plane (output is byte-identical, wall time higher)")
		scen     = flag.String("scenario", "", "scenario to run on: builtin name, gen:<spec>, or file path (default: sciera)")
		cold     = flag.Bool("cold-start", false, "force every campaign worker to converge independently (warm-start ablation; same bytes out)")
		snapPath = flag.String("snapshot", "", "persist/reuse the campaign's converged-state snapshot at this path (load if present, else converge once and write)")
		listScen = flag.Bool("list-scenarios", false, "list builtin scenario names")
		dumpScen = flag.Bool("scenario-dump", false, "print the resolved, validated scenario as canonical JSON and exit")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	if *listScen {
		fmt.Println(strings.Join(scenario.BuiltinNames(), "\n"))
		return
	}

	s, err := scenario.Resolve(*scen)
	if err != nil {
		fail(err)
	}
	if *dumpScen {
		buf, err := s.Canonical()
		if err != nil {
			fail(err)
		}
		os.Stdout.Write(buf)
		return
	}

	cfg := experiments.Config{
		Seed: *seed, Quick: *quick, TelemetryPath: *telem,
		Workers: *workers, WithPKI: *pki, Scenario: s,
		ColdStart: *cold, SnapshotPath: *snapPath,
	}
	switch {
	case *rep != "":
		var snaps []telemetry.Snapshot
		for _, path := range strings.Split(*rep, ",") {
			s, err := experiments.LoadTelemetry(strings.TrimSpace(path))
			if err != nil {
				fail(err)
			}
			snaps = append(snaps, s)
		}
		experiments.TelemetryReport(os.Stdout, snaps...)
	case *list:
		fmt.Println(strings.Join(experiments.Names, "\n"))
	case *all:
		if err := experiments.RunAll(os.Stdout, cfg); err != nil {
			fail(err)
		}
	case *run != "":
		if err := experiments.Run(os.Stdout, *run, cfg); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
