// Command multiping runs the Section 5.4 measurement campaign over the
// simulated SCIERA deployment in virtual time and writes the dataset —
// the reproduction of the scion-go-multiping data-collection pipeline.
//
//	multiping -out dataset.json                 # full 20-day campaign
//	multiping -days 2 -interval 10m -out d.json # shorter run
package main

import (
	"flag"
	"fmt"
	stdnet "net"
	"net/http"
	"os"
	"time"

	"sciera/internal/addr"
	"sciera/internal/core"
	"sciera/internal/multiping"
	"sciera/internal/sciera"
	"sciera/internal/simnet"
)

func main() {
	var (
		out         = flag.String("out", "multiping-dataset.json", "output dataset path")
		days        = flag.Int("days", sciera.CampaignDays, "campaign length in days")
		interval    = flag.Duration("interval", 5*time.Minute, "measurement interval")
		seed        = flag.Int64("seed", 42, "seed")
		stall       = flag.Bool("stall", true, "reproduce the tool's hourly ICMP stalls")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics on this TCP address while the campaign runs")
		telemDump   = flag.String("telemetry-dump", "", "write the final telemetry snapshot as JSON to this file")
	)
	flag.Parse()

	topo, err := sciera.Build()
	fatal(err)
	sim := simnet.NewSim(time.Unix(1_737_000_000, 0))
	n, err := core.Build(topo, sim, core.Options{Seed: *seed, BestPerOrigin: 14})
	fatal(err)
	defer n.Close()
	ipTopo, err := sciera.BuildIPPlane()
	fatal(err)

	fmt.Fprintf(os.Stderr, "running %d-day campaign from %d vantage ASes (virtual time)...\n",
		*days, len(sciera.VantageASes()))
	camp, err := multiping.NewCampaign(n, multiping.Config{
		Vantage:    sciera.VantageASes(),
		Interval:   *interval,
		Duration:   time.Duration(*days) * 24 * time.Hour,
		IPRTT:      func(src, dst addr.IA) float64 { return sciera.IPRTTms(ipTopo, src, dst) },
		StallModel: *stall,
		Seed:       *seed,
	})
	fatal(err)
	defer camp.Close()

	if *metricsAddr != "" {
		// Live scrape point: counters are atomics, so reading them
		// concurrently with the (virtual-time) campaign is safe.
		mux := http.NewServeMux()
		mux.Handle("/metrics", n.Telemetry().Handler())
		ln, err := stdnet.Listen("tcp", *metricsAddr)
		fatal(err)
		srv := &http.Server{Handler: mux}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics for the campaign's duration\n", ln.Addr())
	}

	start := time.Now()
	ds, err := camp.Run()
	fatal(err)
	fatal(ds.Save(*out))

	if *telemDump != "" {
		f, err := os.Create(*telemDump)
		fatal(err)
		fatal(n.Telemetry().SnapshotWithTrace(n.TraceRing()).WriteJSON(f))
		fatal(f.Close())
		fmt.Fprintf(os.Stderr, "wrote telemetry snapshot to %s\n", *telemDump)
	}

	scion, ip := ds.PingCDFs()
	fmt.Printf("wrote %s: %d interval records, %d SCMP probes (%.1fs wall clock)\n",
		*out, len(ds.Records), ds.Probes, time.Since(start).Seconds())
	fmt.Printf("SCION median %.1f ms / p90 %.1f ms; IP median %.1f ms / p90 %.1f ms\n",
		scion.Median(), scion.Percentile(90), ip.Median(), ip.Percentile(90))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
