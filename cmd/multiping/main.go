// Command multiping runs the Section 5.4 measurement campaign over a
// simulated deployment in virtual time and writes the dataset — the
// reproduction of the scion-go-multiping data-collection pipeline. By
// default it measures the built-in SCIERA scenario; -scenario swaps in
// any builtin, generated, or file-loaded scenario (the vantage set and
// pair ordering come from the scenario's vantage list).
//
//	multiping -out dataset.json                 # full 20-day campaign
//	multiping -days 2 -interval 10m -out d.json # shorter run
//	multiping -scenario gen:ases=210,isds=3,seed=1 -days 1 -out gen.json
package main

import (
	"flag"
	"fmt"
	stdnet "net"
	"net/http"
	"os"
	"time"

	"sciera/internal/addr"
	"sciera/internal/core"
	"sciera/internal/multiping"
	"sciera/internal/scenario"
	_ "sciera/internal/sciera" // registers the builtin "sciera" scenario
	"sciera/internal/simnet"
)

func main() {
	var (
		out         = flag.String("out", "multiping-dataset.json", "output dataset path")
		days        = flag.Int("days", 0, "campaign length in days (0: the scenario's campaign length)")
		interval    = flag.Duration("interval", 5*time.Minute, "measurement interval")
		seed        = flag.Int64("seed", 42, "seed")
		best        = flag.Int("best", 14, "beacons kept per origin in the control plane")
		stall       = flag.Bool("stall", true, "reproduce the tool's hourly ICMP stalls")
		scen        = flag.String("scenario", "", "scenario to measure: builtin name, gen:<spec>, or file path (default: sciera)")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics on this TCP address while the campaign runs")
		telemDump   = flag.String("telemetry-dump", "", "write the final telemetry snapshot as JSON to this file")
	)
	flag.Parse()

	s, err := scenario.Resolve(*scen)
	fatal(err)
	if *days <= 0 {
		*days = s.Campaign.Days
	}

	topo, err := s.Build()
	fatal(err)
	sim := simnet.NewSim(s.Campaign.Start())
	n, err := core.Build(topo, sim, core.Options{Seed: *seed, BestPerOrigin: *best})
	fatal(err)
	defer n.Close()

	// The commercial-Internet baseline; scenarios without an IP plane
	// record every interval as IP-missing (negative RTT).
	ipRTT := func(src, dst addr.IA) float64 { return -1 }
	if s.IPPlane != nil {
		ipTopo, err := s.BuildIPPlane()
		fatal(err)
		ipRTT = func(src, dst addr.IA) float64 { return s.IPRTTms(ipTopo, src, dst) }
	}

	fmt.Fprintf(os.Stderr, "running %d-day campaign on scenario %q from %d vantage ASes (virtual time)...\n",
		*days, s.Name, len(s.Vantage))
	camp, err := multiping.NewCampaign(n, multiping.Config{
		Vantage:    s.Vantage,
		Interval:   *interval,
		Duration:   time.Duration(*days) * 24 * time.Hour,
		IPRTT:      ipRTT,
		StallModel: *stall,
		Seed:       *seed,
	})
	fatal(err)
	defer camp.Close()

	if *metricsAddr != "" {
		// Live scrape point: counters are atomics, so reading them
		// concurrently with the (virtual-time) campaign is safe.
		mux := http.NewServeMux()
		mux.Handle("/metrics", n.Telemetry().Handler())
		ln, err := stdnet.Listen("tcp", *metricsAddr)
		fatal(err)
		srv := &http.Server{Handler: mux}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics for the campaign's duration\n", ln.Addr())
	}

	start := time.Now()
	ds, err := camp.Run()
	fatal(err)
	fatal(ds.Save(*out))

	if *telemDump != "" {
		f, err := os.Create(*telemDump)
		fatal(err)
		fatal(n.Telemetry().SnapshotWithTrace(n.TraceRing()).WriteJSON(f))
		fatal(f.Close())
		fmt.Fprintf(os.Stderr, "wrote telemetry snapshot to %s\n", *telemDump)
	}

	scion, ip := ds.PingCDFs()
	fmt.Printf("wrote %s: %d interval records, %d SCMP probes (%.1fs wall clock)\n",
		*out, len(ds.Records), ds.Probes, time.Since(start).Seconds())
	fmt.Printf("SCION median %.1f ms / p90 %.1f ms; IP median %.1f ms / p90 %.1f ms\n",
		scion.Median(), scion.Percentile(90), ip.Median(), ip.Percentile(90))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
