// Command sciera brings up the full SCIERA deployment in-process on
// real loopback UDP sockets and operates on it: list the topology, show
// paths between ASes (like `scion showpaths`), and ping across the
// network over the three multiping path types.
//
//	sciera -topo                         # AS and circuit inventory
//	sciera -showpaths 71-225,71-2:0:5c   # paths UVa -> UFMS
//	sciera -ping 71-20965,71-2:0:3b -n 4 # SCMP echo GEANT -> Daejeon
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sciera/internal/addr"
	"sciera/internal/combinator"
	"sciera/internal/core"
	"sciera/internal/pan"
	"sciera/internal/sciera"
	"sciera/internal/scmp"
	"sciera/internal/simnet"
)

func main() {
	var (
		topoFlag  = flag.Bool("topo", false, "print the deployment inventory")
		showpaths = flag.String("showpaths", "", "show paths: <src-ia>,<dst-ia>")
		ping      = flag.String("ping", "", "SCMP ping: <src-ia>,<dst-ia>")
		trace     = flag.String("traceroute", "", "SCMP traceroute: <src-ia>,<dst-ia>")
		count     = flag.Int("n", 3, "ping count")
		seed      = flag.Int64("seed", 42, "control plane seed")
	)
	flag.Parse()

	if *topoFlag {
		printTopo()
		return
	}
	if *showpaths == "" && *ping == "" && *trace == "" {
		flag.Usage()
		os.Exit(2)
	}

	topo, err := sciera.Build()
	fatal(err)
	net := simnet.NewUDPNet()
	defer net.Close()
	fmt.Fprintln(os.Stderr, "building the SCIERA network on loopback UDP (29 ASes)...")
	n, err := core.Build(topo, net, core.Options{Seed: *seed, BestPerOrigin: 14})
	fatal(err)
	defer n.Close()

	if *showpaths != "" {
		src, dst := parsePair(*showpaths)
		paths := n.Paths(src, dst)
		fmt.Printf("%d path(s) %s -> %s:\n", len(paths), src, dst)
		for i, p := range paths {
			kind := ""
			if len(p.Raw.Infos) > 0 && p.Raw.Infos[0].Peer {
				kind = " [peering]"
			}
			fmt.Printf("[%2d] %d hops, %.1f ms one-way, MTU %d%s\n     %s\n",
				i, p.NumHops(), p.LatencyMS, p.MTU, kind, strings.ReplaceAll(p.Fingerprint, ">", " > "))
		}
	}

	if *trace != "" {
		src, dst := parsePair(*trace)
		runTraceroute(n, src, dst)
	}

	if *ping != "" {
		src, dst := parsePair(*ping)
		paths := n.Paths(src, dst)
		if len(paths) == 0 {
			fatal(fmt.Errorf("no paths %s -> %s", src, dst))
		}
		resp, err := n.AttachResponder(dst)
		fatal(err)
		defer resp.Close()
		pinger, err := n.NewPinger(src)
		fatal(err)
		defer pinger.Close()

		// Ping over the three multiping path types in parallel, as the
		// measurement tool does.
		probes := []struct {
			name string
			path *combinator.Path
		}{
			{"shortest", pan.Shortest{}.Order(paths)[0]},
			{"fastest", pan.Fastest{}.Order(paths)[0]},
			{"disjoint", pan.MostDisjoint{}.Order(paths)[0]},
		}
		for i := 0; i < *count; i++ {
			for _, pr := range probes {
				rtt, err := pinger.PingSync(dst, resp.Addr().Addr(), pr.path, 5*time.Second)
				if err != nil {
					fmt.Printf("seq=%d %-8s: %v\n", i, pr.name, err)
					continue
				}
				fmt.Printf("seq=%d %-8s rtt=%.3f ms  via %s\n",
					i, pr.name, float64(rtt)/float64(time.Millisecond), pr.path.Fingerprint)
			}
		}
	}
}

func runTraceroute(n *core.Network, src, dst addr.IA) {
	paths := n.Paths(src, dst)
	if len(paths) == 0 {
		fatal(fmt.Errorf("no paths %s -> %s", src, dst))
	}
	pinger, err := n.NewPinger(src)
	fatal(err)
	defer pinger.Close()
	done := make(chan struct{})
	pinger.Traceroute(dst, paths[0], 3*time.Second, func(hops []scmp.Hop, err error) {
		defer close(done)
		fatal(err)
		fmt.Printf("traceroute %s -> %s over %s\n", src, dst, paths[0].Fingerprint)
		for i, h := range hops {
			if h.IA == 0 {
				fmt.Printf("%2d  *\n", i+1)
				continue
			}
			fmt.Printf("%2d  %-12s if=%d  %.3f ms\n", i+1, h.IA, h.IfID,
				float64(h.RTT)/float64(time.Millisecond))
		}
	})
	<-done
}

func parsePair(s string) (addr.IA, addr.IA) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		fatal(fmt.Errorf("expected <src-ia>,<dst-ia>, got %q", s))
	}
	src, err := addr.ParseIA(parts[0])
	fatal(err)
	dst, err := addr.ParseIA(parts[1])
	fatal(err)
	return src, dst
}

func printTopo() {
	fmt.Println("SCIERA deployment (Figure 1):")
	for _, s := range sciera.Sites() {
		role := "    "
		if s.Core {
			role = "CORE"
		}
		joined := "under construction"
		if !s.Joined.IsZero() {
			joined = s.Joined.Format("2006-01")
		}
		fmt.Printf("  %s %-18s %-12s %-5s joined %s\n", role, s.Name, s.IA, s.Region, joined)
	}
	topo, err := sciera.Build()
	fatal(err)
	fmt.Printf("\n%d circuits:\n", len(topo.Links()))
	for _, l := range topo.Links() {
		fmt.Printf("  %-45s %-7s %6.1f ms\n", l.Name, l.Type, l.LatencyMS)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
