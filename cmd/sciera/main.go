// Command sciera brings up the full SCIERA deployment in-process on
// real loopback UDP sockets and operates on it: list the topology, show
// paths between ASes (like `scion showpaths`), and ping across the
// network over the three multiping path types.
//
//	sciera -topo                         # AS and circuit inventory
//	sciera -showpaths 71-225,71-2:0:5c   # paths UVa -> UFMS
//	sciera -ping 71-20965,71-2:0:3b -n 4 # SCMP echo GEANT -> Daejeon
//	sciera -metrics-addr 127.0.0.1:9090  # serve Prometheus /metrics
//	sciera -ping ... -telemetry-dump t.json  # JSON snapshot at exit
package main

import (
	"flag"
	"fmt"
	stdnet "net"
	"net/http"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sciera/internal/addr"
	"sciera/internal/combinator"
	"sciera/internal/core"
	"sciera/internal/dispatcher"
	"sciera/internal/pan"
	"sciera/internal/sciera"
	"sciera/internal/scmp"
	"sciera/internal/simnet"
)

func main() {
	var (
		topoFlag    = flag.Bool("topo", false, "print the deployment inventory")
		showpaths   = flag.String("showpaths", "", "show paths: <src-ia>,<dst-ia>")
		ping        = flag.String("ping", "", "SCMP ping: <src-ia>,<dst-ia>")
		trace       = flag.String("traceroute", "", "SCMP traceroute: <src-ia>,<dst-ia>")
		count       = flag.Int("n", 3, "ping count")
		seed        = flag.Int64("seed", 42, "control plane seed")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics on this TCP address and wait for Ctrl-C")
		telemDump   = flag.String("telemetry-dump", "", "write the final telemetry snapshot as JSON to this file")
	)
	flag.Parse()

	if *topoFlag {
		printTopo()
		return
	}
	if *showpaths == "" && *ping == "" && *trace == "" && *metricsAddr == "" && *telemDump == "" {
		flag.Usage()
		os.Exit(2)
	}

	topo, err := sciera.Build()
	fatal(err)
	underlay := simnet.NewUDPNet()
	defer underlay.Close()
	fmt.Fprintln(os.Stderr, "building the SCIERA network on loopback UDP (29 ASes)...")
	n, err := core.Build(topo, underlay, core.Options{Seed: *seed, BestPerOrigin: 14})
	fatal(err)
	defer n.Close()

	if *metricsAddr != "" || *telemDump != "" {
		cleanup := startObservability(n, underlay)
		defer cleanup()
	}
	var srvDone func()
	if *metricsAddr != "" {
		srvDone = serveMetrics(n, *metricsAddr)
	}

	if *showpaths != "" {
		src, dst := parsePair(*showpaths)
		paths := n.Paths(src, dst)
		fmt.Printf("%d path(s) %s -> %s:\n", len(paths), src, dst)
		for i, p := range paths {
			kind := ""
			if len(p.Raw.Infos) > 0 && p.Raw.Infos[0].Peer {
				kind = " [peering]"
			}
			fmt.Printf("[%2d] %d hops, %.1f ms one-way, MTU %d%s\n     %s\n",
				i, p.NumHops(), p.LatencyMS, p.MTU, kind, strings.ReplaceAll(p.Fingerprint, ">", " > "))
		}
	}

	if *trace != "" {
		src, dst := parsePair(*trace)
		runTraceroute(n, src, dst)
	}

	if *ping != "" {
		src, dst := parsePair(*ping)
		paths := n.Paths(src, dst)
		if len(paths) == 0 {
			fatal(fmt.Errorf("no paths %s -> %s", src, dst))
		}
		resp, err := n.AttachResponder(dst)
		fatal(err)
		defer resp.Close()
		pinger, err := n.NewPinger(src)
		fatal(err)
		defer pinger.Close()

		// Ping over the three multiping path types in parallel, as the
		// measurement tool does.
		probes := []struct {
			name string
			path *combinator.Path
		}{
			{"shortest", pan.Shortest{}.Order(paths)[0]},
			{"fastest", pan.Fastest{}.Order(paths)[0]},
			{"disjoint", pan.MostDisjoint{}.Order(paths)[0]},
		}
		for i := 0; i < *count; i++ {
			for _, pr := range probes {
				rtt, err := pinger.PingSync(dst, resp.Addr().Addr(), pr.path, 5*time.Second)
				if err != nil {
					fmt.Printf("seq=%d %-8s: %v\n", i, pr.name, err)
					continue
				}
				fmt.Printf("seq=%d %-8s rtt=%.3f ms  via %s\n",
					i, pr.name, float64(rtt)/float64(time.Millisecond), pr.path.Fingerprint)
			}
		}
	}

	if *metricsAddr != "" {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		srvDone()
	}
	if *telemDump != "" {
		writeTelemetryDump(n, *telemDump)
	}
}

// startObservability brings up the remaining instrumented subsystems a
// plain CLI invocation would not touch, so the exposition covers the
// whole stack: a dispatcher on its own loopback host (127.0.0.1:30041
// belongs to the SCMP responders) and an end-host daemon doing a warm
// and a cached path lookup.
func startObservability(n *core.Network, underlay *simnet.UDPNet) func() {
	disp, err := dispatcher.Start(underlay, netip.MustParseAddr("127.0.0.2"))
	fatal(err)
	disp.RegisterTelemetry(n.Telemetry())
	disp.Trace = n.TraceRing()

	vantage := sciera.VantageASes()
	d, err := n.NewDaemon(vantage[0])
	fatal(err)
	if _, err := d.Paths(vantage[1]); err == nil {
		_, _ = d.Paths(vantage[1]) // second lookup hits the cache
	}
	return func() { disp.Close() }
}

// serveMetrics mounts the Prometheus exposition and the JSON snapshot
// on a plain TCP listener (curl-able); returns a shutdown func.
func serveMetrics(n *core.Network, addr string) func() {
	mux := http.NewServeMux()
	mux.Handle("/metrics", n.Telemetry().Handler())
	mux.HandleFunc("/telemetry.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = n.TelemetrySnapshot().WriteJSON(w)
	})
	ln, err := stdnet.Listen("tcp", addr)
	fatal(err)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics (Ctrl-C to stop)\n", ln.Addr())
	return func() { _ = srv.Close() }
}

// writeTelemetryDump writes the end-of-run snapshot (with the sampled
// packet traces) as JSON.
func writeTelemetryDump(n *core.Network, path string) {
	f, err := os.Create(path)
	fatal(err)
	fatal(n.Telemetry().SnapshotWithTrace(n.TraceRing()).WriteJSON(f))
	fatal(f.Close())
	fmt.Fprintf(os.Stderr, "wrote telemetry snapshot to %s\n", path)
}

func runTraceroute(n *core.Network, src, dst addr.IA) {
	paths := n.Paths(src, dst)
	if len(paths) == 0 {
		fatal(fmt.Errorf("no paths %s -> %s", src, dst))
	}
	pinger, err := n.NewPinger(src)
	fatal(err)
	defer pinger.Close()
	done := make(chan struct{})
	pinger.Traceroute(dst, paths[0], 3*time.Second, func(hops []scmp.Hop, err error) {
		defer close(done)
		fatal(err)
		fmt.Printf("traceroute %s -> %s over %s\n", src, dst, paths[0].Fingerprint)
		for i, h := range hops {
			if h.IA == 0 {
				fmt.Printf("%2d  *\n", i+1)
				continue
			}
			fmt.Printf("%2d  %-12s if=%d  %.3f ms\n", i+1, h.IA, h.IfID,
				float64(h.RTT)/float64(time.Millisecond))
		}
	})
	<-done
}

func parsePair(s string) (addr.IA, addr.IA) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		fatal(fmt.Errorf("expected <src-ia>,<dst-ia>, got %q", s))
	}
	src, err := addr.ParseIA(parts[0])
	fatal(err)
	dst, err := addr.ParseIA(parts[1])
	fatal(err)
	return src, dst
}

func printTopo() {
	fmt.Println("SCIERA deployment (Figure 1):")
	for _, s := range sciera.Sites() {
		role := "    "
		if s.Core {
			role = "CORE"
		}
		joined := "under construction"
		if !s.Joined.IsZero() {
			joined = s.Joined.Format("2006-01")
		}
		fmt.Printf("  %s %-18s %-12s %-5s joined %s\n", role, s.Name, s.IA, s.Region, joined)
	}
	topo, err := sciera.Build()
	fatal(err)
	fmt.Printf("\n%d circuits:\n", len(topo.Links()))
	for _, l := range topo.Links() {
		fmt.Printf("  %-45s %-7s %6.1f ms\n", l.Name, l.Type, l.LatencyMS)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
