//go:build unix

package main

import "syscall"

// userCPUSeconds reads the process's cumulative user CPU time. The
// campaign runs single-process, so the delta across a run is the total
// compute the workers burned regardless of how it spread over cores.
func userCPUSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return float64(ru.Utime.Sec) + float64(ru.Utime.Usec)/1e6
}
