package main

// The -setup mode: benchmark campaign replica construction with and
// without converged-state snapshots. The cold arm converges every
// replica independently (the pre-snapshot behavior); the warm arm
// converges one reference, captures and serializes its snapshot, and
// copy-on-write clones the remaining replicas from it. The warm arm's
// total — convergence, snapshot write, and all clones included — must
// beat the cold arm by the gate floor, and every warm campaign must
// render the cold golden's exact bytes.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"sciera/internal/experiments"
	"sciera/internal/scenario"
)

// gateSetup is the acceptance floor for the warm-start speedup: replica
// setup via snapshot cloning must be at least this many times faster
// than independent convergence at the benchmark's worker count.
const gateSetup = 5.0

type setupReport struct {
	Timestamp string `json:"timestamp"`
	HostCPUs  int    `json:"host_cpus"`
	Scenario  string `json:"scenario"`
	ASes      int    `json:"ases"`
	Links     int    `json:"links"`
	Seed      int64  `json:"seed"`
	Workers   int    `json:"workers"`
	// Cold arm: Workers independent convergences, sequential (the
	// per-replica cost is what every added worker used to pay).
	ColdSeconds           float64 `json:"cold_seconds"`
	ColdPerReplicaSeconds float64 `json:"cold_per_replica_seconds"`
	// Warm arm: one convergence + snapshot write + Workers clones.
	WarmSeconds            float64 `json:"warm_seconds"`
	WarmConvergeSeconds    float64 `json:"warm_converge_seconds"`
	WarmSnapshotSeconds    float64 `json:"warm_snapshot_seconds"`
	WarmCloneSeconds       float64 `json:"warm_clone_seconds"`
	ClonePerReplicaSeconds float64 `json:"warm_clone_per_replica_seconds"`
	SnapshotFileBytes      int64   `json:"snapshot_file_bytes"`
	SetupSpeedup           float64 `json:"setup_speedup"`
	GateFloor              float64 `json:"gate_floor"`
	GatePass               bool    `json:"gate_pass"`
	// ByteIdentical records, per campaign worker count, whether the
	// snapshot-cloned quick campaign rendered the cold golden's bytes.
	ByteIdentical map[string]bool `json:"byte_identical"`
}

// runSetup executes the warm-start setup benchmark and writes the
// BENCH_setup.json report. Exits nonzero if byte-identity or the
// speedup gate fails.
func runSetup(scenArg string, seed int64, workers int, out string) {
	s, err := scenario.Resolve(scenArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignbench: setup:", err)
		exit(1)
	}
	cfg := experiments.Config{Seed: seed, Quick: true, Scenario: s}
	fmt.Fprintf(os.Stderr, "campaignbench: setup: scenario=%s seed=%d replicas=%d host_cpus=%d\n",
		scenArg, seed, workers, runtime.NumCPU())

	rep := setupReport{
		Scenario:  scenArg,
		Seed:      seed,
		Workers:   workers,
		HostCPUs:  runtime.NumCPU(),
		GateFloor: gateSetup,
	}

	// Cold arm.
	t0 := time.Now()
	for i := 0; i < workers; i++ {
		n, _, err := experiments.BuildReplica(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaignbench: setup: cold replica:", err)
			exit(1)
		}
		if i == 0 {
			rep.ASes = len(n.Topo.ASes())
			rep.Links = len(n.Topo.Links())
		}
		n.Close()
	}
	rep.ColdSeconds = round2(time.Since(t0).Seconds())
	rep.ColdPerReplicaSeconds = round2(rep.ColdSeconds / float64(workers))
	fmt.Fprintf(os.Stderr, "campaignbench: setup: cold: %d replicas in %.2fs (%.2fs each)\n",
		workers, rep.ColdSeconds, rep.ColdPerReplicaSeconds)

	// Warm arm: converge once, serialize, clone everywhere. The
	// snapshot write is charged to the warm arm — restart-and-resume is
	// part of the feature, so its cost is part of the comparison.
	snapDir, err := os.MkdirTemp("", "campaignbench-setup-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignbench: setup:", err)
		exit(1)
	}
	defer os.RemoveAll(snapDir)
	snapPath := filepath.Join(snapDir, "campaign.snapshot.json")

	t0 = time.Now()
	snap, err := experiments.ConvergeReference(cfg, cfg.ProbePairs())
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignbench: setup: converge:", err)
		exit(1)
	}
	rep.WarmConvergeSeconds = round2(time.Since(t0).Seconds())
	t1 := time.Now()
	if err := snap.WriteFile(snapPath); err != nil {
		fmt.Fprintln(os.Stderr, "campaignbench: setup: snapshot write:", err)
		exit(1)
	}
	rep.WarmSnapshotSeconds = round2(time.Since(t1).Seconds())
	if fi, err := os.Stat(snapPath); err == nil {
		rep.SnapshotFileBytes = fi.Size()
	}
	t2 := time.Now()
	for i := 0; i < workers; i++ {
		n, _, err := experiments.CloneReplica(cfg, snap)
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaignbench: setup: clone:", err)
			exit(1)
		}
		n.Close()
	}
	rep.WarmCloneSeconds = round2(time.Since(t2).Seconds())
	rep.ClonePerReplicaSeconds = round2(rep.WarmCloneSeconds / float64(workers))
	rep.WarmSeconds = round2(time.Since(t0).Seconds())
	fmt.Fprintf(os.Stderr, "campaignbench: setup: warm: converge %.2fs + snapshot %.2fs + %d clones %.2fs = %.2fs\n",
		rep.WarmConvergeSeconds, rep.WarmSnapshotSeconds, workers, rep.WarmCloneSeconds, rep.WarmSeconds)

	rep.SetupSpeedup = round2(rep.ColdSeconds / rep.WarmSeconds)
	rep.GatePass = rep.SetupSpeedup >= gateSetup

	// Byte-identity: the cold single-worker campaign is the golden;
	// snapshot-cloned campaigns at 1/2/4/8 workers must render its
	// exact bytes. The warm runs load the file written above, so the
	// full serialize -> load -> clone path is what is being checked.
	campaign := func(c experiments.Config) string {
		var buf bytes.Buffer
		if err := experiments.RunCampaignFigures(&buf, c); err != nil {
			fmt.Fprintln(os.Stderr, "campaignbench: setup: campaign:", err)
			exit(1)
		}
		return buf.String()
	}
	coldCfg := cfg
	coldCfg.ColdStart = true
	coldCfg.Workers = 1
	golden := campaign(coldCfg)
	rep.ByteIdentical = make(map[string]bool)
	identical := true
	for _, w := range []int{1, 2, 4, 8} {
		warmCfg := cfg
		warmCfg.Workers = w
		warmCfg.SnapshotPath = snapPath
		same := campaign(warmCfg) == golden
		rep.ByteIdentical[fmt.Sprintf("w%d", w)] = same
		identical = identical && same
		fmt.Fprintf(os.Stderr, "campaignbench: setup: byte-identity w=%d: %v\n", w, same)
	}

	rep.Timestamp = time.Now().UTC().Format(time.RFC3339)
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignbench: setup:", err)
		exit(1)
	}
	if err := os.WriteFile(out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "campaignbench: setup:", err)
		exit(1)
	}
	if !identical {
		fmt.Fprintln(os.Stderr, "campaignbench: setup: FAIL: snapshot-cloned campaign output differs from cold golden")
		exit(1)
	}
	if !rep.GatePass {
		fmt.Fprintf(os.Stderr, "campaignbench: setup: FAIL: speedup %.2fx below %.1fx gate\n",
			rep.SetupSpeedup, gateSetup)
		exit(1)
	}
	fmt.Fprintf(os.Stderr, "campaignbench: setup: byte-identical; setup speedup %.2fx (gate %.1fx); report in %s\n",
		rep.SetupSpeedup, gateSetup, out)
}
