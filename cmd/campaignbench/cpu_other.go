//go:build !unix

package main

// userCPUSeconds is unavailable off unix; the report's wall times still
// stand on their own.
func userCPUSeconds() float64 { return 0 }
