// Command campaignbench times the Section 5.4 measurement campaign at
// one worker and at N workers (default runtime.NumCPU()), verifies the
// two runs render byte-identical figures, and records the timings as
// JSON. The Makefile bench target uses it to maintain
// BENCH_campaign.json.
//
// With -signing it instead runs the signed-control-plane ablation:
// the same campaign with and without -pki (signing plus
// verify-on-receipt), asserts byte-identical figures, and records the
// signed/unsigned wall ratio against the 1.3x budget in
// BENCH_signing.json (Makefile bench-signing target).
//
// Wall-clock speedup is bounded by the host's core count; the
// user-CPU-seconds column shows whether the total work stayed flat
// across worker counts (it must — sharding repartitions the campaign,
// it does not add work), which is what makes wall ≈ single/N on an
// N-core host.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"sciera/internal/experiments"
)

type runResult struct {
	Workers        int     `json:"workers"`
	WallSeconds    float64 `json:"wall_seconds"`
	UserCPUSeconds float64 `json:"user_cpu_seconds"`
	OutputBytes    int     `json:"output_bytes"`
}

type report struct {
	Timestamp     string      `json:"timestamp"`
	HostCPUs      int         `json:"host_cpus"`
	Seed          int64       `json:"seed"`
	Quick         bool        `json:"quick"`
	Runs          []runResult `json:"runs"`
	ByteIdentical bool        `json:"byte_identical"`
	WallSpeedup   float64     `json:"wall_speedup"`
	Note          string      `json:"note,omitempty"`
}

// signingReport records the signed-control-plane overhead ablation.
type signingReport struct {
	Timestamp      string    `json:"timestamp"`
	HostCPUs       int       `json:"host_cpus"`
	Seed           int64     `json:"seed"`
	Quick          bool      `json:"quick"`
	Workers        int       `json:"workers"`
	Unsigned       runResult `json:"unsigned"`
	Signed         runResult `json:"signed"`
	ByteIdentical  bool      `json:"byte_identical"`
	SignedOverhead float64   `json:"signed_overhead"`
	OverheadBudget float64   `json:"overhead_budget"`
	WithinBudget   bool      `json:"within_budget"`
}

func main() {
	var (
		seed    = flag.Int64("seed", 42, "campaign seed")
		quick   = flag.Bool("quick", false, "reduced-scale campaign")
		workers = flag.Int("workers", runtime.NumCPU(), "worker count for the parallel run")
		signing = flag.Bool("signing", false, "run the signed-vs-unsigned control-plane ablation instead")
		out     = flag.String("out", "", "write the JSON report here (default BENCH_campaign.json, or BENCH_signing.json with -signing)")
	)
	flag.Parse()
	if *out == "" {
		*out = "BENCH_campaign.json"
		if *signing {
			*out = "BENCH_signing.json"
		}
	}

	run := func(w int, pki bool) (string, runResult, error) {
		cfg := experiments.Config{Seed: *seed, Quick: *quick, Workers: w, WithPKI: pki}
		var buf bytes.Buffer
		cpu0 := userCPUSeconds()
		t0 := time.Now()
		err := experiments.RunCampaignFigures(&buf, cfg)
		r := runResult{
			Workers:        w,
			WallSeconds:    round2(time.Since(t0).Seconds()),
			UserCPUSeconds: round2(userCPUSeconds() - cpu0),
			OutputBytes:    buf.Len(),
		}
		return buf.String(), r, err
	}

	if *signing {
		runSigning(run, *seed, *quick, *workers, *out)
		return
	}

	fmt.Fprintf(os.Stderr, "campaignbench: seed=%d quick=%v host_cpus=%d\n", *seed, *quick, runtime.NumCPU())
	single, r1, err := run(1, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignbench: workers=1:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "campaignbench: workers=1: wall %.2fs, user cpu %.2fs\n", r1.WallSeconds, r1.UserCPUSeconds)
	par, rn, err := run(*workers, false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaignbench: workers=%d: %v\n", *workers, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "campaignbench: workers=%d: wall %.2fs, user cpu %.2fs\n", *workers, rn.WallSeconds, rn.UserCPUSeconds)

	rep := report{
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		HostCPUs:      runtime.NumCPU(),
		Seed:          *seed,
		Quick:         *quick,
		Runs:          []runResult{r1, rn},
		ByteIdentical: single == par,
		WallSpeedup:   round2(r1.WallSeconds / rn.WallSeconds),
	}
	if rep.HostCPUs < *workers {
		rep.Note = fmt.Sprintf("host has %d CPU(s): wall speedup is core-bound; flat user_cpu_seconds across runs shows the shards partition the work without overhead", rep.HostCPUs)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignbench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "campaignbench:", err)
		os.Exit(1)
	}
	if !rep.ByteIdentical {
		fmt.Fprintf(os.Stderr, "campaignbench: FAIL: workers=%d output differs from workers=1 (%d vs %d bytes)\n",
			*workers, rn.OutputBytes, r1.OutputBytes)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "campaignbench: outputs byte-identical; wall speedup %.2fx; report in %s\n",
		rep.WallSpeedup, *out)
}

// signingBudget is the acceptance ceiling for the signed campaign's
// wall time relative to unsigned.
const signingBudget = 1.3

// runSigning executes the signed-control-plane ablation: the same
// campaign with and without the PKI, byte-identity asserted, overhead
// checked against the budget.
func runSigning(run func(w int, pki bool) (string, runResult, error), seed int64, quick bool, workers int, out string) {
	fmt.Fprintf(os.Stderr, "campaignbench: signing ablation: seed=%d quick=%v workers=%d host_cpus=%d\n",
		seed, quick, workers, runtime.NumCPU())
	plain, ru, err := run(workers, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignbench: unsigned:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "campaignbench: unsigned: wall %.2fs, user cpu %.2fs\n", ru.WallSeconds, ru.UserCPUSeconds)
	signed, rs, err := run(workers, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignbench: signed:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "campaignbench: signed:   wall %.2fs, user cpu %.2fs\n", rs.WallSeconds, rs.UserCPUSeconds)

	rep := signingReport{
		Timestamp:      time.Now().UTC().Format(time.RFC3339),
		HostCPUs:       runtime.NumCPU(),
		Seed:           seed,
		Quick:          quick,
		Workers:        workers,
		Unsigned:       ru,
		Signed:         rs,
		ByteIdentical:  plain == signed,
		SignedOverhead: round2(rs.WallSeconds / ru.WallSeconds),
		OverheadBudget: signingBudget,
	}
	rep.WithinBudget = rep.SignedOverhead <= signingBudget
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignbench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "campaignbench:", err)
		os.Exit(1)
	}
	if !rep.ByteIdentical {
		fmt.Fprintf(os.Stderr, "campaignbench: FAIL: signed output differs from unsigned (%d vs %d bytes)\n",
			rs.OutputBytes, ru.OutputBytes)
		os.Exit(1)
	}
	if !rep.WithinBudget {
		fmt.Fprintf(os.Stderr, "campaignbench: FAIL: signed overhead %.2fx exceeds %.2fx budget\n",
			rep.SignedOverhead, signingBudget)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "campaignbench: outputs byte-identical; signed overhead %.2fx (budget %.2fx); report in %s\n",
		rep.SignedOverhead, signingBudget, out)
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}
