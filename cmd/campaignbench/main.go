// Command campaignbench times the Section 5.4 measurement campaign at
// one worker and at N workers (default runtime.NumCPU()), verifies the
// two runs render byte-identical figures, and records the timings as
// JSON. The Makefile bench target uses it to maintain
// BENCH_campaign.json.
//
// Wall-clock speedup is bounded by the host's core count; the
// user-CPU-seconds column shows whether the total work stayed flat
// across worker counts (it must — sharding repartitions the campaign,
// it does not add work), which is what makes wall ≈ single/N on an
// N-core host.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"sciera/internal/experiments"
)

type runResult struct {
	Workers        int     `json:"workers"`
	WallSeconds    float64 `json:"wall_seconds"`
	UserCPUSeconds float64 `json:"user_cpu_seconds"`
	OutputBytes    int     `json:"output_bytes"`
}

type report struct {
	Timestamp     string      `json:"timestamp"`
	HostCPUs      int         `json:"host_cpus"`
	Seed          int64       `json:"seed"`
	Quick         bool        `json:"quick"`
	Runs          []runResult `json:"runs"`
	ByteIdentical bool        `json:"byte_identical"`
	WallSpeedup   float64     `json:"wall_speedup"`
	Note          string      `json:"note,omitempty"`
}

func main() {
	var (
		seed    = flag.Int64("seed", 42, "campaign seed")
		quick   = flag.Bool("quick", false, "reduced-scale campaign")
		workers = flag.Int("workers", runtime.NumCPU(), "worker count for the parallel run")
		out     = flag.String("out", "BENCH_campaign.json", "write the JSON report here")
	)
	flag.Parse()

	run := func(w int) (string, runResult, error) {
		cfg := experiments.Config{Seed: *seed, Quick: *quick, Workers: w}
		var buf bytes.Buffer
		cpu0 := userCPUSeconds()
		t0 := time.Now()
		err := experiments.RunCampaignFigures(&buf, cfg)
		r := runResult{
			Workers:        w,
			WallSeconds:    round2(time.Since(t0).Seconds()),
			UserCPUSeconds: round2(userCPUSeconds() - cpu0),
			OutputBytes:    buf.Len(),
		}
		return buf.String(), r, err
	}

	fmt.Fprintf(os.Stderr, "campaignbench: seed=%d quick=%v host_cpus=%d\n", *seed, *quick, runtime.NumCPU())
	single, r1, err := run(1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignbench: workers=1:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "campaignbench: workers=1: wall %.2fs, user cpu %.2fs\n", r1.WallSeconds, r1.UserCPUSeconds)
	par, rn, err := run(*workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaignbench: workers=%d: %v\n", *workers, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "campaignbench: workers=%d: wall %.2fs, user cpu %.2fs\n", *workers, rn.WallSeconds, rn.UserCPUSeconds)

	rep := report{
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		HostCPUs:      runtime.NumCPU(),
		Seed:          *seed,
		Quick:         *quick,
		Runs:          []runResult{r1, rn},
		ByteIdentical: single == par,
		WallSpeedup:   round2(r1.WallSeconds / rn.WallSeconds),
	}
	if rep.HostCPUs < *workers {
		rep.Note = fmt.Sprintf("host has %d CPU(s): wall speedup is core-bound; flat user_cpu_seconds across runs shows the shards partition the work without overhead", rep.HostCPUs)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignbench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "campaignbench:", err)
		os.Exit(1)
	}
	if !rep.ByteIdentical {
		fmt.Fprintf(os.Stderr, "campaignbench: FAIL: workers=%d output differs from workers=1 (%d vs %d bytes)\n",
			*workers, rn.OutputBytes, r1.OutputBytes)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "campaignbench: outputs byte-identical; wall speedup %.2fx; report in %s\n",
		rep.WallSpeedup, *out)
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}
