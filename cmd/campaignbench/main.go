// Command campaignbench times the Section 5.4 measurement campaign at
// one worker and at N workers (default runtime.NumCPU()), verifies the
// two runs render byte-identical figures, and records the timings as
// JSON. The Makefile bench target uses it to maintain
// BENCH_campaign.json.
//
// With -signing it instead runs the signed-control-plane ablation:
// the same campaign with and without -pki (signing plus
// verify-on-receipt), asserts byte-identical figures, and records the
// signed/unsigned wall ratio against the 1.3x budget in
// BENCH_signing.json (Makefile bench-signing target).
//
// With -setup it benchmarks campaign replica construction: N
// independent convergences (cold) against one convergence plus N
// copy-on-write snapshot clones (warm), gates the warm speedup at 5x,
// verifies snapshot-cloned campaigns render byte-identical figures at
// 1/2/4/8 workers, and records BENCH_setup.json (Makefile bench-setup
// target).
//
// -cpuprofile/-memprofile write pprof profiles for any mode.
//
// Wall-clock speedup is bounded by the host's core count; the
// user-CPU-seconds column shows whether the total work stayed flat
// across worker counts (it must — sharding repartitions the campaign,
// it does not add work), which is what makes wall ≈ single/N on an
// N-core host.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"sciera/internal/benchutil"
	"sciera/internal/experiments"
)

type runResult struct {
	Workers        int     `json:"workers"`
	WallSeconds    float64 `json:"wall_seconds"`
	UserCPUSeconds float64 `json:"user_cpu_seconds"`
	OutputBytes    int     `json:"output_bytes"`
}

type report struct {
	Timestamp     string      `json:"timestamp"`
	HostCPUs      int         `json:"host_cpus"`
	Seed          int64       `json:"seed"`
	Quick         bool        `json:"quick"`
	Runs          []runResult `json:"runs"`
	ByteIdentical bool        `json:"byte_identical"`
	WallSpeedup   float64     `json:"wall_speedup"`
	Note          string      `json:"note,omitempty"`
}

// signingReport records the signed-control-plane overhead ablation.
type signingReport struct {
	Timestamp      string    `json:"timestamp"`
	HostCPUs       int       `json:"host_cpus"`
	Seed           int64     `json:"seed"`
	Quick          bool      `json:"quick"`
	Workers        int       `json:"workers"`
	Unsigned       runResult `json:"unsigned"`
	Signed         runResult `json:"signed"`
	ByteIdentical  bool      `json:"byte_identical"`
	SignedOverhead float64   `json:"signed_overhead"`
	OverheadBudget float64   `json:"overhead_budget"`
	WithinBudget   bool      `json:"within_budget"`
}

func main() {
	var (
		seed     = flag.Int64("seed", 42, "campaign seed")
		quick    = flag.Bool("quick", false, "reduced-scale campaign")
		workers  = flag.Int("workers", runtime.NumCPU(), "worker count for the parallel run")
		signing  = flag.Bool("signing", false, "run the signed-vs-unsigned control-plane ablation instead")
		setup    = flag.Bool("setup", false, "run the replica warm-start (snapshot/clone) setup benchmark instead")
		setupScn = flag.String("setup-scenario", "gen:isds=3,ases=200,cores=8,seed=1", "scenario the -setup benchmark builds replicas for (cores=8 densifies the core mesh, as in controlbench, so convergence carries realistic weight)")
		setupW   = flag.Int("setup-workers", 8, "replica count the -setup benchmark amortizes convergence over")
		out      = flag.String("out", "", "write the JSON report here (default BENCH_campaign.json, BENCH_signing.json with -signing, or BENCH_setup.json with -setup)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *out == "" {
		switch {
		case *signing:
			*out = "BENCH_signing.json"
		case *setup:
			*out = "BENCH_setup.json"
		default:
			*out = "BENCH_campaign.json"
		}
	}
	stop, err := benchutil.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignbench:", err)
		exit(1)
	}
	stopProfiles = stop

	run := func(w int, pki bool) (string, runResult, error) {
		cfg := experiments.Config{Seed: *seed, Quick: *quick, Workers: w, WithPKI: pki}
		var buf bytes.Buffer
		cpu0 := userCPUSeconds()
		t0 := time.Now()
		err := experiments.RunCampaignFigures(&buf, cfg)
		r := runResult{
			Workers:        w,
			WallSeconds:    round2(time.Since(t0).Seconds()),
			UserCPUSeconds: round2(userCPUSeconds() - cpu0),
			OutputBytes:    buf.Len(),
		}
		return buf.String(), r, err
	}

	if *setup {
		runSetup(*setupScn, *seed, *setupW, *out)
		exit(0)
	}
	if *signing {
		runSigning(run, *seed, *quick, *workers, *out)
		exit(0)
	}

	fmt.Fprintf(os.Stderr, "campaignbench: seed=%d quick=%v host_cpus=%d\n", *seed, *quick, runtime.NumCPU())
	single, r1, err := run(1, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignbench: workers=1:", err)
		exit(1)
	}
	fmt.Fprintf(os.Stderr, "campaignbench: workers=1: wall %.2fs, user cpu %.2fs\n", r1.WallSeconds, r1.UserCPUSeconds)
	par, rn, err := run(*workers, false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaignbench: workers=%d: %v\n", *workers, err)
		exit(1)
	}
	fmt.Fprintf(os.Stderr, "campaignbench: workers=%d: wall %.2fs, user cpu %.2fs\n", *workers, rn.WallSeconds, rn.UserCPUSeconds)

	rep := report{
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		HostCPUs:      runtime.NumCPU(),
		Seed:          *seed,
		Quick:         *quick,
		Runs:          []runResult{r1, rn},
		ByteIdentical: single == par,
		WallSpeedup:   round2(r1.WallSeconds / rn.WallSeconds),
	}
	if rep.HostCPUs < *workers {
		rep.Note = fmt.Sprintf("host has %d CPU(s): wall speedup is core-bound; flat user_cpu_seconds across runs shows the shards partition the work without overhead", rep.HostCPUs)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignbench:", err)
		exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "campaignbench:", err)
		exit(1)
	}
	if !rep.ByteIdentical {
		fmt.Fprintf(os.Stderr, "campaignbench: FAIL: workers=%d output differs from workers=1 (%d vs %d bytes)\n",
			*workers, rn.OutputBytes, r1.OutputBytes)
		exit(1)
	}
	fmt.Fprintf(os.Stderr, "campaignbench: outputs byte-identical; wall speedup %.2fx; report in %s\n",
		rep.WallSpeedup, *out)
	exit(0)
}

// stopProfiles flushes -cpuprofile/-memprofile output; main installs
// the real hook once profiling starts.
var stopProfiles = func() error { return nil }

// exit flushes profiles before terminating — os.Exit skips defers, and
// the failure paths are exactly where a profile is most wanted.
func exit(code int) {
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "campaignbench:", err)
	}
	os.Exit(code)
}

// signingBudget is the acceptance ceiling for the signed campaign's
// wall time relative to unsigned.
const signingBudget = 1.3

// runSigning executes the signed-control-plane ablation: the same
// campaign with and without the PKI, byte-identity asserted, overhead
// checked against the budget.
func runSigning(run func(w int, pki bool) (string, runResult, error), seed int64, quick bool, workers int, out string) {
	fmt.Fprintf(os.Stderr, "campaignbench: signing ablation: seed=%d quick=%v workers=%d host_cpus=%d\n",
		seed, quick, workers, runtime.NumCPU())
	plain, ru, err := run(workers, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignbench: unsigned:", err)
		exit(1)
	}
	fmt.Fprintf(os.Stderr, "campaignbench: unsigned: wall %.2fs, user cpu %.2fs\n", ru.WallSeconds, ru.UserCPUSeconds)
	signed, rs, err := run(workers, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignbench: signed:", err)
		exit(1)
	}
	fmt.Fprintf(os.Stderr, "campaignbench: signed:   wall %.2fs, user cpu %.2fs\n", rs.WallSeconds, rs.UserCPUSeconds)

	rep := signingReport{
		Timestamp:      time.Now().UTC().Format(time.RFC3339),
		HostCPUs:       runtime.NumCPU(),
		Seed:           seed,
		Quick:          quick,
		Workers:        workers,
		Unsigned:       ru,
		Signed:         rs,
		ByteIdentical:  plain == signed,
		SignedOverhead: round2(rs.WallSeconds / ru.WallSeconds),
		OverheadBudget: signingBudget,
	}
	rep.WithinBudget = rep.SignedOverhead <= signingBudget
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignbench:", err)
		exit(1)
	}
	if err := os.WriteFile(out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "campaignbench:", err)
		exit(1)
	}
	if !rep.ByteIdentical {
		fmt.Fprintf(os.Stderr, "campaignbench: FAIL: signed output differs from unsigned (%d vs %d bytes)\n",
			rs.OutputBytes, ru.OutputBytes)
		exit(1)
	}
	if !rep.WithinBudget {
		fmt.Fprintf(os.Stderr, "campaignbench: FAIL: signed overhead %.2fx exceeds %.2fx budget\n",
			rep.SignedOverhead, signingBudget)
		exit(1)
	}
	fmt.Fprintf(os.Stderr, "campaignbench: outputs byte-identical; signed overhead %.2fx (budget %.2fx); report in %s\n",
		rep.SignedOverhead, signingBudget, out)
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}
