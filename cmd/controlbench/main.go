// Command controlbench measures the control-plane scale-out changes on
// synthetic gen: topologies at 50, 100 and 200 ASes and records the
// results as JSON (BENCH_control.json via the Makefile bench-control
// target).
//
// Two ablations per size:
//
//   - Beacon round wall time with best-K propagation pruning (-bestk,
//     default 8 — tighter than DefaultPropagateBestK, whose
//     reference-preserving 24 never engages on these topologies)
//     against unbounded flooding, with the propagated / pruned /
//     registered counter deltas for one full refresh.
//   - Path-lookup latency in three modes over the same registry:
//     "scan" (linear-scan segment stores + a fresh Combine per call —
//     the pre-index control plane), "indexed" (two-level (firstIA,
//     lastIA) bucket probes + a fresh Combine per call), and "warm"
//     (the memoized Network.Paths fast path the campaign hot loop
//     actually hits).
//
// The acceptance gate requires the warm lookup to be at least 5x the
// scan baseline's throughput on the largest topology; the run exits
// non-zero when the gate fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"sciera/internal/addr"
	"sciera/internal/benchutil"
	"sciera/internal/combinator"
	"sciera/internal/core"
	"sciera/internal/scenario"
	"sciera/internal/segment"
	"sciera/internal/simnet"
)

// gateSpeedup is the acceptance floor for warm-lookup throughput
// relative to the linear-scan baseline at the largest size.
const gateSpeedup = 5.0

// measureFloor is the minimum sampling window per lookup mode; passes
// over the pair set repeat until it is exceeded.
const measureFloor = 200 * time.Millisecond

type roundResult struct {
	WallSeconds float64 `json:"wall_seconds"`
	Propagated  uint64  `json:"propagated"`
	Pruned      uint64  `json:"pruned"`
	Registered  uint64  `json:"registered"`
}

type lookupResult struct {
	Pairs              int     `json:"pairs"`
	PathsPerLookup     float64 `json:"paths_per_lookup"`
	ScanNsPerLookup    float64 `json:"scan_ns_per_lookup"`
	IndexedNsPerLookup float64 `json:"indexed_ns_per_lookup"`
	WarmNsPerLookup    float64 `json:"warm_ns_per_lookup"`
	IndexedSpeedup     float64 `json:"indexed_speedup_vs_scan"`
	WarmSpeedup        float64 `json:"warm_speedup_vs_scan"`
}

type sizeReport struct {
	Scenario     string       `json:"scenario"`
	ASes         int          `json:"ases"`
	BestK        int          `json:"propagate_best_k"`
	CoreSegments int          `json:"core_segments"`
	DownSegments int          `json:"down_segments"`
	Bounded      roundResult  `json:"beacon_round_bestk"`
	Unbounded    roundResult  `json:"beacon_round_unbounded"`
	FloodRatio   float64      `json:"unbounded_propagated_ratio"`
	Lookup       lookupResult `json:"lookup"`
}

type report struct {
	Timestamp    string       `json:"timestamp"`
	HostCPUs     int          `json:"host_cpus"`
	Seed         int64        `json:"seed"`
	Sizes        []sizeReport `json:"sizes"`
	GateSpeedup  float64      `json:"gate_warm_speedup_floor"`
	GateAchieved float64      `json:"gate_warm_speedup_at_max"`
	GatePass     bool         `json:"gate_pass"`
}

func main() {
	var (
		seed  = flag.Int64("seed", 7, "generator seed for the gen: topologies")
		bestK = flag.Int("bestk", 8, "propagation/registration best-K bound for the pruned arm")
		quick = flag.Bool("quick", false, "run only the 50-AS size")
		out   = flag.String("out", "BENCH_control.json", "write the JSON report here")
		cpu   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		mem   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	stop, err := benchutil.StartProfiles(*cpu, *mem)
	if err != nil {
		fmt.Fprintln(os.Stderr, "controlbench:", err)
		exit(1)
	}
	stopProfiles = stop

	sizes := []int{50, 100, 200}
	if *quick {
		sizes = sizes[:1]
	}
	rep := report{
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		HostCPUs:    runtime.NumCPU(),
		Seed:        *seed,
		GateSpeedup: gateSpeedup,
	}
	for _, ases := range sizes {
		sr, err := runSize(ases, *bestK, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "controlbench: %d ASes: %v\n", ases, err)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "controlbench: %s: round %.2fs best-K vs %.2fs unbounded; lookup scan %.0fns, indexed %.0fns (%.1fx), warm %.0fns (%.1fx)\n",
			sr.Scenario, sr.Bounded.WallSeconds, sr.Unbounded.WallSeconds,
			sr.Lookup.ScanNsPerLookup, sr.Lookup.IndexedNsPerLookup, sr.Lookup.IndexedSpeedup,
			sr.Lookup.WarmNsPerLookup, sr.Lookup.WarmSpeedup)
		rep.Sizes = append(rep.Sizes, sr)
	}
	rep.GateAchieved = rep.Sizes[len(rep.Sizes)-1].Lookup.WarmSpeedup
	rep.GatePass = rep.GateAchieved >= gateSpeedup

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "controlbench:", err)
		exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "controlbench:", err)
		exit(1)
	}
	if !rep.GatePass {
		fmt.Fprintf(os.Stderr, "controlbench: FAIL: warm lookup %.1fx scan at %d ASes, floor %.1fx\n",
			rep.GateAchieved, sizes[len(sizes)-1], gateSpeedup)
		exit(1)
	}
	fmt.Fprintf(os.Stderr, "controlbench: warm lookup %.1fx scan at %d ASes (floor %.1fx); report in %s\n",
		rep.GateAchieved, sizes[len(sizes)-1], gateSpeedup, *out)
	exit(0)
}

// stopProfiles flushes -cpuprofile/-memprofile output; main installs
// the real hook once profiling starts.
var stopProfiles = func() error { return nil }

// exit flushes profiles before terminating (os.Exit skips defers).
func exit(code int) {
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "controlbench:", err)
	}
	os.Exit(code)
}

// runSize benchmarks one generated topology size: a best-K and an
// unbounded network for the beacon-round ablation, then the three
// lookup modes over the best-K network's registry.
func runSize(ases, bestK int, seed int64) (sizeReport, error) {
	// cores=8 densifies each ISD's core clique so same-origin beacon
	// groups actually exceed the best-K bound — with the default 4-core
	// cliques pruning never engages and the ablation arms coincide.
	spec := fmt.Sprintf("gen:isds=3,ases=%d,cores=8,seed=%d", ases, seed)
	sr := sizeReport{Scenario: spec, ASes: ases, BestK: bestK}

	nB, sc, err := buildGen(spec, seed, bestK)
	if err != nil {
		return sr, err
	}
	defer nB.Close()
	nU, _, err := buildGen(spec, seed, -1)
	if err != nil {
		return sr, err
	}
	defer nU.Close()

	if sr.Bounded, err = timeRound(nB); err != nil {
		return sr, err
	}
	if sr.Unbounded, err = timeRound(nU); err != nil {
		return sr, err
	}
	if sr.Bounded.Propagated > 0 {
		sr.FloodRatio = round2(float64(sr.Unbounded.Propagated) / float64(sr.Bounded.Propagated))
	}

	reg := nB.Registry()
	sr.CoreSegments = reg.Core.Len()
	sr.DownSegments = reg.Down.Len()

	pairs := vantagePairs(sc)
	if len(pairs) == 0 {
		return sr, fmt.Errorf("scenario %s has no vantage pairs", spec)
	}
	sr.Lookup.Pairs = len(pairs)

	scan := func(src, dst addr.IA) int {
		var ups []*segment.Segment
		if db := reg.Up[src]; db != nil {
			ups = db.GetScan(0, 0)
		}
		return len(combinator.Combine(src, dst, ups, reg.Core.GetScan(0, 0), reg.Down.GetScan(0, dst)))
	}
	indexed := func(src, dst addr.IA) int {
		var ups []*segment.Segment
		if db := reg.Up[src]; db != nil {
			ups = db.All()
		}
		return len(combinator.Combine(src, dst, ups, reg.Core.All(), reg.Down.Get(0, dst)))
	}
	warm := func(src, dst addr.IA) int { return len(nB.Paths(src, dst)) }
	for _, p := range pairs { // prime the memo so "warm" measures steady state
		warm(p[0], p[1])
	}

	sr.Lookup.ScanNsPerLookup, sr.Lookup.PathsPerLookup = measure(pairs, scan)
	sr.Lookup.IndexedNsPerLookup, _ = measure(pairs, indexed)
	sr.Lookup.WarmNsPerLookup, _ = measure(pairs, warm)
	sr.Lookup.IndexedSpeedup = round2(sr.Lookup.ScanNsPerLookup / sr.Lookup.IndexedNsPerLookup)
	sr.Lookup.WarmSpeedup = round2(sr.Lookup.ScanNsPerLookup / sr.Lookup.WarmNsPerLookup)
	return sr, nil
}

// buildGen constructs a network on the generated topology, with best-K
// pruning at its default (bestK=0) or disabled (bestK=-1).
func buildGen(spec string, seed int64, bestK int) (*core.Network, *scenario.Scenario, error) {
	g, err := scenario.ParseGenName(spec)
	if err != nil {
		return nil, nil, err
	}
	sc, err := scenario.Generate(g)
	if err != nil {
		return nil, nil, err
	}
	topo, err := sc.Build()
	if err != nil {
		return nil, nil, err
	}
	n, err := core.Build(topo, simnet.NewSim(sc.Campaign.Start()), core.Options{
		Seed:           seed,
		BestPerOrigin:  sc.Campaign.BestPerOrigin,
		PropagateBestK: bestK,
		RegisterBestK:  bestK,
	})
	if err != nil {
		return nil, nil, err
	}
	return n, sc, nil
}

// timeRound runs one full control-plane refresh and reports its wall
// time plus the beacon counter deltas it produced.
func timeRound(n *core.Network) (roundResult, error) {
	p0, x0, r0 := beaconCounters(n)
	t0 := time.Now()
	if err := n.RefreshControlPlane(); err != nil {
		return roundResult{}, err
	}
	wall := time.Since(t0)
	p1, x1, r1 := beaconCounters(n)
	return roundResult{
		WallSeconds: round2(wall.Seconds()),
		Propagated:  p1 - p0,
		Pruned:      x1 - x0,
		Registered:  r1 - r0,
	}, nil
}

// beaconCounters reads the cumulative beacon propagation counters.
func beaconCounters(n *core.Network) (propagated, pruned, registered uint64) {
	for _, m := range n.TelemetrySnapshot().Metrics {
		switch m.Name {
		case "sciera_beacon_propagated_total":
			propagated = uint64(m.Value)
		case "sciera_beacon_pruned_total":
			pruned = uint64(m.Value)
		case "sciera_beacon_registered_total":
			registered = uint64(m.Value)
		}
	}
	return propagated, pruned, registered
}

// vantagePairs enumerates all ordered vantage pairs — the lookups the
// measurement campaign resolves every probe interval.
func vantagePairs(sc *scenario.Scenario) [][2]addr.IA {
	var pairs [][2]addr.IA
	for _, src := range sc.Vantage {
		for _, dst := range sc.Vantage {
			if src != dst {
				pairs = append(pairs, [2]addr.IA{src, dst})
			}
		}
	}
	return pairs
}

// measure repeats passes over the pair set until the sampling floor is
// exceeded and returns mean ns per lookup plus mean paths per lookup.
func measure(pairs [][2]addr.IA, f func(src, dst addr.IA) int) (nsPerLookup, pathsPerLookup float64) {
	var lookups, paths int
	t0 := time.Now()
	for time.Since(t0) < measureFloor {
		for _, p := range pairs {
			paths += f(p[0], p[1])
			lookups++
		}
	}
	elapsed := time.Since(t0)
	return float64(elapsed.Nanoseconds()) / float64(lookups), float64(paths) / float64(lookups)
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}
