// Command loadbench measures the flow-level traffic engine at
// population scale: millions of simulated endpoints behind the vantage
// ASes of a scenario, an open-loop arrival process holding >100k flows
// concurrently in flight, every packet crossing the real batched data
// plane. It runs the identical workload once per scheduler (calendar
// queue vs binary heap) and reports sustained flows/sec, scheduler
// events/sec, and the peak pending-event population — the ablation that
// justifies the calendar queue as the simulator's default. The two runs
// must agree exactly (same flow counters, same FCT histogram): the
// scheduler swap is a performance choice, never a behavioral one. The
// Makefile bench-load target uses it to maintain BENCH_load.json.
//
// The workload topology and traffic parameters come from a scenario
// (-scenario <builtin|gen:spec|file>, default the two-AS "loadbench"
// builtin); any scenario with a traffic section works, e.g.
// `-scenario sciera` replays the load on the real deployment topology.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"sciera/internal/benchutil"
	"sciera/internal/core"
	"sciera/internal/scenario"
	_ "sciera/internal/sciera" // registers the builtin "sciera" scenario
	"sciera/internal/simnet"
	"sciera/internal/traffic"
)

type workload struct {
	Pairs              int     `json:"pairs"`
	EndpointsPerSource int     `json:"endpoints_per_source"`
	EndpointsSimulated int     `json:"endpoints_simulated"`
	ArrivalRatePerPair float64 `json:"arrival_rate_per_pair"`
	FlowPackets        int     `json:"flow_packets"`
	PayloadBytes       int     `json:"payload_bytes"`
	PacketIntervalMS   float64 `json:"packet_interval_ms"`
	Burst              int     `json:"burst"`
	HorizonMS          float64 `json:"horizon_ms"`
}

type row struct {
	Scheduler         string  `json:"scheduler"`
	WallSeconds       float64 `json:"wall_seconds"`
	Events            uint64  `json:"events"`
	EventsPerSec      float64 `json:"events_per_sec"`
	FlowsStarted      uint64  `json:"flows_started"`
	FlowsCompleted    uint64  `json:"flows_completed"`
	FlowsPerSec       float64 `json:"flows_per_sec"`
	PacketsSent       uint64  `json:"packets_sent"`
	PacketsDelivered  uint64  `json:"packets_delivered"`
	PeakPendingEvents int     `json:"peak_pending_events"`
	PeakActiveFlows   int     `json:"peak_active_flows"`
	EndpointsTouched  int     `json:"endpoints_touched"`
	FCTMedianMS       float64 `json:"fct_median_ms"`
	FCTp99MS          float64 `json:"fct_p99_ms"`
}

type report struct {
	Timestamp         string   `json:"timestamp"`
	HostCPUs          int      `json:"host_cpus"`
	Scenario          string   `json:"scenario"`
	Workload          workload `json:"workload"`
	Rows              []row    `json:"rows"`
	CalendarSpeedup   float64  `json:"calendar_events_per_sec_speedup"`
	IdenticalWorkload bool     `json:"identical_across_schedulers"`
	MeetsEndpoints1M  bool     `json:"meets_endpoints_1m"`
	MeetsConcurrent   bool     `json:"meets_concurrent_flows_100k"`
	MeetsCalendarWin  bool     `json:"meets_calendar_faster"`
	Note              string   `json:"note,omitempty"`
}

// fixedSize pins the flow length so the concurrency high-water mark is
// a workload parameter, not a draw: the point of this bench is the
// scheduler under a known pending-event population. (The engine's
// heavy-tailed distributions are exercised by its tests and the
// hercules/lightningfilter load scenarios.)
type fixedSize struct{ n int }

func (f fixedSize) Sample(*rand.Rand) int { return f.n }

func buildNet(s *scenario.Scenario, kind simnet.SchedulerKind) (*core.Network, *simnet.Sim, error) {
	topo, err := s.Build()
	if err != nil {
		return nil, nil, err
	}
	sim := simnet.NewSimWithScheduler(s.Campaign.Start(), kind)
	intra := time.Duration(s.Traffic.IntraASDelayUS * float64(time.Microsecond))
	n, err := core.Build(topo, sim, core.Options{Seed: 1, IntraASDelay: intra})
	if err != nil {
		return nil, nil, err
	}
	return n, sim, nil
}

func runOnce(s *scenario.Scenario, kind simnet.SchedulerKind, w workload) (row, traffic.Stats, string, error) {
	n, sim, err := buildNet(s, kind)
	if err != nil {
		return row{}, traffic.Stats{}, "", err
	}
	defer n.Close()

	pairs := make([]traffic.Pair, len(s.Traffic.Pairs))
	for i, p := range s.Traffic.Pairs {
		pairs[i] = traffic.Pair{Src: p.Src, Dst: p.Dst}
	}
	e, err := traffic.New(n, traffic.Config{
		Pairs:          pairs,
		Endpoints:      w.EndpointsPerSource,
		ArrivalRate:    w.ArrivalRatePerPair,
		FlowSizes:      fixedSize{w.FlowPackets},
		PayloadBytes:   w.PayloadBytes,
		PacketInterval: time.Duration(w.PacketIntervalMS * float64(time.Millisecond)),
		Burst:          w.Burst,
		Seed:           s.Traffic.Seed,
	})
	if err != nil {
		return row{}, traffic.Stats{}, "", err
	}
	defer e.Close()

	start := time.Now()
	e.Start(time.Duration(w.HorizonMS * float64(time.Millisecond)))
	sim.Run()
	wall := time.Since(start).Seconds()

	st := e.Stats()
	fct := e.FCT()
	events := sim.ProcessedEvents()
	r := row{
		Scheduler:         kind.String(),
		WallSeconds:       wall,
		Events:            events,
		EventsPerSec:      float64(events) / wall,
		FlowsStarted:      st.FlowsStarted,
		FlowsCompleted:    st.FlowsCompleted,
		FlowsPerSec:       float64(st.FlowsStarted) / wall,
		PacketsSent:       st.PacketsSent,
		PacketsDelivered:  st.PacketsDelivered,
		PeakPendingEvents: sim.PeakPending(),
		PeakActiveFlows:   st.PeakActiveFlows,
		EndpointsTouched:  st.EndpointsTouched,
		FCTMedianMS:       fct.Quantile(0.5),
		FCTp99MS:          fct.Quantile(0.99),
	}
	// The workload fingerprint must be scheduler-independent: full
	// stats plus the exact FCT histogram.
	fp := fmt.Sprintf("%+v|%+v|%d", st, fct, st.PeakActiveFlows)
	return r, st, fp, nil
}

func main() {
	out := flag.String("out", "BENCH_load.json", "output JSON path")
	quick := flag.Bool("quick", false, "reduced-scale smoke run")
	scen := flag.String("scenario", "loadbench", "scenario supplying topology and traffic parameters: builtin name, gen:<spec>, or file path")
	cpu := flag.String("cpuprofile", "", "write a CPU profile to this file")
	mem := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	stop, err := benchutil.StartProfiles(*cpu, *mem)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadbench:", err)
		exit(1)
	}
	stopProfiles = stop

	s, err := scenario.Resolve(*scen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadbench:", err)
		exit(1)
	}
	if s.Traffic == nil {
		fmt.Fprintf(os.Stderr, "loadbench: scenario %q has no traffic section\n", s.Name)
		exit(1)
	}

	// The loadbench builtin's defaults hold >100k flows in flight from
	// >2M simulated endpoints: 45k flows/sec/pair x 2 pairs arriving
	// for 1.5s of virtual time, each flow 128 packets paced over ~3.2s
	// — arrivals outlive the horizon, so the in-flight population ramps
	// to ~135k and stays there while the tail drains.
	w := workload{
		Pairs:              len(s.Traffic.Pairs),
		EndpointsPerSource: s.Traffic.EndpointsPerSource,
		ArrivalRatePerPair: s.Traffic.ArrivalRatePerPair,
		FlowPackets:        s.Traffic.FlowPackets,
		PayloadBytes:       s.Traffic.PayloadBytes,
		PacketIntervalMS:   s.Traffic.PacketIntervalMS,
		Burst:              s.Traffic.Burst,
		HorizonMS:          s.Traffic.HorizonMS,
	}
	if *quick {
		w.EndpointsPerSource = 1 << 16
		w.ArrivalRatePerPair = 2_000
		w.HorizonMS = 300
	}
	w.EndpointsSimulated = w.Pairs * w.EndpointsPerSource

	rep := report{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		HostCPUs:  runtime.NumCPU(),
		Scenario:  s.Name,
		Workload:  w,
	}

	var fps []string
	for _, kind := range []simnet.SchedulerKind{simnet.SchedulerHeap, simnet.SchedulerCalendar} {
		fmt.Fprintf(os.Stderr, "loadbench: running %v scheduler...\n", kind)
		r, _, fp, err := runOnce(s, kind, w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadbench: %v\n", err)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "loadbench: %v: %.1fs wall, %.0f events/sec, peak pending %d, peak active flows %d\n",
			kind, r.WallSeconds, r.EventsPerSec, r.PeakPendingEvents, r.PeakActiveFlows)
		rep.Rows = append(rep.Rows, r)
		fps = append(fps, fp)
	}

	heapRow, calRow := rep.Rows[0], rep.Rows[1]
	rep.CalendarSpeedup = calRow.EventsPerSec / heapRow.EventsPerSec
	rep.IdenticalWorkload = fps[0] == fps[1]
	rep.MeetsEndpoints1M = calRow.EndpointsTouched >= 0 && w.EndpointsSimulated >= 1_000_000
	rep.MeetsConcurrent = calRow.PeakActiveFlows >= 100_000
	rep.MeetsCalendarWin = rep.CalendarSpeedup > 1.0
	if *quick {
		rep.Note = "quick mode: scale gates not meaningful"
	}

	if !rep.IdenticalWorkload {
		fmt.Fprintln(os.Stderr, "loadbench: FATAL: schedulers disagree on workload outcome")
		exit(1)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadbench:", err)
		exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "loadbench:", err)
		exit(1)
	}
	fmt.Printf("loadbench: calendar %.2fx events/sec vs heap (peak pending %d); wrote %s\n",
		rep.CalendarSpeedup, calRow.PeakPendingEvents, *out)
	exit(0)
}

// stopProfiles flushes -cpuprofile/-memprofile output; main installs
// the real hook once profiling starts.
var stopProfiles = func() error { return nil }

// exit flushes profiles before terminating (os.Exit skips defers).
func exit(code int) {
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "loadbench:", err)
	}
	os.Exit(code)
}
