// Command bootstrapper runs the end-host bootstrapping benchmark: a
// simulated campus LAN with every hinting mechanism enabled, timing
// hint retrieval and configuration retrieval per mechanism and platform
// (Figure 4's measurement).
//
//	bootstrapper              # 30 runs per mechanism per OS
//	bootstrapper -runs 5      # quicker
package main

import (
	"flag"
	"fmt"
	"os"

	"sciera/internal/experiments"
)

func main() {
	var (
		runs = flag.Int("runs", 30, "runs per mechanism per OS")
		seed = flag.Int64("seed", 42, "seed")
	)
	flag.Parse()
	cfg := experiments.Config{Seed: *seed, Quick: *runs < 30}
	if err := experiments.Figure4(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
