// Command dataplanebench measures the batched data-plane pipeline:
// packets-per-second through two border routers (ingress decode, hop
// verification, egress) at increasing burst sizes, against the
// single-packet baseline. It also cross-checks the strided-determinism
// contract — a mixed burst (varying sizes, one corrupted checksum, one
// runt) must produce a byte-identical delivery transcript and identical
// router counters at every batch-worker count. The Makefile
// bench-dataplane target uses it to maintain BENCH_dataplane.json.
//
// The pps figures use minimum-size packets, the router benchmarking
// convention: per-packet machinery dominates, which is exactly what the
// batch path amortizes. Payload-proportional costs (checksum, copies)
// are identical on both paths.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"net/netip"
	"os"
	"runtime"
	"time"

	"sciera/internal/addr"
	"sciera/internal/core"
	"sciera/internal/router"
	"sciera/internal/simnet"
	"sciera/internal/slayers"
	"sciera/internal/topology"
)

type batchRow struct {
	Batch       int     `json:"batch"`
	Workers     int     `json:"workers"`
	Rounds      int     `json:"rounds"`
	WallSeconds float64 `json:"wall_seconds"`
	PPS         float64 `json:"pps"`
	NsPerPacket float64 `json:"ns_per_packet"`
}

type report struct {
	Timestamp                  string     `json:"timestamp"`
	HostCPUs                   int        `json:"host_cpus"`
	Rows                       []batchRow `json:"rows"`
	SpeedupBatch32             float64    `json:"speedup_batch32"`
	SpeedupTarget              float64    `json:"speedup_target"`
	MeetsTarget                bool       `json:"meets_target"`
	ByteIdenticalAcrossWorkers bool       `json:"byte_identical_across_workers"`
	WorkerCountsChecked        []int      `json:"worker_counts_checked"`
	Note                       string     `json:"note,omitempty"`
}

// speedupTarget is the acceptance floor for batch=32 pps over the
// single-packet baseline.
const speedupTarget = 5.0

// plane is the two-AS benchmark data plane: one link, one router per
// AS, a sender and a counting receiver in opposite ASes.
type plane struct {
	n    *core.Network
	sim  *simnet.Sim
	a, z addr.IA
	rtrA *router.Router
	rtrZ *router.Router
	src  simnet.Conn
	raw  []byte // minimum-size reference packet
	got  *int
	recv netip.AddrPort
	// onRecv, when set, observes every delivered payload in order.
	onRecv func([]byte)
}

func buildPlane(workers int) (*plane, error) {
	topo := topology.New()
	a := addr.MustParseIA("71-1")
	z := addr.MustParseIA("71-2")
	if err := topo.AddAS(topology.ASInfo{IA: a, Core: true}); err != nil {
		return nil, err
	}
	if err := topo.AddAS(topology.ASInfo{IA: z, Core: true}); err != nil {
		return nil, err
	}
	if _, err := topo.AddLink(topology.LinkEnd{IA: a}, topology.LinkEnd{IA: z}, topology.LinkCore, 0.01, ""); err != nil {
		return nil, err
	}
	sim := simnet.NewSim(time.Unix(0, 0))
	n, err := core.Build(topo, sim, core.Options{
		Seed: 1, IntraASDelay: time.Nanosecond, RouterBatchWorkers: workers,
	})
	if err != nil {
		return nil, err
	}
	p := &plane{n: n, sim: sim, a: a, z: z, got: new(int)}
	conn, err := sim.Listen(netip.AddrPortFrom(sim.AllocAddr(), 40000), func(b []byte, _ netip.AddrPort) {
		*p.got++
		if p.onRecv != nil {
			p.onRecv(b)
		}
	})
	if err != nil {
		n.Close()
		return nil, err
	}
	p.recv = conn.LocalAddr()
	if p.src, err = sim.Listen(netip.AddrPort{}, nil); err != nil {
		n.Close()
		return nil, err
	}
	p.rtrA, _ = n.Router(a)
	p.rtrZ, _ = n.Router(z)
	if p.raw, err = p.packet(make([]byte, 8)); err != nil {
		n.Close()
		return nil, err
	}
	return p, nil
}

// packet serializes a src→recv UDP packet with the given payload over
// the first discovered path.
func (p *plane) packet(payload []byte) ([]byte, error) {
	paths := p.n.Paths(p.a, p.z)
	if len(paths) == 0 {
		return nil, fmt.Errorf("no path %v -> %v", p.a, p.z)
	}
	pkt := &slayers.Packet{
		Hdr: slayers.SCION{
			DstIA: p.z, SrcIA: p.a,
			DstHost: p.recv.Addr(),
			SrcHost: p.src.LocalAddr().Addr(),
			Path:    *paths[0].Raw.Copy(),
		},
		UDP:     &slayers.UDP{SrcPort: p.src.LocalAddr().Port(), DstPort: 40000},
		Payload: payload,
	}
	return pkt.Serialize(nil)
}

// measure forwards rounds bursts of the given size and returns the row.
func (p *plane) measure(batch, workers, rounds int) batchRow {
	pkts := make([][]byte, batch)
	dests := make([]netip.AddrPort, batch)
	for i := range pkts {
		pkts[i] = p.raw
		dests[i] = p.rtrA.LocalAddr()
	}
	// Warm pools (processors, merged burst events, egress scratch).
	for i := 0; i < 64; i++ {
		_ = p.src.SendBatch(pkts, dests)
		p.sim.Run()
	}
	before := *p.got
	t0 := time.Now()
	for i := 0; i < rounds; i++ {
		_ = p.src.SendBatch(pkts, dests)
		p.sim.Run()
	}
	wall := time.Since(t0)
	if delivered := *p.got - before; delivered != rounds*batch {
		fmt.Fprintf(os.Stderr, "dataplanebench: FAIL: batch=%d delivered %d packets, want %d\n", batch, delivered, rounds*batch)
		os.Exit(1)
	}
	total := float64(rounds * batch)
	return batchRow{
		Batch:       batch,
		Workers:     workers,
		Rounds:      rounds,
		WallSeconds: round2(wall.Seconds()),
		PPS:         float64(int64(total / wall.Seconds())),
		NsPerPacket: round2(float64(wall.Nanoseconds()) / total),
	}
}

// transcript drives a mixed 40-packet burst — three payload sizes, a
// corrupted checksum every seventh packet, a runt at the end — and
// returns an order-sensitive digest of every delivered payload plus the
// router counters the burst must reproduce exactly.
func transcript(workers int) (string, error) {
	p, err := buildPlane(workers)
	if err != nil {
		return "", err
	}
	defer p.n.Close()
	h := fnv.New64a()
	p.onRecv = func(b []byte) { h.Write(b) }

	const burst = 40
	pkts := make([][]byte, 0, burst)
	dests := make([]netip.AddrPort, 0, burst)
	for i := 0; i < burst; i++ {
		size := 64
		if i%3 == 1 {
			size = 200
		}
		payload := make([]byte, size)
		for j := range payload {
			payload[j] = byte(i + j)
		}
		raw, err := p.packet(payload)
		if err != nil {
			return "", err
		}
		if i%7 == 0 {
			raw[len(raw)-1] ^= 0xff // corrupt the checksum
		}
		pkts = append(pkts, raw)
		dests = append(dests, p.rtrA.LocalAddr())
	}
	pkts = append(pkts, []byte{1, 2, 3}) // runt
	dests = append(dests, p.rtrA.LocalAddr())
	if err := p.src.SendBatch(pkts, dests); err != nil {
		return "", err
	}
	p.sim.Run()
	ma, mz := p.rtrA.Metrics(), p.rtrZ.Metrics()
	return fmt.Sprintf("delivered=%d digest=%016x a_fwd=%d a_parse=%d z_fwd=%d z_parse=%d",
		*p.got, h.Sum64(),
		ma.Forwarded.Load(), ma.ParseFailures.Load(),
		mz.Forwarded.Load(), mz.ParseFailures.Load()), nil
}

func main() {
	var (
		rounds = flag.Int("rounds", 400000, "measurement rounds for batch=1 (scaled down for larger bursts)")
		out    = flag.String("out", "BENCH_dataplane.json", "write the JSON report here")
	)
	flag.Parse()
	fmt.Fprintf(os.Stderr, "dataplanebench: host_cpus=%d rounds=%d\n", runtime.NumCPU(), *rounds)

	rep := report{
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		HostCPUs:      runtime.NumCPU(),
		SpeedupTarget: speedupTarget,
	}

	// pps rows: batch sizes at inline verification, plus the strided
	// worker pool at batch=32 (useful on multi-core hosts only).
	type cfg struct{ batch, workers int }
	for _, c := range []cfg{{1, 0}, {8, 0}, {32, 0}, {32, 4}} {
		p, err := buildPlane(c.workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dataplanebench:", err)
			os.Exit(1)
		}
		r := p.measure(c.batch, c.workers, *rounds/c.batch)
		p.n.Close()
		fmt.Fprintf(os.Stderr, "dataplanebench: batch=%d workers=%d: %.0f pps (%.0f ns/pkt)\n",
			c.batch, c.workers, r.PPS, r.NsPerPacket)
		rep.Rows = append(rep.Rows, r)
	}
	rep.SpeedupBatch32 = round2(rep.Rows[2].PPS / rep.Rows[0].PPS)
	rep.MeetsTarget = rep.SpeedupBatch32 >= speedupTarget
	if rep.HostCPUs < 4 {
		rep.Note = fmt.Sprintf("host has %d CPU(s): the workers=4 row cannot beat inline verification here; it documents the strided pool's determinism, not its speed", rep.HostCPUs)
	}

	// Determinism cross-check: the mixed-burst transcript must be
	// byte-identical at every worker count.
	workerCounts := []int{0, 2, 3, 8}
	ref, err := transcript(workerCounts[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "dataplanebench:", err)
		os.Exit(1)
	}
	rep.ByteIdenticalAcrossWorkers = true
	rep.WorkerCountsChecked = workerCounts
	for _, w := range workerCounts[1:] {
		got, err := transcript(w)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dataplanebench:", err)
			os.Exit(1)
		}
		if got != ref {
			rep.ByteIdenticalAcrossWorkers = false
			fmt.Fprintf(os.Stderr, "dataplanebench: FAIL: workers=%d transcript differs:\n  %s\n  %s\n", w, ref, got)
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dataplanebench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "dataplanebench:", err)
		os.Exit(1)
	}
	if !rep.ByteIdenticalAcrossWorkers {
		os.Exit(1)
	}
	if !rep.MeetsTarget {
		fmt.Fprintf(os.Stderr, "dataplanebench: FAIL: batch=32 speedup %.2fx below %.1fx target\n",
			rep.SpeedupBatch32, speedupTarget)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "dataplanebench: batch=32 speedup %.2fx (target %.1fx); transcripts byte-identical at workers=%v; report in %s\n",
		rep.SpeedupBatch32, speedupTarget, workerCounts, *out)
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}
