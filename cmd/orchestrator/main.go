// Command orchestrator demonstrates the SCION Orchestrator workflow of
// Section 4.4 on a live in-process deployment: provision a new AS from
// a JSON config, run automated certificate renewal, monitor
// connectivity with alerting, and print the status dashboard.
//
//	orchestrator -config as.json   # provision from a config file
//	orchestrator                   # demo with a built-in config
package main

import (
	"crypto/x509"
	"flag"
	"fmt"
	"os"
	"time"

	"sciera/internal/addr"
	"sciera/internal/ca"
	"sciera/internal/core"
	"sciera/internal/cppki"
	"sciera/internal/orchestrator"
	"sciera/internal/sciera"
	"sciera/internal/simnet"
)

const demoConfig = `{
  "ia": "71-2:0:99",
  "name": "New University",
  "lat": 48.15, "lon": 11.58,
  "uplinks": [
    {"parent": "71-20965", "latency_ms": 4.5, "name": "NREN VLAN 1"},
    {"parent": "71-20965", "latency_ms": 6.0, "name": "NREN VLAN 2"}
  ]
}`

func main() {
	var (
		configPath = flag.String("config", "", "AS provisioning config (JSON); demo config if empty")
		seed       = flag.Int64("seed", 42, "seed")
	)
	flag.Parse()

	raw := []byte(demoConfig)
	if *configPath != "" {
		b, err := os.ReadFile(*configPath)
		fatal(err)
		raw = b
	}
	cfg, err := orchestrator.ParseASConfig(raw)
	fatal(err)

	// Bring up SCIERA on the simulator (virtual time lets the demo
	// fast-forward through days of renewals in milliseconds).
	topo, err := sciera.Build()
	fatal(err)
	sim := simnet.NewSim(time.Now())
	n, err := core.Build(topo, sim, core.Options{Seed: *seed, BestPerOrigin: 8})
	fatal(err)
	defer n.Close()
	o := orchestrator.New(n)
	o.AlertFunc = func(a orchestrator.Alert) {
		fmt.Printf("[email] %s\n", a.Message)
	}

	// 1. Provision the new AS.
	fmt.Printf("provisioning %s (%s)...\n", cfg.IA, cfg.Name)
	fatal(o.Provision(cfg))
	for _, e := range o.Events() {
		fmt.Println("  " + e)
	}
	paths := n.Paths(addr.MustParseIA("71-225"), cfg.IA)
	fmt.Printf("UVa now reaches the new AS over %d path(s)\n\n", len(paths))

	// 2. Automated certificate renewal against the ISD CA.
	p, err := cppki.ProvisionISD(71, []addr.IA{addr.MustParseIA("71-20965")},
		[]addr.IA{addr.MustParseIA("71-20965")},
		cppki.ProvisionOptions{NotBefore: sim.Now().Add(-time.Hour)})
	fatal(err)
	caCert, err := x509.ParseCertificate(p.CACerts[addr.MustParseIA("71-20965")].Cert)
	fatal(err)
	issuer := ca.New(addr.MustParseIA("71-20965"), caCert, p.CACerts[addr.MustParseIA("71-20965")].Key, 72*time.Hour)
	issuer.Now = sim.Now
	r, err := o.ManageRenewal(cfg.IA, issuer, 6*time.Hour)
	fatal(err)

	// 3. Connectivity monitoring from GEANT.
	fatal(o.StartMonitoring(addr.MustParseIA("71-20965"), time.Minute))

	// Simulate a week of operation with one incident.
	fmt.Println("simulating 7 days of operation with a mid-week circuit outage...")
	sim.RunFor(3 * 24 * time.Hour)
	if id, ok := sciera.LinkIDByName(n.Topo, "RNP-UFMS (VLAN1)"); ok {
		_ = n.Topo.SetLinkUp(id, false)
	}
	if id, ok := sciera.LinkIDByName(n.Topo, "RNP-UFMS (VLAN2)"); ok {
		_ = n.Topo.SetLinkUp(id, false)
	}
	sim.RunFor(6 * time.Hour)
	if id, ok := sciera.LinkIDByName(n.Topo, "RNP-UFMS (VLAN1)"); ok {
		_ = n.Topo.SetLinkUp(id, true)
	}
	if id, ok := sciera.LinkIDByName(n.Topo, "RNP-UFMS (VLAN2)"); ok {
		_ = n.Topo.SetLinkUp(id, true)
	}
	sim.RunFor(4*24*time.Hour - 6*time.Hour)

	fmt.Printf("\ncertificate renewals over the week: %d\n", r.Renewals())
	fmt.Printf("alerts raised: %d\n\n", len(o.Alerts()))
	fmt.Println(o.Dashboard())
	o.Stop()
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
