package main

import (
	"net/netip"
	"testing"

	"sciera/internal/dispatcher"
	"sciera/internal/slayers"
	"sciera/internal/telemetry"
)

// TestRouterForwardingZeroAlloc guards the PR 1 invariant under PR 3's
// instrumentation: the forwarding fast path must not allocate in steady
// state even with the telemetry registry, per-interface counters, trace
// ring and queue-delay hook all enabled (the default configuration).
func TestRouterForwardingZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; run without -race")
	}
	b := &testing.B{}
	n, sim, a, z := benchNetOpts(b, false, false)
	defer n.Close()
	if n.Telemetry() == nil || n.TraceRing() == nil {
		t.Fatal("telemetry not enabled on the benchmark network")
	}
	recv, err := sim.Listen(netip.AddrPortFrom(sim.AllocAddr(), 40000), func([]byte, netip.AddrPort) {})
	if err != nil {
		t.Fatal(err)
	}
	src, err := sim.Listen(netip.AddrPort{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rtrA, _ := n.Router(a)
	paths := n.Paths(a, z)
	if len(paths) == 0 {
		t.Fatal("no path")
	}
	pkt := &slayers.Packet{
		Hdr: slayers.SCION{
			DstIA: z, SrcIA: a,
			DstHost: recv.LocalAddr().Addr(),
			SrcHost: src.LocalAddr().Addr(),
			Path:    *paths[0].Raw.Copy(),
		},
		UDP:     &slayers.UDP{SrcPort: src.LocalAddr().Port(), DstPort: 40000},
		Payload: make([]byte, 1000),
	}
	raw, err := pkt.Serialize(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Warm pools (packet processors, sim event buffers) and cross the
	// first trace-sampling ticks before measuring.
	for i := 0; i < 256; i++ {
		_ = src.Send(raw, rtrA.LocalAddr())
		sim.Run()
	}
	if allocs := testing.AllocsPerRun(512, func() {
		_ = src.Send(raw, rtrA.LocalAddr())
		sim.Run()
	}); allocs != 0 {
		t.Errorf("router forwarding with telemetry enabled: %.2f allocs/op, want 0", allocs)
	}
	fwd := rtrA.Metrics().Forwarded.Load()
	if fwd == 0 {
		t.Error("telemetry counters did not advance")
	}
	if seen, _ := n.TraceRing().Stats(); seen == 0 {
		t.Error("trace ring saw no packets")
	}
	if v, ok := n.Telemetry().Snapshot().Value("sciera_router_forwarded_total", telemetry.L("ia", a.String())); !ok || v != float64(fwd) {
		t.Errorf("registry series (%g, %v) disagrees with metrics cell %d", v, ok, fwd)
	}
}

// TestDispatcherDeliveryZeroAlloc guards the dispatcher demux path the
// same way: end-to-end delivery through router + dispatcher, telemetry
// and trace sampling enabled, zero allocations in steady state.
func TestDispatcherDeliveryZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; run without -race")
	}
	b := &testing.B{}
	n, sim, a, z := benchNetOpts(b, true, false)
	defer n.Close()
	disp, err := dispatcher.Start(sim, sim.AllocAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer disp.Close()
	disp.RegisterTelemetry(n.Telemetry())
	disp.Trace = n.TraceRing()
	disp.PerPacketWork = 1

	got := 0
	appConn, err := sim.Listen(netip.AddrPort{}, func([]byte, netip.AddrPort) { got++ })
	if err != nil {
		t.Fatal(err)
	}
	if err := disp.Register(40000, appConn.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	recvAddr := netip.AddrPortFrom(disp.Addr().Addr(), 40000)

	src, err := sim.Listen(netip.AddrPort{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rtrA, _ := n.Router(a)
	paths := n.Paths(a, z)
	if len(paths) == 0 {
		t.Fatal("no path")
	}
	pkt := &slayers.Packet{
		Hdr: slayers.SCION{
			DstIA: z, SrcIA: a,
			DstHost: recvAddr.Addr(),
			SrcHost: src.LocalAddr().Addr(),
			Path:    *paths[0].Raw.Copy(),
		},
		UDP:     &slayers.UDP{SrcPort: src.LocalAddr().Port(), DstPort: 40000},
		Payload: make([]byte, 1000),
	}
	raw, err := pkt.Serialize(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		_ = src.Send(raw, rtrA.LocalAddr())
		sim.Run()
	}
	before := got
	if allocs := testing.AllocsPerRun(512, func() {
		_ = src.Send(raw, rtrA.LocalAddr())
		sim.Run()
	}); allocs != 0 {
		t.Errorf("dispatcher delivery with telemetry enabled: %.2f allocs/op, want 0", allocs)
	}
	if got <= before {
		t.Fatalf("no packets delivered during measurement (%d -> %d)", before, got)
	}
	if disp.DemuxHits.Load() == 0 {
		t.Error("dispatcher demux-hit counter did not advance")
	}
	if v := n.Telemetry().Snapshot().Total("sciera_dispatcher_demux_hits_total"); v != float64(disp.DemuxHits.Load()) {
		t.Errorf("registry demux hits %g disagree with cell %d", v, disp.DemuxHits.Load())
	}
}

// TestRouterForwardingBatchZeroAlloc guards the batch pipeline the same
// way: a 32-packet same-flow burst injected with SendBatch, forwarded
// through two routers as merged burst events and delivered in one batch
// callback, must not allocate in steady state — the whole point of the
// batch path is amortizing per-packet machinery, not trading it for
// per-burst garbage.
func TestRouterForwardingBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; run without -race")
	}
	const batch = 32
	b := &testing.B{}
	n, sim, a, z := benchNetOpts(b, false, false)
	defer n.Close()
	got := 0
	recv, err := sim.Listen(netip.AddrPortFrom(sim.AllocAddr(), 40000), func([]byte, netip.AddrPort) { got++ })
	if err != nil {
		t.Fatal(err)
	}
	src, err := sim.Listen(netip.AddrPort{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rtrA, _ := n.Router(a)
	paths := n.Paths(a, z)
	if len(paths) == 0 {
		t.Fatal("no path")
	}
	pkt := &slayers.Packet{
		Hdr: slayers.SCION{
			DstIA: z, SrcIA: a,
			DstHost: recv.LocalAddr().Addr(),
			SrcHost: src.LocalAddr().Addr(),
			Path:    *paths[0].Raw.Copy(),
		},
		UDP:     &slayers.UDP{SrcPort: src.LocalAddr().Port(), DstPort: 40000},
		Payload: make([]byte, 1000),
	}
	raw, err := pkt.Serialize(nil)
	if err != nil {
		t.Fatal(err)
	}
	pkts := make([][]byte, batch)
	dests := make([]netip.AddrPort, batch)
	for i := range pkts {
		pkts[i] = raw
		dests[i] = rtrA.LocalAddr()
	}
	// Warm pools: packet processors, merged burst events and their
	// per-packet buffers, egress batch scratch.
	for i := 0; i < 64; i++ {
		_ = src.SendBatch(pkts, dests)
		sim.Run()
	}
	before := got
	if allocs := testing.AllocsPerRun(256, func() {
		_ = src.SendBatch(pkts, dests)
		sim.Run()
	}); allocs != 0 {
		t.Errorf("batch forwarding with telemetry enabled: %.2f allocs/op, want 0", allocs)
	}
	if delivered := got - before; delivered < 256*batch {
		t.Errorf("delivered %d packets during measurement, want at least %d", delivered, 256*batch)
	}
	if fwd := rtrA.Metrics().Forwarded.Load(); fwd == 0 {
		t.Error("telemetry counters did not advance")
	}
}
