// Package main holds the benchmark harness that regenerates every table
// and figure of the paper's evaluation (one benchmark per table/figure;
// see DESIGN.md's per-experiment index), plus the ablation benchmarks
// for the design decisions the paper discusses: the dispatcher vs
// dispatcherless end-host stack (Section 4.8), LightningFilter vs a
// legacy address filter (Section 4.7.1), and Hercules single-path vs
// multipath striping.
//
// Run with:
//
//	go test -bench=. -benchmem
package main

import (
	"fmt"
	"io"
	"net/netip"
	"testing"
	"time"

	"sciera/internal/addr"
	"sciera/internal/combinator"
	"sciera/internal/core"
	"sciera/internal/dispatcher"
	"sciera/internal/experiments"
	"sciera/internal/multiping"
	"sciera/internal/pan"
	"sciera/internal/scenario"
	"sciera/internal/sciera"
	"sciera/internal/simnet"
	"sciera/internal/slayers"
	"sciera/internal/topology"
)

// quickCfg keeps the per-iteration work bounded; the experiments binary
// runs the full scale.
var quickCfg = experiments.Config{Seed: 42, Quick: true}

// benchScn is the builtin reference scenario the figure benchmarks
// render from (registered by the sciera import above).
var benchScn = scenario.MustBuiltin("sciera")

func BenchmarkTable1_PoPs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1(io.Discard, benchScn)
	}
}

func BenchmarkFig1_Topology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Figure1(io.Discard, benchScn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3_DeploymentEffort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure3(io.Discard, benchScn)
	}
}

func BenchmarkFig4_Bootstrap(b *testing.B) {
	// One full bootstrap (hint + config retrieval) per mechanism per
	// OS profile, one run each.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4Runs(int64(i), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// campaignForBench runs a small shared campaign once.
func campaignForBench(b *testing.B) (*multiping.Dataset, *core.Network) {
	b.Helper()
	ds, n, err := experiments.RunCampaign(quickCfg)
	if err != nil {
		b.Fatal(err)
	}
	return ds, n
}

func BenchmarkFig5_RTTCDF(b *testing.B) {
	ds, n := campaignForBench(b)
	defer n.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure5(io.Discard, ds)
	}
}

func BenchmarkFig6_RTTRatio(b *testing.B) {
	ds, n := campaignForBench(b)
	defer n.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure6(io.Discard, benchScn, ds)
	}
}

func BenchmarkFig7_RatioOverTime(b *testing.B) {
	ds, n := campaignForBench(b)
	defer n.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure7(io.Discard, benchScn, ds)
	}
}

func BenchmarkFig8_ActivePaths(b *testing.B) {
	ds, n := campaignForBench(b)
	defer n.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure8(io.Discard, benchScn, ds)
	}
}

func BenchmarkFig9_PathDeviation(b *testing.B) {
	ds, n := campaignForBench(b)
	defer n.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure9(io.Discard, benchScn, ds, 12*time.Hour, 10*time.Minute)
	}
}

func BenchmarkFig10a_LatencyInflation(b *testing.B) {
	ds, n := campaignForBench(b)
	defer n.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure10a(io.Discard, ds)
	}
}

func BenchmarkFig10b_Disjointness(b *testing.B) {
	n, _, err := experiments.BuildNetwork(42)
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure10b(io.Discard, benchScn, n)
	}
}

func BenchmarkFig10c_LinkFailures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Figure10c(io.Discard, quickCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_HintMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table2(io.Discard)
	}
}

func BenchmarkEnablementTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.EnablementTable(io.Discard)
	}
}

func BenchmarkSurveyTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.SurveyTable(io.Discard)
	}
}

// --- Ablations ---

// benchNet builds a two-AS data plane on the simulator (telemetry on, as
// in every production configuration).
func benchNet(b *testing.B, useDispatcher bool) (*core.Network, *simnet.Sim, addr.IA, addr.IA) {
	return benchNetOpts(b, useDispatcher, false)
}

// benchNetOpts is benchNet with the telemetry ablation switch exposed
// (the instrumented-vs-uninstrumented overhead comparison).
func benchNetOpts(b *testing.B, useDispatcher, noTelemetry bool) (*core.Network, *simnet.Sim, addr.IA, addr.IA) {
	return benchNetCore(b, core.Options{
		Seed: 1, UseDispatcher: useDispatcher, IntraASDelay: time.Nanosecond,
		NoTelemetry: noTelemetry,
	})
}

// benchNetCore builds the two-AS benchmark data plane with fully
// caller-chosen network options.
func benchNetCore(b *testing.B, opts core.Options) (*core.Network, *simnet.Sim, addr.IA, addr.IA) {
	b.Helper()
	topo := topology.New()
	a := addr.MustParseIA("71-1")
	z := addr.MustParseIA("71-2")
	if err := topo.AddAS(topology.ASInfo{IA: a, Core: true}); err != nil {
		b.Fatal(err)
	}
	if err := topo.AddAS(topology.ASInfo{IA: z, Core: true}); err != nil {
		b.Fatal(err)
	}
	if _, err := topo.AddLink(topology.LinkEnd{IA: a}, topology.LinkEnd{IA: z}, topology.LinkCore, 0.01, ""); err != nil {
		b.Fatal(err)
	}
	sim := simnet.NewSim(time.Unix(0, 0))
	n, err := core.Build(topo, sim, opts)
	if err != nil {
		b.Fatal(err)
	}
	return n, sim, a, z
}

// benchDeliver measures end-to-end packet delivery through the full
// serialized data plane, with and without the legacy dispatcher in the
// receive path (the Section 4.8 ablation).
func benchDeliver(b *testing.B, useDispatcher bool) {
	benchDeliverOpts(b, useDispatcher, false)
}

func benchDeliverOpts(b *testing.B, useDispatcher, noTelemetry bool) {
	n, sim, a, z := benchNetOpts(b, useDispatcher, noTelemetry)
	defer n.Close()

	var disp *dispatcher.Dispatcher
	recvAddr := netip.AddrPortFrom(sim.AllocAddr(), 40000)
	got := 0
	if useDispatcher {
		var err error
		disp, err = dispatcher.Start(sim, sim.AllocAddr())
		if err != nil {
			b.Fatal(err)
		}
		defer disp.Close()
		if reg := n.Telemetry(); reg != nil {
			disp.RegisterTelemetry(reg)
			disp.Trace = n.TraceRing()
		}
		appConn, err := sim.Listen(netip.AddrPort{}, func([]byte, netip.AddrPort) { got++ })
		if err != nil {
			b.Fatal(err)
		}
		if err := disp.Register(40000, appConn.LocalAddr()); err != nil {
			b.Fatal(err)
		}
		disp.PerPacketWork = 1
		recvAddr = netip.AddrPortFrom(disp.Addr().Addr(), 40000)
	} else {
		if _, err := sim.Listen(recvAddr, func([]byte, netip.AddrPort) { got++ }); err != nil {
			b.Fatal(err)
		}
	}

	src, err := sim.Listen(netip.AddrPort{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	rtrA, _ := n.Router(a)
	paths := n.Paths(a, z)
	if len(paths) == 0 {
		b.Fatal("no path")
	}
	pkt := &slayers.Packet{
		Hdr: slayers.SCION{
			DstIA: z, SrcIA: a,
			DstHost: recvAddr.Addr(),
			SrcHost: src.LocalAddr().Addr(),
			Path:    *paths[0].Raw.Copy(),
		},
		UDP:     &slayers.UDP{SrcPort: src.LocalAddr().Port(), DstPort: 40000},
		Payload: make([]byte, 1000),
	}
	raw, err := pkt.Serialize(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.Send(raw, rtrA.LocalAddr()); err != nil {
			b.Fatal(err)
		}
		sim.Run()
	}
	if got != b.N {
		b.Fatalf("delivered %d of %d", got, b.N)
	}
}

func BenchmarkDispatcherDelivery(b *testing.B)     { benchDeliver(b, true) }
func BenchmarkDispatcherlessDelivery(b *testing.B) { benchDeliver(b, false) }

// BenchmarkDispatcherDeliveryUninstrumented is the telemetry-overhead
// ablation twin of BenchmarkDispatcherDelivery (Options.NoTelemetry).
func BenchmarkDispatcherDeliveryUninstrumented(b *testing.B) { benchDeliverOpts(b, true, true) }

// BenchmarkRouterForwarding measures the pure router hot path: decode,
// MAC verify, path advance, re-serialize, forward — with telemetry
// registered and the trace ring sampling, as deployed.
func BenchmarkRouterForwarding(b *testing.B) { benchForward(b, false) }

// BenchmarkRouterForwardingUninstrumented is the telemetry-overhead
// ablation twin (no shared registry, no trace ring, no queue probing).
func BenchmarkRouterForwardingUninstrumented(b *testing.B) { benchForward(b, true) }

func benchForward(b *testing.B, noTelemetry bool) {
	n, sim, a, z := benchNetOpts(b, false, noTelemetry)
	defer n.Close()
	sink := 0
	recv, err := sim.Listen(netip.AddrPortFrom(sim.AllocAddr(), 40000), func([]byte, netip.AddrPort) { sink++ })
	if err != nil {
		b.Fatal(err)
	}
	src, _ := sim.Listen(netip.AddrPort{}, nil)
	rtrA, _ := n.Router(a)
	paths := n.Paths(a, z)
	pkt := &slayers.Packet{
		Hdr: slayers.SCION{
			DstIA: z, SrcIA: a,
			DstHost: recv.LocalAddr().Addr(),
			SrcHost: src.LocalAddr().Addr(),
			Path:    *paths[0].Raw.Copy(),
		},
		UDP:     &slayers.UDP{SrcPort: src.LocalAddr().Port(), DstPort: 40000},
		Payload: make([]byte, 1000),
	}
	raw, _ := pkt.Serialize(nil)
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = src.Send(raw, rtrA.LocalAddr())
		sim.Run()
	}
}

// BenchmarkRouterForwardingBatch measures the burst path end to end:
// same-flow packets submitted with SendBatch coalesce into one delivery
// at each router, which shares one decode/MAC/path verdict across the
// burst and emits one egress batch. batch=1 degenerates to the
// per-packet path and is the baseline the batch sizes are judged
// against (the pps metric); workers>1 additionally fans checksum
// pre-verification across the strided worker pool.
func BenchmarkRouterForwardingBatch(b *testing.B) {
	for _, batch := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) { benchForwardBatch(b, batch, 0) })
	}
	b.Run("batch=32/workers=4", func(b *testing.B) { benchForwardBatch(b, 32, 4) })
}

func benchForwardBatch(b *testing.B, batch, workers int) {
	n, sim, a, z := benchNetCore(b, core.Options{
		Seed: 1, IntraASDelay: time.Nanosecond, RouterBatchWorkers: workers,
	})
	defer n.Close()
	sink := 0
	recv, err := sim.Listen(netip.AddrPortFrom(sim.AllocAddr(), 40000), func([]byte, netip.AddrPort) { sink++ })
	if err != nil {
		b.Fatal(err)
	}
	src, _ := sim.Listen(netip.AddrPort{}, nil)
	rtrA, _ := n.Router(a)
	paths := n.Paths(a, z)
	if len(paths) == 0 {
		b.Fatal("no path")
	}
	pkt := &slayers.Packet{
		Hdr: slayers.SCION{
			DstIA: z, SrcIA: a,
			DstHost: recv.LocalAddr().Addr(),
			SrcHost: src.LocalAddr().Addr(),
			Path:    *paths[0].Raw.Copy(),
		},
		UDP: &slayers.UDP{SrcPort: src.LocalAddr().Port(), DstPort: 40000},
		// Minimum-size packets, the convention for router pps figures:
		// per-packet machinery dominates, which is exactly what the
		// batch path amortizes (payload-proportional costs — checksum,
		// copies — are identical on both paths).
		Payload: make([]byte, 8),
	}
	raw, err := pkt.Serialize(nil)
	if err != nil {
		b.Fatal(err)
	}
	// The whole burst is the same wire image: SendBatch copies each
	// element on scheduling, so the shared backing slice is safe.
	pkts := make([][]byte, batch)
	dests := make([]netip.AddrPort, batch)
	for i := range pkts {
		pkts[i] = raw
		dests[i] = rtrA.LocalAddr()
	}
	b.SetBytes(int64(batch * len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.SendBatch(pkts, dests); err != nil {
			b.Fatal(err)
		}
		sim.Run()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "pps")
	if sink != b.N*batch {
		b.Fatalf("delivered %d of %d", sink, b.N*batch)
	}
}

// BenchmarkRouterForwardingMultiHop measures forwarding across a 3-AS
// chain (two inter-AS hops), so the packet crosses one transit router
// that performs both an ingress and an egress hop-field check. Like the
// single-hop variant, the steady state must not allocate.
func BenchmarkRouterForwardingMultiHop(b *testing.B) {
	topo := topology.New()
	ias := []addr.IA{
		addr.MustParseIA("71-1"),
		addr.MustParseIA("71-2"),
		addr.MustParseIA("71-3"),
	}
	for _, ia := range ias {
		if err := topo.AddAS(topology.ASInfo{IA: ia, Core: true}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i+1 < len(ias); i++ {
		if _, err := topo.AddLink(topology.LinkEnd{IA: ias[i]}, topology.LinkEnd{IA: ias[i+1]}, topology.LinkCore, 0.01, ""); err != nil {
			b.Fatal(err)
		}
	}
	sim := simnet.NewSim(time.Unix(0, 0))
	n, err := core.Build(topo, sim, core.Options{Seed: 1, IntraASDelay: time.Nanosecond})
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()

	src2, dst2 := ias[0], ias[2]
	sink := 0
	recv, err := sim.Listen(netip.AddrPortFrom(sim.AllocAddr(), 40000), func([]byte, netip.AddrPort) { sink++ })
	if err != nil {
		b.Fatal(err)
	}
	src, _ := sim.Listen(netip.AddrPort{}, nil)
	rtr, _ := n.Router(src2)
	var path *combinator.Path
	for _, p := range n.Paths(src2, dst2) {
		if len(p.Raw.Hops) >= 3 { // src egress, transit in+out, dst ingress
			path = p
			break
		}
	}
	if path == nil {
		b.Fatal("no multi-hop path")
	}
	pkt := &slayers.Packet{
		Hdr: slayers.SCION{
			DstIA: dst2, SrcIA: src2,
			DstHost: recv.LocalAddr().Addr(),
			SrcHost: src.LocalAddr().Addr(),
			Path:    *path.Raw.Copy(),
		},
		UDP:     &slayers.UDP{SrcPort: src.LocalAddr().Port(), DstPort: 40000},
		Payload: make([]byte, 1000),
	}
	raw, err := pkt.Serialize(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = src.Send(raw, rtr.LocalAddr())
		sim.Run()
	}
	b.StopTimer()
	if sink != b.N {
		b.Fatalf("delivered %d of %d", sink, b.N)
	}
}

// BenchmarkPathLookup measures a daemon-style lookup+combination on the
// full SCIERA control plane.
func BenchmarkPathLookup(b *testing.B) {
	n, _, err := experiments.BuildNetwork(42)
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()
	src := addr.MustParseIA("71-225")    // UVa
	dst := addr.MustParseIA("71-2:0:5c") // UFMS
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if paths := n.Paths(src, dst); len(paths) == 0 {
			b.Fatal("no paths")
		}
	}
}

// BenchmarkBeaconing measures a full control-plane convergence over the
// SCIERA topology (what RefreshControlPlane costs after each incident).
func BenchmarkBeaconing(b *testing.B) {
	n, _, err := experiments.BuildNetwork(42)
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.RefreshControlPlane(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBeaconDiversity ablates the BestPerOrigin selection knob
// (DESIGN.md "the Figure 8 diversity knob"): control-plane convergence
// cost and resulting path diversity at 4/8/16/32 beacons per origin.
func BenchmarkBeaconDiversity(b *testing.B) {
	src := addr.MustParseIA("71-225")    // UVa
	dst := addr.MustParseIA("71-2:0:5c") // UFMS
	for _, k := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("best=%d", k), func(b *testing.B) {
			topo, err := sciera.Build()
			if err != nil {
				b.Fatal(err)
			}
			sim := simnet.NewSim(time.Unix(0, 0))
			n, err := core.Build(topo, sim, core.Options{Seed: 42, BestPerOrigin: k})
			if err != nil {
				b.Fatal(err)
			}
			defer n.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := n.RefreshControlPlane(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(n.Paths(src, dst))), "paths")
		})
	}
}

// BenchmarkSCIERABringup measures the full network-in-a-box build.
func BenchmarkSCIERABringup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		topo, err := sciera.Build()
		if err != nil {
			b.Fatal(err)
		}
		sim := simnet.NewSim(time.Unix(0, 0))
		n, err := core.Build(topo, sim, core.Options{Seed: int64(i), BestPerOrigin: 14})
		if err != nil {
			b.Fatal(err)
		}
		n.Close()
	}
}

// BenchmarkMultipingRound measures one measurement interval of the
// campaign across all vantage pairs.
func BenchmarkMultipingRound(b *testing.B) {
	topo, err := sciera.Build()
	if err != nil {
		b.Fatal(err)
	}
	sim := simnet.NewSim(time.Unix(1_737_000_000, 0))
	n, err := core.Build(topo, sim, core.Options{Seed: 42, BestPerOrigin: 14})
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()
	ipTopo, err := sciera.BuildIPPlane()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		camp, err := multiping.NewCampaign(n, multiping.Config{
			Vantage:  sciera.VantageASes(),
			Interval: time.Minute,
			Duration: time.Minute,
			IPRTT:    func(s, d addr.IA) float64 { return sciera.IPRTTms(ipTopo, s, d) },
			Seed:     int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := camp.Run(); err != nil {
			b.Fatal(err)
		}
		camp.Close()
	}
}

// BenchmarkPanWriteTo measures the application-library send path
// (lookup from cache + serialize + underlay send).
func BenchmarkPanWriteTo(b *testing.B) {
	n, sim, a, z := benchNet(b, false)
	defer n.Close()
	dA, err := n.NewDaemon(a)
	if err != nil {
		b.Fatal(err)
	}
	host := pan.WithDaemon(sim, dA)
	conn, err := host.ListenUDP(0)
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	dst := addr.UDPAddr{IA: z, Host: netip.AddrPortFrom(sim.AllocAddr(), 9)}
	// Warm the path cache (the lookup RPC needs the sim loop to run).
	var lerr error
	dA.PathsAsync(z, func(_ []*combinator.Path, err error) { lerr = err })
	sim.Run()
	if lerr != nil {
		b.Fatal(lerr)
	}
	payload := make([]byte, 1000)
	b.SetBytes(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.WriteTo(payload, dst); err != nil {
			b.Fatal(err)
		}
		sim.Run()
	}
}
