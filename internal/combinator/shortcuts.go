package combinator

import (
	"sciera/internal/addr"
	"sciera/internal/segment"
	"sciera/internal/spath"
)

// Shortcut and peer-link combination (the "shortcuts and utilization of
// peering links" of Section 2): when the source's up segment and the
// destination's down segment share a non-core AS, the path crosses over
// there instead of climbing to the core; when two ASes on the segments
// share a peering link, the path crosses that link directly.

// shortcuts enumerates crossover paths for one up/down segment pair.
func shortcuts(src, dst addr.IA, u, d *segment.Segment) []*Path {
	var out []*Path
	// Index the down segment's ASes (excluding the core origin).
	downIdx := make(map[addr.IA]int, d.Len())
	for i := 1; i < d.Len(); i++ {
		downIdx[d.ASEntries[i].IA] = i
	}
	for iu := 1; iu < u.Len(); iu++ {
		x := u.ASEntries[iu].IA
		id, ok := downIdx[x]
		if !ok {
			continue
		}
		if x == src || x == dst {
			continue // degenerate: handled by single-segment cases
		}
		ut, err := u.TruncateFrom(iu)
		if err != nil {
			continue
		}
		dt, err := d.TruncateFrom(id)
		if err != nil {
			continue
		}
		if p := build(src, dst, []direction{{ut, false}, {dt, true}}); p != nil {
			out = append(out, p)
		}
	}
	return out
}

// peerPaths enumerates peering-link crossings for one up/down segment
// pair: an AS U on the up segment with an advertised peer link to an AS
// V on the down segment (both sides must advertise the link).
func peerPaths(src, dst addr.IA, u, d *segment.Segment) []*Path {
	var out []*Path
	downIdx := make(map[addr.IA]int, d.Len())
	for i := 1; i < d.Len(); i++ {
		downIdx[d.ASEntries[i].IA] = i
	}
	for iu := 1; iu < u.Len(); iu++ {
		eU := &u.ASEntries[iu]
		for _, pe := range eU.Peers {
			iv, ok := downIdx[pe.Peer]
			if !ok {
				continue
			}
			eV := &d.ASEntries[iv]
			// The far side must advertise the same circuit back.
			var peV *segment.PeerEntry
			for k := range eV.Peers {
				cand := &eV.Peers[k]
				if cand.Peer == eU.IA && cand.LocalIf == pe.PeerIf && cand.PeerIf == pe.LocalIf {
					peV = cand
					break
				}
			}
			if peV == nil {
				continue
			}
			if p := buildPeer(src, dst, u, iu, &pe, d, iv, peV); p != nil {
				out = append(out, p)
			}
		}
	}
	return out
}

// buildPeer assembles a two-segment peer path: the up segment truncated
// at U (reversed), crossing the peering link to V, then the down
// segment truncated at V. The boundary hops are replaced by the
// beacon-authorized peer hop fields; both info fields carry the Peer
// flag so routers apply the peer verification rule.
func buildPeer(src, dst addr.IA, u *segment.Segment, iu int, peU *segment.PeerEntry,
	d *segment.Segment, iv int, peV *segment.PeerEntry) *Path {

	ut, err := u.TruncateFrom(iu)
	if err != nil {
		return nil
	}
	dt, err := d.TruncateFrom(iv)
	if err != nil {
		return nil
	}
	nU, nV := ut.Len(), dt.Len()
	if nU > spath.MaxHopsPerSegment || nV > spath.MaxHopsPerSegment {
		return nil
	}

	// Loop freedom: no AS may appear on both sides.
	seen := make(map[addr.IA]bool, nU)
	for _, e := range ut.ASEntries {
		seen[e.IA] = true
	}
	for _, e := range dt.ASEntries {
		if seen[e.IA] {
			return nil
		}
	}

	p := &Path{Src: src, Dst: dst, MTU: ^uint16(0)}
	var raw spath.Path
	raw.SegLens = [3]uint8{uint8(nU), uint8(nV), 0}

	// Segment 1: up truncated, reversed, Peer-flagged. Initial SegID is
	// the accumulator after U's own entry (the value the peer hop's MAC
	// covers and the value the intermediate folds arrive at).
	raw.Infos = append(raw.Infos, spath.InfoField{
		ConsDir:   false,
		Peer:      true,
		SegID:     ut.BetaFinal(),
		Timestamp: ut.Timestamp,
	})
	// Segment 2: down truncated, Peer-flagged, starting after V's entry.
	raw.Infos = append(raw.Infos, spath.InfoField{
		ConsDir:   true,
		Peer:      true,
		SegID:     dt.BetaAfterFirst(),
		Timestamp: dt.Timestamp,
	})

	// Hops of segment 1 in traversal order (src .. U), with U's hop
	// replaced by the peer-crossing hop.
	upHops := ut.HopFields()
	for i := nU - 1; i >= 1; i-- {
		raw.Hops = append(raw.Hops, upHops[i])
	}
	raw.Hops = append(raw.Hops, spath.HopField{
		ExpTime:     peU.ExpTime,
		ConsIngress: peU.LocalIf,
		ConsEgress:  ut.ASEntries[0].Egress,
		MAC:         peU.MAC,
	})
	// Hops of segment 2 (V .. dst), V's hop replaced likewise.
	downHops := dt.HopFields()
	raw.Hops = append(raw.Hops, spath.HopField{
		ExpTime:     peV.ExpTime,
		ConsIngress: peV.LocalIf,
		ConsEgress:  dt.ASEntries[0].Egress,
		MAC:         peV.MAC,
	})
	for i := 1; i < nV; i++ {
		raw.Hops = append(raw.Hops, downHops[i])
	}
	if err := raw.Validate(); err != nil {
		return nil
	}
	p.Raw = raw

	// Metadata: crossings up to U, the peer link, crossings from V.
	for i := nU - 1; i >= 1; i-- {
		e := ut.ASEntries[i]
		prev := ut.ASEntries[i-1]
		p.Interfaces = append(p.Interfaces,
			PathInterface{IA: e.IA, IfID: e.Ingress},
			PathInterface{IA: prev.IA, IfID: prev.Egress},
		)
		p.LatencyMS += prev.LinkLatencyMS
		if e.MTU != 0 && e.MTU < p.MTU {
			p.MTU = e.MTU
		}
	}
	p.Interfaces = append(p.Interfaces,
		PathInterface{IA: ut.ASEntries[0].IA, IfID: peU.LocalIf},
		PathInterface{IA: dt.ASEntries[0].IA, IfID: peV.LocalIf},
	)
	p.LatencyMS += peU.LinkLatencyMS
	for i := 0; i < nV-1; i++ {
		e := dt.ASEntries[i]
		next := dt.ASEntries[i+1]
		p.Interfaces = append(p.Interfaces,
			PathInterface{IA: e.IA, IfID: e.Egress},
			PathInterface{IA: next.IA, IfID: next.Ingress},
		)
		p.LatencyMS += e.LinkLatencyMS
		if next.MTU != 0 && next.MTU < p.MTU {
			p.MTU = next.MTU
		}
	}
	for _, seg := range []*segment.Segment{ut, dt} {
		if exp := seg.Expiry(); p.Expiry.IsZero() || exp.Before(p.Expiry) {
			p.Expiry = exp
		}
	}
	p.Fingerprint = fingerprint(p.Interfaces)
	return p
}
