package combinator

import (
	"math/rand"
	"testing"

	"sciera/internal/addr"
	"sciera/internal/beacon"
	"sciera/internal/spath"
	"sciera/internal/topology"
)

// TestPeerPath asserts that the lA-lB peering link of testNet yields a
// direct one-hop path, that the path carries Peer-flagged info fields,
// and that it passes the router verification walk in both directions.
func TestPeerPath(t *testing.T) {
	topo, reg := testNet(t)
	paths := combineFromRegistry(reg, lA, lB, topo)
	var peer *Path
	for _, p := range paths {
		if p.NumHops() == 1 {
			peer = p
			break
		}
	}
	if peer == nil {
		t.Fatalf("no 1-hop peer path lA->lB among %d paths", len(paths))
	}
	if peer.LatencyMS != 3 {
		t.Errorf("peer path latency = %v, want 3 (the peer link)", peer.LatencyMS)
	}
	if got := peer.ASes(); len(got) != 2 || got[0] != lA || got[1] != lB {
		t.Errorf("peer path ASes = %v, want [lA lB]", got)
	}
	for i, inf := range peer.Raw.Infos {
		if !inf.Peer {
			t.Errorf("info %d not Peer-flagged", i)
		}
	}
	verifyWalk(t, topo, peer)

	// The peer link works in the other direction too.
	back := combineFromRegistry(reg, lB, lA, topo)
	found := false
	for _, p := range back {
		if p.NumHops() == 1 {
			verifyWalk(t, topo, p)
			found = true
		}
	}
	if !found {
		t.Error("no 1-hop peer path lB->lA")
	}

	// Sorting places the 1-hop peer path first.
	if paths[0].NumHops() != 1 {
		t.Errorf("first path has %d hops, want the peer path first", paths[0].NumHops())
	}
}

// TestPeerPathReversed checks fresh-path reversal of a peer path: the
// boundary hops' MACs must stay outside the accumulator fixup.
func TestPeerPathReversed(t *testing.T) {
	topo, reg := testNet(t)
	paths := combineFromRegistry(reg, lA, lB, topo)
	for _, p := range paths {
		if p.NumHops() != 1 {
			continue
		}
		rev, err := p.Reversed()
		if err != nil {
			t.Fatal(err)
		}
		if rev.Src != lB || rev.Dst != lA {
			t.Errorf("reversed endpoints = %v -> %v", rev.Src, rev.Dst)
		}
		verifyWalk(t, topo, rev)
		rev2, err := rev.Reversed()
		if err != nil {
			t.Fatal(err)
		}
		if rev2.Fingerprint != p.Fingerprint {
			t.Error("double reversal changed the fingerprint")
		}
		verifyWalk(t, topo, rev2)
		return
	}
	t.Fatal("no peer path to reverse")
}

// TestPeerHopTamperRejected flips bits in the peer-crossing hop and the
// accumulator and checks that VerifyPeerHop rejects both.
func TestPeerHopTamperRejected(t *testing.T) {
	topo, reg := testNet(t)
	paths := combineFromRegistry(reg, lA, lB, topo)
	for _, p := range paths {
		if p.NumHops() != 1 {
			continue
		}
		info := p.Raw.Infos[0]
		hop := p.Raw.Hops[0]
		if !spath.VerifyPeerHop(keyOf(lA), &info, &hop) {
			t.Fatal("genuine peer hop failed verification")
		}
		bad := hop
		bad.MAC[0] ^= 1
		if spath.VerifyPeerHop(keyOf(lA), &info, &bad) {
			t.Error("tampered peer MAC accepted")
		}
		badInfo := info
		badInfo.SegID ^= 0x40
		if spath.VerifyPeerHop(keyOf(lA), &badInfo, &hop) {
			t.Error("tampered accumulator accepted")
		}
		badHop := hop
		badHop.ConsEgress ^= 0x7 // splice to a different egress
		if spath.VerifyPeerHop(keyOf(lA), &info, &badHop) {
			t.Error("spliced peer hop accepted")
		}
		return
	}
	t.Fatal("no peer path")
}

// shortcutNet builds a three-tier tree: core c1 over middle AS m over
// leaves x and y. The only loop-free x->y route crosses over at m — a
// shortcut (the up+down combination through c1 visits m twice).
func shortcutNet(t testing.TB) (*topology.Topology, *beacon.Registry, addr.IA, addr.IA, addr.IA) {
	t.Helper()
	m := addr.MustParseIA("71-20")
	x := addr.MustParseIA("71-21")
	y := addr.MustParseIA("71-22")
	topo := topology.New()
	if err := topo.AddAS(topology.ASInfo{IA: c1, Core: true}); err != nil {
		t.Fatal(err)
	}
	for _, ia := range []addr.IA{m, x, y} {
		if err := topo.AddAS(topology.ASInfo{IA: ia}); err != nil {
			t.Fatal(err)
		}
	}
	link := func(a, b addr.IA, lat float64) {
		if _, err := topo.AddLink(topology.LinkEnd{IA: a}, topology.LinkEnd{IA: b},
			topology.LinkParent, lat, ""); err != nil {
			t.Fatal(err)
		}
	}
	link(c1, m, 10)
	link(m, x, 4)
	link(m, y, 6)
	r := &beacon.Runner{
		Topo:      topo,
		Keys:      keyOf,
		Timestamp: 1000,
		Rng:       rand.New(rand.NewSource(11)),
	}
	reg, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return topo, reg, m, x, y
}

// TestShortcutPath checks the non-core crossover: x and y hang off the
// same middle AS, so the combinator must emit the two-hop x->m->y path
// built from truncated up/down segments.
func TestShortcutPath(t *testing.T) {
	topo, reg, m, x, y := shortcutNet(t)
	paths := combineFromRegistry(reg, x, y, topo)
	if len(paths) == 0 {
		t.Fatal("no paths x->y")
	}
	var sc *Path
	for _, p := range paths {
		if p.NumHops() == 2 {
			sc = p
		}
		verifyWalk(t, topo, p)
	}
	if sc == nil {
		t.Fatalf("no 2-hop shortcut among %d paths", len(paths))
	}
	if got := sc.ASes(); len(got) != 3 || got[0] != x || got[1] != m || got[2] != y {
		t.Errorf("shortcut ASes = %v, want [x m y]", got)
	}
	if sc.LatencyMS != 10 {
		t.Errorf("shortcut latency = %v, want 10 (4 + 6)", sc.LatencyMS)
	}
	// Shortcut segments keep the normal fold/advance algebra (no Peer
	// flag): the crossover AS verifies both of its truncated hops.
	for i, inf := range sc.Raw.Infos {
		if inf.Peer {
			t.Errorf("shortcut info %d unexpectedly Peer-flagged", i)
		}
	}
	// No path may visit the middle AS twice (loop freedom).
	for _, p := range paths {
		seen := map[addr.IA]int{}
		for _, ia := range p.ASes() {
			seen[ia]++
			if seen[ia] > 1 {
				t.Errorf("path %s visits %v twice", p.Fingerprint, ia)
			}
		}
	}
}

// TestShortcutReversed reverses a shortcut path and re-walks it.
func TestShortcutReversed(t *testing.T) {
	topo, reg, _, x, y := shortcutNet(t)
	paths := combineFromRegistry(reg, x, y, topo)
	for _, p := range paths {
		if p.NumHops() != 2 {
			continue
		}
		rev, err := p.Reversed()
		if err != nil {
			t.Fatal(err)
		}
		verifyWalk(t, topo, rev)
		return
	}
	t.Fatal("no shortcut to reverse")
}

// TestPeerPathMetadata checks the interface sequence of the peer path:
// exactly one crossing, using the peer interfaces on both sides.
func TestPeerPathMetadata(t *testing.T) {
	topo, reg := testNet(t)
	paths := combineFromRegistry(reg, lA, lB, topo)
	for _, p := range paths {
		if p.NumHops() != 1 {
			continue
		}
		if len(p.Interfaces) != 2 {
			t.Fatalf("interfaces = %v", p.Interfaces)
		}
		if p.Interfaces[0].IA != lA || p.Interfaces[1].IA != lB {
			t.Errorf("interface ASes = %v", p.Interfaces)
		}
		// Both interface IDs must name the actual peer link in the topology.
		l, ok := topo.LinkAt(topology.LinkEnd{IA: lA, IfID: p.Interfaces[0].IfID})
		if !ok {
			t.Fatalf("no link at %v", p.Interfaces[0])
		}
		if l.Type != topology.LinkPeer {
			t.Errorf("crossing link type = %v, want peer", l.Type)
		}
		far, _ := l.Other(lA)
		if far.IA != lB || far.IfID != p.Interfaces[1].IfID {
			t.Errorf("far end = %v, want lB#%d", far, p.Interfaces[1].IfID)
		}
		if p.Expiry.IsZero() {
			t.Error("peer path expiry unset")
		}
		if p.Fingerprint == "" {
			t.Error("peer path fingerprint unset")
		}
		return
	}
	t.Fatal("no peer path")
}

// BenchmarkCombinePeer measures combination when the result includes a
// peering-link crossing (lA->lB in testNet).
func BenchmarkCombinePeer(b *testing.B) {
	_, reg := testNet(b)
	ups := reg.Up[lA].All()
	cores := reg.Core.All()
	downs := reg.Down.Get(0, lB)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if paths := Combine(lA, lB, ups, cores, downs); len(paths) == 0 {
			b.Fatal("no paths")
		}
	}
}

// BenchmarkCombineShortcut measures combination with a non-core
// crossover (lX->lY through the shared middle AS).
func BenchmarkCombineShortcut(b *testing.B) {
	_, reg, _, x, y := shortcutNet(b)
	ups := reg.Up[x].All()
	cores := reg.Core.All()
	downs := reg.Down.Get(0, y)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if paths := Combine(x, y, ups, cores, downs); len(paths) == 0 {
			b.Fatal("no paths")
		}
	}
}
