// Package combinator builds end-to-end forwarding paths from path
// segments, implementing SCION's segment-combination rules: up segments
// (traversed against construction direction), core segments (either
// direction), and down segments, joined at core ASes. The resulting
// paths carry full metadata — the globally unique interface sequence,
// latency, MTU, expiry — which powers the path policies the paper
// evaluates (shortest, fastest, most disjoint).
package combinator

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"sciera/internal/addr"
	"sciera/internal/scrypto"
	"sciera/internal/segment"
	"sciera/internal/spath"
)

// PathInterface is one (AS, interface) crossing of a path. Combining
// the AS-unique interface ID with the ISD-AS number yields the globally
// unique interface identifiers the paper uses to compute disjointness.
type PathInterface struct {
	IA   addr.IA
	IfID uint16
}

func (p PathInterface) String() string { return fmt.Sprintf("%v#%d", p.IA, p.IfID) }

// Path is a combined end-to-end path with metadata.
type Path struct {
	Src, Dst addr.IA
	// Raw is the data-plane path, ready for a packet header (pointers
	// at the first hop).
	Raw spath.Path
	// Interfaces lists the inter-AS crossings in traversal order:
	// (egress of AS i, ingress of AS i+1), ...
	Interfaces []PathInterface
	// LatencyMS is the one-way propagation latency estimate.
	LatencyMS float64
	MTU       uint16
	Expiry    time.Time
	// Fingerprint identifies the path by its interface sequence.
	Fingerprint string
}

// NumHops returns the AS-level hop count (number of inter-AS links).
func (p *Path) NumHops() int { return len(p.Interfaces) / 2 }

// ASes returns the AS sequence in traversal order.
func (p *Path) ASes() []addr.IA {
	if len(p.Interfaces) == 0 {
		return []addr.IA{p.Src}
	}
	out := []addr.IA{p.Interfaces[0].IA}
	for i := 1; i < len(p.Interfaces); i += 2 {
		out = append(out, p.Interfaces[i].IA)
	}
	return out
}

// Disjointness returns the fraction of globally unique interfaces NOT
// shared between p and q (1 = fully disjoint), the Section 5.5 metric:
// distinct interfaces divided by total interfaces of both paths.
func Disjointness(p, q *Path) float64 {
	total := len(p.Interfaces) + len(q.Interfaces)
	if total == 0 {
		return 1
	}
	inP := make(map[PathInterface]bool, len(p.Interfaces))
	for _, i := range p.Interfaces {
		inP[i] = true
	}
	shared := 0
	for _, i := range q.Interfaces {
		if inP[i] {
			shared++
		}
	}
	// Interfaces shared appear in both paths: count both occurrences.
	distinct := total - 2*shared
	return float64(distinct) / float64(total)
}

// direction describes how a segment is traversed in a combined path.
type direction struct {
	seg     *segment.Segment
	consDir bool
}

// Combine enumerates the loop-free end-to-end paths from src to dst
// using the supplied segments:
//
//	ups:   segments with LastIA == src (traversed in reverse, toward core)
//	cores: segments between core ASes (either direction)
//	downs: segments with LastIA == dst (traversed from core to dst)
//
// Any of the groups may be empty: core-to-core paths need only cores,
// paths within one provider tree need only up+down, etc. The result is
// deduplicated by fingerprint and sorted by (hops, latency, fingerprint).
func Combine(src, dst addr.IA, ups, cores, downs []*segment.Segment) []*Path {
	if src == dst {
		return nil
	}
	var out []*Path
	seen := make(map[string]bool)
	add := func(p *Path) {
		if p != nil && !seen[p.Fingerprint] {
			seen[p.Fingerprint] = true
			out = append(out, p)
		}
	}

	// Filter inputs to the relevant endpoints and index core segments
	// by their endpoints (the combination loops below would otherwise
	// scan every core segment per up/down pair).
	var srcUps []*segment.Segment
	for _, u := range ups {
		if u.LastIA() == src {
			srcUps = append(srcUps, u)
		}
	}
	var dstDowns []*segment.Segment
	for _, d := range downs {
		if d.LastIA() == dst {
			dstDowns = append(dstDowns, d)
		}
	}
	coresByFirst := make(map[addr.IA][]*segment.Segment)
	coresByLast := make(map[addr.IA][]*segment.Segment)
	for _, c := range cores {
		coresByFirst[c.FirstIA()] = append(coresByFirst[c.FirstIA()], c)
		coresByLast[c.LastIA()] = append(coresByLast[c.LastIA()], c)
	}

	// Case 1: single-segment paths.
	for _, u := range srcUps {
		if u.FirstIA() == dst { // dst is the core origin of src's up segment
			add(build(src, dst, []direction{{u, false}}))
		}
	}
	for _, d := range dstDowns {
		if d.FirstIA() == src { // src is the core origin of dst's down segment
			add(build(src, dst, []direction{{d, true}}))
		}
	}
	for _, c := range coresByFirst[src] {
		if c.LastIA() == dst {
			add(build(src, dst, []direction{{c, true}}))
		}
	}
	for _, c := range coresByFirst[dst] {
		if c.LastIA() == src {
			add(build(src, dst, []direction{{c, false}}))
		}
	}

	// Case 2: up + down joined at a shared core AS.
	for _, u := range srcUps {
		for _, d := range dstDowns {
			if u.FirstIA() == d.FirstIA() {
				add(build(src, dst, []direction{{u, false}, {d, true}}))
			}
		}
	}

	// Case 3: up + core (dst is core).
	for _, u := range srcUps {
		for _, c := range coresByFirst[u.FirstIA()] {
			if c.LastIA() == dst {
				add(build(src, dst, []direction{{u, false}, {c, true}}))
			}
		}
		for _, c := range coresByLast[u.FirstIA()] {
			if c.FirstIA() == dst {
				add(build(src, dst, []direction{{u, false}, {c, false}}))
			}
		}
	}

	// Case 4: core + down (src is core).
	for _, d := range dstDowns {
		for _, c := range coresByFirst[src] {
			if c.LastIA() == d.FirstIA() {
				add(build(src, dst, []direction{{c, true}, {d, true}}))
			}
		}
		for _, c := range coresByLast[src] {
			if c.FirstIA() == d.FirstIA() {
				add(build(src, dst, []direction{{c, false}, {d, true}}))
			}
		}
	}

	// Case 5: up + core + down.
	for _, u := range srcUps {
		for _, d := range dstDowns {
			for _, c := range coresByFirst[u.FirstIA()] {
				if c.LastIA() == d.FirstIA() {
					add(build(src, dst, []direction{{u, false}, {c, true}, {d, true}}))
				}
			}
			for _, c := range coresByLast[u.FirstIA()] {
				if c.FirstIA() == d.FirstIA() {
					add(build(src, dst, []direction{{u, false}, {c, false}, {d, true}}))
				}
			}
		}
	}

	// Case 6+7: shortcuts and peering-link crossings between the
	// source's up segments and the destination's down segments.
	for _, u := range srcUps {
		for _, d := range dstDowns {
			for _, p := range shortcuts(src, dst, u, d) {
				add(p)
			}
			for _, p := range peerPaths(src, dst, u, d) {
				add(p)
			}
		}
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].NumHops() != out[j].NumHops() {
			return out[i].NumHops() < out[j].NumHops()
		}
		if out[i].LatencyMS != out[j].LatencyMS {
			return out[i].LatencyMS < out[j].LatencyMS
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// build assembles the data-plane path and metadata for an ordered list
// of segment traversals. It returns nil if the combination is not
// loop-free or structurally invalid.
func build(src, dst addr.IA, dirs []direction) *Path {
	p := &Path{Src: src, Dst: dst, MTU: ^uint16(0)}
	var raw spath.Path
	segIdx := 0
	visited := make(map[addr.IA]int) // AS -> count

	minExpiry := time.Time{}
	for _, d := range dirs {
		seg := d.seg
		if seg.Len() == 0 || segIdx >= 3 {
			return nil
		}
		entries := seg.ASEntries
		hops := seg.HopFields()
		n := len(entries)

		info := spath.InfoField{
			ConsDir:   d.consDir,
			Timestamp: seg.Timestamp,
		}
		if d.consDir {
			info.SegID = seg.Beta0
		} else {
			info.SegID = seg.BetaFinal()
		}
		raw.Infos = append(raw.Infos, info)
		raw.SegLens[segIdx] = uint8(n)
		segIdx++

		// Traversal order of entries.
		order := make([]int, n)
		for i := range order {
			if d.consDir {
				order[i] = i
			} else {
				order[i] = n - 1 - i
			}
		}
		for _, i := range order {
			raw.Hops = append(raw.Hops, hops[i])
		}

		// Metadata: walk entries in traversal order, recording inter-AS
		// crossings and loop checks.
		for step, i := range order {
			e := entries[i]
			visited[e.IA]++
			// Joint ASes legitimately appear in two adjacent segments.
			if visited[e.IA] > 2 {
				return nil
			}
			if e.MTU != 0 && e.MTU < p.MTU {
				p.MTU = e.MTU
			}
			// Record the link crossing leaving this AS (traversal order).
			if step == n-1 {
				continue // segment ends here; joint or destination
			}
			nextEntry := entries[order[step+1]]
			if d.consDir {
				// Crossing e -> nextEntry over e.Egress / next.Ingress.
				p.Interfaces = append(p.Interfaces,
					PathInterface{IA: e.IA, IfID: e.Egress},
					PathInterface{IA: nextEntry.IA, IfID: nextEntry.Ingress},
				)
				p.LatencyMS += e.LinkLatencyMS
			} else {
				// Reverse traversal: leave via our Ingress, arrive at
				// next's Egress.
				p.Interfaces = append(p.Interfaces,
					PathInterface{IA: e.IA, IfID: e.Ingress},
					PathInterface{IA: nextEntry.IA, IfID: nextEntry.Egress},
				)
				p.LatencyMS += nextEntry.LinkLatencyMS
			}
		}
		if exp := seg.Expiry(); minExpiry.IsZero() || exp.Before(minExpiry) {
			minExpiry = exp
		}
	}

	// Loop-freedom: every AS at most twice, and only joint ASes twice.
	// Joints are the first AS of each non-initial segment's traversal.
	joints := make(map[addr.IA]bool)
	for k := 1; k < len(dirs); k++ {
		d := dirs[k]
		if d.consDir {
			joints[d.seg.FirstIA()] = true
		} else {
			joints[d.seg.LastIA()] = true
		}
	}
	for ia, cnt := range visited {
		if cnt == 2 && !joints[ia] {
			return nil
		}
	}

	// Endpoint sanity.
	ases := asSequence(dirs)
	if len(ases) == 0 || ases[0] != src || ases[len(ases)-1] != dst {
		return nil
	}

	p.Expiry = minExpiry
	p.Raw = raw
	if err := p.Raw.Validate(); err != nil {
		return nil
	}
	p.Fingerprint = fingerprint(p.Interfaces)
	return p
}

// asSequence returns the AS traversal order with joints deduplicated.
func asSequence(dirs []direction) []addr.IA {
	var out []addr.IA
	for _, d := range dirs {
		n := d.seg.Len()
		for i := 0; i < n; i++ {
			idx := i
			if !d.consDir {
				idx = n - 1 - i
			}
			ia := d.seg.ASEntries[idx].IA
			if len(out) > 0 && out[len(out)-1] == ia {
				continue
			}
			out = append(out, ia)
		}
	}
	return out
}

// fingerprint renders the interface sequence as the path's identity
// string. The format is exactly the historical "<ia>#<ifid>>" chain —
// it is a tiebreak in Combine's sort order, so the bytes must stay
// stable — but built with a single allocation instead of fmt formatting
// and string concatenation per interface: this runs for every candidate
// path of every lookup in every campaign worker.
func fingerprint(ifs []PathInterface) string {
	if len(ifs) == 0 {
		return "direct"
	}
	b := make([]byte, 0, 24*len(ifs))
	for _, i := range ifs {
		b = i.IA.AppendTo(b)
		b = append(b, '#')
		b = strconv.AppendUint(b, uint64(i.IfID), 10)
		b = append(b, '>')
	}
	return string(b)
}

// Reversed returns the same path usable from dst back to src (hop fields
// reversed, directions flipped).
//
// Reversing a *fresh* path must also move each info field's accumulator
// to the segment's far end: a fresh path carries the near-end beta, but
// the reversed traversal starts at the other end. (Reversing a path
// extracted from a *received* packet skips this step — the routers
// already advanced the accumulators in flight; see router.ReversePacketPath.)
func (p *Path) Reversed() (*Path, error) {
	q := &Path{
		Src:       p.Dst,
		Dst:       p.Src,
		LatencyMS: p.LatencyMS,
		MTU:       p.MTU,
		Expiry:    p.Expiry,
	}
	raw := *p.Raw.Copy()
	// Advance each segment's accumulator to its far end before
	// reversing: beta_far = beta_near XOR (xor of all hop MAC prefixes).
	// Peer segments exclude the peer-crossing boundary hop: its MAC is
	// not part of the segment's accumulator chain (it replaced the
	// crossover AS's regular hop) and is verified as-is in both
	// traversal directions.
	hopIdx := 0
	for s := 0; s < len(raw.Infos); s++ {
		n := int(raw.SegLens[s])
		for i := 0; i < n; i++ {
			peerBoundary := raw.Infos[s].Peer &&
				((raw.Infos[s].ConsDir && i == 0) || (!raw.Infos[s].ConsDir && i == n-1))
			if !peerBoundary {
				raw.Infos[s].SegID = scrypto.UpdateBeta(raw.Infos[s].SegID, raw.Hops[hopIdx].MAC)
			}
			hopIdx++
		}
	}
	if err := raw.Reverse(); err != nil {
		return nil, err
	}
	q.Raw = raw
	q.Interfaces = make([]PathInterface, len(p.Interfaces))
	for i, itf := range p.Interfaces {
		q.Interfaces[len(p.Interfaces)-1-i] = itf
	}
	q.Fingerprint = fingerprint(q.Interfaces)
	return q, nil
}
