package combinator

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"sciera/internal/addr"
	"sciera/internal/beacon"
	"sciera/internal/topology"
)

// randomNet builds a random two-tier topology: a full mesh of cores
// (some links doubled), leaves multi-homed to random cores, and a few
// peering links between leaves. Every control-plane artifact is
// produced by the real beacon runner.
func randomNet(seed int64) (*topology.Topology, *beacon.Registry, []addr.IA, error) {
	rng := rand.New(rand.NewSource(seed))
	topo := topology.New()
	nCores := 2 + rng.Intn(3)  // 2..4
	nLeaves := 3 + rng.Intn(4) // 3..6

	var cores, leaves, all []addr.IA
	for i := 0; i < nCores; i++ {
		ia := addr.MustParseIA(fmt.Sprintf("71-%d", i+1))
		cores = append(cores, ia)
		if err := topo.AddAS(topology.ASInfo{IA: ia, Core: true}); err != nil {
			return nil, nil, nil, err
		}
	}
	for i := 0; i < nLeaves; i++ {
		ia := addr.MustParseIA(fmt.Sprintf("71-%d", 100+i))
		leaves = append(leaves, ia)
		if err := topo.AddAS(topology.ASInfo{IA: ia}); err != nil {
			return nil, nil, nil, err
		}
	}
	all = append(append(all, cores...), leaves...)

	lat := func() float64 { return 1 + float64(rng.Intn(50)) }
	// Core mesh, occasionally doubled (parallel circuits).
	for i := range cores {
		for j := i + 1; j < len(cores); j++ {
			if _, err := topo.AddLink(topology.LinkEnd{IA: cores[i]}, topology.LinkEnd{IA: cores[j]},
				topology.LinkCore, lat(), ""); err != nil {
				return nil, nil, nil, err
			}
			if rng.Intn(3) == 0 {
				if _, err := topo.AddLink(topology.LinkEnd{IA: cores[i]}, topology.LinkEnd{IA: cores[j]},
					topology.LinkCore, lat(), ""); err != nil {
					return nil, nil, nil, err
				}
			}
		}
	}
	// Leaves: 1-2 uplinks each.
	for _, leaf := range leaves {
		ups := 1 + rng.Intn(2)
		perm := rng.Perm(len(cores))
		for k := 0; k < ups && k < len(cores); k++ {
			if _, err := topo.AddLink(topology.LinkEnd{IA: cores[perm[k]]}, topology.LinkEnd{IA: leaf},
				topology.LinkParent, lat(), ""); err != nil {
				return nil, nil, nil, err
			}
		}
	}
	// A couple of random peering links between distinct leaves.
	for k := 0; k < 2 && nLeaves >= 2; k++ {
		a, b := rng.Intn(nLeaves), rng.Intn(nLeaves)
		if a == b {
			continue
		}
		if _, err := topo.AddLink(topology.LinkEnd{IA: leaves[a]}, topology.LinkEnd{IA: leaves[b]},
			topology.LinkPeer, lat(), ""); err != nil {
			return nil, nil, nil, err
		}
	}

	r := &beacon.Runner{
		Topo:      topo,
		Keys:      keyOf,
		Timestamp: 1000,
		Rng:       rng,
	}
	reg, err := r.Run()
	if err != nil {
		return nil, nil, nil, err
	}
	return topo, reg, all, nil
}

// TestCombineProperties is the package's property-based invariant
// check: over random topologies, every combined path (including
// shortcuts and peer crossings) must
//
//  1. verify hop-by-hop with the per-AS keys under router semantics,
//  2. be loop-free at the AS level,
//  3. carry a unique fingerprint within its path set,
//  4. be sorted by (hops, latency), and
//  5. report latency equal to the sum of its crossed links.
func TestCombineProperties(t *testing.T) {
	prop := func(seed int64) bool {
		topo, reg, all, err := randomNet(seed % 1000)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for _, src := range all {
			for _, dst := range all {
				if src == dst {
					continue
				}
				paths := combineFromRegistry(reg, src, dst, topo)
				seen := make(map[string]bool)
				for i, p := range paths {
					verifyWalk(t, topo, p) // (1) — fails the test directly
					asSeen := make(map[addr.IA]bool)
					for _, ia := range p.ASes() {
						if asSeen[ia] {
							t.Logf("seed %d: loop at %v in %s", seed, ia, p.Fingerprint)
							return false // (2)
						}
						asSeen[ia] = true
					}
					if seen[p.Fingerprint] {
						t.Logf("seed %d: duplicate fingerprint %s", seed, p.Fingerprint)
						return false // (3)
					}
					seen[p.Fingerprint] = true
					if i > 0 {
						prev := paths[i-1]
						if p.NumHops() < prev.NumHops() ||
							(p.NumHops() == prev.NumHops() && p.LatencyMS < prev.LatencyMS) {
							t.Logf("seed %d: sort violation at %d", seed, i)
							return false // (4)
						}
					}
					if !latencyMatchesLinks(topo, p) {
						t.Logf("seed %d: latency mismatch on %s", seed, p.Fingerprint)
						return false // (5)
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// latencyMatchesLinks recomputes a path's latency from the topology's
// link table using the egress interface of every second crossing.
func latencyMatchesLinks(topo *topology.Topology, p *Path) bool {
	var sum float64
	for i := 0; i+1 < len(p.Interfaces); i += 2 {
		l, ok := topo.LinkAt(topology.LinkEnd{IA: p.Interfaces[i].IA, IfID: p.Interfaces[i].IfID})
		if !ok {
			return false
		}
		sum += l.LatencyMS
	}
	return sum == p.LatencyMS
}

// TestReversedProperties: over random topologies, reversal is an
// involution on fingerprints and every reversed path verifies.
func TestReversedProperties(t *testing.T) {
	prop := func(seed int64) bool {
		topo, reg, all, err := randomNet(seed % 1000)
		if err != nil {
			return false
		}
		checked := 0
		for _, src := range all {
			for _, dst := range all {
				if src == dst || checked > 40 {
					continue
				}
				for _, p := range combineFromRegistry(reg, src, dst, topo) {
					rev, err := p.Reversed()
					if err != nil {
						t.Logf("seed %d: reverse %s: %v", seed, p.Fingerprint, err)
						return false
					}
					verifyWalk(t, topo, rev)
					rev2, err := rev.Reversed()
					if err != nil || rev2.Fingerprint != p.Fingerprint {
						t.Logf("seed %d: reversal not involutive on %s", seed, p.Fingerprint)
						return false
					}
					checked++
				}
			}
		}
		return checked > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
