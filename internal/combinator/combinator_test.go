package combinator

import (
	"fmt"
	"math/rand"
	"testing"

	"sciera/internal/addr"
	"sciera/internal/beacon"
	"sciera/internal/scrypto"
	"sciera/internal/segment"
	"sciera/internal/spath"
	"sciera/internal/topology"
)

var (
	c1 = addr.MustParseIA("71-1")
	c2 = addr.MustParseIA("71-2")
	c3 = addr.MustParseIA("71-3")
	lA = addr.MustParseIA("71-10")
	lB = addr.MustParseIA("71-11")
	lC = addr.MustParseIA("71-12")
)

func keyOf(ia addr.IA) scrypto.HopKey {
	return scrypto.DeriveHopKey([]byte(ia.String()), 0)
}

// testNet builds the beacon registry for a small two-tier topology with
// parallel core links (multipath) and a peer link.
func testNet(t testing.TB) (*topology.Topology, *beacon.Registry) {
	t.Helper()
	topo := topology.New()
	for _, ia := range []addr.IA{c1, c2, c3} {
		if err := topo.AddAS(topology.ASInfo{IA: ia, Core: true}); err != nil {
			t.Fatal(err)
		}
	}
	for _, ia := range []addr.IA{lA, lB, lC} {
		if err := topo.AddAS(topology.ASInfo{IA: ia}); err != nil {
			t.Fatal(err)
		}
	}
	link := func(a, b addr.IA, typ topology.LinkType, lat float64) {
		if _, err := topo.AddLink(topology.LinkEnd{IA: a}, topology.LinkEnd{IA: b}, typ, lat, ""); err != nil {
			t.Fatal(err)
		}
	}
	link(c1, c2, topology.LinkCore, 10)
	link(c1, c2, topology.LinkCore, 30)
	link(c2, c3, topology.LinkCore, 10)
	link(c1, c3, topology.LinkCore, 50)
	link(c1, lA, topology.LinkParent, 5)
	link(c2, lB, topology.LinkParent, 5)
	link(c3, lC, topology.LinkParent, 5)
	link(lA, lB, topology.LinkPeer, 3)

	r := &beacon.Runner{
		Topo:      topo,
		Keys:      keyOf,
		Timestamp: 1000,
		Rng:       rand.New(rand.NewSource(7)),
	}
	reg, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return topo, reg
}

// combineFromRegistry performs the lookup a daemon would: fetch the
// source's up segments, all core segments, and the destination's down
// segments, then combine.
func combineFromRegistry(reg *beacon.Registry, src, dst addr.IA, _ *topology.Topology) []*Path {
	var ups []*segment.Segment
	if db, ok := reg.Up[src]; ok {
		ups = db.All()
	}
	downs := reg.Down.Get(0, dst)
	cores := reg.Core.All()
	return Combine(src, dst, ups, cores, downs)
}

func TestRunnerProducesSegments(t *testing.T) {
	_, reg := testNet(t)
	if reg.Core.Len() == 0 {
		t.Fatal("no core segments")
	}
	// Core segments from c1 to c3 must include direct and via-c2 routes.
	c1c3 := reg.Core.Get(c1, c3)
	if len(c1c3) < 3 {
		t.Errorf("core segments c1->c3 = %d, want >= 3 (direct + 2 parallel via c2)", len(c1c3))
	}
	// Up segments exist for every leaf.
	for _, leaf := range []addr.IA{lA, lB, lC} {
		if reg.Up[leaf].Len() == 0 {
			t.Errorf("no up segments for %v", leaf)
		}
	}
	// Every registered segment's MACs verify with the per-AS keys.
	for _, s := range append(reg.Core.All(), reg.Down.All()...) {
		if err := s.VerifyMACs(func(ia addr.IA) (scrypto.HopKey, bool) { return keyOf(ia), true }); err != nil {
			t.Fatalf("segment %v: %v", s, err)
		}
	}
}

func TestCombineLeafToLeaf(t *testing.T) {
	topo, reg := testNet(t)
	paths := combineFromRegistry(reg, lA, lC, topo)
	if len(paths) < 3 {
		t.Fatalf("paths lA->lC = %d, want >= 3", len(paths))
	}
	for _, p := range paths {
		verifyWalk(t, topo, p)
	}
	// Sorted by hops then latency: the first path should be the 4-hop
	// route via the direct c1-c3 link or via c2's short links.
	if paths[0].NumHops() > paths[1].NumHops() {
		t.Error("paths not sorted by hop count")
	}
	// All paths must start at lA and end at lC.
	for _, p := range paths {
		ases := p.ASes()
		if ases[0] != lA || ases[len(ases)-1] != lC {
			t.Errorf("path endpoints = %v", ases)
		}
	}
}

func TestCombineCoreToCore(t *testing.T) {
	topo, reg := testNet(t)
	paths := combineFromRegistry(reg, c1, c3, topo)
	if len(paths) < 3 {
		t.Fatalf("paths c1->c3 = %d, want >= 3", len(paths))
	}
	for _, p := range paths {
		verifyWalk(t, topo, p)
	}
	// Both traversal directions of stored core segments must appear:
	// some path uses a segment built c3->c1 (ConsDir=false).
	foundRev := false
	for _, p := range paths {
		if !p.Raw.Infos[0].ConsDir {
			foundRev = true
		}
	}
	if !foundRev {
		t.Log("note: no reverse-direction core segment used (acceptable but unusual)")
	}
}

func TestCombineLeafToCore(t *testing.T) {
	topo, reg := testNet(t)
	up := combineFromRegistry(reg, lA, c3, topo)
	if len(up) == 0 {
		t.Fatal("no paths lA->c3")
	}
	for _, p := range up {
		verifyWalk(t, topo, p)
	}
	down := combineFromRegistry(reg, c3, lA, topo)
	if len(down) == 0 {
		t.Fatal("no paths c3->lA")
	}
	for _, p := range down {
		verifyWalk(t, topo, p)
	}
}

func TestCombineSameUpDownCore(t *testing.T) {
	topo, reg := testNet(t)
	// lA and lB attach to different cores; still reachable via core seg.
	paths := combineFromRegistry(reg, lA, lB, topo)
	if len(paths) == 0 {
		t.Fatal("no paths lA->lB")
	}
	for _, p := range paths {
		verifyWalk(t, topo, p)
	}
}

func TestCombineSelf(t *testing.T) {
	_, reg := testNet(t)
	if paths := combineFromRegistry(reg, lA, lA, nil); paths != nil {
		t.Errorf("self paths = %v", paths)
	}
}

func TestReversedPathVerifies(t *testing.T) {
	topo, reg := testNet(t)
	paths := combineFromRegistry(reg, lA, lC, topo)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	rev, err := paths[0].Reversed()
	if err != nil {
		t.Fatal(err)
	}
	if rev.Src != lC || rev.Dst != lA {
		t.Errorf("reversed endpoints = %v -> %v", rev.Src, rev.Dst)
	}
	verifyWalk(t, topo, rev)
	// Reversing twice restores the original fingerprint.
	rev2, err := rev.Reversed()
	if err != nil {
		t.Fatal(err)
	}
	if rev2.Fingerprint != paths[0].Fingerprint {
		t.Error("double reversal changed the fingerprint")
	}
}

func TestDisjointness(t *testing.T) {
	topo, reg := testNet(t)
	paths := combineFromRegistry(reg, lA, lC, topo)
	if len(paths) < 2 {
		t.Fatal("need >= 2 paths")
	}
	if got := Disjointness(paths[0], paths[0]); got != 0 {
		t.Errorf("self-disjointness = %v, want 0", got)
	}
	for i := 1; i < len(paths); i++ {
		d := Disjointness(paths[0], paths[i])
		if d <= 0 || d > 1 {
			t.Errorf("disjointness(0,%d) = %v out of (0,1]", i, d)
		}
	}
	// Symmetry.
	if Disjointness(paths[0], paths[1]) != Disjointness(paths[1], paths[0]) {
		t.Error("disjointness not symmetric")
	}
	empty := &Path{}
	if Disjointness(empty, empty) != 1 {
		t.Error("empty paths should count as disjoint")
	}
}

func TestFingerprintFormat(t *testing.T) {
	// The fingerprint doubles as a tiebreak in Combine's sort order, so
	// its bytes must stay exactly the historical fmt-built
	// "<ia>#<ifid>>" chain. Pin it, covering both AS notations.
	if got := fingerprint(nil); got != "direct" {
		t.Fatalf("fingerprint(nil) = %q, want %q", got, "direct")
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		ifs := make([]PathInterface, 1+rng.Intn(6))
		want := ""
		for j := range ifs {
			ifs[j] = PathInterface{
				IA:   addr.MustIA(addr.ISD(rng.Intn(1<<16)), addr.AS(rng.Int63())&addr.MaxAS),
				IfID: uint16(rng.Intn(1 << 16)),
			}
			want += fmt.Sprintf("%v#%d>", ifs[j].IA, ifs[j].IfID)
		}
		if got := fingerprint(ifs); got != want {
			t.Fatalf("fingerprint(%v) = %q, want %q", ifs, got, want)
		}
	}
}

func TestPathMetadata(t *testing.T) {
	topo, reg := testNet(t)
	paths := combineFromRegistry(reg, lA, lC, topo)
	for _, p := range paths {
		if p.LatencyMS <= 0 {
			t.Errorf("path %s latency = %v", p.Fingerprint, p.LatencyMS)
		}
		if p.MTU == 0 || p.MTU == ^uint16(0) {
			t.Errorf("path MTU = %d", p.MTU)
		}
		if p.Expiry.IsZero() {
			t.Error("path expiry unset")
		}
		if p.NumHops() < 2 {
			t.Errorf("leaf-to-leaf path with %d hops", p.NumHops())
		}
		if len(p.Interfaces)%2 != 0 {
			t.Errorf("odd interface count %d", len(p.Interfaces))
		}
	}
	// The best path lA->lC latency: via c1 then direct 50ms link is
	// 5+50+5=60; via c2: 5+10+10+5=30. The minimum-latency path must be 30.
	best := paths[0]
	for _, p := range paths {
		if p.LatencyMS < best.LatencyMS {
			best = p
		}
	}
	if best.LatencyMS != 30 {
		t.Errorf("best latency = %v, want 30", best.LatencyMS)
	}
}

// verifyWalk simulates the chain of border routers processing the path:
// it checks hop MACs with each AS's key, validates interface consistency
// against the topology, and confirms the packet arrives at Dst.
func verifyWalk(t testing.TB, topo *topology.Topology, p *Path) {
	t.Helper()
	raw := p.Raw.Copy()
	cur := p.Src
	for {
		info, err := raw.CurrentInfo()
		if err != nil {
			t.Fatalf("path %s: %v", p.Fingerprint, err)
		}
		hop, err := raw.CurrentHop()
		if err != nil {
			t.Fatalf("path %s: %v", p.Fingerprint, err)
		}
		// Mirror the border router: peer-crossing boundary hops verify
		// against the accumulator as-is, all others fold/advance.
		peerCross := info.Peer &&
			((info.ConsDir && raw.IsFirstHopOfSegment()) ||
				(!info.ConsDir && raw.IsLastHopOfSegment()))
		var ok bool
		if peerCross {
			ok = spath.VerifyPeerHop(keyOf(cur), info, hop)
		} else {
			ok = spath.VerifyHop(keyOf(cur), info, hop)
		}
		if !ok {
			t.Fatalf("path %s: MAC verification failed at %v (hop %d)", p.Fingerprint, cur, raw.CurrHF)
		}
		egress := spath.DataEgress(info, hop)
		if raw.IsLastHop() {
			if egress != 0 {
				t.Fatalf("path %s: terminal hop has egress %d", p.Fingerprint, egress)
			}
			break // delivered
		}
		if raw.IsLastHopOfSegment() && !(peerCross && egress != 0) {
			// Segment crossover within the same AS (core joint or
			// shortcut); a peer boundary hop with an egress instead
			// forwards across the peering link.
			if err := raw.IncHop(); err != nil {
				t.Fatalf("path %s: %v", p.Fingerprint, err)
			}
			continue
		}
		if egress == 0 {
			t.Fatalf("path %s: non-boundary hop at %v without egress", p.Fingerprint, cur)
		}
		link, okL := topo.LinkAt(topology.LinkEnd{IA: cur, IfID: egress})
		if !okL {
			t.Fatalf("path %s: no link at %v#%d", p.Fingerprint, cur, egress)
		}
		next, _ := link.Other(cur)
		cur = next.IA
		if err := raw.IncHop(); err != nil {
			t.Fatalf("path %s: %v", p.Fingerprint, err)
		}
		// After crossing, the new current hop's data ingress must match
		// the interface we arrived on.
		info2, _ := raw.CurrentInfo()
		hop2, _ := raw.CurrentHop()
		if in := spath.DataIngress(info2, hop2); in != 0 && in != next.IfID {
			t.Fatalf("path %s: arrived at %v#%d but hop expects ingress %d",
				p.Fingerprint, next.IA, next.IfID, in)
		}
	}
	if cur != p.Dst {
		t.Fatalf("path %s: walk ended at %v, want %v", p.Fingerprint, cur, p.Dst)
	}
}

func BenchmarkCombine(b *testing.B) {
	topo, reg := testNet(b)
	ups := reg.Up[lA].All()
	cores := reg.Core.All()
	downs := reg.Down.Get(0, lC)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if paths := Combine(lA, lC, ups, cores, downs); len(paths) == 0 {
			b.Fatal("no paths")
		}
	}
	_ = topo
}
