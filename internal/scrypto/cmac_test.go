package scrypto

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// RFC 4493 test vectors (AES-128 key 2b7e1516...).
func TestCMACRFC4493(t *testing.T) {
	key := mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	msg := mustHex(t, "6bc1bee22e409f96e93d7e117393172a"+
		"ae2d8a571e03ac9c9eb76fac45af8e51"+
		"30c81c46a35ce411e5fbc1191a0a52ef"+
		"f69f2445df4f9b17ad2b417be66c3710")
	cases := []struct {
		n   int
		mac string
	}{
		{0, "bb1d6929e95937287fa37d129b756746"},
		{16, "070a16b46b4d4144f79bdd9dd04a287c"},
		{40, "dfa66747de9ae63030ca32611497c827"},
		{64, "51f0bebf7e3b9d92fc49741779363cfe"},
	}
	m, err := NewCMAC(key)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		got := m.Sum(nil, msg[:c.n])
		want := mustHex(t, c.mac)
		if !bytes.Equal(got, want) {
			t.Errorf("CMAC(len=%d) = %x, want %x", c.n, got, want)
		}
	}
}

func TestCMACSubkeys(t *testing.T) {
	// RFC 4493 subkey generation vectors.
	key := mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	m, err := NewCMAC(key)
	if err != nil {
		t.Fatal(err)
	}
	wantK1 := mustHex(t, "fbeed618357133667c85e08f7236a8de")
	wantK2 := mustHex(t, "f7ddac306ae266ccf90bc11ee46d513b")
	if !bytes.Equal(m.k1[:], wantK1) {
		t.Errorf("K1 = %x, want %x", m.k1, wantK1)
	}
	if !bytes.Equal(m.k2[:], wantK2) {
		t.Errorf("K2 = %x, want %x", m.k2, wantK2)
	}
}

func TestCMACVerify(t *testing.T) {
	key := make([]byte, 16)
	m, err := NewCMAC(key)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello scion")
	mac := m.Sum(nil, msg)
	if !m.Verify(msg, mac) {
		t.Error("full MAC did not verify")
	}
	if !m.Verify(msg, mac[:6]) {
		t.Error("truncated MAC did not verify")
	}
	if m.Verify(msg, mac[:5]) {
		t.Error("too-short MAC accepted")
	}
	bad := append([]byte(nil), mac...)
	bad[0] ^= 1
	if m.Verify(msg, bad) {
		t.Error("tampered MAC accepted")
	}
	if m.Verify(append(msg, 'x'), mac) {
		t.Error("tampered message accepted")
	}
}

func TestCMACKeySizes(t *testing.T) {
	for _, n := range []int{16, 24, 32} {
		if _, err := NewCMAC(make([]byte, n)); err != nil {
			t.Errorf("key size %d rejected: %v", n, err)
		}
	}
	for _, n := range []int{0, 8, 15, 17, 33} {
		if _, err := NewCMAC(make([]byte, n)); err == nil {
			t.Errorf("key size %d accepted", n)
		}
	}
}

// Property: MAC is deterministic, and distinct messages (almost surely)
// yield distinct MACs.
func TestCMACDeterministic(t *testing.T) {
	m, _ := NewCMAC(make([]byte, 16))
	f := func(msg []byte) bool {
		a := m.Sum(nil, msg)
		b := m.Sum(nil, msg)
		return bytes.Equal(a, b) && len(a) == 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCMACAppend(t *testing.T) {
	m, _ := NewCMAC(make([]byte, 16))
	prefix := []byte{0xaa, 0xbb}
	out := m.Sum(prefix, []byte("x"))
	if !bytes.Equal(out[:2], prefix) {
		t.Error("Sum did not append to dst")
	}
	if len(out) != 18 {
		t.Errorf("len = %d", len(out))
	}
}

func BenchmarkCMAC16B(b *testing.B) { benchCMAC(b, 16) }
func BenchmarkCMAC1K(b *testing.B)  { benchCMAC(b, 1024) }

func benchCMAC(b *testing.B, n int) {
	m, _ := NewCMAC(make([]byte, 16))
	msg := make([]byte, n)
	dst := make([]byte, 0, 16)
	b.SetBytes(int64(n))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = m.Sum(dst[:0], msg)
	}
}
