package scrypto

import (
	"encoding/binary"
	"time"

	"sciera/internal/addr"
)

// DRKey implements a simplified DRKey-style key-derivation hierarchy as
// used by LightningFilter for line-rate per-packet source authentication.
//
// The hierarchy has three levels:
//
//	SV          — the AS's secret value for an epoch (level 0)
//	Lvl1(A→B)   — derived by A for peer AS B; fetched by B's infrastructure
//	HostKey     — derived from Lvl1 for a specific end host
//
// Derivation is one-way (AES-CMAC based), so possession of a lower-level
// key reveals nothing about its siblings or parents. The defining DRKey
// property is that the *verifier* side (A, which owns SV) can derive any
// key on the fly with a single CMAC, enabling per-packet authentication
// without key lookups.
type DRKey [16]byte

// SecretValue is an AS's epoch-scoped root secret.
type SecretValue struct {
	Key   DRKey
	Epoch Epoch
}

// Epoch is a key validity window.
type Epoch struct {
	Begin, End time.Time
}

// Contains reports whether t falls inside the epoch.
func (e Epoch) Contains(t time.Time) bool {
	return !t.Before(e.Begin) && t.Before(e.End)
}

// DeriveSecretValue computes an AS's secret value for the epoch that
// contains t, using epochs of the given duration aligned to the Unix epoch.
func DeriveSecretValue(master []byte, t time.Time, epochLen time.Duration) (SecretValue, error) {
	idx := t.UnixNano() / int64(epochLen)
	begin := time.Unix(0, idx*int64(epochLen))
	m, err := NewCMAC(pad16(master))
	if err != nil {
		return SecretValue{}, err
	}
	var in [16]byte
	copy(in[:8], "drkeysv0")
	binary.BigEndian.PutUint64(in[8:], uint64(idx))
	var sv SecretValue
	copy(sv.Key[:], m.Sum(nil, in[:]))
	sv.Epoch = Epoch{Begin: begin, End: begin.Add(epochLen)}
	return sv, nil
}

// DeriveLvl1 derives the level-1 key A→B from A's secret value.
func DeriveLvl1(sv SecretValue, dst addr.IA) (DRKey, error) {
	return derive(DRKey(sv.Key), 'L', uint64(dst), 0)
}

// DeriveHostKey derives the host key for a destination end host from the
// level-1 key, binding it to the host's numeric identity.
func DeriveHostKey(lvl1 DRKey, host uint64) (DRKey, error) {
	return derive(lvl1, 'H', host, 0)
}

// PacketMAC authenticates a packet — source AS, timestamp, and the full
// payload contents — under a host key, as LightningFilter does per
// packet.
func PacketMAC(key DRKey, src addr.IA, tsNanos uint64, payload []byte) ([HopMACLen]byte, error) {
	m, err := NewCMAC(key[:])
	if err != nil {
		return [HopMACLen]byte{}, err
	}
	in := make([]byte, 24+len(payload))
	binary.BigEndian.PutUint64(in[0:8], uint64(src))
	binary.BigEndian.PutUint64(in[8:16], tsNanos)
	binary.BigEndian.PutUint64(in[16:24], uint64(len(payload)))
	copy(in[24:], payload)
	full := m.Sum(nil, in)
	var out [HopMACLen]byte
	copy(out[:], full)
	return out, nil
}

func derive(parent DRKey, tag byte, a, b uint64) (DRKey, error) {
	m, err := NewCMAC(parent[:])
	if err != nil {
		return DRKey{}, err
	}
	var in [17]byte
	in[0] = tag
	binary.BigEndian.PutUint64(in[1:9], a)
	binary.BigEndian.PutUint64(in[9:17], b)
	var out DRKey
	copy(out[:], m.Sum(nil, in[:]))
	return out, nil
}

// pad16 extends or hashes a secret down to a valid AES key length.
func pad16(secret []byte) []byte {
	if len(secret) == 16 || len(secret) == 24 || len(secret) == 32 {
		return secret
	}
	out := make([]byte, 16)
	for i, b := range secret {
		out[i%16] ^= b
	}
	return out
}
