package scrypto

import (
	"testing"
	"testing/quick"
	"time"

	"sciera/internal/addr"
)

func TestHopMACRoundTrip(t *testing.T) {
	key := DeriveHopKey([]byte("as-master-secret"), 1)
	in := HopMACInput{Beta: 0x1234, Timestamp: 1000, ExpTime: 63, ConsIngress: 2, ConsEgress: 5}
	mac, err := ComputeHopMAC(key, in)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyHopMAC(key, in, mac) {
		t.Error("valid hop MAC rejected")
	}
	in2 := in
	in2.ConsEgress = 6
	if VerifyHopMAC(key, in2, mac) {
		t.Error("MAC accepted for altered egress interface")
	}
	otherKey := DeriveHopKey([]byte("as-master-secret"), 2)
	if VerifyHopMAC(otherKey, in, mac) {
		t.Error("MAC accepted under different epoch key")
	}
}

func TestHopMACPropertyFieldsBound(t *testing.T) {
	key := DeriveHopKey([]byte("secret"), 0)
	f := func(beta uint16, ts uint32, exp uint8, in, eg uint16) bool {
		a := HopMACInput{Beta: beta, Timestamp: ts, ExpTime: exp, ConsIngress: in, ConsEgress: eg}
		mac, err := ComputeHopMAC(key, a)
		if err != nil {
			return false
		}
		// Flipping any field must invalidate the MAC.
		variants := []HopMACInput{
			{Beta: beta ^ 1, Timestamp: ts, ExpTime: exp, ConsIngress: in, ConsEgress: eg},
			{Beta: beta, Timestamp: ts ^ 1, ExpTime: exp, ConsIngress: in, ConsEgress: eg},
			{Beta: beta, Timestamp: ts, ExpTime: exp ^ 1, ConsIngress: in, ConsEgress: eg},
			{Beta: beta, Timestamp: ts, ExpTime: exp, ConsIngress: in ^ 1, ConsEgress: eg},
			{Beta: beta, Timestamp: ts, ExpTime: exp, ConsIngress: in, ConsEgress: eg ^ 1},
		}
		if !VerifyHopMAC(key, a, mac) {
			return false
		}
		for _, v := range variants {
			if VerifyHopMAC(key, v, mac) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUpdateBetaChaining(t *testing.T) {
	key := DeriveHopKey([]byte("secret"), 0)
	in1 := HopMACInput{Beta: 0, Timestamp: 5, ExpTime: 63, ConsIngress: 0, ConsEgress: 1}
	mac1, _ := ComputeHopMAC(key, in1)
	beta2 := UpdateBeta(0, mac1)
	if beta2 == 0 {
		t.Skip("degenerate MAC prefix; statistically negligible")
	}
	// A second hop computed with the chained beta must not verify under
	// the unchained one — hop fields cannot be spliced across segments.
	in2 := HopMACInput{Beta: beta2, Timestamp: 5, ExpTime: 63, ConsIngress: 1, ConsEgress: 0}
	mac2, _ := ComputeHopMAC(key, in2)
	unchained := in2
	unchained.Beta = 0
	if VerifyHopMAC(key, unchained, mac2) {
		t.Error("hop MAC verified without the chained accumulator")
	}
}

func TestDeriveHopKeyEpochs(t *testing.T) {
	a := DeriveHopKey([]byte("s"), 1)
	b := DeriveHopKey([]byte("s"), 2)
	c := DeriveHopKey([]byte("t"), 1)
	if a == b || a == c {
		t.Error("hop keys must differ across epochs and secrets")
	}
	if a != DeriveHopKey([]byte("s"), 1) {
		t.Error("hop key derivation not deterministic")
	}
}

func TestDRKeyHierarchy(t *testing.T) {
	sv, err := DeriveSecretValue([]byte("master"), time.Unix(1000, 0), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !sv.Epoch.Contains(time.Unix(1000, 0)) {
		t.Error("epoch does not contain derivation time")
	}
	if sv.Epoch.Contains(sv.Epoch.End) {
		t.Error("epoch end must be exclusive")
	}

	dst := addr.MustParseIA("71-2:0:3b")
	lvl1, err := DeriveLvl1(sv, dst)
	if err != nil {
		t.Fatal(err)
	}
	other, _ := DeriveLvl1(sv, addr.MustParseIA("71-559"))
	if lvl1 == other {
		t.Error("level-1 keys for different peers must differ")
	}

	hk, err := DeriveHostKey(lvl1, 42)
	if err != nil {
		t.Fatal(err)
	}
	hk2, _ := DeriveHostKey(lvl1, 43)
	if hk == hk2 {
		t.Error("host keys must differ per host")
	}

	payload := []byte("science data")
	mac, err := PacketMAC(hk, dst, 12345, payload)
	if err != nil {
		t.Fatal(err)
	}
	mac2, _ := PacketMAC(hk, dst, 12345, payload)
	if mac != mac2 {
		t.Error("packet MAC not deterministic")
	}
	mac3, _ := PacketMAC(hk, dst, 12346, payload)
	if mac == mac3 {
		t.Error("packet MAC must bind the timestamp")
	}
	tampered := append([]byte(nil), payload...)
	tampered[0] ^= 1
	mac4, _ := PacketMAC(hk, dst, 12345, tampered)
	if mac == mac4 {
		t.Error("packet MAC must bind the payload contents")
	}
}

func TestDeriveSecretValueEpochAlignment(t *testing.T) {
	epochLen := 10 * time.Minute
	t1 := time.Unix(0, 0).Add(3 * time.Minute)
	t2 := time.Unix(0, 0).Add(9 * time.Minute)
	t3 := time.Unix(0, 0).Add(11 * time.Minute)
	sv1, _ := DeriveSecretValue([]byte("m"), t1, epochLen)
	sv2, _ := DeriveSecretValue([]byte("m"), t2, epochLen)
	sv3, _ := DeriveSecretValue([]byte("m"), t3, epochLen)
	if sv1.Key != sv2.Key {
		t.Error("same epoch must yield same secret value")
	}
	if sv1.Key == sv3.Key {
		t.Error("different epochs must yield different secret values")
	}
}

func TestPad16(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 31, 100} {
		k := pad16(make([]byte, n))
		if len(k) != 16 {
			t.Errorf("pad16(len=%d) returned len %d", n, len(k))
		}
	}
	for _, n := range []int{16, 24, 32} {
		k := pad16(make([]byte, n))
		if len(k) != n {
			t.Errorf("pad16 must pass through valid key length %d", n)
		}
	}
}

func BenchmarkHopMACVerify(b *testing.B) {
	key := DeriveHopKey([]byte("secret"), 0)
	in := HopMACInput{Beta: 7, Timestamp: 99, ExpTime: 63, ConsIngress: 1, ConsEgress: 2}
	mac, _ := ComputeHopMAC(key, in)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !VerifyHopMAC(key, in, mac) {
			b.Fatal("verify failed")
		}
	}
}
