package scrypto

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
)

// HopMACLen is the truncated MAC length carried in SCION hop fields.
const HopMACLen = 6

// HopKey is the per-AS forwarding key used to authenticate hop fields.
// Each AS derives it from a local secret; it never leaves the AS.
type HopKey [16]byte

// DeriveHopKey derives an AS's hop-field key from a master secret. In a
// production deployment the master secret lives in the control service;
// here it is derived deterministically so simulated ASes agree with their
// own routers.
func DeriveHopKey(master []byte, epoch uint32) HopKey {
	mac := hmac.New(sha256.New, master)
	var e [8]byte
	binary.BigEndian.PutUint32(e[:4], epoch)
	copy(e[4:], "hopk")
	mac.Write(e[:])
	var k HopKey
	copy(k[:], mac.Sum(nil))
	return k
}

// HopMACInput is the byte string authenticated by a hop-field MAC: the
// segment's info-field accumulator (beta), the hop expiry, and the
// ingress/egress interface identifiers. This chaining prevents splicing
// hop fields across segments: each hop's MAC depends on the accumulator,
// which itself is updated with the previous hop's MAC.
type HopMACInput struct {
	Beta      uint16 // accumulator from the info field
	Timestamp uint32 // segment creation timestamp
	ExpTime   uint8  // hop expiry (relative units)
	ConsIngress,
	ConsEgress uint16 // interfaces in construction direction
}

// Encode writes the 16-byte MAC input block.
func (in HopMACInput) Encode(b *[16]byte) {
	binary.BigEndian.PutUint16(b[0:2], in.Beta)
	binary.BigEndian.PutUint32(b[2:6], in.Timestamp)
	b[6] = in.ExpTime
	b[7] = 0
	binary.BigEndian.PutUint16(b[8:10], in.ConsIngress)
	binary.BigEndian.PutUint16(b[10:12], in.ConsEgress)
	// bytes 12-15 are reserved zero
	b[12], b[13], b[14], b[15] = 0, 0, 0, 0
}

// ComputeHopMAC computes the truncated hop-field MAC for the given input
// under the AS's hop key. It sets up a fresh CMAC per call; per-packet
// code should create the CMAC once (NewHopCMAC) and use HopMAC.
func ComputeHopMAC(key HopKey, in HopMACInput) ([HopMACLen]byte, error) {
	m, err := NewCMAC(key[:])
	if err != nil {
		return [HopMACLen]byte{}, err
	}
	return HopMAC(m, in), nil
}

// NewHopCMAC prepares a reusable CMAC instance for a hop key. The
// instance is not safe for concurrent use; the border router keeps one
// per pooled packet processor.
func NewHopCMAC(key HopKey) (*CMAC, error) { return NewCMAC(key[:]) }

// HopMAC computes the truncated hop-field MAC with a prepared CMAC,
// allocating nothing.
func HopMAC(m *CMAC, in HopMACInput) [HopMACLen]byte {
	var block [16]byte
	in.Encode(&block)
	var full [blockSize]byte
	m.SumInto(&full, block[:])
	var out [HopMACLen]byte
	copy(out[:], full[:HopMACLen])
	return out
}

// VerifyHopMAC checks a truncated hop-field MAC in constant time.
func VerifyHopMAC(key HopKey, in HopMACInput, mac [HopMACLen]byte) bool {
	m, err := NewCMAC(key[:])
	if err != nil {
		return false
	}
	return VerifyHopMACWith(m, in, mac)
}

// VerifyHopMACWith checks a truncated hop-field MAC in constant time
// with a prepared CMAC, allocating nothing.
func VerifyHopMACWith(m *CMAC, in HopMACInput, mac [HopMACLen]byte) bool {
	want := HopMAC(m, in)
	var diff byte
	for i := range want {
		diff |= want[i] ^ mac[i]
	}
	return diff == 0
}

// UpdateBeta advances the info-field accumulator with a hop MAC, chaining
// consecutive hop fields together (SCION's beta_i+1 = beta_i XOR mac_i).
func UpdateBeta(beta uint16, mac [HopMACLen]byte) uint16 {
	return beta ^ binary.BigEndian.Uint16(mac[:2])
}
