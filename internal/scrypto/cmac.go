// Package scrypto provides the symmetric cryptography used by the SCION
// data plane: AES-CMAC (RFC 4493) for hop-field MACs, and a DRKey-style
// key-derivation hierarchy used by LightningFilter for per-source packet
// authentication.
package scrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
	"fmt"
)

const blockSize = aes.BlockSize // 16

// CMAC implements the AES-CMAC message authentication code from RFC 4493.
// It is not safe for concurrent use; each goroutine should own its own
// instance (they are cheap to create from the same key).
type CMAC struct {
	c      cipher.Block
	k1, k2 [blockSize]byte
}

// NewCMAC returns an AES-CMAC instance for the given 16-, 24- or 32-byte key.
func NewCMAC(key []byte) (*CMAC, error) {
	c, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("scrypto: %w", err)
	}
	m := &CMAC{c: c}
	var l [blockSize]byte
	c.Encrypt(l[:], l[:])
	shiftLeft(&m.k1, &l)
	shiftLeft(&m.k2, &m.k1)
	return m, nil
}

// shiftLeft sets dst = src << 1, conditionally XORing the RFC 4493
// constant Rb into the last byte when the MSB of src is set.
func shiftLeft(dst, src *[blockSize]byte) {
	var carry byte
	for i := blockSize - 1; i >= 0; i-- {
		b := src[i]
		dst[i] = b<<1 | carry
		carry = b >> 7
	}
	// Constant-time conditional XOR with Rb = 0x87.
	dst[blockSize-1] ^= 0x87 & -carry
}

// Sum computes the 16-byte CMAC of msg, appending it to dst.
func (m *CMAC) Sum(dst, msg []byte) []byte {
	var x, y [blockSize]byte
	n := len(msg)
	full := n / blockSize
	rem := n % blockSize
	complete := rem == 0 && n > 0

	blocks := full
	if complete {
		blocks--
	}
	for i := 0; i < blocks; i++ {
		xorBlock(&y, &x, msg[i*blockSize:])
		m.c.Encrypt(x[:], y[:])
	}

	var last [blockSize]byte
	if complete {
		copy(last[:], msg[(full-1)*blockSize:])
		xorInto(&last, &m.k1)
	} else {
		copy(last[:], msg[blocks*blockSize:])
		last[rem] = 0x80
		xorInto(&last, &m.k2)
	}
	xorInto(&last, &x)
	m.c.Encrypt(x[:], last[:])
	return append(dst, x[:]...)
}

// Verify reports whether mac is the CMAC of msg, comparing in constant
// time. mac may be truncated; at least 6 bytes are required.
func (m *CMAC) Verify(msg, mac []byte) bool {
	if len(mac) < 6 || len(mac) > blockSize {
		return false
	}
	full := m.Sum(nil, msg)
	return subtle.ConstantTimeCompare(full[:len(mac)], mac) == 1
}

func xorBlock(dst, a *[blockSize]byte, b []byte) {
	for i := 0; i < blockSize; i++ {
		dst[i] = a[i] ^ b[i]
	}
}

func xorInto(dst, src *[blockSize]byte) {
	for i := 0; i < blockSize; i++ {
		dst[i] ^= src[i]
	}
}
