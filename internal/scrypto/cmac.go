// Package scrypto provides the symmetric cryptography used by the SCION
// data plane: AES-CMAC (RFC 4493) for hop-field MACs, and a DRKey-style
// key-derivation hierarchy used by LightningFilter for per-source packet
// authentication.
package scrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
	"fmt"
)

const blockSize = aes.BlockSize // 16

// CMAC implements the AES-CMAC message authentication code from RFC 4493.
// It is not safe for concurrent use; each goroutine should own its own
// instance (they are cheap to create from the same key).
type CMAC struct {
	c      cipher.Block
	k1, k2 [blockSize]byte
	// x, y, last and out are per-instance scratch blocks. They live in
	// the struct rather than on the stack because arguments passed to
	// the cipher.Block interface escape under Go's escape analysis —
	// stack arrays would turn every MAC into heap allocations, which
	// the router's per-packet verification cannot afford.
	x, y, last, out [blockSize]byte
}

// NewCMAC returns an AES-CMAC instance for the given 16-, 24- or 32-byte key.
func NewCMAC(key []byte) (*CMAC, error) {
	c, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("scrypto: %w", err)
	}
	m := &CMAC{c: c}
	var l [blockSize]byte
	c.Encrypt(l[:], l[:])
	shiftLeft(&m.k1, &l)
	shiftLeft(&m.k2, &m.k1)
	return m, nil
}

// shiftLeft sets dst = src << 1, conditionally XORing the RFC 4493
// constant Rb into the last byte when the MSB of src is set.
func shiftLeft(dst, src *[blockSize]byte) {
	var carry byte
	for i := blockSize - 1; i >= 0; i-- {
		b := src[i]
		dst[i] = b<<1 | carry
		carry = b >> 7
	}
	// Constant-time conditional XOR with Rb = 0x87.
	dst[blockSize-1] ^= 0x87 & -carry
}

// Sum computes the 16-byte CMAC of msg, appending it to dst.
func (m *CMAC) Sum(dst, msg []byte) []byte {
	var out [blockSize]byte
	m.SumInto(&out, msg)
	return append(dst, out[:]...)
}

// SumInto computes the 16-byte CMAC of msg into out without allocating.
// It is the hot-path variant used by per-packet MAC verification.
func (m *CMAC) SumInto(out *[blockSize]byte, msg []byte) {
	m.x = [blockSize]byte{}
	n := len(msg)
	full := n / blockSize
	rem := n % blockSize
	complete := rem == 0 && n > 0

	blocks := full
	if complete {
		blocks--
	}
	for i := 0; i < blocks; i++ {
		xorBlock(&m.y, &m.x, msg[i*blockSize:])
		m.c.Encrypt(m.x[:], m.y[:])
	}

	m.last = [blockSize]byte{}
	if complete {
		copy(m.last[:], msg[(full-1)*blockSize:])
		xorInto(&m.last, &m.k1)
	} else {
		copy(m.last[:], msg[blocks*blockSize:])
		m.last[rem] = 0x80
		xorInto(&m.last, &m.k2)
	}
	xorInto(&m.last, &m.x)
	m.c.Encrypt(m.out[:], m.last[:])
	*out = m.out
}

// Verify reports whether mac is the CMAC of msg, comparing in constant
// time. mac may be truncated; at least 6 bytes are required.
func (m *CMAC) Verify(msg, mac []byte) bool {
	if len(mac) < 6 || len(mac) > blockSize {
		return false
	}
	var full [blockSize]byte
	m.SumInto(&full, msg)
	return subtle.ConstantTimeCompare(full[:len(mac)], mac) == 1
}

func xorBlock(dst, a *[blockSize]byte, b []byte) {
	for i := 0; i < blockSize; i++ {
		dst[i] = a[i] ^ b[i]
	}
}

func xorInto(dst, src *[blockSize]byte) {
	for i := 0; i < blockSize; i++ {
		dst[i] ^= src[i]
	}
}
