package telemetry

import "sync"

// TraceVerdict classifies what the forwarding plane did with a traced
// packet.
type TraceVerdict uint8

const (
	// VerdictForwarded: sent out an egress interface to a neighbor AS.
	VerdictForwarded TraceVerdict = iota
	// VerdictDelivered: handed to an AS-local end host.
	VerdictDelivered
	// VerdictMACFail: hop-field MAC verification failed.
	VerdictMACFail
	// VerdictNoRoute: no usable egress/destination.
	VerdictNoRoute
	// VerdictLinkDown: egress circuit administratively or physically down.
	VerdictLinkDown
	// VerdictParseErr: the packet failed to decode or patch.
	VerdictParseErr
	// VerdictIngressDrop: arrival interface disagreed with the hop field.
	VerdictIngressDrop
	// VerdictDemuxHit: the dispatcher demultiplexed to a registered app.
	VerdictDemuxHit
	// VerdictDemuxMiss: no application registered for the packet's port.
	VerdictDemuxMiss
)

func (v TraceVerdict) String() string {
	switch v {
	case VerdictForwarded:
		return "forwarded"
	case VerdictDelivered:
		return "delivered"
	case VerdictMACFail:
		return "mac-fail"
	case VerdictNoRoute:
		return "no-route"
	case VerdictLinkDown:
		return "link-down"
	case VerdictParseErr:
		return "parse-err"
	case VerdictIngressDrop:
		return "ingress-drop"
	case VerdictDemuxHit:
		return "demux-hit"
	case VerdictDemuxMiss:
		return "demux-miss"
	default:
		return "?"
	}
}

// TraceEntry is one sampled packet observation.
type TraceEntry struct {
	// TimeNS is the transport clock at processing time (UnixNano).
	TimeNS int64 `json:"t_ns"`
	// IA is the observing AS packed as uint64 (addr.IA); kept as a
	// plain integer so this package stays dependency-free.
	IA uint64 `json:"ia"`
	// Ingress and Egress are the arrival and departure interface IDs
	// (0: AS-internal).
	Ingress uint16 `json:"ingress"`
	Egress  uint16 `json:"egress"`
	// Hop is the path's current hop-field index at decision time.
	Hop uint8 `json:"hop"`
	// Verdict is the forwarding outcome (includes the MAC verdict:
	// VerdictMACFail vs any of the pass outcomes).
	Verdict TraceVerdict `json:"verdict"`
	// QueueNS is the egress transmit-queue delay observed for the
	// packet's wire, when the transport models one (simulator links
	// with a bandwidth cap); 0 otherwise.
	QueueNS int64 `json:"queue_ns"`
}

// TraceRing is a sampled, fixed-size, overwrite-oldest ring of packet
// trace entries. Sampling runs on the packet hot path and is one atomic
// add plus a mask; the sampled minority takes a mutex to write into a
// preallocated slot. Nothing allocates after construction.
//
// A nil *TraceRing is valid and never samples, so call sites need no
// nil checks:
//
//	if ring.Sample() {
//		ring.Record(TraceEntry{...})
//	}
type TraceRing struct {
	mu      sync.Mutex
	entries []TraceEntry
	written uint64 // total Record calls; next slot = written % len
	mask    uint64 // sample when tick&mask == 0 (sampleEvery is a power of two)
	tick    Counter
	sampled Counter
}

// NewTraceRing creates a ring holding size entries, sampling roughly
// one in sampleEvery packets (rounded up to a power of two; <=1 traces
// every packet). size is clamped to at least 1.
func NewTraceRing(size, sampleEvery int) *TraceRing {
	if size < 1 {
		size = 1
	}
	every := uint64(1)
	for int(every) < sampleEvery {
		every <<= 1
	}
	return &TraceRing{
		entries: make([]TraceEntry, size),
		mask:    every - 1,
	}
}

// Sample reports whether the current packet should be traced, advancing
// the sampling clock. Allocation-free; safe on a nil ring (never
// samples).
func (t *TraceRing) Sample() bool {
	if t == nil {
		return false
	}
	return (t.tick.Add(1)-1)&t.mask == 0
}

// Record stores one entry, overwriting the oldest when full.
// Allocation-free; no-op on a nil ring.
func (t *TraceRing) Record(e TraceEntry) {
	if t == nil {
		return
	}
	t.sampled.Inc()
	t.mu.Lock()
	t.entries[t.written%uint64(len(t.entries))] = e
	t.written++
	t.mu.Unlock()
}

// Len reports how many entries are currently held (at most the ring
// size).
func (t *TraceRing) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.written < uint64(len(t.entries)) {
		return int(t.written)
	}
	return len(t.entries)
}

// Stats reports how many packets passed the sampler and how many
// entries were recorded.
func (t *TraceRing) Stats() (seen, sampled uint64) {
	if t == nil {
		return 0, 0
	}
	return t.tick.Load(), t.sampled.Load()
}

// Snapshot copies the held entries oldest-first.
func (t *TraceRing) Snapshot() []TraceEntry {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.entries))
	if t.written < n {
		return append([]TraceEntry(nil), t.entries[:t.written]...)
	}
	out := make([]TraceEntry, 0, n)
	start := t.written % n
	out = append(out, t.entries[start:]...)
	out = append(out, t.entries[:start]...)
	return out
}

// SampleEvery reports the effective sampling period.
func (t *TraceRing) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(t.mask + 1)
}
