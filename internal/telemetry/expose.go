package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (families sorted by name, series by label set).
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch f.kind {
			case KindCounter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.key, s.counter.Load())
			case KindGauge:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.key, s.gauge.Load())
			case KindHistogram:
				writeHistogram(bw, f.name, s)
			}
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series with cumulative buckets.
func writeHistogram(w io.Writer, name string, s *series) {
	snap := s.hist.Snapshot()
	var cum uint64
	for i, upper := range snap.Upper {
		cum += snap.Counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(s.key, "le", fmt.Sprintf("%g", upper)), cum)
	}
	cum += snap.Counts[len(snap.Counts)-1]
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(s.key, "le", "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, s.key, snap.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, s.key, snap.Count)
}

// withLabel appends one label pair to a rendered label-set string.
func withLabel(key, k, v string) string {
	extra := fmt.Sprintf("%s=%q", k, v)
	if key == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(key, "}") + "," + extra + "}"
}

// Handler returns an http.Handler serving the Prometheus exposition —
// mountable on a plain net/http server (the -metrics-addr flag) or on
// an shttp SCION-native server alike.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// MetricSnapshot is one series frozen at snapshot time.
type MetricSnapshot struct {
	Name      string             `json:"name"`
	Kind      string             `json:"kind"`
	Labels    map[string]string  `json:"labels,omitempty"`
	Value     float64            `json:"value,omitempty"`
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// Snapshot is the end-of-run state of a registry, JSON-serializable for
// the -telemetry-dump flag and consumed by internal/experiments.
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
	// Trace holds the packet-trace ring contents when a ring was
	// attached to the dump (see SnapshotWithTrace).
	Trace []TraceEntry `json:"trace,omitempty"`
}

// Snapshot freezes every registered series.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	for _, f := range r.sortedFamilies() {
		for _, s := range f.series {
			ms := MetricSnapshot{Name: f.name, Kind: f.kind.String()}
			if len(s.labels) > 0 {
				ms.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					ms.Labels[l.Key] = l.Value
				}
			}
			switch f.kind {
			case KindCounter:
				ms.Value = float64(s.counter.Load())
			case KindGauge:
				ms.Value = float64(s.gauge.Load())
			case KindHistogram:
				h := s.hist.Snapshot()
				ms.Histogram = &h
			}
			snap.Metrics = append(snap.Metrics, ms)
		}
	}
	return snap
}

// SnapshotWithTrace freezes the registry plus a trace ring's contents.
func (r *Registry) SnapshotWithTrace(ring *TraceRing) Snapshot {
	snap := r.Snapshot()
	snap.Trace = ring.Snapshot()
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot parses a snapshot previously written by WriteJSON — the
// consuming half of the -telemetry-dump flag.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("telemetry: decoding snapshot: %w", err)
	}
	return s, nil
}

// MergeSnapshots pools per-worker registry snapshots into one view:
// counter and gauge series with the same (name, labels) sum their
// values, histogram series merge bucket-wise (bounds must match — the
// workers register identical instruments), and trace entries
// concatenate sorted by timestamp. With a single input the snapshot is
// returned unchanged, so a one-worker merge is the identity. Series
// order follows first appearance across the inputs; since every worker
// snapshots the same families in exposition order, the merged order
// matches any single worker's.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	if len(snaps) == 1 {
		return snaps[0]
	}
	var out Snapshot
	type seriesKey struct {
		name   string
		labels string
	}
	idx := make(map[seriesKey]int)
	renderLabels := func(m map[string]string) string {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%q,", k, m[k])
		}
		return b.String()
	}
	for _, s := range snaps {
		for _, m := range s.Metrics {
			k := seriesKey{m.Name, renderLabels(m.Labels)}
			i, ok := idx[k]
			if !ok {
				cp := m
				if m.Histogram != nil {
					h := *m.Histogram
					h.Upper = append([]float64(nil), m.Histogram.Upper...)
					h.Counts = append([]uint64(nil), m.Histogram.Counts...)
					cp.Histogram = &h
				}
				idx[k] = len(out.Metrics)
				out.Metrics = append(out.Metrics, cp)
				continue
			}
			dst := &out.Metrics[i]
			if m.Histogram != nil && dst.Histogram != nil {
				_ = dst.Histogram.Merge(*m.Histogram)
				continue
			}
			dst.Value += m.Value
		}
		out.Trace = append(out.Trace, s.Trace...)
	}
	sort.SliceStable(out.Trace, func(i, j int) bool { return out.Trace[i].TimeNS < out.Trace[j].TimeNS })
	return out
}

// Total sums every series of a counter or gauge family; histograms
// contribute their observation counts. Missing families total 0.
func (s Snapshot) Total(name string) float64 {
	var sum float64
	for _, m := range s.Metrics {
		if m.Name != name {
			continue
		}
		if m.Histogram != nil {
			sum += float64(m.Histogram.Count)
			continue
		}
		sum += m.Value
	}
	return sum
}

// Value returns the value of the series matching name and all given
// labels exactly as a subset, and whether one was found. With several
// matches the first (exposition order) wins.
func (s Snapshot) Value(name string, labels ...Label) (float64, bool) {
	for _, m := range s.Metrics {
		if m.Name != name {
			continue
		}
		match := true
		for _, l := range labels {
			if m.Labels[l.Key] != l.Value {
				match = false
				break
			}
		}
		if match {
			return m.Value, true
		}
	}
	return 0, false
}

// Histogram returns the merged histogram snapshot of every series in a
// family matching the given labels as a subset (per-AS snapshots
// aggregate into the network-wide view), and whether any matched.
func (s Snapshot) Histogram(name string, labels ...Label) (HistogramSnapshot, bool) {
	var out HistogramSnapshot
	found := false
	for _, m := range s.Metrics {
		if m.Name != name || m.Histogram == nil {
			continue
		}
		match := true
		for _, l := range labels {
			if m.Labels[l.Key] != l.Value {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		if !found {
			out = *m.Histogram
			out.Upper = append([]float64(nil), m.Histogram.Upper...)
			out.Counts = append([]uint64(nil), m.Histogram.Counts...)
			found = true
			continue
		}
		_ = out.Merge(*m.Histogram)
	}
	return out, found
}
