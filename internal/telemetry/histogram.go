package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram: bucket bounds are chosen once
// at construction and every Observe is a bounded scan plus atomic adds
// on preallocated cells — no allocation on the observation path, which
// is what lets the forwarding fast path carry histograms.
type Histogram struct {
	// upper holds the ascending bucket upper bounds; counts has one
	// cell per bound plus a final +Inf overflow cell.
	upper  []float64
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	total  atomic.Uint64
}

// DefBuckets is a general-purpose latency bucket layout in
// milliseconds, spanning metro RTTs to intercontinental tails.
var DefBuckets = []float64{1, 2.5, 5, 10, 25, 50, 75, 100, 150, 200, 250, 300, 400, 500, 750, 1000}

// NewHistogram creates a histogram with the given upper bounds (sorted
// and deduplicated; DefBuckets when none are given).
func NewHistogram(upper ...float64) *Histogram {
	if len(upper) == 0 {
		upper = DefBuckets
	}
	bounds := append([]float64(nil), upper...)
	sort.Float64s(bounds)
	dedup := bounds[:0]
	for i, b := range bounds {
		if i == 0 || b != dedup[len(dedup)-1] {
			dedup = append(dedup, b)
		}
	}
	return &Histogram{
		upper:  dedup,
		counts: make([]atomic.Uint64, len(dedup)+1),
	}
}

// Observe records one value. Allocation-free.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	addFloat(&h.sum, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Merge adds o's buckets into h. Both histograms must share the same
// bucket bounds (per-AS snapshots aggregated into network-wide CDFs all
// come from the same wire-up).
func (h *Histogram) Merge(o *Histogram) error {
	if len(h.upper) != len(o.upper) {
		return fmt.Errorf("telemetry: merging histograms with %d and %d buckets", len(h.upper), len(o.upper))
	}
	for i, b := range h.upper {
		if b != o.upper[i] {
			return fmt.Errorf("telemetry: merging histograms with different bounds (%g vs %g)", b, o.upper[i])
		}
	}
	for i := range o.counts {
		h.counts[i].Add(o.counts[i].Load())
	}
	h.total.Add(o.total.Load())
	addFloat(&h.sum, o.Sum())
	return nil
}

// HistogramSnapshot is an immutable copy of a histogram's state.
type HistogramSnapshot struct {
	// Upper holds the bucket upper bounds; Counts the per-bucket
	// (non-cumulative) observation counts, with one extra +Inf cell.
	Upper  []float64 `json:"upper"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Upper:  append([]float64(nil), h.upper...),
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.Sum(),
		Count:  h.Count(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Merge adds o's buckets into s; bounds must match (see
// Histogram.Merge).
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) error {
	if len(s.Upper) != len(o.Upper) {
		return fmt.Errorf("telemetry: merging snapshots with %d and %d buckets", len(s.Upper), len(o.Upper))
	}
	for i, b := range s.Upper {
		if b != o.Upper[i] {
			return fmt.Errorf("telemetry: merging snapshots with different bounds (%g vs %g)", b, o.Upper[i])
		}
	}
	for i := range o.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Sum += o.Sum
	s.Count += o.Count
	return nil
}

// Quantile estimates the q-th quantile (0..1) from the bucket counts,
// interpolating linearly within the located bucket. The overflow bucket
// reports its lower bound. Returns NaN when empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = s.Upper[i-1]
			}
			if i >= len(s.Upper) {
				// Overflow bucket: no upper bound to interpolate to.
				return lo
			}
			hi := s.Upper[i]
			frac := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	if len(s.Upper) > 0 {
		return s.Upper[len(s.Upper)-1]
	}
	return math.NaN()
}

// Mean returns the mean observed value, or NaN when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.Count)
}
