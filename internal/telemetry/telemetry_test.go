package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Load() != 42 {
		t.Errorf("counter = %d, want 42", c.Load())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if g.Load() != 4 {
		t.Errorf("gauge = %d, want 4", g.Load())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", L("ia", "71-1"))
	b := r.Counter("x_total", "help", L("ia", "71-1"))
	if a != b {
		t.Error("same (name, labels) resolved to different cells")
	}
	c := r.Counter("x_total", "", L("ia", "71-2"))
	if a == c {
		t.Error("different labels resolved to the same cell")
	}
	// Label order must not matter.
	d1 := r.Counter("y_total", "", L("a", "1"), L("b", "2"))
	d2 := r.Counter("y_total", "", L("b", "2"), L("a", "1"))
	if d1 != d2 {
		t.Error("label order changed series identity")
	}
}

func TestRegistryAdoptExisting(t *testing.T) {
	r := NewRegistry()
	var c Counter
	c.Add(5)
	if !r.RegisterCounter("adopted_total", "h", &c) {
		t.Fatal("first registration refused")
	}
	if r.RegisterCounter("adopted_total", "h", new(Counter)) {
		t.Error("duplicate registration accepted")
	}
	if v, ok := r.Snapshot().Value("adopted_total"); !ok || v != 5 {
		t.Errorf("snapshot value = %v, %v", v, ok)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on kind mismatch")
		}
	}()
	r := NewRegistry()
	r.Counter("m", "")
	r.Gauge("m", "")
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := NewHistogram(10, 20, 30)
	for _, v := range []float64{5, 15, 15, 25, 99} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 159 {
		t.Errorf("sum = %g", h.Sum())
	}
	s := h.Snapshot()
	want := []uint64{1, 2, 1, 1}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	med := s.Quantile(0.5)
	if med < 10 || med > 20 {
		t.Errorf("median %g outside its bucket", med)
	}
	if !math.IsNaN(NewHistogram(1).Snapshot().Quantile(0.5)) {
		t.Error("empty histogram quantile not NaN")
	}
}

func TestHistogramMergeEqualsPooling(t *testing.T) {
	// Property: merging histograms == histogram of pooled samples.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		bounds := []float64{5, 25, 50, 100, 250}
		a, b, pooled := NewHistogram(bounds...), NewHistogram(bounds...), NewHistogram(bounds...)
		for i := 0; i < rng.Intn(200); i++ {
			v := rng.Float64() * 300
			a.Observe(v)
			pooled.Observe(v)
		}
		for i := 0; i < rng.Intn(200); i++ {
			v := rng.Float64() * 300
			b.Observe(v)
			pooled.Observe(v)
		}
		if err := a.Merge(b); err != nil {
			t.Fatal(err)
		}
		sa, sp := a.Snapshot(), pooled.Snapshot()
		if sa.Count != sp.Count || math.Abs(sa.Sum-sp.Sum) > 1e-9 {
			t.Fatalf("trial %d: merged count/sum %d/%g vs pooled %d/%g", trial, sa.Count, sa.Sum, sp.Count, sp.Sum)
		}
		for i := range sa.Counts {
			if sa.Counts[i] != sp.Counts[i] {
				t.Fatalf("trial %d bucket %d: merged %d vs pooled %d", trial, i, sa.Counts[i], sp.Counts[i])
			}
		}
	}
}

func TestHistogramMergeBoundsMismatch(t *testing.T) {
	if err := NewHistogram(1, 2).Merge(NewHistogram(1, 3)); err == nil {
		t.Error("merge with different bounds accepted")
	}
	if err := NewHistogram(1, 2).Merge(NewHistogram(1)); err == nil {
		t.Error("merge with different bucket counts accepted")
	}
}

func TestTraceRingSampling(t *testing.T) {
	ring := NewTraceRing(8, 4)
	recorded := 0
	for i := 0; i < 64; i++ {
		if ring.Sample() {
			ring.Record(TraceEntry{TimeNS: int64(i)})
			recorded++
		}
	}
	if recorded != 16 {
		t.Errorf("sampled %d of 64 at 1/4", recorded)
	}
	seen, sampled := ring.Stats()
	if seen != 64 || sampled != 16 {
		t.Errorf("stats = %d seen, %d sampled", seen, sampled)
	}
	if ring.Len() != 8 {
		t.Errorf("ring len = %d, want 8 (full)", ring.Len())
	}
	snap := ring.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	// Oldest-first: the last 8 sampled ticks are 32,36,...,60.
	for i, e := range snap {
		if want := int64(32 + 4*i); e.TimeNS != want {
			t.Errorf("snapshot[%d].TimeNS = %d, want %d", i, e.TimeNS, want)
		}
	}
}

func TestTraceRingNilSafe(t *testing.T) {
	var ring *TraceRing
	if ring.Sample() {
		t.Error("nil ring sampled")
	}
	ring.Record(TraceEntry{})
	if ring.Len() != 0 || ring.Snapshot() != nil {
		t.Error("nil ring holds entries")
	}
}

func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_ms", "", []float64{1, 10, 100})
	ring := NewTraceRing(16, 2)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Add(1)
		h.Observe(7.5)
		if ring.Sample() {
			ring.Record(TraceEntry{Verdict: VerdictForwarded})
		}
	}); n != 0 {
		t.Errorf("hot-path instruments allocate %.1f allocs/op", n)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h", "", []float64{10, 20})
	ring := NewTraceRing(32, 1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j % 30))
				if ring.Sample() {
					ring.Record(TraceEntry{TimeNS: int64(j)})
				}
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Errorf("counter = %d", c.Load())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d", h.Count())
	}
	if _, sampled := ring.Stats(); sampled != 8000 {
		t.Errorf("ring sampled = %d", sampled)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("sciera_router_forwarded_total", "packets forwarded", L("ia", "71-2")).Add(3)
	r.Counter("sciera_router_forwarded_total", "packets forwarded", L("ia", "71-1")).Add(9)
	r.Gauge("sciera_simnet_inflight", "in-flight datagrams").Set(5)
	h := r.Histogram("sciera_rtt_ms", "rtt", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE sciera_router_forwarded_total counter",
		`sciera_router_forwarded_total{ia="71-1"} 9`,
		`sciera_router_forwarded_total{ia="71-2"} 3`,
		"# TYPE sciera_simnet_inflight gauge",
		"sciera_simnet_inflight 5",
		"# TYPE sciera_rtt_ms histogram",
		`sciera_rtt_ms_bucket{le="10"} 1`,
		`sciera_rtt_ms_bucket{le="100"} 2`,
		`sciera_rtt_ms_bucket{le="+Inf"} 3`,
		"sciera_rtt_ms_sum 555",
		"sciera_rtt_ms_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families sorted by name, series by label set.
	i1 := strings.Index(out, `{ia="71-1"}`)
	i2 := strings.Index(out, `{ia="71-2"}`)
	if i1 > i2 {
		t.Error("series not sorted by label set")
	}
	var names []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			names = append(names, strings.Fields(line)[2])
		}
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("families not sorted: %v", names)
	}
}

func TestSnapshotHelpers(t *testing.T) {
	r := NewRegistry()
	r.Counter("f_total", "", L("ia", "a")).Add(2)
	r.Counter("f_total", "", L("ia", "b")).Add(3)
	r.Histogram("h_ms", "", []float64{10, 100}, L("ia", "a")).Observe(5)
	r.Histogram("h_ms", "", []float64{10, 100}, L("ia", "b")).Observe(50)
	snap := r.Snapshot()
	if got := snap.Total("f_total"); got != 5 {
		t.Errorf("Total = %g", got)
	}
	if v, ok := snap.Value("f_total", L("ia", "b")); !ok || v != 3 {
		t.Errorf("Value = %g, %v", v, ok)
	}
	merged, ok := snap.Histogram("h_ms")
	if !ok || merged.Count != 2 {
		t.Errorf("merged histogram count = %d, ok=%v", merged.Count, ok)
	}
	one, ok := snap.Histogram("h_ms", L("ia", "a"))
	if !ok || one.Count != 1 {
		t.Errorf("filtered histogram count = %d, ok=%v", one.Count, ok)
	}
	var b strings.Builder
	if err := snap.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"f_total"`) {
		t.Error("JSON dump missing family")
	}
}
