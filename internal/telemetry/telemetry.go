// Package telemetry is the process-wide observability substrate of the
// SCIERA reproduction: atomic counters and gauges, fixed-bucket
// histograms, labeled metric vectors, a registry with Prometheus-text
// exposition and JSON snapshots, and a sampled per-packet trace ring
// buffer.
//
// The paper's lessons (dispatcherless migration, certificate renewal,
// path quality across 11 ASes) were only learnable because the
// deployment was observable; this package makes the reproduction
// observable the same way, under one hard constraint inherited from the
// zero-allocation forwarding fast path (DESIGN.md decision 8): nothing
// on a packet hot path may allocate.
//
// # Hot-path rules
//
// Every instrument obeys the same contract:
//
//   - Counter.Inc/Add and Gauge.Set/Add are single atomic operations on
//     a preexisting cell. Cells are plain structs with usable zero
//     values, so subsystems embed them by value and touch no pointer
//     indirection beyond their own metrics struct.
//   - Labeled series are resolved ONCE at wire-up time (With returns the
//     cell; the router resolves its per-interface cells in
//     AddInterface, never per packet). With allocates; the returned
//     cell does not.
//   - Histogram.Observe is a bounded linear scan over preallocated
//     buckets plus three atomic operations. No allocation, ever.
//   - TraceRing.Record writes into a preallocated slot (see trace.go);
//     sampling makes its amortized cost negligible.
//
// Registration, exposition (WritePrometheus, Handler) and Snapshot are
// cold paths and may allocate freely.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; embed it by value and register it with a Registry at
// wire-up time (or never — an unregistered cell is just an atomic).
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n and returns the new value.
func (c *Counter) Add(n uint64) uint64 { return c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value. The zero value is ready.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrement) and returns the new value.
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Label is one key=value metric dimension.
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind discriminates metric families.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// series is one registered (family, label set) pair. Exactly one of the
// cell pointers is non-nil, matching the family's kind.
type series struct {
	labels  []Label // sorted by key
	key     string  // rendered label string, used for dedup and ordering
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family groups the series of one metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	series []*series
	byKey  map[string]*series
}

// Registry holds metric families for one process (or one simulated
// network — tests and the simulator run several registries side by
// side, so nothing here is global). All methods are safe for concurrent
// use; registration is expected at wire-up time, not per packet.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// familyLocked returns the family, creating it if absent. A kind
// mismatch on an existing name is a wiring bug and panics (it would
// silently corrupt exposition otherwise).
func (r *Registry) familyLocked(name, help string, kind Kind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, byKey: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: %s registered as %s and %s", name, f.kind, kind))
	}
	return f
}

// normalize sorts a copy of the labels and renders the series key.
func normalize(labels []Label) ([]Label, string) {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	if len(ls) == 0 {
		return ls, ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return ls, b.String()
}

// Counter returns the counter cell for (name, labels), creating and
// registering it on first use. Resolve once at wire-up; the returned
// cell is then a bare atomic.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, KindCounter)
	ls, key := normalize(labels)
	if s, ok := f.byKey[key]; ok {
		return s.counter
	}
	s := &series{labels: ls, key: key, counter: new(Counter)}
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s.counter
}

// Gauge returns the gauge cell for (name, labels), creating it on first
// use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, KindGauge)
	ls, key := normalize(labels)
	if s, ok := f.byKey[key]; ok {
		return s.gauge
	}
	s := &series{labels: ls, key: key, gauge: new(Gauge)}
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s.gauge
}

// Histogram returns the histogram for (name, labels), creating it with
// the given bucket upper bounds on first use (bounds are ignored when
// the series already exists).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, KindHistogram)
	ls, key := normalize(labels)
	if s, ok := f.byKey[key]; ok {
		return s.hist
	}
	s := &series{labels: ls, key: key, hist: NewHistogram(buckets...)}
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s.hist
}

// RegisterCounter adopts an existing cell (typically a value field of a
// subsystem's metrics struct) under (name, labels). If the series
// already exists the existing cell is kept and false is returned.
func (r *Registry) RegisterCounter(name, help string, c *Counter, labels ...Label) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, KindCounter)
	ls, key := normalize(labels)
	if _, ok := f.byKey[key]; ok {
		return false
	}
	s := &series{labels: ls, key: key, counter: c}
	f.byKey[key] = s
	f.series = append(f.series, s)
	return true
}

// RegisterGauge adopts an existing gauge cell; see RegisterCounter.
func (r *Registry) RegisterGauge(name, help string, g *Gauge, labels ...Label) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, KindGauge)
	ls, key := normalize(labels)
	if _, ok := f.byKey[key]; ok {
		return false
	}
	s := &series{labels: ls, key: key, gauge: g}
	f.byKey[key] = s
	f.series = append(f.series, s)
	return true
}

// RegisterHistogram adopts an existing histogram; see RegisterCounter.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, KindHistogram)
	ls, key := normalize(labels)
	if _, ok := f.byKey[key]; ok {
		return false
	}
	s := &series{labels: ls, key: key, hist: h}
	f.byKey[key] = s
	f.series = append(f.series, s)
	return true
}

// sortedFamilies returns families and their series in exposition order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].key < f.series[j].key })
	}
	return fams
}

// addFloat atomically adds v to the float64 stored as bits in a.
func addFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if a.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}
