package lightningfilter

import (
	"net/netip"
	"testing"
	"time"

	"sciera/internal/addr"
	"sciera/internal/slayers"
)

var (
	localIA = addr.MustParseIA("71-2:0:5c")
	srcIA   = addr.MustParseIA("71-225")
	master  = []byte("ufms-drkey-master-secret")
)

func fixedNow() time.Time { return time.Unix(1_700_000_000, 0) }

func newFilter(t *testing.T, rate float64, isds []addr.ISD) *Filter {
	t.Helper()
	f, err := New(Config{
		Local:       localIA,
		Master:      master,
		RatePPS:     rate,
		AllowedISDs: isds,
		Now:         fixedNow,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func sealedPacket(t *testing.T, src addr.IA, at time.Time, payload []byte) *slayers.Packet {
	t.Helper()
	body, err := Seal(master, at, 3*time.Hour, src, payload)
	if err != nil {
		t.Fatal(err)
	}
	return &slayers.Packet{
		Hdr: slayers.SCION{
			DstIA:   localIA,
			SrcIA:   src,
			DstHost: netip.MustParseAddr("10.0.0.2"),
			SrcHost: netip.MustParseAddr("10.0.0.1"),
		},
		UDP:     &slayers.UDP{SrcPort: 1, DstPort: 2},
		Payload: body,
	}
}

func TestAuthenticatedPacketPasses(t *testing.T) {
	f := newFilter(t, 0, nil)
	pkt := sealedPacket(t, srcIA, fixedNow(), []byte("science data"))
	if v := f.Check(pkt); v != Pass {
		t.Fatalf("verdict = %v", v)
	}
	if f.Metrics().Passed.Load() != 1 {
		t.Error("metrics not counted")
	}
	// Raw pipeline too.
	raw, err := pkt.Serialize(nil)
	if err != nil {
		t.Fatal(err)
	}
	if v := f.CheckRaw(raw); v != Pass {
		t.Fatalf("raw verdict = %v", v)
	}
	if f.CheckRaw([]byte("garbage")) != DropUnparseable {
		t.Error("garbage passed")
	}
}

func TestTamperingDropped(t *testing.T) {
	f := newFilter(t, 0, nil)

	// Tampered payload.
	pkt := sealedPacket(t, srcIA, fixedNow(), []byte("science data"))
	pkt.Payload[len(pkt.Payload)-1] ^= 1
	if v := f.Check(pkt); v != DropUnauthenticated {
		t.Errorf("tampered payload verdict = %v", v)
	}

	// Spoofed source AS (MAC no longer matches the derived key).
	pkt2 := sealedPacket(t, srcIA, fixedNow(), []byte("x"))
	pkt2.Hdr.SrcIA = addr.MustParseIA("71-88")
	if v := f.Check(pkt2); v != DropUnauthenticated {
		t.Errorf("spoofed source verdict = %v", v)
	}

	// No auth header at all.
	pkt3 := sealedPacket(t, srcIA, fixedNow(), nil)
	pkt3.Payload = []byte{1}
	if v := f.Check(pkt3); v != DropUnauthenticated {
		t.Errorf("unauthenticated verdict = %v", v)
	}
}

func TestReplayWindow(t *testing.T) {
	f := newFilter(t, 0, nil)
	stale := sealedPacket(t, srcIA, fixedNow().Add(-10*time.Second), []byte("old"))
	if v := f.Check(stale); v != DropExpired {
		t.Errorf("stale verdict = %v", v)
	}
	future := sealedPacket(t, srcIA, fixedNow().Add(10*time.Second), []byte("future"))
	if v := f.Check(future); v != DropExpired {
		t.Errorf("future verdict = %v", v)
	}
}

func TestRateLimiting(t *testing.T) {
	f := newFilter(t, 10, nil) // 10 pps, burst 20
	passed, limited := 0, 0
	for i := 0; i < 50; i++ {
		pkt := sealedPacket(t, srcIA, fixedNow(), []byte{byte(i)})
		switch f.Check(pkt) {
		case Pass:
			passed++
		case DropRateLimited:
			limited++
		default:
			t.Fatal("unexpected verdict")
		}
	}
	if passed != 20 || limited != 30 {
		t.Errorf("passed=%d limited=%d, want 20/30 (burst = 2x rate)", passed, limited)
	}
	// A different source AS has its own bucket.
	other := sealedPacket(t, addr.MustParseIA("71-20965"), fixedNow(), []byte("y"))
	if v := f.Check(other); v != Pass {
		t.Errorf("other source rate-limited: %v", v)
	}
}

func TestGeofencing(t *testing.T) {
	f := newFilter(t, 0, []addr.ISD{71})
	ok := sealedPacket(t, srcIA, fixedNow(), []byte("x"))
	if v := f.Check(ok); v != Pass {
		t.Errorf("same-ISD verdict = %v", v)
	}
	// A foreign-ISD source is dropped by policy before crypto.
	foreign := sealedPacket(t, srcIA, fixedNow(), []byte("x"))
	foreign.Hdr.SrcIA = addr.MustParseIA("64-559")
	if v := f.Check(foreign); v != DropPolicy {
		t.Errorf("foreign ISD verdict = %v", v)
	}
	// Wrong destination.
	wrongDst := sealedPacket(t, srcIA, fixedNow(), []byte("x"))
	wrongDst.Hdr.DstIA = addr.MustParseIA("71-88")
	if v := f.Check(wrongDst); v != DropPolicy {
		t.Errorf("wrong destination verdict = %v", v)
	}
}

func TestEpochRotation(t *testing.T) {
	now := fixedNow()
	f, err := New(Config{Local: localIA, Master: master, EpochLen: time.Hour, Now: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	body, err := Seal(master, now, time.Hour, srcIA, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	pkt := sealedPacket(t, srcIA, now, []byte("x"))
	pkt.Payload = body
	if v := f.Check(pkt); v != Pass {
		t.Fatalf("verdict = %v", v)
	}
	// Two hours later a packet sealed with the new epoch key passes;
	// one sealed with the old key fails.
	now = now.Add(2 * time.Hour)
	fresh, err := Seal(master, now, time.Hour, srcIA, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	pkt.Payload = fresh
	if v := f.Check(pkt); v != Pass {
		t.Errorf("new-epoch verdict = %v", v)
	}
	oldKeyBody, err := Seal(master, now.Add(-2*time.Hour), time.Hour, srcIA, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	// Fix up the timestamp to be current but keep the old-epoch MAC.
	h, payload, _ := DecodeAuth(oldKeyBody)
	h.TSNanos = uint64(now.UnixNano())
	pkt.Payload = EncodeAuth(h, payload)
	if v := f.Check(pkt); v != DropUnauthenticated {
		t.Errorf("old-epoch key verdict = %v", v)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Master: master}); err == nil {
		t.Error("filter without Local accepted")
	}
	if _, err := New(Config{Local: localIA}); err == nil {
		t.Error("filter without master accepted")
	}
}

func TestNaiveFilter(t *testing.T) {
	n := &NaiveFilter{Local: localIA, Allowed: map[addr.IA]bool{srcIA: true}}
	pkt := sealedPacket(t, srcIA, fixedNow(), []byte("x"))
	if n.Check(pkt) != Pass {
		t.Error("allowed source dropped")
	}
	pkt.Hdr.SrcIA = addr.MustParseIA("71-88")
	if n.Check(pkt) != DropPolicy {
		t.Error("unlisted source passed")
	}
	// But the naive filter cannot detect spoofing of an allowed source:
	spoofed := sealedPacket(t, addr.MustParseIA("71-88"), fixedNow(), []byte("evil"))
	spoofed.Hdr.SrcIA = srcIA // attacker writes the allowed address
	if n.Check(spoofed) != Pass {
		t.Error("naive filter unexpectedly caught spoofing")
	}
	// ... while LightningFilter does.
	f := newFilter(t, 0, nil)
	if f.Check(spoofed) != DropUnauthenticated {
		t.Error("lightningfilter missed spoofing")
	}
}

func TestVerdictStrings(t *testing.T) {
	for v := Pass; v <= DropPolicy; v++ {
		if v.String() == "" {
			t.Errorf("verdict %d unnamed", v)
		}
	}
	if Verdict(99).String() == "" {
		t.Error("unknown verdict should format")
	}
}

func BenchmarkLightningFilterCheck(b *testing.B) {
	f, err := New(Config{Local: localIA, Master: master, Now: fixedNow})
	if err != nil {
		b.Fatal(err)
	}
	body, err := Seal(master, fixedNow(), 3*time.Hour, srcIA, make([]byte, 1000))
	if err != nil {
		b.Fatal(err)
	}
	pkt := &slayers.Packet{
		Hdr: slayers.SCION{
			DstIA: localIA, SrcIA: srcIA,
			DstHost: netip.MustParseAddr("10.0.0.2"),
			SrcHost: netip.MustParseAddr("10.0.0.1"),
		},
		UDP:     &slayers.UDP{SrcPort: 1, DstPort: 2},
		Payload: body,
	}
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f.Check(pkt) != Pass {
			b.Fatal("drop")
		}
	}
}

func BenchmarkNaiveFilterCheck(b *testing.B) {
	n := &NaiveFilter{Local: localIA, Allowed: map[addr.IA]bool{srcIA: true}}
	pkt := &slayers.Packet{
		Hdr:     slayers.SCION{DstIA: localIA, SrcIA: srcIA},
		UDP:     &slayers.UDP{},
		Payload: make([]byte, 1000),
	}
	b.SetBytes(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if n.Check(pkt) != Pass {
			b.Fatal("drop")
		}
	}
}
