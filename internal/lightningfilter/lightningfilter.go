// Package lightningfilter implements a LightningFilter-style SCION
// firewall (Sections 4.7.1 and 4.9): per-packet source authentication
// with DRKey-derived symmetric MACs — so a single AES-CMAC replaces any
// per-flow state — plus per-source-AS token-bucket rate limiting and a
// drop/pass verdict pipeline designed for line-rate operation.
//
// The production system runs on DPDK at 100 Gbps; this implementation
// processes the same verdict pipeline in user space, and the benchmark
// suite measures its packets-per-second against an unauthenticated
// baseline filter.
package lightningfilter

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sciera/internal/addr"
	"sciera/internal/scrypto"
	"sciera/internal/slayers"
)

// Verdict classifies a packet.
type Verdict int

const (
	Pass Verdict = iota
	DropUnauthenticated
	DropRateLimited
	DropExpired
	DropUnparseable
	DropPolicy
)

func (v Verdict) String() string {
	switch v {
	case Pass:
		return "pass"
	case DropUnauthenticated:
		return "drop-unauthenticated"
	case DropRateLimited:
		return "drop-rate-limited"
	case DropExpired:
		return "drop-expired"
	case DropUnparseable:
		return "drop-unparseable"
	case DropPolicy:
		return "drop-policy"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Metrics counts verdicts.
type Metrics struct {
	Passed          atomic.Uint64
	Unauthenticated atomic.Uint64
	RateLimited     atomic.Uint64
	Expired         atomic.Uint64
	Unparseable     atomic.Uint64
	Policy          atomic.Uint64
}

func (m *Metrics) count(v Verdict) {
	switch v {
	case Pass:
		m.Passed.Add(1)
	case DropUnauthenticated:
		m.Unauthenticated.Add(1)
	case DropRateLimited:
		m.RateLimited.Add(1)
	case DropExpired:
		m.Expired.Add(1)
	case DropUnparseable:
		m.Unparseable.Add(1)
	case DropPolicy:
		m.Policy.Add(1)
	}
}

// Config configures a filter instance.
type Config struct {
	// Local is the protected AS; inbound packets must target it.
	Local addr.IA
	// Master is the AS's DRKey master secret.
	Master []byte
	// EpochLen is the DRKey epoch length (default 3h).
	EpochLen time.Duration
	// MaxAge bounds packet timestamp age (replay window; default 2s).
	MaxAge time.Duration
	// RatePPS is the per-source-AS packet budget per second
	// (token bucket, burst = 2x; 0 disables rate limiting).
	RatePPS float64
	// AllowedISDs optionally restricts sources to these ISDs
	// (geofencing); empty allows all.
	AllowedISDs []addr.ISD
	// Now supplies the clock.
	Now func() time.Time
}

// Filter is a per-AS LightningFilter instance. Safe for concurrent use.
type Filter struct {
	cfg     Config
	metrics Metrics

	mu      sync.Mutex
	sv      scrypto.SecretValue
	buckets map[addr.IA]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// New creates a filter.
func New(cfg Config) (*Filter, error) {
	if cfg.Local.IsZero() {
		return nil, fmt.Errorf("lightningfilter: Local required")
	}
	if len(cfg.Master) == 0 {
		return nil, fmt.Errorf("lightningfilter: Master secret required")
	}
	if cfg.EpochLen <= 0 {
		cfg.EpochLen = 3 * time.Hour
	}
	if cfg.MaxAge <= 0 {
		cfg.MaxAge = 2 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Filter{cfg: cfg, buckets: make(map[addr.IA]*bucket)}, nil
}

// Metrics exposes the verdict counters.
func (f *Filter) Metrics() *Metrics { return &f.metrics }

// AuthHeader is the per-packet authenticator a LightningFilter-aware
// sender attaches (carried in the packet payload prefix in this
// reproduction).
type AuthHeader struct {
	TSNanos uint64
	MAC     [scrypto.HopMACLen]byte
}

// AuthHeaderLen is the serialized authenticator length.
const AuthHeaderLen = 8 + scrypto.HopMACLen

// EncodeAuth renders the authenticator followed by the payload.
func EncodeAuth(h AuthHeader, payload []byte) []byte {
	out := make([]byte, AuthHeaderLen+len(payload))
	for i := 0; i < 8; i++ {
		out[i] = byte(h.TSNanos >> (56 - 8*i))
	}
	copy(out[8:], h.MAC[:])
	copy(out[AuthHeaderLen:], payload)
	return out
}

// DecodeAuth splits an authenticated payload.
func DecodeAuth(b []byte) (AuthHeader, []byte, bool) {
	if len(b) < AuthHeaderLen {
		return AuthHeader{}, nil, false
	}
	var h AuthHeader
	for i := 0; i < 8; i++ {
		h.TSNanos = h.TSNanos<<8 | uint64(b[i])
	}
	copy(h.MAC[:], b[8:AuthHeaderLen])
	return h, b[AuthHeaderLen:], true
}

// SenderKey derives the key a sender in srcIA uses toward the protected
// AS: in DRKey fashion, the protected AS can re-derive it on the fly.
// (The host-level granularity is collapsed to host ID 0 here.)
func SenderKey(master []byte, at time.Time, epochLen time.Duration, src addr.IA) (scrypto.DRKey, error) {
	sv, err := scrypto.DeriveSecretValue(master, at, epochLen)
	if err != nil {
		return scrypto.DRKey{}, err
	}
	lvl1, err := scrypto.DeriveLvl1(sv, src)
	if err != nil {
		return scrypto.DRKey{}, err
	}
	return scrypto.DeriveHostKey(lvl1, 0)
}

// Seal authenticates a payload from src toward the filter's AS.
func Seal(master []byte, at time.Time, epochLen time.Duration, src addr.IA, payload []byte) ([]byte, error) {
	key, err := SenderKey(master, at, epochLen, src)
	if err != nil {
		return nil, err
	}
	ts := uint64(at.UnixNano())
	mac, err := scrypto.PacketMAC(key, src, ts, payload)
	if err != nil {
		return nil, err
	}
	return EncodeAuth(AuthHeader{TSNanos: ts, MAC: mac}, payload), nil
}

// Check runs the verdict pipeline on a decoded packet.
func (f *Filter) Check(pkt *slayers.Packet) Verdict {
	v := f.check(pkt)
	f.metrics.count(v)
	return v
}

// CheckRaw parses and checks a raw packet.
func (f *Filter) CheckRaw(raw []byte) Verdict {
	var pkt slayers.Packet
	if err := pkt.Decode(raw); err != nil {
		f.metrics.count(DropUnparseable)
		return DropUnparseable
	}
	return f.Check(&pkt)
}

func (f *Filter) check(pkt *slayers.Packet) Verdict {
	if pkt.Hdr.DstIA != f.cfg.Local {
		return DropPolicy
	}
	src := pkt.Hdr.SrcIA
	if len(f.cfg.AllowedISDs) > 0 {
		ok := false
		for _, isd := range f.cfg.AllowedISDs {
			if src.ISD() == isd {
				ok = true
				break
			}
		}
		if !ok {
			return DropPolicy
		}
	}

	h, _, ok := DecodeAuth(pkt.Payload)
	if !ok {
		return DropUnauthenticated
	}
	now := f.cfg.Now()
	ts := time.Unix(0, int64(h.TSNanos))
	if now.Sub(ts) > f.cfg.MaxAge || ts.Sub(now) > f.cfg.MaxAge {
		return DropExpired
	}

	// Re-derive the sender key with two CMACs and verify — the DRKey
	// property enabling stateless line-rate authentication.
	key, err := f.senderKey(src, now)
	if err != nil {
		return DropUnauthenticated
	}
	want, err := scrypto.PacketMAC(key, src, h.TSNanos, pkt.Payload[AuthHeaderLen:])
	if err != nil || want != h.MAC {
		return DropUnauthenticated
	}

	if f.cfg.RatePPS > 0 && !f.takeToken(src, now) {
		return DropRateLimited
	}
	return Pass
}

// senderKey caches the epoch secret value and derives per-source keys.
func (f *Filter) senderKey(src addr.IA, now time.Time) (scrypto.DRKey, error) {
	f.mu.Lock()
	if !f.sv.Epoch.Contains(now) {
		sv, err := scrypto.DeriveSecretValue(f.cfg.Master, now, f.cfg.EpochLen)
		if err != nil {
			f.mu.Unlock()
			return scrypto.DRKey{}, err
		}
		f.sv = sv
	}
	sv := f.sv
	f.mu.Unlock()
	lvl1, err := scrypto.DeriveLvl1(sv, src)
	if err != nil {
		return scrypto.DRKey{}, err
	}
	return scrypto.DeriveHostKey(lvl1, 0)
}

func (f *Filter) takeToken(src addr.IA, now time.Time) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	b, ok := f.buckets[src]
	if !ok {
		b = &bucket{tokens: 2 * f.cfg.RatePPS, last: now}
		f.buckets[src] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * f.cfg.RatePPS
	if cap := 2 * f.cfg.RatePPS; b.tokens > cap {
		b.tokens = cap
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// NaiveFilter is the unauthenticated baseline: a legacy firewall that
// can only match on addresses (the "legacy firewalls cannot inspect
// SCION traffic" concern of Section 4.9). Used as the benchmark
// comparator.
type NaiveFilter struct {
	Local   addr.IA
	Allowed map[addr.IA]bool
}

// Check passes packets from allowed sources.
func (n *NaiveFilter) Check(pkt *slayers.Packet) Verdict {
	if pkt.Hdr.DstIA != n.Local {
		return DropPolicy
	}
	if n.Allowed != nil && !n.Allowed[pkt.Hdr.SrcIA] {
		return DropPolicy
	}
	return Pass
}
