// Package ca implements the open-source SCION certificate authority the
// SCIERA team built on the smallstep framework (paper Section 4.5): an
// online CA that issues intentionally short-lived AS certificates from
// certificate signing requests and a renewal client that keeps an AS's
// certificate fresh without operator involvement.
//
// Before SCIERA, certificate issuance relied on a proprietary CA that the
// open-source stack could not use; this package is the interoperable
// replacement. Issuance policy: the CSR subject must name an AS that the
// CA is authoritative for (same ISD), and re-issuance is rate-limited
// only by the request channel — renewal is expected to be frequent.
package ca

import (
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/x509"
	"errors"
	"fmt"
	"sync"
	"time"

	"sciera/internal/addr"
	"sciera/internal/cppki"
)

// CA is an online certificate authority for one ISD.
type CA struct {
	IA       addr.IA // the AS operating the CA
	ISD      addr.ISD
	Cert     *x509.Certificate
	Key      *cppki.KeyPair
	Validity time.Duration // validity of issued AS certs (short!)

	// Now supplies the CA's clock; tests and the simulator inject
	// virtual time here.
	Now func() time.Time

	mu     sync.Mutex
	issued int
}

// New creates a CA from its certificate and key. Validity is the lifetime
// of issued AS certificates; the paper reports "typically just a few
// days" in production.
func New(ia addr.IA, cert *x509.Certificate, key *cppki.KeyPair, validity time.Duration) *CA {
	return &CA{
		IA:       ia,
		ISD:      ia.ISD(),
		Cert:     cert,
		Key:      key,
		Validity: validity,
		Now:      time.Now,
	}
}

// Errors.
var (
	ErrWrongISD = errors.New("ca: subject outside the CA's ISD")
	ErrBadCSR   = errors.New("ca: invalid certificate signing request")
)

// NewCSR builds a certificate signing request for an AS keyed by key.
func NewCSR(ia addr.IA, key *cppki.KeyPair) ([]byte, error) {
	tmpl := &x509.CertificateRequest{}
	tmpl.Subject.CommonName = ia.String()
	der, err := x509.CreateCertificateRequest(rand.Reader, tmpl, key.Private)
	if err != nil {
		return nil, fmt.Errorf("ca: creating CSR: %w", err)
	}
	return der, nil
}

// Issue validates a CSR and returns a freshly issued AS certificate chain.
func (c *CA) Issue(csrDER []byte) (cppki.Chain, error) {
	csr, err := x509.ParseCertificateRequest(csrDER)
	if err != nil {
		return cppki.Chain{}, fmt.Errorf("%w: %v", ErrBadCSR, err)
	}
	if err := csr.CheckSignature(); err != nil {
		return cppki.Chain{}, fmt.Errorf("%w: proof of possession failed: %v", ErrBadCSR, err)
	}
	ia, err := addr.ParseIA(csr.Subject.CommonName)
	if err != nil {
		return cppki.Chain{}, fmt.Errorf("%w: subject %q: %v", ErrBadCSR, csr.Subject.CommonName, err)
	}
	if ia.ISD() != c.ISD {
		return cppki.Chain{}, fmt.Errorf("%w: %v not in ISD %d", ErrWrongISD, ia, c.ISD)
	}
	pub, ok := csr.PublicKey.(*ecdsa.PublicKey)
	if !ok {
		return cppki.Chain{}, fmt.Errorf("%w: key type %T", ErrBadCSR, csr.PublicKey)
	}
	now := c.Now()
	// Backdate slightly to tolerate clock skew between CA and subject —
	// a real issue the SCIERA deployment hit ("time synchronization
	// issues", Appendix C).
	cert, err := cppki.NewASCert(ia, pub, c.Cert, c.Key, now.Add(-time.Minute), c.Validity+time.Minute)
	if err != nil {
		return cppki.Chain{}, err
	}
	c.mu.Lock()
	c.issued++
	c.mu.Unlock()
	return cppki.Chain{AS: cert, CA: c.Cert}, nil
}

// Issued returns the number of certificates issued.
func (c *CA) Issued() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.issued
}

// Renewer keeps an AS certificate fresh by re-issuing through a CA when
// the remaining validity drops below the renewal threshold. It embodies
// the "fully automated certificate issuance and renewal" requirement of
// Section 4.5.
type Renewer struct {
	IA  addr.IA
	Key *cppki.KeyPair
	// Issue submits a CSR for signing; in production this is an RPC to
	// the ISD CA, in tests a direct call.
	Issue func(csr []byte) (cppki.Chain, error)
	// RenewBefore is the remaining-validity threshold that triggers
	// renewal (default: half the certificate lifetime).
	RenewBefore time.Duration
	Now         func() time.Time

	mu    sync.Mutex
	chain cppki.Chain
	count int
}

// NewRenewer creates a renewer; call Renew once to obtain the initial
// certificate.
func NewRenewer(ia addr.IA, key *cppki.KeyPair, issue func([]byte) (cppki.Chain, error)) *Renewer {
	return &Renewer{IA: ia, Key: key, Issue: issue, Now: time.Now}
}

// Chain returns the current certificate chain.
func (r *Renewer) Chain() cppki.Chain {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.chain
}

// Renewals returns how many issuances have happened.
func (r *Renewer) Renewals() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Renew forces an immediate issuance.
func (r *Renewer) Renew() error {
	csr, err := NewCSR(r.IA, r.Key)
	if err != nil {
		return err
	}
	chain, err := r.Issue(csr)
	if err != nil {
		return fmt.Errorf("ca: renewal for %v: %w", r.IA, err)
	}
	r.mu.Lock()
	r.chain = chain
	r.count++
	r.mu.Unlock()
	return nil
}

// NeedsRenewal reports whether the certificate should be renewed now.
func (r *Renewer) NeedsRenewal() bool {
	r.mu.Lock()
	chain := r.chain
	threshold := r.RenewBefore
	r.mu.Unlock()
	if chain.AS == nil {
		return true
	}
	if threshold == 0 {
		threshold = chain.AS.NotAfter.Sub(chain.AS.NotBefore) / 2
	}
	return r.Now().After(chain.AS.NotAfter.Add(-threshold))
}

// Tick renews if needed; the orchestrator calls this periodically.
func (r *Renewer) Tick() (renewed bool, err error) {
	if !r.NeedsRenewal() {
		return false, nil
	}
	if err := r.Renew(); err != nil {
		return false, err
	}
	return true, nil
}
