package ca

import (
	"crypto/x509"
	"sync"
	"testing"
	"time"

	"sciera/internal/addr"
	"sciera/internal/cppki"
)

var (
	caIA   = addr.MustParseIA("71-20965")
	leafIA = addr.MustParseIA("71-2:0:5c")
)

func newCA(t *testing.T, validity time.Duration) (*CA, *cppki.ProvisionedISD) {
	t.Helper()
	p, err := cppki.ProvisionISD(71, []addr.IA{caIA}, []addr.IA{caIA}, cppki.ProvisionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mat := p.CACerts[caIA]
	cert, err := x509.ParseCertificate(mat.Cert)
	if err != nil {
		t.Fatal(err)
	}
	return New(caIA, cert, mat.Key, validity), p
}

func TestIssueFromCSR(t *testing.T) {
	c, p := newCA(t, 72*time.Hour)
	key, _ := cppki.GenerateKey()
	csr, err := NewCSR(leafIA, key)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := c.Issue(csr)
	if err != nil {
		t.Fatal(err)
	}
	if err := cppki.VerifyChain(chain, p.TRC, leafIA, time.Now()); err != nil {
		t.Fatalf("issued chain does not verify: %v", err)
	}
	if c.Issued() != 1 {
		t.Errorf("issued = %d", c.Issued())
	}
	ia, err := cppki.SubjectIA(chain.AS)
	if err != nil || ia != leafIA {
		t.Errorf("subject = %v, %v", ia, err)
	}
}

func TestIssueRejectsForeignISD(t *testing.T) {
	c, _ := newCA(t, 72*time.Hour)
	key, _ := cppki.GenerateKey()
	csr, err := NewCSR(addr.MustParseIA("64-559"), key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Issue(csr); err == nil {
		t.Error("CSR for foreign ISD accepted")
	}
}

func TestIssueRejectsGarbageCSR(t *testing.T) {
	c, _ := newCA(t, 72*time.Hour)
	if _, err := c.Issue([]byte("not a csr")); err == nil {
		t.Error("garbage CSR accepted")
	}
}

func TestShortLivedCertsExpire(t *testing.T) {
	c, p := newCA(t, 72*time.Hour)
	key, _ := cppki.GenerateKey()
	csr, _ := NewCSR(leafIA, key)
	chain, err := c.Issue(csr)
	if err != nil {
		t.Fatal(err)
	}
	// Past the short validity the chain no longer verifies — the
	// deployment property that forces automated renewal.
	if err := cppki.VerifyChain(chain, p.TRC, leafIA, time.Now().Add(80*time.Hour)); err == nil {
		t.Error("cert valid beyond its short lifetime")
	}
}

func TestRenewerLifecycle(t *testing.T) {
	c, p := newCA(t, 72*time.Hour)
	// Virtual clock shared by CA and renewer.
	var mu sync.Mutex
	now := time.Now()
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	c.Now = clock

	key, _ := cppki.GenerateKey()
	r := NewRenewer(leafIA, key, c.Issue)
	r.Now = clock

	if !r.NeedsRenewal() {
		t.Fatal("fresh renewer should need initial issuance")
	}
	renewed, err := r.Tick()
	if err != nil || !renewed {
		t.Fatalf("initial tick: %v %v", renewed, err)
	}
	if r.Renewals() != 1 {
		t.Errorf("renewals = %d", r.Renewals())
	}
	if err := cppki.VerifyChain(r.Chain(), p.TRC, leafIA, clock()); err != nil {
		t.Fatalf("chain invalid: %v", err)
	}

	// Within the first half of validity: no renewal.
	advance(10 * time.Hour)
	if renewed, _ := r.Tick(); renewed {
		t.Error("renewed too early")
	}

	// Past half validity: renew.
	advance(30 * time.Hour)
	renewed, err = r.Tick()
	if err != nil || !renewed {
		t.Fatalf("renewal tick: %v %v", renewed, err)
	}
	if r.Renewals() != 2 {
		t.Errorf("renewals = %d", r.Renewals())
	}
	// The renewed chain must be valid *now* even though the original
	// would soon expire.
	advance(40 * time.Hour)
	if err := cppki.VerifyChain(r.Chain(), p.TRC, leafIA, clock()); err != nil {
		t.Fatalf("renewed chain invalid: %v", err)
	}
}

func TestRenewerSurvivesLongOperation(t *testing.T) {
	// Simulate months of operation with periodic ticks; the certificate
	// must stay continuously valid (Section 4.5: "certificate
	// expirations ... were infrequent" only because renewal works).
	c, p := newCA(t, 48*time.Hour)
	var mu sync.Mutex
	now := time.Now()
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	c.Now = clock
	key, _ := cppki.GenerateKey()
	r := NewRenewer(leafIA, key, c.Issue)
	r.Now = clock

	for hour := 0; hour < 24*60; hour += 6 { // 60 days, 6-hour cron
		if _, err := r.Tick(); err != nil {
			t.Fatalf("tick at hour %d: %v", hour, err)
		}
		if err := cppki.VerifyChain(r.Chain(), p.TRC, leafIA, clock()); err != nil {
			t.Fatalf("chain invalid at hour %d: %v", hour, err)
		}
		mu.Lock()
		now = now.Add(6 * time.Hour)
		mu.Unlock()
	}
	if r.Renewals() < 50 {
		t.Errorf("expected ~60 renewals over 60 days, got %d", r.Renewals())
	}
}

func TestRenewerPropagatesIssueErrors(t *testing.T) {
	key, _ := cppki.GenerateKey()
	r := NewRenewer(leafIA, key, func([]byte) (cppki.Chain, error) {
		return cppki.Chain{}, ErrBadCSR
	})
	if err := r.Renew(); err == nil {
		t.Error("issue error swallowed")
	}
}
