package spath

import (
	"sciera/internal/scrypto"
)

// HopSpec describes one AS hop of a segment under construction, in
// construction direction (the direction the PCB travelled).
type HopSpec struct {
	Key         scrypto.HopKey // the AS's hop-field key
	ConsIngress uint16         // interface the PCB entered on (0 at origin)
	ConsEgress  uint16         // interface the PCB left on (0 at terminus)
	ExpTime     uint8
}

// BuildSegment computes the hop fields of a segment with chained MACs.
// It returns the hop fields in construction order and the accumulator
// sequence beta[0..n]: beta[i] is the accumulator value a router at hop i
// uses to verify its MAC, and beta[n] is the value a sender must place in
// the info field when traversing the segment against construction
// direction.
func BuildSegment(timestamp uint32, beta0 uint16, specs []HopSpec) ([]HopField, []uint16, error) {
	hops := make([]HopField, len(specs))
	betas := make([]uint16, len(specs)+1)
	betas[0] = beta0
	for i, s := range specs {
		mac, err := scrypto.ComputeHopMAC(s.Key, scrypto.HopMACInput{
			Beta:        betas[i],
			Timestamp:   timestamp,
			ExpTime:     s.ExpTime,
			ConsIngress: s.ConsIngress,
			ConsEgress:  s.ConsEgress,
		})
		if err != nil {
			return nil, nil, err
		}
		hops[i] = HopField{
			ExpTime:     s.ExpTime,
			ConsIngress: s.ConsIngress,
			ConsEgress:  s.ConsEgress,
			MAC:         mac,
		}
		betas[i+1] = scrypto.UpdateBeta(betas[i], mac)
	}
	return hops, betas, nil
}

// VerifyHop performs the router-side hop verification for the segment the
// packet currently traverses, implementing SCION's bidirectional
// accumulator algebra:
//
//   - In construction direction the info field carries beta_i on arrival
//     at hop i; the MAC is verified directly and the router advances the
//     accumulator (SegID ^= MAC[:2]) when forwarding.
//   - Against construction direction the info field carries beta_{i+1};
//     the router first folds the (untrusted) packet MAC into the
//     accumulator to recover beta_i, then verifies. Tampering with either
//     the MAC or the accumulator makes verification fail.
//
// VerifyHop mutates info.SegID exactly as a border router would and
// returns false if the MAC does not verify.
func VerifyHop(key scrypto.HopKey, info *InfoField, hop *HopField) bool {
	m, err := scrypto.NewHopCMAC(key)
	if err != nil {
		return false
	}
	return VerifyHopWith(m, info, hop)
}

// VerifyHopWith is VerifyHop with a prepared CMAC instance — the
// allocation-free variant for the router's per-packet fast path.
func VerifyHopWith(m *scrypto.CMAC, info *InfoField, hop *HopField) bool {
	if !info.ConsDir {
		info.SegID = scrypto.UpdateBeta(info.SegID, hop.MAC)
	}
	ok := scrypto.VerifyHopMACWith(m, scrypto.HopMACInput{
		Beta:        info.SegID,
		Timestamp:   info.Timestamp,
		ExpTime:     hop.ExpTime,
		ConsIngress: hop.ConsIngress,
		ConsEgress:  hop.ConsEgress,
	}, hop.MAC)
	if !ok {
		return false
	}
	if info.ConsDir {
		info.SegID = scrypto.UpdateBeta(info.SegID, hop.MAC)
	}
	return true
}

// VerifyPeerHop checks a peer-crossing hop field: unlike normal hops it
// is verified against the accumulator as-is, without folding or
// advancing — the peer MAC was computed over the accumulator *after*
// the AS's own segment entry, which is exactly the value in the info
// field when the crossing is reached (see the combinator's peer path
// construction).
func VerifyPeerHop(key scrypto.HopKey, info *InfoField, hop *HopField) bool {
	m, err := scrypto.NewHopCMAC(key)
	if err != nil {
		return false
	}
	return VerifyPeerHopWith(m, info, hop)
}

// VerifyPeerHopWith is VerifyPeerHop with a prepared CMAC instance.
func VerifyPeerHopWith(m *scrypto.CMAC, info *InfoField, hop *HopField) bool {
	return scrypto.VerifyHopMACWith(m, scrypto.HopMACInput{
		Beta:        info.SegID,
		Timestamp:   info.Timestamp,
		ExpTime:     hop.ExpTime,
		ConsIngress: hop.ConsIngress,
		ConsEgress:  hop.ConsEgress,
	}, hop.MAC)
}

// DataIngress returns the interface the packet enters the AS on for the
// current travel direction, and DataEgress the interface it leaves on.
// In construction direction these match the hop field; against it they
// swap.
func DataIngress(info *InfoField, hop *HopField) uint16 {
	if info.ConsDir {
		return hop.ConsIngress
	}
	return hop.ConsEgress
}

// DataEgress returns the interface the packet leaves the AS on.
func DataEgress(info *InfoField, hop *HopField) uint16 {
	if info.ConsDir {
		return hop.ConsEgress
	}
	return hop.ConsIngress
}
