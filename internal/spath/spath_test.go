package spath

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sciera/internal/scrypto"
)

func samplePath(t *testing.T) *Path {
	t.Helper()
	p := &Path{
		SegLens: [3]uint8{2, 3, 0},
		Infos: []InfoField{
			{ConsDir: false, SegID: 0xbeef, Timestamp: 100},
			{ConsDir: true, SegID: 0xcafe, Timestamp: 200},
		},
		Hops: []HopField{
			{ExpTime: 63, ConsIngress: 0, ConsEgress: 1, MAC: [6]byte{1, 2, 3, 4, 5, 6}},
			{ExpTime: 63, ConsIngress: 2, ConsEgress: 0, MAC: [6]byte{7, 8, 9, 10, 11, 12}},
			{ExpTime: 63, ConsIngress: 0, ConsEgress: 3, MAC: [6]byte{13, 14, 15, 16, 17, 18}},
			{ExpTime: 63, ConsIngress: 4, ConsEgress: 5, MAC: [6]byte{19, 20, 21, 22, 23, 24}},
			{ExpTime: 63, ConsIngress: 6, ConsEgress: 0, MAC: [6]byte{25, 26, 27, 28, 29, 30}},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("sample path invalid: %v", err)
	}
	return p
}

func TestPathSerializeDecodeRoundTrip(t *testing.T) {
	p := samplePath(t)
	buf := make([]byte, p.Len())
	if err := p.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	var q Path
	if err := q.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if q.String() != p.String() {
		t.Errorf("meta mismatch: %v vs %v", q.String(), p.String())
	}
	if len(q.Infos) != 2 || q.Infos[0].SegID != 0xbeef || !q.Infos[1].ConsDir {
		t.Errorf("infos = %+v", q.Infos)
	}
	if len(q.Hops) != 5 || q.Hops[4].ConsIngress != 6 {
		t.Errorf("hops = %+v", q.Hops)
	}
	if q.Hops[2].MAC != p.Hops[2].MAC {
		t.Errorf("MAC mismatch")
	}
}

func TestEmptyPath(t *testing.T) {
	var p Path
	if !p.IsEmpty() || p.Len() != 0 {
		t.Fatal("zero path should be empty")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := p.SerializeTo(nil); err != nil {
		t.Fatal(err)
	}
	var q Path
	if err := q.DecodeFromBytes(nil); err != nil {
		t.Fatal(err)
	}
	if !q.IsEmpty() {
		t.Fatal("decoded empty path not empty")
	}
	if err := q.Reverse(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]*Path{
		"gap in seglens": {
			SegLens: [3]uint8{2, 0, 1},
			Infos:   []InfoField{{}, {}},
			Hops:    make([]HopField, 3),
		},
		"hop count mismatch": {
			SegLens: [3]uint8{2, 0, 0},
			Infos:   []InfoField{{}},
			Hops:    make([]HopField, 3),
		},
		"info count mismatch": {
			SegLens: [3]uint8{2, 1, 0},
			Infos:   []InfoField{{}},
			Hops:    make([]HopField, 3),
		},
		"currHF out of range": {
			CurrHF:  5,
			SegLens: [3]uint8{2, 0, 0},
			Infos:   []InfoField{{}},
			Hops:    make([]HopField, 2),
		},
		"currINF inconsistent": {
			CurrINF: 1, CurrHF: 0,
			SegLens: [3]uint8{2, 1, 0},
			Infos:   []InfoField{{}, {}},
			Hops:    make([]HopField, 3),
		},
		"infos without hops": {
			Infos: []InfoField{{}},
		},
	}
	for name, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted malformed path", name)
		}
	}
}

func TestDecodeRejectsBadBuffers(t *testing.T) {
	var p Path
	if err := p.DecodeFromBytes([]byte{1, 2}); err == nil {
		t.Error("short buffer accepted")
	}
	// Valid meta claiming 1 segment, 1 hop but truncated body.
	good := samplePath(t)
	buf := make([]byte, good.Len())
	if err := good.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	if err := p.DecodeFromBytes(buf[:len(buf)-1]); err == nil {
		t.Error("truncated buffer accepted")
	}
	if err := p.DecodeFromBytes(append(buf, 0)); err == nil {
		t.Error("oversized buffer accepted")
	}
}

func TestIncHopCrossesSegments(t *testing.T) {
	p := samplePath(t)
	wantINF := []uint8{0, 0, 1, 1, 1}
	for i := 0; i < len(p.Hops); i++ {
		if p.CurrHF != uint8(i) || p.CurrINF != wantINF[i] {
			t.Fatalf("at step %d: HF=%d INF=%d, want INF=%d", i, p.CurrHF, p.CurrINF, wantINF[i])
		}
		if i < len(p.Hops)-1 {
			if err := p.IncHop(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !p.IsLastHop() {
		t.Error("expected last hop")
	}
	if err := p.IncHop(); err != ErrPathExhausted {
		t.Errorf("IncHop past end = %v, want ErrPathExhausted", err)
	}
}

func TestReverseInvolution(t *testing.T) {
	p := samplePath(t)
	orig := p.Copy()
	if err := p.Reverse(); err != nil {
		t.Fatal(err)
	}
	// Reversed: segments swap, hops reverse, ConsDir flips.
	if p.SegLens != [3]uint8{3, 2, 0} {
		t.Errorf("SegLens after reverse = %v", p.SegLens)
	}
	if p.Infos[0].SegID != 0xcafe || p.Infos[0].ConsDir {
		t.Errorf("info 0 after reverse = %+v", p.Infos[0])
	}
	if p.Hops[0] != orig.Hops[4] || p.Hops[4] != orig.Hops[0] {
		t.Error("hops not globally reversed")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("reversed path invalid: %v", err)
	}
	if err := p.Reverse(); err != nil {
		t.Fatal(err)
	}
	// Double reverse restores everything except Curr pointers (reset to 0).
	if p.SegLens != orig.SegLens {
		t.Errorf("SegLens after double reverse = %v", p.SegLens)
	}
	for i := range p.Hops {
		if p.Hops[i] != orig.Hops[i] {
			t.Errorf("hop %d differs after double reverse", i)
		}
	}
	for i := range p.Infos {
		if p.Infos[i] != orig.Infos[i] {
			t.Errorf("info %d differs after double reverse", i)
		}
	}
}

// Property: random well-formed paths survive serialize/decode and
// reverse/reverse round trips.
func TestPathRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gen := func() *Path {
		segs := 1 + rng.Intn(3)
		p := &Path{}
		total := 0
		for i := 0; i < segs; i++ {
			l := 1 + rng.Intn(5)
			p.SegLens[i] = uint8(l)
			inf := InfoField{
				ConsDir:   rng.Intn(2) == 0,
				SegID:     uint16(rng.Intn(1 << 16)),
				Timestamp: rng.Uint32(),
			}
			p.Infos = append(p.Infos, inf)
			for j := 0; j < l; j++ {
				var mac [6]byte
				rng.Read(mac[:])
				p.Hops = append(p.Hops, HopField{
					ExpTime:     uint8(rng.Intn(256)),
					ConsIngress: uint16(rng.Intn(1 << 16)),
					ConsEgress:  uint16(rng.Intn(1 << 16)),
					MAC:         mac,
				})
			}
			total += l
		}
		return p
	}
	for i := 0; i < 300; i++ {
		p := gen()
		if err := p.Validate(); err != nil {
			t.Fatalf("generated path invalid: %v", err)
		}
		buf := make([]byte, p.Len())
		if err := p.SerializeTo(buf); err != nil {
			t.Fatal(err)
		}
		var q Path
		if err := q.DecodeFromBytes(buf); err != nil {
			t.Fatal(err)
		}
		buf2 := make([]byte, q.Len())
		if err := q.SerializeTo(buf2); err != nil {
			t.Fatal(err)
		}
		if string(buf) != string(buf2) {
			t.Fatal("serialize/decode/serialize not stable")
		}
		r := q.Copy()
		if err := r.Reverse(); err != nil {
			t.Fatal(err)
		}
		if err := r.Reverse(); err != nil {
			t.Fatal(err)
		}
		for j := range q.Hops {
			if r.Hops[j] != q.Hops[j] {
				t.Fatal("reverse not an involution on hops")
			}
		}
	}
}

func TestFingerprint(t *testing.T) {
	p := samplePath(t)
	q := p.Copy()
	if p.Fingerprint() != q.Fingerprint() {
		t.Error("equal paths must share a fingerprint")
	}
	q.Hops[0].ConsEgress = 99
	if p.Fingerprint() == q.Fingerprint() {
		t.Error("different interface sequences must differ")
	}
	var empty Path
	if empty.Fingerprint() != "empty" {
		t.Errorf("empty fingerprint = %q", empty.Fingerprint())
	}
	// MAC changes must not affect the fingerprint.
	r := p.Copy()
	r.Hops[0].MAC[0] ^= 0xff
	if p.Fingerprint() != r.Fingerprint() {
		t.Error("fingerprint must not depend on MACs")
	}
}

func TestBuildSegmentAndVerifyConsDir(t *testing.T) {
	keys := []scrypto.HopKey{
		scrypto.DeriveHopKey([]byte("as-a"), 0),
		scrypto.DeriveHopKey([]byte("as-b"), 0),
		scrypto.DeriveHopKey([]byte("as-c"), 0),
	}
	specs := []HopSpec{
		{Key: keys[0], ConsIngress: 0, ConsEgress: 1, ExpTime: 63},
		{Key: keys[1], ConsIngress: 2, ConsEgress: 3, ExpTime: 63},
		{Key: keys[2], ConsIngress: 4, ConsEgress: 0, ExpTime: 63},
	}
	const ts = 12345
	hops, betas, err := BuildSegment(ts, 0x1111, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(betas) != 4 {
		t.Fatalf("betas = %v", betas)
	}

	// Traverse in construction direction: info starts at beta_0.
	info := InfoField{ConsDir: true, SegID: betas[0], Timestamp: ts}
	for i := range hops {
		if !VerifyHop(keys[i], &info, &hops[i]) {
			t.Fatalf("hop %d failed verification in ConsDir", i)
		}
	}

	// Against construction direction: info starts at beta_n, hops are
	// visited in reverse order.
	info = InfoField{ConsDir: false, SegID: betas[len(hops)], Timestamp: ts}
	for i := len(hops) - 1; i >= 0; i-- {
		if !VerifyHop(keys[i], &info, &hops[i]) {
			t.Fatalf("hop %d failed verification against ConsDir", i)
		}
	}
}

func TestVerifyHopRejectsTampering(t *testing.T) {
	key := scrypto.DeriveHopKey([]byte("as"), 0)
	hops, betas, err := BuildSegment(7, 42, []HopSpec{
		{Key: key, ConsIngress: 1, ConsEgress: 2, ExpTime: 63},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Tampered egress interface.
	h := hops[0]
	h.ConsEgress = 9
	info := InfoField{ConsDir: true, SegID: betas[0], Timestamp: 7}
	if VerifyHop(key, &info, &h) {
		t.Error("tampered egress accepted")
	}

	// Tampered MAC in reverse direction (exercises the fold-then-verify
	// algebra).
	h = hops[0]
	h.MAC[5] ^= 1
	info = InfoField{ConsDir: false, SegID: betas[1], Timestamp: 7}
	if VerifyHop(key, &info, &h) {
		t.Error("tampered MAC accepted in reverse direction")
	}

	// Wrong accumulator (segment splicing).
	h = hops[0]
	info = InfoField{ConsDir: true, SegID: betas[0] ^ 1, Timestamp: 7}
	if VerifyHop(key, &info, &h) {
		t.Error("spliced accumulator accepted")
	}
}

func TestDataDirectionHelpers(t *testing.T) {
	hop := &HopField{ConsIngress: 10, ConsEgress: 20}
	fwd := &InfoField{ConsDir: true}
	rev := &InfoField{ConsDir: false}
	if DataIngress(fwd, hop) != 10 || DataEgress(fwd, hop) != 20 {
		t.Error("ConsDir direction helpers wrong")
	}
	if DataIngress(rev, hop) != 20 || DataEgress(rev, hop) != 10 {
		t.Error("reverse direction helpers wrong")
	}
}

func TestQuickPathMetaEncoding(t *testing.T) {
	// Property: meta field encoding round-trips for all legal values.
	f := func(inf, hf, s0, s1, s2 uint8) bool {
		s0 = s0%10 + 1
		s1 = s1 % 10
		if s1 == 0 {
			s2 = 0
		} else {
			s2 = s2 % 10
		}
		segs := 1
		total := int(s0)
		if s1 > 0 {
			segs++
			total += int(s1)
		}
		if s2 > 0 {
			segs++
			total += int(s2)
		}
		p := &Path{SegLens: [3]uint8{s0, s1, s2}}
		p.Infos = make([]InfoField, segs)
		p.Hops = make([]HopField, total)
		p.CurrHF = hf % uint8(total)
		p.CurrINF = uint8(p.infIndexForHop(int(p.CurrHF)))
		if err := p.Validate(); err != nil {
			return false
		}
		buf := make([]byte, p.Len())
		if p.SerializeTo(buf) != nil {
			return false
		}
		var q Path
		if q.DecodeFromBytes(buf) != nil {
			return false
		}
		return q.CurrHF == p.CurrHF && q.CurrINF == p.CurrINF && q.SegLens == p.SegLens
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPathSerialize(b *testing.B) {
	p := &Path{
		SegLens: [3]uint8{3, 3, 3},
		Infos:   make([]InfoField, 3),
		Hops:    make([]HopField, 9),
	}
	buf := make([]byte, p.Len())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.SerializeTo(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPathDecode(b *testing.B) {
	p := &Path{
		SegLens: [3]uint8{3, 3, 3},
		Infos:   make([]InfoField, 3),
		Hops:    make([]HopField, 9),
	}
	buf := make([]byte, p.Len())
	if err := p.SerializeTo(buf); err != nil {
		b.Fatal(err)
	}
	var q Path
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := q.DecodeFromBytes(buf); err != nil {
			b.Fatal(err)
		}
	}
}
