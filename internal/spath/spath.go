// Package spath implements the SCION data-plane path: the packed path
// header carried in every SCION packet, consisting of a 4-byte meta
// field, up to three 8-byte info fields (one per path segment), and a
// sequence of 12-byte hop fields.
//
// The layout follows the SCION path type specification:
//
//	PathMeta (4 B):  CurrINF:2 | CurrHF:6 | RSV:6 | Seg0Len:6 | Seg1Len:6 | Seg2Len:6
//	InfoField (8 B): Flags:8 | RSV:8 | SegID:16 | Timestamp:32
//	HopField (12 B): Flags:8 | ExpTime:8 | ConsIngress:16 | ConsEgress:16 | MAC:48
//
// Hop-field MACs are computed with AES-CMAC over the segment accumulator
// (SegID/beta), timestamp, expiry and interface pair; see package scrypto.
package spath

import (
	"encoding/binary"
	"errors"
	"fmt"

	"sciera/internal/scrypto"
)

// Sizes of the wire components.
const (
	MetaLen = 4
	InfoLen = 8
	HopLen  = 12
	// MaxHopsPerSegment is the largest per-segment hop count encodable
	// in the 6-bit segment length fields.
	MaxHopsPerSegment = 63
)

// Info-field flag bits.
const (
	infoFlagConsDir = 0x01 // segment traversed in construction direction
	infoFlagPeer    = 0x02 // segment crosses a peering link
)

// InfoField describes one path segment in the path header.
type InfoField struct {
	ConsDir   bool   // packet travels in the direction the segment was constructed
	Peer      bool   // segment joined via a peering link
	SegID     uint16 // MAC-chaining accumulator (beta)
	Timestamp uint32 // segment creation time (Unix seconds)
}

func (f InfoField) serialize(b []byte) {
	var flags byte
	if f.ConsDir {
		flags |= infoFlagConsDir
	}
	if f.Peer {
		flags |= infoFlagPeer
	}
	b[0] = flags
	b[1] = 0
	binary.BigEndian.PutUint16(b[2:4], f.SegID)
	binary.BigEndian.PutUint32(b[4:8], f.Timestamp)
}

func (f *InfoField) decode(b []byte) {
	f.ConsDir = b[0]&infoFlagConsDir != 0
	f.Peer = b[0]&infoFlagPeer != 0
	f.SegID = binary.BigEndian.Uint16(b[2:4])
	f.Timestamp = binary.BigEndian.Uint32(b[4:8])
}

// HopField authorizes the transit of one AS on a segment.
type HopField struct {
	RouterAlert bool  // deliver to the router's control plane (traceroute)
	ExpTime     uint8 // relative expiry; 0 is the minimum lifetime
	ConsIngress uint16
	ConsEgress  uint16
	MAC         [scrypto.HopMACLen]byte
}

func (h HopField) serialize(b []byte) {
	var flags byte
	if h.RouterAlert {
		flags |= 0x01
	}
	b[0] = flags
	b[1] = h.ExpTime
	binary.BigEndian.PutUint16(b[2:4], h.ConsIngress)
	binary.BigEndian.PutUint16(b[4:6], h.ConsEgress)
	copy(b[6:12], h.MAC[:])
}

func (h *HopField) decode(b []byte) {
	h.RouterAlert = b[0]&0x01 != 0
	h.ExpTime = b[1]
	h.ConsIngress = binary.BigEndian.Uint16(b[2:4])
	h.ConsEgress = binary.BigEndian.Uint16(b[4:6])
	copy(h.MAC[:], b[6:12])
}

// Path is a decoded SCION data-plane path. The zero value is the empty
// path (AS-internal communication).
type Path struct {
	// CurrINF and CurrHF are the indices of the info/hop field the packet
	// is currently being forwarded on.
	CurrINF uint8
	CurrHF  uint8
	// SegLens holds the number of hop fields in each of up to three
	// segments; unused entries are zero.
	SegLens [3]uint8
	Infos   []InfoField
	Hops    []HopField
}

// Errors returned by path operations.
var (
	ErrPathTooShort  = errors.New("spath: buffer too short for path")
	ErrMalformedPath = errors.New("spath: malformed path")
	ErrPathExhausted = errors.New("spath: current hop beyond last hop field")
	ErrTooManyHops   = errors.New("spath: segment exceeds 63 hop fields")
	ErrNoSegments    = errors.New("spath: path has no segments")
)

// IsEmpty reports whether this is the empty (AS-local) path.
func (p *Path) IsEmpty() bool { return len(p.Hops) == 0 }

// NumSegments returns the number of non-empty segments.
func (p *Path) NumSegments() int {
	n := 0
	for _, l := range p.SegLens {
		if l > 0 {
			n++
		}
	}
	return n
}

// Len returns the serialized length in bytes.
func (p *Path) Len() int {
	if p.IsEmpty() {
		return 0
	}
	return MetaLen + len(p.Infos)*InfoLen + len(p.Hops)*HopLen
}

// Validate checks structural consistency between SegLens, Infos and Hops.
func (p *Path) Validate() error {
	if p.IsEmpty() {
		if len(p.Infos) != 0 {
			return fmt.Errorf("%w: info fields without hop fields", ErrMalformedPath)
		}
		return nil
	}
	segs, hops := 0, 0
	seen0 := false
	for _, l := range p.SegLens {
		if l == 0 {
			seen0 = true
			continue
		}
		if seen0 {
			return fmt.Errorf("%w: non-contiguous segment lengths", ErrMalformedPath)
		}
		if l > MaxHopsPerSegment {
			return ErrTooManyHops
		}
		segs++
		hops += int(l)
	}
	if segs == 0 {
		return ErrNoSegments
	}
	if segs != len(p.Infos) {
		return fmt.Errorf("%w: %d segments but %d info fields", ErrMalformedPath, segs, len(p.Infos))
	}
	if hops != len(p.Hops) {
		return fmt.Errorf("%w: segment lengths sum to %d but %d hop fields", ErrMalformedPath, hops, len(p.Hops))
	}
	if int(p.CurrINF) >= segs {
		return fmt.Errorf("%w: CurrINF %d out of range", ErrMalformedPath, p.CurrINF)
	}
	if int(p.CurrHF) >= hops {
		return fmt.Errorf("%w: CurrHF %d out of range", ErrMalformedPath, p.CurrHF)
	}
	if inf := p.infIndexForHop(int(p.CurrHF)); inf != int(p.CurrINF) {
		return fmt.Errorf("%w: CurrHF %d lies in segment %d, not CurrINF %d",
			ErrMalformedPath, p.CurrHF, inf, p.CurrINF)
	}
	return nil
}

// infIndexForHop returns the segment index containing hop index h.
func (p *Path) infIndexForHop(h int) int {
	acc := 0
	for i, l := range p.SegLens {
		acc += int(l)
		if h < acc {
			return i
		}
	}
	return len(p.Infos) // out of range
}

// SerializeTo writes the path into b, which must be at least Len() bytes.
func (p *Path) SerializeTo(b []byte) error {
	if p.IsEmpty() {
		return nil
	}
	if len(b) < p.Len() {
		return ErrPathTooShort
	}
	binary.BigEndian.PutUint32(b[0:4], p.metaWord())
	off := MetaLen
	for _, inf := range p.Infos {
		inf.serialize(b[off : off+InfoLen])
		off += InfoLen
	}
	for _, h := range p.Hops {
		h.serialize(b[off : off+HopLen])
		off += HopLen
	}
	return nil
}

// PatchTo re-encodes only the mutable-in-flight parts of the path —
// the meta word (CurrINF/CurrHF) and the info fields (whose SegID
// accumulators routers advance hop by hop) — into b, which must hold a
// previously serialized copy of this same path. The hop fields, which
// forwarding never mutates, are left untouched. This is the router's
// in-place alternative to a full SerializeTo when advancing a packet.
func (p *Path) PatchTo(b []byte) error {
	if p.IsEmpty() {
		return nil
	}
	if len(b) < p.Len() {
		return ErrPathTooShort
	}
	binary.BigEndian.PutUint32(b[0:4], p.metaWord())
	off := MetaLen
	for _, inf := range p.Infos {
		inf.serialize(b[off : off+InfoLen])
		off += InfoLen
	}
	return nil
}

func (p *Path) metaWord() uint32 {
	return uint32(p.CurrINF&0x3)<<30 |
		uint32(p.CurrHF&0x3f)<<24 |
		uint32(p.SegLens[0]&0x3f)<<12 |
		uint32(p.SegLens[1]&0x3f)<<6 |
		uint32(p.SegLens[2]&0x3f)
}

// DecodeFromBytes parses a path of exactly len(b) bytes. An empty buffer
// decodes to the empty path. Previously allocated slices are reused.
func (p *Path) DecodeFromBytes(b []byte) error {
	if len(b) == 0 {
		*p = Path{Infos: p.Infos[:0], Hops: p.Hops[:0]}
		return nil
	}
	if len(b) < MetaLen {
		return ErrPathTooShort
	}
	meta := binary.BigEndian.Uint32(b[0:4])
	p.CurrINF = uint8(meta >> 30 & 0x3)
	p.CurrHF = uint8(meta >> 24 & 0x3f)
	p.SegLens[0] = uint8(meta >> 12 & 0x3f)
	p.SegLens[1] = uint8(meta >> 6 & 0x3f)
	p.SegLens[2] = uint8(meta & 0x3f)

	segs, hops := 0, 0
	for _, l := range p.SegLens {
		if l > 0 {
			segs++
			hops += int(l)
		}
	}
	want := MetaLen + segs*InfoLen + hops*HopLen
	if len(b) != want {
		return fmt.Errorf("%w: have %d bytes, meta implies %d", ErrMalformedPath, len(b), want)
	}
	p.Infos = p.Infos[:0]
	p.Hops = p.Hops[:0]
	off := MetaLen
	for i := 0; i < segs; i++ {
		var inf InfoField
		inf.decode(b[off : off+InfoLen])
		p.Infos = append(p.Infos, inf)
		off += InfoLen
	}
	for i := 0; i < hops; i++ {
		var h HopField
		h.decode(b[off : off+HopLen])
		p.Hops = append(p.Hops, h)
		off += HopLen
	}
	return p.Validate()
}

// CurrentInfo returns a pointer to the active info field.
func (p *Path) CurrentInfo() (*InfoField, error) {
	if int(p.CurrINF) >= len(p.Infos) {
		return nil, ErrPathExhausted
	}
	return &p.Infos[p.CurrINF], nil
}

// CurrentHop returns a pointer to the active hop field.
func (p *Path) CurrentHop() (*HopField, error) {
	if int(p.CurrHF) >= len(p.Hops) {
		return nil, ErrPathExhausted
	}
	return &p.Hops[p.CurrHF], nil
}

// IsLastHop reports whether the current hop is the final one.
func (p *Path) IsLastHop() bool { return int(p.CurrHF) == len(p.Hops)-1 }

// IsLastHopOfSegment reports whether the current hop is the final hop
// of its segment — the crossover point where a border router switches
// to the next segment (normal joints, shortcuts and peering all cross
// here).
func (p *Path) IsLastHopOfSegment() bool {
	end := 0
	for i := 0; i <= int(p.CurrINF) && i < len(p.SegLens); i++ {
		end += int(p.SegLens[i])
	}
	return int(p.CurrHF) == end-1
}

// IsFirstHopOfSegment reports whether the current hop is the first hop
// of its segment.
func (p *Path) IsFirstHopOfSegment() bool {
	start := 0
	for i := 0; i < int(p.CurrINF) && i < len(p.SegLens); i++ {
		start += int(p.SegLens[i])
	}
	return int(p.CurrHF) == start
}

// IncHop advances to the next hop field, moving CurrINF forward when a
// segment boundary is crossed. It fails when already at the last hop.
func (p *Path) IncHop() error {
	if int(p.CurrHF)+1 >= len(p.Hops) {
		return ErrPathExhausted
	}
	p.CurrHF++
	if inf := p.infIndexForHop(int(p.CurrHF)); inf != int(p.CurrINF) {
		p.CurrINF = uint8(inf)
	}
	return nil
}

// Reverse turns the path around for the return direction: hop fields are
// reversed globally, segments swap order, ConsDir flips, and the current
// pointers reset to the first hop. Reverse is an involution up to the
// current pointers.
func (p *Path) Reverse() error {
	if p.IsEmpty() {
		return nil
	}
	if err := p.Validate(); err != nil {
		return err
	}
	// Reverse segment order.
	segs := p.NumSegments()
	newInfos := make([]InfoField, 0, segs)
	newHops := make([]HopField, 0, len(p.Hops))
	var newLens [3]uint8
	off := len(p.Hops)
	for i := segs - 1; i >= 0; i-- {
		l := int(p.SegLens[i])
		start := off - l
		// Hops within a segment reverse too, because the whole hop
		// sequence reverses.
		for j := start + l - 1; j >= start; j-- {
			newHops = append(newHops, p.Hops[j])
		}
		inf := p.Infos[i]
		inf.ConsDir = !inf.ConsDir
		newInfos = append(newInfos, inf)
		newLens[segs-1-i] = uint8(l)
		off = start
	}
	// Fix hop order: we iterated segments from last to first and hops
	// within each from last to first — which is exactly the global
	// reversal; nothing more to do.
	p.Infos = newInfos
	p.Hops = newHops
	p.SegLens = newLens
	p.CurrINF = 0
	p.CurrHF = 0
	return nil
}

// Copy returns a deep copy.
func (p *Path) Copy() *Path {
	q := *p
	q.Infos = append([]InfoField(nil), p.Infos...)
	q.Hops = append([]HopField(nil), p.Hops...)
	return &q
}

// Fingerprint returns a stable identifier over the path's interface
// sequence, used for path statistics and "lowest path identifier"
// tie-breaking in the multiping tool.
func (p *Path) Fingerprint() string {
	if p.IsEmpty() {
		return "empty"
	}
	b := make([]byte, 0, len(p.Hops)*4)
	var tmp [4]byte
	for _, h := range p.Hops {
		binary.BigEndian.PutUint16(tmp[0:2], h.ConsIngress)
		binary.BigEndian.PutUint16(tmp[2:4], h.ConsEgress)
		b = append(b, tmp[:]...)
	}
	return fmt.Sprintf("%x", b)
}

func (p *Path) String() string {
	if p.IsEmpty() {
		return "Path{empty}"
	}
	return fmt.Sprintf("Path{inf=%d/%d hf=%d/%d segs=%v}",
		p.CurrINF, len(p.Infos), p.CurrHF, len(p.Hops), p.SegLens)
}
