package spath

import (
	"testing"

	"sciera/internal/scrypto"
)

func testKey(seed string) scrypto.HopKey {
	return scrypto.DeriveHopKey([]byte(seed), 0)
}

// TestSegmentBoundaryHelpers walks the 2+3 sample path and checks the
// first/last-of-segment predicates at every position.
func TestSegmentBoundaryHelpers(t *testing.T) {
	p := samplePath(t)
	wantFirst := []bool{true, false, true, false, false}
	wantLast := []bool{false, true, false, false, true}
	for i := 0; ; i++ {
		if got := p.IsFirstHopOfSegment(); got != wantFirst[i] {
			t.Errorf("hop %d: IsFirstHopOfSegment = %v", i, got)
		}
		if got := p.IsLastHopOfSegment(); got != wantLast[i] {
			t.Errorf("hop %d: IsLastHopOfSegment = %v", i, got)
		}
		if p.IsLastHop() {
			break
		}
		if err := p.IncHop(); err != nil {
			t.Fatal(err)
		}
	}
	// A single-segment single-hop path is both first and last.
	q := &Path{
		SegLens: [3]uint8{1, 0, 0},
		Infos:   []InfoField{{ConsDir: true, SegID: 1}},
		Hops:    []HopField{{ExpTime: 63}},
	}
	if !q.IsFirstHopOfSegment() || !q.IsLastHopOfSegment() {
		t.Error("single-hop segment not recognized as both boundary kinds")
	}
}

// TestVerifyPeerHopAlgebra pins the peer verification rule: the MAC is
// checked against the accumulator as-is, and — unlike VerifyHop — the
// accumulator is left untouched in both traversal directions.
func TestVerifyPeerHopAlgebra(t *testing.T) {
	key := testKey("peer-as")
	const beta, ts = uint16(0x5a5a), uint32(7777)
	mac, err := scrypto.ComputeHopMAC(key, scrypto.HopMACInput{
		Beta: beta, Timestamp: ts, ExpTime: 63, ConsIngress: 9, ConsEgress: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	hop := &HopField{ExpTime: 63, ConsIngress: 9, ConsEgress: 2, MAC: mac}

	for _, consDir := range []bool{false, true} {
		info := &InfoField{ConsDir: consDir, Peer: true, SegID: beta, Timestamp: ts}
		if !VerifyPeerHop(key, info, hop) {
			t.Errorf("consDir=%v: genuine peer hop rejected", consDir)
		}
		if info.SegID != beta {
			t.Errorf("consDir=%v: VerifyPeerHop mutated the accumulator", consDir)
		}
	}

	// Wrong accumulator, wrong key, tampered MAC all fail.
	bad := &InfoField{Peer: true, SegID: beta ^ 1, Timestamp: ts}
	if VerifyPeerHop(key, bad, hop) {
		t.Error("wrong accumulator accepted")
	}
	good := &InfoField{Peer: true, SegID: beta, Timestamp: ts}
	if VerifyPeerHop(testKey("other-as"), good, hop) {
		t.Error("wrong key accepted")
	}
	tampered := *hop
	tampered.MAC[5] ^= 0x80
	if VerifyPeerHop(key, good, &tampered) {
		t.Error("tampered MAC accepted")
	}
	// VerifyHop with the same inputs must NOT accept a peer hop in
	// non-ConsDir (it would fold the MAC first).
	foldInfo := &InfoField{ConsDir: false, Peer: true, SegID: beta, Timestamp: ts}
	if VerifyHop(key, foldInfo, hop) {
		t.Error("fold/advance algebra accepted a peer hop")
	}
}

// TestReverseFromCurrentMidPath reverses in flight from every position
// of the sample path and checks the shape: the current hop becomes hop
// 0, only traversed segments remain, accumulators are untouched.
func TestReverseFromCurrentMidPath(t *testing.T) {
	for pos := 0; pos < 5; pos++ {
		p := samplePath(t)
		for i := 0; i < pos; i++ {
			if err := p.IncHop(); err != nil {
				t.Fatal(err)
			}
		}
		segIDs := []uint16{p.Infos[0].SegID, p.Infos[1].SegID}
		rev, err := ReverseFromCurrent(p)
		if err != nil {
			t.Fatalf("pos %d: %v", pos, err)
		}
		if len(rev.Hops) != pos+1 {
			t.Fatalf("pos %d: reversed hops = %d, want %d", pos, len(rev.Hops), pos+1)
		}
		if rev.Hops[0] != p.Hops[pos] {
			t.Errorf("pos %d: first return hop is not the current hop", pos)
		}
		if rev.CurrHF != 0 || rev.CurrINF != 0 {
			t.Errorf("pos %d: pointers = INF%d HF%d", pos, rev.CurrINF, rev.CurrHF)
		}
		if err := rev.Validate(); err != nil {
			t.Errorf("pos %d: invalid reversal: %v", pos, err)
		}
		// Accumulators preserved (segment order may swap).
		for _, inf := range rev.Infos {
			if inf.SegID != segIDs[0] && inf.SegID != segIDs[1] {
				t.Errorf("pos %d: accumulator changed: %#x", pos, inf.SegID)
			}
		}
		// ConsDir flipped relative to the source segment.
		srcINF := 0
		if pos >= 2 {
			srcINF = 1
		}
		if rev.Infos[0].ConsDir == p.Infos[srcINF].ConsDir {
			t.Errorf("pos %d: ConsDir not flipped", pos)
		}
	}
}

// TestReverseFromCurrentPreservesPeerFlag: peer segments stay
// peer-flagged on the return path.
func TestReverseFromCurrentPeerFlag(t *testing.T) {
	p := samplePath(t)
	p.Infos[0].Peer = true
	p.Infos[1].Peer = true
	if err := p.IncHop(); err != nil { // into hop 1, still segment 0
		t.Fatal(err)
	}
	rev, err := ReverseFromCurrent(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, inf := range rev.Infos {
		if !inf.Peer {
			t.Errorf("info %d lost the Peer flag", i)
		}
	}
}

// TestReverseFromCurrentEmpty covers the empty-path short-circuit.
func TestReverseFromCurrentEmpty(t *testing.T) {
	rev, err := ReverseFromCurrent(&Path{})
	if err != nil {
		t.Fatal(err)
	}
	if !rev.IsEmpty() {
		t.Error("reversal of empty path not empty")
	}
}

// TestCurrentAccessorErrors covers out-of-range pointer handling.
func TestCurrentAccessorErrors(t *testing.T) {
	p := samplePath(t)
	if _, err := p.CurrentInfo(); err != nil {
		t.Errorf("CurrentInfo at start: %v", err)
	}
	if _, err := p.CurrentHop(); err != nil {
		t.Errorf("CurrentHop at start: %v", err)
	}
	p.CurrHF = 99
	if _, err := p.CurrentHop(); err == nil {
		t.Error("CurrentHop out of range succeeded")
	}
	p.CurrINF = 99
	if _, err := p.CurrentInfo(); err == nil {
		t.Error("CurrentInfo out of range succeeded")
	}
}
