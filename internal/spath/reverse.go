package spath

// ReverseFromCurrent builds the return path from a packet in flight:
// the path is truncated at the current hop (everything beyond it has not
// been traversed) and reversed, with the current hop becoming the first
// hop of the return path.
//
// Crucially, the info-field accumulators are kept exactly as they are in
// the packet: routers advanced them hop by hop on the way here, which
// leaves each traversed segment's accumulator at precisely the value the
// opposite-direction traversal needs (the XOR algebra is an involution).
// This is how SCMP error messages and request/response servers route
// back to the source without any path lookup. The caller must have
// processed (VerifyHop) the current hop before reversing.
func ReverseFromCurrent(p *Path) (*Path, error) {
	if p.IsEmpty() {
		return &Path{}, nil
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Truncate: keep segments 0..CurrINF and hops 0..CurrHF.
	t := &Path{}
	t.Infos = append(t.Infos, p.Infos[:p.CurrINF+1]...)
	t.Hops = append(t.Hops, p.Hops[:p.CurrHF+1]...)
	// Recompute segment lengths: full lengths for all but the last
	// segment, partial for the segment containing CurrHF.
	remaining := int(p.CurrHF) + 1
	for i := 0; i <= int(p.CurrINF); i++ {
		l := int(p.SegLens[i])
		if l > remaining {
			l = remaining
		}
		t.SegLens[i] = uint8(l)
		remaining -= l
	}
	t.CurrINF = p.CurrINF
	t.CurrHF = p.CurrHF
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if err := t.Reverse(); err != nil {
		return nil, err
	}
	return t, nil
}
