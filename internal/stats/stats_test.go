package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestPercentileBasics(t *testing.T) {
	var c CDF
	c.Add(1, 2, 3, 4, 5)
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {110, 5},
	}
	for _, cse := range cases {
		if got := c.Percentile(cse.p); got != cse.want {
			t.Errorf("Percentile(%v) = %v, want %v", cse.p, got, cse.want)
		}
	}
	if c.Median() != 3 {
		t.Errorf("Median = %v", c.Median())
	}
	if c.Mean() != 3 {
		t.Errorf("Mean = %v", c.Mean())
	}
	if c.Min() != 1 || c.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", c.Min(), c.Max())
	}
}

func TestPercentileInterpolation(t *testing.T) {
	var c CDF
	c.Add(0, 10)
	if got := c.Percentile(50); got != 5 {
		t.Errorf("Percentile(50) = %v, want 5", got)
	}
	if got := c.Percentile(90); math.Abs(got-9) > 1e-9 {
		t.Errorf("Percentile(90) = %v, want 9", got)
	}
}

func TestEmptyCDF(t *testing.T) {
	var c CDF
	for name, v := range map[string]float64{
		"median": c.Median(), "mean": c.Mean(), "min": c.Min(),
		"max": c.Max(), "below": c.FractionBelow(1),
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s on empty CDF = %v, want NaN", name, v)
		}
	}
	if pts := c.Points(10); pts != nil {
		t.Errorf("Points on empty CDF = %v", pts)
	}
}

func TestFractions(t *testing.T) {
	var c CDF
	c.Add(1, 2, 2, 3)
	if got := c.FractionBelow(2); got != 0.25 {
		t.Errorf("FractionBelow(2) = %v", got)
	}
	if got := c.FractionAtOrBelow(2); got != 0.75 {
		t.Errorf("FractionAtOrBelow(2) = %v", got)
	}
	if got := c.FractionAtOrBelow(0); got != 0 {
		t.Errorf("FractionAtOrBelow(0) = %v", got)
	}
	if got := c.FractionAtOrBelow(99); got != 1 {
		t.Errorf("FractionAtOrBelow(99) = %v", got)
	}
}

// Property: percentiles are monotone in p, and Points is monotone in both
// coordinates (CDF monotonicity invariant from DESIGN.md).
func TestCDFMonotone(t *testing.T) {
	f := func(vals []float64) bool {
		var c CDF
		ok := 0
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				c.Add(v)
				ok++
			}
		}
		if ok == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := c.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		pts := c.Points(11)
		for i := 1; i < len(pts); i++ {
			if pts[i].X < pts[i-1].X || pts[i].Frac < pts[i-1].Frac {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: merging sharded CDFs is equivalent to pooling the raw
// samples into one CDF — every percentile and moment agrees. This is
// the contract that lets experiments aggregate per-vantage shards.
func TestMergeEqualsPooling(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		nShards := 1 + rng.Intn(5)
		var pooled, merged CDF
		for s := 0; s < nShards; s++ {
			var shard CDF
			for i, n := 0, rng.Intn(40); i < n; i++ {
				v := rng.NormFloat64() * 50
				shard.Add(v)
				pooled.Add(v)
			}
			// Sort some shards before merging to check that Merge
			// does not depend on the shard's internal sort state.
			if s%2 == 0 {
				shard.Percentile(50)
			}
			merged.Merge(&shard)
		}
		if merged.Len() != pooled.Len() {
			t.Fatalf("trial %d: merged %d samples, pooled %d", trial, merged.Len(), pooled.Len())
		}
		if merged.Len() == 0 {
			continue
		}
		for p := 0.0; p <= 100; p += 2.5 {
			if gm, gp := merged.Percentile(p), pooled.Percentile(p); gm != gp {
				t.Fatalf("trial %d: P%.1f merged %v, pooled %v", trial, p, gm, gp)
			}
		}
		if gm, gp := merged.Mean(), pooled.Mean(); math.Abs(gm-gp) > 1e-9 {
			t.Fatalf("trial %d: mean merged %v, pooled %v", trial, gm, gp)
		}
	}
}

func TestMergeEdgeCases(t *testing.T) {
	var c CDF
	c.Add(1, 2, 3)
	c.Merge(nil)
	c.Merge(&CDF{})
	if c.Len() != 3 || c.Median() != 2 {
		t.Errorf("after no-op merges: len=%d median=%v", c.Len(), c.Median())
	}
	// Merging into a sorted CDF must invalidate the sort.
	c.Percentile(50)
	var o CDF
	o.Add(0)
	c.Merge(&o)
	if c.Min() != 0 || c.Len() != 4 {
		t.Errorf("after merge: min=%v len=%d", c.Min(), c.Len())
	}
	// The source is left untouched.
	if o.Len() != 1 || o.Median() != 0 {
		t.Errorf("source mutated: len=%d median=%v", o.Len(), o.Median())
	}
}

func TestPercentileMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var c CDF
	vals := make([]float64, 1001)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 100
		c.Add(vals[i])
	}
	sort.Float64s(vals)
	if got := c.Percentile(0); got != vals[0] {
		t.Errorf("P0 = %v want %v", got, vals[0])
	}
	if got := c.Percentile(100); got != vals[len(vals)-1] {
		t.Errorf("P100 = %v want %v", got, vals[len(vals)-1])
	}
	// With 1001 samples, P50 is exactly the middle order statistic.
	if got := c.Percentile(50); got != vals[500] {
		t.Errorf("P50 = %v want %v", got, vals[500])
	}
}

func TestSummary(t *testing.T) {
	var c CDF
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	s := c.Summarize()
	if s.N != 100 || s.Min != 1 || s.Max != 100 {
		t.Errorf("summary = %+v", s)
	}
	if !strings.Contains(s.String(), "n=100") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{Header: []string{"AS", "RTT"}}
	tb.AddRow("71-559", "12.5")
	tb.AddRow("71-2:0:3b", "200.1")
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "AS") || !strings.Contains(lines[0], "RTT") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[3], "71-2:0:3b") {
		t.Errorf("row = %q", lines[3])
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(60)
	ts.Observe(0, 10)
	ts.Observe(30, 20)
	ts.Observe(61, 40)
	bs := ts.Buckets()
	if len(bs) != 2 {
		t.Fatalf("buckets = %v", bs)
	}
	if bs[0].Start != 0 || bs[0].Mean != 15 || bs[0].Count != 2 {
		t.Errorf("bucket 0 = %+v", bs[0])
	}
	if bs[1].Start != 60 || bs[1].Mean != 40 || bs[1].Count != 1 {
		t.Errorf("bucket 1 = %+v", bs[1])
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(3, 2); got != 1.5 {
		t.Errorf("Ratio = %v", got)
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Error("Ratio(_, 0) should be NaN")
	}
}
