// Package stats provides the statistical summaries used by the SCIERA
// evaluation: empirical CDFs, percentiles, time-bucketed series, and
// fixed-width table rendering for figures reproduced as text.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over float64 samples.
// The zero value is ready to use.
type CDF struct {
	samples []float64
	sorted  bool
}

// Add appends samples.
func (c *CDF) Add(v ...float64) {
	c.samples = append(c.samples, v...)
	c.sorted = false
}

// Len returns the number of samples.
func (c *CDF) Len() int { return len(c.samples) }

// Merge folds all of o's samples into c, leaving o unchanged. Merging
// is exactly equivalent to having Added o's samples to c directly, so
// per-shard CDFs (one per vantage, per path type, per telemetry dump)
// can be pooled before computing percentiles.
func (c *CDF) Merge(o *CDF) {
	if o == nil || len(o.samples) == 0 {
		return
	}
	c.samples = append(c.samples, o.samples...)
	c.sorted = false
}

func (c *CDF) sort() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between order statistics. It returns NaN when empty.
func (c *CDF) Percentile(p float64) float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	c.sort()
	if p <= 0 {
		return c.samples[0]
	}
	if p >= 100 {
		return c.samples[len(c.samples)-1]
	}
	rank := p / 100 * float64(len(c.samples)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return c.samples[lo]
	}
	frac := rank - float64(lo)
	return c.samples[lo]*(1-frac) + c.samples[hi]*frac
}

// Median is Percentile(50).
func (c *CDF) Median() float64 { return c.Percentile(50) }

// Mean returns the arithmetic mean, or NaN when empty.
func (c *CDF) Mean() float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range c.samples {
		s += v
	}
	return s / float64(len(c.samples))
}

// Min and Max return the extrema, or NaN when empty.
func (c *CDF) Min() float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	c.sort()
	return c.samples[0]
}

func (c *CDF) Max() float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	c.sort()
	return c.samples[len(c.samples)-1]
}

// FractionBelow returns the fraction of samples strictly below x.
func (c *CDF) FractionBelow(x float64) float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	c.sort()
	i := sort.SearchFloat64s(c.samples, x)
	return float64(i) / float64(len(c.samples))
}

// FractionAtOrBelow returns the fraction of samples <= x.
func (c *CDF) FractionAtOrBelow(x float64) float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	c.sort()
	i := sort.Search(len(c.samples), func(i int) bool { return c.samples[i] > x })
	return float64(i) / float64(len(c.samples))
}

// Point is one (x, cumulative fraction) pair of a rendered CDF.
type Point struct {
	X    float64
	Frac float64
}

// Points renders the CDF at n evenly spaced cumulative fractions,
// suitable for plotting or table output.
func (c *CDF) Points(n int) []Point {
	if len(c.samples) == 0 || n < 2 {
		return nil
	}
	c.sort()
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		f := float64(i) / float64(n-1)
		pts[i] = Point{X: c.Percentile(f * 100), Frac: f}
	}
	return pts
}

// Summary is a one-line numeric digest of a distribution.
type Summary struct {
	N             int
	Min, P10, P25 float64
	Median, Mean  float64
	P75, P90, P99 float64
	Max           float64
}

// Summarize computes a Summary.
func (c *CDF) Summarize() Summary {
	return Summary{
		N:      c.Len(),
		Min:    c.Min(),
		P10:    c.Percentile(10),
		P25:    c.Percentile(25),
		Median: c.Median(),
		Mean:   c.Mean(),
		P75:    c.Percentile(75),
		P90:    c.Percentile(90),
		P99:    c.Percentile(99),
		Max:    c.Max(),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.1f p10=%.1f p25=%.1f median=%.1f mean=%.1f p75=%.1f p90=%.1f p99=%.1f max=%.1f",
		s.N, s.Min, s.P10, s.P25, s.Median, s.Mean, s.P75, s.P90, s.P99, s.Max)
}

// Table renders rows of labelled values with aligned columns; the
// experiment harness uses it to print the paper's tables and heatmaps.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render returns the aligned textual table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// TimeSeries buckets (t, value) observations into fixed-width windows
// and reports per-bucket means — the aggregation multiping applies every
// 60 seconds and Figure 7 applies per day.
type TimeSeries struct {
	bucketWidth float64
	sums        map[int64]float64
	counts      map[int64]int
}

// NewTimeSeries creates a series with the given bucket width (in the same
// unit as the observation times).
func NewTimeSeries(bucketWidth float64) *TimeSeries {
	return &TimeSeries{
		bucketWidth: bucketWidth,
		sums:        make(map[int64]float64),
		counts:      make(map[int64]int),
	}
}

// Observe records value v at time t.
func (ts *TimeSeries) Observe(t, v float64) {
	b := int64(math.Floor(t / ts.bucketWidth))
	ts.sums[b] += v
	ts.counts[b]++
}

// Bucket is one aggregated window.
type Bucket struct {
	Start float64
	Mean  float64
	Count int
}

// Buckets returns the aggregated windows in time order.
func (ts *TimeSeries) Buckets() []Bucket {
	keys := make([]int64, 0, len(ts.sums))
	for k := range ts.sums {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]Bucket, len(keys))
	for i, k := range keys {
		out[i] = Bucket{
			Start: float64(k) * ts.bucketWidth,
			Mean:  ts.sums[k] / float64(ts.counts[k]),
			Count: ts.counts[k],
		}
	}
	return out
}

// Ratio returns a/b guarding against division by zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}
