package bootstrap

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/netip"
	"strconv"
	"strings"

	"sciera/internal/addr"
	"sciera/internal/cppki"
	"sciera/internal/simnet"
)

// TopologyFile is the configuration document the bootstrap server hands
// to clients: everything a host needs to use SCION in this AS. The AS
// signs it with its AS certificate.
type TopologyFile struct {
	IA          addr.IA        `json:"ia"`
	RouterAddr  netip.AddrPort `json:"router_addr"`
	ControlAddr netip.AddrPort `json:"control_addr"`
}

// Encode renders the topology file.
func (t *TopologyFile) Encode() ([]byte, error) { return json.Marshal(t) }

// DecodeTopology parses a topology file.
func DecodeTopology(b []byte) (*TopologyFile, error) {
	var t TopologyFile
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, fmt.Errorf("bootstrap: decoding topology: %w", err)
	}
	return &t, nil
}

// Server serves the AS's bootstrap configuration. It exposes the same
// document tree over two frontends: real HTTP (ServeHTTP implements
// http.Handler, used on live deployments) and a single-datagram GET
// protocol over the simulated transport (used by the latency
// experiments, where virtual time replaces wall-clock HTTP).
type Server struct {
	// Topology is the served configuration.
	Topology TopologyFile
	// Signer signs the topology; nil serves it unsigned (a deployment
	// choice the client may reject).
	Signer *cppki.Signer
	// TRCs serves /trcs/isd{N}.
	TRCs *cppki.Store

	conn simnet.Conn
}

// Start binds the datagram frontend.
func (s *Server) Start(net simnet.Network, at netip.AddrPort) error {
	conn, err := net.Listen(at, s.handleDatagram)
	if err != nil {
		return err
	}
	s.conn = conn
	return nil
}

// Addr returns the datagram frontend's address.
func (s *Server) Addr() netip.AddrPort { return s.conn.LocalAddr() }

// Close stops the datagram frontend.
func (s *Server) Close() error {
	if s.conn == nil {
		return nil
	}
	return s.conn.Close()
}

// resolve returns (body, status) for a document path.
func (s *Server) resolve(path string) ([]byte, int) {
	switch {
	case path == "/topology":
		body, err := s.topologyDocument()
		if err != nil {
			return []byte(err.Error()), http.StatusInternalServerError
		}
		return body, http.StatusOK
	case strings.HasPrefix(path, "/trcs/isd"):
		if s.TRCs == nil {
			return []byte("no TRC store"), http.StatusNotFound
		}
		n, err := strconv.ParseUint(strings.TrimPrefix(path, "/trcs/isd"), 10, 16)
		if err != nil {
			return []byte("bad ISD"), http.StatusBadRequest
		}
		trc, ok := s.TRCs.Get(addr.ISD(n))
		if !ok {
			return []byte("unknown ISD"), http.StatusNotFound
		}
		body, err := trc.Encode()
		if err != nil {
			return []byte(err.Error()), http.StatusInternalServerError
		}
		return body, http.StatusOK
	default:
		return []byte("not found"), http.StatusNotFound
	}
}

// topologyDocument returns the (signed) topology body.
func (s *Server) topologyDocument() ([]byte, error) {
	raw, err := s.Topology.Encode()
	if err != nil {
		return nil, err
	}
	if s.Signer == nil {
		// Unsigned: wrap in an envelope with empty signature so the
		// client can distinguish.
		return json.Marshal(&cppki.SignedMessage{Payload: raw})
	}
	msg, err := s.Signer.Sign(raw)
	if err != nil {
		return nil, err
	}
	return msg.Encode()
}

// ServeHTTP implements http.Handler (the live-deployment frontend).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body, status := s.resolve(r.URL.Path)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// handleDatagram serves "GET <path>" datagrams with "<status> <body>".
func (s *Server) handleDatagram(pkt []byte, from netip.AddrPort) {
	req := string(pkt)
	if !strings.HasPrefix(req, "GET ") {
		return
	}
	body, status := s.resolve(strings.TrimSpace(strings.TrimPrefix(req, "GET ")))
	resp := append([]byte(fmt.Sprintf("%d ", status)), body...)
	_ = s.conn.Send(resp, from)
}
