package bootstrap

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
	"sync"
	"time"

	"sciera/internal/cppki"
	"sciera/internal/dns"
	"sciera/internal/simnet"
)

// Mechanism identifies a hint discovery mechanism (Appendix A).
type Mechanism int

const (
	MechDHCPVIVO Mechanism = iota
	MechDHCPOption72
	MechDHCPv6VSIO
	MechNDP // RA-provided resolver + DNS SRV
	MechDNSSRV
	MechDNSNAPTR
	MechDNSSD
	MechMDNS
	numMechanisms
)

func (m Mechanism) String() string {
	switch m {
	case MechDHCPVIVO:
		return "DHCP-VIVO"
	case MechDHCPOption72:
		return "DHCP-opt72"
	case MechDHCPv6VSIO:
		return "DHCPv6-VSIO"
	case MechNDP:
		return "IPv6-NDP"
	case MechDNSSRV:
		return "DNS-SRV"
	case MechDNSNAPTR:
		return "DNS-NAPTR"
	case MechDNSSD:
		return "DNS-SD"
	case MechMDNS:
		return "mDNS"
	default:
		return fmt.Sprintf("mechanism(%d)", int(m))
	}
}

// AllMechanisms lists every mechanism in client preference order.
func AllMechanisms() []Mechanism {
	out := make([]Mechanism, 0, numMechanisms)
	for m := Mechanism(0); m < numMechanisms; m++ {
		out = append(out, m)
	}
	return out
}

// Env is what the client knows about its attachment network before
// bootstrapping: almost nothing. Broadcast-based mechanisms need no
// configuration at all; DNS-based ones use the resolver and search
// domain the network pushed via DHCP/RAs (or a static fallback).
type Env struct {
	// DNSResolver is the network's resolver, when already known (e.g.
	// from a static config); MechNDP discovers it dynamically.
	DNSResolver netip.AddrPort
	// SearchDomain scopes DNS-based lookups.
	SearchDomain string
}

// Result is a completed bootstrap.
type Result struct {
	Mechanism Mechanism
	Hint      netip.AddrPort
	Topology  *TopologyFile
	TRC       *cppki.TRC
	// HintTime and FetchTime split the total as in Figure 4.
	HintTime, FetchTime time.Duration
}

// Client performs hint discovery and configuration fetch. All
// operations are asynchronous and single-shot; the blocking wrappers
// require an independently driven transport.
type Client struct {
	Env Env
	// Timeout bounds each network exchange (default 1s).
	Timeout time.Duration
	// AllowUnsigned accepts topologies without a verifiable signature
	// (out-of-band trust). Default false.
	AllowUnsigned bool

	net  simnet.Network
	conn simnet.Conn

	mu      sync.Mutex
	nextXID uint32
	waiters map[uint32]func([]byte)
}

// NewClient attaches a client at the given local address (zero for
// automatic).
func NewClient(net simnet.Network, local netip.AddrPort, env Env) (*Client, error) {
	c := &Client{
		Env:     env,
		Timeout: time.Second,
		net:     net,
		waiters: make(map[uint32]func([]byte)),
	}
	conn, err := net.Listen(local, c.handle)
	if err != nil {
		return nil, err
	}
	c.conn = conn
	return c, nil
}

// Close releases the client socket.
func (c *Client) Close() error { return c.conn.Close() }

// handle dispatches every inbound datagram to all registered waiters;
// each waiter decides whether the datagram answers its exchange.
func (c *Client) handle(pkt []byte, _ netip.AddrPort) {
	c.mu.Lock()
	ws := make([]func([]byte), 0, len(c.waiters))
	for _, w := range c.waiters {
		ws = append(ws, w)
	}
	c.mu.Unlock()
	for _, w := range ws {
		w(pkt)
	}
}

// exchange sends req to target and calls cb with the first datagram
// accepted by match, or an error on timeout. cb fires exactly once.
func (c *Client) exchange(req []byte, target netip.AddrPort, match func([]byte) bool, cb func([]byte, error)) {
	c.mu.Lock()
	c.nextXID++
	id := c.nextXID
	var once sync.Once
	var cancel func()
	fire := func(pkt []byte, err error) {
		once.Do(func() {
			c.mu.Lock()
			delete(c.waiters, id)
			c.mu.Unlock()
			if cancel != nil {
				cancel()
			}
			cb(pkt, err)
		})
	}
	c.waiters[id] = func(pkt []byte) {
		if match(pkt) {
			fire(pkt, nil)
		}
	}
	c.mu.Unlock()

	timeout := c.Timeout
	if timeout == 0 {
		timeout = time.Second
	}
	cancel = c.net.AfterFunc(timeout, func() {
		fire(nil, fmt.Errorf("bootstrap: exchange with %v timed out", target))
	})
	if err := c.conn.Send(req, target); err != nil {
		fire(nil, err)
	}
}

// broadcast returns the broadcast rendezvous for a well-known port.
func broadcast(port uint16) netip.AddrPort {
	return netip.AddrPortFrom(simnet.BroadcastAddr, port)
}

// Discover obtains the bootstrap-server hint via one mechanism.
func (c *Client) Discover(m Mechanism, cb func(netip.AddrPort, error)) {
	switch m {
	case MechDHCPVIVO, MechDHCPOption72:
		c.discoverDHCP(m, cb)
	case MechDHCPv6VSIO:
		c.discoverDHCPv6(cb)
	case MechNDP:
		c.discoverNDP(cb)
	case MechDNSSRV:
		c.discoverDNS(c.Env.DNSResolver, c.Env.SearchDomain, dns.TypeSRV, cb)
	case MechDNSNAPTR:
		c.discoverDNS(c.Env.DNSResolver, c.Env.SearchDomain, dns.TypeNAPTR, cb)
	case MechDNSSD:
		c.discoverDNS(c.Env.DNSResolver, c.Env.SearchDomain, dns.TypePTR, cb)
	case MechMDNS:
		c.discoverMDNS(cb)
	default:
		cb(netip.AddrPort{}, fmt.Errorf("bootstrap: unknown mechanism %v", m))
	}
}

func (c *Client) discoverDHCP(m Mechanism, cb func(netip.AddrPort, error)) {
	xid := c.newXID()
	req := &DHCPMessage{Op: dhcpDiscover, XID: xid, Options: map[uint8][]byte{}}
	c.exchange(req.Encode(), broadcast(PortDHCP), func(pkt []byte) bool {
		o, err := DecodeDHCP(pkt)
		return err == nil && o.Op == dhcpOffer && o.XID == xid
	}, func(pkt []byte, err error) {
		if err != nil {
			cb(netip.AddrPort{}, err)
			return
		}
		offer, _ := DecodeDHCP(pkt)
		if m == MechDHCPVIVO {
			if v, ok := offer.Options[OptVIVO]; ok {
				hint, err := DecodeVIVO(v)
				cb(hint, err)
				return
			}
			cb(netip.AddrPort{}, fmt.Errorf("%w: offer carries no VIVO", ErrNoHint))
			return
		}
		if v, ok := offer.Options[OptWWWServer]; ok && len(v) == 4 {
			cb(netip.AddrPortFrom(netip.AddrFrom4([4]byte(v)), PortBootstrap), nil)
			return
		}
		cb(netip.AddrPort{}, fmt.Errorf("%w: offer carries no option 72", ErrNoHint))
	})
}

func (c *Client) discoverDHCPv6(cb func(netip.AddrPort, error)) {
	xid := c.newXID()
	req := &DHCPv6Message{Type: dhcp6Solicit, XID: xid, Options: map[uint16][]byte{}}
	c.exchange(req.Encode(), broadcast(PortDHCPv6), func(pkt []byte) bool {
		a, err := DecodeDHCPv6(pkt)
		return err == nil && a.Type == dhcp6Advertise && a.XID == xid
	}, func(pkt []byte, err error) {
		if err != nil {
			cb(netip.AddrPort{}, err)
			return
		}
		adv, _ := DecodeDHCPv6(pkt)
		if v, ok := adv.Options[Opt6VSIO]; ok {
			hint, err := DecodeVIVO(v)
			cb(hint, err)
			return
		}
		cb(netip.AddrPort{}, fmt.Errorf("%w: advertise carries no VSIO", ErrNoHint))
	})
}

func (c *Client) discoverNDP(cb func(netip.AddrPort, error)) {
	c.exchange(EncodeRS(), broadcast(PortNDP), func(pkt []byte) bool {
		_, err := DecodeRA(pkt)
		return err == nil
	}, func(pkt []byte, err error) {
		if err != nil {
			cb(netip.AddrPort{}, err)
			return
		}
		ra, _ := DecodeRA(pkt)
		if len(ra.DNSServers) == 0 {
			cb(netip.AddrPort{}, fmt.Errorf("%w: RA without RDNSS", ErrNoHint))
			return
		}
		// Chain into a DNS SRV lookup via the advertised resolver.
		c.discoverDNS(ra.DNSServers[0], ra.SearchDomain, dns.TypeSRV, cb)
	})
}

func (c *Client) discoverMDNS(cb func(netip.AddrPort, error)) {
	c.dnsQuery(broadcast(PortMDNS), DiscoveryService+".local", dns.TypePTR, cb)
}

func (c *Client) discoverDNS(resolver netip.AddrPort, domain string, qtype uint16, cb func(netip.AddrPort, error)) {
	if !resolver.IsValid() {
		cb(netip.AddrPort{}, fmt.Errorf("%w: no DNS resolver configured", ErrNoHint))
		return
	}
	name := domain
	if qtype != dns.TypeNAPTR {
		name = DiscoveryService + "." + domain
	}
	c.dnsQuery(resolver, name, qtype, cb)
}

// dnsQuery performs one query and extracts the bootstrap hint from the
// answer set (following SRV targets and NAPTR replacements to their A
// records inside the same response).
func (c *Client) dnsQuery(resolver netip.AddrPort, name string, qtype uint16, cb func(netip.AddrPort, error)) {
	id := uint16(c.newXID())
	q := &dns.Message{ID: id, Questions: []dns.Question{{Name: name, Type: qtype, Class: dns.ClassIN}}}
	raw, err := q.Encode()
	if err != nil {
		cb(netip.AddrPort{}, err)
		return
	}
	c.exchange(raw, resolver, func(pkt []byte) bool {
		m, err := dns.Decode(pkt)
		return err == nil && m.Response && m.ID == id
	}, func(pkt []byte, err error) {
		if err != nil {
			cb(netip.AddrPort{}, err)
			return
		}
		m, _ := dns.Decode(pkt)
		hint, err := hintFromAnswers(m.Answers)
		cb(hint, err)
	})
}

// hintFromAnswers resolves PTR -> SRV -> A / NAPTR -> A chains within
// one answer set.
func hintFromAnswers(answers []dns.Record) (netip.AddrPort, error) {
	addrOf := func(host string) (netip.Addr, bool) {
		for _, r := range answers {
			if (r.Type == dns.TypeA || r.Type == dns.TypeAAAA) && strings.EqualFold(r.Name, host) {
				return r.A, true
			}
		}
		return netip.Addr{}, false
	}
	srvFor := func(name string) (dns.SRV, bool) {
		for _, r := range answers {
			if r.Type == dns.TypeSRV && (name == "" || strings.EqualFold(r.Name, name)) {
				return r.SRV, true
			}
		}
		return dns.SRV{}, false
	}
	// PTR chains to an instance SRV.
	for _, r := range answers {
		if r.Type == dns.TypePTR {
			if srv, ok := srvFor(r.PTR); ok {
				if a, ok := addrOf(srv.Target); ok {
					return netip.AddrPortFrom(a, srv.Port), nil
				}
			}
		}
	}
	// Direct SRV.
	if srv, ok := srvFor(""); ok {
		if a, ok := addrOf(srv.Target); ok {
			return netip.AddrPortFrom(a, srv.Port), nil
		}
	}
	// NAPTR with "A" flag.
	for _, r := range answers {
		if r.Type == dns.TypeNAPTR && strings.EqualFold(r.NAPTR.Service, NAPTRService) {
			if a, ok := addrOf(r.NAPTR.Replacement); ok {
				return netip.AddrPortFrom(a, PortBootstrap), nil
			}
		}
	}
	return netip.AddrPort{}, fmt.Errorf("%w: no usable records", ErrNoHint)
}

// Fetch retrieves and authenticates the AS configuration from a
// bootstrap server: the signed topology first (to learn the ISD), then
// the ISD TRC, then signature verification of the topology against the
// TRC.
func (c *Client) Fetch(server netip.AddrPort, cb func(*TopologyFile, *cppki.TRC, error)) {
	c.get(server, "/topology", func(body []byte, err error) {
		if err != nil {
			cb(nil, nil, err)
			return
		}
		msg, err := cppki.DecodeSignedMessage(body)
		if err != nil {
			cb(nil, nil, err)
			return
		}
		topo, err := DecodeTopology(msg.Payload)
		if err != nil {
			cb(nil, nil, err)
			return
		}
		c.get(server, "/trcs/isd"+strconv.Itoa(int(topo.IA.ISD())), func(trcBody []byte, err error) {
			if err != nil {
				cb(nil, nil, err)
				return
			}
			trc, err := cppki.DecodeTRC(trcBody)
			if err != nil {
				cb(nil, nil, err)
				return
			}
			now := c.net.Now()
			if err := trc.VerifyBase(now); err != nil {
				cb(nil, nil, fmt.Errorf("bootstrap: TRC rejected: %w", err))
				return
			}
			if len(msg.Signature) == 0 {
				if !c.AllowUnsigned {
					cb(nil, nil, fmt.Errorf("bootstrap: unsigned topology rejected"))
					return
				}
			} else if _, _, err := msg.Verify(trc, topo.IA, now); err != nil {
				cb(nil, nil, fmt.Errorf("bootstrap: topology signature invalid: %w", err))
				return
			}
			cb(topo, trc, nil)
		})
	})
}

// get performs one datagram GET.
func (c *Client) get(server netip.AddrPort, path string, cb func([]byte, error)) {
	req := []byte("GET " + path)
	c.exchange(req, server, func(pkt []byte) bool {
		// Status-prefixed responses to our paths; correlate loosely by
		// the known prefix (single outstanding GET per path).
		s := string(pkt)
		return len(s) > 4 && s[3] == ' '
	}, func(pkt []byte, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		status, body := string(pkt[:3]), pkt[4:]
		if status != "200" {
			cb(nil, fmt.Errorf("bootstrap: GET %s: status %s: %s", path, status, body))
			return
		}
		cb(body, nil)
	})
}

// Bootstrap walks the mechanisms in preference order until one yields a
// verified configuration (P1: zero user interaction, automatic
// fallback).
func (c *Client) Bootstrap(mechs []Mechanism, cb func(*Result, error)) {
	if len(mechs) == 0 {
		mechs = AllMechanisms()
	}
	start := c.net.Now()
	var try func(i int, lastErr error)
	try = func(i int, lastErr error) {
		if i >= len(mechs) {
			cb(nil, fmt.Errorf("bootstrap: all mechanisms failed, last: %w", lastErr))
			return
		}
		m := mechs[i]
		c.Discover(m, func(hint netip.AddrPort, err error) {
			if err != nil {
				try(i+1, err)
				return
			}
			hintDone := c.net.Now()
			c.Fetch(hint, func(topo *TopologyFile, trc *cppki.TRC, err error) {
				if err != nil {
					try(i+1, err)
					return
				}
				cb(&Result{
					Mechanism: m,
					Hint:      hint,
					Topology:  topo,
					TRC:       trc,
					HintTime:  hintDone.Sub(start),
					FetchTime: c.net.Now().Sub(hintDone),
				}, nil)
			})
		})
	}
	try(0, ErrNoHint)
}

func (c *Client) newXID() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextXID++
	return c.nextXID
}
