package bootstrap

import (
	"net/netip"
	"strings"

	"sciera/internal/dns"
	"sciera/internal/simnet"
)

// LANConfig describes which SCION hints a campus network's existing
// infrastructure carries — the knobs of Appendix A, Table 2.
type LANConfig struct {
	// BootstrapServer is the hint value every mechanism distributes.
	BootstrapServer netip.AddrPort

	// SearchDomain is the network's DNS search domain (e.g.
	// "cs.example.edu"); DNS-based hints are published under it.
	SearchDomain string

	// Which hint carriers the network operates.
	DHCPVIVO     bool // DHCPv4 option 125
	DHCPOption72 bool // DHCPv4 "default WWW server"
	DHCPv6VSIO   bool // DHCPv6 option 17
	NDPRA        bool // RDNSS/DNSSL router advertisements
	DNSSRV       bool
	DNSNAPTR     bool
	DNSSD        bool
	MDNS         bool
}

// LAN is a simulated campus network segment: the infrastructure servers
// a real deployment would already run, answering with SCION hints.
type LAN struct {
	Cfg   LANConfig
	net   simnet.Network
	conns []simnet.Conn

	// DNSAddr is the resolver's address (valid if any DNS mechanism or
	// NDP is enabled).
	DNSAddr netip.AddrPort

	dnsConn  simnet.Conn
	mdnsConn simnet.Conn
}

// StartLAN brings up the LAN's infrastructure on the transport.
// Broadcast-based services (DHCP, DHCPv6, NDP rendezvous, mDNS) bind
// their well-known ports on dedicated server addresses.
func StartLAN(net simnet.Network, serverHost func() netip.Addr, cfg LANConfig) (*LAN, error) {
	l := &LAN{Cfg: cfg, net: net}
	listen := func(at netip.AddrPort, h simnet.Handler) (simnet.Conn, error) {
		c, err := net.Listen(at, h)
		if err != nil {
			l.Close()
			return nil, err
		}
		l.conns = append(l.conns, c)
		return c, nil
	}

	if cfg.DHCPVIVO || cfg.DHCPOption72 {
		var conn simnet.Conn
		conn, err := listen(netip.AddrPortFrom(serverHost(), PortDHCP), func(pkt []byte, from netip.AddrPort) {
			m, err := DecodeDHCP(pkt)
			if err != nil || m.Op != dhcpDiscover {
				return
			}
			offer := &DHCPMessage{Op: dhcpOffer, XID: m.XID, Options: map[uint8][]byte{}}
			if cfg.DHCPVIVO {
				offer.Options[OptVIVO] = EncodeVIVO(cfg.BootstrapServer)
			}
			if cfg.DHCPOption72 {
				ip := cfg.BootstrapServer.Addr().As4()
				offer.Options[OptWWWServer] = ip[:]
			}
			_ = conn.Send(offer.Encode(), from)
		})
		if err != nil {
			return nil, err
		}
	}

	if cfg.DHCPv6VSIO {
		var conn simnet.Conn
		conn, err := listen(netip.AddrPortFrom(serverHost(), PortDHCPv6), func(pkt []byte, from netip.AddrPort) {
			m, err := DecodeDHCPv6(pkt)
			if err != nil || m.Type != dhcp6Solicit {
				return
			}
			adv := &DHCPv6Message{Type: dhcp6Advertise, XID: m.XID, Options: map[uint16][]byte{
				Opt6VSIO: EncodeVIVO(cfg.BootstrapServer),
			}}
			_ = conn.Send(adv.Encode(), from)
		})
		if err != nil {
			return nil, err
		}
	}

	needDNS := cfg.DNSSRV || cfg.DNSNAPTR || cfg.DNSSD || cfg.NDPRA
	if needDNS {
		dnsConn, err := listen(netip.AddrPortFrom(serverHost(), PortDNS), func(pkt []byte, from netip.AddrPort) {
			l.serveDNS(pkt, from)
		})
		if err != nil {
			return nil, err
		}
		l.DNSAddr = dnsConn.LocalAddr()
		l.dnsConn = dnsConn
	}

	if cfg.NDPRA {
		var conn simnet.Conn
		conn, err := listen(netip.AddrPortFrom(serverHost(), PortNDP), func(pkt []byte, from netip.AddrPort) {
			if !IsRS(pkt) {
				return
			}
			ra := &RouterAdvertisement{SearchDomain: cfg.SearchDomain}
			if l.DNSAddr.IsValid() {
				ra.DNSServers = []netip.AddrPort{l.DNSAddr}
			}
			_ = conn.Send(ra.Encode(), from)
		})
		if err != nil {
			return nil, err
		}
	}

	if cfg.MDNS {
		var conn simnet.Conn
		conn, err := listen(netip.AddrPortFrom(serverHost(), PortMDNS), func(pkt []byte, from netip.AddrPort) {
			l.serveMDNS(pkt, from)
		})
		if err != nil {
			return nil, err
		}
		l.mdnsConn = conn
	}
	return l, nil
}

// Close shuts the LAN down.
func (l *LAN) Close() {
	for _, c := range l.conns {
		_ = c.Close()
	}
}

// serveDNS answers queries for the SCION discovery records under the
// search domain.
func (l *LAN) serveDNS(pkt []byte, from netip.AddrPort) {
	q, err := dns.Decode(pkt)
	if err != nil || q.Response || len(q.Questions) == 0 {
		return
	}
	resp := &dns.Message{ID: q.ID, Response: true, Questions: q.Questions}
	for _, question := range q.Questions {
		resp.Answers = append(resp.Answers, l.answersFor(question, l.Cfg.SearchDomain)...)
	}
	out, err := resp.Encode()
	if err != nil {
		return
	}
	_ = l.dnsConn.Send(out, from)
}

// serveMDNS answers multicast queries for the discovery service in the
// .local domain.
func (l *LAN) serveMDNS(pkt []byte, from netip.AddrPort) {
	q, err := dns.Decode(pkt)
	if err != nil || q.Response || len(q.Questions) == 0 {
		return
	}
	resp := &dns.Message{ID: q.ID, Response: true, Questions: q.Questions}
	for _, question := range q.Questions {
		resp.Answers = append(resp.Answers, l.answersFor(question, "local")...)
	}
	if len(resp.Answers) == 0 {
		return // mDNS responders stay silent on unknown names
	}
	out, err := resp.Encode()
	if err != nil {
		return
	}
	_ = l.mdnsConn.Send(out, from)
}

// answersFor produces the configured discovery records for a question.
func (l *LAN) answersFor(q dns.Question, domain string) []dns.Record {
	bs := l.Cfg.BootstrapServer
	hostName := "bootstrap-server." + domain
	srvName := DiscoveryService + "." + domain
	instance := "sciera." + srvName
	var out []dns.Record
	switch {
	case q.Type == dns.TypeSRV && strings.EqualFold(q.Name, srvName) && l.Cfg.DNSSRV:
		out = append(out,
			dns.Record{Name: srvName, Type: dns.TypeSRV, Class: dns.ClassIN, TTL: 300,
				SRV: dns.SRV{Priority: 1, Port: bs.Port(), Target: hostName}},
			hostRecord(hostName, bs.Addr()),
		)
	case q.Type == dns.TypeNAPTR && strings.EqualFold(q.Name, domain) && l.Cfg.DNSNAPTR:
		out = append(out,
			dns.Record{Name: domain, Type: dns.TypeNAPTR, Class: dns.ClassIN, TTL: 300,
				NAPTR: dns.NAPTR{Order: 10, Preference: 10, Flags: "A",
					Service: NAPTRService, Replacement: hostName}},
			hostRecord(hostName, bs.Addr()),
		)
	case q.Type == dns.TypePTR && strings.EqualFold(q.Name, srvName) && (l.Cfg.DNSSD || (domain == "local" && l.Cfg.MDNS)):
		out = append(out,
			dns.Record{Name: srvName, Type: dns.TypePTR, Class: dns.ClassIN, TTL: 300, PTR: instance},
			dns.Record{Name: instance, Type: dns.TypeSRV, Class: dns.ClassIN, TTL: 300,
				SRV: dns.SRV{Priority: 1, Port: bs.Port(), Target: hostName}},
			hostRecord(hostName, bs.Addr()),
		)
	case (q.Type == dns.TypeA || q.Type == dns.TypeAAAA) && strings.EqualFold(q.Name, hostName):
		out = append(out, hostRecord(hostName, bs.Addr()))
	}
	return out
}

func hostRecord(name string, a netip.Addr) dns.Record {
	t := dns.TypeA
	if a.Is6() {
		t = dns.TypeAAAA
	}
	return dns.Record{Name: name, Type: t, Class: dns.ClassIN, TTL: 300, A: a}
}
