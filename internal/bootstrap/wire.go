// Package bootstrap implements SCIERA's automated end-host
// bootstrapping (paper Sections 4.1 and Appendix A): a client joining a
// network discovers the AS's bootstrap server through hint mechanisms
// piggybacked on protocols the network already runs — DHCP, DHCPv6,
// IPv6 neighbor discovery, unicast DNS (SRV, NAPTR, service discovery)
// and multicast DNS — then fetches the signed AS topology and the ISD
// TRC from the bootstrap server, leaving the host fully configured for
// native SCION connectivity.
//
// The package contains both sides: the LAN infrastructure servers a
// campus network would already operate (DHCP server, DNS resolver,
// advertising router, mDNS responder), with the SCION hints added to
// their answers, and the client that walks the mechanisms in preference
// order.
package bootstrap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Well-known LAN ports (simulated network plan).
const (
	PortDHCP   = 67
	PortDHCPv6 = 547
	PortNDP    = 5800 // router solicitation/advertisement rendezvous
	PortDNS    = 53
	PortMDNS   = 5353
	// PortBootstrap is the bootstrap server's default discovery port.
	PortBootstrap = 8041
)

// DiscoveryService is the DNS service name used by all DNS-based
// mechanisms.
const DiscoveryService = "_sciondiscovery._tcp"

// NAPTRService is the service tag in NAPTR records.
const NAPTRService = "x-sciondiscovery:tcp"

// PEN is the private enterprise number identifying SCION hints in DHCP
// vendor options.
const PEN = 55324

// Errors.
var (
	ErrNoHint    = errors.New("bootstrap: no hint obtained")
	ErrBadPacket = errors.New("bootstrap: malformed packet")
)

// --- DHCPv4 (simplified wire format) ---

// DHCP message ops.
const (
	dhcpDiscover = 1
	dhcpOffer    = 2
)

// DHCP option codes.
const (
	// OptWWWServer is option 72 ("Default WWW server"), used when
	// custom options cannot be configured.
	OptWWWServer = 72
	// OptVIVO is option 125 (vendor-identifying vendor options).
	OptVIVO = 125
)

var dhcpMagic = [4]byte{'D', 'H', 'C', '4'}

// DHCPMessage is a simplified DHCPv4 message: enough structure for the
// discover/offer exchange the hint mechanisms need.
type DHCPMessage struct {
	Op      uint8
	XID     uint32
	Options map[uint8][]byte
}

// Encode renders the message.
func (m *DHCPMessage) Encode() []byte {
	b := make([]byte, 0, 64)
	b = append(b, dhcpMagic[:]...)
	b = append(b, m.Op)
	var xid [4]byte
	binary.BigEndian.PutUint32(xid[:], m.XID)
	b = append(b, xid[:]...)
	for code, val := range m.Options {
		if len(val) > 255 {
			continue
		}
		b = append(b, code, byte(len(val)))
		b = append(b, val...)
	}
	return b
}

// DecodeDHCP parses a DHCP message.
func DecodeDHCP(b []byte) (*DHCPMessage, error) {
	if len(b) < 9 || [4]byte(b[0:4]) != dhcpMagic {
		return nil, fmt.Errorf("%w: not DHCP", ErrBadPacket)
	}
	m := &DHCPMessage{
		Op:      b[4],
		XID:     binary.BigEndian.Uint32(b[5:9]),
		Options: make(map[uint8][]byte),
	}
	for off := 9; off < len(b); {
		if off+2 > len(b) {
			return nil, fmt.Errorf("%w: truncated option", ErrBadPacket)
		}
		code, l := b[off], int(b[off+1])
		off += 2
		if off+l > len(b) {
			return nil, fmt.Errorf("%w: truncated option %d", ErrBadPacket, code)
		}
		m.Options[code] = append([]byte(nil), b[off:off+l]...)
		off += l
	}
	return m, nil
}

// EncodeVIVO packs a PEN-scoped vendor option carrying the bootstrap
// server address.
func EncodeVIVO(server netip.AddrPort) []byte {
	var pen [4]byte
	binary.BigEndian.PutUint32(pen[:], PEN)
	payload := server.String()
	out := append([]byte{}, pen[:]...)
	out = append(out, byte(len(payload)))
	return append(out, payload...)
}

// DecodeVIVO extracts the bootstrap server address from a VIVO payload,
// checking the PEN.
func DecodeVIVO(b []byte) (netip.AddrPort, error) {
	if len(b) < 5 {
		return netip.AddrPort{}, fmt.Errorf("%w: VIVO too short", ErrBadPacket)
	}
	if binary.BigEndian.Uint32(b[0:4]) != PEN {
		return netip.AddrPort{}, fmt.Errorf("%w: foreign PEN", ErrBadPacket)
	}
	l := int(b[4])
	if 5+l > len(b) {
		return netip.AddrPort{}, fmt.Errorf("%w: truncated VIVO", ErrBadPacket)
	}
	return netip.ParseAddrPort(string(b[5 : 5+l]))
}

// --- DHCPv6 (simplified) ---

var dhcp6Magic = [4]byte{'D', 'H', 'C', '6'}

const (
	dhcp6Solicit   = 1
	dhcp6Advertise = 2
	// Opt6VSIO is DHCPv6 option 17 (vendor-specific information).
	Opt6VSIO = 17
)

// DHCPv6Message is a simplified DHCPv6 message.
type DHCPv6Message struct {
	Type    uint8
	XID     uint32
	Options map[uint16][]byte
}

// Encode renders the message.
func (m *DHCPv6Message) Encode() []byte {
	b := make([]byte, 0, 64)
	b = append(b, dhcp6Magic[:]...)
	b = append(b, m.Type)
	var xid [4]byte
	binary.BigEndian.PutUint32(xid[:], m.XID)
	b = append(b, xid[:]...)
	for code, val := range m.Options {
		var hdr [4]byte
		binary.BigEndian.PutUint16(hdr[0:2], code)
		binary.BigEndian.PutUint16(hdr[2:4], uint16(len(val)))
		b = append(b, hdr[:]...)
		b = append(b, val...)
	}
	return b
}

// DecodeDHCPv6 parses a DHCPv6 message.
func DecodeDHCPv6(b []byte) (*DHCPv6Message, error) {
	if len(b) < 9 || [4]byte(b[0:4]) != dhcp6Magic {
		return nil, fmt.Errorf("%w: not DHCPv6", ErrBadPacket)
	}
	m := &DHCPv6Message{
		Type:    b[4],
		XID:     binary.BigEndian.Uint32(b[5:9]),
		Options: make(map[uint16][]byte),
	}
	for off := 9; off < len(b); {
		if off+4 > len(b) {
			return nil, fmt.Errorf("%w: truncated option", ErrBadPacket)
		}
		code := binary.BigEndian.Uint16(b[off : off+2])
		l := int(binary.BigEndian.Uint16(b[off+2 : off+4]))
		off += 4
		if off+l > len(b) {
			return nil, fmt.Errorf("%w: truncated option %d", ErrBadPacket, code)
		}
		m.Options[code] = append([]byte(nil), b[off:off+l]...)
		off += l
	}
	return m, nil
}

// --- IPv6 NDP router advertisements (simplified) ---

var ndpMagic = [4]byte{'N', 'D', 'P', '1'}

const (
	ndpSolicit   = 133
	ndpAdvertise = 134
)

// RouterAdvertisement carries the RDNSS (recursive DNS servers) and
// DNSSL (DNS search list) options of RFC 6106.
type RouterAdvertisement struct {
	DNSServers   []netip.AddrPort
	SearchDomain string
}

// Encode renders a router advertisement.
func (ra *RouterAdvertisement) Encode() []byte {
	b := append([]byte{}, ndpMagic[:]...)
	b = append(b, ndpAdvertise)
	b = append(b, byte(len(ra.DNSServers)))
	for _, s := range ra.DNSServers {
		str := s.String()
		b = append(b, byte(len(str)))
		b = append(b, str...)
	}
	b = append(b, byte(len(ra.SearchDomain)))
	b = append(b, ra.SearchDomain...)
	return b
}

// DecodeRA parses a router advertisement.
func DecodeRA(b []byte) (*RouterAdvertisement, error) {
	if len(b) < 6 || [4]byte(b[0:4]) != ndpMagic || b[4] != ndpAdvertise {
		return nil, fmt.Errorf("%w: not an RA", ErrBadPacket)
	}
	ra := &RouterAdvertisement{}
	off := 5
	n := int(b[off])
	off++
	for i := 0; i < n; i++ {
		if off >= len(b) {
			return nil, fmt.Errorf("%w: truncated RDNSS", ErrBadPacket)
		}
		l := int(b[off])
		off++
		if off+l > len(b) {
			return nil, fmt.Errorf("%w: truncated RDNSS entry", ErrBadPacket)
		}
		ap, err := netip.ParseAddrPort(string(b[off : off+l]))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPacket, err)
		}
		ra.DNSServers = append(ra.DNSServers, ap)
		off += l
	}
	if off >= len(b) {
		return nil, fmt.Errorf("%w: truncated DNSSL", ErrBadPacket)
	}
	l := int(b[off])
	off++
	if off+l > len(b) {
		return nil, fmt.Errorf("%w: truncated search domain", ErrBadPacket)
	}
	ra.SearchDomain = string(b[off : off+l])
	return ra, nil
}

// EncodeRS renders a router solicitation.
func EncodeRS() []byte {
	return append(append([]byte{}, ndpMagic[:]...), ndpSolicit)
}

// IsRS reports whether b is a router solicitation.
func IsRS(b []byte) bool {
	return len(b) >= 5 && [4]byte(b[0:4]) == ndpMagic && b[4] == ndpSolicit
}
