package bootstrap

import (
	"crypto/x509"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"

	"sciera/internal/addr"
	"sciera/internal/cppki"
	"sciera/internal/simnet"
)

var testIA = addr.MustParseIA("71-2:0:5c")

type fixture struct {
	sim    *simnet.Sim
	lan    *LAN
	server *Server
	trcs   *cppki.Store
	signer *cppki.Signer
}

func newFixture(t *testing.T, cfg LANConfig) *fixture {
	t.Helper()
	sim := simnet.NewSim(time.Unix(1_700_000_000, 0))
	// LAN exchanges take 0.4ms one way; like a campus network.
	sim.Latency = func(_, _ netip.AddrPort, _ int, _ time.Time) (time.Duration, bool) {
		return 400 * time.Microsecond, true
	}

	// PKI for ISD 71 and an AS signer.
	p, err := cppki.ProvisionISD(71, []addr.IA{testIA}, []addr.IA{testIA},
		cppki.ProvisionOptions{NotBefore: sim.Now().Add(-time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	trcs := cppki.NewStore()
	if err := trcs.AddTrusted(p.TRC, sim.Now()); err != nil {
		t.Fatal(err)
	}
	caMat := p.CACerts[testIA]
	caCert, err := x509.ParseCertificate(caMat.Cert)
	if err != nil {
		t.Fatal(err)
	}
	asKey, _ := cppki.GenerateKey()
	asCert, err := cppki.NewASCert(testIA, asKey.Public(), caCert, caMat.Key,
		sim.Now().Add(-time.Minute), 72*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	signer := &cppki.Signer{IA: testIA, Key: asKey, Chain: cppki.Chain{AS: asCert, CA: caCert}}

	server := &Server{
		Topology: TopologyFile{
			IA:          testIA,
			RouterAddr:  netip.MustParseAddrPort("10.9.9.1:30001"),
			ControlAddr: netip.MustParseAddrPort("10.9.9.2:30002"),
		},
		Signer: signer,
		TRCs:   trcs,
	}
	if err := server.Start(sim, netip.AddrPortFrom(sim.AllocAddr(), PortBootstrap)); err != nil {
		t.Fatal(err)
	}

	cfg.BootstrapServer = server.Addr()
	if cfg.SearchDomain == "" {
		cfg.SearchDomain = "cs.example.edu"
	}
	lan, err := StartLAN(sim, sim.AllocAddr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{sim: sim, lan: lan, server: server, trcs: trcs, signer: signer}
}

func allLAN() LANConfig {
	return LANConfig{
		DHCPVIVO: true, DHCPOption72: true, DHCPv6VSIO: true,
		NDPRA: true, DNSSRV: true, DNSNAPTR: true, DNSSD: true, MDNS: true,
	}
}

// bootstrapSync runs Bootstrap inside the simulator loop.
func bootstrapSync(t *testing.T, f *fixture, mechs []Mechanism, env Env) (*Result, error) {
	t.Helper()
	cli, err := NewClient(f.sim, netip.AddrPort{}, env)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	var res *Result
	var rerr error
	done := false
	cli.Bootstrap(mechs, func(r *Result, err error) {
		res, rerr, done = r, err, true
	})
	f.sim.RunFor(time.Minute)
	if !done {
		t.Fatal("bootstrap did not complete")
	}
	return res, rerr
}

func TestBootstrapEveryMechanism(t *testing.T) {
	for _, m := range AllMechanisms() {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			f := newFixture(t, allLAN())
			env := Env{SearchDomain: "cs.example.edu", DNSResolver: f.lan.DNSAddr}
			res, err := bootstrapSync(t, f, []Mechanism{m}, env)
			if err != nil {
				t.Fatalf("%v: %v", m, err)
			}
			if res.Mechanism != m {
				t.Errorf("mechanism = %v", res.Mechanism)
			}
			if res.Hint != f.server.Addr() {
				t.Errorf("hint = %v, want %v", res.Hint, f.server.Addr())
			}
			if res.Topology.IA != testIA {
				t.Errorf("IA = %v", res.Topology.IA)
			}
			if res.Topology.RouterAddr.Port() != 30001 {
				t.Errorf("router addr = %v", res.Topology.RouterAddr)
			}
			if res.TRC == nil || res.TRC.ISD != 71 {
				t.Errorf("TRC = %+v", res.TRC)
			}
			if res.HintTime <= 0 || res.FetchTime <= 0 {
				t.Errorf("timings = %v / %v", res.HintTime, res.FetchTime)
			}
			// The full bootstrap is a handful of sub-millisecond LAN
			// round trips — imperceptible, as the paper requires.
			if total := res.HintTime + res.FetchTime; total > 100*time.Millisecond {
				t.Errorf("bootstrap took %v", total)
			}
		})
	}
}

func TestBootstrapFallbackOrder(t *testing.T) {
	// LAN only provides mDNS; the client walks the whole preference
	// list and lands on the last mechanism.
	f := newFixture(t, LANConfig{MDNS: true})
	res, err := bootstrapSync(t, f, nil, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mechanism != MechMDNS {
		t.Errorf("mechanism = %v, want mDNS", res.Mechanism)
	}
}

func TestBootstrapFailsWithNoMechanisms(t *testing.T) {
	f := newFixture(t, LANConfig{})
	_, err := bootstrapSync(t, f, nil, Env{})
	if err == nil {
		t.Fatal("bootstrap succeeded on a hint-free network")
	}
}

func TestUnsignedTopologyRejected(t *testing.T) {
	f := newFixture(t, allLAN())
	f.server.Signer = nil
	_, err := bootstrapSync(t, f, []Mechanism{MechDHCPVIVO}, Env{})
	if err == nil {
		t.Fatal("unsigned topology accepted")
	}
	// Unless explicitly allowed.
	cli, err := NewClient(f.sim, netip.AddrPort{}, Env{})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.AllowUnsigned = true
	var res *Result
	cli.Bootstrap([]Mechanism{MechDHCPVIVO}, func(r *Result, err2 error) {
		res = r
		err = err2
	})
	f.sim.RunFor(time.Minute)
	if err != nil || res == nil {
		t.Fatalf("AllowUnsigned bootstrap failed: %v", err)
	}
}

func TestTamperedTopologySignatureRejected(t *testing.T) {
	f := newFixture(t, allLAN())
	// Re-sign with a key that is NOT certified for this IA: build a
	// rogue signer with a self-provisioned foreign ISD.
	rogue, err := cppki.ProvisionISD(64, []addr.IA{addr.MustParseIA("64-1")},
		[]addr.IA{addr.MustParseIA("64-1")}, cppki.ProvisionOptions{NotBefore: f.sim.Now().Add(-time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	caMat := rogue.CACerts[addr.MustParseIA("64-1")]
	caCert, _ := x509.ParseCertificate(caMat.Cert)
	key, _ := cppki.GenerateKey()
	cert, err := cppki.NewASCert(testIA, key.Public(), caCert, caMat.Key,
		f.sim.Now().Add(-time.Minute), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	f.server.Signer = &cppki.Signer{IA: testIA, Key: key, Chain: cppki.Chain{AS: cert, CA: caCert}}
	_, err = bootstrapSync(t, f, []Mechanism{MechDHCPVIVO}, Env{})
	if err == nil {
		t.Fatal("topology signed by unanchored CA accepted")
	}
}

func TestDNSWithoutResolverFails(t *testing.T) {
	f := newFixture(t, allLAN())
	_, err := bootstrapSync(t, f, []Mechanism{MechDNSSRV}, Env{SearchDomain: "cs.example.edu"})
	if err == nil {
		t.Fatal("DNS mechanism without resolver succeeded")
	}
}

func TestHTTPFrontend(t *testing.T) {
	f := newFixture(t, allLAN())
	ts := httptest.NewServer(f.server)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/topology")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	msg, err := cppki.DecodeSignedMessage(body)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := DecodeTopology(msg.Payload)
	if err != nil || topo.IA != testIA {
		t.Fatalf("topology = %+v, %v", topo, err)
	}

	resp, err = http.Get(ts.URL + "/trcs/isd71")
	if err != nil {
		t.Fatal(err)
	}
	trcBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	trc, err := cppki.DecodeTRC(trcBody)
	if err != nil || trc.ISD != 71 {
		t.Fatalf("trc = %+v, %v", trc, err)
	}

	for path, want := range map[string]int{
		"/nope":        http.StatusNotFound,
		"/trcs/isd999": http.StatusNotFound,
		"/trcs/isdxx":  http.StatusBadRequest,
	} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", path, r.StatusCode, want)
		}
	}

	post, err := http.Post(ts.URL+"/topology", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST = %d", post.StatusCode)
	}
}

func TestWireFormats(t *testing.T) {
	// DHCP round trip.
	m := &DHCPMessage{Op: dhcpDiscover, XID: 99, Options: map[uint8][]byte{7: {1, 2}}}
	got, err := DecodeDHCP(m.Encode())
	if err != nil || got.Op != dhcpDiscover || got.XID != 99 || string(got.Options[7]) != "\x01\x02" {
		t.Fatalf("DHCP round trip: %+v %v", got, err)
	}
	if _, err := DecodeDHCP([]byte("junk")); err == nil {
		t.Error("junk DHCP accepted")
	}

	// VIVO round trip + PEN check.
	hint := netip.MustParseAddrPort("10.1.2.3:8041")
	dec, err := DecodeVIVO(EncodeVIVO(hint))
	if err != nil || dec != hint {
		t.Fatalf("VIVO: %v %v", dec, err)
	}
	bad := EncodeVIVO(hint)
	bad[0] ^= 1
	if _, err := DecodeVIVO(bad); err == nil {
		t.Error("foreign PEN accepted")
	}

	// DHCPv6 round trip.
	m6 := &DHCPv6Message{Type: dhcp6Solicit, XID: 5, Options: map[uint16][]byte{Opt6VSIO: {1}}}
	got6, err := DecodeDHCPv6(m6.Encode())
	if err != nil || got6.Type != dhcp6Solicit || got6.XID != 5 {
		t.Fatalf("DHCPv6 round trip: %+v %v", got6, err)
	}

	// RA round trip.
	ra := &RouterAdvertisement{
		DNSServers:   []netip.AddrPort{netip.MustParseAddrPort("10.0.0.53:53")},
		SearchDomain: "example.edu",
	}
	gotRA, err := DecodeRA(ra.Encode())
	if err != nil || gotRA.SearchDomain != "example.edu" || len(gotRA.DNSServers) != 1 {
		t.Fatalf("RA round trip: %+v %v", gotRA, err)
	}
	if !IsRS(EncodeRS()) || IsRS([]byte("x")) {
		t.Error("RS detection broken")
	}
}

func TestMechanismStrings(t *testing.T) {
	for _, m := range AllMechanisms() {
		if m.String() == "" {
			t.Errorf("mechanism %d has no name", m)
		}
	}
	if Mechanism(99).String() == "" {
		t.Error("unknown mechanism should format")
	}
}

// rogueServer answers datagram GETs with arbitrary canned bodies,
// covering the client's authentication failure paths.
type rogueServer struct {
	conn      simnet.Conn
	responses map[string][]byte // path -> body (200); missing -> 404
}

func startRogue(t *testing.T, sim *simnet.Sim, responses map[string][]byte) netip.AddrPort {
	t.Helper()
	r := &rogueServer{responses: responses}
	conn, err := sim.Listen(netip.AddrPortFrom(sim.AllocAddr(), PortBootstrap),
		func(pkt []byte, from netip.AddrPort) {
			req := string(pkt)
			if !strings.HasPrefix(req, "GET ") {
				return
			}
			path := strings.TrimSpace(strings.TrimPrefix(req, "GET "))
			body, ok := r.responses[path]
			if !ok {
				_ = r.conn.Send([]byte("404 not here"), from)
				return
			}
			_ = r.conn.Send(append([]byte("200 "), body...), from)
		})
	if err != nil {
		t.Fatal(err)
	}
	r.conn = conn
	t.Cleanup(func() { conn.Close() })
	return conn.LocalAddr()
}

// fetchSync drives Client.Fetch against a given server.
func fetchSync(t *testing.T, sim *simnet.Sim, server netip.AddrPort) (*TopologyFile, *cppki.TRC, error) {
	t.Helper()
	cli, err := NewClient(sim, netip.AddrPort{}, Env{})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	var topo *TopologyFile
	var trc *cppki.TRC
	var ferr error
	done := false
	cli.Fetch(server, func(tp *TopologyFile, tr *cppki.TRC, err error) {
		topo, trc, ferr, done = tp, tr, err, true
	})
	sim.RunFor(time.Minute)
	if !done {
		t.Fatal("fetch did not complete")
	}
	return topo, trc, ferr
}

// TestFetchRejectsRogueServers covers each authentication failure of
// the bootstrap fetch pipeline: garbage signed-message framing, garbage
// topology payloads, missing and garbage TRCs.
func TestFetchRejectsRogueServers(t *testing.T) {
	sim := simnet.NewSim(time.Now())

	// Garbage signed message.
	srv := startRogue(t, sim, map[string][]byte{"/topology": []byte("{not json")})
	if _, _, err := fetchSync(t, sim, srv); err == nil {
		t.Error("garbage signed message accepted")
	}

	// Valid signed-message envelope holding a garbage topology.
	badTopo, err := (&cppki.SignedMessage{Payload: []byte("??")}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	srv = startRogue(t, sim, map[string][]byte{"/topology": badTopo})
	if _, _, err := fetchSync(t, sim, srv); err == nil {
		t.Error("garbage topology accepted")
	}

	// Plausible topology but no TRC to verify against (404).
	tf := TopologyFile{
		IA:          testIA,
		RouterAddr:  netip.MustParseAddrPort("10.1.1.1:30001"),
		ControlAddr: netip.MustParseAddrPort("10.1.1.2:30002"),
	}
	topoJSON, err := tf.Encode()
	if err != nil {
		t.Fatal(err)
	}
	unsigned, err := (&cppki.SignedMessage{Payload: topoJSON}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	srv = startRogue(t, sim, map[string][]byte{"/topology": unsigned})
	if _, _, err := fetchSync(t, sim, srv); err == nil {
		t.Error("fetch without TRC accepted")
	}

	// Garbage TRC body.
	srv = startRogue(t, sim, map[string][]byte{
		"/topology":   unsigned,
		"/trcs/isd71": []byte("not a trc"),
	})
	if _, _, err := fetchSync(t, sim, srv); err == nil {
		t.Error("garbage TRC accepted")
	}
}
