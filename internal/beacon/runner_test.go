package beacon

import (
	"crypto/x509"
	"math/rand"
	"testing"
	"time"

	"sciera/internal/addr"
	"sciera/internal/cppki"
	"sciera/internal/scrypto"
	"sciera/internal/topology"
)

var (
	rc1 = addr.MustParseIA("71-1")
	rc2 = addr.MustParseIA("71-2")
	rc3 = addr.MustParseIA("71-3")
	rlA = addr.MustParseIA("71-10")
	rlB = addr.MustParseIA("71-11")
)

func rkey(ia addr.IA) scrypto.HopKey { return scrypto.DeriveHopKey([]byte(ia.String()), 0) }

func runnerTopo(t testing.TB) *topology.Topology {
	t.Helper()
	topo := topology.New()
	for _, ia := range []addr.IA{rc1, rc2, rc3} {
		if err := topo.AddAS(topology.ASInfo{IA: ia, Core: true}); err != nil {
			t.Fatal(err)
		}
	}
	for _, ia := range []addr.IA{rlA, rlB} {
		if err := topo.AddAS(topology.ASInfo{IA: ia}); err != nil {
			t.Fatal(err)
		}
	}
	link := func(a, b addr.IA, typ topology.LinkType) {
		if _, err := topo.AddLink(topology.LinkEnd{IA: a}, topology.LinkEnd{IA: b}, typ, 5, ""); err != nil {
			t.Fatal(err)
		}
	}
	link(rc1, rc2, topology.LinkCore)
	link(rc2, rc3, topology.LinkCore)
	link(rc1, rc3, topology.LinkCore)
	link(rc1, rlA, topology.LinkParent)
	link(rc3, rlB, topology.LinkParent)
	// A second-level leaf: rlB is also parent of nothing, rlA gets a
	// child to exercise multi-hop down-beaconing.
	sub := addr.MustParseIA("71-20")
	if err := topo.AddAS(topology.ASInfo{IA: sub}); err != nil {
		t.Fatal(err)
	}
	link(rlA, sub, topology.LinkParent)
	return topo
}

func TestRunnerFullCoverage(t *testing.T) {
	topo := runnerTopo(t)
	r := &Runner{
		Topo:      topo,
		Keys:      rkey,
		Timestamp: 500,
		Rng:       rand.New(rand.NewSource(3)),
	}
	reg, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Every core pair has core segments in both construction directions.
	for _, a := range []addr.IA{rc1, rc2, rc3} {
		for _, b := range []addr.IA{rc1, rc2, rc3} {
			if a == b {
				continue
			}
			if len(reg.Core.Get(a, b)) == 0 {
				t.Errorf("no core segment %v -> %v", a, b)
			}
		}
	}
	// The second-level leaf learned up segments through its parent, and
	// they are two-core-hop segments at least.
	sub := addr.MustParseIA("71-20")
	ups := reg.Up[sub].All()
	if len(ups) == 0 {
		t.Fatal("no up segments for the second-level leaf")
	}
	for _, s := range ups {
		if s.LastIA() != sub {
			t.Errorf("up segment ends at %v", s.LastIA())
		}
		if s.Len() < 3 {
			t.Errorf("second-level up segment with %d entries", s.Len())
		}
		if err := s.VerifyMACs(func(ia addr.IA) (scrypto.HopKey, bool) { return rkey(ia), true }); err != nil {
			t.Errorf("MACs: %v", err)
		}
	}
	// Down registry mirrors every up registration.
	if reg.Down.Len() == 0 {
		t.Error("down registry empty")
	}
}

func TestRunnerRespectsLinkState(t *testing.T) {
	topo := runnerTopo(t)
	// Cut rlB's only uplink: no up segments should be built for it.
	for _, l := range topo.LinksOf(rlB) {
		_ = topo.SetLinkUp(l.ID, false)
	}
	r := &Runner{Topo: topo, Keys: rkey, Timestamp: 1, Rng: rand.New(rand.NewSource(1))}
	reg, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Up[rlB].Len(); got != 0 {
		t.Errorf("up segments over a dead link: %d", got)
	}
	// Other ASes unaffected.
	if reg.Up[rlA].Len() == 0 {
		t.Error("rlA lost segments")
	}
}

func TestRunnerWithSigners(t *testing.T) {
	topo := runnerTopo(t)
	p, err := cppki.ProvisionISD(71, []addr.IA{rc1}, []addr.IA{rc1},
		cppki.ProvisionOptions{NotBefore: time.Now().Add(-time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	caCert, err := x509.ParseCertificate(p.CACerts[rc1].Cert)
	if err != nil {
		t.Fatal(err)
	}
	signers := make(map[addr.IA]*cppki.Signer)
	for _, as := range topo.ASes() {
		key, _ := cppki.GenerateKey()
		cert, err := cppki.NewASCert(as.IA, key.Public(), caCert, p.CACerts[rc1].Key,
			time.Now().Add(-time.Minute), time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		signers[as.IA] = &cppki.Signer{IA: as.IA, Key: key, Chain: cppki.Chain{AS: cert, CA: caCert}}
	}
	r := &Runner{
		Topo:      topo,
		Keys:      rkey,
		Signers:   func(ia addr.IA) *cppki.Signer { return signers[ia] },
		Timestamp: uint32(time.Now().Unix()),
		Rng:       rand.New(rand.NewSource(9)),
	}
	reg, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	trcs := cppki.NewStore()
	if err := trcs.AddTrusted(p.TRC, time.Now()); err != nil {
		t.Fatal(err)
	}
	for _, s := range append(reg.Core.All(), reg.Down.All()...) {
		if err := s.VerifySignatures(trcs, time.Now()); err != nil {
			t.Fatalf("segment %v signatures: %v", s, err)
		}
	}
}

func TestRunnerBoundedRounds(t *testing.T) {
	topo := runnerTopo(t)
	r := &Runner{
		Topo:      topo,
		Keys:      rkey,
		Timestamp: 1,
		MaxRounds: 1, // starves propagation
		Rng:       rand.New(rand.NewSource(1)),
	}
	reg, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	full := &Runner{Topo: topo, Keys: rkey, Timestamp: 1, Rng: rand.New(rand.NewSource(1))}
	fullReg, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}
	if reg.Core.Len() >= fullReg.Core.Len() {
		t.Errorf("bounded rounds produced %d core segments, full run %d",
			reg.Core.Len(), fullReg.Core.Len())
	}
}
