package beacon

import (
	"fmt"
	"testing"

	"sciera/internal/addr"
	"sciera/internal/scrypto"
	"sciera/internal/segment"
)

var (
	origin = addr.MustParseIA("71-1")
	mid    = addr.MustParseIA("71-2")
	leaf   = addr.MustParseIA("71-10")
)

func key(ia addr.IA) scrypto.HopKey { return scrypto.DeriveHopKey([]byte(ia.String()), 0) }

// makeSeg builds origin -> mid (-> leaf if long) with a distinguishing
// origin egress interface so the routes differ (selection deduplicates
// by route, not by accumulator).
func makeSeg(t *testing.T, route uint16, long bool) *segment.Segment {
	t.Helper()
	s, err := segment.Originate(100, 7, origin, route, mid, 5, 63, key(origin))
	if err != nil {
		t.Fatal(err)
	}
	next := addr.IA(0)
	if long {
		next = leaf
	}
	if err := s.Extend(segment.ASEntry{IA: mid, Next: next, Ingress: 2, Egress: egressFor(long), ExpTime: 63}, key(mid)); err != nil {
		t.Fatal(err)
	}
	if long {
		if err := s.Extend(segment.ASEntry{IA: leaf, Ingress: 4, ExpTime: 63}, key(leaf)); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func egressFor(long bool) uint16 {
	if long {
		return 3
	}
	return 0
}

func TestStoreInsertDedup(t *testing.T) {
	s := NewStore(4)
	seg1 := makeSeg(t, 1, false)
	if !s.Insert(seg1, 2) {
		t.Fatal("first insert rejected")
	}
	if s.Insert(seg1, 2) {
		t.Error("duplicate accepted")
	}
	if s.Len() != 1 {
		t.Errorf("len = %d", s.Len())
	}
	if got := s.Best(origin); len(got) != 1 || got[0].RecvIf != 2 {
		t.Errorf("Best = %+v", got)
	}
}

func TestStoreSelectionPrefersShort(t *testing.T) {
	s := NewStore(2)
	long1 := makeSeg(t, 1, true)
	long2 := makeSeg(t, 2, true)
	short := makeSeg(t, 3, false)
	if !s.Insert(long1, 1) || !s.Insert(long2, 1) {
		t.Fatal("inserts rejected")
	}
	// Store full of long beacons; a shorter one must displace one.
	if !s.Insert(short, 1) {
		t.Fatal("shorter beacon rejected by full store")
	}
	best := s.Best(origin)
	if len(best) != 2 {
		t.Fatalf("best = %d", len(best))
	}
	if best[0].Seg.Len() != 2 {
		t.Errorf("best beacon has %d entries, want the short one first", best[0].Seg.Len())
	}
	// Another long beacon competes only with the remaining long one
	// (same length, route-hash tie-break); whatever the outcome, the
	// short beacon stays first and the limit holds.
	long3 := makeSeg(t, 4, true)
	_ = s.Insert(long3, 1)
	best = s.Best(origin)
	if len(best) != 2 || best[0].Seg.Len() != 2 {
		t.Fatalf("selection invariants violated: %d entries, first len %d",
			len(best), best[0].Seg.Len())
	}
	// The short beacon can never be displaced by a long one.
	long4 := makeSeg(t, 5, true)
	_ = s.Insert(long4, 1)
	if s.Best(origin)[0].Seg.Len() != 2 {
		t.Error("short beacon displaced by longer one")
	}
	// Evicted beacons are re-insertable into a fresh store (the seen
	// set must not leak).
	s2 := NewStore(4)
	if !s2.Insert(long3, 1) {
		t.Error("beacon not insertable into fresh store")
	}
}

func TestStoreDefaults(t *testing.T) {
	s := NewStore(0)
	if s.limit != DefaultBestPerOrigin {
		t.Errorf("default limit = %d", s.limit)
	}
	if s.Insert(&segment.Segment{}, 0) {
		t.Error("empty segment accepted")
	}
	if s.String() == "" {
		t.Error("String empty")
	}
	all := s.All()
	if len(all) != 0 {
		t.Errorf("All on empty store = %v", all)
	}
}

func TestStorePerOriginLimits(t *testing.T) {
	s := NewStore(3)
	// Insert beacons from two different origins; limits are per origin.
	for i := 0; i < 5; i++ {
		seg, err := segment.Originate(100, 7, origin, uint16(i+1), mid, 5, 63, key(origin))
		if err != nil {
			t.Fatal(err)
		}
		if err := seg.Extend(segment.ASEntry{IA: mid, Ingress: 2, ExpTime: 63}, key(mid)); err != nil {
			t.Fatal(err)
		}
		s.Insert(seg, 1)
	}
	other := addr.MustParseIA("71-3")
	for i := 0; i < 5; i++ {
		seg, err := segment.Originate(100, 7, other, uint16(i+1), mid, 5, 63, key(other))
		if err != nil {
			t.Fatal(err)
		}
		if err := seg.Extend(segment.ASEntry{IA: mid, Ingress: 2, ExpTime: 63}, key(mid)); err != nil {
			t.Fatal(err)
		}
		s.Insert(seg, 1)
	}
	if len(s.Best(origin)) != 3 || len(s.Best(other)) != 3 {
		t.Errorf("per-origin best = %d / %d", len(s.Best(origin)), len(s.Best(other)))
	}
	if s.Len() != 6 {
		t.Errorf("total = %d", s.Len())
	}
}

func TestRunnerRequiresRng(t *testing.T) {
	r := &Runner{}
	if _, err := r.Run(); err == nil {
		t.Error("Run without Rng accepted")
	}
}

func ExampleStore() {
	s := NewStore(8)
	fmt.Println(s.Len())
	// Output: 0
}
