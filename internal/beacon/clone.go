package beacon

import (
	"sciera/internal/addr"
	"sciera/internal/pathdb"
)

// Clone returns a copy-on-write clone of the registry: every segment
// store is cloned with pathdb.CloneShared, so the clone shares the
// original's immutable segments (and index containers) until either
// side mutates. The registry IS the terminal beacon state of a
// converged network — beacon stores are ephemeral per Runner.Run — so
// cloning the registry is all a converged-state snapshot needs to hand
// a new replica the full control-plane view without re-beaconing.
//
// The clone's stores carry fresh identities, so their Stamp tokens
// never alias the original's; memoized path combinations keyed on
// stamps must be re-keyed against the clone's own stores.
func (reg *Registry) Clone() *Registry {
	c := &Registry{
		Up:   make(map[addr.IA]*pathdb.DB, len(reg.Up)),
		Core: reg.Core.CloneShared(),
		Down: reg.Down.CloneShared(),
	}
	for ia, db := range reg.Up {
		c.Up[ia] = db.CloneShared()
	}
	return c
}
