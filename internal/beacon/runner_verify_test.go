package beacon

import (
	"crypto/x509"
	"math/rand"
	"testing"
	"time"

	"sciera/internal/addr"
	"sciera/internal/cppki"
	"sciera/internal/pathdb"
	"sciera/internal/telemetry"
	"sciera/internal/topology"
)

// provisionRunnerPKI issues a signer for every AS in topo (rc1 is the
// single CA). ASes listed in rogue get a chain from a self-signed CA
// that is not anchored in the TRC: their signatures are well-formed but
// unverifiable.
func provisionRunnerPKI(t testing.TB, topo *topology.Topology, rogue ...addr.IA) (SignerProvider, *cppki.Store, time.Time) {
	t.Helper()
	now := time.Unix(1_737_000_000, 0)
	p, err := cppki.ProvisionISD(71, []addr.IA{rc1}, []addr.IA{rc1},
		cppki.ProvisionOptions{NotBefore: now.Add(-time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	caCert, err := x509.ParseCertificate(p.CACerts[rc1].Cert)
	if err != nil {
		t.Fatal(err)
	}
	// An unanchored CA for rogue ASes, from a foreign provisioning run.
	q, err := cppki.ProvisionISD(71, []addr.IA{rc1}, []addr.IA{rc1},
		cppki.ProvisionOptions{NotBefore: now.Add(-time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	rogueCA, err := x509.ParseCertificate(q.CACerts[rc1].Cert)
	if err != nil {
		t.Fatal(err)
	}
	isRogue := func(ia addr.IA) bool {
		for _, r := range rogue {
			if r == ia {
				return true
			}
		}
		return false
	}
	signers := make(map[addr.IA]*cppki.Signer)
	for _, as := range topo.ASes() {
		ca, caKey := caCert, p.CACerts[rc1].Key
		if isRogue(as.IA) {
			ca, caKey = rogueCA, q.CACerts[rc1].Key
		}
		key, _ := cppki.GenerateKey()
		cert, err := cppki.NewASCert(as.IA, key.Public(), ca, caKey, now.Add(-time.Minute), 72*time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		signers[as.IA] = &cppki.Signer{IA: as.IA, Key: key, Chain: cppki.Chain{AS: cert, CA: ca}}
	}
	trcs := cppki.NewStore()
	if err := trcs.AddTrusted(p.TRC, now); err != nil {
		t.Fatal(err)
	}
	return func(ia addr.IA) *cppki.Signer { return signers[ia] }, trcs, now
}

// routeIDs is a signature-independent fingerprint of a registry's
// contents (signatures use crypto/rand, so raw bytes differ run to run).
// pathdb.All returns segments in segment-ID order, so no re-sort is
// needed for the fingerprint to be comparable across runs.
func routeIDs(db *pathdb.DB) []string {
	out := make([]string, 0, db.Len())
	for _, s := range db.All() {
		out = append(out, s.RouteID())
	}
	return out
}

func registryFingerprint(reg *Registry) map[string][]string {
	fp := map[string][]string{
		"core": routeIDs(reg.Core),
		"down": routeIDs(reg.Down),
	}
	for ia, db := range reg.Up {
		fp["up/"+ia.String()] = routeIDs(db)
	}
	return fp
}

func equalFingerprints(t *testing.T, a, b map[string][]string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("registry key sets differ: %d vs %d", len(a), len(b))
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || len(av) != len(bv) {
			t.Fatalf("registry %s differs: %d vs %d segments", k, len(av), len(bv))
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("registry %s route %d: %s vs %s", k, i, av[i], bv[i])
			}
		}
	}
}

// TestRunnerVerifyOnReceipt: with an honest PKI, verify-on-receipt
// admits exactly the beacons an unverified signed run admits, counts
// every receipt as verified, and observes verification latency.
func TestRunnerVerifyOnReceipt(t *testing.T) {
	topo := runnerTopo(t)
	signers, trcs, now := provisionRunnerPKI(t, topo)

	signedOnly := &Runner{
		Topo: topo, Keys: rkey, Signers: signers,
		Timestamp: uint32(now.Unix()), Rng: rand.New(rand.NewSource(9)),
	}
	baseline, err := signedOnly.Run()
	if err != nil {
		t.Fatal(err)
	}

	metrics := &RunnerMetrics{VerifyLatency: telemetry.NewHistogram(0.01, 0.1, 1, 10)}
	verified := &Runner{
		Topo: topo, Keys: rkey, Signers: signers,
		TRCs: trcs, Chains: cppki.NewChainCache(), VerifyAt: now,
		Timestamp: uint32(now.Unix()), Rng: rand.New(rand.NewSource(9)),
		Metrics: metrics,
	}
	reg, err := verified.Run()
	if err != nil {
		t.Fatal(err)
	}

	equalFingerprints(t, registryFingerprint(baseline), registryFingerprint(reg))
	if metrics.Verified.Load() == 0 {
		t.Error("no beacons counted as verified")
	}
	if got := metrics.VerifyFailed.Load(); got != 0 {
		t.Errorf("honest network had %d verification failures", got)
	}
	if metrics.VerifyLatency.Count() != metrics.Verified.Load()+metrics.VerifyFailed.Load() {
		t.Errorf("latency observations %d != receipts %d",
			metrics.VerifyLatency.Count(), metrics.Verified.Load())
	}
}

// TestRunnerRejectsUnverifiableAS: an AS whose chain is not anchored in
// the TRC can receive beacons (its neighbors' signatures verify) but
// nothing it extends survives verification downstream — propagation
// fails closed at the next hop.
func TestRunnerRejectsUnverifiableAS(t *testing.T) {
	topo := runnerTopo(t)
	signers, trcs, now := provisionRunnerPKI(t, topo, rlA)
	metrics := &RunnerMetrics{}
	r := &Runner{
		Topo: topo, Keys: rkey, Signers: signers,
		TRCs: trcs, Chains: cppki.NewChainCache(), VerifyAt: now,
		Timestamp: uint32(now.Unix()), Rng: rand.New(rand.NewSource(9)),
		Metrics: metrics,
	}
	reg, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// rlA itself still receives verified beacons from its honest parent.
	if reg.Up[rlA].Len() == 0 {
		t.Error("rlA registered no up segments")
	}
	// Its child must reject everything rlA extends.
	sub := addr.MustParseIA("71-20")
	if got := reg.Up[sub].Len(); got != 0 {
		t.Errorf("child of rogue AS registered %d up segments", got)
	}
	if metrics.VerifyFailed.Load() == 0 {
		t.Error("no verification failures recorded for rogue extensions")
	}
	// The unrelated leaf is unaffected.
	if reg.Up[rlB].Len() == 0 {
		t.Error("rlB lost segments")
	}
}

// TestRunnerVerifyWorkerDeterminism: registry contents are independent
// of the verification worker count.
func TestRunnerVerifyWorkerDeterminism(t *testing.T) {
	topo := runnerTopo(t)
	signers, trcs, now := provisionRunnerPKI(t, topo)
	run := func(workers int) map[string][]string {
		r := &Runner{
			Topo: topo, Keys: rkey, Signers: signers,
			TRCs: trcs, Chains: cppki.NewChainCache(), VerifyAt: now,
			VerifyWorkers: workers,
			Timestamp:     uint32(now.Unix()), Rng: rand.New(rand.NewSource(4)),
		}
		reg, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return registryFingerprint(reg)
	}
	base := run(1)
	for _, w := range []int{2, 4, 13} {
		equalFingerprints(t, base, run(w))
	}
}

// BenchmarkSignedBeaconRun compares a full beaconing run over the test
// topology: unsigned, signed (sign-only, the previous campaign mode),
// signed with verify-on-receipt and a per-run chain cache (the cache
// warms within the run — the few distinct chains repeat across many
// receipts), and signed with a cache shared across runs, as campaign
// refreshes share their replica's cache.
func BenchmarkSignedBeaconRun(b *testing.B) {
	topo := runnerTopo(b)
	signers, trcs, now := provisionRunnerPKI(b, topo)

	run := func(b *testing.B, signers SignerProvider, trcs *cppki.Store, chains func() *cppki.ChainCache) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := &Runner{
				Topo: topo, Keys: rkey, Signers: signers,
				TRCs: trcs, VerifyAt: now,
				Timestamp: uint32(now.Unix()), Rng: rand.New(rand.NewSource(7)),
			}
			if chains != nil {
				r.Chains = chains()
			}
			if _, err := r.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("unsigned", func(b *testing.B) { run(b, nil, nil, nil) })
	b.Run("signed", func(b *testing.B) { run(b, signers, nil, nil) })
	b.Run("signed-verify", func(b *testing.B) { run(b, signers, trcs, cppki.NewChainCache) })
	b.Run("signed-verify-shared", func(b *testing.B) {
		shared := cppki.NewChainCache()
		run(b, signers, trcs, func() *cppki.ChainCache { return shared })
	})
}
