package beacon

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"sciera/internal/addr"
	"sciera/internal/cppki"
	"sciera/internal/pathdb"
	"sciera/internal/scrypto"
	"sciera/internal/segment"
	"sciera/internal/telemetry"
	"sciera/internal/topology"
)

// RunnerMetrics counts beaconing outcomes. A control-plane refresh
// reuses the same cells, so the counters accumulate across rounds as a
// periodically-beaconing deployment's would.
type RunnerMetrics struct {
	// Originated counts PCBs created at core ASes.
	Originated telemetry.Counter
	// Propagated counts beacon extensions sent onward to a neighbor.
	Propagated telemetry.Counter
	// Filtered counts candidate extensions suppressed by policy: loop
	// avoidance, the no-commercial-transit rule, down links, and
	// beacon-store rejections.
	Filtered telemetry.Counter
	// Pruned counts accepted beacons suppressed from re-propagation by
	// the best-K selection bound (they stay registrable locally).
	Pruned telemetry.Counter
	// Registered counts beacons terminated into registered segments.
	Registered telemetry.Counter
	// Verified counts received beacons whose signatures verified on
	// receipt (verify-on-receipt runs only when the runner has TRCs).
	Verified telemetry.Counter
	// VerifyFailed counts received beacons dropped because signature
	// verification failed.
	VerifyFailed telemetry.Counter
	// VerifyLatency optionally records per-beacon verification wall time
	// in milliseconds; nil disables the measurement.
	VerifyLatency *telemetry.Histogram
}

// Register adopts the cells into a registry.
func (m *RunnerMetrics) Register(reg *telemetry.Registry) {
	reg.RegisterCounter("sciera_beacon_originated_total", "PCBs originated at core ASes", &m.Originated)
	reg.RegisterCounter("sciera_beacon_propagated_total", "beacon extensions propagated to neighbors", &m.Propagated)
	reg.RegisterCounter("sciera_beacon_filtered_total", "beacon extensions suppressed by policy or store", &m.Filtered)
	reg.RegisterCounter("sciera_beacon_pruned_total", "accepted beacons not re-propagated due to the best-K bound", &m.Pruned)
	reg.RegisterCounter("sciera_beacon_registered_total", "beacons terminated into registered segments", &m.Registered)
	reg.RegisterCounter("sciera_beacon_verified_total", "received beacons whose signatures verified on receipt", &m.Verified)
	reg.RegisterCounter("sciera_beacon_verify_failed_total", "received beacons dropped on signature verification failure", &m.VerifyFailed)
	if m.VerifyLatency != nil {
		reg.RegisterHistogram("sciera_beacon_verify_latency_ms", "per-beacon signature verification wall time (ms)", m.VerifyLatency)
	}
}

// KeyProvider resolves an AS's hop-field key. In the real deployment
// each AS only knows its own key; the runner is a whole-network driver,
// so it gets a resolver.
type KeyProvider func(ia addr.IA) scrypto.HopKey

// SignerProvider resolves the AS's control-plane signer; returning nil
// disables signing (simulation-scale campaigns skip the per-entry ECDSA
// cost, the live network signs everything).
type SignerProvider func(ia addr.IA) *cppki.Signer

// Runner executes deterministic synchronous beaconing rounds over a
// topology, producing the segment registries the path lookup
// infrastructure serves. The control service drives the same logic over
// real messages; the runner is used at network bring-up and by the
// discrete-event campaigns, where re-running it after every topology
// change recomputes the control-plane state (as the periodic PCB
// origination interval would).
type Runner struct {
	Topo    *topology.Topology
	Keys    KeyProvider
	Signers SignerProvider // optional
	// Timestamp stamps originated segments (Unix seconds).
	Timestamp uint32
	// BestPerOrigin bounds beacon stores (DefaultBestPerOrigin if 0).
	BestPerOrigin int
	// PropagateBestK bounds how many same-origin beacons one AS
	// re-propagates per round, selected by SelectBestK
	// (DefaultPropagateBestK if 0, unbounded if negative). Accepted
	// beacons beyond the bound stay in the store — registrable, just not
	// flooded onward.
	PropagateBestK int
	// RegisterBestK bounds how many stored beacons per origin an AS
	// terminates into registered segments, selected by SelectBestK
	// (the store bound if 0 — i.e. register everything kept — unbounded
	// if negative).
	RegisterBestK int
	// MaxRounds bounds propagation (default: #ASes + 2).
	MaxRounds int
	// ExpTime is the relative hop expiry (default 63 ≈ 6h).
	ExpTime uint8
	// Rng drives beta0 randomization; required for determinism.
	Rng *rand.Rand
	// Metrics receives beaconing counters; nil allocates private ones.
	Metrics *RunnerMetrics
	// TRCs enables verify-on-receipt: when set (alongside Signers), every
	// received beacon's entry signatures are verified against the ISD TRC
	// before it is admitted to a beacon store, and unverifiable beacons
	// are dropped. Matches the deployment, where an AS never extends a
	// beacon it cannot verify.
	TRCs *cppki.Store
	// Chains optionally memoizes verified certificate chains across
	// receipts (shared with other runners/refreshes for a warm cache).
	Chains *cppki.ChainCache
	// VerifyWorkers bounds the verification worker pool (GOMAXPROCS if
	// 0). Registry contents are identical at any worker count.
	VerifyWorkers int
	// VerifyAt is the PKI validity instant for verification; zero means
	// the segment origination timestamp.
	VerifyAt time.Time

	// verifier is built per Run when verify-on-receipt is enabled; its
	// signature memo makes repeat prefixes (the common case in beacon
	// fan-out) cost one hash instead of one ECDSA verify per entry.
	verifier *segment.Verifier
}

// flight is one beacon crossing one link: the segment as prepared by the
// sender, the link it crosses, and the receiving AS.
type flight struct {
	seg *segment.Segment
	l   *topology.Link
	to  addr.IA
}

// Registry holds the outcome of a beaconing run: the segment databases
// that the path-lookup infrastructure serves.
type Registry struct {
	// Up holds, per non-core AS, the up segments it registered locally
	// (stored as Down-type segments: core → AS).
	Up map[addr.IA]*pathdb.DB
	// Core holds core segments (origin core → terminating core),
	// queryable at any core control service.
	Core *pathdb.DB
	// Down holds down segments registered at the core path server
	// infrastructure, keyed by (origin core, leaf).
	Down *pathdb.DB
}

// Run performs core beaconing and intra-ISD (down) beaconing to a fixed
// point and returns the resulting registries.
func (r *Runner) Run() (*Registry, error) {
	if r.Rng == nil {
		return nil, fmt.Errorf("beacon: Runner requires an explicit Rng")
	}
	if r.ExpTime == 0 {
		r.ExpTime = 63
	}
	if r.MaxRounds == 0 {
		r.MaxRounds = len(r.Topo.ASes()) + 2
	}
	if r.Metrics == nil {
		r.Metrics = &RunnerMetrics{}
	}
	if r.TRCs != nil {
		at := r.VerifyAt
		if at.IsZero() {
			at = time.Unix(int64(r.Timestamp), 0)
		}
		r.verifier = segment.NewVerifier(r.TRCs, r.Chains, at)
	}
	reg := &Registry{
		Up:   make(map[addr.IA]*pathdb.DB),
		Core: pathdb.New(),
		Down: pathdb.New(),
	}
	for _, as := range r.Topo.ASes() {
		if !as.Core {
			reg.Up[as.IA] = pathdb.New()
		}
	}
	if err := r.runCore(reg); err != nil {
		return nil, err
	}
	if err := r.runDown(reg); err != nil {
		return nil, err
	}
	return reg, nil
}

// originate creates a fresh PCB leaving origin over link l.
func (r *Runner) originate(origin addr.IA, l *topology.Link) (*segment.Segment, error) {
	local, _ := l.Local(origin)
	remote, _ := l.Other(origin)
	seg, err := segment.Originate(r.Timestamp, uint16(r.Rng.Intn(1<<16)), origin,
		local.IfID, remote.IA, l.LatencyMS, r.ExpTime, r.Keys(origin))
	if err != nil {
		return nil, err
	}
	if r.Signers != nil {
		if signer := r.Signers(origin); signer != nil {
			if err := seg.SignLast(signer); err != nil {
				return nil, err
			}
		}
	}
	return seg, nil
}

// verifyFlights checks the signatures of every in-flight beacon for a
// round, fanned out over a bounded worker pool. Verdict i is always for
// flight i, and the caller consumes verdicts in flight order, so the
// admitted beacon set — and therefore every registry — is identical at
// any worker count.
func (r *Runner) verifyFlights(flights []flight) []error {
	verdicts := make([]error, len(flights))
	verify := func(i int) {
		start := time.Now()
		verdicts[i] = r.verifier.Verify(flights[i].seg)
		if r.Metrics.VerifyLatency != nil {
			r.Metrics.VerifyLatency.Observe(float64(time.Since(start)) / float64(time.Millisecond))
		}
	}
	w := r.VerifyWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(flights) {
		w = len(flights)
	}
	if w <= 1 {
		for i := range flights {
			verify(i)
		}
		return verdicts
	}
	var wg sync.WaitGroup
	for s := 0; s < w; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := s; i < len(flights); i += w {
				verify(i)
			}
		}(s)
	}
	wg.Wait()
	return verdicts
}

// admit applies the round's verification verdict for flight i, counting
// the outcome. It reports whether the beacon may enter the store.
func (r *Runner) admit(verdicts []error, i int) bool {
	if verdicts == nil {
		return true
	}
	if verdicts[i] != nil {
		r.Metrics.VerifyFailed.Inc()
		return false
	}
	r.Metrics.Verified.Inc()
	return true
}

// groupKey identifies one best-K selection group: the beacons one AS
// accepted from one origin within a single round.
type groupKey struct{ to, origin addr.IA }

// propagateK resolves the effective per-round propagation bound.
func (r *Runner) propagateK() int {
	switch {
	case r.PropagateBestK < 0:
		return 0
	case r.PropagateBestK == 0:
		return DefaultPropagateBestK
	default:
		return r.PropagateBestK
	}
}

// registerK resolves the effective per-origin registration bound.
func (r *Runner) registerK() int {
	switch {
	case r.RegisterBestK < 0:
		return 0
	case r.RegisterBestK == 0:
		if r.BestPerOrigin > 0 {
			return r.BestPerOrigin
		}
		return DefaultBestPerOrigin
	default:
		return r.RegisterBestK
	}
}

// pruneGroups clears the accepted bit of beacons beyond the best-K
// propagation bound, per (receiving AS, origin) group. Groups at or
// under the bound are untouched, so on topologies that never exceed it
// (the SCIERA reference graph) the propagation schedule is bit-identical
// to unbounded flooding.
func (r *Runner) pruneGroups(flights []flight, recvIf []uint16, accepted []bool, groups map[groupKey][]int) {
	k := r.propagateK()
	if k <= 0 {
		return
	}
	for _, idxs := range groups {
		if len(idxs) <= k {
			continue
		}
		entries := make([]*Entry, len(idxs))
		for j, i := range idxs {
			entries[j] = &Entry{Seg: flights[i].seg, RecvIf: recvIf[i]}
		}
		keep := make(map[string]bool, k)
		for _, e := range SelectBestK(entries, k) {
			keep[e.Seg.RouteID()] = true
		}
		for _, i := range idxs {
			if !keep[flights[i].seg.RouteID()] {
				accepted[i] = false
				r.Metrics.Pruned.Inc()
			}
		}
	}
}

// extend appends the entry of 'at' to a received beacon and prepares it
// to leave over link out (or terminate if out is nil).
func (r *Runner) extend(seg *segment.Segment, at addr.IA, inIf uint16, out *topology.Link) (*segment.Segment, error) {
	// Copy-on-write: the clone shares the parent's entry array; the
	// capacity clamp makes Extend's append copy into an owned array, so
	// sibling extensions of one received beacon never alias.
	ext := seg.CloneForExtend()
	e := segment.ASEntry{IA: at, Ingress: inIf, ExpTime: r.ExpTime}
	if out != nil {
		local, _ := out.Local(at)
		remote, _ := out.Other(at)
		e.Egress = local.IfID
		e.Next = remote.IA
		e.LinkLatencyMS = out.LatencyMS
	}
	if info, ok := r.Topo.AS(at); ok {
		e.MTU = info.MTU
	}
	if err := ext.Extend(e, r.Keys(at)); err != nil {
		return nil, err
	}
	// Advertise peering links so the combinator can build peer
	// shortcuts. The peer-crossing MAC covers the accumulator after
	// this AS's own entry.
	appended := &ext.ASEntries[len(ext.ASEntries)-1]
	for _, pl := range r.Topo.UpLinksOf(at) {
		if pl.Type != topology.LinkPeer {
			continue
		}
		local, _ := pl.Local(at)
		remote, _ := pl.Other(at)
		mac, err := scrypto.ComputeHopMAC(r.Keys(at), scrypto.HopMACInput{
			Beta:        ext.BetaFinal(),
			Timestamp:   ext.Timestamp,
			ExpTime:     r.ExpTime,
			ConsIngress: local.IfID,
			ConsEgress:  appended.Egress,
		})
		if err != nil {
			return nil, err
		}
		appended.Peers = append(appended.Peers, segment.PeerEntry{
			Peer:          remote.IA,
			PeerIf:        remote.IfID,
			LocalIf:       local.IfID,
			LinkLatencyMS: pl.LatencyMS,
			ExpTime:       r.ExpTime,
			MAC:           mac,
		})
	}
	if r.Signers != nil {
		if signer := r.Signers(at); signer != nil {
			if err := ext.SignLast(signer); err != nil {
				return nil, err
			}
		}
	}
	return ext, nil
}

// runCore floods core PCBs across the core mesh. Every core AS
// accumulates beacons from every other core origin; terminating a beacon
// registers a core segment origin→self.
func (r *Runner) runCore(reg *Registry) error {
	cores := r.Topo.CoreASes()
	stores := make(map[addr.IA]*Store, len(cores))
	for _, ia := range cores {
		stores[ia] = NewStore(r.BestPerOrigin)
	}

	var flights []flight

	commercial := func(ia addr.IA) bool {
		info, ok := r.Topo.AS(ia)
		return ok && info.Commercial
	}

	// Origination: one PCB per core link direction.
	for _, origin := range cores {
		for _, l := range r.Topo.UpLinksOf(origin) {
			if l.Type != topology.LinkCore {
				continue
			}
			seg, err := r.originate(origin, l)
			if err != nil {
				return err
			}
			r.Metrics.Originated.Inc()
			other, _ := l.Other(origin)
			flights = append(flights, flight{seg: seg, l: l, to: other.IA})
		}
	}

	for round := 0; round < r.MaxRounds && len(flights) > 0; round++ {
		var verdicts []error
		if r.verifier != nil {
			verdicts = r.verifyFlights(flights)
		}
		// Insert phase: admit every verified flight into its receiver's
		// store, grouping acceptances by (receiver, origin) for best-K
		// selection. Store inserts run in flight order, exactly as the
		// interleaved loop did.
		accepted := make([]bool, len(flights))
		recvIf := make([]uint16, len(flights))
		groups := make(map[groupKey][]int)
		for i, f := range flights {
			inEnd, _ := f.l.Other(f.seg.ASEntries[len(f.seg.ASEntries)-1].IA)
			if inEnd.IA != f.to {
				return fmt.Errorf("beacon: internal: flight misrouted")
			}
			recvIf[i] = inEnd.IfID
			if !r.admit(verdicts, i) {
				continue
			}
			if !stores[f.to].Insert(f.seg, inEnd.IfID) {
				r.Metrics.Filtered.Inc()
				continue
			}
			accepted[i] = true
			groups[groupKey{f.to, f.seg.FirstIA()}] = append(groups[groupKey{f.to, f.seg.FirstIA()}], i)
		}
		// Selection phase: bound what each AS floods onward per origin.
		r.pruneGroups(flights, recvIf, accepted, groups)
		// Extension phase: propagate the survivors over every other up
		// core link whose far end is not already on the path, in the
		// original flight order.
		var next []flight
		for i, f := range flights {
			if !accepted[i] {
				continue
			}
			for _, l := range r.Topo.UpLinksOf(f.to) {
				if l.Type != topology.LinkCore || l.ID == f.l.ID {
					continue
				}
				other, _ := l.Other(f.to)
				if f.seg.ContainsIA(other.IA) {
					r.Metrics.Filtered.Inc()
					continue
				}
				// No-commercial-transit policy (Section 4.9): a beacon
				// originated by a commercial provider may terminate at
				// another commercial provider, but the academic
				// network never advertises paths that would carry
				// commercial-to-commercial transit. Such a beacon is
				// registrable at f.to but not extended further toward
				// commercial peers.
				if commercial(f.seg.FirstIA()) && commercial(other.IA) {
					r.Metrics.Filtered.Inc()
					continue
				}
				ext, err := r.extend(f.seg, f.to, recvIf[i], l)
				if err != nil {
					return err
				}
				r.Metrics.Propagated.Inc()
				next = append(next, flight{seg: ext, l: l, to: other.IA})
			}
		}
		flights = next
	}

	// Registration: terminate every stored beacon into a core segment.
	// Stored beacons were verified on receipt (when enabled); the
	// terminating extension is the registering AS's own, so no re-verify.
	for ia, store := range stores {
		for _, es := range store.All() {
			for _, e := range SelectBestK(es, r.registerK()) {
				term, err := r.extend(e.Seg, ia, e.RecvIf, nil)
				if err != nil {
					return err
				}
				r.Metrics.Registered.Inc()
				reg.Core.Insert(term)
			}
		}
	}
	return nil
}

// runDown floods intra-ISD PCBs from core ASes down parent links. Every
// non-core AS registers terminated beacons locally (up segments) and at
// the origin core's path server (down segments) — in this whole-network
// driver both registries are views over the same segment set.
func (r *Runner) runDown(reg *Registry) error {
	var flights []flight
	stores := make(map[addr.IA]*Store)
	for _, as := range r.Topo.ASes() {
		if !as.Core {
			stores[as.IA] = NewStore(r.BestPerOrigin)
		}
	}

	for _, origin := range r.Topo.CoreASes() {
		for _, l := range r.Topo.Children(origin) {
			if !r.Topo.LinkUp(l.ID) {
				r.Metrics.Filtered.Inc()
				continue
			}
			seg, err := r.originate(origin, l)
			if err != nil {
				return err
			}
			r.Metrics.Originated.Inc()
			flights = append(flights, flight{seg: seg, l: l, to: l.B.IA})
		}
	}

	for round := 0; round < r.MaxRounds && len(flights) > 0; round++ {
		var verdicts []error
		if r.verifier != nil {
			verdicts = r.verifyFlights(flights)
		}
		// Same three phases as runCore: insert, best-K selection per
		// (receiver, origin), then extension in original flight order.
		accepted := make([]bool, len(flights))
		recvIf := make([]uint16, len(flights))
		groups := make(map[groupKey][]int)
		for i, f := range flights {
			local, _ := f.l.Local(f.to)
			recvIf[i] = local.IfID
			if !r.admit(verdicts, i) {
				continue
			}
			if !stores[f.to].Insert(f.seg, local.IfID) {
				r.Metrics.Filtered.Inc()
				continue
			}
			accepted[i] = true
			groups[groupKey{f.to, f.seg.FirstIA()}] = append(groups[groupKey{f.to, f.seg.FirstIA()}], i)
		}
		r.pruneGroups(flights, recvIf, accepted, groups)
		var next []flight
		for i, f := range flights {
			if !accepted[i] {
				continue
			}
			for _, l := range r.Topo.Children(f.to) {
				if !r.Topo.LinkUp(l.ID) {
					r.Metrics.Filtered.Inc()
					continue
				}
				if f.seg.ContainsIA(l.B.IA) {
					r.Metrics.Filtered.Inc()
					continue
				}
				ext, err := r.extend(f.seg, f.to, recvIf[i], l)
				if err != nil {
					return err
				}
				r.Metrics.Propagated.Inc()
				next = append(next, flight{seg: ext, l: l, to: l.B.IA})
			}
		}
		flights = next
	}

	for ia, store := range stores {
		for _, es := range store.All() {
			for _, e := range SelectBestK(es, r.registerK()) {
				term, err := r.extend(e.Seg, ia, e.RecvIf, nil)
				if err != nil {
					return err
				}
				r.Metrics.Registered.Inc()
				reg.Up[ia].Insert(term)
				reg.Down.Insert(term)
			}
		}
	}
	return nil
}
