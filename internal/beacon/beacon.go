// Package beacon implements SCION path exploration ("beaconing"): core
// ASes originate path-construction beacons (PCBs), neighbors extend and
// re-propagate them, and every AS keeps a bounded store of the best
// beacons per origin. Terminating a stored beacon yields a registrable
// path segment.
package beacon

import (
	"fmt"
	"sort"
	"sync"

	"sciera/internal/addr"
	"sciera/internal/segment"
)

// DefaultBestPerOrigin bounds how many beacons an AS keeps per origin
// core AS. Higher values increase path diversity at the cost of control
// plane state — SCIERA tunes this up to surface its multipath richness
// (Figure 8 reports up to 113 active paths for one AS pair).
const DefaultBestPerOrigin = 24

// DefaultMaxExtraLen bounds how much longer than the shortest known
// beacon a kept beacon may be (in AS hops). Without it, selection
// retains around-the-globe detours whose distant-link failures would
// perturb path sets between unrelated ASes.
const DefaultMaxExtraLen = 3

// Entry is a stored beacon: the segment as received plus the ingress
// interface it arrived on.
type Entry struct {
	Seg    *segment.Segment
	RecvIf uint16
}

// Store keeps the best beacons per origin core AS. It is safe for
// concurrent use.
type Store struct {
	mu       sync.RWMutex
	limit    int
	extraLen int
	byOrigin map[addr.IA][]*Entry
	seen     map[string]bool
}

// NewStore creates a beacon store keeping up to limit beacons per origin
// (DefaultBestPerOrigin when limit <= 0), each within DefaultMaxExtraLen
// hops of the shortest kept beacon.
func NewStore(limit int) *Store {
	if limit <= 0 {
		limit = DefaultBestPerOrigin
	}
	return &Store{
		limit:    limit,
		extraLen: DefaultMaxExtraLen,
		byOrigin: make(map[addr.IA][]*Entry),
		seen:     make(map[string]bool),
	}
}

// Insert adds a beacon if it improves the per-origin selection. It
// returns true when the beacon was newly accepted (and should therefore
// be propagated further). Beacons are identified by their route (AS and
// interface sequence): a re-beaconed segment over a known route
// replaces nothing and is not re-propagated, keeping selection — and
// therefore the network's path sets — stable across beacon intervals.
func (s *Store) Insert(seg *segment.Segment, recvIf uint16) bool {
	if seg.Len() == 0 {
		return false
	}
	id := seg.RouteID()
	origin := seg.FirstIA()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seen[id] {
		return false
	}
	entries := append(s.byOrigin[origin], &Entry{Seg: seg, RecvIf: recvIf})
	sortEntries(entries)
	// Enforce the per-origin count limit and the relative length
	// window (entries are sorted shortest-first).
	accepted := true
	maxLen := entries[0].Seg.Len() + s.extraLen
	kept := entries[:0]
	for _, e := range entries {
		if len(kept) >= s.limit || e.Seg.Len() > maxLen {
			if e.Seg.RouteID() == id {
				accepted = false
			} else {
				delete(s.seen, e.Seg.RouteID())
			}
			continue
		}
		kept = append(kept, e)
	}
	s.byOrigin[origin] = kept
	if accepted {
		s.seen[id] = true
	}
	return accepted
}

// sortEntries ranks beacons: shorter AS paths first, then by the stable
// route identifier so selection is deterministic across re-beaconing.
// Keeping several short-but-distinct beacons (rather than one) is what
// preserves multipath choice.
func sortEntries(entries []*Entry) {
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i].Seg, entries[j].Seg
		if a.Len() != b.Len() {
			return a.Len() < b.Len()
		}
		return a.RouteID() < b.RouteID()
	})
}

// Best returns the stored beacons for one origin, best first.
func (s *Store) Best(origin addr.IA) []*Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*Entry(nil), s.byOrigin[origin]...)
}

// All returns every stored beacon grouped by origin.
func (s *Store) All() map[addr.IA][]*Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[addr.IA][]*Entry, len(s.byOrigin))
	for ia, es := range s.byOrigin {
		out[ia] = append([]*Entry(nil), es...)
	}
	return out
}

// Len returns the total number of stored beacons.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, es := range s.byOrigin {
		n += len(es)
	}
	return n
}

func (s *Store) String() string {
	return fmt.Sprintf("beacon.Store{%d beacons}", s.Len())
}
