package beacon

import (
	"math/rand"
	"testing"

	"sciera/internal/addr"
	"sciera/internal/topology"
)

// TestNoCommercialTransit verifies the Section 4.9 path policy: traffic
// from a commercial provider may terminate inside the research network,
// but no advertised path carries commercial-to-commercial transit
// through it.
func TestNoCommercialTransit(t *testing.T) {
	// commA === academic === commB   (all core)
	topo := topology.New()
	commA := addr.MustParseIA("64-100")
	commB := addr.MustParseIA("64-200")
	academic := addr.MustParseIA("71-1")
	leaf := addr.MustParseIA("71-10")
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(topo.AddAS(topology.ASInfo{IA: commA, Core: true, Commercial: true}))
	must(topo.AddAS(topology.ASInfo{IA: commB, Core: true, Commercial: true}))
	must(topo.AddAS(topology.ASInfo{IA: academic, Core: true}))
	must(topo.AddAS(topology.ASInfo{IA: leaf}))
	link := func(a, b addr.IA, typ topology.LinkType) {
		_, err := topo.AddLink(topology.LinkEnd{IA: a}, topology.LinkEnd{IA: b}, typ, 5, "")
		must(err)
	}
	link(commA, academic, topology.LinkCore)
	link(academic, commB, topology.LinkCore)
	link(academic, leaf, topology.LinkParent)

	r := &Runner{Topo: topo, Keys: rkey, Timestamp: 9, Rng: rand.New(rand.NewSource(2))}
	reg, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Traffic terminating in the research network is fine: commA can
	// reach the academic core and its leaf.
	if len(reg.Core.Get(commA, academic)) == 0 {
		t.Error("commercial origin cannot terminate at the academic core")
	}
	if len(reg.Down.Get(0, leaf)) == 0 {
		t.Error("no down segments for the academic leaf")
	}

	// But no core segment connects the two commercial providers through
	// the academic AS, in either construction direction.
	if got := reg.Core.Get(commA, commB); len(got) != 0 {
		t.Errorf("commercial transit advertised: %d segments commA->commB", len(got))
	}
	if got := reg.Core.Get(commB, commA); len(got) != 0 {
		t.Errorf("commercial transit advertised: %d segments commB->commA", len(got))
	}

	// Control: without the Commercial flags, the same topology does
	// advertise the transit path.
	open := topology.New()
	must(open.AddAS(topology.ASInfo{IA: commA, Core: true}))
	must(open.AddAS(topology.ASInfo{IA: commB, Core: true}))
	must(open.AddAS(topology.ASInfo{IA: academic, Core: true}))
	must(open.AddAS(topology.ASInfo{IA: leaf}))
	linkOpen := func(a, b addr.IA, typ topology.LinkType) {
		_, err := open.AddLink(topology.LinkEnd{IA: a}, topology.LinkEnd{IA: b}, typ, 5, "")
		must(err)
	}
	linkOpen(commA, academic, topology.LinkCore)
	linkOpen(academic, commB, topology.LinkCore)
	linkOpen(academic, leaf, topology.LinkParent)
	r2 := &Runner{Topo: open, Keys: rkey, Timestamp: 9, Rng: rand.New(rand.NewSource(2))}
	reg2, err := r2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(reg2.Core.Get(commA, commB)) == 0 {
		t.Error("control topology should advertise the transit path")
	}
}
