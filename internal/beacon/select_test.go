package beacon

import (
	"math/rand"
	"testing"

	"sciera/internal/addr"
	"sciera/internal/cppki"
	"sciera/internal/scrypto"
	"sciera/internal/segment"
	"sciera/internal/topology"
)

// routeSeg builds a beacon-like segment visiting the given ASes.
func routeSeg(t *testing.T, ts uint32, beta uint16, ias ...addr.IA) *segment.Segment {
	t.Helper()
	key := scrypto.DeriveHopKey([]byte("sel"), 0)
	s, err := segment.Originate(ts, beta, ias[0], 1, ias[1], 5, 63, key)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ias); i++ {
		e := segment.ASEntry{IA: ias[i], Ingress: 2, ExpTime: 63}
		if i < len(ias)-1 {
			e.Egress = 3
			e.Next = ias[i+1]
		}
		if err := s.Extend(e, key); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestSelectBestK pins the selection policy: groups within the bound
// pass through untouched (same slice, same order); larger groups are
// pruned deterministically regardless of input order, keeping the
// shortest candidate and preferring disjoint alternatives over
// same-length overlapping ones.
func TestSelectBestK(t *testing.T) {
	ia := func(as addr.AS) addr.IA { return addr.MustIA(71, as) }
	origin := ia(1)
	short := routeSeg(t, 100, 1, origin, ia(2))                  // 2 hops
	overlapA := routeSeg(t, 100, 2, origin, ia(3), ia(4))        // via 3
	overlapB := routeSeg(t, 100, 3, origin, ia(3), ia(5), ia(4)) // via 3, longer
	disjoint := routeSeg(t, 100, 4, origin, ia(6), ia(7), ia(4)) // avoids 3

	entries := []*Entry{
		{Seg: overlapB}, {Seg: disjoint}, {Seg: short}, {Seg: overlapA},
	}
	if got := SelectBestK(entries, 4); len(got) != 4 || &got[0] != &entries[0] {
		t.Fatal("group within the bound must pass through unchanged")
	}

	want := map[string]bool{}
	for _, e := range SelectBestK(entries, 3) {
		want[e.Seg.RouteID()] = true
	}
	if len(want) != 3 {
		t.Fatalf("selected %d routes, want 3", len(want))
	}
	if !want[short.RouteID()] {
		t.Error("shortest candidate not selected")
	}
	if !want[disjoint.RouteID()] {
		t.Error("disjoint candidate not selected over the overlapping longer one")
	}
	if want[overlapB.RouteID()] {
		t.Error("longest overlapping candidate survived selection")
	}

	// Input order must not matter.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]*Entry(nil), entries...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := map[string]bool{}
		for _, e := range SelectBestK(shuffled, 3) {
			got[e.Seg.RouteID()] = true
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("trial %d: selection depends on input order", trial)
			}
		}
	}
}

// meshTopo builds a fully-meshed core of n ASes (71-1 … 71-n) with two
// leaves, dense enough that per-round same-origin acceptance groups
// exceed small best-K bounds.
func meshTopo(t testing.TB, n int) *topology.Topology {
	t.Helper()
	topo := topology.New()
	cores := make([]addr.IA, n)
	for i := range cores {
		cores[i] = addr.MustIA(71, addr.AS(1+i))
		if err := topo.AddAS(topology.ASInfo{IA: cores[i], Core: true}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if _, err := topo.AddLink(topology.LinkEnd{IA: cores[i]}, topology.LinkEnd{IA: cores[j]},
				topology.LinkCore, 5, ""); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, leaf := range []addr.IA{addr.MustIA(71, 100), addr.MustIA(71, 101)} {
		if err := topo.AddAS(topology.ASInfo{IA: leaf}); err != nil {
			t.Fatal(err)
		}
		if _, err := topo.AddLink(topology.LinkEnd{IA: cores[i]}, topology.LinkEnd{IA: leaf},
			topology.LinkParent, 5, ""); err != nil {
			t.Fatal(err)
		}
	}
	return topo
}

// TestBestKDeterminismAcrossWorkers: on a dense core mesh where the
// best-K bound actually prunes, the resulting registries are identical
// at any verification worker count.
func TestBestKDeterminismAcrossWorkers(t *testing.T) {
	topo := meshTopo(t, 8)
	signers, trcs, now := provisionRunnerPKI(t, topo)
	run := func(workers int) (*RunnerMetrics, map[string][]string) {
		metrics := &RunnerMetrics{}
		r := &Runner{
			Topo: topo, Keys: rkey, Signers: signers,
			TRCs: trcs, Chains: cppki.NewChainCache(), VerifyAt: now,
			VerifyWorkers: workers, PropagateBestK: 2, RegisterBestK: 6,
			Timestamp: uint32(now.Unix()), Rng: rand.New(rand.NewSource(11)),
			Metrics: metrics,
		}
		reg, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return metrics, registryFingerprint(reg)
	}
	m1, base := run(1)
	if m1.Pruned.Load() == 0 {
		t.Fatal("best-K bound never pruned on the dense mesh; test exercises nothing")
	}
	for _, w := range []int{2, 4, 9} {
		_, fp := run(w)
		equalFingerprints(t, base, fp)
	}

	// And pruning really bounds the flood: an unbounded run propagates
	// strictly more.
	unbounded := &Runner{
		Topo: topo, Keys: rkey, Signers: signers,
		TRCs: trcs, Chains: cppki.NewChainCache(), VerifyAt: now,
		PropagateBestK: -1, RegisterBestK: -1,
		Timestamp: uint32(now.Unix()), Rng: rand.New(rand.NewSource(11)),
		Metrics: &RunnerMetrics{},
	}
	if _, err := unbounded.Run(); err != nil {
		t.Fatal(err)
	}
	if unbounded.Metrics.Propagated.Load() <= m1.Propagated.Load() {
		t.Errorf("unbounded run propagated %d, best-K run %d — bound had no effect",
			unbounded.Metrics.Propagated.Load(), m1.Propagated.Load())
	}
}
