package beacon

import "sciera/internal/segment"

// DefaultPropagateBestK bounds how many same-origin beacons one AS
// re-propagates per beaconing round. Core beaconing over a dense mesh
// otherwise floods O(core²) candidates per round — on generated
// topologies with dozens of core ASes the flight set explodes while the
// stores keep only DefaultBestPerOrigin of them anyway. The bound
// exceeds the largest same-round same-origin acceptance group observed
// anywhere in the reference experiments (19, on the cross-ISD figure's
// topology), so the reference campaign is untouched by pruning
// (see DESIGN.md).
const DefaultPropagateBestK = 24

// SelectBestK picks up to k entries: candidates are ranked by AS-hop
// length with the stable route ID as tiebreak, then selected greedily so
// that each pick maximizes disjointness from the already-selected set
// (fewest shared on-path ASes, as a fraction of the shorter segment).
// Fractions are compared by integer cross-multiplication — no floats,
// so selection is bit-stable across platforms. When k is non-positive
// or the group already fits, the input is returned unchanged (same
// slice, same order): callers that only sometimes prune keep their
// original processing order on the non-pruning path.
func SelectBestK(entries []*Entry, k int) []*Entry {
	if k <= 0 || len(entries) <= k {
		return entries
	}
	cand := append([]*Entry(nil), entries...)
	sortEntries(cand)
	selected := cand[:1:1]
	cand = cand[1:]
	for len(selected) < k {
		best := 0
		bn, bd := worstOverlap(cand[0], selected)
		for i := 1; i < len(cand); i++ {
			n, d := worstOverlap(cand[i], selected)
			// Strictly smaller overlap fraction wins; ties keep the
			// earlier (length, route ID) rank.
			if n*bd < bn*d {
				best, bn, bd = i, n, d
			}
		}
		selected = append(selected, cand[best])
		cand = append(cand[:best], cand[best+1:]...)
	}
	return selected
}

// worstOverlap is the candidate's largest overlap fraction against any
// already-selected entry, as a (numerator, denominator) pair.
func worstOverlap(e *Entry, selected []*Entry) (int, int) {
	bn, bd := 0, 1
	for _, s := range selected {
		n, d := overlapFrac(e.Seg, s.Seg)
		if n*bd > bn*d {
			bn, bd = n, d
		}
	}
	return bn, bd
}

// overlapFrac counts the ASes segment a shares with segment b, over the
// length of the shorter segment. Same-origin candidates always share at
// least the origin; the relative ordering is what matters.
func overlapFrac(a, b *segment.Segment) (num, den int) {
	common := 0
	for i := range a.ASEntries {
		for j := range b.ASEntries {
			if a.ASEntries[i].IA == b.ASEntries[j].IA {
				common++
				break
			}
		}
	}
	den = a.Len()
	if b.Len() < den {
		den = b.Len()
	}
	return common, den
}
