package control

import (
	"crypto/x509"
	"net/netip"
	"testing"
	"time"

	"sciera/internal/addr"
	"sciera/internal/beacon"
	"sciera/internal/ca"
	"sciera/internal/cppki"
	"sciera/internal/pathdb"
	"sciera/internal/scrypto"
	"sciera/internal/segment"
	"sciera/internal/simnet"
)

var (
	coreIA = addr.MustParseIA("71-1")
	leafIA = addr.MustParseIA("71-10")
)

func key(ia addr.IA) scrypto.HopKey { return scrypto.DeriveHopKey([]byte(ia.String()), 0) }

func testRegistry(t *testing.T) *beacon.Registry {
	t.Helper()
	seg1, err := segment.Originate(100, 1, coreIA, 1, leafIA, 5, 63, key(coreIA))
	if err != nil {
		t.Fatal(err)
	}
	if err := seg1.Extend(segment.ASEntry{IA: leafIA, Ingress: 2, ExpTime: 63}, key(leafIA)); err != nil {
		t.Fatal(err)
	}
	reg := &beacon.Registry{
		Up:   map[addr.IA]*pathdb.DB{leafIA: pathdb.New()},
		Core: pathdb.New(),
		Down: pathdb.New(),
	}
	reg.Up[leafIA].Insert(seg1)
	reg.Down.Insert(seg1)
	return reg
}

func startService(t *testing.T, sim *simnet.Sim, ia addr.IA, reg *beacon.Registry, trcs *cppki.Store, issuer *ca.CA) *Service {
	t.Helper()
	svc := &Service{IA: ia, Registry: func() *beacon.Registry { return reg }, TRCs: trcs, CA: issuer}
	if err := svc.Start(sim, netip.AddrPort{}); err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestPathsRequest(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	reg := testRegistry(t)
	svc := startService(t, sim, leafIA, reg, cppki.NewStore(), nil)
	defer svc.Close()

	cli, err := NewClient(sim, svc.Addr(), netip.AddrPort{})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var got *Response
	cli.Do(&Request{Type: "paths", Dst: leafIA}, func(r *Response, err error) {
		if err != nil {
			t.Errorf("paths: %v", err)
			return
		}
		got = r
	})
	sim.RunFor(time.Second)
	if got == nil {
		t.Fatal("no response")
	}
	if len(got.Ups) != 1 || len(got.Downs) != 1 || len(got.Cores) != 0 {
		t.Fatalf("segments: ups=%d cores=%d downs=%d", len(got.Ups), len(got.Cores), len(got.Downs))
	}
	segs, err := DecodeSegments(got.Ups)
	if err != nil || len(segs) != 1 || segs[0].LastIA() != leafIA {
		t.Fatalf("decode: %v %v", segs, err)
	}
}

func TestTRCRequest(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	p, err := cppki.ProvisionISD(71, []addr.IA{coreIA}, []addr.IA{coreIA},
		cppki.ProvisionOptions{NotBefore: sim.Now().Add(-time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	trcs := cppki.NewStore()
	if err := trcs.AddTrusted(p.TRC, sim.Now()); err != nil {
		t.Fatal(err)
	}
	svc := startService(t, sim, coreIA, testRegistry(t), trcs, nil)
	defer svc.Close()
	cli, _ := NewClient(sim, svc.Addr(), netip.AddrPort{})
	defer cli.Close()

	var got *Response
	cli.Do(&Request{Type: "trc", ISD: 71}, func(r *Response, err error) { got = r })
	sim.RunFor(time.Second)
	if got == nil || got.Error != "" {
		t.Fatalf("resp = %+v", got)
	}
	trc, err := cppki.DecodeTRC(got.TRC)
	if err != nil || trc.ISD != 71 {
		t.Fatalf("trc: %v %v", trc, err)
	}

	// Unknown ISD errors.
	got = nil
	cli.Do(&Request{Type: "trc", ISD: 99}, func(r *Response, err error) { got = r })
	sim.RunFor(time.Second)
	if got == nil || got.Error == "" {
		t.Fatal("unknown ISD not rejected")
	}
}

func TestRenewRequest(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	p, err := cppki.ProvisionISD(71, []addr.IA{coreIA}, []addr.IA{coreIA},
		cppki.ProvisionOptions{NotBefore: time.Now().Add(-time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	caMat := p.CACerts[coreIA]
	caCert, err := x509.ParseCertificate(caMat.Cert)
	if err != nil {
		t.Fatal(err)
	}
	issuer := ca.New(coreIA, caCert, caMat.Key, 72*time.Hour)
	svc := startService(t, sim, coreIA, testRegistry(t), cppki.NewStore(), issuer)
	defer svc.Close()
	cli, _ := NewClient(sim, svc.Addr(), netip.AddrPort{})
	defer cli.Close()

	asKey, _ := cppki.GenerateKey()
	csr, err := ca.NewCSR(leafIA, asKey)
	if err != nil {
		t.Fatal(err)
	}
	var got *Response
	cli.Do(&Request{Type: "renew", CSR: csr}, func(r *Response, err error) { got = r })
	sim.RunFor(time.Second)
	if got == nil || got.Error != "" {
		t.Fatalf("resp = %+v", got)
	}
	asCert, err := x509.ParseCertificate(got.ASCert)
	if err != nil {
		t.Fatal(err)
	}
	caGot, err := x509.ParseCertificate(got.CACert)
	if err != nil {
		t.Fatal(err)
	}
	trcs := cppki.NewStore()
	_ = trcs.AddTrusted(p.TRC, time.Now())
	trc, _ := trcs.Get(71)
	if err := cppki.VerifyChain(cppki.Chain{AS: asCert, CA: caGot}, trc, leafIA, time.Now()); err != nil {
		t.Fatalf("issued chain invalid: %v", err)
	}

	// Renew on a CA-less service errors.
	svc2 := startService(t, sim, leafIA, testRegistry(t), cppki.NewStore(), nil)
	defer svc2.Close()
	cli2, _ := NewClient(sim, svc2.Addr(), netip.AddrPort{})
	defer cli2.Close()
	got = nil
	cli2.Do(&Request{Type: "renew", CSR: csr}, func(r *Response, err error) { got = r })
	sim.RunFor(time.Second)
	if got == nil || got.Error == "" {
		t.Fatal("renew on CA-less service accepted")
	}
}

func TestTRCUpdateChainOverNetwork(t *testing.T) {
	// Section 3.3's governance evolution: the ISD's core membership
	// changes, a successor TRC is quorum-signed, the control service
	// serves it, and clients verify the chain — rejecting a rogue one.
	sim := simnet.NewSim(time.Unix(0, 0))
	now := time.Now()
	p, err := cppki.ProvisionISD(71, []addr.IA{coreIA}, []addr.IA{coreIA},
		cppki.ProvisionOptions{NotBefore: now.Add(-time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	trcs := cppki.NewStore()
	if err := trcs.AddTrusted(p.TRC, now); err != nil {
		t.Fatal(err)
	}
	svc := startService(t, sim, coreIA, testRegistry(t), trcs, nil)
	defer svc.Close()
	cli, _ := NewClient(sim, svc.Addr(), netip.AddrPort{})
	defer cli.Close()

	// The client bootstraps trust from the base TRC.
	clientStore := cppki.NewStore()
	fetch := func() *cppki.TRC {
		var got *Response
		cli.Do(&Request{Type: "trc", ISD: 71}, func(r *Response, err error) { got = r })
		sim.RunFor(time.Second)
		if got == nil || got.Error != "" {
			t.Fatalf("trc fetch: %+v", got)
		}
		trc, err := cppki.DecodeTRC(got.TRC)
		if err != nil {
			t.Fatal(err)
		}
		return trc
	}
	if err := clientStore.AddTrusted(fetch(), now); err != nil {
		t.Fatal(err)
	}

	// Governance event: a new core AS joins; the authoritative roots
	// quorum-sign the successor, which the CS starts serving.
	newCore := addr.MustParseIA("71-2:0:77")
	next, err := cppki.UpdateTRC(p.TRC, p.RootKeys, []addr.IA{coreIA, newCore}, now)
	if err != nil {
		t.Fatal(err)
	}
	if err := trcs.Update(next, now); err != nil {
		t.Fatal(err)
	}
	served := fetch()
	if served.Serial != 2 || !served.IsCore(newCore) {
		t.Fatalf("served TRC = %s", served.ID())
	}
	// The client verifies the chain from its trusted base.
	if err := clientStore.Update(served, now); err != nil {
		t.Fatalf("chained update rejected: %v", err)
	}

	// A rogue successor (signed by the wrong keys) must not enter the
	// client's store even if a compromised CS served it.
	rogueKeys := make([]*cppki.KeyPair, len(p.RootKeys))
	for i := range rogueKeys {
		k, _ := cppki.GenerateKey()
		rogueKeys[i] = k
	}
	rogue, err := cppki.UpdateTRC(served, rogueKeys, []addr.IA{newCore}, now)
	if err != nil {
		t.Fatal(err)
	}
	if err := clientStore.Update(rogue, now); err == nil {
		t.Fatal("rogue TRC accepted")
	}
}

func TestClientTimeout(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	// Point the client at an address nobody listens on.
	cli, err := NewClient(sim, netip.MustParseAddrPort("10.200.0.1:9999"), netip.AddrPort{})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.Timeout = 500 * time.Millisecond
	var gotErr error
	fired := 0
	cli.Do(&Request{Type: "paths", Dst: leafIA}, func(r *Response, err error) {
		gotErr = err
		fired++
	})
	sim.RunFor(2 * time.Second)
	if fired != 1 {
		t.Fatalf("callback fired %d times", fired)
	}
	if gotErr == nil {
		t.Fatal("expected timeout error")
	}
}

func TestUnknownRequestType(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	svc := startService(t, sim, leafIA, testRegistry(t), cppki.NewStore(), nil)
	defer svc.Close()
	cli, _ := NewClient(sim, svc.Addr(), netip.AddrPort{})
	defer cli.Close()
	var got *Response
	cli.Do(&Request{Type: "bogus"}, func(r *Response, err error) { got = r })
	sim.RunFor(time.Second)
	if got == nil || got.Error == "" {
		t.Fatal("bogus request type not rejected")
	}
}

func TestServiceRequiresRegistry(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	svc := &Service{IA: leafIA}
	if err := svc.Start(sim, netip.AddrPort{}); err == nil {
		t.Fatal("service without registry started")
	}
}
