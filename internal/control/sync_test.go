package control

import (
	"net/netip"
	"testing"
	"time"

	"sciera/internal/cppki"
	"sciera/internal/simnet"
)

// TestDoSyncLiveDriven covers the blocking request variant against a
// live-driven simulator, the mode interactive binaries use.
func TestDoSyncLiveDriven(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	reg := testRegistry(t)
	svc := startService(t, sim, leafIA, reg, cppki.NewStore(), nil)
	defer svc.Close()

	cli, err := NewClient(sim, svc.Addr(), netip.AddrPort{})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); sim.RunLive(stop) }()
	defer func() { close(stop); <-done }()

	resp, err := cli.DoSync(&Request{Type: "paths", Dst: leafIA})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Ups) != 1 {
		t.Fatalf("ups = %d, want 1", len(resp.Ups))
	}

	// Blocking error propagation: a request the service rejects.
	resp, err = cli.DoSync(&Request{Type: "nonsense"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error == "" {
		t.Error("unknown request type produced no error")
	}
}
