// Package control implements the per-AS SCION control service: the
// path-segment lookup endpoint daemons query, the TRC/certificate
// distribution point, and the CA frontend for automated certificate
// renewal.
//
// Daemon-to-control-service RPC runs as JSON datagrams over the plain
// intra-AS IP underlay — the paper's "IP repurposed as a bridging layer"
// (Section 4.3.1): SCION is only mandatory across AS boundaries. The
// control service resolves core and down segments through the global
// path-server infrastructure (the beacon registry).
package control

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/netip"
	"sync"
	"time"

	"sciera/internal/addr"
	"sciera/internal/beacon"
	"sciera/internal/ca"
	"sciera/internal/cppki"
	"sciera/internal/segment"
	"sciera/internal/simnet"
)

// Request is a control-service RPC request.
type Request struct {
	ID   uint64   `json:"id"`
	Type string   `json:"type"` // "paths" | "trc" | "renew"
	Dst  addr.IA  `json:"dst,omitempty"`
	ISD  addr.ISD `json:"isd,omitempty"`
	CSR  []byte   `json:"csr,omitempty"`
	// Gen echoes the generation token of the requester's last "paths"
	// response for the same destination (0: none). When the serving
	// segment stores are unchanged, the service answers NotModified
	// instead of re-encoding every segment, and the daemon serves its
	// memoized combination.
	Gen uint64 `json:"gen,omitempty"`
}

// Response is a control-service RPC response.
type Response struct {
	ID    uint64 `json:"id"`
	Error string `json:"error,omitempty"`

	Ups   []json.RawMessage `json:"ups,omitempty"`
	Cores []json.RawMessage `json:"cores,omitempty"`
	Downs []json.RawMessage `json:"downs,omitempty"`

	// Gen is the generation token of the segment stores this "paths"
	// response was served from (never 0). NotModified reports that the
	// stores still match the request's Gen; the segment lists are
	// omitted and the requester's cached combination remains valid.
	Gen         uint64 `json:"gen,omitempty"`
	NotModified bool   `json:"not_modified,omitempty"`

	TRC []byte `json:"trc,omitempty"`

	ASCert []byte `json:"as_cert,omitempty"`
	CACert []byte `json:"ca_cert,omitempty"`
}

// Service is a control service instance for one AS.
type Service struct {
	IA addr.IA
	// Registry returns the current segment registry (live view of the
	// global path-server infrastructure).
	Registry func() *beacon.Registry
	// TRCs serves TRC requests.
	TRCs *cppki.Store
	// CA optionally enables certificate renewal (core ASes that run
	// the ISD CA).
	CA *ca.CA

	conn simnet.Conn
}

// Start binds the service on the transport.
func (s *Service) Start(net simnet.Network, at netip.AddrPort) error {
	if s.Registry == nil {
		return errors.New("control: Registry required")
	}
	conn, err := net.Listen(at, s.handle)
	if err != nil {
		return fmt.Errorf("control %v: %w", s.IA, err)
	}
	s.conn = conn
	return nil
}

// Addr returns the service's underlay address.
func (s *Service) Addr() netip.AddrPort { return s.conn.LocalAddr() }

// Close stops the service.
func (s *Service) Close() error { return s.conn.Close() }

func (s *Service) handle(raw []byte, from netip.AddrPort) {
	var req Request
	if err := json.Unmarshal(raw, &req); err != nil {
		return // not a control request; ignore
	}
	resp := s.serve(&req)
	out, err := json.Marshal(resp)
	if err != nil {
		return
	}
	_ = s.conn.Send(out, from)
}

func (s *Service) serve(req *Request) *Response {
	resp := &Response{ID: req.ID}
	switch req.Type {
	case "paths":
		s.servePaths(req, resp)
	case "trc":
		trc, ok := s.TRCs.Get(req.ISD)
		if !ok {
			resp.Error = fmt.Sprintf("no TRC for ISD %d", req.ISD)
			return resp
		}
		b, err := trc.Encode()
		if err != nil {
			resp.Error = err.Error()
			return resp
		}
		resp.TRC = b
	case "renew":
		if s.CA == nil {
			resp.Error = "this control service runs no CA"
			return resp
		}
		chain, err := s.CA.Issue(req.CSR)
		if err != nil {
			resp.Error = err.Error()
			return resp
		}
		resp.ASCert = chain.AS.Raw
		resp.CACert = chain.CA.Raw
	default:
		resp.Error = fmt.Sprintf("unknown request type %q", req.Type)
	}
	return resp
}

// pathsGen derives the generation token for "paths" responses from the
// change stamps of the three segment stores a lookup reads. Stamps fold
// in each store's process-unique identity, so the token changes both on
// in-place mutation and when a control-plane refresh swaps the whole
// registry. Never 0 — daemons use 0 for "nothing cached".
func (s *Service) pathsGen(reg *beacon.Registry) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	var up uint64
	if db, ok := reg.Up[s.IA]; ok {
		up = db.Stamp()
	}
	put(up)
	put(reg.Core.Stamp())
	put(reg.Down.Stamp())
	g := h.Sum64()
	if g == 0 {
		g = 1
	}
	return g
}

// PathsGen returns the generation token "paths" responses currently
// carry for this AS. Warm-start restores use it to pre-seed daemon
// combine memos so a daemon's first conditional fetch per destination
// resolves NotModified.
func (s *Service) PathsGen() uint64 {
	return s.pathsGen(s.Registry())
}

func (s *Service) servePaths(req *Request, resp *Response) {
	reg := s.Registry()
	resp.Gen = s.pathsGen(reg)
	if req.Gen != 0 && req.Gen == resp.Gen {
		// The requester combined exactly these stores already.
		resp.NotModified = true
		return
	}
	encode := func(segs []*segment.Segment) []json.RawMessage {
		out := make([]json.RawMessage, 0, len(segs))
		for _, seg := range segs {
			b, err := seg.Encode()
			if err == nil {
				out = append(out, b)
			}
		}
		return out
	}
	// Up segments of the requesting AS (this service's AS).
	if db, ok := reg.Up[s.IA]; ok {
		resp.Ups = encode(db.All())
	}
	// Core segments between all cores (local CS consults core CSes; in
	// this in-process infrastructure the registry is that federation).
	resp.Cores = encode(reg.Core.All())
	// Down segments terminating at the destination.
	if !req.Dst.IsZero() {
		resp.Downs = encode(reg.Down.Get(0, req.Dst))
	}
}

// Client queries a control service. It correlates responses by request
// ID and supports both callback and blocking styles; the blocking style
// requires someone else to drive a simulated transport.
type Client struct {
	Net simnet.Network
	// Server is the control service's underlay address.
	Server netip.AddrPort
	// Timeout bounds each request (default 2s).
	Timeout time.Duration

	mu      sync.Mutex
	conn    simnet.Conn
	nextID  uint64
	pending map[uint64]func(*Response, error)
}

// NewClient creates a client bound to a fresh underlay port.
func NewClient(net simnet.Network, server netip.AddrPort, local netip.AddrPort) (*Client, error) {
	c := &Client{
		Net:     net,
		Server:  server,
		Timeout: 2 * time.Second,
		pending: make(map[uint64]func(*Response, error)),
	}
	conn, err := net.Listen(local, c.handle)
	if err != nil {
		return nil, err
	}
	c.conn = conn
	return c, nil
}

// Close releases the client socket.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) handle(raw []byte, _ netip.AddrPort) {
	var resp Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		return
	}
	c.mu.Lock()
	cb := c.pending[resp.ID]
	delete(c.pending, resp.ID)
	c.mu.Unlock()
	if cb != nil {
		cb(&resp, nil)
	}
}

// Do sends a request and invokes cb exactly once with the response or a
// timeout error.
func (c *Client) Do(req *Request, cb func(*Response, error)) {
	c.mu.Lock()
	c.nextID++
	req.ID = c.nextID
	id := req.ID

	var once sync.Once
	var cancel func()
	fire := func(r *Response, err error) {
		once.Do(func() {
			if cancel != nil {
				cancel()
			}
			cb(r, err)
		})
	}
	c.pending[id] = fire
	c.mu.Unlock()

	out, err := json.Marshal(req)
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		fire(nil, err)
		return
	}
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	cancel = c.Net.AfterFunc(timeout, func() {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		fire(nil, fmt.Errorf("control: request %d to %v timed out", id, c.Server))
	})
	if err := c.conn.Send(out, c.Server); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		fire(nil, err)
	}
}

// DoSync is the blocking variant; only safe when the transport runs
// independently (UDPNet, or a simulator driven by another goroutine).
func (c *Client) DoSync(req *Request) (*Response, error) {
	type result struct {
		resp *Response
		err  error
	}
	ch := make(chan result, 1)
	c.Do(req, func(r *Response, err error) { ch <- result{r, err} })
	res := <-ch
	return res.resp, res.err
}

// DecodeSegments parses the raw segments of a response group.
func DecodeSegments(raw []json.RawMessage) ([]*segment.Segment, error) {
	out := make([]*segment.Segment, 0, len(raw))
	for _, b := range raw {
		s, err := segment.Decode(b)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
