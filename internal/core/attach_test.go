package core

import (
	"testing"
	"time"

	"sciera/internal/addr"
	"sciera/internal/combinator"
	"sciera/internal/scrypto"
	"sciera/internal/simnet"
	"sciera/internal/spath"
	"sciera/internal/topology"
)

// TestAttachASRuntime joins a new AS to a running network — the
// orchestrator's Section 4.4 primitive — and checks that the control
// plane re-converges and the data plane delivers to and from it.
func TestAttachASRuntime(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n := buildNet(t, sim)
	defer n.Close()

	before := n.RouterCount()
	newIA := addr.MustParseIA("71-2:0:99")
	err := n.AttachAS(topology.ASInfo{IA: newIA, Name: "Newcomer"}, []UplinkSpec{
		{Parent: c2, LatencyMS: 7, Name: "newcomer-uplink"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.RouterCount() != before+1 {
		t.Errorf("router count = %d, want %d", n.RouterCount(), before+1)
	}
	if _, ok := n.ControlService(newIA); !ok {
		t.Error("no control service for attached AS")
	}
	if n.Key(newIA) == (scrypto.HopKey{}) {
		t.Error("attached AS has zero hop key")
	}
	if !n.WaitConverged(newIA, lC, time.Second) {
		t.Fatal("control plane did not converge for the new AS")
	}

	// End-to-end delivery in both directions.
	src := attachHost(t, n, newIA)
	dst := attachHost(t, n, lC)
	paths := n.Paths(newIA, lC)
	if len(paths) == 0 {
		t.Fatal("no paths from attached AS")
	}
	sendOver(t, sim, src, dst, paths[0], "hello from the newcomer")
	if len(dst.recv) != 1 || string(dst.recv[0].Payload) != "hello from the newcomer" {
		t.Fatalf("delivery from attached AS failed (%d packets)", len(dst.recv))
	}
	back := n.Paths(lC, newIA)
	if len(back) == 0 {
		t.Fatal("no paths toward attached AS")
	}
	sendOver(t, sim, dst, src, back[0], "welcome aboard")
	if len(src.recv) != 1 || string(src.recv[0].Payload) != "welcome aboard" {
		t.Fatalf("delivery to attached AS failed (%d packets)", len(src.recv))
	}
}

// TestAttachASErrors exercises the failure modes of runtime attachment.
func TestAttachASErrors(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n := buildNet(t, sim)
	defer n.Close()

	// No uplinks.
	if err := n.AttachAS(topology.ASInfo{IA: addr.MustParseIA("71-2:0:98")}, nil); err == nil {
		t.Error("AttachAS without uplinks succeeded")
	}
	// Already-present AS.
	if err := n.AttachAS(topology.ASInfo{IA: lA}, []UplinkSpec{{Parent: c1, LatencyMS: 1}}); err == nil {
		t.Error("AttachAS of existing AS succeeded")
	}
	// Uplink to an AS that is not in the network.
	ghost := addr.MustParseIA("71-2:0:97")
	err := n.AttachAS(topology.ASInfo{IA: addr.MustParseIA("71-2:0:96")}, []UplinkSpec{
		{Parent: ghost, LatencyMS: 1},
	})
	if err == nil {
		t.Error("AttachAS with unknown parent succeeded")
	}
	// AddRuntimeLink with unknown endpoints.
	if _, err := n.AddRuntimeLink(ghost, lA, topology.LinkParent, 1, ""); err == nil {
		t.Error("AddRuntimeLink from unknown AS succeeded")
	}
	if _, err := n.AddRuntimeLink(lA, ghost, topology.LinkParent, 1, ""); err == nil {
		t.Error("AddRuntimeLink to unknown AS succeeded")
	}
}

// TestAddRuntimeLinkCreatesPaths adds a circuit between two running
// ASes at runtime — the "new EU-US circuits of Jan 25" event of
// Section 5.4 — and checks new paths appear after a refresh.
func TestAddRuntimeLinkCreatesPaths(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n := buildNet(t, sim)
	defer n.Close()

	beforeCount := len(n.Paths(lA, lC))
	if beforeCount == 0 {
		t.Fatal("no baseline paths")
	}
	if _, err := n.AddRuntimeLink(c1, c3, topology.LinkCore, 12, "new-transatlantic"); err != nil {
		t.Fatal(err)
	}
	if err := n.RefreshControlPlane(); err != nil {
		t.Fatal(err)
	}
	after := n.Paths(lA, lC)
	if len(after) <= beforeCount {
		t.Errorf("paths after new circuit = %d, want > %d", len(after), beforeCount)
	}
	// The new circuit actually carries traffic: find a path using it
	// (latency 5+12+5=22 is now the fastest) and deliver over it.
	var best *combinator.Path
	for _, p := range after {
		if best == nil || p.LatencyMS < best.LatencyMS {
			best = p
		}
	}
	if best.LatencyMS != 22 {
		t.Errorf("fastest path latency = %v, want 22 over the new circuit", best.LatencyMS)
	}
	src := attachHost(t, n, lA)
	dst := attachHost(t, n, lC)
	sendOver(t, sim, src, dst, best, "via the fresh circuit")
	if len(dst.recv) != 1 {
		t.Fatalf("delivery over runtime link failed (%d packets)", len(dst.recv))
	}
}

// TestSetLinkUpReconverges flips a circuit down and up again and checks
// the path set shrinks and recovers.
func TestSetLinkUpReconverges(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n := buildNet(t, sim)
	defer n.Close()

	full := len(n.Paths(lA, lC))
	// Find the direct c1-c3 core link.
	var target *topology.Link
	for _, l := range n.Topo.Links() {
		if l.Type == topology.LinkCore &&
			((l.A.IA == c1 && l.B.IA == c3) || (l.A.IA == c3 && l.B.IA == c1)) {
			target = l
			break
		}
	}
	if target == nil {
		t.Fatal("no direct c1-c3 link in test topology")
	}
	if err := n.SetLinkUp(target.ID, false); err != nil {
		t.Fatal(err)
	}
	reduced := len(n.Paths(lA, lC))
	if reduced >= full {
		t.Errorf("paths with link down = %d, want < %d", reduced, full)
	}
	if err := n.SetLinkUp(target.ID, true); err != nil {
		t.Fatal(err)
	}
	if got := len(n.Paths(lA, lC)); got != full {
		t.Errorf("paths after recovery = %d, want %d", got, full)
	}
	// Unknown link id errors.
	if err := n.SetLinkUp(999999, false); err == nil {
		t.Error("SetLinkUp on unknown link succeeded")
	}
}

// TestNewDaemonFromCore creates a daemon via the network helper and
// resolves paths through the control service.
func TestNewDaemonFromCore(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n := buildNet(t, sim)
	defer n.Close()

	d, err := n.NewDaemon(lA)
	if err != nil {
		t.Fatal(err)
	}
	var paths []*combinator.Path
	var lookupErr error
	d.PathsAsync(lC, func(p []*combinator.Path, err error) { paths, lookupErr = p, err })
	sim.Run()
	if lookupErr != nil {
		t.Fatal(lookupErr)
	}
	if len(paths) == 0 {
		t.Fatal("daemon resolved no paths")
	}
	// Daemon inside an unknown AS fails.
	if _, err := n.NewDaemon(addr.MustParseIA("71-2:0:95")); err == nil {
		t.Error("NewDaemon for unknown AS succeeded")
	}
}

// TestOmniscientVerifier walks every path the network produces for a
// few pairs with the per-AS keys from Network.Key — the cross-check a
// test harness uses to validate the whole control plane output.
func TestOmniscientVerifier(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n, err := Build(buildPeerTopo(t), sim, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	pairs := [][2]addr.IA{{lA, lC}, {lA, lB}, {lX, lY}, {c1, c3}, {lC, lA}}
	total := 0
	for _, pr := range pairs {
		for _, p := range n.Paths(pr[0], pr[1]) {
			verifyNetWalk(t, n, p)
			total++
		}
	}
	if total < 10 {
		t.Errorf("verified only %d paths across %d pairs", total, len(pairs))
	}
}

// verifyNetWalk replays the border-router verification over a combined
// path using the network's topology and keys.
func verifyNetWalk(t *testing.T, n *Network, p *combinator.Path) {
	t.Helper()
	raw := p.Raw.Copy()
	cur := p.Src
	for {
		info, err := raw.CurrentInfo()
		if err != nil {
			t.Fatalf("path %s: %v", p.Fingerprint, err)
		}
		hop, err := raw.CurrentHop()
		if err != nil {
			t.Fatalf("path %s: %v", p.Fingerprint, err)
		}
		peerCross := info.Peer &&
			((info.ConsDir && raw.IsFirstHopOfSegment()) ||
				(!info.ConsDir && raw.IsLastHopOfSegment()))
		var ok bool
		if peerCross {
			ok = spath.VerifyPeerHop(n.Key(cur), info, hop)
		} else {
			ok = spath.VerifyHop(n.Key(cur), info, hop)
		}
		if !ok {
			t.Fatalf("path %s: MAC failure at %v", p.Fingerprint, cur)
		}
		egress := spath.DataEgress(info, hop)
		if raw.IsLastHop() {
			break
		}
		if raw.IsLastHopOfSegment() && !(peerCross && egress != 0) {
			if err := raw.IncHop(); err != nil {
				t.Fatalf("path %s: %v", p.Fingerprint, err)
			}
			continue
		}
		l, okL := n.Topo.LinkAt(topology.LinkEnd{IA: cur, IfID: egress})
		if !okL {
			t.Fatalf("path %s: no link at %v#%d", p.Fingerprint, cur, egress)
		}
		next, _ := l.Other(cur)
		cur = next.IA
		if err := raw.IncHop(); err != nil {
			t.Fatalf("path %s: %v", p.Fingerprint, err)
		}
	}
	if cur != p.Dst {
		t.Fatalf("path %s ended at %v, want %v", p.Fingerprint, cur, p.Dst)
	}
}
