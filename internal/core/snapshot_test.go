package core

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sciera/internal/addr"
	"sciera/internal/simnet"
)

// buildWarmNet constructs the warm (unconverged) counterpart of
// buildNet: same topology, seed and sim start, no control-plane run.
func buildWarmNet(t testing.TB) *Network {
	t.Helper()
	n, err := BuildWarm(buildTopo(t), simnet.NewSim(time.Unix(0, 0)), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// pathFingerprints projects a path set onto comparable identity:
// fingerprint plus latency, in result order.
func pathFingerprints(n *Network, src, dst addr.IA) []string {
	var out []string
	for _, p := range n.Paths(src, dst) {
		out = append(out, p.Fingerprint)
	}
	return out
}

func samePaths(t *testing.T, a, b *Network, src, dst addr.IA) {
	t.Helper()
	pa, pb := pathFingerprints(a, src, dst), pathFingerprints(b, src, dst)
	if len(pa) != len(pb) {
		t.Fatalf("%v->%v: %d paths vs %d", src, dst, len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("%v->%v path %d: %q vs %q", src, dst, i, pa[i], pb[i])
		}
	}
}

// TestCountingSourcePassThrough: the counting source produces the exact
// stream the bare seeded source would (so wrapping it changed no seeded
// run), and its count identifies the generator position.
func TestCountingSourcePassThrough(t *testing.T) {
	counted := rand.New(newCountingSource(42))
	plain := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		if a, b := counted.Intn(1<<16), plain.Intn(1<<16); a != b {
			t.Fatalf("draw %d: counted %d, plain %d", i, a, b)
		}
	}
}

// TestCountingSourceFastForward: a fresh source that discards draws
// until it reaches a recorded count continues with exactly the draws
// the original source would produce next — the clone RNG-alignment
// mechanism.
func TestCountingSourceFastForward(t *testing.T) {
	ref := newCountingSource(7)
	refRng := rand.New(ref)
	for i := 0; i < 137; i++ {
		refRng.Intn(1 << 16)
	}
	mark := ref.Count()

	clone := newCountingSource(7)
	cloneRng := rand.New(clone)
	for clone.Count() < mark {
		clone.Uint64()
	}
	for i := 0; i < 100; i++ {
		if a, b := refRng.Intn(1<<16), cloneRng.Intn(1<<16); a != b {
			t.Fatalf("post-fast-forward draw %d: ref %d, clone %d", i, a, b)
		}
	}
}

// TestSnapshotCloneServesIdenticalPaths: a replica built warm and
// installed from a snapshot answers every path lookup identically to
// the converged reference — and serves the very same segment objects.
func TestSnapshotCloneServesIdenticalPaths(t *testing.T) {
	cold := buildNet(t, simnet.NewSim(time.Unix(0, 0)))
	defer cold.Close()
	snap, err := cold.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	warm := buildWarmNet(t)
	defer warm.Close()
	if warm.Registry() != nil {
		t.Fatal("BuildWarm network has a registry before install")
	}
	if err := warm.InstallSnapshot(snap); err != nil {
		t.Fatal(err)
	}

	for _, pair := range [][2]addr.IA{{lA, lC}, {lC, lA}, {c1, c3}, {lA, c2}} {
		samePaths(t, cold, warm, pair[0], pair[1])
	}

	// Segment objects are shared, not copied; the stores are not.
	coldReg, warmReg := cold.Registry(), warm.Registry()
	if coldReg == warmReg {
		t.Fatal("clone shares the registry object itself")
	}
	coldCore, warmCore := coldReg.Core.All(), warmReg.Core.All()
	if len(coldCore) == 0 || len(coldCore) != len(warmCore) {
		t.Fatalf("core store: %d vs %d segments", len(coldCore), len(warmCore))
	}
	for i := range coldCore {
		if coldCore[i] != warmCore[i] {
			t.Fatal("clone copied core segment objects")
		}
	}
	if coldReg.Core.Stamp() == warmReg.Core.Stamp() {
		t.Fatal("clone core stamp aliases the reference's")
	}
	if snap.RandDraws == 0 {
		t.Fatal("convergence consumed no RNG draws — counting source unwired?")
	}
}

// TestSnapshotCloneRefreshMatchesReference: after install, a refresh on
// the clone (what a mid-campaign incident triggers) draws exactly what
// a refresh on the reference draws — the RNG fast-forward at work — and
// both end in identical path state.
func TestSnapshotCloneRefreshMatchesReference(t *testing.T) {
	cold := buildNet(t, simnet.NewSim(time.Unix(0, 0)))
	defer cold.Close()
	snap, err := cold.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	warm := buildWarmNet(t)
	defer warm.Close()
	if err := warm.InstallSnapshot(snap); err != nil {
		t.Fatal(err)
	}

	if err := cold.RefreshControlPlane(); err != nil {
		t.Fatal(err)
	}
	if err := warm.RefreshControlPlane(); err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]addr.IA{{lA, lC}, {c1, c3}} {
		samePaths(t, cold, warm, pair[0], pair[1])
	}
	if cold.rngSrc.Count() != warm.rngSrc.Count() {
		t.Fatalf("RNG positions diverged: reference %d, clone %d",
			cold.rngSrc.Count(), warm.rngSrc.Count())
	}
}

// TestSnapshotFileRoundTrip: snapshot -> serialize -> load -> install
// reproduces the reference's path state, the encoding is canonical
// (same state, same bytes), and up/down segment-object sharing is
// re-established on load.
func TestSnapshotFileRoundTrip(t *testing.T) {
	cold := buildNet(t, simnet.NewSim(time.Unix(0, 0)))
	defer cold.Close()
	cold.WarmPaths([][2]addr.IA{{lA, lC}})
	snap, err := cold.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	p1 := filepath.Join(dir, "snap1.json")
	if err := snap.WriteFile(p1); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshotFile(p1)
	if err != nil {
		t.Fatal(err)
	}

	// Canonical bytes: re-serializing the loaded snapshot reproduces the
	// file exactly.
	p2 := filepath.Join(dir, "snap2.json")
	if err := loaded.WriteFile(p2); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("snapshot serialization is not canonical: round-trip changed bytes")
	}

	// Up stores reference the shared down segment objects, as beaconing
	// would have left them.
	for ia, db := range loaded.Registry.Up {
		for _, seg := range db.All() {
			found := false
			for _, d := range loaded.Registry.Down.All() {
				if d == seg {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("up segment %s of %v is a copy, not shared with the down store", seg.ID(), ia)
			}
		}
	}

	if loaded.RandDraws != snap.RandDraws || loaded.Beacon != snap.Beacon {
		t.Fatalf("loaded metadata differs: draws %d/%d, counters %+v vs %+v",
			loaded.RandDraws, snap.RandDraws, loaded.Beacon, snap.Beacon)
	}

	warm := buildWarmNet(t)
	defer warm.Close()
	if err := warm.InstallSnapshot(loaded); err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]addr.IA{{lA, lC}, {lC, lA}, {c1, c3}} {
		samePaths(t, cold, warm, pair[0], pair[1])
	}
}

// TestInstallSnapshotRejects: the fingerprint checks that keep a
// snapshot from landing on the wrong network.
func TestInstallSnapshotRejects(t *testing.T) {
	cold := buildNet(t, simnet.NewSim(time.Unix(0, 0)))
	defer cold.Close()
	snap, err := cold.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Seed mismatch.
	mis, err := BuildWarm(buildTopo(t), simnet.NewSim(time.Unix(0, 0)), Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer mis.Close()
	if err := mis.InstallSnapshot(snap); err == nil {
		t.Fatal("install with mismatched seed succeeded")
	}

	// Already-converged target.
	if err := cold.InstallSnapshot(snap); err == nil {
		t.Fatal("install into a converged network succeeded")
	}

	// Snapshot of an unconverged network.
	warm := buildWarmNet(t)
	defer warm.Close()
	if _, err := warm.Snapshot(); err == nil {
		t.Fatal("snapshot of an unconverged network succeeded")
	}
}

// TestSnapshotWithPKIShares: a PKI snapshot shares the reference's
// trust material with in-process clones, and its counters survive the
// restore.
func TestSnapshotWithPKIShares(t *testing.T) {
	cold, err := Build(buildTopo(t), simnet.NewSim(time.Unix(0, 0)), Options{Seed: 1, WithPKI: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	snap, err := cold.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Trust == nil || snap.Trust.TRCs == nil {
		t.Fatal("PKI snapshot carries no trust material")
	}
	if snap.Beacon.Verified == 0 {
		t.Fatal("PKI convergence verified no beacons")
	}

	warm, err := BuildWarm(buildTopo(t), simnet.NewSim(time.Unix(0, 0)), Options{Seed: 1, WithPKI: true})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if err := warm.InstallSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if warm.TRCs() != cold.TRCs() {
		t.Fatal("clone did not adopt the shared TRC store")
	}
	if got := warm.beaconMetrics.Verified.Load(); got != snap.Beacon.Verified {
		t.Fatalf("clone verified counter %d, snapshot %d", got, snap.Beacon.Verified)
	}
	samePaths(t, cold, warm, lA, lC)
}

// TestClonedPathsZeroAlloc guards the clone hot path: on a
// snapshot-cloned replica the warm combination memo must serve steady-
// state path lookups with zero allocations — cloning buys setup time
// without taxing the campaign loop.
func TestClonedPathsZeroAlloc(t *testing.T) {
	cold := buildNet(t, simnet.NewSim(time.Unix(0, 0)))
	defer cold.Close()
	cold.WarmPaths([][2]addr.IA{{lA, lC}, {c1, c3}})
	snap, err := cold.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Paths) == 0 {
		t.Fatal("snapshot carries no warmed combinations")
	}
	warm := buildWarmNet(t)
	defer warm.Close()
	if err := warm.InstallSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		warm.Paths(lA, lC)
		warm.Paths(c1, c3)
	}); allocs != 0 {
		t.Fatalf("cloned-replica path lookup allocates %.1f per run, want 0", allocs)
	}
}
