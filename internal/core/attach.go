package core

import (
	"fmt"
	"time"

	"sciera/internal/addr"
	"sciera/internal/control"
	"sciera/internal/router"
	"sciera/internal/scrypto"
	"sciera/internal/topology"
)

// UplinkSpec describes one circuit from a newly joining AS to an
// existing parent.
type UplinkSpec struct {
	Parent    addr.IA
	LatencyMS float64
	Name      string
}

// AttachAS joins a new AS to the running network: it is added to the
// topology with the given uplinks, gets a hop key, a border router and
// a control service, and the control plane re-converges. This is the
// runtime primitive behind the orchestrator's "AS setup in hours, not
// days" automation (Section 4.4).
func (n *Network) AttachAS(info topology.ASInfo, uplinks []UplinkSpec) error {
	if len(uplinks) == 0 {
		return fmt.Errorf("core: attaching %v requires at least one uplink", info.IA)
	}
	if err := n.Topo.AddAS(info); err != nil {
		return err
	}
	ia := info.IA
	n.keys[ia] = scrypto.DeriveHopKey([]byte(fmt.Sprintf("as-secret-%s-%d", ia, n.Opts.Seed)), 0)

	// Data plane: router and circuits, with the same telemetry wiring
	// as the ASes built at network construction.
	r, err := router.New(n.routerConfig(ia))
	if err != nil {
		return err
	}
	n.routers[ia] = r
	for _, ul := range uplinks {
		if _, err := n.AddRuntimeLink(ul.Parent, ia, topology.LinkParent, ul.LatencyMS, ul.Name); err != nil {
			return err
		}
	}

	// In PKI-enabled networks the joining AS obtains its certificate
	// through the online CA flow (package ca via the control service);
	// the orchestrator drives that renewal separately.

	// Control service.
	svc := &control.Service{IA: ia, Registry: n.Registry, TRCs: n.trcs}
	if err := svc.Start(n.Transport, n.HostAddr()); err != nil {
		return err
	}
	n.services[ia] = svc

	return n.refreshControlPlane()
}

// AddRuntimeLink adds a circuit between two running ASes (a "new link
// became available" event, like the EU-US circuits of Jan 25 in
// Section 5.4) and wires both routers. The caller decides when to
// refresh the control plane.
func (n *Network) AddRuntimeLink(a, b addr.IA, typ topology.LinkType, latencyMS float64, name string) (*topology.Link, error) {
	ra, ok := n.routers[a]
	if !ok {
		return nil, fmt.Errorf("core: %v not in network", a)
	}
	rb, ok := n.routers[b]
	if !ok {
		return nil, fmt.Errorf("core: %v not in network", b)
	}
	l, err := n.Topo.AddLink(topology.LinkEnd{IA: a}, topology.LinkEnd{IA: b}, typ, latencyMS, name)
	if err != nil {
		return nil, err
	}
	aAddr, err := ra.AddInterface(l.A.IfID)
	if err != nil {
		return nil, err
	}
	bAddr, err := rb.AddInterface(l.B.IfID)
	if err != nil {
		return nil, err
	}
	if err := ra.ConnectInterface(l.A.IfID, bAddr); err != nil {
		return nil, err
	}
	if err := rb.ConnectInterface(l.B.IfID, aAddr); err != nil {
		return nil, err
	}
	n.addWire(aAddr, bAddr, l)
	return l, nil
}

// RouterCount reports how many routers run (for dashboards).
func (n *Network) RouterCount() int { return len(n.routers) }

// WaitConverged is a convenience for tests: it refreshes the control
// plane and verifies the new AS resolves paths to a probe destination.
func (n *Network) WaitConverged(src, dst addr.IA, within time.Duration) bool {
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if len(n.Paths(src, dst)) > 0 {
			return true
		}
		if err := n.RefreshControlPlane(); err != nil {
			return false
		}
	}
	return len(n.Paths(src, dst)) > 0
}
