// Package core wires every substrate into a complete SCION network in a
// box: given an AS-level topology it derives forwarding keys, runs
// beaconing to populate the path-segment registries, instantiates one
// border router per AS on the chosen transport (discrete-event simulator
// or real loopback UDP), and answers path lookups by segment
// combination.
//
// This is the entry point a downstream user starts from: build a
// topology (or load the SCIERA deployment from package sciera), call
// Build, and dial across the network with package pan.
package core

import (
	"crypto/x509"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"sciera/internal/addr"
	"sciera/internal/beacon"
	"sciera/internal/combinator"
	"sciera/internal/control"
	"sciera/internal/cppki"
	"sciera/internal/daemon"
	"sciera/internal/router"
	"sciera/internal/scmp"
	"sciera/internal/scrypto"
	"sciera/internal/segment"
	"sciera/internal/simnet"
	"sciera/internal/telemetry"
	"sciera/internal/topology"
)

// Telemetry defaults: the trace ring holds the most recent sampled
// packet observations network-wide; one in traceSampleEvery packets is
// sampled (power of two, so the sampler is a mask test).
const (
	traceRingSize    = 4096
	traceSampleEvery = 64
)

// parseCert decodes a DER certificate.
func parseCert(der []byte) (*x509.Certificate, error) {
	return x509.ParseCertificate(der)
}

// Options tunes network construction.
type Options struct {
	// Seed drives all randomized control-plane choices; fixed seeds
	// give reproducible networks.
	Seed int64
	// BestPerOrigin bounds beacon stores (beacon.DefaultBestPerOrigin
	// when zero). Larger values surface more path diversity.
	BestPerOrigin int
	// PropagateBestK bounds per-round same-origin beacon re-propagation
	// (beacon.DefaultPropagateBestK when zero, unbounded when negative).
	// Keeps core beaconing sub-quadratic on large generated topologies.
	PropagateBestK int
	// RegisterBestK bounds per-origin segment registration (the beacon
	// store bound when zero, unbounded when negative).
	RegisterBestK int
	// UseDispatcher configures routers to deliver through the legacy
	// shared dispatcher port (Section 4.8 ablation).
	UseDispatcher bool
	// WithPKI provisions a control-plane PKI per ISD, signs all beacon
	// entries, and verifies every beacon on receipt against the ISD TRC
	// (dropping unverifiable ones). A shared verified-chain cache keeps
	// the cost near the unsigned path, so campaigns can run with the
	// deployment-faithful signed control plane (-pki).
	WithPKI bool
	// Now stamps segments; defaults to the transport clock.
	Now time.Time
	// IntraASDelay is the simulated one-way delay between AS-internal
	// endpoints (hosts, services, routers); default 100µs. Only
	// meaningful on the discrete-event transport.
	IntraASDelay time.Duration
	// NoTelemetry builds the network without the shared metric registry,
	// packet-trace ring and queue-delay hook. Subsystem counters still
	// run (they are plain atomics either way); what this disables is
	// exposition, trace sampling and the per-wire queue probing — the
	// uninstrumented arm of the overhead ablation.
	NoTelemetry bool
	// RouterBatchWorkers fans checksum pre-verification of large ingress
	// bursts across this many workers in every router. Results are
	// consumed in arrival order (strided assignment), so any value —
	// including 0/1, which verify inline — produces byte-identical runs.
	RouterBatchWorkers int
}

// Network is a fully assembled SCION network.
type Network struct {
	Topo      *topology.Topology
	Transport simnet.Network
	Opts      Options

	mu       sync.RWMutex
	registry *beacon.Registry
	// wires maps directed (from, to) underlay circuit endpoints to
	// their topology link, for the simulator's latency model. The map
	// itself is immutable once published: addWire copies-on-write under
	// wiresMu (build time and topology growth only), so the latency
	// model — the hottest per-packet path in the simulator — reads it
	// through the atomic pointer without taking a lock.
	wiresMu  sync.Mutex
	wires    atomic.Pointer[map[wireKey]*topology.Link]
	routers  map[addr.IA]*router.Router
	services map[addr.IA]*control.Service
	keys     map[addr.IA]scrypto.HopKey
	signers  map[addr.IA]*cppki.Signer
	trcs     *cppki.Store
	// chains memoizes verified certificate chains across all refreshes
	// and (in sharded campaigns) across replicas of this network.
	chains *cppki.ChainCache
	rng    *rand.Rand
	// rngSrc is the counting wrapper under rng: a pure pass-through
	// that tallies generator state advances, so a converged-state
	// snapshot can record the RNG position and a warm-started clone can
	// fast-forward to it (see snapshot.go).
	rngSrc *countingSource

	// telem/trace are the network-wide metric registry and packet-trace
	// ring (nil with Options.NoTelemetry). beaconMetrics persists across
	// control-plane refreshes so beacon counters accumulate.
	telem         *telemetry.Registry
	trace         *telemetry.TraceRing
	beaconMetrics *beacon.RunnerMetrics
	queueHist     *telemetry.Histogram
	// busyUntil tracks each directed wire's transmit-queue horizon. It
	// is written by the simulator's latency model (inside the sim lock)
	// and read by the routers' QueueDelay hook (outside it); busyMu is
	// always the innermost lock, so there is no ordering cycle.
	busyMu    sync.Mutex
	busyUntil map[wireKey]time.Time

	// pathsMu guards the memoized Combine results. pathsReg pins the
	// registry epoch the cache was built against: a control-plane refresh
	// publishes a new registry (and fresh path DBs), which empties the
	// cache wholesale instead of letting stale (src, dst) keys linger.
	pathsMu    sync.Mutex
	pathsReg   *beacon.Registry
	pathsCache map[[2]addr.IA]pathsCacheEntry

	// warmPaths/warmReg carry the snapshot's memoized combinations past
	// InstallSnapshot so NewDaemon can pre-seed daemon combine memos —
	// but only while the installed registry is still current (warmReg
	// pins the epoch). Written once at install, before any campaign
	// concurrency starts; read-only afterwards.
	warmPaths map[[2]addr.IA][]*combinator.Path
	warmReg   *beacon.Registry
}

// pathsCacheEntry is one memoized path combination, valid while the
// stamps of the three backing segment stores are unchanged.
type pathsCacheEntry struct {
	up, core, down uint64
	paths          []*combinator.Path
}

// newNetwork initializes the network shell — struct, telemetry wiring
// and forwarding keys — everything Build and BuildWarm share before
// their paths diverge.
func newNetwork(topo *topology.Topology, transport simnet.Network, opts Options) (*Network, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	src := newCountingSource(opts.Seed)
	n := &Network{
		Topo:      topo,
		Transport: transport,
		Opts:      opts,
		routers:   make(map[addr.IA]*router.Router),
		services:  make(map[addr.IA]*control.Service),
		keys:      make(map[addr.IA]scrypto.HopKey),
		signers:   make(map[addr.IA]*cppki.Signer),
		trcs:      cppki.NewStore(),
		rng:       rand.New(src),
		rngSrc:    src,
	}
	if n.Opts.Now.IsZero() {
		n.Opts.Now = transport.Now()
	}
	if !opts.NoTelemetry {
		n.telem = telemetry.NewRegistry()
		n.trace = telemetry.NewTraceRing(traceRingSize, traceSampleEvery)
		n.queueHist = n.telem.Histogram("sciera_link_queue_delay_ms",
			"head-of-line queueing delay at link transmit queues",
			[]float64{0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100})
		if sim, ok := transport.(*simnet.Sim); ok {
			sim.RegisterTelemetry(n.telem)
		}
	}
	for _, as := range topo.ASes() {
		n.keys[as.IA] = scrypto.DeriveHopKey([]byte(fmt.Sprintf("as-secret-%s-%d", as.IA, opts.Seed)), 0)
	}
	return n, nil
}

// Build assembles the network: keys, PKI (optional), beaconing, routers.
func Build(topo *topology.Topology, transport simnet.Network, opts Options) (*Network, error) {
	n, err := newNetwork(topo, transport, opts)
	if err != nil {
		return nil, err
	}
	if opts.WithPKI {
		if err := n.provisionPKI(); err != nil {
			return nil, err
		}
	}
	if err := n.refreshControlPlane(); err != nil {
		return nil, err
	}
	if err := n.buildDataPlane(); err != nil {
		return nil, err
	}
	if err := n.startControlServices(); err != nil {
		return nil, err
	}
	return n, nil
}

// BuildWarm assembles a network shell for warm-starting from a
// converged-state snapshot: keys, routers and control services come up
// exactly as under Build — the transport-operation sequence (address
// and port allocation) is identical, because PKI provisioning and
// beaconing never touch the transport — but no PKI is provisioned and
// no beaconing runs. The returned network serves no paths until
// InstallSnapshot supplies the registry, trust material and RNG
// position; callers add runtime links (AddRuntimeLink) in between,
// mirroring the cold build calendar, so the topology matches the
// snapshot's at install time.
func BuildWarm(topo *topology.Topology, transport simnet.Network, opts Options) (*Network, error) {
	n, err := newNetwork(topo, transport, opts)
	if err != nil {
		return nil, err
	}
	if err := n.buildDataPlane(); err != nil {
		return nil, err
	}
	if err := n.startControlServices(); err != nil {
		return nil, err
	}
	return n, nil
}

// startControlServices runs one control service per AS on the underlay.
func (n *Network) startControlServices() error {
	for _, as := range n.Topo.ASes() {
		svc := &control.Service{
			IA:       as.IA,
			Registry: n.Registry,
			TRCs:     n.trcs,
		}
		if err := svc.Start(n.Transport, n.HostAddr()); err != nil {
			return err
		}
		n.services[as.IA] = svc
	}
	return nil
}

// ControlService returns an AS's control service.
func (n *Network) ControlService(ia addr.IA) (*control.Service, bool) {
	s, ok := n.services[ia]
	return s, ok
}

// NewDaemon creates an end-host daemon inside the given AS, wired to
// the AS's control service and border router.
func (n *Network) NewDaemon(ia addr.IA) (*daemon.Daemon, error) {
	svc, ok := n.services[ia]
	if !ok {
		return nil, fmt.Errorf("core: no control service for %v", ia)
	}
	rtr, ok := n.routers[ia]
	if !ok {
		return nil, fmt.Errorf("core: no router for %v", ia)
	}
	d, err := daemon.New(n.Transport, daemon.Info{
		LocalIA:     ia,
		RouterAddr:  rtr.LocalAddr(),
		ControlAddr: svc.Addr(),
	}, n.HostAddr())
	if err != nil {
		return nil, err
	}
	if n.telem != nil {
		d.RegisterTelemetry(n.telem)
	}
	// On a warm-started network, pre-seed the daemon's combine memo
	// with the snapshot's combinations for this AS — the daemon's first
	// fetch per destination then resolves NotModified against a warm
	// memo instead of decoding and recombining every segment. Valid
	// only while the installed registry is still the current one (an
	// incident refresh moves the generation token, and the service
	// would simply serve fresh segments as usual).
	if n.warmPaths != nil && n.Registry() == n.warmReg {
		if gen := svc.PathsGen(); gen != 0 {
			for k, paths := range n.warmPaths {
				if k[0] == ia {
					d.WarmCombine(k[1], gen, paths)
				}
			}
		}
	}
	return d, nil
}

// AttachResponder starts an SCMP echo responder in an AS at the
// well-known end-host port, so the AS answers pings (every SCIERA AS
// does, even those without the measurement tool).
func (n *Network) AttachResponder(ia addr.IA) (*scmp.Responder, error) {
	rtr, ok := n.routers[ia]
	if !ok {
		return nil, fmt.Errorf("core: no router for %v", ia)
	}
	host := n.HostAddr()
	at := netip.AddrPortFrom(host.Addr(), router.EndhostPort)
	if !host.Addr().IsValid() {
		// UDPNet: all hosts share the loopback address, so only one
		// responder can own the well-known end-host SCMP port — the
		// same constraint a real single-host deployment has.
		at = netip.AddrPortFrom(netip.AddrFrom4([4]byte{127, 0, 0, 1}), router.EndhostPort)
	}
	return scmp.NewResponder(n.Transport, ia, rtr.LocalAddr(), at)
}

// NewPinger creates an SCMP echo client inside an AS.
func (n *Network) NewPinger(ia addr.IA) (*scmp.Pinger, error) {
	rtr, ok := n.routers[ia]
	if !ok {
		return nil, fmt.Errorf("core: no router for %v", ia)
	}
	return scmp.NewPinger(n.Transport, ia, rtr.LocalAddr(), n.HostAddr())
}

// provisionPKI creates one TRC per ISD with the ISD's core ASes as
// authoritative CAs, and an AS certificate/signer per AS.
func (n *Network) provisionPKI() error {
	now := n.Opts.Now
	n.chains = cppki.NewChainCache()
	if n.telem != nil {
		n.chains.Register(n.telem)
	}
	byISD := make(map[addr.ISD][]addr.IA)
	coreByISD := make(map[addr.ISD][]addr.IA)
	for _, as := range n.Topo.ASes() {
		byISD[as.IA.ISD()] = append(byISD[as.IA.ISD()], as.IA)
		if as.Core {
			coreByISD[as.IA.ISD()] = append(coreByISD[as.IA.ISD()], as.IA)
		}
	}
	for isd, members := range byISD {
		cores := coreByISD[isd]
		if len(cores) == 0 {
			return fmt.Errorf("core: ISD %d has no core AS", isd)
		}
		authoritative := cores
		if len(authoritative) > 2 {
			authoritative = authoritative[:2]
		}
		p, err := cppki.ProvisionISD(isd, cores, authoritative, cppki.ProvisionOptions{
			NotBefore: now.Add(-time.Minute),
		})
		if err != nil {
			return err
		}
		if err := n.trcs.AddTrusted(p.TRC, now); err != nil {
			return err
		}
		// Issue an AS cert per member from the first authoritative CA.
		caMat := p.CACerts[authoritative[0]]
		caCert, err := parseCert(caMat.Cert)
		if err != nil {
			return err
		}
		for _, ia := range members {
			key, err := cppki.GenerateKey()
			if err != nil {
				return err
			}
			cert, err := cppki.NewASCert(ia, key.Public(), caCert, caMat.Key, now.Add(-time.Minute), 72*time.Hour)
			if err != nil {
				return err
			}
			n.signers[ia] = &cppki.Signer{
				IA:    ia,
				Key:   key,
				Chain: cppki.Chain{AS: cert, CA: caCert},
			}
		}
	}
	return nil
}

// refreshControlPlane (re)runs beaconing over the current topology
// state. The live network does this periodically; the simulator calls
// RefreshControlPlane after every topology event (link failure,
// maintenance), which models the next beaconing interval converging.
func (n *Network) refreshControlPlane() error {
	if n.beaconMetrics == nil {
		n.beaconMetrics = &beacon.RunnerMetrics{}
		if n.Opts.WithPKI {
			n.beaconMetrics.VerifyLatency = newVerifyLatencyHistogram()
		}
		if n.telem != nil {
			n.beaconMetrics.Register(n.telem)
		}
	}
	runner := &beacon.Runner{
		Topo:           n.Topo,
		Keys:           func(ia addr.IA) scrypto.HopKey { return n.keys[ia] },
		Timestamp:      uint32(n.Opts.Now.Unix()),
		BestPerOrigin:  n.Opts.BestPerOrigin,
		PropagateBestK: n.Opts.PropagateBestK,
		RegisterBestK:  n.Opts.RegisterBestK,
		Rng:            n.rng,
		Metrics:        n.beaconMetrics,
	}
	if n.Opts.WithPKI {
		runner.Signers = func(ia addr.IA) *cppki.Signer { return n.signers[ia] }
		runner.TRCs = n.trcs
		runner.Chains = n.chains
		runner.VerifyAt = n.Opts.Now
	}
	reg, err := runner.Run()
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.registry = reg
	n.mu.Unlock()
	return nil
}

// RefreshControlPlane recomputes segments after topology changes.
func (n *Network) RefreshControlPlane() error { return n.refreshControlPlane() }

// wireKey identifies a directed circuit by its underlay endpoints.
type wireKey struct{ from, to netip.AddrPort }

// addWire records a circuit's endpoints in the latency table by
// publishing a fresh copy of the (otherwise immutable) wire map.
func (n *Network) addWire(a, b netip.AddrPort, l *topology.Link) {
	n.wiresMu.Lock()
	defer n.wiresMu.Unlock()
	old := n.wires.Load()
	next := make(map[wireKey]*topology.Link, len(*old)+2)
	for k, v := range *old {
		next[k] = v
	}
	next[wireKey{a, b}] = l
	next[wireKey{b, a}] = l
	n.wires.Store(&next)
}

// lookupWire resolves a directed circuit. Lock-free: the published map
// is never mutated, only replaced wholesale by addWire.
func (n *Network) lookupWire(k wireKey) (*topology.Link, bool) {
	l, ok := (*n.wires.Load())[k]
	return l, ok
}

// buildDataPlane instantiates a border router per AS and wires the
// inter-AS links.
func (n *Network) buildDataPlane() error {
	n.busyUntil = make(map[wireKey]time.Time)
	for _, as := range n.Topo.ASes() {
		ia := as.IA
		r, err := router.New(n.routerConfig(ia))
		if err != nil {
			return err
		}
		n.routers[ia] = r
	}
	// Wire both ends of every link: one underlay socket per interface,
	// as in production border routers. The wire map is built once and
	// published wholesale — addWire's copy-on-write republish is per
	// runtime link, and paying it per built link would make replica
	// construction quadratic in the link count.
	links := n.Topo.Links()
	wires := make(map[wireKey]*topology.Link, 2*len(links))
	for _, l := range links {
		ra := n.routers[l.A.IA]
		rb := n.routers[l.B.IA]
		addrA, err := ra.AddInterface(l.A.IfID)
		if err != nil {
			return err
		}
		addrB, err := rb.AddInterface(l.B.IfID)
		if err != nil {
			return err
		}
		if err := ra.ConnectInterface(l.A.IfID, addrB); err != nil {
			return err
		}
		if err := rb.ConnectInterface(l.B.IfID, addrA); err != nil {
			return err
		}
		wires[wireKey{addrA, addrB}] = l
		wires[wireKey{addrB, addrA}] = l
	}
	n.wires.Store(&wires)
	// On the simulator, impose per-link propagation delays, per-link
	// serialization/queueing when a bandwidth cap is set, and drop
	// traffic crossing downed circuits mid-flight.
	if sim, ok := n.Transport.(*simnet.Sim); ok {
		intra := n.Opts.IntraASDelay
		if intra == 0 {
			intra = 100 * time.Microsecond
		}
		// One-entry memo for the key→(link, prop) resolution: a burst
		// resolves the same directed wire for every packet, and the sim
		// invokes Latency strictly under its event-loop lock, so plain
		// closure-local state is race-free. Link state (up/down, busy)
		// is still consulted per packet — only the resolution, which
		// changes solely through addWire's copy-on-write publish, is
		// memoized (keyed on the map snapshot to self-invalidate).
		var (
			memoMap  *map[wireKey]*topology.Link
			memoKey  wireKey
			memoLink *topology.Link
			memoProp time.Duration
		)
		sim.Latency = func(from, to netip.AddrPort, size int, now time.Time) (time.Duration, bool) {
			k := wireKey{from, to}
			m := n.wires.Load()
			if m != memoMap || k != memoKey {
				memoMap, memoKey = m, k
				memoLink = (*m)[k]
				if memoLink != nil {
					memoProp = time.Duration(memoLink.LatencyMS * float64(time.Millisecond))
				}
			}
			if l := memoLink; l != nil {
				if !l.Up() {
					return 0, false
				}
				prop := memoProp
				if l.BandwidthMbps <= 0 {
					return prop, true
				}
				// Serialization time plus head-of-line queueing.
				txTime := time.Duration(float64(size*8) / (l.BandwidthMbps * 1e6) * float64(time.Second))
				n.busyMu.Lock()
				start := now
				if b, ok := n.busyUntil[k]; ok && b.After(start) {
					start = b
				}
				n.busyUntil[k] = start.Add(txTime)
				n.busyMu.Unlock()
				if n.queueHist != nil {
					// Observing is three atomic ops — it cannot perturb
					// the event order or consume randomness, so the
					// reference run stays byte-identical.
					n.queueHist.Observe(float64(start.Sub(now)) / float64(time.Millisecond))
				}
				return start.Sub(now) + txTime + prop, true
			}
			return intra, true
		}
	}
	return nil
}

// routerConfig assembles an AS's router configuration, including the
// telemetry wiring (shared registry, trace ring, queue-delay hook).
func (n *Network) routerConfig(ia addr.IA) router.Config {
	return router.Config{
		IA:            ia,
		Key:           n.keys[ia],
		Net:           n.Transport,
		UseDispatcher: n.Opts.UseDispatcher,
		BatchWorkers:  n.Opts.RouterBatchWorkers,
		LinkUp: func(ifID uint16) bool {
			l, ok := n.Topo.LinkAt(topology.LinkEnd{IA: ia, IfID: ifID})
			return ok && n.Topo.LinkUp(l.ID)
		},
		Telemetry:  n.telem,
		Trace:      n.trace,
		QueueDelay: n.queueDelay,
	}
}

// queueDelay reports a directed wire's current transmit-queue backlog.
// It is the routers' QueueDelay hook, called outside the simulator lock
// for sampled packets only; the transport clock is read before busyMu so
// no lock is ever held while acquiring another.
func (n *Network) queueDelay(from, to netip.AddrPort) time.Duration {
	now := n.Transport.Now()
	n.busyMu.Lock()
	b, ok := n.busyUntil[wireKey{from, to}]
	n.busyMu.Unlock()
	if !ok || !b.After(now) {
		return 0
	}
	return b.Sub(now)
}

// Router returns the border router of an AS.
func (n *Network) Router(ia addr.IA) (*router.Router, bool) {
	r, ok := n.routers[ia]
	return r, ok
}

// Telemetry returns the network-wide metric registry (nil with
// Options.NoTelemetry).
func (n *Network) Telemetry() *telemetry.Registry { return n.telem }

// TraceRing returns the network-wide sampled packet-trace ring (nil with
// Options.NoTelemetry).
func (n *Network) TraceRing() *telemetry.TraceRing { return n.trace }

// TelemetrySnapshot freezes the registry plus the trace ring; with
// telemetry disabled it returns an empty snapshot.
func (n *Network) TelemetrySnapshot() telemetry.Snapshot {
	if n.telem == nil {
		return telemetry.Snapshot{}
	}
	return n.telem.SnapshotWithTrace(n.trace)
}

// Key returns an AS's hop key (used by test harnesses and the
// omniscient verifier).
func (n *Network) Key(ia addr.IA) scrypto.HopKey { return n.keys[ia] }

// Signer returns an AS's control-plane signer (nil without PKI).
func (n *Network) Signer(ia addr.IA) *cppki.Signer { return n.signers[ia] }

// TRCs returns the network's TRC store.
func (n *Network) TRCs() *cppki.Store { return n.trcs }

// ChainCache returns the verified-chain cache (nil without PKI).
func (n *Network) ChainCache() *cppki.ChainCache { return n.chains }

// Registry returns the current segment registry.
func (n *Network) Registry() *beacon.Registry {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.registry
}

// Paths performs a path lookup from src to dst: up segments from the
// source AS, core segments, down segments to the destination, combined
// into end-to-end paths (sorted by hops, then latency).
//
// Combinations are memoized per (src, dst) against the stamps of the
// backing segment stores, so the campaign hot path (every probe
// interval re-resolves its pair) pays Combine once per control-plane
// state instead of once per call. Callers share the returned slice and
// must not mutate it — path policies already copy before reordering.
func (n *Network) Paths(src, dst addr.IA) []*combinator.Path {
	reg := n.Registry()
	upDB := reg.Up[src]
	var upStamp uint64
	if upDB != nil {
		upStamp = upDB.Stamp()
	}
	coreStamp, downStamp := reg.Core.Stamp(), reg.Down.Stamp()
	key := [2]addr.IA{src, dst}
	n.pathsMu.Lock()
	if n.pathsReg == reg {
		if e, ok := n.pathsCache[key]; ok && e.up == upStamp && e.core == coreStamp && e.down == downStamp {
			n.pathsMu.Unlock()
			return e.paths
		}
	} else {
		n.pathsReg = reg
		n.pathsCache = make(map[[2]addr.IA]pathsCacheEntry)
	}
	n.pathsMu.Unlock()

	var upSegs []*segment.Segment
	if upDB != nil {
		upSegs = upDB.All()
	}
	downs := reg.Down.Get(0, dst)
	cores := reg.Core.All()
	paths := combinator.Combine(src, dst, upSegs, cores, downs)

	n.pathsMu.Lock()
	if n.pathsReg == reg {
		n.pathsCache[key] = pathsCacheEntry{up: upStamp, core: coreStamp, down: downStamp, paths: paths}
	}
	n.pathsMu.Unlock()
	return paths
}

// SetLinkUp changes a link's state and refreshes the control plane.
func (n *Network) SetLinkUp(linkID int, up bool) error {
	if err := n.Topo.SetLinkUp(linkID, up); err != nil {
		return err
	}
	return n.refreshControlPlane()
}

// HostAddr allocates an underlay address for an end host inside an AS.
// On the simulator it is a fresh simulated IP; on UDP it is loopback.
func (n *Network) HostAddr() netip.AddrPort {
	if sim, ok := n.Transport.(*simnet.Sim); ok {
		return netip.AddrPortFrom(sim.AllocAddr(), 0)
	}
	return netip.AddrPort{} // UDPNet assigns loopback automatically
}

// Close shuts down all routers and control services.
func (n *Network) Close() error {
	for _, s := range n.services {
		_ = s.Close()
	}
	for _, r := range n.routers {
		_ = r.Close()
	}
	return nil
}
