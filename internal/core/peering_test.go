package core

import (
	"testing"
	"time"

	"sciera/internal/addr"
	"sciera/internal/combinator"
	"sciera/internal/simnet"
	"sciera/internal/slayers"
	"sciera/internal/spath"
	"sciera/internal/topology"
)

var (
	lB = addr.MustParseIA("71-11")
	mM = addr.MustParseIA("71-20")
	lX = addr.MustParseIA("71-21")
	lY = addr.MustParseIA("71-22")
)

// buildPeerTopo extends the standard test net with a peering link
// between lA (under c1) and lB (under c3), and a three-tier branch
// c1 -> mM -> {lX, lY} whose leaves only reach each other via a
// shortcut crossover at mM.
func buildPeerTopo(t testing.TB) *topology.Topology {
	t.Helper()
	topo := buildTopo(t)
	for _, ia := range []addr.IA{lB, mM, lX, lY} {
		if err := topo.AddAS(topology.ASInfo{IA: ia}); err != nil {
			t.Fatal(err)
		}
	}
	link := func(a, b addr.IA, typ topology.LinkType, lat float64) {
		if _, err := topo.AddLink(topology.LinkEnd{IA: a}, topology.LinkEnd{IA: b}, typ, lat, ""); err != nil {
			t.Fatal(err)
		}
	}
	link(c3, lB, topology.LinkParent, 5)
	link(lA, lB, topology.LinkPeer, 3)
	link(c1, mM, topology.LinkParent, 10)
	link(mM, lX, topology.LinkParent, 4)
	link(mM, lY, topology.LinkParent, 6)
	return topo
}

// sendOver serializes a UDP packet over the given path and runs the sim.
func sendOver(t *testing.T, sim *simnet.Sim, src, dst *host, p *combinator.Path, payload string) {
	t.Helper()
	pkt := &slayers.Packet{
		Hdr: slayers.SCION{
			DstIA:   dst.ia,
			SrcIA:   src.ia,
			DstHost: dst.conn.LocalAddr().Addr(),
			SrcHost: src.conn.LocalAddr().Addr(),
			Path:    *p.Raw.Copy(),
		},
		UDP:     &slayers.UDP{SrcPort: src.conn.LocalAddr().Port(), DstPort: dst.conn.LocalAddr().Port()},
		Payload: []byte(payload),
	}
	raw, err := pkt.Serialize(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.conn.Send(raw, src.rtr.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	sim.Run()
}

// TestPeerPathDelivery sends a packet over the one-hop peering link
// path lA -> lB through the real border routers: the routers must apply
// the peer verification rule and forward across the peer link instead
// of climbing to the core.
func TestPeerPathDelivery(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n, err := Build(buildPeerTopo(t), sim, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	paths := n.Paths(lA, lB)
	var peer *combinator.Path
	for _, p := range paths {
		if p.NumHops() == 1 {
			peer = p
			break
		}
	}
	if peer == nil {
		t.Fatalf("no 1-hop peer path among %d paths lA->lB", len(paths))
	}

	src := attachHost(t, n, lA)
	dst := attachHost(t, n, lB)
	start := sim.Now()
	sendOver(t, sim, src, dst, peer, "over the peering link")

	if len(dst.recv) != 1 {
		rtrA, _ := n.Router(lA)
		rtrB, _ := n.Router(lB)
		t.Fatalf("delivered %d packets; lA MAC failures=%d, lB MAC failures=%d",
			len(dst.recv), rtrA.Metrics().MACFailures.Load(), rtrB.Metrics().MACFailures.Load())
	}
	if string(dst.recv[0].Payload) != "over the peering link" {
		t.Errorf("payload = %q", dst.recv[0].Payload)
	}
	// One-way delay is dominated by the 3ms peer link, far below the
	// 20ms+ up-core-down alternative.
	elapsed := sim.Now().Sub(start)
	if elapsed < 3*time.Millisecond || elapsed > 13*time.Millisecond {
		t.Errorf("peer delivery took %v, want ~3ms", elapsed)
	}
}

// TestPeerPathReplyInFlight checks in-flight reversal across a peering
// link: the receiver reverses the packet's path as a border router or
// SCMP responder would (accumulators kept as advanced in flight) and
// the reply must verify hop-by-hop back to the sender.
func TestPeerPathReplyInFlight(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n, err := Build(buildPeerTopo(t), sim, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	var peer *combinator.Path
	for _, p := range n.Paths(lA, lB) {
		if p.NumHops() == 1 {
			peer = p
			break
		}
	}
	if peer == nil {
		t.Fatal("no peer path")
	}
	src := attachHost(t, n, lA)
	dst := attachHost(t, n, lB)
	sendOver(t, sim, src, dst, peer, "ping?")
	if len(dst.recv) != 1 {
		t.Fatalf("request not delivered (%d packets)", len(dst.recv))
	}

	got := dst.recv[0]
	revPath, err := spath.ReverseFromCurrent(&got.Hdr.Path)
	if err != nil {
		t.Fatal(err)
	}
	reply := &slayers.Packet{
		Hdr: slayers.SCION{
			DstIA:   lA,
			SrcIA:   lB,
			DstHost: got.Hdr.SrcHost,
			SrcHost: got.Hdr.DstHost,
			Path:    *revPath,
		},
		UDP:     &slayers.UDP{SrcPort: got.UDP.DstPort, DstPort: got.UDP.SrcPort},
		Payload: []byte("pong!"),
	}
	raw, err := reply.Serialize(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.conn.Send(raw, dst.rtr.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if len(src.recv) != 1 {
		rtrA, _ := n.Router(lA)
		rtrB, _ := n.Router(lB)
		t.Fatalf("reply not delivered; lA MAC failures=%d, lB MAC failures=%d",
			rtrA.Metrics().MACFailures.Load(), rtrB.Metrics().MACFailures.Load())
	}
	if string(src.recv[0].Payload) != "pong!" {
		t.Errorf("reply payload = %q", src.recv[0].Payload)
	}
}

// TestShortcutPathDelivery sends a packet over the two-hop shortcut
// lX -> mM -> lY: the crossover router at mM must verify both truncated
// hop fields and switch segments without bouncing via the core.
func TestShortcutPathDelivery(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n, err := Build(buildPeerTopo(t), sim, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	paths := n.Paths(lX, lY)
	if len(paths) == 0 {
		t.Fatal("no paths lX->lY")
	}
	var sc *combinator.Path
	for _, p := range paths {
		if p.NumHops() == 2 {
			sc = p
			break
		}
	}
	if sc == nil {
		t.Fatalf("no 2-hop shortcut among %d paths lX->lY", len(paths))
	}
	if got := sc.ASes(); got[1] != mM {
		t.Fatalf("shortcut crosses %v, want mM", got[1])
	}

	src := attachHost(t, n, lX)
	dst := attachHost(t, n, lY)
	start := sim.Now()
	sendOver(t, sim, src, dst, sc, "through the shortcut")

	if len(dst.recv) != 1 {
		rtrM, _ := n.Router(mM)
		t.Fatalf("delivered %d packets; mM MAC failures=%d drops=%d",
			len(dst.recv), rtrM.Metrics().MACFailures.Load(), rtrM.Metrics().NoRouteDrops.Load())
	}
	if string(dst.recv[0].Payload) != "through the shortcut" {
		t.Errorf("payload = %q", dst.recv[0].Payload)
	}
	// 4ms + 6ms links, no 10ms climb to c1 and back.
	elapsed := sim.Now().Sub(start)
	if elapsed < 10*time.Millisecond || elapsed > 20*time.Millisecond {
		t.Errorf("shortcut delivery took %v, want ~10ms", elapsed)
	}
	// The crossover router saw the packet exactly once.
	rtrM, _ := n.Router(mM)
	if fwd := rtrM.Metrics().Forwarded.Load(); fwd != 1 {
		t.Errorf("mM forwarded = %d, want 1", fwd)
	}
}

// TestShortcutReplyInFlight reverses a shortcut path mid-flight and
// sends the reply back through the crossover.
func TestShortcutReplyInFlight(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n, err := Build(buildPeerTopo(t), sim, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	var sc *combinator.Path
	for _, p := range n.Paths(lX, lY) {
		if p.NumHops() == 2 {
			sc = p
			break
		}
	}
	if sc == nil {
		t.Fatal("no shortcut")
	}
	src := attachHost(t, n, lX)
	dst := attachHost(t, n, lY)
	sendOver(t, sim, src, dst, sc, "there")
	if len(dst.recv) != 1 {
		t.Fatal("request not delivered")
	}

	revPath, err := spath.ReverseFromCurrent(&dst.recv[0].Hdr.Path)
	if err != nil {
		t.Fatal(err)
	}
	reply := &slayers.Packet{
		Hdr: slayers.SCION{
			DstIA:   lX,
			SrcIA:   lY,
			DstHost: src.conn.LocalAddr().Addr(),
			SrcHost: dst.conn.LocalAddr().Addr(),
			Path:    *revPath,
		},
		UDP:     &slayers.UDP{SrcPort: dst.conn.LocalAddr().Port(), DstPort: src.conn.LocalAddr().Port()},
		Payload: []byte("and back"),
	}
	raw, err := reply.Serialize(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.conn.Send(raw, dst.rtr.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if len(src.recv) != 1 {
		t.Fatalf("reply not delivered (%d packets at src)", len(src.recv))
	}
	if string(src.recv[0].Payload) != "and back" {
		t.Errorf("reply payload = %q", src.recv[0].Payload)
	}
}

// TestPeerEchoOverNetwork runs an SCMP echo over the peering link: the
// responder-side delivery to the end-host port plus the in-flight
// reversal done by the network's echo machinery must both handle the
// Peer-flagged path.
func TestPeerEchoOverNetwork(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n, err := Build(buildPeerTopo(t), sim, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	resp, err := n.AttachResponder(lB)
	if err != nil {
		t.Fatal(err)
	}
	pinger, err := n.NewPinger(lA)
	if err != nil {
		t.Fatal(err)
	}
	var peer *combinator.Path
	for _, p := range n.Paths(lA, lB) {
		if p.NumHops() == 1 {
			peer = p
			break
		}
	}
	if peer == nil {
		t.Fatal("no peer path")
	}
	var rtt time.Duration
	var pingErr error
	done := make(chan struct{})
	pinger.Ping(lB, resp.Addr().Addr(), peer, 2*time.Second, func(d time.Duration, err error) {
		rtt, pingErr = d, err
		close(done)
	})
	sim.Run()
	select {
	case <-done:
	default:
		t.Fatal("ping did not complete")
	}
	if pingErr != nil {
		t.Fatalf("ping over peer path: %v", pingErr)
	}
	// RTT ≈ 2 x 3ms peer link (plus intra-AS delays).
	if rtt < 6*time.Millisecond || rtt > 26*time.Millisecond {
		t.Errorf("peer echo RTT = %v, want ~6ms", rtt)
	}
}
