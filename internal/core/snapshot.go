package core

// Converged-state snapshots: after one reference replica converges, its
// entire control-plane state — segment registries, trust material,
// memoized path combinations, beacon counters, and the position of the
// seeded control-plane RNG — is captured into an immutable Snapshot.
// Worker replicas are then constructed by copy-on-write cloning
// (BuildWarm + InstallSnapshot) instead of re-running beaconing, which
// is what makes sharded-campaign setup O(1) in the worker count.
//
// Determinism argument (docs/architecture.md has the long form): a
// cloned replica is byte-identical to an independently converged one
// because (1) the registry clone shares the very segment objects the
// reference converged to, and pathdb result order is a property of the
// store (ID-sorted), so every lookup answers identically; (2) the only
// consumer of the seeded RNG is beacon origination, and the counting
// source lets the clone fast-forward to the reference's exact position,
// so mid-campaign incident refreshes replay the same draws; (3) hop
// keys are re-derived from (seed, IA) and trust material is shared (or,
// for on-disk snapshots, re-provisioned from crypto/rand, which never
// feeds figure output); and (4) PKI provisioning and beaconing perform
// no transport operations, so the warm build allocates the same
// simulated addresses and ports in the same order as a cold one.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"

	"sciera/internal/addr"
	"sciera/internal/beacon"
	"sciera/internal/combinator"
	"sciera/internal/cppki"
	"sciera/internal/pathdb"
	"sciera/internal/segment"
	"sciera/internal/telemetry"
)

// SnapshotVersion is the on-disk snapshot format version.
const SnapshotVersion = 1

// countingSource wraps the seeded math/rand source, counting generator
// state advances. It is a pure pass-through — the wrapped source
// produces the exact byte stream it would unwrapped (it implements
// rand.Source64, so rand.Rand takes the same Uint64 path) — which keeps
// every existing seeded run byte-identical. Each Int63/Uint64 call
// advances the underlying generator state exactly once, so the count
// identifies the generator position independent of which method was
// called, and a clone can fast-forward by discarding that many draws.
type countingSource struct {
	src   rand.Source64
	count uint64
}

// newCountingSource seeds a counting source. rand.NewSource's result
// implements Source64 (guaranteed since Go 1.8).
func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (c *countingSource) Int63() int64 {
	c.count++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.count++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.count = 0
	c.src.Seed(seed)
}

// Count returns how many times the generator state has advanced.
func (c *countingSource) Count() uint64 { return c.count }

// BeaconCounters holds the cumulative beacon runner counter values at
// snapshot time. Clones restore them into fresh private cells, so a
// warm-started replica reports the same beaconing telemetry an
// independently converged one would.
type BeaconCounters struct {
	Originated   uint64 `json:"originated"`
	Propagated   uint64 `json:"propagated"`
	Filtered     uint64 `json:"filtered"`
	Pruned       uint64 `json:"pruned"`
	Registered   uint64 `json:"registered"`
	Verified     uint64 `json:"verified"`
	VerifyFailed uint64 `json:"verify_failed"`
}

// Snapshot is an immutable capture of a converged network's
// control-plane state. In-memory snapshots share the reference
// replica's segment objects, trust material and memoized combinations
// by reference (all immutable or concurrency-safe); the serializable
// form (WriteFile/LoadSnapshotFile) carries segments and counters but
// omits trust material (private keys never leave the process) and the
// derivable combination memo.
type Snapshot struct {
	// Seed, WithPKI, ASes and Links fingerprint the configuration the
	// snapshot was taken under; InstallSnapshot refuses a mismatch.
	Seed    int64
	WithPKI bool
	ASes    int
	Links   int
	// RandDraws is the seeded control-plane RNG position: how many
	// state advances convergence consumed. Clones fast-forward to it.
	RandDraws uint64
	// Registry is the reference replica's converged segment registry;
	// each InstallSnapshot clones it copy-on-write.
	Registry *beacon.Registry
	// Trust is the shared trust bundle (nil for snapshots loaded from
	// disk, or unsigned networks; loaded PKI snapshots re-provision).
	Trust *cppki.TrustMaterial
	// Paths carries the memoized path combinations captured from the
	// reference (WarmPaths primes them); clones re-stamp the entries
	// against their own cloned stores.
	Paths map[[2]addr.IA][]*combinator.Path
	// Beacon holds the counter values at capture time; VerifyLatency is
	// the reference's verification-latency histogram (nil unsigned),
	// merged into each clone's fresh histogram.
	Beacon        BeaconCounters
	VerifyLatency *telemetry.Histogram
}

// newVerifyLatencyHistogram allocates the per-beacon verification
// latency histogram with the bucket layout shared by cold refreshes and
// snapshot restores (Histogram.Merge requires identical bounds).
func newVerifyLatencyHistogram() *telemetry.Histogram {
	return telemetry.NewHistogram(0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10)
}

// WarmPaths primes the memoized path combinations for the given
// (src, dst) pairs, so a Snapshot taken afterwards carries them and
// every clone starts with a fully warm lookup memo.
func (n *Network) WarmPaths(pairs [][2]addr.IA) {
	for _, p := range pairs {
		n.Paths(p[0], p[1])
	}
}

// Snapshot captures the network's converged control-plane state. The
// network must stay unmutated (no refresh, no topology change) while
// clones install from the snapshot — in the campaign flow the reference
// replica is closed right after capture.
func (n *Network) Snapshot() (*Snapshot, error) {
	reg := n.Registry()
	if reg == nil {
		return nil, fmt.Errorf("core: snapshot of an unconverged network")
	}
	s := &Snapshot{
		Seed:      n.Opts.Seed,
		WithPKI:   n.Opts.WithPKI,
		ASes:      len(n.Topo.ASes()),
		Links:     len(n.Topo.Links()),
		RandDraws: n.rngSrc.Count(),
		Registry:  reg,
	}
	if n.Opts.WithPKI {
		s.Trust = &cppki.TrustMaterial{TRCs: n.trcs, Signers: n.signers, Chains: n.chains}
	}
	if m := n.beaconMetrics; m != nil {
		s.Beacon = BeaconCounters{
			Originated:   m.Originated.Load(),
			Propagated:   m.Propagated.Load(),
			Filtered:     m.Filtered.Load(),
			Pruned:       m.Pruned.Load(),
			Registered:   m.Registered.Load(),
			Verified:     m.Verified.Load(),
			VerifyFailed: m.VerifyFailed.Load(),
		}
		s.VerifyLatency = m.VerifyLatency
	}
	// Capture the memoized combinations still valid against the current
	// stores (WarmPaths just primed them, so normally all of them).
	n.pathsMu.Lock()
	if n.pathsReg == reg && len(n.pathsCache) > 0 {
		coreStamp, downStamp := reg.Core.Stamp(), reg.Down.Stamp()
		s.Paths = make(map[[2]addr.IA][]*combinator.Path, len(n.pathsCache))
		for k, e := range n.pathsCache {
			var upStamp uint64
			if db := reg.Up[k[0]]; db != nil {
				upStamp = db.Stamp()
			}
			if e.up == upStamp && e.core == coreStamp && e.down == downStamp {
				s.Paths[k] = e.paths
			}
		}
	}
	n.pathsMu.Unlock()
	return s, nil
}

// InstallSnapshot makes a BuildWarm network serve a snapshot's
// converged control-plane state: the registry is installed as a
// copy-on-write clone, trust material is adopted (or, for snapshots
// loaded from disk under WithPKI, re-provisioned), beacon counters are
// restored into fresh private cells, the seeded RNG fast-forwards to
// the recorded position, and the combination memo is re-stamped against
// the clone's own stores. The network's topology must match the
// snapshot's (same seed, PKI mode, AS and link counts) — callers add
// runtime links before installing.
func (n *Network) InstallSnapshot(snap *Snapshot) error {
	switch {
	case snap.Registry == nil:
		return fmt.Errorf("core: snapshot has no registry")
	case snap.Seed != n.Opts.Seed:
		return fmt.Errorf("core: snapshot seed %d, network seed %d", snap.Seed, n.Opts.Seed)
	case snap.WithPKI != n.Opts.WithPKI:
		return fmt.Errorf("core: snapshot with_pki=%v, network with_pki=%v", snap.WithPKI, n.Opts.WithPKI)
	case snap.ASes != len(n.Topo.ASes()):
		return fmt.Errorf("core: snapshot has %d ASes, topology has %d", snap.ASes, len(n.Topo.ASes()))
	case snap.Links != len(n.Topo.Links()):
		return fmt.Errorf("core: snapshot has %d links, topology has %d", snap.Links, len(n.Topo.Links()))
	}
	if n.Registry() != nil {
		return fmt.Errorf("core: network already converged (InstallSnapshot requires BuildWarm)")
	}
	if got := n.rngSrc.Count(); got != 0 {
		return fmt.Errorf("core: warm network consumed %d RNG draws before install", got)
	}

	// Trust: share the reference's material, or provision fresh for
	// snapshots loaded from disk (PKI material never feeds the seeded
	// RNG or figure output, so a fresh PKI preserves byte-identity).
	// The shared chain cache's telemetry cells are deliberately not
	// re-registered into this replica's registry: they are owned by the
	// reference capture, and registering shared cells in every clone
	// would multiply them in merged telemetry.
	if snap.Trust != nil {
		n.trcs = snap.Trust.TRCs
		n.signers = snap.Trust.Signers
		n.chains = snap.Trust.Chains
	} else if n.Opts.WithPKI {
		if err := n.provisionPKI(); err != nil {
			return err
		}
	}

	// Registry: copy-on-write clone, plus the empty per-AS up-segment
	// stores beaconing would have created (on-disk snapshots omit
	// segmentless ASes).
	reg := snap.Registry.Clone()
	for _, as := range n.Topo.ASes() {
		if !as.Core && reg.Up[as.IA] == nil {
			reg.Up[as.IA] = pathdb.New()
		}
	}

	// Beacon telemetry: fresh private cells restored to the reference's
	// values, so a clone's counters match an independently converged
	// replica's and per-worker registries merge identically.
	n.beaconMetrics = &beacon.RunnerMetrics{}
	n.beaconMetrics.Originated.Add(snap.Beacon.Originated)
	n.beaconMetrics.Propagated.Add(snap.Beacon.Propagated)
	n.beaconMetrics.Filtered.Add(snap.Beacon.Filtered)
	n.beaconMetrics.Pruned.Add(snap.Beacon.Pruned)
	n.beaconMetrics.Registered.Add(snap.Beacon.Registered)
	n.beaconMetrics.Verified.Add(snap.Beacon.Verified)
	n.beaconMetrics.VerifyFailed.Add(snap.Beacon.VerifyFailed)
	if n.Opts.WithPKI {
		n.beaconMetrics.VerifyLatency = newVerifyLatencyHistogram()
		if snap.VerifyLatency != nil {
			if err := n.beaconMetrics.VerifyLatency.Merge(snap.VerifyLatency); err != nil {
				return err
			}
		}
	}
	if n.telem != nil {
		n.beaconMetrics.Register(n.telem)
	}

	// Fast-forward the seeded RNG to the reference's position, so the
	// next consumer (an incident-triggered refresh) draws exactly what
	// it would on an independently converged replica.
	for n.rngSrc.Count() < snap.RandDraws {
		n.rngSrc.Uint64()
	}

	n.mu.Lock()
	n.registry = reg
	n.mu.Unlock()

	// Combination memo, re-stamped against the clone's own stores
	// (stamps fold in store identity and are never shared or
	// serialized).
	if len(snap.Paths) > 0 {
		coreStamp, downStamp := reg.Core.Stamp(), reg.Down.Stamp()
		cache := make(map[[2]addr.IA]pathsCacheEntry, len(snap.Paths))
		for k, paths := range snap.Paths {
			var upStamp uint64
			if db := reg.Up[k[0]]; db != nil {
				upStamp = db.Stamp()
			}
			cache[k] = pathsCacheEntry{up: upStamp, core: coreStamp, down: downStamp, paths: paths}
		}
		n.pathsMu.Lock()
		n.pathsReg = reg
		n.pathsCache = cache
		n.pathsMu.Unlock()
		n.warmPaths = snap.Paths
		n.warmReg = reg
	}
	return nil
}

// snapshotFile is the canonical serializable snapshot form. Up-segment
// stores are per-AS membership lists of segment IDs into the down set:
// beaconing registers the same terminated segment into both the local
// up store and the global down store, and the ID reference restores
// that sharing on load. Encoding is canonical — segments are emitted in
// store order (ID-sorted, a property of pathdb), map keys sort under
// encoding/json — so identical state produces identical bytes.
type snapshotFile struct {
	Version   int                 `json:"version"`
	Seed      int64               `json:"seed"`
	WithPKI   bool                `json:"with_pki"`
	ASes      int                 `json:"ases"`
	Links     int                 `json:"links"`
	RandDraws uint64              `json:"rand_draws"`
	Beacon    BeaconCounters      `json:"beacon_counters"`
	Core      []json.RawMessage   `json:"core_segments"`
	Down      []json.RawMessage   `json:"down_segments"`
	Up        map[string][]string `json:"up_segments"`
}

// WriteFile serializes the snapshot to path in the canonical,
// seed-stamped on-disk form. Trust material and the combination memo
// are omitted: private keys must not leave the process (a loaded
// WithPKI snapshot provisions a fresh PKI), and combinations are
// derivable from the registries.
func (s *Snapshot) WriteFile(path string) error {
	f := snapshotFile{
		Version:   SnapshotVersion,
		Seed:      s.Seed,
		WithPKI:   s.WithPKI,
		ASes:      s.ASes,
		Links:     s.Links,
		RandDraws: s.RandDraws,
		Beacon:    s.Beacon,
		Up:        make(map[string][]string),
	}
	encode := func(segs []*segment.Segment) ([]json.RawMessage, error) {
		out := make([]json.RawMessage, 0, len(segs))
		for _, seg := range segs {
			b, err := seg.Encode()
			if err != nil {
				return nil, err
			}
			out = append(out, b)
		}
		return out, nil
	}
	var err error
	if f.Core, err = encode(s.Registry.Core.All()); err != nil {
		return err
	}
	if f.Down, err = encode(s.Registry.Down.All()); err != nil {
		return err
	}
	for ia, db := range s.Registry.Up {
		segs := db.All()
		if len(segs) == 0 {
			continue
		}
		ids := make([]string, len(segs))
		for i, seg := range segs {
			ids[i] = seg.ID()
		}
		f.Up[ia.String()] = ids
	}
	enc, err := json.Marshal(f)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(enc, '\n'), 0o644)
}

// LoadSnapshotFile reads a snapshot written by WriteFile and rebuilds
// the in-memory registries (re-establishing the up/down segment object
// sharing). The result carries no trust material and no combination
// memo; InstallSnapshot provisions and recombines as needed.
func LoadSnapshotFile(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f snapshotFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("core: snapshot %s: %w", path, err)
	}
	if f.Version != SnapshotVersion {
		return nil, fmt.Errorf("core: snapshot %s: version %d, want %d", path, f.Version, SnapshotVersion)
	}
	reg := &beacon.Registry{
		Up:   make(map[addr.IA]*pathdb.DB),
		Core: pathdb.New(),
		Down: pathdb.New(),
	}
	for _, b := range f.Core {
		seg, err := segment.Decode(b)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot %s: core segment: %w", path, err)
		}
		reg.Core.Insert(seg)
	}
	byID := make(map[string]*segment.Segment, len(f.Down))
	for _, b := range f.Down {
		seg, err := segment.Decode(b)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot %s: down segment: %w", path, err)
		}
		reg.Down.Insert(seg)
		byID[seg.ID()] = seg
	}
	for iaStr, ids := range f.Up {
		ia, err := addr.ParseIA(iaStr)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot %s: up store %q: %w", path, iaStr, err)
		}
		db := pathdb.New()
		for _, id := range ids {
			seg, ok := byID[id]
			if !ok {
				return nil, fmt.Errorf("core: snapshot %s: up segment %s of %s not in down set", path, id, iaStr)
			}
			db.Insert(seg)
		}
		reg.Up[ia] = db
	}
	return &Snapshot{
		Seed:      f.Seed,
		WithPKI:   f.WithPKI,
		ASes:      f.ASes,
		Links:     f.Links,
		RandDraws: f.RandDraws,
		Beacon:    f.Beacon,
		Registry:  reg,
	}, nil
}
