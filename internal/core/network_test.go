package core

import (
	"net/netip"
	"testing"
	"time"

	"sciera/internal/addr"
	"sciera/internal/router"
	"sciera/internal/simnet"
	"sciera/internal/slayers"
	"sciera/internal/topology"
)

var (
	c1 = addr.MustParseIA("71-1")
	c2 = addr.MustParseIA("71-2")
	c3 = addr.MustParseIA("71-3")
	lA = addr.MustParseIA("71-10")
	lC = addr.MustParseIA("71-12")
)

// buildTopo: three meshed cores (c1-c2 doubled), leaves on c1 and c3.
func buildTopo(t testing.TB) *topology.Topology {
	t.Helper()
	topo := topology.New()
	for _, ia := range []addr.IA{c1, c2, c3} {
		if err := topo.AddAS(topology.ASInfo{IA: ia, Core: true}); err != nil {
			t.Fatal(err)
		}
	}
	for _, ia := range []addr.IA{lA, lC} {
		if err := topo.AddAS(topology.ASInfo{IA: ia}); err != nil {
			t.Fatal(err)
		}
	}
	link := func(a, b addr.IA, typ topology.LinkType, lat float64) {
		if _, err := topo.AddLink(topology.LinkEnd{IA: a}, topology.LinkEnd{IA: b}, typ, lat, ""); err != nil {
			t.Fatal(err)
		}
	}
	link(c1, c2, topology.LinkCore, 10)
	link(c1, c2, topology.LinkCore, 30)
	link(c2, c3, topology.LinkCore, 10)
	link(c1, c3, topology.LinkCore, 50)
	link(c1, lA, topology.LinkParent, 5)
	link(c3, lC, topology.LinkParent, 5)
	return topo
}

func buildNet(t testing.TB, sim *simnet.Sim) *Network {
	t.Helper()
	n, err := Build(buildTopo(t), sim, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// host attaches a raw underlay conn inside an AS.
type host struct {
	ia   addr.IA
	conn simnet.Conn
	rtr  *router.Router
	recv []*slayers.Packet
}

func attachHost(t testing.TB, n *Network, ia addr.IA) *host {
	t.Helper()
	h := &host{ia: ia}
	r, ok := n.Router(ia)
	if !ok {
		t.Fatalf("no router for %v", ia)
	}
	h.rtr = r
	conn, err := n.Transport.Listen(n.HostAddr(), func(pkt []byte, from netip.AddrPort) {
		var p slayers.Packet
		if err := p.Decode(pkt); err != nil {
			t.Errorf("host %v: decode: %v", ia, err)
			return
		}
		cp := p
		cp.Payload = append([]byte(nil), p.Payload...)
		h.recv = append(h.recv, &cp)
	})
	if err != nil {
		t.Fatal(err)
	}
	h.conn = conn
	return h
}

func TestEndToEndUDPDelivery(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n := buildNet(t, sim)
	defer n.Close()

	paths := n.Paths(lA, lC)
	if len(paths) == 0 {
		t.Fatal("no paths lA->lC")
	}
	src := attachHost(t, n, lA)
	dst := attachHost(t, n, lC)

	pkt := &slayers.Packet{
		Hdr: slayers.SCION{
			DstIA:   lC,
			SrcIA:   lA,
			DstHost: dst.conn.LocalAddr().Addr(),
			SrcHost: src.conn.LocalAddr().Addr(),
			Path:    *paths[0].Raw.Copy(),
		},
		UDP:     &slayers.UDP{SrcPort: src.conn.LocalAddr().Port(), DstPort: dst.conn.LocalAddr().Port()},
		Payload: []byte("across the sciera"),
	}
	raw, err := pkt.Serialize(nil)
	if err != nil {
		t.Fatal(err)
	}
	start := sim.Now()
	if err := src.conn.Send(raw, src.rtr.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	sim.Run()

	if len(dst.recv) != 1 {
		t.Fatalf("dst received %d packets", len(dst.recv))
	}
	got := dst.recv[0]
	if string(got.Payload) != "across the sciera" {
		t.Errorf("payload = %q", got.Payload)
	}
	if got.Hdr.SrcIA != lA || got.Hdr.DstIA != lC {
		t.Errorf("IAs = %v -> %v", got.Hdr.SrcIA, got.Hdr.DstIA)
	}
	// One-way delay ≈ path latency + intra-AS hops.
	elapsed := sim.Now().Sub(start)
	wantMin := time.Duration(paths[0].LatencyMS * float64(time.Millisecond))
	if elapsed < wantMin || elapsed > wantMin+10*time.Millisecond {
		t.Errorf("delivery took %v, path latency %v", elapsed, wantMin)
	}
	// Router metrics: forwarded at transit, delivered at destination.
	dstRtr, _ := n.Router(lC)
	if dstRtr.Metrics().Delivered.Load() != 1 {
		t.Errorf("delivered = %d", dstRtr.Metrics().Delivered.Load())
	}
}

func TestAllPathsDeliver(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n := buildNet(t, sim)
	defer n.Close()
	src := attachHost(t, n, lA)
	dst := attachHost(t, n, lC)

	paths := n.Paths(lA, lC)
	if len(paths) < 3 {
		t.Fatalf("paths = %d", len(paths))
	}
	for i, p := range paths {
		pkt := &slayers.Packet{
			Hdr: slayers.SCION{
				DstIA:   lC,
				SrcIA:   lA,
				DstHost: dst.conn.LocalAddr().Addr(),
				SrcHost: src.conn.LocalAddr().Addr(),
				Path:    *p.Raw.Copy(),
			},
			UDP:     &slayers.UDP{SrcPort: src.conn.LocalAddr().Port(), DstPort: dst.conn.LocalAddr().Port()},
			Payload: []byte{byte(i)},
		}
		raw, err := pkt.Serialize(nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := src.conn.Send(raw, src.rtr.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	if len(dst.recv) != len(paths) {
		t.Fatalf("delivered %d of %d paths", len(dst.recv), len(paths))
	}
}

func TestTamperedPacketDropped(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n := buildNet(t, sim)
	defer n.Close()
	src := attachHost(t, n, lA)
	dst := attachHost(t, n, lC)

	paths := n.Paths(lA, lC)
	p := paths[0].Raw.Copy()
	// Forge the construction-ingress interface of a middle hop (a path
	// splicing attempt): MAC verification at that AS must reject it.
	// (Forging ConsEgress would already fail the ingress check, since
	// ConsEgress is the data-plane arrival interface on reversed
	// segments.)
	p.Hops[1].ConsIngress ^= 0x7
	pkt := &slayers.Packet{
		Hdr: slayers.SCION{
			DstIA: lC, SrcIA: lA,
			DstHost: dst.conn.LocalAddr().Addr(),
			SrcHost: src.conn.LocalAddr().Addr(),
			Path:    *p,
		},
		UDP: &slayers.UDP{SrcPort: src.conn.LocalAddr().Port(), DstPort: dst.conn.LocalAddr().Port()},
	}
	raw, _ := pkt.Serialize(nil)
	_ = src.conn.Send(raw, src.rtr.LocalAddr())
	sim.Run()
	if len(dst.recv) != 0 {
		t.Fatal("tampered packet delivered")
	}
	// Some router recorded a MAC failure.
	total := uint64(0)
	for _, ia := range []addr.IA{c1, c2, c3, lA, lC} {
		r, _ := n.Router(ia)
		total += r.Metrics().MACFailures.Load()
	}
	if total == 0 {
		t.Error("no MAC failure recorded")
	}
}

func TestLinkDownGeneratesSCMPAndReroute(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n := buildNet(t, sim)
	defer n.Close()
	src := attachHost(t, n, lA)
	dst := attachHost(t, n, lC)

	paths := n.Paths(lA, lC)
	p0 := paths[0]

	// Cut a link on the first path (an inter-core one).
	var cutLink int = -1
	for i := 0; i < len(p0.Interfaces); i += 2 {
		l, ok := n.Topo.LinkAt(topology.LinkEnd{IA: p0.Interfaces[i].IA, IfID: p0.Interfaces[i].IfID})
		if ok && l.Type == topology.LinkCore {
			cutLink = l.ID
			break
		}
	}
	if cutLink < 0 {
		t.Fatal("no core link on path")
	}
	// Cut only the data plane first (SetLinkUp on topo, no refresh) so
	// the stale path triggers SCMP ExternalInterfaceDown.
	if err := n.Topo.SetLinkUp(cutLink, false); err != nil {
		t.Fatal(err)
	}

	pkt := &slayers.Packet{
		Hdr: slayers.SCION{
			DstIA: lC, SrcIA: lA,
			DstHost: dst.conn.LocalAddr().Addr(),
			SrcHost: src.conn.LocalAddr().Addr(),
			Path:    *p0.Raw.Copy(),
		},
		UDP: &slayers.UDP{SrcPort: src.conn.LocalAddr().Port(), DstPort: dst.conn.LocalAddr().Port()},
	}
	raw, _ := pkt.Serialize(nil)
	_ = src.conn.Send(raw, src.rtr.LocalAddr())
	sim.Run()

	if len(dst.recv) != 0 {
		t.Fatal("packet crossed a downed link")
	}
	// The source host received an SCMP ExternalInterfaceDown.
	if len(src.recv) != 1 {
		t.Fatalf("src received %d packets, want 1 SCMP error", len(src.recv))
	}
	scmp := src.recv[0].SCMP
	if scmp == nil || scmp.Type != slayers.SCMPExternalInterfaceDown {
		t.Fatalf("got %+v", src.recv[0])
	}

	// After a control-plane refresh, new paths avoid the dead link and
	// still deliver.
	if err := n.RefreshControlPlane(); err != nil {
		t.Fatal(err)
	}
	fresh := n.Paths(lA, lC)
	if len(fresh) == 0 {
		t.Fatal("no paths after refresh")
	}
	for _, p := range fresh {
		for i := 0; i < len(p.Interfaces); i += 2 {
			l, ok := n.Topo.LinkAt(topology.LinkEnd{IA: p.Interfaces[i].IA, IfID: p.Interfaces[i].IfID})
			if ok && l.ID == cutLink {
				t.Fatal("fresh path uses the dead link")
			}
		}
	}
	pkt.Hdr.Path = *fresh[0].Raw.Copy()
	raw, _ = pkt.Serialize(nil)
	_ = src.conn.Send(raw, src.rtr.LocalAddr())
	sim.Run()
	if len(dst.recv) != 1 {
		t.Fatal("rerouted packet not delivered")
	}
}

func TestEchoOverNetwork(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n := buildNet(t, sim)
	defer n.Close()
	src := attachHost(t, n, lA)

	// Echo requests address a host: they land on the well-known
	// end-host SCMP port, where the stack's responder listens.
	dstHost := sim.AllocAddr()
	var gotReq *slayers.Packet
	_, err := sim.Listen(netip.AddrPortFrom(dstHost, router.EndhostPort), func(pkt []byte, from netip.AddrPort) {
		var p slayers.Packet
		if err := p.Decode(pkt); err != nil {
			t.Errorf("decode: %v", err)
			return
		}
		gotReq = &p
	})
	if err != nil {
		t.Fatal(err)
	}

	paths := n.Paths(lA, lC)
	pkt := &slayers.Packet{
		Hdr: slayers.SCION{
			DstIA: lC, SrcIA: lA,
			DstHost: dstHost,
			SrcHost: src.conn.LocalAddr().Addr(),
			Path:    *paths[0].Raw.Copy(),
		},
		SCMP:    &slayers.SCMP{Type: slayers.SCMPEchoRequest, Identifier: src.conn.LocalAddr().Port(), SeqNo: 1},
		Payload: []byte("ping"),
	}
	raw, _ := pkt.Serialize(nil)
	_ = src.conn.Send(raw, src.rtr.LocalAddr())
	sim.Run()
	if gotReq == nil || gotReq.SCMP == nil || gotReq.SCMP.Type != slayers.SCMPEchoRequest {
		t.Fatalf("echo request not delivered to end-host port: %+v", gotReq)
	}
}

func TestDispatcherModeDelivery(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n, err := Build(buildTopo(t), sim, Options{Seed: 1, UseDispatcher: true})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	src := attachHost(t, n, lA)

	// A "dispatcher" listens on the shared port at the destination host
	// address.
	dstRtr, _ := n.Router(lC)
	dispAddrPort := netip.AddrPortFrom(sim.AllocAddr(), router.DispatcherPort)
	var got []byte
	_, err = sim.Listen(dispAddrPort, func(pkt []byte, from netip.AddrPort) {
		got = append([]byte(nil), pkt...)
	})
	if err != nil {
		t.Fatal(err)
	}

	paths := n.Paths(lA, lC)
	pkt := &slayers.Packet{
		Hdr: slayers.SCION{
			DstIA: lC, SrcIA: lA,
			DstHost: dispAddrPort.Addr(),
			SrcHost: src.conn.LocalAddr().Addr(),
			Path:    *paths[0].Raw.Copy(),
		},
		UDP:     &slayers.UDP{SrcPort: 1, DstPort: 9999}, // app port != dispatcher port
		Payload: []byte("via dispatcher"),
	}
	raw, _ := pkt.Serialize(nil)
	_ = src.conn.Send(raw, src.rtr.LocalAddr())
	sim.Run()
	if got == nil {
		t.Fatal("dispatcher did not receive the packet")
	}
	var p slayers.Packet
	if err := p.Decode(got); err != nil {
		t.Fatal(err)
	}
	if p.UDP == nil || p.UDP.DstPort != 9999 {
		t.Errorf("dispatcher packet = %+v", p.UDP)
	}
	_ = dstRtr
}

func TestPKIEnabledNetworkSignsBeacons(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n, err := Build(buildTopo(t), sim, Options{Seed: 1, WithPKI: true, Now: time.Now()})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	reg := n.Registry()
	segs := reg.Core.All()
	if len(segs) == 0 {
		t.Fatal("no core segments")
	}
	for _, s := range segs {
		if err := s.VerifySignatures(n.TRCs(), time.Now()); err != nil {
			t.Fatalf("segment %v: %v", s, err)
		}
	}
	if n.Signer(lA) == nil {
		t.Error("leaf has no signer")
	}
}

func TestBuildOnUDPNet(t *testing.T) {
	udp := simnet.NewUDPNet()
	defer udp.Close()
	n, err := Build(buildTopo(t), udp, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	recvd := make(chan []byte, 1)
	hostConn, err := udp.Listen(netip.AddrPort{}, func(pkt []byte, from netip.AddrPort) {
		select {
		case recvd <- pkt:
		default:
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	paths := n.Paths(lA, lC)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	srcRtr, _ := n.Router(lA)
	pkt := &slayers.Packet{
		Hdr: slayers.SCION{
			DstIA: lC, SrcIA: lA,
			DstHost: hostConn.LocalAddr().Addr(),
			SrcHost: hostConn.LocalAddr().Addr(),
			Path:    *paths[0].Raw.Copy(),
		},
		UDP:     &slayers.UDP{SrcPort: hostConn.LocalAddr().Port(), DstPort: hostConn.LocalAddr().Port()},
		Payload: []byte("over real loopback UDP"),
	}
	raw, _ := pkt.Serialize(nil)
	if err := hostConn.Send(raw, srcRtr.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-recvd:
		var p slayers.Packet
		if err := p.Decode(got); err != nil {
			t.Fatal(err)
		}
		if string(p.Payload) != "over real loopback UDP" {
			t.Errorf("payload = %q", p.Payload)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("timeout: packet did not traverse the loopback network")
	}
}
