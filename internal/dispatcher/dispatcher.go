// Package dispatcher implements the legacy SCION dispatcher
// (Section 4.8): a per-host background process listening on a single
// well-known UDP port that demultiplexes all inbound SCION traffic to
// the correct application. It faithfully recreates what a kernel socket
// layer would do — and therefore also recreates its problems: every
// application shares one process's receive path, which the paper
// identifies as the bottleneck that motivated the dispatcherless
// migration. The package exists both for backward compatibility and as
// the baseline of the dispatcher-vs-dispatcherless ablation benchmarks.
package dispatcher

import (
	"fmt"
	"net/netip"
	"sync"

	"sciera/internal/router"
	"sciera/internal/simnet"
	"sciera/internal/slayers"
	"sciera/internal/telemetry"
)

// Dispatcher demultiplexes SCION packets arriving at the shared port.
type Dispatcher struct {
	conn simnet.Conn
	net  simnet.Network

	mu    sync.RWMutex
	table map[uint16]netip.AddrPort // SCION L4 port -> application socket

	// procs pools decode state so the demux path allocates nothing in
	// steady state (the same treatment as the border router's
	// packet-processor pool).
	procs sync.Pool

	// Forwarded and Dropped count demux outcomes.
	Forwarded telemetry.Counter
	Dropped   telemetry.Counter
	// DemuxHits/DemuxMisses refine the outcome mix: a hit found a
	// registered application; a miss resolved no usable port or found
	// none registered. SCMPSeen counts SCMP packets crossing the demux
	// path; ParseFailures counts undecodable datagrams.
	DemuxHits     telemetry.Counter
	DemuxMisses   telemetry.Counter
	SCMPSeen      telemetry.Counter
	ParseFailures telemetry.Counter

	// Trace receives sampled demux observations; nil disables tracing.
	// Set before traffic flows.
	Trace *telemetry.TraceRing

	// PerPacketWork simulates the dispatcher's copy/parse overhead in
	// benchmarks (number of extra payload scans); 0 for none.
	PerPacketWork int
}

// Start binds the dispatcher on the host address's well-known port.
func Start(net simnet.Network, host netip.Addr) (*Dispatcher, error) {
	d := &Dispatcher{table: make(map[uint16]netip.AddrPort), net: net}
	d.procs.New = func() any { return new(slayers.Packet) }
	conn, err := net.Listen(netip.AddrPortFrom(host, router.DispatcherPort), d.handle)
	if err != nil {
		return nil, fmt.Errorf("dispatcher: %w", err)
	}
	d.conn = conn
	return d, nil
}

// RegisterTelemetry adopts the dispatcher's counters into a registry.
// The cells are the same ones tests read directly, so exposition and
// direct reads can never disagree.
func (d *Dispatcher) RegisterTelemetry(reg *telemetry.Registry) {
	reg.RegisterCounter("sciera_dispatcher_forwarded_total", "packets demultiplexed to an application", &d.Forwarded)
	reg.RegisterCounter("sciera_dispatcher_dropped_total", "packets the dispatcher could not deliver", &d.Dropped)
	reg.RegisterCounter("sciera_dispatcher_demux_hits_total", "demux lookups that found a registered application", &d.DemuxHits)
	reg.RegisterCounter("sciera_dispatcher_demux_misses_total", "demux lookups with no registered application", &d.DemuxMisses)
	reg.RegisterCounter("sciera_dispatcher_scmp_total", "SCMP packets crossing the demux path", &d.SCMPSeen)
	reg.RegisterCounter("sciera_dispatcher_parse_failures_total", "undecodable datagrams at the dispatcher", &d.ParseFailures)
}

// tracePacket records one sampled demux observation; callers guard with
// d.Trace.Sample().
func (d *Dispatcher) tracePacket(verdict telemetry.TraceVerdict) {
	d.Trace.Record(telemetry.TraceEntry{
		TimeNS:  d.net.Now().UnixNano(),
		Verdict: verdict,
	})
}

// Addr returns the dispatcher's underlay address.
func (d *Dispatcher) Addr() netip.AddrPort { return d.conn.LocalAddr() }

// Close stops the dispatcher.
func (d *Dispatcher) Close() error { return d.conn.Close() }

// Register maps a SCION L4 port to an application socket. It fails if
// the port is taken — the classic contention point of the shared
// dispatcher model.
func (d *Dispatcher) Register(port uint16, app netip.AddrPort) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if old, ok := d.table[port]; ok && old != app {
		return fmt.Errorf("dispatcher: port %d already registered to %v", port, old)
	}
	d.table[port] = app
	return nil
}

// Unregister releases a port.
func (d *Dispatcher) Unregister(port uint16) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.table, port)
}

// handle demultiplexes one packet. raw is only borrowed for the call
// (simnet.Handler contract); Send copies it, so no buffer is retained.
func (d *Dispatcher) handle(raw []byte, from netip.AddrPort) {
	pkt := d.procs.Get().(*slayers.Packet)
	defer d.procs.Put(pkt)
	if err := pkt.Decode(raw); err != nil {
		d.Dropped.Add(1)
		d.ParseFailures.Add(1)
		if d.Trace.Sample() {
			d.tracePacket(telemetry.VerdictParseErr)
		}
		return
	}
	if pkt.SCMP != nil {
		d.SCMPSeen.Add(1)
	}
	// Simulated parse/copy overhead for the ablation benchmarks.
	for i := 0; i < d.PerPacketWork; i++ {
		var sum byte
		for _, b := range raw {
			sum ^= b
		}
		_ = sum
	}
	port, ok := demuxPort(pkt)
	if !ok {
		d.Dropped.Add(1)
		d.DemuxMisses.Add(1)
		if d.Trace.Sample() {
			d.tracePacket(telemetry.VerdictDemuxMiss)
		}
		return
	}
	d.mu.RLock()
	app, ok := d.table[port]
	d.mu.RUnlock()
	if !ok {
		d.Dropped.Add(1)
		d.DemuxMisses.Add(1)
		if d.Trace.Sample() {
			d.tracePacket(telemetry.VerdictDemuxMiss)
		}
		return
	}
	d.Forwarded.Add(1)
	d.DemuxHits.Add(1)
	if d.Trace.Sample() {
		d.tracePacket(telemetry.VerdictDemuxHit)
	}
	_ = d.conn.Send(raw, app)
}

// demuxPort extracts the application port a packet belongs to.
func demuxPort(pkt *slayers.Packet) (uint16, bool) {
	switch {
	case pkt.UDP != nil:
		return pkt.UDP.DstPort, true
	case pkt.SCMP != nil:
		switch pkt.SCMP.Type {
		case slayers.SCMPEchoRequest, slayers.SCMPEchoReply,
			slayers.SCMPTracerouteRequest, slayers.SCMPTracerouteReply:
			return pkt.SCMP.Identifier, true
		default:
			// SCMP error: demux on the quoted packet's source port. The
			// quote may be truncated, so parse tolerantly.
			var quoted slayers.Packet
			if err := quoted.DecodeTruncated(pkt.Payload); err != nil {
				return 0, false
			}
			if quoted.UDP != nil {
				return quoted.UDP.SrcPort, true
			}
			if quoted.SCMP != nil {
				return quoted.SCMP.Identifier, true
			}
		}
	}
	return 0, false
}
