// Package dispatcher implements the legacy SCION dispatcher
// (Section 4.8): a per-host background process listening on a single
// well-known UDP port that demultiplexes all inbound SCION traffic to
// the correct application. It faithfully recreates what a kernel socket
// layer would do — and therefore also recreates its problems: every
// application shares one process's receive path, which the paper
// identifies as the bottleneck that motivated the dispatcherless
// migration. The package exists both for backward compatibility and as
// the baseline of the dispatcher-vs-dispatcherless ablation benchmarks.
package dispatcher

import (
	"bytes"
	"fmt"
	"net/netip"
	"sync"

	"sciera/internal/router"
	"sciera/internal/simnet"
	"sciera/internal/slayers"
	"sciera/internal/telemetry"
)

// Dispatcher demultiplexes SCION packets arriving at the shared port.
type Dispatcher struct {
	conn simnet.Conn
	net  simnet.Network

	mu    sync.RWMutex
	table map[uint16]netip.AddrPort // SCION L4 port -> application socket

	// procs pools decode state so the demux path allocates nothing in
	// steady state (the same treatment as the border router's
	// packet-processor pool).
	procs sync.Pool

	// Forwarded and Dropped count demux outcomes.
	Forwarded telemetry.Counter
	Dropped   telemetry.Counter
	// DemuxHits/DemuxMisses refine the outcome mix: a hit found a
	// registered application; a miss resolved no usable port or found
	// none registered. SCMPSeen counts SCMP packets crossing the demux
	// path; ParseFailures counts undecodable datagrams.
	DemuxHits     telemetry.Counter
	DemuxMisses   telemetry.Counter
	SCMPSeen      telemetry.Counter
	ParseFailures telemetry.Counter

	// Trace receives sampled demux observations; nil disables tracing.
	// Set before traffic flows.
	Trace *telemetry.TraceRing

	// PerPacketWork simulates the dispatcher's copy/parse overhead in
	// benchmarks (number of extra payload scans); 0 for none.
	PerPacketWork int
}

// demuxProc is the pooled per-batch demux state: one decode scratch
// shared by a same-flow burst, the accumulated outgoing wires for the
// single end-of-batch flush, and a one-entry table-lookup cache (bursts
// overwhelmingly target one application, so most followers resolve
// their socket with an integer comparison instead of an RLock).
type demuxProc struct {
	pkt   slayers.Packet
	wires [][]byte
	dests []netip.AddrPort

	cachePort uint16
	cacheApp  netip.AddrPort
	cacheHit  bool
	cached    bool
}

// Start binds the dispatcher on the host address's well-known port.
func Start(net simnet.Network, host netip.Addr) (*Dispatcher, error) {
	d := &Dispatcher{table: make(map[uint16]netip.AddrPort), net: net}
	d.procs.New = func() any { return new(demuxProc) }
	conn, err := net.ListenBatch(netip.AddrPortFrom(host, router.DispatcherPort), d.handleBatch)
	if err != nil {
		return nil, fmt.Errorf("dispatcher: %w", err)
	}
	d.conn = conn
	return d, nil
}

// RegisterTelemetry adopts the dispatcher's counters into a registry.
// The cells are the same ones tests read directly, so exposition and
// direct reads can never disagree.
func (d *Dispatcher) RegisterTelemetry(reg *telemetry.Registry) {
	reg.RegisterCounter("sciera_dispatcher_forwarded_total", "packets demultiplexed to an application", &d.Forwarded)
	reg.RegisterCounter("sciera_dispatcher_dropped_total", "packets the dispatcher could not deliver", &d.Dropped)
	reg.RegisterCounter("sciera_dispatcher_demux_hits_total", "demux lookups that found a registered application", &d.DemuxHits)
	reg.RegisterCounter("sciera_dispatcher_demux_misses_total", "demux lookups with no registered application", &d.DemuxMisses)
	reg.RegisterCounter("sciera_dispatcher_scmp_total", "SCMP packets crossing the demux path", &d.SCMPSeen)
	reg.RegisterCounter("sciera_dispatcher_parse_failures_total", "undecodable datagrams at the dispatcher", &d.ParseFailures)
}

// tracePacket records one sampled demux observation; callers guard with
// d.Trace.Sample().
func (d *Dispatcher) tracePacket(verdict telemetry.TraceVerdict) {
	d.Trace.Record(telemetry.TraceEntry{
		TimeNS:  d.net.Now().UnixNano(),
		Verdict: verdict,
	})
}

// Addr returns the dispatcher's underlay address.
func (d *Dispatcher) Addr() netip.AddrPort { return d.conn.LocalAddr() }

// Close stops the dispatcher.
func (d *Dispatcher) Close() error { return d.conn.Close() }

// Register maps a SCION L4 port to an application socket. It fails if
// the port is taken — the classic contention point of the shared
// dispatcher model.
func (d *Dispatcher) Register(port uint16, app netip.AddrPort) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if old, ok := d.table[port]; ok && old != app {
		return fmt.Errorf("dispatcher: port %d already registered to %v", port, old)
	}
	d.table[port] = app
	return nil
}

// Unregister releases a port.
func (d *Dispatcher) Unregister(port uint16) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.table, port)
}

// handleBatch demultiplexes a delivered batch in one pass. Buffers are
// only borrowed for the call (simnet.BatchHandler contract) and
// SendBatch copies, so accumulating them until the flush is safe. The
// dispatcher never originates packets of its own, so a single
// end-of-batch flush preserves the per-packet send order exactly.
//
// Within the batch, a run of packets sharing the leader's header image
// takes the same-flow fast path: only the L4 slice is re-decoded, and
// the demux outcome is resolved through the proc's one-entry cache.
// Per-packet counters and traces are accounted identically to the old
// one-at-a-time path.
func (d *Dispatcher) handleBatch(pkts [][]byte, from []netip.AddrPort) {
	proc := d.procs.Get().(*demuxProc)
	i := 0
	for i < len(pkts) {
		raw := pkts[i]
		i++
		if err := proc.pkt.Decode(raw); err != nil {
			d.dropUndecodable()
			continue
		}
		proc.cached = false // new flow: invalidate the lookup cache
		d.demuxOne(proc, raw)
		hl := slayers.CmnHdrLen + proc.pkt.Hdr.Path.Len()
		for i < len(pkts) && len(pkts[i]) == len(raw) && bytes.Equal(pkts[i][:hl], raw[:hl]) {
			b := pkts[i]
			i++
			if err := proc.pkt.DecodeSameFlow(b, hl, false); err != nil {
				d.dropUndecodable()
				continue
			}
			d.demuxOne(proc, b)
		}
	}
	if len(proc.wires) > 0 {
		_ = d.conn.SendBatch(proc.wires, proc.dests)
	}
	for j := range proc.wires {
		proc.wires[j] = nil
	}
	proc.wires = proc.wires[:0]
	proc.dests = proc.dests[:0]
	d.procs.Put(proc)
}

func (d *Dispatcher) dropUndecodable() {
	d.Dropped.Add(1)
	d.ParseFailures.Add(1)
	if d.Trace.Sample() {
		d.tracePacket(telemetry.VerdictParseErr)
	}
}

// demuxOne resolves one decoded packet to its application socket and
// queues the wire for the batch flush, maintaining the same counters
// the per-packet path kept.
func (d *Dispatcher) demuxOne(proc *demuxProc, raw []byte) {
	if proc.pkt.SCMP != nil {
		d.SCMPSeen.Add(1)
	}
	// Simulated parse/copy overhead for the ablation benchmarks.
	for i := 0; i < d.PerPacketWork; i++ {
		var sum byte
		for _, b := range raw {
			sum ^= b
		}
		_ = sum
	}
	port, ok := demuxPort(&proc.pkt)
	if !ok {
		d.Dropped.Add(1)
		d.DemuxMisses.Add(1)
		if d.Trace.Sample() {
			d.tracePacket(telemetry.VerdictDemuxMiss)
		}
		return
	}
	if !proc.cached || port != proc.cachePort {
		d.mu.RLock()
		proc.cacheApp, proc.cacheHit = d.table[port]
		d.mu.RUnlock()
		proc.cachePort, proc.cached = port, true
	}
	if !proc.cacheHit {
		d.Dropped.Add(1)
		d.DemuxMisses.Add(1)
		if d.Trace.Sample() {
			d.tracePacket(telemetry.VerdictDemuxMiss)
		}
		return
	}
	d.Forwarded.Add(1)
	d.DemuxHits.Add(1)
	if d.Trace.Sample() {
		d.tracePacket(telemetry.VerdictDemuxHit)
	}
	proc.wires = append(proc.wires, raw)
	proc.dests = append(proc.dests, proc.cacheApp)
}

// demuxPort extracts the application port a packet belongs to.
func demuxPort(pkt *slayers.Packet) (uint16, bool) {
	switch {
	case pkt.UDP != nil:
		return pkt.UDP.DstPort, true
	case pkt.SCMP != nil:
		switch pkt.SCMP.Type {
		case slayers.SCMPEchoRequest, slayers.SCMPEchoReply,
			slayers.SCMPTracerouteRequest, slayers.SCMPTracerouteReply:
			return pkt.SCMP.Identifier, true
		default:
			// SCMP error: demux on the quoted packet's source port. The
			// quote may be truncated, so parse tolerantly.
			var quoted slayers.Packet
			if err := quoted.DecodeTruncated(pkt.Payload); err != nil {
				return 0, false
			}
			if quoted.UDP != nil {
				return quoted.UDP.SrcPort, true
			}
			if quoted.SCMP != nil {
				return quoted.SCMP.Identifier, true
			}
		}
	}
	return 0, false
}
