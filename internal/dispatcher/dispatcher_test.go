package dispatcher

import (
	"net/netip"
	"testing"
	"time"

	"sciera/internal/addr"
	"sciera/internal/simnet"
	"sciera/internal/slayers"
)

func pktFor(t *testing.T, port uint16) []byte {
	t.Helper()
	p := &slayers.Packet{
		Hdr: slayers.SCION{
			DstIA:   addr.MustParseIA("71-1"),
			SrcIA:   addr.MustParseIA("71-2"),
			DstHost: netip.MustParseAddr("10.0.0.1"),
			SrcHost: netip.MustParseAddr("10.0.0.2"),
		},
		UDP:     &slayers.UDP{SrcPort: 1, DstPort: port},
		Payload: []byte("x"),
	}
	raw, err := p.Serialize(nil)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestDemuxToRegisteredApps(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	d, err := Start(sim, sim.AllocAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	recv := map[uint16]int{}
	register := func(port uint16) {
		conn, err := sim.Listen(netip.AddrPort{}, func([]byte, netip.AddrPort) { recv[port]++ })
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Register(port, conn.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	register(100)
	register(200)

	sender, _ := sim.Listen(netip.AddrPort{}, nil)
	_ = sender.Send(pktFor(t, 100), d.Addr())
	_ = sender.Send(pktFor(t, 200), d.Addr())
	_ = sender.Send(pktFor(t, 200), d.Addr())
	_ = sender.Send(pktFor(t, 999), d.Addr()) // unregistered
	_ = sender.Send([]byte("garbage"), d.Addr())
	sim.Run()

	if recv[100] != 1 || recv[200] != 2 {
		t.Errorf("recv = %v", recv)
	}
	if d.Forwarded.Load() != 3 {
		t.Errorf("forwarded = %d", d.Forwarded.Load())
	}
	if d.Dropped.Load() != 2 {
		t.Errorf("dropped = %d", d.Dropped.Load())
	}
}

func TestPortContention(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	d, err := Start(sim, sim.AllocAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	a := netip.MustParseAddrPort("10.1.1.1:1000")
	b := netip.MustParseAddrPort("10.1.1.2:2000")
	if err := d.Register(80, a); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(80, a); err != nil {
		t.Error("re-registering same app failed")
	}
	if err := d.Register(80, b); err == nil {
		t.Error("port takeover accepted — the dispatcher's contention problem should be explicit")
	}
	d.Unregister(80)
	if err := d.Register(80, b); err != nil {
		t.Errorf("register after unregister: %v", err)
	}
}

func TestSCMPDemux(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	d, err := Start(sim, sim.AllocAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	got := 0
	conn, _ := sim.Listen(netip.AddrPort{}, func([]byte, netip.AddrPort) { got++ })
	if err := d.Register(555, conn.LocalAddr()); err != nil {
		t.Fatal(err)
	}

	// Echo reply demuxes on Identifier.
	reply := &slayers.Packet{
		Hdr: slayers.SCION{
			DstIA:   addr.MustParseIA("71-1"),
			SrcIA:   addr.MustParseIA("71-2"),
			DstHost: netip.MustParseAddr("10.0.0.1"),
			SrcHost: netip.MustParseAddr("10.0.0.2"),
		},
		SCMP: &slayers.SCMP{Type: slayers.SCMPEchoReply, Identifier: 555},
	}
	raw, _ := reply.Serialize(nil)
	sender, _ := sim.Listen(netip.AddrPort{}, nil)
	_ = sender.Send(raw, d.Addr())

	// An SCMP error demuxes on the quoted packet's source port.
	quoted := &slayers.Packet{
		Hdr: reply.Hdr,
		UDP: &slayers.UDP{SrcPort: 555, DstPort: 9},
	}
	quotedRaw, _ := quoted.Serialize(nil)
	errPkt := &slayers.Packet{
		Hdr:     reply.Hdr,
		SCMP:    &slayers.SCMP{Type: slayers.SCMPDestinationUnreachable},
		Payload: quotedRaw,
	}
	errRaw, _ := errPkt.Serialize(nil)
	_ = sender.Send(errRaw, d.Addr())
	sim.Run()
	if got != 2 {
		t.Errorf("demuxed %d of 2 SCMP packets", got)
	}
}

// TestDropPaths covers the dispatcher's drop rules: undecodable
// datagrams, packets without a demuxable port, unregistered ports, and
// SCMP errors routed by their quote.
func TestDropPaths(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	d, err := Start(sim, sim.AllocAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	send := func(raw []byte) {
		conn, err := sim.Listen(netip.AddrPort{}, func([]byte, netip.AddrPort) {})
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if err := conn.Send(raw, d.Addr()); err != nil {
			t.Fatal(err)
		}
		sim.Run()
	}

	// Garbage datagram.
	send([]byte{0xff, 0x00, 0x01})
	if d.Dropped.Load() != 1 {
		t.Fatalf("dropped = %d after garbage", d.Dropped.Load())
	}

	// Valid packet, unregistered port.
	send(pktFor(t, 9999))
	if d.Dropped.Load() != 2 {
		t.Fatalf("dropped = %d after unregistered port", d.Dropped.Load())
	}

	// SCMP error with an undecodable quote: no port to demux to.
	noQuote := &slayers.Packet{
		Hdr: slayers.SCION{
			DstIA:   addr.MustParseIA("71-1"),
			SrcIA:   addr.MustParseIA("71-2"),
			DstHost: netip.MustParseAddr("10.0.0.1"),
			SrcHost: netip.MustParseAddr("10.0.0.2"),
		},
		SCMP:    &slayers.SCMP{Type: slayers.SCMPDestinationUnreachable},
		Payload: []byte{0x01},
	}
	raw, err := noQuote.Serialize(nil)
	if err != nil {
		t.Fatal(err)
	}
	send(raw)
	if d.Dropped.Load() != 3 {
		t.Fatalf("dropped = %d after unquotable SCMP error", d.Dropped.Load())
	}

	// SCMP error quoting a UDP packet: routed to the quoted source port.
	var got []byte
	app, err := sim.Listen(netip.AddrPort{}, func(pkt []byte, _ netip.AddrPort) {
		got = append([]byte(nil), pkt...)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if err := d.Register(4321, app.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	quoted := &slayers.Packet{
		Hdr: noQuote.Hdr,
		UDP: &slayers.UDP{SrcPort: 4321, DstPort: 80},
	}
	quoteRaw, err := quoted.Serialize(nil)
	if err != nil {
		t.Fatal(err)
	}
	errPkt := &slayers.Packet{
		Hdr:     noQuote.Hdr,
		SCMP:    &slayers.SCMP{Type: slayers.SCMPDestinationUnreachable},
		Payload: quoteRaw,
	}
	raw, err = errPkt.Serialize(nil)
	if err != nil {
		t.Fatal(err)
	}
	send(raw)
	if got == nil {
		t.Fatal("SCMP error not routed to the quoted UDP source port")
	}

	// Unregister: the port stops receiving.
	d.Unregister(4321)
	got = nil
	send(raw)
	if got != nil {
		t.Error("unregistered port still receives")
	}
}

// TestDemuxQuotedSCMPIdentifier: an error quoting a probe (SCMP echo)
// demuxes on the quoted identifier.
func TestDemuxQuotedSCMPIdentifier(t *testing.T) {
	hdr := slayers.SCION{
		DstIA:   addr.MustParseIA("71-1"),
		SrcIA:   addr.MustParseIA("71-2"),
		DstHost: netip.MustParseAddr("10.0.0.1"),
		SrcHost: netip.MustParseAddr("10.0.0.2"),
	}
	quoted := &slayers.Packet{
		Hdr:  hdr,
		SCMP: &slayers.SCMP{Type: slayers.SCMPEchoRequest, Identifier: 5150, SeqNo: 1},
	}
	quoteRaw, err := quoted.Serialize(nil)
	if err != nil {
		t.Fatal(err)
	}
	errPkt := &slayers.Packet{
		Hdr:     hdr,
		SCMP:    &slayers.SCMP{Type: slayers.SCMPExternalInterfaceDown},
		Payload: quoteRaw,
	}
	var p slayers.Packet
	raw, err := errPkt.Serialize(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Decode(raw); err != nil {
		t.Fatal(err)
	}
	port, ok := demuxPort(&p)
	if !ok || port != 5150 {
		t.Fatalf("demuxPort = %d,%v, want 5150", port, ok)
	}
}

// TestBatchDemux drives one coalesced burst through the dispatcher:
// a same-flow run to one app, a mid-burst packet for a second app
// (exercising the lookup-cache refresh), an unregistered port, a
// corrupted checksum, and a garbage datagram. Every outcome must be
// accounted exactly as the per-packet path would, and payload order at
// each application must match send order.
func TestBatchDemux(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	d, err := Start(sim, sim.AllocAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	recv := map[uint16][]byte{}
	register := func(port uint16) {
		conn, err := sim.Listen(netip.AddrPort{}, func(pkt []byte, _ netip.AddrPort) {
			var p slayers.Packet
			if err := p.Decode(pkt); err != nil {
				t.Errorf("app decode: %v", err)
				return
			}
			recv[port] = append(recv[port], p.Payload...)
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Register(port, conn.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	register(100)
	register(200)

	mk := func(port uint16, payload byte) []byte {
		p := &slayers.Packet{
			Hdr: slayers.SCION{
				DstIA:   addr.MustParseIA("71-1"),
				SrcIA:   addr.MustParseIA("71-2"),
				DstHost: netip.MustParseAddr("10.0.0.1"),
				SrcHost: netip.MustParseAddr("10.0.0.2"),
			},
			UDP:     &slayers.UDP{SrcPort: 1, DstPort: port},
			Payload: []byte{payload},
		}
		raw, err := p.Serialize(nil)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	corrupt := mk(100, 'x')
	corrupt[len(corrupt)-1] ^= 0x01
	pkts := [][]byte{
		mk(100, 'a'), mk(100, 'b'), // same-flow run, cached lookup
		mk(200, 'c'),      // same header image, different port: cache refresh
		mk(100, 'd'),      // back to the first app
		mk(999, 'e'),      // registered nowhere: demux miss
		corrupt,           // checksum failure mid-burst
		[]byte("garbage"), // undecodable leader
		mk(200, 'f'),
	}
	dests := make([]netip.AddrPort, len(pkts))
	for i := range dests {
		dests[i] = d.Addr()
	}
	sender, _ := sim.Listen(netip.AddrPort{}, nil)
	if err := sender.SendBatch(pkts, dests); err != nil {
		t.Fatal(err)
	}
	sim.Run()

	if got := string(recv[100]); got != "abd" {
		t.Errorf("app 100 received %q, want \"abd\"", got)
	}
	if got := string(recv[200]); got != "cf" {
		t.Errorf("app 200 received %q, want \"cf\"", got)
	}
	if d.Forwarded.Load() != 5 || d.DemuxHits.Load() != 5 {
		t.Errorf("forwarded = %d, hits = %d, want 5", d.Forwarded.Load(), d.DemuxHits.Load())
	}
	if d.DemuxMisses.Load() != 1 {
		t.Errorf("misses = %d, want 1", d.DemuxMisses.Load())
	}
	if d.ParseFailures.Load() != 2 {
		t.Errorf("parse failures = %d, want 2", d.ParseFailures.Load())
	}
	if d.Dropped.Load() != 3 {
		t.Errorf("dropped = %d, want 3", d.Dropped.Load())
	}
}
