package survey

import (
	"strings"
	"testing"
)

func TestAggregatesMatchPaper(t *testing.T) {
	a := Compute(Responses())
	if a.N != 8 {
		t.Fatalf("n = %d", a.N)
	}
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"decade experience", a.PctDecadeExperience, 50},
		{"engineers", a.PctEngineers, 50},
		{"deploy within month", a.PctDeployWithinMonth, 37.5},
		{"deploy up to six months", a.PctDeployUpToSixMonths, 50},
		{"no vendor support", a.PctNoVendorSupport, 62.5},
		{"hardware under 20k", a.PctHardwareUnder20K, 75},
		{"no license cost", a.PctNoLicenseCost, 62.5},
		{"no extra hiring", a.PctNoExtraHiring, 87.5}, // one of eight hired
		{"opex comparable", a.PctOpexComparable, 62.5},
		{"cost driver hardware", a.PctCostDriverHardware, 62.5},
		{"cost driver staff", a.PctCostDriverStaff, 50},
		{"cost driver monitoring", a.PctCostDriverMonitoring, 25},
		{"cost driver power", a.PctCostDriverPower, 12.5},
		{"workload under 10%", a.PctWorkloadUnder10, 87.5},
		{"vendor support <3/yr", a.PctVendorUnder3PerYear, 62.5},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %.1f%%, want %.1f%%", c.name, c.got, c.want)
		}
	}
}

func TestRender(t *testing.T) {
	out := Compute(Responses()).Render()
	for _, want := range []string{"62.5%", "75.0%", "87.5%", "Paper"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestHardwareCosts(t *testing.T) {
	costs := HardwareCosts(Responses())
	if len(costs) != 8 {
		t.Fatalf("costs = %d", len(costs))
	}
	for i := 1; i < len(costs); i++ {
		if costs[i] < costs[i-1] {
			t.Fatal("not sorted")
		}
	}
	// 75% under 20k USD.
	under := 0
	for _, c := range costs {
		if c < 20000 {
			under++
		}
	}
	if under != 6 {
		t.Errorf("under 20k = %d/8", under)
	}
}
