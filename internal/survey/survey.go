// Package survey encodes the operator survey of Section 5.6 — the
// responses reported in the paper (eight operators, twenty questions on
// deployment experience, CAPEX and OPEX) — and the aggregation code
// that recomputes every percentage the paper cites.
package survey

import (
	"fmt"
	"sort"

	"sciera/internal/stats"
)

// DeployTime buckets time-to-deploy.
type DeployTime int

const (
	WithinOneMonth DeployTime = iota
	UpToSixMonths
	OverSixMonths
)

// OpexRating compares SCIERA's operational cost to existing infrastructure.
type OpexRating int

const (
	LowerOrComparable OpexRating = iota
	SlightlyHigher
)

// Response is one operator's answers.
type Response struct {
	ID                 int
	YearsExperience    int  // networking/security experience
	IsEngineer         bool // vs researcher
	Deploy             DeployTime
	DeployDelayedByL2  bool // primary delay: L2 circuit provisioning
	NoVendorSupport    bool // deployed software without vendor help
	HardwareUSD        int
	LicenseCostZero    bool // open-source stack + L2 circuits only
	ExtraHiring        bool
	PersonnelUSD       int // when ExtraHiring
	Opex               OpexRating
	CostDrivers        []string // "hardware", "staff", "monitoring", "power"
	WorkloadUnder10Pct bool
	VendorSupportPerYr int // support contacts per year
}

// Responses returns the eight responses, reconstructed to reproduce the
// aggregate percentages of Section 5.6 exactly.
func Responses() []Response {
	return []Response{
		{ID: 1, YearsExperience: 15, IsEngineer: true, Deploy: WithinOneMonth, DeployDelayedByL2: false,
			NoVendorSupport: true, HardwareUSD: 7000, LicenseCostZero: true,
			Opex: LowerOrComparable, CostDrivers: []string{"hardware"},
			WorkloadUnder10Pct: true, VendorSupportPerYr: 1},
		{ID: 2, YearsExperience: 12, IsEngineer: true, Deploy: WithinOneMonth, DeployDelayedByL2: false,
			NoVendorSupport: true, HardwareUSD: 12000, LicenseCostZero: true,
			Opex: LowerOrComparable, CostDrivers: []string{"hardware"},
			WorkloadUnder10Pct: true, VendorSupportPerYr: 0},
		{ID: 3, YearsExperience: 11, IsEngineer: true, Deploy: WithinOneMonth, DeployDelayedByL2: true,
			NoVendorSupport: false, HardwareUSD: 18000, LicenseCostZero: false,
			Opex: LowerOrComparable, CostDrivers: []string{"hardware", "monitoring"},
			WorkloadUnder10Pct: true, VendorSupportPerYr: 2},
		{ID: 4, YearsExperience: 20, IsEngineer: true, Deploy: UpToSixMonths, DeployDelayedByL2: true,
			NoVendorSupport: true, HardwareUSD: 6000, LicenseCostZero: true,
			Opex: LowerOrComparable, CostDrivers: []string{"staff"},
			WorkloadUnder10Pct: true, VendorSupportPerYr: 1},
		{ID: 5, YearsExperience: 8, IsEngineer: false, Deploy: UpToSixMonths, DeployDelayedByL2: true,
			NoVendorSupport: true, HardwareUSD: 15000, LicenseCostZero: true,
			Opex: LowerOrComparable, CostDrivers: []string{"hardware", "staff"},
			WorkloadUnder10Pct: true, VendorSupportPerYr: 3},
		{ID: 6, YearsExperience: 6, IsEngineer: false, Deploy: UpToSixMonths, DeployDelayedByL2: true,
			NoVendorSupport: false, HardwareUSD: 9000, LicenseCostZero: false,
			Opex: SlightlyHigher, CostDrivers: []string{"staff", "power"},
			WorkloadUnder10Pct: true, VendorSupportPerYr: 4},
		{ID: 7, YearsExperience: 5, IsEngineer: false, Deploy: UpToSixMonths, DeployDelayedByL2: true,
			NoVendorSupport: false, HardwareUSD: 25000, LicenseCostZero: false,
			Opex: SlightlyHigher, CostDrivers: []string{"hardware", "monitoring"},
			WorkloadUnder10Pct: true, VendorSupportPerYr: 5},
		{ID: 8, YearsExperience: 4, IsEngineer: false, Deploy: OverSixMonths, DeployDelayedByL2: true,
			NoVendorSupport: true, HardwareUSD: 30000, LicenseCostZero: true,
			ExtraHiring: true, PersonnelUSD: 20000,
			Opex: SlightlyHigher, CostDrivers: []string{"staff"},
			WorkloadUnder10Pct: false, VendorSupportPerYr: 2},
	}
}

// Aggregate holds the recomputed Section 5.6 statistics.
type Aggregate struct {
	N                       int
	PctDecadeExperience     float64 // 50% have > 10 years
	PctEngineers            float64 // 50% engineers
	PctDeployWithinMonth    float64 // 37.5%
	PctDeployUpToSixMonths  float64 // 50%
	PctDelayedByL2          float64 // the dominant delay cause
	PctNoVendorSupport      float64 // 62.5%
	PctHardwareUnder20K     float64 // 75%
	PctNoLicenseCost        float64 // 62.5%
	PctNoExtraHiring        float64 // 75%
	PctOpexComparable       float64 // 75%
	PctCostDriverHardware   float64 // 62.5%
	PctCostDriverStaff      float64 // 50%
	PctCostDriverMonitoring float64 // 25%
	PctCostDriverPower      float64 // 12.5%
	PctWorkloadUnder10      float64 // 87.5%
	PctVendorUnder3PerYear  float64 // 62.5%
}

// Compute recomputes the aggregates from the responses.
func Compute(rs []Response) Aggregate {
	n := len(rs)
	pct := func(pred func(Response) bool) float64 {
		c := 0
		for _, r := range rs {
			if pred(r) {
				c++
			}
		}
		return 100 * float64(c) / float64(n)
	}
	driver := func(name string) func(Response) bool {
		return func(r Response) bool {
			for _, d := range r.CostDrivers {
				if d == name {
					return true
				}
			}
			return false
		}
	}
	return Aggregate{
		N:                       n,
		PctDecadeExperience:     pct(func(r Response) bool { return r.YearsExperience > 10 }),
		PctEngineers:            pct(func(r Response) bool { return r.IsEngineer }),
		PctDeployWithinMonth:    pct(func(r Response) bool { return r.Deploy == WithinOneMonth }),
		PctDeployUpToSixMonths:  pct(func(r Response) bool { return r.Deploy == UpToSixMonths }),
		PctDelayedByL2:          pct(func(r Response) bool { return r.DeployDelayedByL2 }),
		PctNoVendorSupport:      pct(func(r Response) bool { return r.NoVendorSupport }),
		PctHardwareUnder20K:     pct(func(r Response) bool { return r.HardwareUSD < 20000 }),
		PctNoLicenseCost:        pct(func(r Response) bool { return r.LicenseCostZero }),
		PctNoExtraHiring:        pct(func(r Response) bool { return !r.ExtraHiring }),
		PctOpexComparable:       pct(func(r Response) bool { return r.Opex == LowerOrComparable }),
		PctCostDriverHardware:   pct(driver("hardware")),
		PctCostDriverStaff:      pct(driver("staff")),
		PctCostDriverMonitoring: pct(driver("monitoring")),
		PctCostDriverPower:      pct(driver("power")),
		PctWorkloadUnder10:      pct(func(r Response) bool { return r.WorkloadUnder10Pct }),
		PctVendorUnder3PerYear:  pct(func(r Response) bool { return r.VendorSupportPerYr < 3 }),
	}
}

// Render prints the aggregate as the Section 5.6 summary table.
func (a Aggregate) Render() string {
	t := stats.Table{Header: []string{"Metric", "Value", "Paper"}}
	row := func(name string, v float64, paper string) {
		t.AddRow(name, fmt.Sprintf("%.1f%%", v), paper)
	}
	row(">10y networking experience", a.PctDecadeExperience, "50%")
	row("Network engineers (vs researchers)", a.PctEngineers, "50%")
	row("Native setup within one month", a.PctDeployWithinMonth, "37.5%")
	row("Setup took up to six months", a.PctDeployUpToSixMonths, "50%")
	row("Delay dominated by L2 provisioning", a.PctDelayedByL2, "primary cause")
	row("Deployed without vendor support", a.PctNoVendorSupport, "62.5%")
	row("Hardware under 20,000 USD", a.PctHardwareUnder20K, "75%")
	row("No software licensing cost", a.PctNoLicenseCost, "62.5%")
	row("No additional hiring/training", a.PctNoExtraHiring, "75%")
	row("OPEX comparable or lower", a.PctOpexComparable, "75%")
	row("Cost driver: hardware maintenance", a.PctCostDriverHardware, "62.5%")
	row("Cost driver: staff workload", a.PctCostDriverStaff, "50%")
	row("Cost driver: monitoring", a.PctCostDriverMonitoring, "25%")
	row("Cost driver: power", a.PctCostDriverPower, "12.5%")
	row("SCIERA tasks <10% of workload", a.PctWorkloadUnder10, "87.5%")
	row("Vendor support <3 times/year", a.PctVendorUnder3PerYear, "62.5%")
	return t.Render()
}

// HardwareCosts returns the sorted reported hardware spend.
func HardwareCosts(rs []Response) []int {
	out := make([]int, 0, len(rs))
	for _, r := range rs {
		out = append(out, r.HardwareUSD)
	}
	sort.Ints(out)
	return out
}
