package scmp_test

import (
	"testing"
	"time"

	"sciera/internal/addr"
	"sciera/internal/combinator"
	"sciera/internal/core"
	"sciera/internal/scmp"
	"sciera/internal/simnet"
	"sciera/internal/topology"
)

// TestPingSyncLiveDriven runs the blocking PingSync against a
// live-driven simulator (the mode used by real binaries like
// cmd/sciera -ping).
func TestPingSyncLiveDriven(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n := buildNet(t, sim)
	defer n.Close()

	resp, err := n.AttachResponder(lB)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Close()
	pinger, err := n.NewPinger(lA)
	if err != nil {
		t.Fatal(err)
	}
	defer pinger.Close()
	if !pinger.Addr().IsValid() {
		t.Error("pinger has no underlay address")
	}

	paths := n.Paths(lA, lB)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); sim.RunLive(stop) }()
	defer func() { close(stop); <-done }()

	rtt, err := pinger.PingSync(lB, resp.Addr().Addr(), paths[0], 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * time.Duration(paths[0].LatencyMS*float64(time.Millisecond))
	if rtt < want || rtt > want+20*time.Millisecond {
		t.Errorf("rtt = %v, want ~%v", rtt, want)
	}
}

// TestTracerouteOverPeeringLink runs a traceroute across a peering
// circuit: both boundary routers must answer router-alerted probes on
// the Peer-flagged path.
func TestTracerouteOverPeeringLink(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	topo := topology.New()
	for _, ia := range []addr.IA{c1, c2} {
		if err := topo.AddAS(topology.ASInfo{IA: ia, Core: true}); err != nil {
			t.Fatal(err)
		}
	}
	for _, ia := range []addr.IA{lA, lB} {
		if err := topo.AddAS(topology.ASInfo{IA: ia}); err != nil {
			t.Fatal(err)
		}
	}
	link := func(a, b addr.IA, typ topology.LinkType, lat float64) {
		if _, err := topo.AddLink(topology.LinkEnd{IA: a}, topology.LinkEnd{IA: b}, typ, lat, ""); err != nil {
			t.Fatal(err)
		}
	}
	link(c1, c2, topology.LinkCore, 20)
	link(c1, lA, topology.LinkParent, 5)
	link(c2, lB, topology.LinkParent, 5)
	link(lA, lB, topology.LinkPeer, 3)
	n, err := core.Build(topo, sim, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	var peer *combinator.Path
	for _, p := range n.Paths(lA, lB) {
		if p.NumHops() == 1 {
			peer = p
			break
		}
	}
	if peer == nil {
		t.Fatal("no peer path")
	}

	pinger, err := n.NewPinger(lA)
	if err != nil {
		t.Fatal(err)
	}
	defer pinger.Close()

	var hops []scmp.Hop
	var terr error
	pinger.Traceroute(lB, peer, 2*time.Second, func(h []scmp.Hop, err error) {
		hops, terr = h, err
	})
	sim.RunFor(30 * time.Second)
	if terr != nil {
		t.Fatal(terr)
	}
	if len(hops) != 2 {
		t.Fatalf("hops = %d, want 2 (one boundary router per side)", len(hops))
	}
	if hops[0].IA != lA || hops[1].IA != lB {
		t.Errorf("hop ASes = %v, %v; want lA, lB", hops[0].IA, hops[1].IA)
	}
	// The far side sits one 3ms peer link away.
	if hops[1].RTT < 6*time.Millisecond || hops[1].RTT > 26*time.Millisecond {
		t.Errorf("far hop RTT = %v, want ~6ms", hops[1].RTT)
	}
}
