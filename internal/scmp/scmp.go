// Package scmp implements SCMP echo clients and responders — the
// primitives behind `scion ping` and the scion-go-multiping measurement
// tool (Section 5.4). The pinger is callback-based so the discrete-event
// campaigns can run millions of probes deterministically; a blocking
// wrapper covers interactive use.
package scmp

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"sciera/internal/addr"
	"sciera/internal/combinator"
	"sciera/internal/simnet"
	"sciera/internal/slayers"
	"sciera/internal/spath"
)

// ErrTimeout reports a lost probe.
var ErrTimeout = errors.New("scmp: echo timed out")

// Pinger sends SCMP echo requests over explicit paths.
type Pinger struct {
	LocalIA addr.IA
	// RouterAddr is the local border router's underlay address.
	RouterAddr netip.AddrPort

	net  simnet.Network
	conn simnet.Conn

	mu           sync.Mutex
	nextSeq      uint16
	pending      map[uint16]func(time.Duration, error)
	sent         map[uint16]time.Time
	tracePending map[uint16]func(addr.IA, uint64)
}

// NewPinger binds a pinger inside the local AS.
func NewPinger(net simnet.Network, localIA addr.IA, routerAddr netip.AddrPort, local netip.AddrPort) (*Pinger, error) {
	p := &Pinger{
		LocalIA:      localIA,
		RouterAddr:   routerAddr,
		net:          net,
		pending:      make(map[uint16]func(time.Duration, error)),
		sent:         make(map[uint16]time.Time),
		tracePending: make(map[uint16]func(addr.IA, uint64)),
	}
	conn, err := net.Listen(local, p.handle)
	if err != nil {
		return nil, err
	}
	p.conn = conn
	return p, nil
}

// Close releases the pinger socket.
func (p *Pinger) Close() error { return p.conn.Close() }

// Addr returns the pinger's underlay address.
func (p *Pinger) Addr() netip.AddrPort { return p.conn.LocalAddr() }

func (p *Pinger) handle(raw []byte, _ netip.AddrPort) {
	var pkt slayers.Packet
	if err := pkt.Decode(raw); err != nil {
		return
	}
	if pkt.SCMP == nil {
		return
	}
	switch pkt.SCMP.Type {
	case slayers.SCMPTracerouteReply:
		p.mu.Lock()
		cb := p.tracePending[pkt.SCMP.SeqNo]
		delete(p.tracePending, pkt.SCMP.SeqNo)
		p.mu.Unlock()
		if cb != nil {
			cb(pkt.SCMP.IA, pkt.SCMP.IfID)
		}
	case slayers.SCMPEchoReply:
		p.mu.Lock()
		cb := p.pending[pkt.SCMP.SeqNo]
		sentAt, ok := p.sent[pkt.SCMP.SeqNo]
		delete(p.pending, pkt.SCMP.SeqNo)
		delete(p.sent, pkt.SCMP.SeqNo)
		p.mu.Unlock()
		if cb != nil && ok {
			cb(p.net.Now().Sub(sentAt), nil)
		}
	default:
		if !pkt.SCMP.Type.IsError() {
			return
		}
		// An SCMP error in response to one of our probes: fail the
		// matching probe immediately (identified via the quoted packet,
		// which routers may truncate — parse tolerantly).
		var quoted slayers.Packet
		if err := quoted.DecodeTruncated(pkt.Payload); err != nil || quoted.SCMP == nil {
			return
		}
		seq := quoted.SCMP.SeqNo
		p.mu.Lock()
		cb := p.pending[seq]
		delete(p.pending, seq)
		delete(p.sent, seq)
		p.mu.Unlock()
		if cb != nil {
			cb(0, fmt.Errorf("scmp: %v from %v", pkt.SCMP.Type, pkt.Hdr.SrcIA))
		}
	}
}

// Ping sends one echo over the given path and calls cb exactly once
// with the measured RTT or an error. A nil path pings within the AS.
func (p *Pinger) Ping(dst addr.IA, dstHost netip.Addr, path *combinator.Path, timeout time.Duration, cb func(time.Duration, error)) {
	p.mu.Lock()
	p.nextSeq++
	seq := p.nextSeq
	var once sync.Once
	var cancel func()
	fire := func(rtt time.Duration, err error) {
		once.Do(func() {
			if cancel != nil {
				cancel()
			}
			cb(rtt, err)
		})
	}
	p.pending[seq] = fire
	p.sent[seq] = p.net.Now()
	p.mu.Unlock()

	var raw spath.Path
	if path != nil {
		raw = *path.Raw.Copy()
	}
	pkt := &slayers.Packet{
		Hdr: slayers.SCION{
			DstIA:   dst,
			SrcIA:   p.LocalIA,
			DstHost: dstHost,
			SrcHost: p.conn.LocalAddr().Addr(),
			Path:    raw,
		},
		SCMP: &slayers.SCMP{
			Type:       slayers.SCMPEchoRequest,
			Identifier: p.conn.LocalAddr().Port(),
			SeqNo:      seq,
		},
	}
	out, err := pkt.Serialize(nil)
	if err != nil {
		p.mu.Lock()
		delete(p.pending, seq)
		delete(p.sent, seq)
		p.mu.Unlock()
		fire(0, err)
		return
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	cancel = p.net.AfterFunc(timeout, func() {
		p.mu.Lock()
		delete(p.pending, seq)
		delete(p.sent, seq)
		p.mu.Unlock()
		fire(0, ErrTimeout)
	})
	if err := p.conn.Send(out, p.RouterAddr); err != nil {
		fire(0, err)
	}
}

// PingSync is the blocking variant (transport must be driven
// independently).
func (p *Pinger) PingSync(dst addr.IA, dstHost netip.Addr, path *combinator.Path, timeout time.Duration) (time.Duration, error) {
	type result struct {
		rtt time.Duration
		err error
	}
	ch := make(chan result, 1)
	p.Ping(dst, dstHost, path, timeout, func(rtt time.Duration, err error) {
		ch <- result{rtt, err}
	})
	res := <-ch
	return res.rtt, res.err
}

// Hop is one traceroute result.
type Hop struct {
	IA   addr.IA
	IfID uint64
	RTT  time.Duration
}

// Traceroute probes every AS hop of a path by sending one
// router-alerted request per hop (the `scion traceroute` mechanism:
// border routers answer requests whose current hop carries the router
// alert flag). The callback receives the hops in order; failed probes
// appear with a zero IA.
func (p *Pinger) Traceroute(dst addr.IA, path *combinator.Path, timeout time.Duration, cb func([]Hop, error)) {
	nHops := len(path.Raw.Hops)
	hops := make([]Hop, 0, nHops)
	var probe func(i int)
	probe = func(i int) {
		if i >= nHops {
			cb(hops, nil)
			return
		}
		raw := *path.Raw.Copy()
		raw.Hops[i].RouterAlert = true

		p.mu.Lock()
		p.nextSeq++
		seq := p.nextSeq
		var once sync.Once
		var cancel func()
		sentAt := p.net.Now()
		fire := func(hop Hop, err error) {
			once.Do(func() {
				if cancel != nil {
					cancel()
				}
				hops = append(hops, hop)
				probe(i + 1)
			})
		}
		p.tracePending[seq] = func(ia addr.IA, ifID uint64) {
			fire(Hop{IA: ia, IfID: ifID, RTT: p.net.Now().Sub(sentAt)}, nil)
		}
		p.mu.Unlock()

		pkt := &slayers.Packet{
			Hdr: slayers.SCION{
				DstIA:   dst,
				SrcIA:   p.LocalIA,
				DstHost: p.conn.LocalAddr().Addr(),
				SrcHost: p.conn.LocalAddr().Addr(),
				Path:    raw,
			},
			SCMP: &slayers.SCMP{
				Type:       slayers.SCMPTracerouteRequest,
				Identifier: p.conn.LocalAddr().Port(),
				SeqNo:      seq,
			},
		}
		out, err := pkt.Serialize(nil)
		if err != nil {
			cb(hops, err)
			return
		}
		if timeout <= 0 {
			timeout = 2 * time.Second
		}
		cancel = p.net.AfterFunc(timeout, func() {
			p.mu.Lock()
			delete(p.tracePending, seq)
			p.mu.Unlock()
			fire(Hop{}, nil) // unanswered hop
		})
		if err := p.conn.Send(out, p.RouterAddr); err != nil {
			cb(hops, err)
		}
	}
	probe(0)
}

// Responder answers SCMP echo requests — the piece deployed in every
// SCIERA AS so that "we also send ping messages to ASes where the tool
// is not deployed" works.
type Responder struct {
	LocalIA    addr.IA
	RouterAddr netip.AddrPort
	conn       simnet.Conn
	// Answered counts replies sent.
	mu       sync.Mutex
	answered uint64
}

// NewResponder binds a responder at the given host address.
func NewResponder(net simnet.Network, localIA addr.IA, routerAddr netip.AddrPort, local netip.AddrPort) (*Responder, error) {
	r := &Responder{LocalIA: localIA, RouterAddr: routerAddr}
	conn, err := net.Listen(local, r.handle)
	if err != nil {
		return nil, err
	}
	r.conn = conn
	return r, nil
}

// Addr returns the responder's underlay address (the address to ping).
func (r *Responder) Addr() netip.AddrPort { return r.conn.LocalAddr() }

// Answered returns the number of echo replies sent.
func (r *Responder) Answered() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.answered
}

// Close stops the responder.
func (r *Responder) Close() error { return r.conn.Close() }

func (r *Responder) handle(raw []byte, _ netip.AddrPort) {
	var pkt slayers.Packet
	if err := pkt.Decode(raw); err != nil {
		return
	}
	if pkt.SCMP == nil || pkt.SCMP.Type != slayers.SCMPEchoRequest {
		return
	}
	rev, err := spath.ReverseFromCurrent(&pkt.Hdr.Path)
	if err != nil {
		return
	}
	reply := &slayers.Packet{
		Hdr: slayers.SCION{
			DstIA:   pkt.Hdr.SrcIA,
			SrcIA:   r.LocalIA,
			DstHost: pkt.Hdr.SrcHost,
			SrcHost: r.conn.LocalAddr().Addr(),
			Path:    *rev,
		},
		SCMP: &slayers.SCMP{
			Type:       slayers.SCMPEchoReply,
			Identifier: pkt.SCMP.Identifier,
			SeqNo:      pkt.SCMP.SeqNo,
		},
		Payload: append([]byte(nil), pkt.Payload...),
	}
	out, err := reply.Serialize(nil)
	if err != nil {
		return
	}
	r.mu.Lock()
	r.answered++
	r.mu.Unlock()
	if pkt.Hdr.SrcIA == r.LocalIA && pkt.Hdr.Path.IsEmpty() {
		// AS-internal ping: reply directly through the router too, so
		// delivery stays uniform.
	}
	_ = r.conn.Send(out, r.RouterAddr)
}
