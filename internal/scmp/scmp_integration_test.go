package scmp_test

import (
	"testing"
	"time"

	"sciera/internal/addr"
	"sciera/internal/core"
	"sciera/internal/scmp"
	"sciera/internal/simnet"
	"sciera/internal/topology"
)

var (
	c1 = addr.MustParseIA("71-1")
	c2 = addr.MustParseIA("71-2")
	lA = addr.MustParseIA("71-10")
	lB = addr.MustParseIA("71-11")
)

func buildNet(t testing.TB, sim *simnet.Sim) *core.Network {
	t.Helper()
	topo := topology.New()
	for _, ia := range []addr.IA{c1, c2} {
		if err := topo.AddAS(topology.ASInfo{IA: ia, Core: true}); err != nil {
			t.Fatal(err)
		}
	}
	for _, ia := range []addr.IA{lA, lB} {
		if err := topo.AddAS(topology.ASInfo{IA: ia}); err != nil {
			t.Fatal(err)
		}
	}
	link := func(a, b addr.IA, typ topology.LinkType, lat float64) {
		if _, err := topo.AddLink(topology.LinkEnd{IA: a}, topology.LinkEnd{IA: b}, typ, lat, ""); err != nil {
			t.Fatal(err)
		}
	}
	link(c1, c2, topology.LinkCore, 20)
	link(c1, lA, topology.LinkParent, 5)
	link(c2, lB, topology.LinkParent, 5)
	n, err := core.Build(topo, sim, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestPingRTTMatchesPathLatency(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n := buildNet(t, sim)
	defer n.Close()

	resp, err := n.AttachResponder(lB)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Close()
	pinger, err := n.NewPinger(lA)
	if err != nil {
		t.Fatal(err)
	}
	defer pinger.Close()

	paths := n.Paths(lA, lB)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	var rtt time.Duration
	var perr error
	pinger.Ping(lB, resp.Addr().Addr(), paths[0], 5*time.Second, func(d time.Duration, err error) {
		rtt, perr = d, err
	})
	sim.RunFor(10 * time.Second)
	if perr != nil {
		t.Fatal(perr)
	}
	// Path latency is 30ms one way; RTT should be ~60ms plus small
	// intra-AS hops.
	want := time.Duration(2 * paths[0].LatencyMS * float64(time.Millisecond))
	if rtt < want || rtt > want+5*time.Millisecond {
		t.Errorf("rtt = %v, want ≈ %v", rtt, want)
	}
	if resp.Answered() != 1 {
		t.Errorf("answered = %d", resp.Answered())
	}
}

func TestPingTimeoutOnDeadLink(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n := buildNet(t, sim)
	defer n.Close()
	resp, _ := n.AttachResponder(lB)
	defer resp.Close()
	pinger, _ := n.NewPinger(lA)
	defer pinger.Close()

	paths := n.Paths(lA, lB)
	// Cut the core link without refreshing the control plane: the
	// stale path triggers an SCMP error which fails the probe fast.
	coreLink := -1
	for _, l := range n.Topo.Links() {
		if l.Type == topology.LinkCore {
			coreLink = l.ID
		}
	}
	if err := n.Topo.SetLinkUp(coreLink, false); err != nil {
		t.Fatal(err)
	}
	var perr error
	fired := false
	pinger.Ping(lB, resp.Addr().Addr(), paths[0], 2*time.Second, func(d time.Duration, err error) {
		perr, fired = err, true
	})
	sim.RunFor(5 * time.Second)
	if !fired {
		t.Fatal("callback did not fire")
	}
	if perr == nil {
		t.Fatal("ping over dead link succeeded")
	}
	// The failure should come from the SCMP error, not the timeout —
	// i.e. well before the 2s deadline (the error arrives within the
	// path's one-way latency).
	if perr == scmp.ErrTimeout {
		t.Log("note: failed via timeout rather than SCMP error")
	}
}

func TestPingUnknownDestinationTimesOut(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n := buildNet(t, sim)
	defer n.Close()
	pinger, _ := n.NewPinger(lA)
	defer pinger.Close()

	paths := n.Paths(lA, lB)
	var perr error
	// No responder attached in lB: the request vanishes at delivery.
	pinger.Ping(lB, sim.AllocAddr(), paths[0], time.Second, func(d time.Duration, err error) {
		perr = err
	})
	sim.RunFor(5 * time.Second)
	if perr != scmp.ErrTimeout {
		t.Fatalf("err = %v, want scmp.ErrTimeout", perr)
	}
}

func TestConcurrentProbesKeepSequenceApart(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n := buildNet(t, sim)
	defer n.Close()
	respB, _ := n.AttachResponder(lB)
	defer respB.Close()
	respC1, _ := n.AttachResponder(c1)
	defer respC1.Close()
	pinger, _ := n.NewPinger(lA)
	defer pinger.Close()

	pathsB := n.Paths(lA, lB)
	pathsC := n.Paths(lA, c1)
	if len(pathsB) == 0 || len(pathsC) == 0 {
		t.Fatal("missing paths")
	}
	var rttB, rttC time.Duration
	pinger.Ping(lB, respB.Addr().Addr(), pathsB[0], 5*time.Second, func(d time.Duration, err error) {
		if err != nil {
			t.Errorf("B: %v", err)
		}
		rttB = d
	})
	pinger.Ping(c1, respC1.Addr().Addr(), pathsC[0], 5*time.Second, func(d time.Duration, err error) {
		if err != nil {
			t.Errorf("C1: %v", err)
		}
		rttC = d
	})
	sim.RunFor(10 * time.Second)
	if rttB == 0 || rttC == 0 {
		t.Fatal("probes incomplete")
	}
	if rttC >= rttB {
		t.Errorf("nearer AS slower: c1=%v lB=%v", rttC, rttB)
	}
}

func TestTracerouteWalksEveryHop(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n := buildNet(t, sim)
	defer n.Close()
	pinger, err := n.NewPinger(lA)
	if err != nil {
		t.Fatal(err)
	}
	defer pinger.Close()

	paths := n.Paths(lA, lB)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	p := paths[0] // lA -> c1 -> c2 -> lB
	var hops []scmp.Hop
	var terr error
	pinger.Traceroute(lB, p, 2*time.Second, func(h []scmp.Hop, err error) {
		hops, terr = h, err
	})
	sim.RunFor(30 * time.Second)
	if terr != nil {
		t.Fatal(terr)
	}
	if len(hops) != len(p.Raw.Hops) {
		t.Fatalf("hops = %d, want %d", len(hops), len(p.Raw.Hops))
	}
	// Expected AS set: each raw hop belongs to an AS on the path.
	wantASes := map[addr.IA]bool{lA: true, c1: true, c2: true, lB: true}
	var prev time.Duration
	for i, h := range hops {
		if h.IA == 0 {
			t.Errorf("hop %d unanswered", i)
			continue
		}
		if !wantASes[h.IA] {
			t.Errorf("hop %d from unexpected AS %v", i, h.IA)
		}
		if h.RTT < prev {
			// RTTs are monotone along the forward path (each router is
			// farther away than the previous one).
			t.Errorf("hop %d RTT %v < previous %v", i, h.RTT, prev)
		}
		prev = h.RTT
	}
	// First hop answers from the source AS, last from the destination.
	if hops[0].IA != lA {
		t.Errorf("first hop from %v", hops[0].IA)
	}
	if hops[len(hops)-1].IA != lB {
		t.Errorf("last hop from %v", hops[len(hops)-1].IA)
	}
}

func BenchmarkPingRoundTrip(b *testing.B) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n := buildNet(b, sim)
	defer n.Close()
	resp, _ := n.AttachResponder(lB)
	defer resp.Close()
	pinger, _ := n.NewPinger(lA)
	defer pinger.Close()
	paths := n.Paths(lA, lB)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ok := false
		pinger.Ping(lB, resp.Addr().Addr(), paths[0], 5*time.Second, func(d time.Duration, err error) {
			ok = err == nil
		})
		sim.RunFor(time.Second)
		if !ok {
			b.Fatal("ping failed")
		}
	}
}
