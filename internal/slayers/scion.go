// Package slayers implements the SCION wire format in the style of
// gopacket's layers: every message on the (simulated or loopback) network
// is a fully serialized SCION packet, decoded into preallocated layer
// structs so the hot path allocates nothing.
//
// A SCION packet is:
//
//	common+address header (56 B) | path header (variable) | L4 (UDP or SCMP) | payload
//
// The common header layout:
//
//	 0      Version        (1 B, currently 1)
//	 1      TrafficClass   (1 B)
//	 2      NextHdr        (1 B; 17 = UDP, 202 = SCMP)
//	 3      PathType       (1 B; 0 = empty, 1 = SCION)
//	 4-5    TotalLen       (2 B, entire packet)
//	 6-7    HdrLen         (2 B, common+address+path)
//	 8-15   DstIA          (8 B)
//	16-23   SrcIA          (8 B)
//	24-39   DstHost        (16 B, IPv6 or IPv4-mapped)
//	40-55   SrcHost        (16 B)
package slayers

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"

	"sciera/internal/addr"
	"sciera/internal/spath"
)

// Protocol numbers for the NextHdr field.
const (
	ProtoUDP  = 17
	ProtoSCMP = 202
)

// Path types.
const (
	PathTypeEmpty = 0
	PathTypeSCION = 1
)

// Version is the SCION header version this package implements.
const Version = 1

// CmnHdrLen is the length of the common+address header.
const CmnHdrLen = 56

// MaxPacketLen bounds packet sizes (fits the 16-bit TotalLen field).
const MaxPacketLen = 1<<16 - 1

// Decode errors.
var (
	ErrTruncated      = errors.New("slayers: truncated packet")
	ErrBadVersion     = errors.New("slayers: unsupported version")
	ErrBadLength      = errors.New("slayers: length fields inconsistent")
	ErrUnknownProto   = errors.New("slayers: unknown L4 protocol")
	ErrUnknownPath    = errors.New("slayers: unknown path type")
	ErrPacketTooLarge = errors.New("slayers: packet exceeds maximum length")
)

// SCION is the decoded common+address+path header.
type SCION struct {
	TrafficClass uint8
	NextHdr      uint8
	DstIA, SrcIA addr.IA
	DstHost      netip.Addr
	SrcHost      netip.Addr
	Path         spath.Path
}

// hdrLen returns the serialized header length (common + path).
func (s *SCION) hdrLen() int { return CmnHdrLen + s.Path.Len() }

func (s *SCION) serializeTo(b []byte, totalLen int) error {
	hl := s.hdrLen()
	if len(b) < hl {
		return ErrTruncated
	}
	if totalLen > MaxPacketLen {
		return ErrPacketTooLarge
	}
	b[0] = Version
	b[1] = s.TrafficClass
	b[2] = s.NextHdr
	if s.Path.IsEmpty() {
		b[3] = PathTypeEmpty
	} else {
		b[3] = PathTypeSCION
	}
	binary.BigEndian.PutUint16(b[4:6], uint16(totalLen))
	binary.BigEndian.PutUint16(b[6:8], uint16(hl))
	addr.PutIA(b[8:16], s.DstIA)
	addr.PutIA(b[16:24], s.SrcIA)
	d16 := as16(s.DstHost)
	s16 := as16(s.SrcHost)
	copy(b[24:40], d16[:])
	copy(b[40:56], s16[:])
	return s.Path.SerializeTo(b[CmnHdrLen:hl])
}

// decodeFrom parses the header and returns (headerLen, totalLen).
func (s *SCION) decodeFrom(b []byte) (int, int, error) {
	if len(b) < CmnHdrLen {
		return 0, 0, ErrTruncated
	}
	if b[0] != Version {
		return 0, 0, fmt.Errorf("%w: %d", ErrBadVersion, b[0])
	}
	s.TrafficClass = b[1]
	s.NextHdr = b[2]
	pathType := b[3]
	totalLen := int(binary.BigEndian.Uint16(b[4:6]))
	hdrLen := int(binary.BigEndian.Uint16(b[6:8]))
	if hdrLen < CmnHdrLen || hdrLen > totalLen || totalLen != len(b) {
		return 0, 0, fmt.Errorf("%w: hdr=%d total=%d buf=%d", ErrBadLength, hdrLen, totalLen, len(b))
	}
	s.DstIA = addr.GetIA(b[8:16])
	s.SrcIA = addr.GetIA(b[16:24])
	s.DstHost = fromAs16(b[24:40])
	s.SrcHost = fromAs16(b[40:56])
	switch pathType {
	case PathTypeEmpty:
		if hdrLen != CmnHdrLen {
			return 0, 0, fmt.Errorf("%w: empty path with %d path bytes", ErrBadLength, hdrLen-CmnHdrLen)
		}
		if err := s.Path.DecodeFromBytes(nil); err != nil {
			return 0, 0, err
		}
	case PathTypeSCION:
		if err := s.Path.DecodeFromBytes(b[CmnHdrLen:hdrLen]); err != nil {
			return 0, 0, err
		}
	default:
		return 0, 0, fmt.Errorf("%w: %d", ErrUnknownPath, pathType)
	}
	return hdrLen, totalLen, nil
}

// as16 returns the 16-byte representation of an address (IPv4 becomes
// IPv4-mapped IPv6). The zero Addr maps to all zeroes.
func as16(a netip.Addr) [16]byte {
	if !a.IsValid() {
		return [16]byte{}
	}
	return a.As16()
}

func fromAs16(b []byte) netip.Addr {
	var a16 [16]byte
	copy(a16[:], b)
	a := netip.AddrFrom16(a16)
	if a == netip.AddrFrom16([16]byte{}) {
		return netip.Addr{}
	}
	return a.Unmap()
}

// UDP is the SCION/UDP L4 header (8 bytes + payload).
type UDP struct {
	SrcPort, DstPort uint16
}

const udpHdrLen = 8

// Packet is a complete SCION packet: header, one L4, and payload.
// Exactly one of UDP/SCMP must be non-nil, matching Hdr.NextHdr.
type Packet struct {
	Hdr     SCION
	UDP     *UDP
	SCMP    *SCMP
	Payload []byte

	// scratch reuses the SCMP struct across decodes.
	scmpScratch SCMP
	udpScratch  UDP
	// phScratch caches the checksum pseudo-header built by the last
	// full Decode. DecodeSameFlow reuses it directly: its caller
	// guarantees a byte-identical header image (addresses, proto) and
	// total length, so the pseudo-header of every follower in a burst
	// equals the leader's. Invalidated by DecodeTruncated, which leaves
	// Hdr only partially populated.
	phScratch [52]byte
	phSum     uint64
	phValid   bool
}

// totalLen computes the serialized packet length, validating the L4
// configuration.
func (p *Packet) totalLen() (int, error) {
	var l4Len int
	switch {
	case p.UDP != nil && p.SCMP == nil:
		l4Len = udpHdrLen + len(p.Payload)
	case p.SCMP != nil && p.UDP == nil:
		l4Len = p.SCMP.len() + len(p.Payload)
	default:
		return 0, errors.New("slayers: exactly one of UDP/SCMP must be set")
	}
	total := p.Hdr.hdrLen() + l4Len
	if total > MaxPacketLen {
		return 0, ErrPacketTooLarge
	}
	return total, nil
}

// Serialize renders the packet, appending to dst (which may be nil).
// Passing a scratch buffer with spare capacity (buf[:0]) makes the call
// allocation-free; SerializeTo is the fixed-buffer variant.
func (p *Packet) Serialize(dst []byte) ([]byte, error) {
	total, err := p.totalLen()
	if err != nil {
		return nil, err
	}
	off := len(dst)
	if cap(dst) >= off+total {
		dst = dst[:off+total]
	} else {
		dst = append(dst, make([]byte, total)...)
	}
	if _, err := p.SerializeTo(dst[off:]); err != nil {
		return nil, err
	}
	return dst, nil
}

// SerializeTo renders the packet into the caller-provided buffer and
// returns the number of bytes written. The buffer must hold the whole
// packet; nothing is allocated.
func (p *Packet) SerializeTo(b []byte) (int, error) {
	total, err := p.totalLen()
	if err != nil {
		return 0, err
	}
	if len(b) < total {
		return 0, ErrTruncated
	}
	b = b[:total]
	hl := p.Hdr.hdrLen()
	l4Len := total - hl
	if p.UDP != nil {
		p.Hdr.NextHdr = ProtoUDP
	} else {
		p.Hdr.NextHdr = ProtoSCMP
	}
	if err := p.Hdr.serializeTo(b, total); err != nil {
		return 0, err
	}
	l4 := b[hl:]
	if p.UDP != nil {
		binary.BigEndian.PutUint16(l4[0:2], p.UDP.SrcPort)
		binary.BigEndian.PutUint16(l4[2:4], p.UDP.DstPort)
		binary.BigEndian.PutUint16(l4[4:6], uint16(l4Len))
		copy(l4[udpHdrLen:], p.Payload)
		binary.BigEndian.PutUint16(l4[6:8], 0)
		binary.BigEndian.PutUint16(l4[6:8], checksum(pseudoHeader(&p.Hdr, ProtoUDP, l4Len), l4))
	} else {
		p.SCMP.serializeTo(l4)
		copy(l4[p.SCMP.len():], p.Payload)
		binary.BigEndian.PutUint16(l4[2:4], 0)
		binary.BigEndian.PutUint16(l4[2:4], checksum(pseudoHeader(&p.Hdr, ProtoSCMP, l4Len), l4))
	}
	return total, nil
}

// PatchPath writes the packet's current path pointers (and the info
// fields' in-flight SegID accumulators) back into raw, the buffer the
// packet was decoded from. It is the zero-copy alternative to a full
// re-serialization when — as on the router's forwarding fast path —
// nothing but the path state changed: addresses, hop fields, L4 and
// payload bytes are reused verbatim, and the checksum (which does not
// cover the path) stays valid.
func (p *Packet) PatchPath(raw []byte) error {
	if len(raw) < CmnHdrLen {
		return ErrTruncated
	}
	hl := int(binary.BigEndian.Uint16(raw[6:8]))
	if hl != p.Hdr.hdrLen() || hl > len(raw) {
		return fmt.Errorf("%w: patch into buffer with different header shape", ErrBadLength)
	}
	return p.Hdr.Path.PatchTo(raw[CmnHdrLen:hl])
}

// Decode parses a full packet. The payload slice aliases b (NoCopy-style);
// callers that retain the payload beyond the lifetime of b must copy it.
func (p *Packet) Decode(b []byte) error {
	p.phValid = false
	hl, total, err := p.Hdr.decodeFrom(b)
	if err != nil {
		return err
	}
	l4 := b[hl:total]
	p.UDP, p.SCMP = nil, nil
	switch p.Hdr.NextHdr {
	case ProtoUDP:
		if len(l4) < udpHdrLen {
			return ErrTruncated
		}
		p.phScratch = pseudoHeader(&p.Hdr, ProtoUDP, len(l4))
		p.phSum, p.phValid = sum16(p.phScratch[:], 0), true
		if got := foldChecksum(sum16(l4, p.phSum)); got != 0 {
			return fmt.Errorf("slayers: UDP checksum mismatch (%#04x)", got)
		}
		p.udpScratch.SrcPort = binary.BigEndian.Uint16(l4[0:2])
		p.udpScratch.DstPort = binary.BigEndian.Uint16(l4[2:4])
		if int(binary.BigEndian.Uint16(l4[4:6])) != len(l4) {
			return fmt.Errorf("%w: UDP length", ErrBadLength)
		}
		p.UDP = &p.udpScratch
		p.Payload = l4[udpHdrLen:]
	case ProtoSCMP:
		p.phScratch = pseudoHeader(&p.Hdr, ProtoSCMP, len(l4))
		p.phSum, p.phValid = sum16(p.phScratch[:], 0), true
		if got := foldChecksum(sum16(l4, p.phSum)); got != 0 {
			return fmt.Errorf("slayers: SCMP checksum mismatch (%#04x)", got)
		}
		n, err := p.scmpScratch.decodeFrom(l4)
		if err != nil {
			return err
		}
		p.SCMP = &p.scmpScratch
		p.Payload = l4[n:]
	default:
		return fmt.Errorf("%w: %d", ErrUnknownProto, p.Hdr.NextHdr)
	}
	return nil
}

// VerifyChecksum validates the L4 checksum of a serialized packet
// straight from the wire bytes, without decoding anything. It performs
// the same shape checks Decode would (length-field consistency, known
// L4 protocol) and then folds the pseudo-header directly from the raw
// header bytes. It is safe to call concurrently on distinct buffers —
// the router's burst pre-verification fans it out across workers while
// the decoded header state stays with the sequential pipeline.
func VerifyChecksum(b []byte) error {
	if len(b) < CmnHdrLen {
		return ErrTruncated
	}
	if b[0] != Version {
		return fmt.Errorf("%w: %d", ErrBadVersion, b[0])
	}
	totalLen := int(binary.BigEndian.Uint16(b[4:6]))
	hdrLen := int(binary.BigEndian.Uint16(b[6:8]))
	if hdrLen < CmnHdrLen || hdrLen > totalLen || totalLen != len(b) {
		return fmt.Errorf("%w: hdr=%d total=%d buf=%d", ErrBadLength, hdrLen, totalLen, len(b))
	}
	proto := b[2]
	if proto != ProtoUDP && proto != ProtoSCMP {
		return fmt.Errorf("%w: %d", ErrUnknownProto, proto)
	}
	l4 := b[hdrLen:totalLen]
	// The pseudo-header from raw bytes: wire order is DstIA, SrcIA,
	// DstHost, SrcHost; the pseudo-header wants Src before Dst.
	var ph [52]byte
	copy(ph[0:8], b[16:24])
	copy(ph[8:16], b[8:16])
	copy(ph[16:32], b[40:56])
	copy(ph[32:48], b[24:40])
	binary.BigEndian.PutUint16(ph[48:50], uint16(len(l4)))
	ph[51] = proto
	if got := checksum(ph, l4); got != 0 {
		return fmt.Errorf("slayers: checksum mismatch (%#04x)", got)
	}
	return nil
}

// DecodeSameFlow decodes only the L4 section of b into p, reusing the
// header state already in p from a previous full Decode of a packet
// with a byte-identical header image. The caller guarantees (typically
// with one bytes.Equal over the first hdrLen bytes, which covers
// TotalLen) that b[:hdrLen] matches the reference packet's header as
// received and that len(b) equals its total length; the addresses and
// NextHdr in p.Hdr are then valid for b too and feed the checksum
// pseudo-header, while the path state is not consulted at all (it may
// have advanced past the reference decode). With csumVerified set the
// checksum is skipped — the router's batch path pre-verifies a burst's
// checksums in parallel with VerifyChecksum before consuming verdicts
// in order.
func (p *Packet) DecodeSameFlow(b []byte, hdrLen int, csumVerified bool) error {
	if hdrLen < CmnHdrLen || hdrLen > len(b) {
		return ErrTruncated
	}
	l4 := b[hdrLen:]
	p.UDP, p.SCMP = nil, nil
	switch p.Hdr.NextHdr {
	case ProtoUDP:
		if len(l4) < udpHdrLen {
			return ErrTruncated
		}
		if !csumVerified {
			if !p.phValid {
				p.phScratch = pseudoHeader(&p.Hdr, ProtoUDP, len(l4))
				p.phSum, p.phValid = sum16(p.phScratch[:], 0), true
			}
			if got := foldChecksum(sum16(l4, p.phSum)); got != 0 {
				return fmt.Errorf("slayers: UDP checksum mismatch (%#04x)", got)
			}
		}
		p.udpScratch.SrcPort = binary.BigEndian.Uint16(l4[0:2])
		p.udpScratch.DstPort = binary.BigEndian.Uint16(l4[2:4])
		if int(binary.BigEndian.Uint16(l4[4:6])) != len(l4) {
			return fmt.Errorf("%w: UDP length", ErrBadLength)
		}
		p.UDP = &p.udpScratch
		p.Payload = l4[udpHdrLen:]
	case ProtoSCMP:
		if !csumVerified {
			if !p.phValid {
				p.phScratch = pseudoHeader(&p.Hdr, ProtoSCMP, len(l4))
				p.phSum, p.phValid = sum16(p.phScratch[:], 0), true
			}
			if got := foldChecksum(sum16(l4, p.phSum)); got != 0 {
				return fmt.Errorf("slayers: SCMP checksum mismatch (%#04x)", got)
			}
		}
		n, err := p.scmpScratch.decodeFrom(l4)
		if err != nil {
			return err
		}
		p.SCMP = &p.scmpScratch
		p.Payload = l4[n:]
	default:
		return fmt.Errorf("%w: %d", ErrUnknownProto, p.Hdr.NextHdr)
	}
	return nil
}

// DecodeTruncated parses a packet that may have been cut short — the
// quote carried in an SCMP error message, which routers cap at 512
// bytes regardless of the offending packet's size. It deliberately
// skips every check that needs the full packet (checksums, total-length
// consistency, UDP length) and parses only as far as the L4
// demultiplexing information: UDP src/dst ports, or the SCMP type and
// identifier. Optional SCMP fields missing from the truncation are left
// zero; Payload is whatever bytes remain. The header itself (through
// the path) must be complete — a quote shorter than its own header
// identifies nothing and is rejected.
func (p *Packet) DecodeTruncated(b []byte) error {
	p.phValid = false
	if len(b) < CmnHdrLen {
		return ErrTruncated
	}
	if b[0] != Version {
		return fmt.Errorf("%w: %d", ErrBadVersion, b[0])
	}
	p.Hdr.TrafficClass = b[1]
	p.Hdr.NextHdr = b[2]
	pathType := b[3]
	hdrLen := int(binary.BigEndian.Uint16(b[6:8]))
	if hdrLen < CmnHdrLen || hdrLen > len(b) {
		return ErrTruncated
	}
	p.Hdr.DstIA = addr.GetIA(b[8:16])
	p.Hdr.SrcIA = addr.GetIA(b[16:24])
	p.Hdr.DstHost = fromAs16(b[24:40])
	p.Hdr.SrcHost = fromAs16(b[40:56])
	switch pathType {
	case PathTypeEmpty:
		if err := p.Hdr.Path.DecodeFromBytes(nil); err != nil {
			return err
		}
	case PathTypeSCION:
		if err := p.Hdr.Path.DecodeFromBytes(b[CmnHdrLen:hdrLen]); err != nil {
			return err
		}
	default:
		return fmt.Errorf("%w: %d", ErrUnknownPath, pathType)
	}
	l4 := b[hdrLen:]
	p.UDP, p.SCMP = nil, nil
	p.Payload = nil
	switch p.Hdr.NextHdr {
	case ProtoUDP:
		if len(l4) < 4 {
			return ErrTruncated
		}
		p.udpScratch.SrcPort = binary.BigEndian.Uint16(l4[0:2])
		p.udpScratch.DstPort = binary.BigEndian.Uint16(l4[2:4])
		p.UDP = &p.udpScratch
		if len(l4) > udpHdrLen {
			p.Payload = l4[udpHdrLen:]
		}
	case ProtoSCMP:
		if len(l4) < scmpCmnLen {
			return ErrTruncated
		}
		if err := p.scmpScratch.decodeTruncatedFrom(l4); err != nil {
			return err
		}
		p.SCMP = &p.scmpScratch
		if n := p.SCMP.len(); len(l4) > n {
			p.Payload = l4[n:]
		}
	default:
		return fmt.Errorf("%w: %d", ErrUnknownProto, p.Hdr.NextHdr)
	}
	return nil
}

// pseudoHeader builds the checksum pseudo-header binding L4 data to the
// SCION addresses, preventing redirection of checksummed payloads.
func pseudoHeader(h *SCION, proto uint8, l4Len int) [52]byte {
	var ph [52]byte
	addr.PutIA(ph[0:8], h.SrcIA)
	addr.PutIA(ph[8:16], h.DstIA)
	s16 := as16(h.SrcHost)
	d16 := as16(h.DstHost)
	copy(ph[16:32], s16[:])
	copy(ph[32:48], d16[:])
	binary.BigEndian.PutUint16(ph[48:50], uint16(l4Len))
	ph[51] = proto
	return ph
}

// checksum computes the Internet ones-complement checksum over the
// pseudo-header and the L4 bytes.
func checksum(ph [52]byte, l4 []byte) uint16 {
	return foldChecksum(sum16(l4, sum16(ph[:], 0)))
}

// foldChecksum folds an unfolded sum16 accumulator down to the final
// ones-complement checksum.
func foldChecksum(sum uint64) uint16 {
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// sum16 accumulates b as big-endian 16-bit words into sum (no folding),
// eight bytes per step on the aligned middle. A uint64 accumulator
// cannot overflow before folding: each step adds < 2^18, so well over
// 2^45 bytes would be needed.
func sum16(b []byte, sum uint64) uint64 {
	for len(b) >= 8 {
		v := binary.BigEndian.Uint64(b)
		sum += v>>48 + v>>32&0xffff + v>>16&0xffff + v&0xffff
		b = b[8:]
	}
	for len(b) >= 2 {
		sum += uint64(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint64(b[0]) << 8
	}
	return sum
}
