package slayers

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"

	"sciera/internal/addr"
	"sciera/internal/spath"
)

func testPath() spath.Path {
	return spath.Path{
		SegLens: [3]uint8{2, 0, 0},
		Infos:   []spath.InfoField{{ConsDir: true, SegID: 7, Timestamp: 9}},
		Hops: []spath.HopField{
			{ExpTime: 63, ConsIngress: 0, ConsEgress: 1, MAC: [6]byte{1, 1, 1, 1, 1, 1}},
			{ExpTime: 63, ConsIngress: 2, ConsEgress: 0, MAC: [6]byte{2, 2, 2, 2, 2, 2}},
		},
	}
}

func udpPacket() *Packet {
	return &Packet{
		Hdr: SCION{
			TrafficClass: 0x20,
			DstIA:        addr.MustParseIA("71-2:0:3b"),
			SrcIA:        addr.MustParseIA("71-559"),
			DstHost:      netip.MustParseAddr("10.0.0.2"),
			SrcHost:      netip.MustParseAddr("10.0.0.1"),
			Path:         testPath(),
		},
		UDP:     &UDP{SrcPort: 31000, DstPort: 443},
		Payload: []byte("hello sciera"),
	}
}

func TestUDPRoundTrip(t *testing.T) {
	p := udpPacket()
	raw, err := p.Serialize(nil)
	if err != nil {
		t.Fatal(err)
	}
	var q Packet
	if err := q.Decode(raw); err != nil {
		t.Fatal(err)
	}
	if q.Hdr.SrcIA != p.Hdr.SrcIA || q.Hdr.DstIA != p.Hdr.DstIA {
		t.Errorf("IAs: %v->%v", q.Hdr.SrcIA, q.Hdr.DstIA)
	}
	if q.Hdr.SrcHost != p.Hdr.SrcHost || q.Hdr.DstHost != p.Hdr.DstHost {
		t.Errorf("hosts: %v -> %v", q.Hdr.SrcHost, q.Hdr.DstHost)
	}
	if q.Hdr.TrafficClass != 0x20 {
		t.Errorf("traffic class = %#x", q.Hdr.TrafficClass)
	}
	if q.UDP == nil || q.SCMP != nil {
		t.Fatal("expected UDP L4")
	}
	if q.UDP.SrcPort != 31000 || q.UDP.DstPort != 443 {
		t.Errorf("ports = %d->%d", q.UDP.SrcPort, q.UDP.DstPort)
	}
	if string(q.Payload) != "hello sciera" {
		t.Errorf("payload = %q", q.Payload)
	}
	if len(q.Hdr.Path.Hops) != 2 || q.Hdr.Path.Hops[1].ConsIngress != 2 {
		t.Errorf("path = %+v", q.Hdr.Path)
	}
}

func TestEmptyPathPacket(t *testing.T) {
	p := udpPacket()
	p.Hdr.Path = spath.Path{}
	raw, err := p.Serialize(nil)
	if err != nil {
		t.Fatal(err)
	}
	if raw[3] != PathTypeEmpty {
		t.Errorf("path type = %d", raw[3])
	}
	var q Packet
	if err := q.Decode(raw); err != nil {
		t.Fatal(err)
	}
	if !q.Hdr.Path.IsEmpty() {
		t.Error("expected empty path")
	}
}

func TestSCMPEchoRoundTrip(t *testing.T) {
	p := &Packet{
		Hdr: SCION{
			DstIA:   addr.MustParseIA("71-2:0:3d"),
			SrcIA:   addr.MustParseIA("71-2:0:3b"),
			DstHost: netip.MustParseAddr("::1"),
			SrcHost: netip.MustParseAddr("fd00::2"),
			Path:    testPath(),
		},
		SCMP:    &SCMP{Type: SCMPEchoRequest, Identifier: 99, SeqNo: 1234},
		Payload: []byte("probe-data"),
	}
	raw, err := p.Serialize(nil)
	if err != nil {
		t.Fatal(err)
	}
	var q Packet
	if err := q.Decode(raw); err != nil {
		t.Fatal(err)
	}
	if q.SCMP == nil || q.UDP != nil {
		t.Fatal("expected SCMP L4")
	}
	if q.SCMP.Type != SCMPEchoRequest || q.SCMP.Identifier != 99 || q.SCMP.SeqNo != 1234 {
		t.Errorf("scmp = %+v", q.SCMP)
	}
	if string(q.Payload) != "probe-data" {
		t.Errorf("payload = %q", q.Payload)
	}
	if q.Hdr.SrcHost != netip.MustParseAddr("fd00::2") {
		t.Errorf("v6 host = %v", q.Hdr.SrcHost)
	}
}

func TestSCMPVariants(t *testing.T) {
	ia := addr.MustParseIA("71-20965")
	cases := []*SCMP{
		{Type: SCMPDestinationUnreachable, Code: CodePortUnreach},
		{Type: SCMPExternalInterfaceDown, IA: ia, IfID: 42},
		{Type: SCMPInternalConnectivityDown, IA: ia, Ingress: 1, Egress: 2},
		{Type: SCMPParameterProblem, Pointer: 12},
		{Type: SCMPTracerouteRequest, Identifier: 1, SeqNo: 2, IA: ia, IfID: 7},
		{Type: SCMPTracerouteReply, Identifier: 1, SeqNo: 2, IA: ia, IfID: 7},
	}
	for _, sc := range cases {
		p := &Packet{
			Hdr: SCION{
				DstIA:   addr.MustParseIA("71-1"),
				SrcIA:   ia,
				DstHost: netip.MustParseAddr("10.0.0.1"),
				SrcHost: netip.MustParseAddr("10.0.0.2"),
			},
			SCMP:    sc,
			Payload: []byte("quoted-packet-bytes"),
		}
		raw, err := p.Serialize(nil)
		if err != nil {
			t.Fatalf("%v: %v", sc.Type, err)
		}
		var q Packet
		if err := q.Decode(raw); err != nil {
			t.Fatalf("%v: %v", sc.Type, err)
		}
		if q.SCMP.Type != sc.Type || q.SCMP.Code != sc.Code ||
			q.SCMP.IA != sc.IA || q.SCMP.IfID != sc.IfID ||
			q.SCMP.Ingress != sc.Ingress || q.SCMP.Egress != sc.Egress ||
			q.SCMP.Identifier != sc.Identifier || q.SCMP.SeqNo != sc.SeqNo ||
			q.SCMP.Pointer != sc.Pointer {
			t.Errorf("%v: round trip mismatch: %+v vs %+v", sc.Type, q.SCMP, sc)
		}
		if string(q.Payload) != "quoted-packet-bytes" {
			t.Errorf("%v: payload %q", sc.Type, q.Payload)
		}
	}
}

func TestSCMPTypePredicates(t *testing.T) {
	if !SCMPDestinationUnreachable.IsError() || SCMPEchoRequest.IsError() {
		t.Error("IsError misclassifies")
	}
	if SCMPEchoReply.String() != "EchoReply" {
		t.Errorf("String = %q", SCMPEchoReply.String())
	}
	if SCMPType(99).String() == "" {
		t.Error("unknown type should format")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	p := udpPacket()
	raw, err := p.Serialize(nil)
	if err != nil {
		t.Fatal(err)
	}
	var q Packet
	// Flip one payload byte: checksum must catch it.
	for _, idx := range []int{len(raw) - 1, len(raw) - 5, CmnHdrLen + p.Hdr.Path.Len() + 1} {
		bad := append([]byte(nil), raw...)
		bad[idx] ^= 0x40
		if err := q.Decode(bad); err == nil {
			t.Errorf("corruption at byte %d not detected", idx)
		}
	}
	// Flipping an address bit breaks the pseudo-header binding.
	bad := append([]byte(nil), raw...)
	bad[9] ^= 1 // inside DstIA
	if err := q.Decode(bad); err == nil {
		t.Error("address corruption not detected via pseudo-header")
	}
}

func TestDecodeRejectsBadHeaders(t *testing.T) {
	p := udpPacket()
	raw, _ := p.Serialize(nil)
	var q Packet

	short := raw[:CmnHdrLen-1]
	if err := q.Decode(short); err == nil {
		t.Error("short header accepted")
	}

	badVer := append([]byte(nil), raw...)
	badVer[0] = 9
	if err := q.Decode(badVer); err == nil {
		t.Error("bad version accepted")
	}

	badProto := append([]byte(nil), raw...)
	badProto[2] = 99
	if err := q.Decode(badProto); err == nil {
		t.Error("unknown protocol accepted")
	}

	badPathType := append([]byte(nil), raw...)
	badPathType[3] = 7
	if err := q.Decode(badPathType); err == nil {
		t.Error("unknown path type accepted")
	}

	truncated := raw[:len(raw)-3]
	if err := q.Decode(truncated); err == nil {
		t.Error("total-length mismatch accepted")
	}
}

func TestSerializeValidation(t *testing.T) {
	p := udpPacket()
	p.SCMP = &SCMP{Type: SCMPEchoRequest}
	if _, err := p.Serialize(nil); err == nil {
		t.Error("both L4 set: accepted")
	}
	p.UDP, p.SCMP = nil, nil
	if _, err := p.Serialize(nil); err == nil {
		t.Error("no L4 set: accepted")
	}
	q := udpPacket()
	q.Payload = make([]byte, MaxPacketLen)
	if _, err := q.Serialize(nil); err == nil {
		t.Error("oversized packet accepted")
	}
}

func TestSerializeAppends(t *testing.T) {
	p := udpPacket()
	prefix := []byte{0xde, 0xad}
	out, err := p.Serialize(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[:2], prefix) {
		t.Error("Serialize did not append to dst")
	}
	var q Packet
	if err := q.Decode(out[2:]); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeReusesScratch(t *testing.T) {
	// Decoding different packets into the same struct must not leak
	// fields between decodes.
	var q Packet
	p1 := udpPacket()
	p1.SCMP = nil
	raw1, _ := p1.Serialize(nil)

	p2 := &Packet{
		Hdr:  p1.Hdr,
		SCMP: &SCMP{Type: SCMPTracerouteRequest, Identifier: 5, IA: addr.MustParseIA("64-559"), IfID: 3},
	}
	p2.Hdr.Path = testPath()
	raw2, _ := p2.Serialize(nil)

	p3 := &Packet{Hdr: p2.Hdr, SCMP: &SCMP{Type: SCMPEchoRequest, Identifier: 1}}
	p3.Hdr.Path = testPath()
	raw3, _ := p3.Serialize(nil)

	if err := q.Decode(raw1); err != nil {
		t.Fatal(err)
	}
	if err := q.Decode(raw2); err != nil {
		t.Fatal(err)
	}
	if q.SCMP.IfID != 3 {
		t.Errorf("IfID = %d", q.SCMP.IfID)
	}
	if err := q.Decode(raw3); err != nil {
		t.Fatal(err)
	}
	if q.SCMP.IA != 0 || q.SCMP.IfID != 0 {
		t.Errorf("stale SCMP fields leaked: %+v", q.SCMP)
	}
}

func TestFuzzDecodeNoPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := udpPacket()
	raw, _ := p.Serialize(nil)
	var q Packet
	for i := 0; i < 5000; i++ {
		fz := append([]byte(nil), raw...)
		// Random mutations.
		for n := rng.Intn(8); n >= 0; n-- {
			fz[rng.Intn(len(fz))] ^= byte(1 << rng.Intn(8))
		}
		fz = fz[:rng.Intn(len(fz)+1)]
		_ = q.Decode(fz) // must not panic
	}
}

func TestIPv4MappedHostsRoundTrip(t *testing.T) {
	p := udpPacket()
	p.Hdr.SrcHost = netip.MustParseAddr("192.0.2.1")
	raw, _ := p.Serialize(nil)
	var q Packet
	if err := q.Decode(raw); err != nil {
		t.Fatal(err)
	}
	if !q.Hdr.SrcHost.Is4() {
		t.Errorf("expected unmapped IPv4, got %v", q.Hdr.SrcHost)
	}
}

func BenchmarkPacketSerialize(b *testing.B) {
	p := udpPacket()
	p.Payload = make([]byte, 1000)
	buf := make([]byte, 0, 2048)
	b.ReportAllocs()
	b.SetBytes(1000)
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = p.Serialize(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPacketDecode(b *testing.B) {
	p := udpPacket()
	p.Payload = make([]byte, 1000)
	raw, _ := p.Serialize(nil)
	var q Packet
	b.ReportAllocs()
	b.SetBytes(1000)
	for i := 0; i < b.N; i++ {
		if err := q.Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}
