package slayers

import (
	"bytes"
	"errors"
	"testing"
)

func scmpEchoPacket() *Packet {
	p := udpPacket()
	p.UDP = nil
	p.SCMP = &SCMP{Type: SCMPEchoRequest, Identifier: 40001, SeqNo: 3}
	p.Payload = []byte("probe")
	return p
}

// TestVerifyChecksumMatchesDecode verifies the raw-bytes checksum check
// agrees with the full decoder: valid packets pass, any flipped payload
// or address bit fails, and malformed length fields are rejected before
// the fold.
func TestVerifyChecksumMatchesDecode(t *testing.T) {
	for _, mk := range []func() *Packet{udpPacket, scmpEchoPacket} {
		p := mk()
		raw, err := p.Serialize(nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyChecksum(raw); err != nil {
			t.Fatalf("valid packet rejected: %v", err)
		}
		// Flip one payload bit: decode and VerifyChecksum must agree.
		bad := append([]byte(nil), raw...)
		bad[len(bad)-1] ^= 0x01
		var q Packet
		if VerifyChecksum(bad) == nil {
			t.Error("corrupted payload passed VerifyChecksum")
		}
		if q.Decode(bad) == nil {
			t.Error("corrupted payload passed Decode")
		}
		// Flip an address byte: the pseudo-header must cover it.
		bad = append(bad[:0], raw...)
		bad[30] ^= 0x01 // inside DstHost
		if VerifyChecksum(bad) == nil {
			t.Error("redirected packet passed VerifyChecksum")
		}
	}
	if err := VerifyChecksum(make([]byte, 10)); !errors.Is(err, ErrTruncated) {
		t.Errorf("short buffer: %v, want ErrTruncated", err)
	}
	p := udpPacket()
	raw, _ := p.Serialize(nil)
	if err := VerifyChecksum(raw[:len(raw)-4]); !errors.Is(err, ErrBadLength) {
		t.Errorf("inconsistent TotalLen: %v, want ErrBadLength", err)
	}
	raw2 := append([]byte(nil), raw...)
	raw2[2] = 99 // unknown NextHdr
	if err := VerifyChecksum(raw2); !errors.Is(err, ErrUnknownProto) {
		t.Errorf("unknown proto: %v, want ErrUnknownProto", err)
	}
}

// TestDecodeSameFlowMatchesDecode verifies the burst fast-path decode:
// after a full Decode of a reference packet, DecodeSameFlow on a
// same-header sibling must yield exactly the L4 view a full Decode
// would — for UDP and SCMP flows alike — including rejecting a
// corrupted checksum unless the caller pre-verified it.
func TestDecodeSameFlowMatchesDecode(t *testing.T) {
	ref := udpPacket()
	rawRef, err := ref.Serialize(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Sibling: identical header, different ports and payload bytes (same
	// lengths, so the header image — which covers TotalLen — matches).
	sib := udpPacket()
	sib.UDP = &UDP{SrcPort: 31999, DstPort: 8443}
	sib.Payload = []byte("HELLO SCIERA")
	rawSib, err := sib.Serialize(nil)
	if err != nil {
		t.Fatal(err)
	}

	var p Packet
	if err := p.Decode(rawRef); err != nil {
		t.Fatal(err)
	}
	hl := CmnHdrLen + p.Hdr.Path.Len()
	if !bytes.Equal(rawRef[:hl], rawSib[:hl]) {
		t.Fatal("test setup: sibling header image differs")
	}
	if err := p.DecodeSameFlow(rawSib, hl, false); err != nil {
		t.Fatal(err)
	}
	var full Packet
	if err := full.Decode(rawSib); err != nil {
		t.Fatal(err)
	}
	if p.UDP == nil || *p.UDP != *full.UDP {
		t.Errorf("UDP = %+v, want %+v", p.UDP, full.UDP)
	}
	if !bytes.Equal(p.Payload, full.Payload) {
		t.Errorf("payload = %q, want %q", p.Payload, full.Payload)
	}

	// Corrupted sibling: caught unless pre-verified (the pre-verifier is
	// then responsible — VerifyChecksum catches the same corruption).
	bad := append([]byte(nil), rawSib...)
	bad[len(bad)-2] ^= 0x40
	if err := p.DecodeSameFlow(bad, hl, false); err == nil {
		t.Error("corrupted sibling passed DecodeSameFlow")
	}
	if err := VerifyChecksum(bad); err == nil {
		t.Error("corrupted sibling passed VerifyChecksum")
	}
	if err := p.DecodeSameFlow(bad, hl, true); err != nil {
		t.Errorf("csumVerified decode failed: %v", err)
	}

	// SCMP flow: echo siblings share the header; identifiers differ.
	refS := scmpEchoPacket()
	rawRefS, _ := refS.Serialize(nil)
	sibS := scmpEchoPacket()
	sibS.SCMP.Identifier = 40002
	sibS.SCMP.SeqNo = 9
	rawSibS, _ := sibS.Serialize(nil)
	var q Packet
	if err := q.Decode(rawRefS); err != nil {
		t.Fatal(err)
	}
	hlS := CmnHdrLen + q.Hdr.Path.Len()
	if err := q.DecodeSameFlow(rawSibS, hlS, false); err != nil {
		t.Fatal(err)
	}
	if q.SCMP == nil || q.SCMP.Identifier != 40002 || q.SCMP.SeqNo != 9 {
		t.Errorf("SCMP = %+v", q.SCMP)
	}
	if q.UDP != nil {
		t.Error("stale UDP layer survived an SCMP same-flow decode")
	}
}
