package slayers

import (
	"encoding/binary"
	"fmt"

	"sciera/internal/addr"
)

// SCMPType enumerates SCION Control Message Protocol message types,
// mirroring ICMPv6's split between error (< 128) and informational
// (>= 128) messages.
type SCMPType uint8

const (
	SCMPDestinationUnreachable   SCMPType = 1
	SCMPPacketTooBig             SCMPType = 2
	SCMPParameterProblem         SCMPType = 4
	SCMPExternalInterfaceDown    SCMPType = 5
	SCMPInternalConnectivityDown SCMPType = 6
	SCMPEchoRequest              SCMPType = 128
	SCMPEchoReply                SCMPType = 129
	SCMPTracerouteRequest        SCMPType = 130
	SCMPTracerouteReply          SCMPType = 131
)

func (t SCMPType) String() string {
	switch t {
	case SCMPDestinationUnreachable:
		return "DestinationUnreachable"
	case SCMPPacketTooBig:
		return "PacketTooBig"
	case SCMPParameterProblem:
		return "ParameterProblem"
	case SCMPExternalInterfaceDown:
		return "ExternalInterfaceDown"
	case SCMPInternalConnectivityDown:
		return "InternalConnectivityDown"
	case SCMPEchoRequest:
		return "EchoRequest"
	case SCMPEchoReply:
		return "EchoReply"
	case SCMPTracerouteRequest:
		return "TracerouteRequest"
	case SCMPTracerouteReply:
		return "TracerouteReply"
	default:
		return fmt.Sprintf("SCMPType(%d)", uint8(t))
	}
}

// IsError reports whether the type is an error message. Error messages
// must never be answered with further SCMP errors.
func (t SCMPType) IsError() bool { return t < 128 }

// SCMP destination-unreachable codes.
const (
	CodeNoRoute     = 0
	CodeDenied      = 1
	CodeBeyondScope = 2
	CodeAddrUnreach = 3
	CodePortUnreach = 4
)

// SCMP is a decoded SCMP message. The meaning of the optional fields
// depends on Type:
//
//	EchoRequest/Reply:          Identifier, SeqNo
//	TracerouteRequest/Reply:    Identifier, SeqNo, IA, IfID
//	ExternalInterfaceDown:      IA, IfID
//	InternalConnectivityDown:   IA, Ingress, Egress
//	ParameterProblem:           Pointer
//
// Error messages quote the offending packet in the enclosing Packet's
// Payload.
type SCMP struct {
	Type SCMPType
	Code uint8

	Identifier uint16
	SeqNo      uint16
	IA         addr.IA
	IfID       uint64
	Ingress    uint64
	Egress     uint64
	Pointer    uint16
}

const scmpCmnLen = 4 // Type, Code, Checksum

// len returns the serialized SCMP header length (excluding any quoted
// packet / echo payload, which lives in Packet.Payload).
func (s *SCMP) len() int {
	switch s.Type {
	case SCMPEchoRequest, SCMPEchoReply:
		return scmpCmnLen + 4
	case SCMPTracerouteRequest, SCMPTracerouteReply:
		return scmpCmnLen + 4 + 16
	case SCMPExternalInterfaceDown:
		return scmpCmnLen + 16
	case SCMPInternalConnectivityDown:
		return scmpCmnLen + 24
	case SCMPParameterProblem:
		return scmpCmnLen + 4
	default:
		return scmpCmnLen + 4 // unused 4-byte field, e.g. DestinationUnreachable
	}
}

func (s *SCMP) serializeTo(b []byte) {
	b[0] = uint8(s.Type)
	b[1] = s.Code
	b[2], b[3] = 0, 0 // checksum filled by caller
	body := b[scmpCmnLen:]
	switch s.Type {
	case SCMPEchoRequest, SCMPEchoReply:
		binary.BigEndian.PutUint16(body[0:2], s.Identifier)
		binary.BigEndian.PutUint16(body[2:4], s.SeqNo)
	case SCMPTracerouteRequest, SCMPTracerouteReply:
		binary.BigEndian.PutUint16(body[0:2], s.Identifier)
		binary.BigEndian.PutUint16(body[2:4], s.SeqNo)
		addr.PutIA(body[4:12], s.IA)
		binary.BigEndian.PutUint64(body[12:20], s.IfID)
	case SCMPExternalInterfaceDown:
		addr.PutIA(body[0:8], s.IA)
		binary.BigEndian.PutUint64(body[8:16], s.IfID)
	case SCMPInternalConnectivityDown:
		addr.PutIA(body[0:8], s.IA)
		binary.BigEndian.PutUint64(body[8:16], s.Ingress)
		binary.BigEndian.PutUint64(body[16:24], s.Egress)
	case SCMPParameterProblem:
		binary.BigEndian.PutUint16(body[0:2], s.Pointer)
		binary.BigEndian.PutUint16(body[2:4], 0)
	default:
		binary.BigEndian.PutUint32(body[0:4], 0)
	}
}

func (s *SCMP) decodeFrom(b []byte) (int, error) {
	if len(b) < scmpCmnLen {
		return 0, ErrTruncated
	}
	s.Type = SCMPType(b[0])
	s.Code = b[1]
	n := s.len()
	if len(b) < n {
		return 0, ErrTruncated
	}
	// Zero the optional fields so stale values from a previous decode
	// never leak through.
	s.Identifier, s.SeqNo, s.IA, s.IfID, s.Ingress, s.Egress, s.Pointer = 0, 0, 0, 0, 0, 0, 0
	body := b[scmpCmnLen:]
	switch s.Type {
	case SCMPEchoRequest, SCMPEchoReply:
		s.Identifier = binary.BigEndian.Uint16(body[0:2])
		s.SeqNo = binary.BigEndian.Uint16(body[2:4])
	case SCMPTracerouteRequest, SCMPTracerouteReply:
		s.Identifier = binary.BigEndian.Uint16(body[0:2])
		s.SeqNo = binary.BigEndian.Uint16(body[2:4])
		s.IA = addr.GetIA(body[4:12])
		s.IfID = binary.BigEndian.Uint64(body[12:20])
	case SCMPExternalInterfaceDown:
		s.IA = addr.GetIA(body[0:8])
		s.IfID = binary.BigEndian.Uint64(body[8:16])
	case SCMPInternalConnectivityDown:
		s.IA = addr.GetIA(body[0:8])
		s.Ingress = binary.BigEndian.Uint64(body[8:16])
		s.Egress = binary.BigEndian.Uint64(body[16:24])
	case SCMPParameterProblem:
		s.Pointer = binary.BigEndian.Uint16(body[0:2])
	}
	return n, nil
}

// decodeTruncatedFrom parses an SCMP header that may be cut short
// (e.g. inside a truncated SCMP-error quote). Type and Code are
// required; each optional field is decoded only if its bytes survived
// the truncation and is left zero otherwise.
func (s *SCMP) decodeTruncatedFrom(b []byte) error {
	if len(b) < scmpCmnLen {
		return ErrTruncated
	}
	s.Type = SCMPType(b[0])
	s.Code = b[1]
	s.Identifier, s.SeqNo, s.IA, s.IfID, s.Ingress, s.Egress, s.Pointer = 0, 0, 0, 0, 0, 0, 0
	body := b[scmpCmnLen:]
	switch s.Type {
	case SCMPEchoRequest, SCMPEchoReply, SCMPTracerouteRequest, SCMPTracerouteReply:
		if len(body) >= 2 {
			s.Identifier = binary.BigEndian.Uint16(body[0:2])
		}
		if len(body) >= 4 {
			s.SeqNo = binary.BigEndian.Uint16(body[2:4])
		}
		if (s.Type == SCMPTracerouteRequest || s.Type == SCMPTracerouteReply) && len(body) >= 20 {
			s.IA = addr.GetIA(body[4:12])
			s.IfID = binary.BigEndian.Uint64(body[12:20])
		}
	case SCMPExternalInterfaceDown:
		if len(body) >= 16 {
			s.IA = addr.GetIA(body[0:8])
			s.IfID = binary.BigEndian.Uint64(body[8:16])
		}
	case SCMPInternalConnectivityDown:
		if len(body) >= 24 {
			s.IA = addr.GetIA(body[0:8])
			s.Ingress = binary.BigEndian.Uint64(body[8:16])
			s.Egress = binary.BigEndian.Uint64(body[16:24])
		}
	case SCMPParameterProblem:
		if len(body) >= 2 {
			s.Pointer = binary.BigEndian.Uint16(body[0:2])
		}
	}
	return nil
}
