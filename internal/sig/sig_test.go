package sig_test

import (
	"net/netip"
	"testing"
	"time"

	"sciera/internal/addr"
	"sciera/internal/core"
	"sciera/internal/pan"
	"sciera/internal/sig"
	"sciera/internal/simnet"
	"sciera/internal/topology"
)

var (
	c1 = addr.MustParseIA("71-1")
	c2 = addr.MustParseIA("71-2")
	lA = addr.MustParseIA("71-10")
	lB = addr.MustParseIA("71-11")
)

func buildNet(t testing.TB, sim *simnet.Sim) *core.Network {
	t.Helper()
	topo := topology.New()
	for _, ia := range []addr.IA{c1, c2} {
		if err := topo.AddAS(topology.ASInfo{IA: ia, Core: true}); err != nil {
			t.Fatal(err)
		}
	}
	for _, ia := range []addr.IA{lA, lB} {
		if err := topo.AddAS(topology.ASInfo{IA: ia}); err != nil {
			t.Fatal(err)
		}
	}
	link := func(a, b addr.IA, typ topology.LinkType, lat float64) {
		if _, err := topo.AddLink(topology.LinkEnd{IA: a}, topology.LinkEnd{IA: b}, typ, lat, ""); err != nil {
			t.Fatal(err)
		}
	}
	link(c1, c2, topology.LinkCore, 20)
	link(c1, lA, topology.LinkParent, 5)
	link(c2, lB, topology.LinkParent, 5)
	n, err := core.Build(topo, sim, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func live(sim *simnet.Sim) func() {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); sim.RunLive(stop) }()
	return func() { close(stop); <-done }
}

// setup wires two SIGs serving 192.168.10.0/24 (in lA) and
// 192.168.20.0/24 (in lB).
func setup(t *testing.T) (*sig.Gateway, *sig.Gateway, *simnet.Sim, func()) {
	t.Helper()
	sim := simnet.NewSim(time.Unix(0, 0))
	n := buildNet(t, sim)
	stop := live(sim)

	dA, err := n.NewDaemon(lA)
	if err != nil {
		t.Fatal(err)
	}
	dB, err := n.NewDaemon(lB)
	if err != nil {
		t.Fatal(err)
	}
	gwA, err := sig.New(pan.WithDaemon(sim, dA), sim)
	if err != nil {
		t.Fatal(err)
	}
	gwB, err := sig.New(pan.WithDaemon(sim, dB), sim)
	if err != nil {
		t.Fatal(err)
	}
	gwA.AddRoute(netip.MustParsePrefix("192.168.20.0/24"), gwB.SCIONAddr())
	gwB.AddRoute(netip.MustParsePrefix("192.168.10.0/24"), gwA.SCIONAddr())
	cleanup := func() {
		gwA.Close()
		gwB.Close()
		stop()
		n.Close()
	}
	return gwA, gwB, sim, cleanup
}

func TestIPToSCIONToIP(t *testing.T) {
	gwA, gwB, sim, cleanup := setup(t)
	defer cleanup()

	// Two legacy IP hosts, one behind each SIG. They speak plain
	// datagrams addressed by IP; neither knows SCION exists.
	alice, err := sig.NewClient(sim, gwA, netip.MustParseAddr("192.168.10.5"))
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	bob, err := sig.NewClient(sim, gwB, netip.MustParseAddr("192.168.20.7"))
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()

	if err := alice.Send(netip.MustParseAddrPort("192.168.20.7:9000"), []byte("legacy hello")); err != nil {
		t.Fatal(err)
	}
	src, payload, err := bob.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "legacy hello" {
		t.Errorf("payload = %q", payload)
	}
	if src.Addr() != netip.MustParseAddr("192.168.10.5") {
		t.Errorf("src = %v", src)
	}

	// And the reverse direction.
	if err := bob.Send(netip.AddrPortFrom(src.Addr(), src.Port()), []byte("legacy reply")); err != nil {
		t.Fatal(err)
	}
	_, payload, err = alice.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "legacy reply" {
		t.Errorf("reply = %q", payload)
	}

	if gwA.Metrics().Encapsulated.Load() != 1 || gwA.Metrics().Decapsulated.Load() != 1 {
		t.Errorf("gwA metrics: %+v", gwA.Metrics())
	}
	if gwB.Metrics().Encapsulated.Load() != 1 || gwB.Metrics().Decapsulated.Load() != 1 {
		t.Errorf("gwB metrics: %+v", gwB.Metrics())
	}
}

func TestLongestPrefixWins(t *testing.T) {
	gwA, gwB, sim, cleanup := setup(t)
	defer cleanup()
	// A more specific /32 for one host pointing somewhere that drops:
	// route it to gwA itself (no such host registered -> NoRoute at
	// decap, proving the /32 was preferred over the /24).
	gwA.AddRoute(netip.MustParsePrefix("192.168.20.9/32"), gwA.SCIONAddr())

	alice, err := sig.NewClient(sim, gwA, netip.MustParseAddr("192.168.10.5"))
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	if err := alice.Send(netip.MustParseAddrPort("192.168.20.9:1"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if gwA.Metrics().NoRoute.Load() > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if gwA.Metrics().NoRoute.Load() == 0 {
		t.Error("specific route not honoured")
	}
	if gwB.Metrics().Decapsulated.Load() != 0 {
		t.Error("traffic leaked to the /24 route")
	}
}

func TestUnroutableAndMalformed(t *testing.T) {
	gwA, _, sim, cleanup := setup(t)
	defer cleanup()
	alice, err := sig.NewClient(sim, gwA, netip.MustParseAddr("192.168.10.5"))
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	// No route for 10.9.9.9.
	if err := alice.Send(netip.MustParseAddrPort("10.9.9.9:1"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && gwA.Metrics().NoRoute.Load() == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if gwA.Metrics().NoRoute.Load() != 1 {
		t.Errorf("NoRoute = %d", gwA.Metrics().NoRoute.Load())
	}
	// Garbage at the tunnel ingress.
	junk, err := sim.Listen(netip.AddrPort{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = junk.Send([]byte("not a frame"), gwA.LegacyAddr())
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && gwA.Metrics().Malformed.Load() == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if gwA.Metrics().Malformed.Load() != 1 {
		t.Errorf("Malformed = %d", gwA.Metrics().Malformed.Load())
	}
	// IPv6 rejected on the legacy plane.
	if err := alice.Send(netip.MustParseAddrPort("[fd00::1]:1"), []byte("x")); err == nil {
		t.Error("IPv6 legacy destination accepted")
	}
}
