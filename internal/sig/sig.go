// Package sig implements the SCION-IP gateway: the component behind all
// of the paper's *non-native* production use cases ("all the productive
// use cases make use of IP-to-SCION-to-IP translation by SCION-IP-
// Gateways (SIG), such that applications are unaware of the NGN
// communication") and the Edge deployment model of Appendix B.1, where
// a participating AS becomes a logical extension of its provider by
// running only an edge appliance.
//
// A SIG attaches to the legacy IP side as a plain datagram endpoint (the
// tunnel ingress), matches each IP packet's destination against its
// prefix table, encapsulates it in SCION/UDP toward the remote SIG
// serving that prefix, and hands decapsulated traffic to local IP hosts
// on the far side. Applications keep using IP; the inter-domain leg
// rides SCION with everything that brings (path control, failover,
// MAC-verified forwarding).
package sig

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"

	"sciera/internal/addr"
	"sciera/internal/pan"
	"sciera/internal/simnet"
)

// TunnelPort is the SCION/UDP port SIGs exchange encapsulated traffic on.
const TunnelPort = 30256

// frame is the encapsulation header: original IPv4-style src/dst
// addresses plus ports, followed by the payload. (The production SIG
// carries whole IP packets; the simulated legacy plane exchanges
// datagrams, so the header carries exactly the addressing the far side
// needs to re-emit them.)
var frameMagic = [4]byte{'S', 'I', 'G', '1'}

const frameHdrLen = 4 + 4 + 2 + 4 + 2

func encodeFrame(src, dst netip.AddrPort, payload []byte) ([]byte, error) {
	if !src.Addr().Is4() || !dst.Addr().Is4() {
		return nil, errors.New("sig: legacy plane is IPv4")
	}
	b := make([]byte, frameHdrLen+len(payload))
	copy(b[0:4], frameMagic[:])
	s4 := src.Addr().As4()
	d4 := dst.Addr().As4()
	copy(b[4:8], s4[:])
	binary.BigEndian.PutUint16(b[8:10], src.Port())
	copy(b[10:14], d4[:])
	binary.BigEndian.PutUint16(b[14:16], dst.Port())
	copy(b[frameHdrLen:], payload)
	return b, nil
}

func decodeFrame(b []byte) (src, dst netip.AddrPort, payload []byte, err error) {
	if len(b) < frameHdrLen || [4]byte(b[0:4]) != frameMagic {
		return src, dst, nil, errors.New("sig: not a tunnel frame")
	}
	src = netip.AddrPortFrom(netip.AddrFrom4([4]byte(b[4:8])), binary.BigEndian.Uint16(b[8:10]))
	dst = netip.AddrPortFrom(netip.AddrFrom4([4]byte(b[10:14])), binary.BigEndian.Uint16(b[14:16]))
	return src, dst, b[frameHdrLen:], nil
}

// route maps an IP prefix to the remote SIG serving it.
type route struct {
	prefix netip.Prefix
	remote addr.UDPAddr
}

// Metrics counts gateway activity.
type Metrics struct {
	Encapsulated atomic.Uint64
	Decapsulated atomic.Uint64
	NoRoute      atomic.Uint64
	Malformed    atomic.Uint64
}

// Gateway is one SIG instance.
type Gateway struct {
	// LocalIA is the AS this SIG serves.
	LocalIA addr.IA

	scion  *pan.Conn
	legacy simnet.Conn

	mu     sync.RWMutex
	routes []route
	// hosts maps local legacy IP addresses to their underlay endpoints
	// (the intra-AS delivery table; a production SIG just routes).
	hosts map[netip.Addr]netip.AddrPort

	// outq decouples the transport handler (which must not block) from
	// encapsulation, whose path lookup may wait on the control plane.
	outq chan []byte
	done chan struct{}

	metrics Metrics
}

// New starts a gateway: host is the AS's SCION environment, and the
// legacy side binds a datagram endpoint local IP applications send to.
func New(host *pan.Host, transport simnet.Network) (*Gateway, error) {
	g := &Gateway{
		LocalIA: host.LocalIA(),
		hosts:   make(map[netip.Addr]netip.AddrPort),
	}
	sc, err := host.ListenUDP(TunnelPort)
	if err != nil {
		return nil, fmt.Errorf("sig: %w", err)
	}
	g.scion = sc
	legacy, err := transport.Listen(netip.AddrPort{}, g.handleLegacy)
	if err != nil {
		_ = sc.Close()
		return nil, fmt.Errorf("sig: %w", err)
	}
	g.legacy = legacy
	g.outq = make(chan []byte, 256)
	g.done = make(chan struct{})
	go g.scionLoop()
	go g.encapLoop()
	return g, nil
}

// LegacyAddr is the tunnel ingress address IP applications send to.
func (g *Gateway) LegacyAddr() netip.AddrPort { return g.legacy.LocalAddr() }

// SCIONAddr is the gateway's SCION address (what remote SIGs dial).
func (g *Gateway) SCIONAddr() addr.UDPAddr { return g.scion.LocalAddr() }

// Metrics exposes the counters.
func (g *Gateway) Metrics() *Metrics { return &g.metrics }

// Close stops the gateway.
func (g *Gateway) Close() error {
	close(g.done)
	_ = g.legacy.Close()
	return g.scion.Close()
}

// AddRoute announces that the given IP prefix is reachable via the
// remote SIG (longest prefix wins on lookup).
func (g *Gateway) AddRoute(prefix netip.Prefix, remote addr.UDPAddr) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.routes = append(g.routes, route{prefix: prefix, remote: remote})
	sort.Slice(g.routes, func(i, j int) bool {
		return g.routes[i].prefix.Bits() > g.routes[j].prefix.Bits()
	})
}

// RegisterHost maps a local legacy IP to its delivery endpoint, so
// decapsulated traffic reaches it.
func (g *Gateway) RegisterHost(ip netip.Addr, at netip.AddrPort) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.hosts[ip] = at
}

// lookup returns the remote SIG for a destination IP.
func (g *Gateway) lookup(ip netip.Addr) (addr.UDPAddr, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, r := range g.routes {
		if r.prefix.Contains(ip) {
			return r.remote, true
		}
	}
	return addr.UDPAddr{}, false
}

// handleLegacy accepts one IP datagram at the tunnel ingress. The
// datagram must carry a frame header naming the logical IP source and
// destination (the simulated legacy plane's addressing); a production
// SIG reads the IP header instead. Encapsulation happens on the worker
// goroutine: the handler runs on the transport's event path and must
// not block on path lookups.
func (g *Gateway) handleLegacy(pkt []byte, from netip.AddrPort) {
	if _, _, _, err := decodeFrame(pkt); err != nil {
		g.metrics.Malformed.Add(1)
		return
	}
	select {
	case g.outq <- append([]byte(nil), pkt...):
	default: // ingress queue full: drop, as a saturated SIG would
	}
}

// encapLoop performs route lookup and SCION transmission.
func (g *Gateway) encapLoop() {
	for {
		select {
		case <-g.done:
			return
		case pkt := <-g.outq:
			_, dst, _, err := decodeFrame(pkt)
			if err != nil {
				g.metrics.Malformed.Add(1)
				continue
			}
			remote, ok := g.lookup(dst.Addr())
			if !ok {
				g.metrics.NoRoute.Add(1)
				continue
			}
			if _, err := g.scion.WriteTo(pkt, remote); err != nil {
				g.metrics.NoRoute.Add(1)
				continue
			}
			g.metrics.Encapsulated.Add(1)
		}
	}
}

// scionLoop decapsulates tunnel traffic toward local hosts.
func (g *Gateway) scionLoop() {
	for {
		msg, err := g.scion.ReadFrom()
		if err != nil {
			return
		}
		_, dst, _, err := decodeFrame(msg.Payload)
		if err != nil {
			g.metrics.Malformed.Add(1)
			continue
		}
		g.mu.RLock()
		at, ok := g.hosts[dst.Addr()]
		g.mu.RUnlock()
		if !ok {
			g.metrics.NoRoute.Add(1)
			continue
		}
		if err := g.legacy.Send(msg.Payload, at); err != nil {
			continue
		}
		g.metrics.Decapsulated.Add(1)
	}
}

// Client is a legacy IP application endpoint: it knows nothing about
// SCION, only its local SIG's tunnel ingress. Send/Recv move plain
// datagrams addressed by IP.
type Client struct {
	IP  netip.Addr
	sig netip.AddrPort

	conn simnet.Conn
	rq   chan []byte
}

// NewClient attaches a legacy host with the given IP, registering it at
// its local gateway.
func NewClient(transport simnet.Network, g *Gateway, ip netip.Addr) (*Client, error) {
	c := &Client{IP: ip, sig: g.LegacyAddr(), rq: make(chan []byte, 64)}
	conn, err := transport.Listen(netip.AddrPort{}, func(pkt []byte, _ netip.AddrPort) {
		select {
		case c.rq <- append([]byte(nil), pkt...):
		default:
		}
	})
	if err != nil {
		return nil, err
	}
	c.conn = conn
	g.RegisterHost(ip, conn.LocalAddr())
	return c, nil
}

// Send transmits payload to a remote IP endpoint through the SIG.
func (c *Client) Send(dst netip.AddrPort, payload []byte) error {
	frame, err := encodeFrame(netip.AddrPortFrom(c.IP, c.conn.LocalAddr().Port()), dst, payload)
	if err != nil {
		return err
	}
	return c.conn.Send(frame, c.sig)
}

// Recv blocks for the next datagram, returning the logical IP source
// and the payload.
func (c *Client) Recv() (netip.AddrPort, []byte, error) {
	pkt, ok := <-c.rq
	if !ok {
		return netip.AddrPort{}, nil, errors.New("sig: client closed")
	}
	src, _, payload, err := decodeFrame(pkt)
	if err != nil {
		return netip.AddrPort{}, nil, err
	}
	return src, payload, nil
}

// Close detaches the client.
func (c *Client) Close() error {
	close(c.rq)
	return c.conn.Close()
}
