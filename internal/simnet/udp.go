package simnet

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"
)

// UDPNet implements Network over real UDP sockets on the loopback
// interface — the authentic IP-UDP "layer 2.5" underlay. Packets really
// cross the kernel's network stack, so firewalls, ports and datagram
// semantics behave as in a deployment.
type UDPNet struct {
	mu    sync.Mutex
	conns []*udpConn
}

// NewUDPNet creates a loopback transport.
func NewUDPNet() *UDPNet { return &UDPNet{} }

// Listen implements Network. A preferred address with a zero port (or a
// zero AddrPort) binds an ephemeral loopback port.
func (n *UDPNet) Listen(preferred netip.AddrPort, h Handler) (Conn, error) {
	la := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: int(preferred.Port())}
	if preferred.Addr().IsValid() {
		la.IP = preferred.Addr().AsSlice()
	}
	uc, err := net.ListenUDP("udp", la)
	if err != nil {
		return nil, fmt.Errorf("simnet: %w", err)
	}
	c := &udpConn{uc: uc, done: make(chan struct{})}
	n.mu.Lock()
	n.conns = append(n.conns, c)
	n.mu.Unlock()
	go c.readLoop(h)
	return c, nil
}

// ListenBatch implements Network. Real sockets surface one datagram per
// read, so batches always have size one; the wrapping slices are reused
// across calls (safe: one read goroutine per conn).
func (n *UDPNet) ListenBatch(preferred netip.AddrPort, h BatchHandler) (Conn, error) {
	pkts := make([][]byte, 1)
	froms := make([]netip.AddrPort, 1)
	return n.Listen(preferred, func(pkt []byte, from netip.AddrPort) {
		pkts[0], froms[0] = pkt, from
		h(pkts, froms)
	})
}

// Now implements Network.
func (n *UDPNet) Now() time.Time { return time.Now() }

// AfterFunc implements Network.
func (n *UDPNet) AfterFunc(d time.Duration, f func()) func() {
	t := time.AfterFunc(d, f)
	return func() { t.Stop() }
}

// Close shuts down every conn created through this transport.
func (n *UDPNet) Close() error {
	n.mu.Lock()
	conns := append([]*udpConn(nil), n.conns...)
	n.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
	return nil
}

type udpConn struct {
	uc     *net.UDPConn
	done   chan struct{}
	closed sync.Once
}

func (c *udpConn) LocalAddr() netip.AddrPort {
	return c.uc.LocalAddr().(*net.UDPAddr).AddrPort()
}

func (c *udpConn) Send(pkt []byte, to netip.AddrPort) error {
	_, err := c.uc.WriteToUDPAddrPort(pkt, to)
	return err
}

// SendBatch implements Conn. The kernel offers no sendmmsg through this
// API surface, so the burst degenerates to consecutive writes; an error
// aborts the rest of the burst (a prefix may have been sent).
func (c *udpConn) SendBatch(pkts [][]byte, dests []netip.AddrPort) error {
	if len(pkts) != len(dests) {
		return fmt.Errorf("simnet: SendBatch: %d packets, %d destinations", len(pkts), len(dests))
	}
	for i, pkt := range pkts {
		if _, err := c.uc.WriteToUDPAddrPort(pkt, dests[i]); err != nil {
			return err
		}
	}
	return nil
}

func (c *udpConn) Close() error {
	c.closed.Do(func() {
		close(c.done)
		_ = c.uc.Close()
	})
	return nil
}

func (c *udpConn) readLoop(h Handler) {
	// One receive buffer per socket, reused across datagrams: the
	// Handler contract forbids retaining pkt past the call, so the next
	// read may overwrite it.
	buf := make([]byte, 65535)
	for {
		n, from, err := c.uc.ReadFromUDPAddrPort(buf)
		if err != nil {
			select {
			case <-c.done:
				return
			default:
				// Transient error (e.g. ICMP port unreachable bounce);
				// keep serving.
				continue
			}
		}
		h(buf[:n], from)
	}
}
