package simnet

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"time"
)

// TestSchedulerEquivalence property-checks the calendar queue against
// the binary heap at the scheduler level: the same randomized (seeded)
// sequence of pushes, cancels and pops — duplicate timestamps,
// past-cursor events, far-future overflow events, bursts large enough
// to force grow and shrink resizes — must drain in the identical
// (at, seq) order from both implementations.
func TestSchedulerEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			hp := newScheduler(SchedulerHeap)
			cal := newScheduler(SchedulerCalendar)

			base := time.Unix(0, 0)
			var seq uint64
			// pending holds twin events currently in both queues; the
			// two schedulers maintain position fields on the event, so
			// each gets its own copy of every logical event.
			type twin struct{ h, c *event }
			var pending []twin

			now := base
			push := func(at time.Time) {
				eh := &event{at: at, seq: seq}
				ec := &event{at: at, seq: seq}
				seq++
				hp.Push(eh)
				cal.Push(ec)
				pending = append(pending, twin{eh, ec})
			}
			randomAt := func() time.Time {
				switch rng.Intn(10) {
				case 0: // at or before the cursor (zero-delay send)
					return now
				case 1: // far future: exercises the overflow heap
					return now.Add(time.Duration(1+rng.Int63n(1e12)) * time.Nanosecond)
				case 2: // duplicate an existing pending timestamp
					if len(pending) > 0 {
						return pending[rng.Intn(len(pending))].h.at
					}
					fallthrough
				default: // near future
					return now.Add(time.Duration(rng.Int63n(5e6)) * time.Nanosecond)
				}
			}

			var popped int
			for op := 0; op < 60000; op++ {
				switch r := rng.Intn(100); {
				case r < 55: // push
					push(randomAt())
				case r < 60 && len(pending) > 0: // cancel a random pending event
					i := rng.Intn(len(pending))
					tw := pending[i]
					gh := hp.Remove(tw.h)
					gc := cal.Remove(tw.c)
					if gh != gc {
						t.Fatalf("op %d: Remove disagreement heap=%v calendar=%v", op, gh, gc)
					}
					pending[i] = pending[len(pending)-1]
					pending = pending[:len(pending)-1]
				default: // pop
					eh := hp.Pop()
					ec := cal.Pop()
					if (eh == nil) != (ec == nil) {
						t.Fatalf("op %d: pop emptiness disagreement heap=%v calendar=%v", op, eh, ec)
					}
					if eh == nil {
						continue
					}
					if !eh.at.Equal(ec.at) || eh.seq != ec.seq {
						t.Fatalf("op %d: pop order diverged: heap=(%v,%d) calendar=(%v,%d)",
							op, eh.at, eh.seq, ec.at, ec.seq)
					}
					if eh.at.After(now) {
						now = eh.at
					}
					popped++
					for i, tw := range pending {
						if tw.h == eh {
							pending[i] = pending[len(pending)-1]
							pending = pending[:len(pending)-1]
							break
						}
					}
				}
				if hp.Len() != cal.Len() {
					t.Fatalf("op %d: Len disagreement heap=%d calendar=%d", op, hp.Len(), cal.Len())
				}
			}
			// Drain completely: the tails must match too.
			for {
				eh, ec := hp.Pop(), cal.Pop()
				if (eh == nil) != (ec == nil) {
					t.Fatalf("drain: emptiness disagreement")
				}
				if eh == nil {
					break
				}
				if !eh.at.Equal(ec.at) || eh.seq != ec.seq {
					t.Fatalf("drain: order diverged: heap=(%v,%d) calendar=(%v,%d)",
						eh.at, eh.seq, ec.at, ec.seq)
				}
				popped++
			}
			if popped == 0 {
				t.Fatal("degenerate run: nothing popped")
			}
		})
	}
}

// simTranscript runs a small but adversarial network workload — mixed
// unicast/burst sends over a jittery latency function, rescheduling
// timers, mid-run cancels — on the given scheduler and returns the
// full delivery transcript.
func simTranscript(t *testing.T, kind SchedulerKind) []string {
	t.Helper()
	s := NewSimWithScheduler(time.Unix(0, 0), kind)
	// Deterministic pseudo-latency: spreads deliveries over microseconds
	// to days, with duplicates (same delay for every 5th size).
	s.Latency = func(from, to netip.AddrPort, size int, now time.Time) (time.Duration, bool) {
		if size%13 == 0 {
			return 0, false // loss
		}
		if size%5 == 0 {
			return time.Millisecond, true
		}
		return time.Duration(size%7)*time.Microsecond + time.Duration(size%3)*24*time.Hour/1000, true
	}
	var transcript []string
	mk := func(name string) Conn {
		conn, err := s.Listen(netip.AddrPort{}, func(pkt []byte, from netip.AddrPort) {
			transcript = append(transcript, fmt.Sprintf("%s %s n=%d b0=%d t=%d",
				name, from, len(pkt), pkt[0], s.Now().UnixNano()))
		})
		if err != nil {
			t.Fatal(err)
		}
		return conn
	}
	a, b, c := mk("a"), mk("b"), mk("c")

	rng := rand.New(rand.NewSource(7))
	conns := []Conn{a, b, c}
	var cancels []func()
	var tick func(round int)
	tick = func(round int) {
		transcript = append(transcript, fmt.Sprintf("tick %d t=%d", round, s.Now().UnixNano()))
		if round >= 40 {
			return
		}
		// A few sends from random conns to random conns, one burst,
		// a re-armed timer, and a timer that is set and cancelled.
		for i := 0; i < 6; i++ {
			src := conns[rng.Intn(3)]
			dst := conns[rng.Intn(3)]
			pkt := make([]byte, 1+rng.Intn(64))
			pkt[0] = byte(round)
			_ = src.Send(pkt, dst.LocalAddr())
		}
		var pkts [][]byte
		var dests []netip.AddrPort
		for i := 0; i < 8; i++ {
			pkt := make([]byte, 1+rng.Intn(32))
			pkt[0] = byte(i)
			pkts = append(pkts, pkt)
			dests = append(dests, conns[rng.Intn(3)].LocalAddr())
		}
		_ = conns[rng.Intn(3)].SendBatch(pkts, dests)
		cancels = append(cancels, s.AfterFunc(time.Duration(1+rng.Intn(1000))*time.Millisecond, func() {}))
		if len(cancels) > 3 {
			cancels[rng.Intn(len(cancels))]()
		}
		s.AfterFunc(time.Duration(1+rng.Intn(50))*time.Millisecond, func() { tick(round + 1) })
	}
	tick(0)
	s.Run()
	return transcript
}

// TestSimSchedulerEquivalence is the end-to-end variant: two identical
// simulations differing only in scheduler must produce byte-identical
// delivery transcripts (payloads, senders, virtual timestamps, timer
// interleavings).
func TestSimSchedulerEquivalence(t *testing.T) {
	hp := simTranscript(t, SchedulerHeap)
	cal := simTranscript(t, SchedulerCalendar)
	if len(hp) != len(cal) {
		t.Fatalf("transcript lengths differ: heap=%d calendar=%d", len(hp), len(cal))
	}
	for i := range hp {
		if hp[i] != cal[i] {
			t.Fatalf("transcripts diverge at %d:\n  heap:     %s\n  calendar: %s", i, hp[i], cal[i])
		}
	}
	if len(hp) < 100 {
		t.Fatalf("degenerate transcript: %d lines", len(hp))
	}
}

// TestCalendarSchedulerZeroAlloc guards the calendar queue's hot path:
// with a warm steady-state population (the traffic engine's regime —
// every pop followed by a push of that flow's next event), push and pop
// must not allocate. Run by make alloc-guard.
func TestCalendarSchedulerZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; run without -race")
	}
	c := newCalendarScheduler()
	const population = 8192
	events := make([]*event, population)
	base := time.Unix(0, 0)
	for i := range events {
		events[i] = &event{at: base.Add(time.Duration(i*31) * time.Microsecond), seq: uint64(i)}
		c.Push(events[i])
	}
	seq := uint64(population)
	// Warm through several full wheel rotations so bucket capacities
	// and the resize geometry reach steady state.
	for i := 0; i < 4*population; i++ {
		e := c.Pop()
		e.at = e.at.Add(population * 31 * time.Microsecond)
		e.seq = seq
		seq++
		c.Push(e)
	}
	step := func() {
		e := c.Pop()
		e.at = e.at.Add(population * 31 * time.Microsecond)
		e.seq = seq
		seq++
		c.Push(e)
	}
	if allocs := testing.AllocsPerRun(4096, step); allocs != 0 {
		t.Errorf("calendar queue pop+push: %.2f allocs/op, want 0", allocs)
	}
}

// BenchmarkSchedulerChurn measures the hold-model cost (pop one, push
// one) of both schedulers at increasing pending populations — the
// ablation behind the calendar queue: the heap's log(n) shows as a
// rising per-op cost, the calendar queue's stays flat.
func BenchmarkSchedulerChurn(b *testing.B) {
	for _, kind := range []SchedulerKind{SchedulerHeap, SchedulerCalendar} {
		for _, population := range []int{1024, 65536, 1048576} {
			b.Run(fmt.Sprintf("%v/pending=%d", kind, population), func(b *testing.B) {
				s := newScheduler(kind)
				base := time.Unix(0, 0)
				rng := rand.New(rand.NewSource(1))
				var seq uint64
				for i := 0; i < population; i++ {
					s.Push(&event{at: base.Add(time.Duration(rng.Int63n(1e9))), seq: seq})
					seq++
				}
				span := time.Duration(1e9)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e := s.Pop()
					e.at = e.at.Add(span)
					e.seq = seq
					seq++
					s.Push(e)
				}
			})
		}
	}
}
