// Package simnet provides the two interchangeable transports the SCIERA
// reproduction runs on:
//
//   - Sim, a deterministic discrete-event simulator with a virtual clock,
//     used for the 20-day measurement campaigns and failure sweeps where
//     wall-clock execution is impossible; and
//   - UDPNet, real UDP sockets on the loopback interface, giving the
//     protocol stack an authentic IP-UDP "layer 2.5" underlay for the
//     examples and integration tests.
//
// Every component above this package (routers, control services,
// daemons, bootstrappers, applications) is written against the Network
// interface and runs unmodified on either transport.
//
// # Buffer ownership
//
// Both transports enforce the same zero-copy-friendly contract:
//
//   - Send copies the datagram before returning. The caller keeps
//     ownership of its buffer and may reuse or mutate it immediately —
//     this is what lets the border router serialize every outgoing
//     packet into one per-processor scratch buffer.
//   - A Handler owns the pkt slice only for the duration of the call.
//     It may read and mutate it in place (the router patches path
//     pointers directly in the received bytes) and may pass it to Send,
//     but it must NOT retain the slice after returning: the transport
//     recycles delivery buffers. Handlers that keep payload bytes
//     (receive queues, reassembly maps) must copy them.
//
// On Sim, every receiver additionally gets its own private copy:
// broadcast fan-out never shares one buffer across handlers.
//
// # Determinism
//
// Sim is fully deterministic: given the same construction parameters
// and the same sequence of calls, two simulations execute the same
// events at the same virtual times in the same order. Delivery order is
// decided by (timestamp, sequence number) alone, and sequence numbers
// are assigned in a run-independent way — in particular, broadcast
// fan-out sorts its destination set before scheduling rather than
// iterating a Go map. RunLive trades this guarantee for wall-clock
// liveness and is the only exception.
package simnet

import (
	"net/netip"
	"time"
)

// Handler processes one received datagram. Handlers must not block: on
// the simulator they run inside the event loop; on UDPNet they run on
// the socket's read goroutine. The pkt buffer is only valid for the
// duration of the call (see the package comment on buffer ownership);
// handlers may mutate it in place but must copy anything they retain.
type Handler func(pkt []byte, from netip.AddrPort)

// BatchHandler processes a burst of datagrams delivered back-to-back:
// pkts[i] arrived from from[i], in arrival order. The same no-blocking
// and buffer-ownership rules as Handler apply to every buffer in the
// batch, and the pkts/from slices themselves are transport scratch —
// valid only for the duration of the call. A batch is never empty; a
// transport that cannot coalesce (or has nothing to coalesce with)
// delivers batches of one.
type BatchHandler func(pkts [][]byte, from []netip.AddrPort)

// Conn is an attachment point able to send datagrams.
type Conn interface {
	// LocalAddr returns the bound address.
	LocalAddr() netip.AddrPort
	// Send transmits a datagram. The transport copies pkt before
	// returning: the caller keeps ownership of the buffer and may
	// reuse it immediately.
	Send(pkt []byte, to netip.AddrPort) error
	// SendBatch transmits a burst, pkts[i] to dests[i], in order, with
	// the same semantics as len(pkts) consecutive Send calls — same
	// copying, same delivery order — but a single scheduling pass (on
	// the simulator: one lock acquisition for the whole burst). The two
	// slices must have equal length. On error, a prefix of the burst
	// may already have been sent.
	SendBatch(pkts [][]byte, dests []netip.AddrPort) error
	// Close detaches the conn; the handler will not be invoked again.
	Close() error
}

// Network abstracts a datagram transport plus its clock.
type Network interface {
	// Listen attaches a handler at the preferred address. A zero port
	// requests automatic assignment; the simulator additionally accepts
	// a zero AddrPort and allocates a fresh address.
	Listen(preferred netip.AddrPort, h Handler) (Conn, error)
	// ListenBatch is Listen with a burst-aware handler: datagrams that
	// arrive back-to-back (on the simulator, consecutive in event
	// order at one virtual instant) are handed over as one batch.
	ListenBatch(preferred netip.AddrPort, h BatchHandler) (Conn, error)
	// Now returns the transport's notion of current time.
	Now() time.Time
	// AfterFunc schedules f after d; the returned function cancels.
	AfterFunc(d time.Duration, f func()) (cancel func())
}
