// Package simnet provides the two interchangeable transports the SCIERA
// reproduction runs on:
//
//   - Sim, a deterministic discrete-event simulator with a virtual clock,
//     used for the 20-day measurement campaigns and failure sweeps where
//     wall-clock execution is impossible; and
//   - UDPNet, real UDP sockets on the loopback interface, giving the
//     protocol stack an authentic IP-UDP "layer 2.5" underlay for the
//     examples and integration tests.
//
// Every component above this package (routers, control services,
// daemons, bootstrappers, applications) is written against the Network
// interface and runs unmodified on either transport.
package simnet

import (
	"net/netip"
	"time"
)

// Handler processes one received datagram. Handlers must not block: on
// the simulator they run inside the event loop; on UDPNet they run on
// the socket's read goroutine.
type Handler func(pkt []byte, from netip.AddrPort)

// Conn is an attachment point able to send datagrams.
type Conn interface {
	// LocalAddr returns the bound address.
	LocalAddr() netip.AddrPort
	// Send transmits a datagram. The buffer is owned by the transport
	// after the call.
	Send(pkt []byte, to netip.AddrPort) error
	// Close detaches the conn; the handler will not be invoked again.
	Close() error
}

// Network abstracts a datagram transport plus its clock.
type Network interface {
	// Listen attaches a handler at the preferred address. A zero port
	// requests automatic assignment; the simulator additionally accepts
	// a zero AddrPort and allocates a fresh address.
	Listen(preferred netip.AddrPort, h Handler) (Conn, error)
	// Now returns the transport's notion of current time.
	Now() time.Time
	// AfterFunc schedules f after d; the returned function cancels.
	AfterFunc(d time.Duration, f func()) (cancel func())
}
