package simnet

import (
	"bytes"
	"errors"
	"fmt"
	"net/netip"
	"testing"
	"time"
)

// TestSendBatchDeliversCoalesced verifies the batch contract end to end:
// a SendBatch burst to a batch-bound receiver arrives as one handler
// call, in send order, with every buffer copied (the sender may reuse
// its buffers immediately).
func TestSendBatchDeliversCoalesced(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	var calls int
	var got []string
	recv, err := s.ListenBatch(netip.AddrPort{}, func(pkts [][]byte, from []netip.AddrPort) {
		calls++
		if len(pkts) != len(from) {
			t.Errorf("batch slices disagree: %d pkts, %d froms", len(pkts), len(from))
		}
		for _, p := range pkts {
			got = append(got, string(p))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	send, err := s.Listen(netip.AddrPort{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	bufs := [][]byte{[]byte("p0"), []byte("p1"), []byte("p2")}
	dests := []netip.AddrPort{recv.LocalAddr(), recv.LocalAddr(), recv.LocalAddr()}
	if err := send.SendBatch(bufs, dests); err != nil {
		t.Fatal(err)
	}
	for _, b := range bufs {
		copy(b, "XX") // reuse immediately — SendBatch must have copied
	}
	s.Run()
	if calls != 1 {
		t.Fatalf("handler calls = %d, want 1 (burst should coalesce)", calls)
	}
	if want := []string{"p0", "p1", "p2"}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %q, want %q", got, want)
	}
	if delivered, _ := s.Stats(); delivered != 3 {
		t.Fatalf("delivered = %d, want 3", delivered)
	}
	if s.InFlight() != 0 {
		t.Fatalf("inflight = %d, want 0", s.InFlight())
	}
}

// TestSendBatchPairwiseDests verifies pkts[i] goes to dests[i]: one
// burst may spray across destinations, and a mismatched pair of slices
// is rejected before anything is scheduled.
func TestSendBatchPairwiseDests(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	logs := make(map[string][]string)
	mk := func(name string) Conn {
		c, err := s.Listen(netip.AddrPort{}, func(pkt []byte, _ netip.AddrPort) {
			logs[name] = append(logs[name], string(pkt))
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk("a"), mk("b")
	send, _ := s.Listen(netip.AddrPort{}, nil)
	err := send.SendBatch(
		[][]byte{[]byte("1"), []byte("2"), []byte("3")},
		[]netip.AddrPort{a.LocalAddr(), b.LocalAddr(), a.LocalAddr()})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if fmt.Sprint(logs["a"]) != "[1 3]" || fmt.Sprint(logs["b"]) != "[2]" {
		t.Fatalf("logs = %v", logs)
	}
	if err := send.SendBatch([][]byte{[]byte("x")}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if s.InFlight() != 0 {
		t.Fatal("mismatched SendBatch scheduled datagrams")
	}
}

// TestBatchCoalescingStopsAtTimer verifies the determinism-critical
// boundary: a burst is only a run of deliveries that are consecutive in
// (timestamp, seq) order, so a timer interleaved mid-burst splits the
// batch and fires between the two halves — exactly where per-packet
// execution would have run it.
func TestBatchCoalescingStopsAtTimer(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	var log bytes.Buffer
	recv, err := s.ListenBatch(netip.AddrPort{}, func(pkts [][]byte, _ []netip.AddrPort) {
		fmt.Fprintf(&log, "batch%d[", len(pkts))
		for _, p := range pkts {
			log.Write(p)
		}
		log.WriteString("]")
	})
	if err != nil {
		t.Fatal(err)
	}
	send, _ := s.Listen(netip.AddrPort{}, nil)
	to := recv.LocalAddr()
	_ = send.Send([]byte("a"), to)
	_ = send.Send([]byte("b"), to)
	s.AfterFunc(0, func() { log.WriteString("T") })
	_ = send.Send([]byte("c"), to)
	_ = send.Send([]byte("d"), to)
	s.Run()
	if got, want := log.String(), "batch2[ab]Tbatch2[cd]"; got != want {
		t.Fatalf("event order = %q, want %q", got, want)
	}
}

// batchParityCampaign runs a mixed workload (two senders, interleaved
// timers, per-packet latency jitter) against a receiver bound either
// per-packet or batched, and returns the per-packet observation log.
// Batching must not change it.
func batchParityCampaign(t *testing.T, batched bool) string {
	t.Helper()
	s := NewSim(time.Unix(0, 0))
	jitter := 0
	s.Latency = func(from, to netip.AddrPort, size int, _ time.Time) (time.Duration, bool) {
		jitter = (jitter*31 + size) % 3
		return time.Duration(jitter) * time.Millisecond, true
	}
	var log bytes.Buffer
	record := func(pkt []byte, from netip.AddrPort) {
		fmt.Fprintf(&log, "%s<-%v@%d\n", pkt, from, s.Now().UnixNano())
	}
	var recv Conn
	var err error
	if batched {
		recv, err = s.ListenBatch(netip.AddrPort{}, func(pkts [][]byte, from []netip.AddrPort) {
			for i := range pkts {
				record(pkts[i], from[i])
			}
		})
	} else {
		recv, err = s.Listen(netip.AddrPort{}, record)
	}
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := s.Listen(netip.AddrPort{}, nil)
	s2, _ := s.Listen(netip.AddrPort{}, nil)
	to := recv.LocalAddr()
	for round := 0; round < 8; round++ {
		for i := 0; i < 4; i++ {
			_ = s1.Send([]byte(fmt.Sprintf("r%d.1-%d", round, i)), to)
		}
		s.AfterFunc(time.Duration(round)*time.Millisecond, func() {
			log.WriteString("tick\n")
		})
		_ = s2.SendBatch(
			[][]byte{[]byte(fmt.Sprintf("r%d.2-a", round)), []byte(fmt.Sprintf("r%d.2-b", round))},
			[]netip.AddrPort{to, to})
		s.RunFor(10 * time.Millisecond)
	}
	s.Run()
	return log.String()
}

// TestBatchDeliveryMatchesPerPacket verifies byte-identical observation
// order between a per-packet and a batch-bound receiver under the same
// workload — batching is a transport optimization, never a semantic
// change.
func TestBatchDeliveryMatchesPerPacket(t *testing.T) {
	single := batchParityCampaign(t, false)
	batch := batchParityCampaign(t, true)
	if single == "" {
		t.Fatal("campaign recorded nothing")
	}
	if single != batch {
		t.Fatalf("batched order diverged:\n--- per-packet ---\n%s--- batched ---\n%s", single, batch)
	}
}

// TestSendAfterCloseFails pins the satellite bugfix: once Close has
// returned, Send and SendBatch deterministically fail with ErrClosed
// and schedule nothing — closed-ness is decided under the same lock
// that schedules sends, so there is no window for a datagram to leave
// a closed conn.
func TestSendAfterCloseFails(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	recv, _ := s.Listen(netip.AddrPort{}, func([]byte, netip.AddrPort) {
		t.Error("delivery from a closed conn")
	})
	c, err := s.Listen(netip.AddrPort{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte("x"), recv.LocalAddr()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after Close = %v, want ErrClosed", err)
	}
	err = c.SendBatch([][]byte{[]byte("x")}, []netip.AddrPort{recv.LocalAddr()})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("SendBatch after Close = %v, want ErrClosed", err)
	}
	if s.InFlight() != 0 {
		t.Fatalf("closed conn scheduled %d datagrams", s.InFlight())
	}
	s.Run()
}

// TestCancelledTimersRemovedFromHeap pins the satellite bugfix: a
// cancelled timer leaves the event heap immediately instead of rotting
// as a tombstone, so set/cancel churn (retries, timeouts) keeps the
// heap bounded by the number of *live* timers.
func TestCancelledTimersRemovedFromHeap(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	heapLen := func() int {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.events.Len()
	}
	const churn = 10000
	live := 0
	for i := 0; i < churn; i++ {
		fired := false
		cancel := s.AfterFunc(time.Duration(i)*time.Microsecond, func() { fired = true })
		if i%100 == 0 {
			live++ // keep every 100th timer
			continue
		}
		cancel()
		cancel() // double-cancel must be a no-op
		if fired {
			t.Fatal("cancelled timer fired")
		}
	}
	if got := heapLen(); got != live {
		t.Fatalf("heap holds %d events after churn, want %d (tombstones left behind)", got, live)
	}
	s.Run()
	if got := heapLen(); got != 0 {
		t.Fatalf("heap holds %d events after drain, want 0", got)
	}
	// Cancelling after the timer fired (or after another heap reshuffle)
	// must not disturb unrelated events.
	var fired int
	cancelA := s.AfterFunc(time.Millisecond, func() { fired++ })
	s.AfterFunc(2*time.Millisecond, func() { fired++ })
	s.Run()
	cancelA() // fire-then-cancel: too late, but must be harmless
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

// batchDeliveryHarness mirrors deliveryHarness for the batch path: one
// step sends a burst of batchSize datagrams with SendBatch and drains
// the coalesced delivery.
func batchDeliveryHarness(tb testing.TB, size, batchSize int) func() {
	s := NewSim(time.Unix(0, 0))
	s.Latency = func(netip.AddrPort, netip.AddrPort, int, time.Time) (time.Duration, bool) {
		return time.Millisecond, true
	}
	var got int
	recv, err := s.ListenBatch(netip.AddrPort{}, func(pkts [][]byte, _ []netip.AddrPort) {
		got += len(pkts)
	})
	if err != nil {
		tb.Fatal(err)
	}
	send, err := s.Listen(netip.AddrPort{}, nil)
	if err != nil {
		tb.Fatal(err)
	}
	pkts := make([][]byte, batchSize)
	dests := make([]netip.AddrPort, batchSize)
	for i := range pkts {
		pkts[i] = make([]byte, size)
		dests[i] = recv.LocalAddr()
	}
	return func() {
		if err := send.SendBatch(pkts, dests); err != nil {
			tb.Fatal(err)
		}
		s.Run()
	}
}

// TestSimDeliverBatchZeroAlloc guards the coalesced delivery path: with
// warm pools and scratch, scheduling a 32-packet burst and delivering
// it as one batch must not allocate.
func TestSimDeliverBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; run without -race")
	}
	step := batchDeliveryHarness(t, 1000, 32)
	for i := 0; i < 64; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(512, step); allocs != 0 {
		t.Errorf("batched datagram delivery: %.2f allocs/op, want 0", allocs)
	}
}

// BenchmarkSimDeliverBatch measures the burst send-schedule-deliver
// cycle; compare per-datagram cost against BenchmarkSimDeliver.
func BenchmarkSimDeliverBatch(b *testing.B) {
	const batchSize = 32
	step := batchDeliveryHarness(b, 1000, batchSize)
	step() // warm pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}
