package simnet

import (
	"container/heap"
)

// scheduler is the pending-event priority queue behind a Sim. Delivery
// order is defined by (at, seq) alone — see eventQueue.Less — and every
// implementation must realize exactly that order, so the choice of
// scheduler can never change what a simulation observes, only how fast
// it runs. The Sim routes every event operation through this interface;
// nothing outside this file may touch the underlying containers
// directly (that coupling is what used to make the heap irreplaceable).
type scheduler interface {
	// Push inserts a pending event.
	Push(e *event)
	// Pop removes and returns the (at, seq)-minimal event, nil when
	// empty.
	Pop() *event
	// Peek returns the (at, seq)-minimal event without removing it,
	// nil when empty.
	Peek() *event
	// Remove deletes a specific pending event (timer cancellation),
	// reporting whether it was found. Safe to call for events already
	// popped — those return false.
	Remove(e *event) bool
	// Len reports the number of pending events.
	Len() int
}

// SchedulerKind selects a Sim's pending-event queue implementation.
type SchedulerKind int

const (
	// SchedulerCalendar is the default: a calendar queue (bucketed
	// time wheel) with O(1) amortized push/pop, falling back to a
	// binary heap for events beyond the wheel's horizon. It keeps
	// millions of pending events cheap — the regime the flow-level
	// traffic engine operates in.
	SchedulerCalendar SchedulerKind = iota
	// SchedulerHeap is the classic binary heap: O(log n) push/pop.
	// Kept as the ablation baseline and the reference implementation
	// the calendar queue is property-tested against.
	SchedulerHeap
)

func (k SchedulerKind) String() string {
	switch k {
	case SchedulerCalendar:
		return "calendar"
	case SchedulerHeap:
		return "heap"
	default:
		return "scheduler(?)"
	}
}

func newScheduler(kind SchedulerKind) scheduler {
	if kind == SchedulerHeap {
		return &heapScheduler{}
	}
	return newCalendarScheduler()
}

// heapScheduler wraps the container/heap eventQueue behind the
// scheduler interface.
type heapScheduler struct {
	q eventQueue
}

func (h *heapScheduler) Push(e *event) {
	heap.Push(&h.q, e)
}

func (h *heapScheduler) Pop() *event {
	if len(h.q) == 0 {
		return nil
	}
	return heap.Pop(&h.q).(*event)
}

func (h *heapScheduler) Peek() *event {
	if len(h.q) == 0 {
		return nil
	}
	return h.q[0]
}

func (h *heapScheduler) Remove(e *event) bool {
	if e.idx < 0 || e.idx >= len(h.q) || h.q[e.idx] != e {
		return false
	}
	heap.Remove(&h.q, e.idx)
	return true
}

func (h *heapScheduler) Len() int { return len(h.q) }

// calendarScheduler is a calendar queue (Brown 1988): a circular array
// of time buckets, each `width` nanoseconds wide, holding the events of
// its bucket-sequence slice of the timeline in (at, seq)-sorted order.
// Push hashes an event to its bucket in O(1) (plus a short sorted
// insert among that bucket's few residents); Pop advances a cursor over
// the buckets and takes the head of the first non-empty one. Events
// beyond the wheel's horizon (one full rotation ahead of the cursor)
// overflow into a binary heap and migrate into the wheel as the cursor
// approaches them — the "sparse horizon" fallback that keeps a handful
// of far-out timers from forcing a huge, mostly-empty wheel.
//
// The wheel resizes by doubling/halving when bucket occupancy drifts
// from ~O(1), re-deriving the bucket width from the resident events'
// actual spread, so push and pop stay O(1) amortized at any pending
// count. Resize decisions depend only on queue content, never on wall
// time, preserving run-for-run determinism.
//
// Ordering is exactly the heap's: a bucket is (at, seq)-sorted, bucket
// sequences partition the timeline monotonically, and overflow events
// are strictly later than every wheel resident. Events scheduled at or
// before the cursor (zero-delay sends, already-due timers) clamp into
// the cursor's bucket, where the sorted insert restores the exact
// global order. TestSchedulerEquivalence property-checks transcript
// identity against the heap.
type calendarScheduler struct {
	buckets [][]*event
	mask    int64 // len(buckets)-1; len is a power of two
	width   int64 // bucket width in nanoseconds
	curB    int64 // cursor: no wheel event has a bucket sequence < curB
	wcount  int   // events resident in the wheel

	// overflow holds events at least one full rotation ahead of the
	// cursor, as a standard binary heap.
	overflow eventQueue
}

const (
	calendarMinBuckets = 256
	// calendarInitWidth is the initial bucket width; the first resize
	// re-derives it from the live event spread.
	calendarInitWidth = int64(100_000) // 100µs in ns
)

func newCalendarScheduler() *calendarScheduler {
	return &calendarScheduler{
		buckets: make([][]*event, calendarMinBuckets),
		mask:    calendarMinBuckets - 1,
		width:   calendarInitWidth,
	}
}

// bseq maps an event time to its bucket sequence number (floor
// division, correct for negative times).
func (c *calendarScheduler) bseq(nanos int64) int64 {
	if nanos < 0 {
		return (nanos - c.width + 1) / c.width
	}
	return nanos / c.width
}

func (c *calendarScheduler) Len() int { return c.wcount + len(c.overflow) }

func (c *calendarScheduler) Push(e *event) {
	c.insert(e)
	if c.wcount > 2*len(c.buckets) {
		c.resize(2 * len(c.buckets))
	}
}

// insert places e into the wheel or the overflow heap without
// triggering a resize.
func (c *calendarScheduler) insert(e *event) {
	b := c.bseq(e.at.UnixNano())
	if b < c.curB {
		// At or before the cursor (zero-delay send, already-due
		// timer): clamp into the cursor's bucket; the sorted insert
		// puts it ahead of everything later.
		b = c.curB
	}
	if b >= c.curB+int64(len(c.buckets)) {
		e.slot = -1
		heap.Push(&c.overflow, e)
		return
	}
	slot := b & c.mask
	bucket := c.buckets[slot]
	// Sorted insert by (at, seq). Buckets hold O(1) events on average,
	// so the search and shift are short; the search is hand-rolled
	// (no sort.Search closure) to keep the hot path allocation-free.
	lo, hi := 0, len(bucket)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		o := bucket[mid]
		if o.at.Before(e.at) || (o.at.Equal(e.at) && o.seq < e.seq) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo
	bucket = append(bucket, nil)
	copy(bucket[i+1:], bucket[i:])
	bucket[i] = e
	c.buckets[slot] = bucket
	e.slot = slot
	e.idx = -1
	c.wcount++
}

// migrate moves overflow events that the cursor's current horizon now
// covers into the wheel.
func (c *calendarScheduler) migrate() {
	horizon := c.curB + int64(len(c.buckets))
	for len(c.overflow) > 0 && c.bseq(c.overflow[0].at.UnixNano()) < horizon {
		c.insert(heap.Pop(&c.overflow).(*event))
	}
}

// findMin advances the cursor to the first non-empty bucket and returns
// it, or nil when the wheel is empty. Cursor advancement is safe —
// later pushes that would land behind the cursor clamp into its bucket
// — and is what makes repeated pops O(1) amortized: each empty bucket
// is skipped once, not once per pop.
func (c *calendarScheduler) findMin() []*event {
	if c.wcount == 0 {
		return nil
	}
	for {
		if bucket := c.buckets[c.curB&c.mask]; len(bucket) > 0 {
			return bucket
		}
		c.curB++
		c.migrate()
	}
}

func (c *calendarScheduler) Pop() *event {
	bucket := c.findMin()
	if bucket == nil {
		if len(c.overflow) == 0 {
			return nil
		}
		// Sparse horizon: the wheel is empty and all pending events
		// are far out. Serve straight from the heap and jump the
		// cursor to the popped event's epoch.
		e := heap.Pop(&c.overflow).(*event)
		c.curB = c.bseq(e.at.UnixNano())
		c.migrate()
		return e
	}
	slot := c.curB & c.mask
	e := bucket[0]
	copy(bucket, bucket[1:])
	bucket[len(bucket)-1] = nil
	c.buckets[slot] = bucket[:len(bucket)-1]
	c.wcount--
	e.slot = -1
	if n := len(c.buckets); c.wcount < n/8 && n > calendarMinBuckets {
		c.resize(n / 2)
	}
	return e
}

func (c *calendarScheduler) Peek() *event {
	if bucket := c.findMin(); bucket != nil {
		return bucket[0]
	}
	if len(c.overflow) == 0 {
		return nil
	}
	return c.overflow[0]
}

func (c *calendarScheduler) Remove(e *event) bool {
	if e.slot >= 0 {
		bucket := c.buckets[e.slot]
		for i, o := range bucket {
			if o == e {
				copy(bucket[i:], bucket[i+1:])
				bucket[len(bucket)-1] = nil
				c.buckets[e.slot] = bucket[:len(bucket)-1]
				e.slot = -1
				c.wcount--
				return true
			}
		}
		return false
	}
	if e.idx >= 0 && e.idx < len(c.overflow) && c.overflow[e.idx] == e {
		heap.Remove(&c.overflow, e.idx)
		return true
	}
	return false
}

// resize rebuilds the wheel with n buckets, re-deriving the bucket
// width from the resident events' spread so average occupancy returns
// to O(1). All events (wheel and overflow) are re-inserted under the
// new geometry. Deterministic: geometry is a pure function of the
// pending set.
func (c *calendarScheduler) resize(n int) {
	events := make([]*event, 0, c.wcount+len(c.overflow))
	var lo, hi int64
	first := true
	for _, bucket := range c.buckets {
		for _, e := range bucket {
			nanos := e.at.UnixNano()
			if first {
				lo, hi, first = nanos, nanos, false
			} else {
				if nanos < lo {
					lo = nanos
				}
				if nanos > hi {
					hi = nanos
				}
			}
			events = append(events, e)
		}
	}
	events = append(events, c.overflow...)
	c.overflow = c.overflow[:0]

	// New width: twice the mean inter-event gap of the wheel
	// residents, clamped to at least 1ns. With all events at one
	// instant this degenerates to one hot bucket, which the sorted
	// insert handles correctly (just not in O(1) — the next resize
	// re-spreads as the distribution widens).
	cursorNanos := c.curB * c.width
	if span := hi - lo; span > 0 && c.wcount > 1 {
		c.width = 2 * span / int64(c.wcount)
		if c.width < 1 {
			c.width = 1
		}
	}
	c.buckets = make([][]*event, n)
	c.mask = int64(n) - 1
	c.wcount = 0
	c.curB = c.bseq(cursorNanos)
	for _, e := range events {
		c.insert(e)
	}
}
