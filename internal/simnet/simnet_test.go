package simnet

import (
	"net/netip"
	"sync"
	"testing"
	"time"
)

func TestSimDeliveryOrderAndClock(t *testing.T) {
	start := time.Unix(0, 0)
	s := NewSim(start)
	s.Latency = func(from, to netip.AddrPort, size int, _ time.Time) (time.Duration, bool) {
		return 10 * time.Millisecond, true
	}

	var got []string
	var gotTimes []time.Time
	recv, err := s.Listen(netip.AddrPort{}, func(pkt []byte, from netip.AddrPort) {
		got = append(got, string(pkt))
		gotTimes = append(gotTimes, s.Now())
	})
	if err != nil {
		t.Fatal(err)
	}
	send, err := s.Listen(netip.AddrPort{}, func([]byte, netip.AddrPort) {})
	if err != nil {
		t.Fatal(err)
	}

	if err := send.Send([]byte("a"), recv.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if err := send.Send([]byte("b"), recv.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("got %v", got)
	}
	// Both delivered at t+10ms on the virtual clock.
	if !gotTimes[0].Equal(start.Add(10 * time.Millisecond)) {
		t.Errorf("delivery time = %v", gotTimes[0])
	}
	delivered, dropped := s.Stats()
	if delivered != 2 || dropped != 0 {
		t.Errorf("stats = %d/%d", delivered, dropped)
	}
}

func TestSimLoss(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	s.Latency = func(from, to netip.AddrPort, size int, _ time.Time) (time.Duration, bool) {
		return 0, false // drop everything
	}
	var n int
	recv, _ := s.Listen(netip.AddrPort{}, func([]byte, netip.AddrPort) { n++ })
	send, _ := s.Listen(netip.AddrPort{}, nil)
	_ = send.Send([]byte("x"), recv.LocalAddr())
	s.Run()
	if n != 0 {
		t.Error("dropped packet delivered")
	}
	if _, dropped := s.Stats(); dropped != 1 {
		t.Errorf("dropped = %d", dropped)
	}
}

func TestSimTimers(t *testing.T) {
	s := NewSim(time.Unix(100, 0))
	var fired []int
	s.AfterFunc(3*time.Second, func() { fired = append(fired, 3) })
	s.AfterFunc(1*time.Second, func() { fired = append(fired, 1) })
	cancel := s.AfterFunc(2*time.Second, func() { fired = append(fired, 2) })
	cancel()
	s.RunFor(5 * time.Second)
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Fatalf("fired = %v", fired)
	}
	if got := s.Now(); !got.Equal(time.Unix(105, 0)) {
		t.Errorf("clock = %v", got)
	}
}

func TestSimRunUntilStopsAtDeadline(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	var fired bool
	s.AfterFunc(10*time.Second, func() { fired = true })
	s.RunFor(5 * time.Second)
	if fired {
		t.Error("future event fired early")
	}
	s.RunFor(5 * time.Second)
	if !fired {
		t.Error("event did not fire at its time")
	}
}

func TestSimNestedSends(t *testing.T) {
	// A handler that replies: request/response over the simulator.
	s := NewSim(time.Unix(0, 0))
	s.Latency = func(_, _ netip.AddrPort, _ int, _ time.Time) (time.Duration, bool) {
		return 25 * time.Millisecond, true
	}
	var serverConn, clientConn Conn
	var rttMS float64
	serverConn, _ = s.Listen(netip.AddrPort{}, func(pkt []byte, from netip.AddrPort) {
		_ = serverConn.Send(append([]byte("re:"), pkt...), from)
	})
	t0 := s.Now()
	clientConn, _ = s.Listen(netip.AddrPort{}, func(pkt []byte, from netip.AddrPort) {
		if string(pkt) != "re:ping" {
			t.Errorf("reply = %q", pkt)
		}
		rttMS = float64(s.Now().Sub(t0)) / float64(time.Millisecond)
	})
	_ = clientConn.Send([]byte("ping"), serverConn.LocalAddr())
	s.Run()
	if rttMS != 50 {
		t.Errorf("rtt = %v ms, want 50", rttMS)
	}
}

func TestSimAddressing(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	a := s.AllocAddr()
	b := s.AllocAddr()
	if a == b {
		t.Error("allocated addresses collide")
	}
	c1, err := s.Listen(netip.AddrPortFrom(a, 30100), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Listen(netip.AddrPortFrom(a, 30100), nil); err == nil {
		t.Error("double bind accepted")
	}
	// Auto port on same address.
	c2, err := s.Listen(netip.AddrPortFrom(a, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if c2.LocalAddr().Port() == 0 || c2.LocalAddr() == c1.LocalAddr() {
		t.Errorf("auto port = %v", c2.LocalAddr())
	}
	// Close frees the address.
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err == nil {
		t.Error("double close accepted")
	}
	if _, err := s.Listen(netip.AddrPortFrom(a, 30100), nil); err != nil {
		t.Errorf("rebind after close: %v", err)
	}
	if err := c1.Send([]byte("x"), c2.LocalAddr()); err == nil {
		t.Error("send on closed conn accepted")
	}
}

func TestUDPNetRoundTrip(t *testing.T) {
	n := NewUDPNet()
	defer n.Close()

	var mu sync.Mutex
	recvd := make(chan string, 1)
	// The handler runs on the read-loop goroutine, which starts inside
	// Listen — guard the conn variable it captures.
	var srvMu sync.Mutex
	var server Conn
	conn, err := n.Listen(netip.AddrPort{}, func(pkt []byte, from netip.AddrPort) {
		srvMu.Lock()
		sc := server
		srvMu.Unlock()
		if sc != nil {
			_ = sc.Send(append([]byte("re:"), pkt...), from)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	srvMu.Lock()
	server = conn
	srvMu.Unlock()
	client, err := n.Listen(netip.AddrPort{}, func(pkt []byte, from netip.AddrPort) {
		mu.Lock()
		defer mu.Unlock()
		select {
		case recvd <- string(pkt):
		default:
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Send([]byte("hello"), server.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-recvd:
		if got != "re:hello" {
			t.Errorf("got %q", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout waiting for reply")
	}
}

func TestUDPNetTimer(t *testing.T) {
	n := NewUDPNet()
	defer n.Close()
	ch := make(chan struct{})
	n.AfterFunc(10*time.Millisecond, func() { close(ch) })
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("timer did not fire")
	}
	cancel := n.AfterFunc(time.Hour, func() { t.Error("cancelled timer fired") })
	cancel()
	if now := n.Now(); now.IsZero() {
		t.Error("Now is zero")
	}
}

func TestUDPNetPreferredPort(t *testing.T) {
	n := NewUDPNet()
	defer n.Close()
	c, err := n.Listen(netip.MustParseAddrPort("127.0.0.1:0"), func([]byte, netip.AddrPort) {})
	if err != nil {
		t.Fatal(err)
	}
	got := c.LocalAddr()
	if got.Port() == 0 || !got.Addr().IsLoopback() {
		t.Errorf("local addr = %v", got)
	}
}
