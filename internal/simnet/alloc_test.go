package simnet

import (
	"net/netip"
	"testing"
	"time"
)

// deliveryHarness wires one sender and one receiver on a fresh Sim with
// a fixed-latency link, returning a step function that sends one
// datagram and drains it. Used by both the allocation guard and the
// benchmark so they exercise the identical path.
func deliveryHarness(tb testing.TB, size int) func() {
	s := NewSim(time.Unix(0, 0))
	s.Latency = func(netip.AddrPort, netip.AddrPort, int, time.Time) (time.Duration, bool) {
		return time.Millisecond, true
	}
	recv, err := s.Listen(netip.AddrPort{}, func([]byte, netip.AddrPort) {})
	if err != nil {
		tb.Fatal(err)
	}
	send, err := s.Listen(netip.AddrPort{}, nil)
	if err != nil {
		tb.Fatal(err)
	}
	pkt := make([]byte, size)
	to := recv.LocalAddr()
	return func() {
		if err := send.Send(pkt, to); err != nil {
			tb.Fatal(err)
		}
		s.Run()
	}
}

// TestSimDeliverZeroAlloc guards the pooled delivery path: after the
// event pool is warm, scheduling and delivering a datagram must not
// allocate — deliverLocked recycles delivery events together with
// their packet copy buffers, so the per-packet copy reuses capacity
// instead of allocating a fresh buffer per datagram. Campaign workers
// push tens of millions of datagrams through this path per run.
func TestSimDeliverZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; run without -race")
	}
	step := deliveryHarness(t, 1000)
	// Warm the pool: the first delivery allocates the event and grows
	// its copy buffer to capacity.
	for i := 0; i < 64; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(512, step); allocs != 0 {
		t.Errorf("pooled datagram delivery: %.2f allocs/op, want 0", allocs)
	}
}

// BenchmarkSimDeliver measures the send-schedule-deliver cycle for one
// datagram; run with -benchmem to watch the allocs/op the guard above
// pins at zero.
func BenchmarkSimDeliver(b *testing.B) {
	step := deliveryHarness(b, 1000)
	step() // warm the pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}
