package simnet

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// broadcastCampaign runs one seeded broadcast campaign on a fresh Sim
// and returns the full event order as one string: every delivery is
// recorded as "to<-from@time:payload" in execution order.
func broadcastCampaign(t *testing.T, seed int64) string {
	t.Helper()
	s := NewSim(time.Unix(0, 0))
	rng := rand.New(rand.NewSource(seed))
	s.Latency = func(from, to netip.AddrPort, size int, _ time.Time) (time.Duration, bool) {
		// Deterministic pseudo-random per-packet jitter: the delay stream
		// depends only on the seed and the (sorted) scheduling order.
		return time.Duration(rng.Intn(20)) * time.Millisecond, true
	}

	var log bytes.Buffer
	const port = 68
	// Deliberately many listeners on the broadcast port so unsorted map
	// iteration would almost surely produce a different event order.
	for i := 0; i < 32; i++ {
		addr := netip.AddrPortFrom(s.AllocAddr(), port)
		a := addr
		if _, err := s.Listen(addr, func(pkt []byte, from netip.AddrPort) {
			fmt.Fprintf(&log, "%v<-%v@%v:%s\n", a, from, s.Now().UnixNano(), pkt)
		}); err != nil {
			t.Fatal(err)
		}
	}
	send, err := s.Listen(netip.AddrPortFrom(s.AllocAddr(), port), nil)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		msg := []byte(fmt.Sprintf("r%d", round))
		if err := send.Send(msg, netip.AddrPortFrom(BroadcastAddr, port)); err != nil {
			t.Fatal(err)
		}
		s.Run()
	}
	return log.String()
}

// TestBroadcastDeterministic verifies that two identically-seeded
// broadcast campaigns produce byte-identical event orders — broadcast
// fan-out is sorted by destination, so map iteration order never leaks
// into the schedule. Run 10x to catch rare orderings.
func TestBroadcastDeterministic(t *testing.T) {
	for i := 0; i < 10; i++ {
		seed := int64(i * 7)
		a := broadcastCampaign(t, seed)
		b := broadcastCampaign(t, seed)
		if a != b {
			t.Fatalf("run %d: event orders differ:\n--- first ---\n%s--- second ---\n%s", i, a, b)
		}
		if a == "" {
			t.Fatal("campaign recorded no events")
		}
	}
}

// TestEphemeralPortWrap verifies the auto-assign scan wraps from 65535
// back into the ephemeral range instead of spilling into port 0 and the
// reserved low ports.
func TestEphemeralPortWrap(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	addr := s.AllocAddr()
	s.mu.Lock()
	s.nextPort[addr] = ephemeralHi - 1
	s.mu.Unlock()

	c1, err := s.Listen(netip.AddrPortFrom(addr, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := c1.LocalAddr().Port(); got != ephemeralHi {
		t.Fatalf("port = %d, want %d", got, ephemeralHi)
	}
	c2, err := s.Listen(netip.AddrPortFrom(addr, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.LocalAddr().Port(); got != ephemeralLo+1 {
		t.Fatalf("wrapped port = %d, want %d", got, ephemeralLo+1)
	}
	if got := c2.LocalAddr().Port(); got == 0 {
		t.Fatal("scan spilled into port 0")
	}
}

// TestEphemeralPortExhaustion binds the entire ephemeral range and
// verifies the next auto-assign fails with ErrAddrInUse instead of
// spinning forever or handing out a reserved port.
func TestEphemeralPortExhaustion(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	addr := s.AllocAddr()
	for p := ephemeralLo + 1; p <= ephemeralHi; p++ {
		if _, err := s.Listen(netip.AddrPortFrom(addr, uint16(p)), nil); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := s.Listen(netip.AddrPortFrom(addr, 0), nil)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrAddrInUse) {
			t.Fatalf("err = %v, want ErrAddrInUse", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("port scan did not terminate (infinite spin)")
	}
}

// TestCloseBeforeDeliveryCountsDropped verifies that a datagram whose
// destination closed between send and delivery is counted as dropped,
// so Stats() conserves datagrams (delivered + dropped == sent).
func TestCloseBeforeDeliveryCountsDropped(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	s.Latency = func(_, _ netip.AddrPort, _ int, _ time.Time) (time.Duration, bool) {
		return 10 * time.Millisecond, true
	}
	var got int
	recv, err := s.Listen(netip.AddrPort{}, func([]byte, netip.AddrPort) { got++ })
	if err != nil {
		t.Fatal(err)
	}
	send, err := s.Listen(netip.AddrPort{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// First datagram delivered normally, second in flight when the
	// receiver closes.
	if err := send.Send([]byte("a"), recv.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if err := send.Send([]byte("b"), recv.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if err := recv.Close(); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if got != 1 {
		t.Fatalf("handler ran %d times, want 1", got)
	}
	delivered, dropped := s.Stats()
	if delivered != 1 || dropped != 1 {
		t.Fatalf("stats = %d delivered / %d dropped, want 1/1 (conservation)", delivered, dropped)
	}
}

// TestSendCopiesBuffer verifies the sender keeps ownership: mutating or
// reusing the buffer right after Send returns must not affect what the
// receiver sees.
func TestSendCopiesBuffer(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	var got []string
	recv, _ := s.Listen(netip.AddrPort{}, func(pkt []byte, _ netip.AddrPort) {
		got = append(got, string(pkt))
	})
	send, _ := s.Listen(netip.AddrPort{}, nil)
	buf := []byte("first")
	if err := send.Send(buf, recv.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	copy(buf, "XXXXX") // reuse immediately — contract says this is fine
	if err := send.Send(buf[:3], recv.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(got) != 2 || got[0] != "first" || got[1] != "XXX" {
		t.Fatalf("got %q", got)
	}
}

// TestBroadcastReceiversGetPrivateCopies verifies each broadcast
// receiver may mutate its datagram in place without affecting the other
// receivers (no shared buffer across the fan-out).
func TestBroadcastReceiversGetPrivateCopies(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	const port = 68
	var got []string
	for i := 0; i < 4; i++ {
		i := i
		if _, err := s.Listen(netip.AddrPortFrom(s.AllocAddr(), port), func(pkt []byte, _ netip.AddrPort) {
			pkt[0] = byte('0' + i) // mutate in place — allowed by contract
			got = append(got, string(pkt))
		}); err != nil {
			t.Fatal(err)
		}
	}
	send, _ := s.Listen(netip.AddrPortFrom(s.AllocAddr(), port), nil)
	if err := send.Send([]byte("_bcast"), netip.AddrPortFrom(BroadcastAddr, port)); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(got) != 4 {
		t.Fatalf("got %d deliveries, want 4", len(got))
	}
	for i, g := range got {
		want := fmt.Sprintf("%dbcast", i)
		if g != want {
			t.Errorf("receiver %d saw %q, want %q (shared buffer?)", i, g, want)
		}
	}
}

// TestHandlerMayForwardWithoutCopy verifies the router idiom: a handler
// may mutate its borrowed datagram in place and Send it onward within
// the call — the simulator's copy-on-scheduling makes this safe even
// though the buffer is recycled after the handler returns.
func TestHandlerMayForwardWithoutCopy(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	var final string
	sink, _ := s.Listen(netip.AddrPort{}, func(pkt []byte, _ netip.AddrPort) {
		final = string(pkt)
	})
	var hop Conn
	hop, _ = s.Listen(netip.AddrPort{}, func(pkt []byte, _ netip.AddrPort) {
		pkt[0] = '*' // in-place rewrite, then forward the same slice
		_ = hop.Send(pkt, sink.LocalAddr())
	})
	src, _ := s.Listen(netip.AddrPort{}, nil)
	if err := src.Send([]byte("x-data"), hop.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if final != "*-data" {
		t.Fatalf("sink saw %q, want %q", final, "*-data")
	}
}

// TestConcurrentSendCloseListen is the -race stress test for the new
// buffer-ownership and pooling rules: many goroutines listen, send,
// mutate received buffers, and close conns while RunLive drives
// deliveries on another goroutine.
func TestConcurrentSendCloseListen(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	stop := make(chan struct{})
	var runDone sync.WaitGroup
	runDone.Add(1)
	go func() {
		defer runDone.Done()
		s.RunLive(stop)
	}()

	var received atomic.Uint64
	sink, err := s.Listen(netip.AddrPort{}, func(pkt []byte, _ netip.AddrPort) {
		if len(pkt) > 0 {
			pkt[0] ^= 0xff // exercise in-place mutation under race detector
		}
		received.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const rounds = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 64)
			for i := 0; i < rounds; i++ {
				c, err := s.Listen(netip.AddrPort{}, func(pkt []byte, _ netip.AddrPort) {})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				buf[0] = byte(w)
				if err := c.Send(buf, sink.LocalAddr()); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				// Reuse buf immediately: Send must have copied.
				buf[0] = 0xee
				if err := c.Close(); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Drain what is still in flight, then stop the live loop.
	deadline := time.Now().Add(10 * time.Second)
	for received.Load() < workers*rounds && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	runDone.Wait()
	delivered, dropped := s.Stats()
	if delivered+dropped != workers*rounds {
		t.Fatalf("conservation violated: delivered %d + dropped %d != sent %d",
			delivered, dropped, workers*rounds)
	}
}

// TestConcurrentSendClose is the sender-side companion stress test: for
// each conn one goroutine hammers Send/SendBatch while another closes
// the conn mid-stream. Under -race this pins the fix for the
// check-closed-then-schedule window (closed-ness now lives under the
// scheduling lock); the assertions pin its determinism — every send
// either fully succeeds before the close or fails with ErrClosed, and
// once Close has returned no later send can slip a datagram out.
func TestConcurrentSendClose(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	sink, err := s.Listen(netip.AddrPort{}, func([]byte, netip.AddrPort) {})
	if err != nil {
		t.Fatal(err)
	}
	to := sink.LocalAddr()

	const conns = 16
	var sent atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		c, err := s.Listen(netip.AddrPort{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		closed := make(chan struct{})
		wg.Add(2)
		go func() {
			defer wg.Done()
			buf := []byte("payload")
			batch := [][]byte{[]byte("b0"), []byte("b1")}
			dests := []netip.AddrPort{to, to}
			for n := 0; ; n++ {
				var err error
				var k uint64 = 1
				if n%2 == 0 {
					err = c.Send(buf, to)
				} else {
					err = c.SendBatch(batch, dests)
					k = 2
				}
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("send failed with %v, want ErrClosed", err)
					}
					return
				}
				sent.Add(k)
				if n == 0 {
					close(closed) // let the closer go once traffic flows
				}
			}
		}()
		go func() {
			defer wg.Done()
			<-closed
			if err := c.Close(); err != nil {
				t.Errorf("close: %v", err)
				return
			}
			// Deterministic post-condition: Close has returned, so any
			// further send must fail — no race, no lost window.
			if err := c.Send([]byte("late"), to); !errors.Is(err, ErrClosed) {
				t.Errorf("Send after Close = %v, want ErrClosed", err)
			}
		}()
	}
	wg.Wait()
	s.Run()
	delivered, dropped := s.Stats()
	if delivered+dropped != sent.Load() {
		t.Fatalf("conservation violated: delivered %d + dropped %d != sent %d",
			delivered, dropped, sent.Load())
	}
}
