package simnet

import (
	"container/heap"
	"errors"
	"fmt"
	"net/netip"
	"slices"
	"sync"
	"time"

	"sciera/internal/telemetry"
)

// LatencyFunc decides delivery for a datagram: the one-way delay and
// whether to deliver at all (false models loss or a severed link).
// It runs inside the simulator's lock; implementations must not call
// back into the Sim (the current virtual time is passed in).
type LatencyFunc func(from, to netip.AddrPort, size int, now time.Time) (time.Duration, bool)

// Sim is a single-threaded discrete-event network. All handlers and
// timers run inside Run/RunFor on the caller's goroutine, making
// campaigns fully deterministic: two Sims driven by the same inputs
// execute the same events in the same order with the same sequence
// numbers (broadcast fan-out is sorted by destination address, never
// left to map iteration order).
//
// Buffer ownership: Send copies the datagram while scheduling it, so
// the caller keeps ownership of its buffer and may reuse it as soon as
// Send returns. Each receiver gets its own copy (broadcast receivers
// never share a buffer) and the handler owns that copy — it may mutate
// it in place and send it onward — but only for the duration of the
// call: the simulator recycles delivery buffers after the handler
// returns, so a handler must copy anything it retains. Sim implements
// Network.
type Sim struct {
	// Latency decides per-datagram delay and delivery; nil delivers
	// everything instantly.
	Latency LatencyFunc

	mu       sync.Mutex
	now      time.Time
	events   eventQueue
	seq      uint64
	handlers map[netip.AddrPort]Handler
	nextHost uint32
	nextPort map[netip.Addr]uint16
	// delivered/dropped/inflight are telemetry cells (atomic, so they
	// are also readable outside s.mu); RegisterTelemetry exposes them.
	delivered telemetry.Counter
	dropped   telemetry.Counter
	inflight  telemetry.Gauge
	// bcast is the reusable scratch for sorted broadcast fan-out.
	bcast []netip.AddrPort
	// evPool recycles packet-delivery events together with their copy
	// buffers, keeping the steady-state forwarding path allocation-free.
	// Timer events are never pooled: their cancel closures outlive the
	// firing and would otherwise cancel a recycled event.
	evPool sync.Pool
}

// NewSim creates a simulator starting at the given time.
func NewSim(start time.Time) *Sim {
	return &Sim{
		now:      start,
		handlers: make(map[netip.AddrPort]Handler),
		nextHost: 1,
		nextPort: make(map[netip.Addr]uint16),
		evPool:   sync.Pool{New: func() any { return new(event) }},
	}
}

// event is either a timer (fn != nil) or a packet delivery (fn == nil,
// pkt/from/to set).
type event struct {
	at  time.Time
	seq uint64
	fn  func()
	// Packet-delivery fields. pkt is the simulator-owned copy of the
	// datagram; its backing array is recycled after the handler returns.
	pkt      []byte
	from, to netip.AddrPort
	idx      int
	// cancelled timers stay in the queue but do nothing.
	cancelled bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i]; q[i].idx, q[j].idx = i, j }
func (q *eventQueue) Push(x interface{}) { e := x.(*event); e.idx = len(*q); *q = append(*q, e) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Errors.
var (
	ErrAddrInUse = errors.New("simnet: address in use")
	ErrClosed    = errors.New("simnet: conn closed")
)

// Ephemeral port range for automatic assignment.
const (
	ephemeralLo = 30000 // exclusive: first assigned port is 30001
	ephemeralHi = 65535 // inclusive
)

// BroadcastAddr is the simulator's broadcast address: datagrams sent to
// it reach every listener bound to the destination port (the simulator
// models one broadcast domain, i.e. one LAN — matching the scope of the
// DHCP and mDNS bootstrapping mechanisms).
var BroadcastAddr = netip.AddrFrom4([4]byte{10, 255, 255, 255})

// AllocAddr returns a fresh unique simulated host address (10.x.y.z).
func (s *Sim) AllocAddr() netip.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.allocAddrLocked()
}

func (s *Sim) allocAddrLocked() netip.Addr {
	h := s.nextHost
	s.nextHost++
	return netip.AddrFrom4([4]byte{10, byte(h >> 16), byte(h >> 8), byte(h)})
}

// Listen implements Network.
func (s *Sim) Listen(preferred netip.AddrPort, h Handler) (Conn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := preferred
	if !a.Addr().IsValid() {
		// Fresh host address; an explicit port in `preferred` is kept
		// (e.g. binding a well-known service port on a new host).
		a = netip.AddrPortFrom(s.allocAddrLocked(), preferred.Port())
	}
	if a.Port() == 0 {
		p, err := s.allocPortLocked(a.Addr())
		if err != nil {
			return nil, err
		}
		a = netip.AddrPortFrom(a.Addr(), p)
	}
	if _, used := s.handlers[a]; used {
		return nil, fmt.Errorf("%w: %v", ErrAddrInUse, a)
	}
	s.handlers[a] = h
	return &simConn{sim: s, addr: a}, nil
}

// allocPortLocked scans the ephemeral range (30001-65535) for a free
// port on addr, wrapping at the top of the range instead of spilling
// into port 0 and the low/reserved ports. It fails with ErrAddrInUse
// once a full cycle finds every port taken.
func (s *Sim) allocPortLocked(addr netip.Addr) (uint16, error) {
	p := s.nextPort[addr]
	if p < ephemeralLo || p >= ephemeralHi {
		p = ephemeralLo
	}
	for tries := 0; tries < ephemeralHi-ephemeralLo; tries++ {
		p++
		if p > ephemeralHi {
			p = ephemeralLo + 1
		}
		if _, used := s.handlers[netip.AddrPortFrom(addr, p)]; !used {
			s.nextPort[addr] = p
			return p, nil
		}
	}
	return 0, fmt.Errorf("%w: no free ephemeral port on %v", ErrAddrInUse, addr)
}

// Now implements Network.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// AfterFunc implements Network.
func (s *Sim) AfterFunc(d time.Duration, f func()) func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.scheduleLocked(s.now.Add(d), f)
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		e.cancelled = true
	}
}

func (s *Sim) scheduleLocked(at time.Time, f func()) *event {
	e := &event{at: at, seq: s.seq, fn: f}
	s.seq++
	heap.Push(&s.events, e)
	return e
}

type simConn struct {
	sim    *Sim
	addr   netip.AddrPort
	closed bool
	mu     sync.Mutex
}

func (c *simConn) LocalAddr() netip.AddrPort { return c.addr }

func (c *simConn) Send(pkt []byte, to netip.AddrPort) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.mu.Unlock()

	s := c.sim
	s.mu.Lock()
	defer s.mu.Unlock()
	from := c.addr

	if to.Addr() == BroadcastAddr {
		// Fan out to every listener on the port except the sender.
		// Destinations are sorted before scheduling so the delivery
		// events get run-independent sequence numbers — map iteration
		// order must never leak into the event order.
		dests := s.bcast[:0]
		for dest := range s.handlers {
			if dest.Port() != to.Port() || dest == from {
				continue
			}
			dests = append(dests, dest)
		}
		slices.SortFunc(dests, compareAddrPort)
		s.bcast = dests
		for _, dest := range dests {
			s.deliverLocked(pkt, from, dest)
		}
		return nil
	}
	s.deliverLocked(pkt, from, to)
	return nil
}

func compareAddrPort(a, b netip.AddrPort) int {
	if c := a.Addr().Compare(b.Addr()); c != 0 {
		return c
	}
	return int(a.Port()) - int(b.Port())
}

// deliverLocked schedules delivery of one datagram, copying it into a
// pooled buffer (the sender keeps ownership of pkt); the caller holds
// s.mu.
func (s *Sim) deliverLocked(pkt []byte, from, to netip.AddrPort) {
	delay := time.Duration(0)
	deliver := true
	if s.Latency != nil {
		delay, deliver = s.Latency(from, to, len(pkt), s.now)
	}
	if !deliver {
		s.dropped.Inc()
		return // datagram semantics: loss is silent
	}
	s.inflight.Inc()
	e := s.evPool.Get().(*event)
	e.at = s.now.Add(delay)
	e.seq = s.seq
	s.seq++
	e.fn = nil
	e.cancelled = false
	e.pkt = append(e.pkt[:0], pkt...)
	e.from, e.to = from, to
	heap.Push(&s.events, e)
}

func (c *simConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.closed = true
	c.sim.mu.Lock()
	delete(c.sim.handlers, c.addr)
	c.sim.mu.Unlock()
	return nil
}

// Step executes the next pending event, returning false when idle.
func (s *Sim) Step() bool {
	for {
		s.mu.Lock()
		if s.events.Len() == 0 {
			s.mu.Unlock()
			return false
		}
		e := heap.Pop(&s.events).(*event)
		if e.cancelled {
			s.mu.Unlock()
			continue
		}
		s.now = e.at
		if e.fn != nil {
			fn := e.fn
			s.mu.Unlock()
			fn()
			return true
		}
		// Packet delivery: resolve the handler and account for the
		// outcome in the same locked section. A conn that closed
		// between send and delivery loses the datagram — counted as
		// dropped so Stats() conserves datagrams.
		h := s.handlers[e.to]
		s.inflight.Dec()
		if h == nil {
			s.dropped.Inc()
		} else {
			s.delivered.Inc()
		}
		s.mu.Unlock()
		if h != nil {
			h(e.pkt, e.from)
		}
		// The handler has returned and must not have retained e.pkt;
		// recycle the event together with its buffer.
		s.evPool.Put(e)
		return true
	}
}

// Run drains all events (use with care: periodic timers run forever;
// prefer RunUntil).
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline and advances the
// clock to the deadline.
func (s *Sim) RunUntil(deadline time.Time) {
	for {
		s.mu.Lock()
		if s.events.Len() == 0 || s.events[0].at.After(deadline) {
			if s.now.Before(deadline) {
				s.now = deadline
			}
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		s.Step()
	}
}

// RunFor advances the simulation by d.
func (s *Sim) RunFor(d time.Duration) { s.RunUntil(s.Now().Add(d)) }

// RunLive processes events as they appear until stop is closed,
// sleeping briefly when idle. It lets goroutines use blocking
// request/response APIs over the simulator: virtual time jumps to each
// event's timestamp as it executes. Campaigns that need strict
// determinism should use Run/RunUntil from a single goroutine instead.
func (s *Sim) RunLive(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		if !s.Step() {
			time.Sleep(200 * time.Microsecond)
		}
	}
}

// Stats reports delivered and dropped datagram counts. Every datagram
// accepted by Send is eventually counted exactly once: delivered when a
// handler received it, dropped when the latency function suppressed it
// or the destination conn closed before delivery. The counts are
// telemetry cells, so the same numbers appear on a registered /metrics
// endpoint (see RegisterTelemetry).
func (s *Sim) Stats() (delivered, dropped uint64) {
	return s.delivered.Load(), s.dropped.Load()
}

// InFlight reports the number of datagrams scheduled but not yet
// delivered (or lost).
func (s *Sim) InFlight() int64 { return s.inflight.Load() }

// RegisterTelemetry adopts the simulator's conservation counters into a
// registry: the same cells back Stats() and the exposed series, so the
// two can never disagree.
func (s *Sim) RegisterTelemetry(reg *telemetry.Registry) {
	reg.RegisterCounter("sciera_simnet_delivered_total", "datagrams delivered to a handler", &s.delivered)
	reg.RegisterCounter("sciera_simnet_dropped_total", "datagrams lost to latency suppression or closed conns", &s.dropped)
	reg.RegisterGauge("sciera_simnet_inflight", "datagrams scheduled but not yet delivered", &s.inflight)
}
