package simnet

import (
	"errors"
	"fmt"
	"net/netip"
	"slices"
	"sync"
	"time"

	"sciera/internal/telemetry"
)

// LatencyFunc decides delivery for a datagram: the one-way delay and
// whether to deliver at all (false models loss or a severed link).
// It runs inside the simulator's lock; implementations must not call
// back into the Sim (the current virtual time is passed in).
type LatencyFunc func(from, to netip.AddrPort, size int, now time.Time) (time.Duration, bool)

// Sim is a single-threaded discrete-event network. All handlers and
// timers run inside Run/RunFor on the caller's goroutine, making
// campaigns fully deterministic: two Sims driven by the same inputs
// execute the same events in the same order with the same sequence
// numbers (broadcast fan-out is sorted by destination address, never
// left to map iteration order).
//
// Buffer ownership: Send copies the datagram while scheduling it, so
// the caller keeps ownership of its buffer and may reuse it as soon as
// Send returns. Each receiver gets its own copy (broadcast receivers
// never share a buffer) and the handler owns that copy — it may mutate
// it in place and send it onward — but only for the duration of the
// call: the simulator recycles delivery buffers after the handler
// returns, so a handler must copy anything it retains. Sim implements
// Network.
type Sim struct {
	// Latency decides per-datagram delay and delivery; nil delivers
	// everything instantly.
	Latency LatencyFunc

	mu sync.Mutex
	// events is the pending-event queue. Every push, pop, peek and
	// cancel goes through the scheduler interface so the binary heap
	// and the calendar queue are interchangeable — both realize the
	// identical (at, seq) delivery order.
	events scheduler
	// peakPending is the high-water mark of pending events, the load
	// metric the calendar queue exists to keep cheap; processed counts
	// events executed over the simulation's lifetime.
	peakPending int
	processed   uint64
	now         time.Time
	seq         uint64
	handlers    map[netip.AddrPort]binding
	nextHost    uint32
	nextPort    map[netip.Addr]uint16
	// delivered/dropped/inflight are telemetry cells (atomic, so they
	// are also readable outside s.mu); RegisterTelemetry exposes them.
	delivered telemetry.Counter
	dropped   telemetry.Counter
	inflight  telemetry.Gauge
	// bcast is the reusable scratch for sorted broadcast fan-out.
	bcast []netip.AddrPort
	// evPool recycles packet-delivery events together with their copy
	// buffers, keeping the steady-state forwarding path allocation-free.
	// Timer events are never pooled: their cancel closures outlive the
	// firing and would otherwise cancel a recycled event.
	evPool sync.Pool
	// batch* are the reusable scratch slices for coalesced delivery to
	// batch-bound destinations; only the event-loop goroutine touches
	// them, between popping a burst and recycling its events.
	batchEvs  []*event
	batchPkts [][]byte
	batchFrom []netip.AddrPort
}

// binding is one attached listener: exactly one of h/bh is set.
type binding struct {
	h  Handler
	bh BatchHandler
}

// NewSim creates a simulator starting at the given time, using the
// default calendar-queue scheduler (see SchedulerKind).
func NewSim(start time.Time) *Sim {
	return NewSimWithScheduler(start, SchedulerCalendar)
}

// NewSimWithScheduler creates a simulator with an explicit pending-event
// queue implementation. The choice never affects what a simulation
// observes — both schedulers realize the identical (at, seq) order,
// property-tested in TestSchedulerEquivalence — only how fast large
// event populations are handled.
func NewSimWithScheduler(start time.Time, kind SchedulerKind) *Sim {
	return &Sim{
		now:      start,
		events:   newScheduler(kind),
		handlers: make(map[netip.AddrPort]binding),
		nextHost: 1,
		nextPort: make(map[netip.Addr]uint16),
		evPool:   sync.Pool{New: func() any { return new(event) }},
	}
}

// event is either a timer (fn != nil) or a packet delivery (fn == nil,
// pkt/from/to set).
type event struct {
	at  time.Time
	seq uint64
	fn  func()
	// Packet-delivery fields. pkt is the simulator-owned copy of the
	// datagram; its backing array is recycled after the handler returns.
	pkt      []byte
	from, to netip.AddrPort
	idx      int
	// pkts, when non-empty, makes this a merged delivery event: a run of
	// same-sender same-destination datagrams with one delivery time,
	// scheduled by SendBatch as one heap entry (one push, one pop, one
	// handler resolution for the whole run). Element backing arrays are
	// recycled with the event, like pkt.
	pkts [][]byte
	// slot is the event's wheel-bucket slot while resident in a
	// calendar scheduler, -1 otherwise; idx is its position while in a
	// binary heap. Each scheduler maintains its own field.
	slot int64
	// cancelled timers stay in the queue but do nothing.
	cancelled bool
}

// appendPkt adds a copy of pkt to a merged delivery event, reusing the
// per-slot buffers a recycled event retains beyond len(pkts).
func (e *event) appendPkt(pkt []byte) {
	if len(e.pkts) < cap(e.pkts) {
		e.pkts = e.pkts[:len(e.pkts)+1]
	} else {
		e.pkts = append(e.pkts, nil)
	}
	i := len(e.pkts) - 1
	e.pkts[i] = append(e.pkts[i][:0], pkt...)
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i]; q[i].idx, q[j].idx = i, j }
func (q *eventQueue) Push(x interface{}) { e := x.(*event); e.idx = len(*q); *q = append(*q, e) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1 // no longer in the heap; guards cancel-after-pop
	*q = old[:n-1]
	return e
}

// Errors.
var (
	ErrAddrInUse = errors.New("simnet: address in use")
	ErrClosed    = errors.New("simnet: conn closed")
)

// Ephemeral port range for automatic assignment.
const (
	ephemeralLo = 30000 // exclusive: first assigned port is 30001
	ephemeralHi = 65535 // inclusive
)

// BroadcastAddr is the simulator's broadcast address: datagrams sent to
// it reach every listener bound to the destination port (the simulator
// models one broadcast domain, i.e. one LAN — matching the scope of the
// DHCP and mDNS bootstrapping mechanisms).
var BroadcastAddr = netip.AddrFrom4([4]byte{10, 255, 255, 255})

// AllocAddr returns a fresh unique simulated host address (10.x.y.z).
func (s *Sim) AllocAddr() netip.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.allocAddrLocked()
}

func (s *Sim) allocAddrLocked() netip.Addr {
	h := s.nextHost
	s.nextHost++
	return netip.AddrFrom4([4]byte{10, byte(h >> 16), byte(h >> 8), byte(h)})
}

// Listen implements Network.
func (s *Sim) Listen(preferred netip.AddrPort, h Handler) (Conn, error) {
	return s.listen(preferred, binding{h: h})
}

// ListenBatch implements Network. Deliveries to a batch-bound address
// that are consecutive in (timestamp, seq) order are coalesced into one
// handler call (see Step).
func (s *Sim) ListenBatch(preferred netip.AddrPort, h BatchHandler) (Conn, error) {
	return s.listen(preferred, binding{bh: h})
}

func (s *Sim) listen(preferred netip.AddrPort, b binding) (Conn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := preferred
	if !a.Addr().IsValid() {
		// Fresh host address; an explicit port in `preferred` is kept
		// (e.g. binding a well-known service port on a new host).
		a = netip.AddrPortFrom(s.allocAddrLocked(), preferred.Port())
	}
	if a.Port() == 0 {
		p, err := s.allocPortLocked(a.Addr())
		if err != nil {
			return nil, err
		}
		a = netip.AddrPortFrom(a.Addr(), p)
	}
	if _, used := s.handlers[a]; used {
		return nil, fmt.Errorf("%w: %v", ErrAddrInUse, a)
	}
	s.handlers[a] = b
	return &simConn{sim: s, addr: a}, nil
}

// allocPortLocked scans the ephemeral range (30001-65535) for a free
// port on addr, wrapping at the top of the range instead of spilling
// into port 0 and the low/reserved ports. It fails with ErrAddrInUse
// once a full cycle finds every port taken.
func (s *Sim) allocPortLocked(addr netip.Addr) (uint16, error) {
	p := s.nextPort[addr]
	if p < ephemeralLo || p >= ephemeralHi {
		p = ephemeralLo
	}
	for tries := 0; tries < ephemeralHi-ephemeralLo; tries++ {
		p++
		if p > ephemeralHi {
			p = ephemeralLo + 1
		}
		if _, used := s.handlers[netip.AddrPortFrom(addr, p)]; !used {
			s.nextPort[addr] = p
			return p, nil
		}
	}
	return 0, fmt.Errorf("%w: no free ephemeral port on %v", ErrAddrInUse, addr)
}

// Now implements Network.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// AfterFunc implements Network. Cancelling removes the timer from the
// event queue immediately — retry/timeout-heavy workloads set and
// cancel far more timers than they let fire, and tombstoned corpses
// would grow the queue without bound while costing Step a lock
// round-trip each.
func (s *Sim) AfterFunc(d time.Duration, f func()) func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.scheduleLocked(s.now.Add(d), f)
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if e.cancelled {
			return
		}
		e.cancelled = true
		s.events.Remove(e)
	}
}

func (s *Sim) scheduleLocked(at time.Time, f func()) *event {
	e := &event{at: at, seq: s.seq, fn: f}
	s.seq++
	s.pushLocked(e)
	return e
}

// pushLocked enqueues a pending event and maintains the high-water
// mark; the caller holds s.mu.
func (s *Sim) pushLocked(e *event) {
	s.events.Push(e)
	if n := s.events.Len(); n > s.peakPending {
		s.peakPending = n
	}
}

type simConn struct {
	sim  *Sim
	addr netip.AddrPort
	// closed is guarded by sim.mu — the same lock under which sends are
	// scheduled — so a Send racing Close either schedules entirely
	// before the close or deterministically returns ErrClosed after it;
	// no datagram can leave a conn once Close has returned.
	closed bool
}

func (c *simConn) LocalAddr() netip.AddrPort { return c.addr }

func (c *simConn) Send(pkt []byte, to netip.AddrPort) error {
	s := c.sim
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	s.sendLocked(c.addr, pkt, to)
	return nil
}

// SendBatch implements Conn: the whole burst is scheduled under one
// lock acquisition (and one closed check), in order, with the same
// per-datagram semantics as Send. Runs of consecutive datagrams that
// share a destination and a delivery time are merged into one heap
// event, so a burst costs one push/pop/handler-resolution instead of
// one per packet; the run boundaries are exactly where per-packet
// scheduling would have produced a different delivery time or
// destination, so execution order — and therefore every downstream
// observation — is identical to per-packet sends.
func (c *simConn) SendBatch(pkts [][]byte, dests []netip.AddrPort) error {
	if len(pkts) != len(dests) {
		return fmt.Errorf("simnet: SendBatch: %d packets, %d destinations", len(pkts), len(dests))
	}
	s := c.sim
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	i := 0
	for i < len(pkts) {
		to := dests[i]
		if to.Addr() == BroadcastAddr {
			// Fan-out duplicates the datagram across listeners; merging
			// does not apply.
			s.sendLocked(c.addr, pkts[i], to)
			i++
			continue
		}
		var run *event
		var runAt time.Time
		for i < len(pkts) && dests[i] == to {
			pkt := pkts[i]
			i++
			delay := time.Duration(0)
			deliver := true
			if s.Latency != nil {
				delay, deliver = s.Latency(c.addr, to, len(pkt), s.now)
			}
			if !deliver {
				s.dropped.Inc()
				continue // loss is silent; the run continues either side
			}
			at := s.now.Add(delay)
			if run == nil || !at.Equal(runAt) {
				// Delivery time changed (e.g. a busy capped wire spacing
				// packets out): the merged run ends where per-packet
				// events would stop coinciding.
				run = s.newDeliveryLocked(c.addr, to, at)
				runAt = at
			}
			run.appendPkt(pkt)
			s.inflight.Inc()
		}
	}
	return nil
}

// newDeliveryLocked allocates (or recycles) a merged delivery event and
// schedules it; packets are appended by the caller.
func (s *Sim) newDeliveryLocked(from, to netip.AddrPort, at time.Time) *event {
	e := s.evPool.Get().(*event)
	e.at = at
	e.seq = s.seq
	s.seq++
	e.fn = nil
	e.cancelled = false
	e.pkt = e.pkt[:0]
	e.pkts = e.pkts[:0]
	e.from, e.to = from, to
	s.pushLocked(e)
	return e
}

// sendLocked schedules one datagram from `from`; the caller holds s.mu.
func (s *Sim) sendLocked(from netip.AddrPort, pkt []byte, to netip.AddrPort) {
	if to.Addr() == BroadcastAddr {
		// Fan out to every listener on the port except the sender.
		// Destinations are sorted before scheduling so the delivery
		// events get run-independent sequence numbers — map iteration
		// order must never leak into the event order.
		dests := s.bcast[:0]
		for dest := range s.handlers {
			if dest.Port() != to.Port() || dest == from {
				continue
			}
			dests = append(dests, dest)
		}
		slices.SortFunc(dests, compareAddrPort)
		s.bcast = dests
		for _, dest := range dests {
			s.deliverLocked(pkt, from, dest)
		}
		return
	}
	s.deliverLocked(pkt, from, to)
}

func compareAddrPort(a, b netip.AddrPort) int {
	if c := a.Addr().Compare(b.Addr()); c != 0 {
		return c
	}
	return int(a.Port()) - int(b.Port())
}

// deliverLocked schedules delivery of one datagram, copying it into a
// pooled buffer (the sender keeps ownership of pkt); the caller holds
// s.mu.
func (s *Sim) deliverLocked(pkt []byte, from, to netip.AddrPort) {
	delay := time.Duration(0)
	deliver := true
	if s.Latency != nil {
		delay, deliver = s.Latency(from, to, len(pkt), s.now)
	}
	if !deliver {
		s.dropped.Inc()
		return // datagram semantics: loss is silent
	}
	s.inflight.Inc()
	e := s.evPool.Get().(*event)
	e.at = s.now.Add(delay)
	e.seq = s.seq
	s.seq++
	e.fn = nil
	e.cancelled = false
	e.pkt = append(e.pkt[:0], pkt...)
	e.pkts = e.pkts[:0] // a recycled merged event becomes single-delivery
	e.from, e.to = from, to
	s.pushLocked(e)
}

func (c *simConn) Close() error {
	s := c.sim
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.closed = true
	delete(s.handlers, c.addr)
	return nil
}

// Step executes the next pending event, returning false when idle.
func (s *Sim) Step() bool {
	for {
		s.mu.Lock()
		e := s.events.Pop()
		if e == nil {
			s.mu.Unlock()
			return false
		}
		if e.cancelled {
			s.mu.Unlock()
			continue
		}
		s.now = e.at
		s.processed++
		if e.fn != nil {
			fn := e.fn
			s.mu.Unlock()
			fn()
			return true
		}
		// Packet delivery: resolve the handler and account for the
		// outcome in the same locked section. A conn that closed
		// between send and delivery loses the datagram — counted as
		// dropped so Stats() conserves datagrams.
		b := s.handlers[e.to]
		if b.bh != nil {
			s.deliverBatchLocked(e, b.bh)
			return true
		}
		if n := len(e.pkts); n > 0 {
			// Merged run delivered to a per-packet listener: one lock
			// round-trip and one event for the run, then the handler is
			// invoked once per datagram, in order.
			s.inflight.Add(-int64(n))
			if b.h == nil {
				s.dropped.Add(uint64(n))
			} else {
				s.delivered.Add(uint64(n))
			}
			s.mu.Unlock()
			if b.h != nil {
				for _, pkt := range e.pkts {
					b.h(pkt, e.from)
				}
			}
			s.evPool.Put(e)
			return true
		}
		s.inflight.Dec()
		if b.h == nil {
			s.dropped.Inc()
		} else {
			s.delivered.Inc()
		}
		s.mu.Unlock()
		if b.h != nil {
			b.h(e.pkt, e.from)
		}
		// The handler has returned and must not have retained e.pkt;
		// recycle the event together with its buffer.
		s.evPool.Put(e)
		return true
	}
}

// deliverBatchLocked coalesces the popped delivery event e with every
// immediately following event in (timestamp, seq) order that is also a
// delivery to the same batch-bound destination, and hands the burst to
// the batch handler as one call with one lock round-trip. Coalescing
// stops at the first intervening timer or foreign-destination event, so
// the burst is exactly a run of deliveries nothing else could have
// interleaved — per-packet execution would have observed the identical
// order, which is what keeps batch-bound runs byte-identical to
// unbatched ones. Called with s.mu held; unlocks before the handler.
func (s *Sim) deliverBatchLocked(e *event, bh BatchHandler) {
	evs := append(s.batchEvs[:0], e)
	for {
		top := s.events.Peek()
		if top == nil || top.fn != nil || top.to != e.to || !top.at.Equal(e.at) {
			break
		}
		evs = append(evs, s.events.Pop())
	}
	pkts := s.batchPkts[:0]
	froms := s.batchFrom[:0]
	for _, ev := range evs {
		if len(ev.pkts) > 0 { // merged run: expand in order
			for _, p := range ev.pkts {
				pkts = append(pkts, p)
				froms = append(froms, ev.from)
			}
			continue
		}
		pkts = append(pkts, ev.pkt)
		froms = append(froms, ev.from)
	}
	s.inflight.Add(-int64(len(pkts)))
	s.delivered.Add(uint64(len(pkts)))
	s.mu.Unlock()
	bh(pkts, froms)
	// The handler has returned and must not have retained any buffer;
	// recycle the whole burst and keep the scratch capacity.
	for i, ev := range evs {
		s.evPool.Put(ev)
		evs[i] = nil
	}
	s.batchEvs = evs[:0]
	s.batchPkts = pkts[:0]
	s.batchFrom = froms[:0]
}

// Run drains all events (use with care: periodic timers run forever;
// prefer RunUntil).
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline and advances the
// clock to the deadline.
func (s *Sim) RunUntil(deadline time.Time) {
	for {
		s.mu.Lock()
		if top := s.events.Peek(); top == nil || top.at.After(deadline) {
			if s.now.Before(deadline) {
				s.now = deadline
			}
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		s.Step()
	}
}

// RunFor advances the simulation by d.
func (s *Sim) RunFor(d time.Duration) { s.RunUntil(s.Now().Add(d)) }

// RunLive processes events as they appear until stop is closed,
// sleeping briefly when idle. It lets goroutines use blocking
// request/response APIs over the simulator: virtual time jumps to each
// event's timestamp as it executes. Campaigns that need strict
// determinism should use Run/RunUntil from a single goroutine instead.
func (s *Sim) RunLive(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		if !s.Step() {
			time.Sleep(200 * time.Microsecond)
		}
	}
}

// Stats reports delivered and dropped datagram counts. Every datagram
// accepted by Send is eventually counted exactly once: delivered when a
// handler received it, dropped when the latency function suppressed it
// or the destination conn closed before delivery. The counts are
// telemetry cells, so the same numbers appear on a registered /metrics
// endpoint (see RegisterTelemetry).
func (s *Sim) Stats() (delivered, dropped uint64) {
	return s.delivered.Load(), s.dropped.Load()
}

// InFlight reports the number of datagrams scheduled but not yet
// delivered (or lost).
func (s *Sim) InFlight() int64 { return s.inflight.Load() }

// PendingEvents reports the number of events (deliveries and timers)
// currently queued in the scheduler.
func (s *Sim) PendingEvents() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.events.Len()
}

// PeakPending reports the high-water mark of pending events over the
// simulation's lifetime — the population the scheduler had to keep
// ordered, and the scale knob the calendar queue is measured against.
func (s *Sim) PeakPending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peakPending
}

// ProcessedEvents reports the number of events executed so far —
// combined with wall time it yields the scheduler's events/sec, the
// load benchmark's ablation metric.
func (s *Sim) ProcessedEvents() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.processed
}

// RegisterTelemetry adopts the simulator's conservation counters into a
// registry: the same cells back Stats() and the exposed series, so the
// two can never disagree.
func (s *Sim) RegisterTelemetry(reg *telemetry.Registry) {
	reg.RegisterCounter("sciera_simnet_delivered_total", "datagrams delivered to a handler", &s.delivered)
	reg.RegisterCounter("sciera_simnet_dropped_total", "datagrams lost to latency suppression or closed conns", &s.dropped)
	reg.RegisterGauge("sciera_simnet_inflight", "datagrams scheduled but not yet delivered", &s.inflight)
}
