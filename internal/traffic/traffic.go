// Package traffic is an open-loop, flow-level workload generator for
// the SCIERA data plane: it multiplexes millions of simulated endpoints
// behind each vantage AS and drives their flows — Poisson arrivals,
// heavy-tailed (Pareto or lognormal) sizes, per-flow pacing — as real
// SCION packets through the batched router pipeline on the simulator.
//
// The paper's campaign only measures 11 vantage ASes pinging each
// other; this package is what puts the network under *load*: per-path
// saturation of capacity-limited circuits, LightningFilter rate-limit
// behavior at scale, SCMP backpressure when circuits fail mid-flow.
// Open-loop means arrivals never slow down because the network is
// struggling — the defining property of real user populations, and the
// one that exposes congestion collapse.
//
// Every flow keeps exactly one pending event in the simulator (its next
// pacing wakeup), so 100k concurrent flows mean a pending-event
// population of that order — the regime simnet's calendar-queue
// scheduler exists for.
//
// Determinism: all randomness comes from per-pair seeded PRNGs consumed
// inside simulator callbacks, so two runs with the same Config produce
// identical packet sequences, counters and completion-time histograms.
package traffic

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"sciera/internal/addr"
	"sciera/internal/combinator"
	"sciera/internal/core"
	"sciera/internal/simnet"
	"sciera/internal/slayers"
	"sciera/internal/telemetry"
)

// SinkPort is the UDP/SCION port the engine's per-AS sinks listen on.
const SinkPort = 41000

// Payload layout: every engine packet starts with this header, padded
// to Config.PayloadBytes. The seq field is patched per packet with an
// RFC 1624 incremental checksum update, so a flow serializes its packet
// exactly once.
const (
	payloadMagicOff    = 0  // u32 "TRF1"
	payloadFlowOff     = 4  // u32 flow ID (engine-global)
	payloadEndpointOff = 8  // u32 endpoint behind the source AS
	payloadTotalOff    = 12 // u32 packets in this flow
	payloadSeqOff      = 16 // u32 packet index, patched per packet
	payloadArrivalOff  = 20 // u64 flow arrival, unix nanos (virtual)
	payloadHdrLen      = 28
)

var payloadMagic = [4]byte{'T', 'R', 'F', '1'}

// Pair is one directed vantage relation carrying load.
type Pair struct {
	Src, Dst addr.IA
}

// Config parameterizes an Engine. The workload it describes is a
// repeatable artifact: same Config, same transcript.
type Config struct {
	// Pairs are the directed (source AS, destination AS) relations to
	// load. Required.
	Pairs []Pair
	// Endpoints is the simulated user population multiplexed behind
	// each source AS; every flow is attributed to one endpoint drawn
	// uniformly from it (default 1 << 20).
	Endpoints int
	// ArrivalRate is the open-loop flow arrival rate per pair, in
	// flows per second of virtual time. Required (> 0).
	ArrivalRate float64
	// FlowSizes draws each flow's size in packets (default
	// Pareto{Alpha: 1.3}).
	FlowSizes SizeDist
	// PayloadBytes is the UDP payload per packet (>= 28 for the flow
	// header; default 200).
	PayloadBytes int
	// PacketInterval is the pacing gap between a flow's emission
	// bursts (default 10ms). A flow's throughput is
	// Burst*PayloadBytes/PacketInterval.
	PacketInterval time.Duration
	// Burst is how many packets a flow emits per wakeup (default 4).
	// Each burst is handed to the data plane as one SendBatch.
	Burst int
	// PathsPerPair stripes a pair's flows across up to this many
	// distinct paths, round-robin by flow (default 1: all flows share
	// the first path — the per-path saturation setup).
	PathsPerPair int
	// Seed drives all workload randomness (arrivals, sizes, endpoint
	// and path choice).
	Seed int64

	// Wrap, when set, transforms each flow's payload once at flow start
	// — the hook for shim headers such as LightningFilter's packet
	// authenticator (seal the flow header, let the filter verify it at
	// the sink). Wrapped flows carry identical bytes on every packet:
	// the per-packet seq stamp is skipped, since any wrapper MAC would
	// cover it.
	Wrap func(src addr.IA, at time.Time, inner []byte) []byte
	// Unwrap recovers the flow header from a wrapped payload at the
	// sink (inverse of Wrap); returning false discards the packet as
	// foreign.
	Unwrap func(payload []byte) ([]byte, bool)
	// SinkCheck, when set, is an admission decision run against every
	// raw packet reaching a sink before it is accounted — deploy a
	// LightningFilter (or any middlebox model) in front of the
	// receivers. Rejected packets count in Stats.SinkRejected.
	SinkCheck func(raw []byte) bool
}

func (c *Config) defaults() error {
	if len(c.Pairs) == 0 {
		return fmt.Errorf("traffic: Config.Pairs required")
	}
	if c.ArrivalRate <= 0 {
		return fmt.Errorf("traffic: Config.ArrivalRate must be > 0")
	}
	if c.Endpoints <= 0 {
		c.Endpoints = 1 << 20
	}
	if c.FlowSizes == nil {
		c.FlowSizes = Pareto{}
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 200
	}
	if c.PayloadBytes < payloadHdrLen {
		return fmt.Errorf("traffic: PayloadBytes %d below flow header %d", c.PayloadBytes, payloadHdrLen)
	}
	if c.PacketInterval <= 0 {
		c.PacketInterval = 10 * time.Millisecond
	}
	if c.Burst <= 0 {
		c.Burst = 4
	}
	if c.PathsPerPair <= 0 {
		c.PathsPerPair = 1
	}
	return nil
}

// Stats is a point-in-time summary of an engine's run.
type Stats struct {
	FlowsStarted     uint64
	FlowsCompleted   uint64
	ActiveFlows      int64
	PeakActiveFlows  int
	PacketsSent      uint64
	PacketsDelivered uint64
	BytesDelivered   uint64
	// SCMPBackpressure counts SCMP error messages the network pushed
	// back at the sources (link down, unreachable, ...); LinkDown is
	// the subset attributing the error to a failed circuit.
	SCMPBackpressure uint64
	SCMPLinkDown     uint64
	// SinkRejected counts packets that reached a sink but were refused
	// by Config.SinkCheck (e.g. a LightningFilter rate limiter).
	SinkRejected uint64
	// EndpointsSimulated is the configured population size summed over
	// source ASes; EndpointsTouched counts those that actually
	// originated at least one flow.
	EndpointsSimulated int
	EndpointsTouched   int
}

// Engine drives the workload. All state mutation happens inside
// simulator callbacks (single-threaded event loop); construction and
// Stats reads are the only outside touches.
type Engine struct {
	net   simnet.Network
	cfg   Config
	pairs []*pairState
	srcs  map[addr.IA]*srcState
	sinks map[addr.IA]*sinkState
	stop  time.Time

	flowsStarted     telemetry.Counter
	flowsCompleted   telemetry.Counter
	packetsSent      telemetry.Counter
	packetsDelivered telemetry.Counter
	bytesDelivered   telemetry.Counter
	scmpBackpressure telemetry.Counter
	scmpLinkDown     telemetry.Counter
	sinkRejected     telemetry.Counter
	activeFlows      telemetry.Gauge
	fct              *telemetry.Histogram
	peakActive       int

	// Reusable emission scratch: per-burst packet slots and the flow
	// freelist keep the steady-state emission path allocation-light.
	pkts      [][]byte
	dests     []netip.AddrPort
	scratch   [][]byte
	freeFlows []*flow
	nextFlow  uint32
}

// srcState is one vantage AS originating load: a single injection conn
// multiplexing the whole endpoint population (endpoint identity rides
// in the flow header), plus the SCMP backpressure listener.
type srcState struct {
	ia      addr.IA
	conn    simnet.Conn
	ingress netip.AddrPort
	dec     slayers.Packet
	touched []uint64
	ntouch  int
}

// sinkState is one destination AS absorbing load and accounting flow
// completions.
type sinkState struct {
	ia   addr.IA
	conn simnet.Conn
	at   netip.AddrPort
	dec  slayers.Packet
	// remaining maps in-progress flow IDs to packets still expected;
	// a flow completes when it reaches zero. Flows losing packets stay
	// resident — they are the incomplete-flow measurement.
	remaining map[uint32]int32
}

type pairState struct {
	src       *srcState
	sink      *sinkState
	rng       *rand.Rand
	templates []flowTemplate
	nextPath  int
}

type flowTemplate struct {
	pkt     slayers.Packet
	payload []byte
}

type flow struct {
	raw         []byte
	l4Off       int
	sent, total int
	stampSeq    bool
	src         *srcState
	conn        simnet.Conn
	ingress     netip.AddrPort
}

// New builds an engine over an assembled network: per-source injection
// conns, per-destination sinks, and per-pair packet templates over the
// pair's discovered paths.
func New(n *core.Network, cfg Config) (*Engine, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	e := &Engine{
		net:   n.Transport,
		cfg:   cfg,
		srcs:  make(map[addr.IA]*srcState),
		sinks: make(map[addr.IA]*sinkState),
		pkts:  make([][]byte, cfg.Burst),
		dests: make([]netip.AddrPort, cfg.Burst),
		fct: telemetry.NewHistogram(
			1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000),
	}
	e.scratch = make([][]byte, cfg.Burst)
	for i := range e.scratch {
		e.scratch[i] = make([]byte, 0, 512)
	}
	for i, p := range cfg.Pairs {
		src, err := e.srcFor(n, p.Src)
		if err != nil {
			e.Close()
			return nil, err
		}
		sink, err := e.sinkFor(n, p.Dst)
		if err != nil {
			e.Close()
			return nil, err
		}
		paths := n.Paths(p.Src, p.Dst)
		if len(paths) == 0 {
			e.Close()
			return nil, fmt.Errorf("traffic: no paths %v -> %v", p.Src, p.Dst)
		}
		k := cfg.PathsPerPair
		if k > len(paths) {
			k = len(paths)
		}
		ps := &pairState{
			src:  src,
			sink: sink,
			rng:  rand.New(rand.NewSource(cfg.Seed ^ int64(uint64(i+1)*0x9e3779b97f4a7c15))),
		}
		for _, path := range paths[:k] {
			ps.templates = append(ps.templates, e.template(p, src, sink, path))
		}
		e.pairs = append(e.pairs, ps)
	}
	return e, nil
}

func (e *Engine) srcFor(n *core.Network, ia addr.IA) (*srcState, error) {
	if s, ok := e.srcs[ia]; ok {
		return s, nil
	}
	rtr, ok := n.Router(ia)
	if !ok {
		return nil, fmt.Errorf("traffic: no router for source %v", ia)
	}
	s := &srcState{
		ia:      ia,
		ingress: rtr.LocalAddr(),
		touched: make([]uint64, (e.cfg.Endpoints+63)/64),
	}
	conn, err := e.net.Listen(n.HostAddr(), func(pkt []byte, from netip.AddrPort) {
		e.handleBackpressure(s, pkt)
	})
	if err != nil {
		return nil, err
	}
	s.conn = conn
	e.srcs[ia] = s
	return s, nil
}

func (e *Engine) sinkFor(n *core.Network, ia addr.IA) (*sinkState, error) {
	if k, ok := e.sinks[ia]; ok {
		return k, nil
	}
	k := &sinkState{ia: ia, remaining: make(map[uint32]int32)}
	host := n.HostAddr()
	at := netip.AddrPortFrom(host.Addr(), SinkPort)
	conn, err := e.net.ListenBatch(at, func(pkts [][]byte, from []netip.AddrPort) {
		for _, pkt := range pkts {
			e.handleSinkPacket(k, pkt)
		}
	})
	if err != nil {
		return nil, err
	}
	k.conn = conn
	k.at = conn.LocalAddr()
	e.sinks[ia] = k
	return k, nil
}

// template prepares the reusable serialization state for one
// (pair, path) combination. The SCION source stays the injection
// conn's real address and port so SCMP errors route back to the
// backpressure listener; endpoint identity rides in the payload.
func (e *Engine) template(p Pair, src *srcState, sink *sinkState, path *combinator.Path) flowTemplate {
	return flowTemplate{
		pkt: slayers.Packet{
			Hdr: slayers.SCION{
				DstIA:   p.Dst,
				SrcIA:   p.Src,
				DstHost: sink.at.Addr(),
				SrcHost: src.conn.LocalAddr().Addr(),
				Path:    *path.Raw.Copy(),
			},
			UDP: &slayers.UDP{
				SrcPort: src.conn.LocalAddr().Port(),
				DstPort: SinkPort,
			},
		},
		payload: make([]byte, e.cfg.PayloadBytes),
	}
}

// Start schedules the open-loop arrival processes: flows arrive on
// every pair for d of virtual time, then arrivals cease (in-progress
// flows drain). The caller drives the simulator (Run/RunUntil).
func (e *Engine) Start(d time.Duration) {
	e.stop = e.net.Now().Add(d)
	for _, p := range e.pairs {
		e.scheduleArrival(p)
	}
}

func (e *Engine) scheduleArrival(p *pairState) {
	gap := time.Duration(expInterval(p.rng, e.cfg.ArrivalRate) * float64(time.Second))
	e.net.AfterFunc(gap, func() {
		if e.net.Now().After(e.stop) {
			return
		}
		e.startFlow(p)
		e.scheduleArrival(p)
	})
}

// startFlow draws a flow (endpoint, size, path), serializes its packet
// once, and emits the first burst immediately.
func (e *Engine) startFlow(p *pairState) {
	endpoint := uint32(p.rng.Intn(e.cfg.Endpoints))
	total := e.cfg.FlowSizes.Sample(p.rng)
	tmpl := &p.templates[p.nextPath%len(p.templates)]
	p.nextPath++

	if w, b := endpoint/64, uint64(1)<<(endpoint%64); p.src.touched[w]&b == 0 {
		p.src.touched[w] |= b
		p.src.ntouch++
	}

	id := e.nextFlow
	e.nextFlow++
	pl := tmpl.payload
	copy(pl[payloadMagicOff:], payloadMagic[:])
	binary.BigEndian.PutUint32(pl[payloadFlowOff:], id)
	binary.BigEndian.PutUint32(pl[payloadEndpointOff:], endpoint)
	binary.BigEndian.PutUint32(pl[payloadTotalOff:], uint32(total))
	binary.BigEndian.PutUint32(pl[payloadSeqOff:], 0)
	binary.BigEndian.PutUint64(pl[payloadArrivalOff:], uint64(e.net.Now().UnixNano()))
	if e.cfg.Wrap != nil {
		tmpl.pkt.Payload = e.cfg.Wrap(p.src.ia, e.net.Now(), pl)
	} else {
		tmpl.pkt.Payload = pl
	}

	f := e.allocFlow()
	raw, err := tmpl.pkt.Serialize(f.raw[:0])
	if err != nil {
		// Template packets are built from discovered paths; failure is
		// a programming error, not a runtime condition.
		panic(fmt.Sprintf("traffic: serialize: %v", err))
	}
	f.raw = raw
	f.l4Off = int(binary.BigEndian.Uint16(raw[6:8]))
	f.sent, f.total = 0, total
	f.stampSeq = e.cfg.Wrap == nil
	f.src = p.src
	f.conn = p.src.conn
	f.ingress = p.src.ingress

	e.flowsStarted.Inc()
	if n := int(e.activeFlows.Add(1)); n > e.peakActive {
		e.peakActive = n
	}
	e.emit(f)
}

func (e *Engine) allocFlow() *flow {
	if n := len(e.freeFlows); n > 0 {
		f := e.freeFlows[n-1]
		e.freeFlows = e.freeFlows[:n-1]
		return f
	}
	return &flow{raw: make([]byte, 0, 512)}
}

// emit sends one pacing burst of a flow and reschedules (or retires)
// it. Each burst goes out as a single SendBatch: one scheduler event
// through the simulator, one batched handler call in the router.
func (e *Engine) emit(f *flow) {
	n := f.total - f.sent
	if n > e.cfg.Burst {
		n = e.cfg.Burst
	}
	for i := 0; i < n; i++ {
		buf := append(e.scratch[i][:0], f.raw...)
		e.scratch[i] = buf
		if f.stampSeq {
			patchSeq(buf, f.l4Off, uint32(f.sent+i))
		}
		e.pkts[i] = buf
		e.dests[i] = f.ingress
	}
	if err := f.conn.SendBatch(e.pkts[:n], e.dests[:n]); err == nil {
		e.packetsSent.Add(uint64(n))
	}
	f.sent += n
	if f.sent < f.total {
		e.net.AfterFunc(e.cfg.PacketInterval, func() { e.emit(f) })
		return
	}
	e.activeFlows.Dec()
	e.freeFlows = append(e.freeFlows, f)
}

// patchSeq stamps the packet's seq field and incrementally repairs the
// UDP checksum (RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m')), avoiding a
// re-serialization per packet. l4Off is even and the seq field sits at
// an even L4 offset, so the patch covers exactly two checksum words.
func patchSeq(raw []byte, l4Off int, seq uint32) {
	seqOff := l4Off + 8 + payloadSeqOff // UDP header, then flow header
	csumOff := l4Off + 6
	old := binary.BigEndian.Uint32(raw[seqOff:])
	binary.BigEndian.PutUint32(raw[seqOff:], seq)
	hc := binary.BigEndian.Uint16(raw[csumOff:])
	sum := uint64(^hc) +
		uint64(^uint16(old>>16)) + uint64(uint16(seq>>16)) +
		uint64(^uint16(old)) + uint64(uint16(seq))
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	binary.BigEndian.PutUint16(raw[csumOff:], ^uint16(sum))
}

// handleSinkPacket accounts one delivered packet and detects flow
// completion.
func (e *Engine) handleSinkPacket(k *sinkState, raw []byte) {
	if e.cfg.SinkCheck != nil && !e.cfg.SinkCheck(raw) {
		e.sinkRejected.Inc()
		return
	}
	if err := k.dec.Decode(raw); err != nil || k.dec.UDP == nil {
		return
	}
	pl := k.dec.Payload
	if e.cfg.Unwrap != nil {
		inner, ok := e.cfg.Unwrap(pl)
		if !ok {
			return
		}
		pl = inner
	}
	if len(pl) < payloadHdrLen || [4]byte(pl[payloadMagicOff:payloadMagicOff+4]) != payloadMagic {
		return
	}
	e.packetsDelivered.Inc()
	e.bytesDelivered.Add(uint64(len(raw)))
	id := binary.BigEndian.Uint32(pl[payloadFlowOff:])
	rem, ok := k.remaining[id]
	if !ok {
		rem = int32(binary.BigEndian.Uint32(pl[payloadTotalOff:]))
	}
	rem--
	if rem > 0 {
		k.remaining[id] = rem
		return
	}
	delete(k.remaining, id)
	e.flowsCompleted.Inc()
	arrival := int64(binary.BigEndian.Uint64(pl[payloadArrivalOff:]))
	fctMS := float64(e.net.Now().UnixNano()-arrival) / 1e6
	e.fct.Observe(fctMS)
}

// handleBackpressure classifies packets the network sends back at a
// source conn — SCMP errors are the network's congestion/failure
// signal to an open-loop sender.
func (e *Engine) handleBackpressure(s *srcState, raw []byte) {
	if err := s.dec.Decode(raw); err != nil || s.dec.SCMP == nil {
		return
	}
	if !s.dec.SCMP.Type.IsError() {
		return
	}
	e.scmpBackpressure.Inc()
	switch s.dec.SCMP.Type {
	case slayers.SCMPExternalInterfaceDown, slayers.SCMPInternalConnectivityDown:
		e.scmpLinkDown.Inc()
	}
}

// Stats snapshots the run.
func (e *Engine) Stats() Stats {
	st := Stats{
		FlowsStarted:     e.flowsStarted.Load(),
		FlowsCompleted:   e.flowsCompleted.Load(),
		ActiveFlows:      e.activeFlows.Load(),
		PeakActiveFlows:  e.peakActive,
		PacketsSent:      e.packetsSent.Load(),
		PacketsDelivered: e.packetsDelivered.Load(),
		BytesDelivered:   e.bytesDelivered.Load(),
		SCMPBackpressure: e.scmpBackpressure.Load(),
		SCMPLinkDown:     e.scmpLinkDown.Load(),
		SinkRejected:     e.sinkRejected.Load(),
	}
	for _, s := range e.srcs {
		st.EndpointsSimulated += e.cfg.Endpoints
		st.EndpointsTouched += s.ntouch
	}
	return st
}

// FCT returns the flow-completion-time histogram (milliseconds of
// virtual time, arrival to last packet delivered).
func (e *Engine) FCT() telemetry.HistogramSnapshot { return e.fct.Snapshot() }

// IncompleteFlows counts flows that delivered some but not all packets
// so far — the loss-visible population.
func (e *Engine) IncompleteFlows() int {
	n := 0
	for _, k := range e.sinks {
		n += len(k.remaining)
	}
	return n
}

// RegisterTelemetry adopts the engine's cells into a registry, so load
// runs expose the same metric families as the rest of the stack.
func (e *Engine) RegisterTelemetry(reg *telemetry.Registry) {
	reg.RegisterCounter("sciera_traffic_flows_started_total", "flows started by the open-loop generator", &e.flowsStarted)
	reg.RegisterCounter("sciera_traffic_flows_completed_total", "flows fully delivered to a sink", &e.flowsCompleted)
	reg.RegisterCounter("sciera_traffic_packets_sent_total", "packets injected into the data plane", &e.packetsSent)
	reg.RegisterCounter("sciera_traffic_packets_delivered_total", "packets delivered to a sink", &e.packetsDelivered)
	reg.RegisterCounter("sciera_traffic_bytes_delivered_total", "bytes delivered to a sink", &e.bytesDelivered)
	reg.RegisterCounter("sciera_traffic_scmp_backpressure_total", "SCMP errors received at source conns", &e.scmpBackpressure)
	reg.RegisterCounter("sciera_traffic_scmp_link_down_total", "SCMP errors attributing failure to a downed circuit", &e.scmpLinkDown)
	reg.RegisterCounter("sciera_traffic_sink_rejected_total", "packets refused by the sink admission check", &e.sinkRejected)
	reg.RegisterGauge("sciera_traffic_active_flows", "flows currently emitting", &e.activeFlows)
	reg.RegisterHistogram("sciera_traffic_fct_ms", "flow completion time (virtual ms)", e.fct)
}

// Close detaches all conns.
func (e *Engine) Close() {
	for _, s := range e.srcs {
		if s.conn != nil {
			_ = s.conn.Close()
		}
	}
	for _, k := range e.sinks {
		if k.conn != nil {
			_ = k.conn.Close()
		}
	}
}
