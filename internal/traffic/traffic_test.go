package traffic

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"sciera/internal/addr"
	"sciera/internal/core"
	"sciera/internal/simnet"
	"sciera/internal/slayers"
	"sciera/internal/topology"
)

var (
	iaA = addr.MustParseIA("71-1")
	iaZ = addr.MustParseIA("71-2")
)

// testNet is the minimal load target: two core ASes, one circuit.
func testNet(t testing.TB) (*core.Network, *simnet.Sim) {
	t.Helper()
	topo := topology.New()
	for _, ia := range []addr.IA{iaA, iaZ} {
		if err := topo.AddAS(topology.ASInfo{IA: ia, Core: true}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := topo.AddLink(topology.LinkEnd{IA: iaA}, topology.LinkEnd{IA: iaZ}, topology.LinkCore, 1, ""); err != nil {
		t.Fatal(err)
	}
	sim := simnet.NewSim(time.Unix(1_700_000_000, 0))
	n, err := core.Build(topo, sim, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return n, sim
}

// TestPatchSeqMatchesReserialize proves the incremental-checksum seq
// stamp is exactly equivalent to re-serializing the packet with the new
// seq value: byte-identical output, and the router's checksum
// verification accepts it. This is what lets a flow serialize once and
// emit thousands of packets.
func TestPatchSeqMatchesReserialize(t *testing.T) {
	n, _ := testNet(t)
	e, err := New(n, Config{
		Pairs:       []Pair{{Src: iaA, Dst: iaZ}},
		ArrivalRate: 1,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	tmpl := &e.pairs[0].templates[0]
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		pl := tmpl.payload
		copy(pl[payloadMagicOff:], payloadMagic[:])
		binary.BigEndian.PutUint32(pl[payloadFlowOff:], rng.Uint32())
		binary.BigEndian.PutUint32(pl[payloadEndpointOff:], rng.Uint32())
		binary.BigEndian.PutUint32(pl[payloadTotalOff:], rng.Uint32())
		binary.BigEndian.PutUint64(pl[payloadArrivalOff:], rng.Uint64())
		seq0 := rng.Uint32()
		seq1 := rng.Uint32()

		binary.BigEndian.PutUint32(pl[payloadSeqOff:], seq0)
		tmpl.pkt.Payload = pl
		patched, err := tmpl.pkt.Serialize(nil)
		if err != nil {
			t.Fatal(err)
		}
		l4Off := int(binary.BigEndian.Uint16(patched[6:8]))
		patchSeq(patched, l4Off, seq1)

		binary.BigEndian.PutUint32(pl[payloadSeqOff:], seq1)
		direct, err := tmpl.pkt.Serialize(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(patched, direct) {
			t.Fatalf("trial %d: patched serialization differs from direct (seq %d -> %d)", trial, seq0, seq1)
		}
		if err := slayers.VerifyChecksum(patched); err != nil {
			t.Fatalf("trial %d: patched packet fails checksum: %v", trial, err)
		}
	}
}

func runEngine(t testing.TB, seed int64) (Stats, string, int) {
	t.Helper()
	n, sim := testNet(t)
	e, err := New(n, Config{
		Pairs:          []Pair{{Src: iaA, Dst: iaZ}, {Src: iaZ, Dst: iaA}},
		Endpoints:      1 << 16,
		ArrivalRate:    2000,
		FlowSizes:      Pareto{},
		PayloadBytes:   120,
		PacketInterval: 2 * time.Millisecond,
		Burst:          4,
		Seed:           seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Start(500 * time.Millisecond)
	sim.Run()
	return e.Stats(), fmt.Sprintf("%+v", e.FCT()), sim.PeakPending()
}

// TestEngineDrivesFlows checks the engine end-to-end on a lossless
// two-AS network: open-loop arrivals start flows, every injected packet
// crosses the data plane to the sink, and every flow completes with a
// measured FCT.
func TestEngineDrivesFlows(t *testing.T) {
	st, _, peak := runEngine(t, 42)
	if st.FlowsStarted < 500 {
		t.Fatalf("too few flows for a 500ms window at 2000/s x 2 pairs: %d", st.FlowsStarted)
	}
	if st.FlowsCompleted != st.FlowsStarted {
		t.Fatalf("flows completed %d != started %d on a lossless network", st.FlowsCompleted, st.FlowsStarted)
	}
	if st.ActiveFlows != 0 {
		t.Fatalf("active flows %d after full drain", st.ActiveFlows)
	}
	if st.PacketsDelivered != st.PacketsSent {
		t.Fatalf("packets delivered %d != sent %d on a lossless network", st.PacketsDelivered, st.PacketsSent)
	}
	if st.PacketsSent < st.FlowsStarted*2 {
		t.Fatalf("packet count %d implausibly low for %d flows (min size 2)", st.PacketsSent, st.FlowsStarted)
	}
	if st.EndpointsTouched < 400 || st.EndpointsTouched > int(st.FlowsStarted) {
		t.Fatalf("endpoints touched %d implausible for %d flows", st.EndpointsTouched, st.FlowsStarted)
	}
	if st.PeakActiveFlows < 10 {
		t.Fatalf("peak active flows %d: pacing should overlap flows", st.PeakActiveFlows)
	}
	if peak < st.PeakActiveFlows {
		t.Fatalf("sim peak pending %d below peak active flows %d: each active flow holds a pending event", peak, st.PeakActiveFlows)
	}
}

// TestEngineDeterministic: identical Config, identical everything —
// counters, endpoint coverage, the full FCT histogram.
func TestEngineDeterministic(t *testing.T) {
	s1, h1, p1 := runEngine(t, 42)
	s2, h2, p2 := runEngine(t, 42)
	if s1 != s2 {
		t.Fatalf("stats diverged across identical runs:\n  %+v\n  %+v", s1, s2)
	}
	if h1 != h2 {
		t.Fatalf("FCT histograms diverged:\n  %s\n  %s", h1, h2)
	}
	if p1 != p2 {
		t.Fatalf("peak pending diverged: %d vs %d", p1, p2)
	}
	s3, _, _ := runEngine(t, 43)
	if s3 == s1 {
		t.Fatal("different seeds produced identical stats: rng not wired through")
	}
}

// TestEngineIncompleteFlowsOnLoss drops a slice of packets via a lossy
// latency model and checks the engine attributes it: sent > delivered,
// and the partially-delivered flows stay visible as incomplete.
func TestEngineIncompleteFlowsOnLoss(t *testing.T) {
	n, sim := testNet(t)
	inner := sim.Latency
	drop := 0
	sim.Latency = func(from, to netip.AddrPort, size int, now time.Time) (time.Duration, bool) {
		d, ok := inner(from, to, size, now)
		if ok && size > 100 {
			drop++
			if drop%7 == 0 {
				return 0, false
			}
		}
		return d, ok
	}
	e, err := New(n, Config{
		Pairs:          []Pair{{Src: iaA, Dst: iaZ}},
		ArrivalRate:    1000,
		PayloadBytes:   120,
		PacketInterval: time.Millisecond,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Start(200 * time.Millisecond)
	sim.Run()
	st := e.Stats()
	if st.PacketsDelivered >= st.PacketsSent {
		t.Fatalf("loss model ineffective: delivered %d >= sent %d", st.PacketsDelivered, st.PacketsSent)
	}
	if st.FlowsCompleted >= st.FlowsStarted {
		t.Fatalf("every flow completed despite loss: %d/%d", st.FlowsCompleted, st.FlowsStarted)
	}
	if e.IncompleteFlows() == 0 {
		t.Fatal("no incomplete flows recorded despite loss")
	}
}
