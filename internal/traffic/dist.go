package traffic

import (
	"math"
	"math/rand"
)

// SizeDist draws flow sizes in packets. Implementations must be pure
// functions of the rng state so seeded runs are reproducible.
type SizeDist interface {
	// Sample returns a flow size in packets (>= 1).
	Sample(rng *rand.Rand) int
}

// Pareto is the canonical heavy-tailed flow-size distribution: most
// flows are mice of a few packets, a small fraction are elephants
// carrying most of the bytes. Shape alpha in (1, 2) reproduces the
// Internet's mass-in-the-tail regime (smaller alpha = heavier tail).
type Pareto struct {
	// Alpha is the tail index (default 1.3, the classic flow-size
	// estimate; must be > 0).
	Alpha float64
	// MinPackets is the scale (smallest flow; default 2).
	MinPackets int
	// MaxPackets truncates the tail so one astronomically large draw
	// cannot dominate a finite run (default 16384).
	MaxPackets int
}

func (p Pareto) Sample(rng *rand.Rand) int {
	alpha, lo, hi := p.Alpha, p.MinPackets, p.MaxPackets
	if alpha <= 0 {
		alpha = 1.3
	}
	if lo < 1 {
		lo = 2
	}
	if hi < lo {
		hi = 16384
	}
	// Inverse-CDF: X = lo * U^(-1/alpha), U in (0, 1].
	u := 1 - rng.Float64() // (0, 1]
	n := int(float64(lo) * math.Pow(u, -1/alpha))
	if n < lo {
		n = lo
	}
	if n > hi {
		n = hi
	}
	return n
}

// Lognormal flow sizes: exp(N(Mu, Sigma)). A lighter tail than Pareto;
// the usual fit for transaction-style workloads.
type Lognormal struct {
	// Mu, Sigma parameterize the underlying normal (defaults 2.0, 1.0
	// — median ~7 packets).
	Mu, Sigma float64
	// MaxPackets truncates the tail (default 16384).
	MaxPackets int
}

func (l Lognormal) Sample(rng *rand.Rand) int {
	mu, sigma, hi := l.Mu, l.Sigma, l.MaxPackets
	if sigma <= 0 {
		sigma = 1.0
	}
	if mu == 0 {
		mu = 2.0
	}
	if hi < 1 {
		hi = 16384
	}
	n := int(math.Exp(mu + sigma*rng.NormFloat64()))
	if n < 1 {
		n = 1
	}
	if n > hi {
		n = hi
	}
	return n
}

// expInterval draws a Poisson-process inter-arrival gap in seconds for
// the given rate (events/sec).
func expInterval(rng *rand.Rand, rate float64) float64 {
	u := 1 - rng.Float64() // (0, 1]: never log(0)
	return -math.Log(u) / rate
}
