package traffic_test

import (
	"math/rand"
	"testing"
	"time"

	"sciera/internal/addr"
	"sciera/internal/core"
	"sciera/internal/lightningfilter"
	"sciera/internal/simnet"
	"sciera/internal/topology"
	"sciera/internal/traffic"
)

var (
	loadA = addr.MustParseIA("71-1")
	loadZ = addr.MustParseIA("71-2")
)

// fixedSize removes size randomness where a test needs a predictable
// offered load.
type fixedSize struct{ n int }

func (f fixedSize) Sample(*rand.Rand) int { return f.n }

// loadNet builds a two-AS network whose single circuit has the given
// bandwidth cap in Mbps (0 = uncapped), returning the link ID for
// failure injection.
func loadNet(t testing.TB, mbps float64) (*core.Network, *simnet.Sim, int) {
	t.Helper()
	topo := topology.New()
	for _, ia := range []addr.IA{loadA, loadZ} {
		if err := topo.AddAS(topology.ASInfo{IA: ia, Core: true}); err != nil {
			t.Fatal(err)
		}
	}
	l, err := topo.AddLink(topology.LinkEnd{IA: loadA}, topology.LinkEnd{IA: loadZ}, topology.LinkCore, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if mbps > 0 {
		l.SetBandwidth(mbps)
	}
	sim := simnet.NewSim(time.Unix(1_700_000_000, 0))
	n, err := core.Build(topo, sim, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return n, sim, l.ID
}

// TestPerPathSaturation drives the engine against a 10 Mbps circuit at
// two offered loads: well under capacity and several times over it. The
// transmit-queue model must surface the overload as queueing delay —
// median flow completion time inflating by an order of magnitude — while
// the under-capacity run stays near the propagation floor. This is the
// per-path saturation experiment from the deployment paper's capacity
// planning, reproduced in the simulator.
func TestPerPathSaturation(t *testing.T) {
	run := func(rate float64) (median float64) {
		n, sim, _ := loadNet(t, 10)
		defer n.Close()
		e, err := traffic.New(n, traffic.Config{
			Pairs:          []traffic.Pair{{Src: loadA, Dst: loadZ}},
			ArrivalRate:    rate,
			FlowSizes:      fixedSize{16},
			PayloadBytes:   200,
			PacketInterval: time.Millisecond,
			Burst:          4,
			Seed:           11,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		e.Start(500 * time.Millisecond)
		sim.Run()
		st := e.Stats()
		if st.FlowsCompleted == 0 {
			t.Fatalf("no flows completed at rate %v", rate)
		}
		return e.FCT().Quantile(0.5)
	}

	light := run(50)   // ~1.3 Mbps offered
	heavy := run(3000) // ~77 Mbps offered into a 10 Mbps circuit
	if heavy < 5*light {
		t.Fatalf("saturation invisible: median FCT light=%.3fms heavy=%.3fms", light, heavy)
	}
}

// TestSCMPBackpressureOnLinkDown fails the only circuit mid-run: the
// border router must originate SCMP ExternalInterfaceDown toward the
// sources, and the engine's backpressure counters must attribute the
// loss to the downed link.
func TestSCMPBackpressureOnLinkDown(t *testing.T) {
	n, sim, linkID := loadNet(t, 0)
	defer n.Close()
	e, err := traffic.New(n, traffic.Config{
		Pairs:          []traffic.Pair{{Src: loadA, Dst: loadZ}},
		ArrivalRate:    1000,
		FlowSizes:      fixedSize{16},
		PayloadBytes:   120,
		PacketInterval: 2 * time.Millisecond,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Start(300 * time.Millisecond)
	sim.AfterFunc(150*time.Millisecond, func() {
		if err := n.SetLinkUp(linkID, false); err != nil {
			t.Errorf("SetLinkUp: %v", err)
		}
	})
	sim.Run()

	st := e.Stats()
	if st.PacketsDelivered >= st.PacketsSent {
		t.Fatalf("no loss despite downed circuit: sent=%d delivered=%d", st.PacketsSent, st.PacketsDelivered)
	}
	if st.SCMPBackpressure == 0 {
		t.Fatal("no SCMP backpressure recorded at the sources")
	}
	if st.SCMPLinkDown == 0 {
		t.Fatal("SCMP errors not attributed to the downed circuit")
	}
	if st.SCMPLinkDown > st.SCMPBackpressure {
		t.Fatalf("link-down count %d exceeds total backpressure %d", st.SCMPLinkDown, st.SCMPBackpressure)
	}
	// Open loop: arrivals before the horizon keep emitting into the
	// failure; the delivered half completed, the rest stay incomplete.
	if st.FlowsCompleted >= st.FlowsStarted {
		t.Fatal("every flow completed despite a downed circuit")
	}
}

// TestFilterRateLimitUnderLoad deploys a LightningFilter in front of
// the sink AS and pushes an authenticated open-loop load past its
// per-source packet budget. The filter must pass traffic up to the
// token-bucket rate and shed the excess as DropRateLimited — the
// behavior that protects a SCIERA site from a compromised peer — while
// everything it passes verifies (no unauthenticated drops: the engine
// seals every flow).
func TestFilterRateLimitUnderLoad(t *testing.T) {
	n, sim, _ := loadNet(t, 0)
	defer n.Close()

	master := []byte("ufms-drkey-master-secret")
	f, err := lightningfilter.New(lightningfilter.Config{
		Local:   loadZ,
		Master:  master,
		MaxAge:  time.Minute,
		RatePPS: 1000, // burst 2000: well under the ~4000 pps offered
		Now:     sim.Now,
	})
	if err != nil {
		t.Fatal(err)
	}

	e, err := traffic.New(n, traffic.Config{
		Pairs:          []traffic.Pair{{Src: loadA, Dst: loadZ}},
		ArrivalRate:    500,
		FlowSizes:      fixedSize{8},
		PayloadBytes:   120,
		PacketInterval: 2 * time.Millisecond,
		Seed:           17,
		Wrap: func(src addr.IA, at time.Time, inner []byte) []byte {
			body, err := lightningfilter.Seal(master, at, 3*time.Hour, src, inner)
			if err != nil {
				panic(err)
			}
			return body
		},
		Unwrap: func(payload []byte) ([]byte, bool) {
			_, inner, ok := lightningfilter.DecodeAuth(payload)
			return inner, ok
		},
		SinkCheck: func(raw []byte) bool {
			return f.CheckRaw(raw) == lightningfilter.Pass
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Start(time.Second)
	sim.Run()

	st := e.Stats()
	m := f.Metrics()
	if m.Passed.Load() == 0 {
		t.Fatal("filter passed nothing: sealing broken")
	}
	if m.RateLimited.Load() == 0 {
		t.Fatalf("filter never rate-limited at %d pps offered", st.PacketsSent)
	}
	if m.Unauthenticated.Load() != 0 || m.Unparseable.Load() != 0 || m.Expired.Load() != 0 {
		t.Fatalf("sealed traffic rejected for the wrong reason: %d unauth, %d unparseable, %d expired",
			m.Unauthenticated.Load(), m.Unparseable.Load(), m.Expired.Load())
	}
	if st.SinkRejected != m.RateLimited.Load() {
		t.Fatalf("engine rejected %d != filter rate-limited %d", st.SinkRejected, m.RateLimited.Load())
	}
	if st.PacketsDelivered+st.SinkRejected != st.PacketsSent {
		t.Fatalf("accounting leak: delivered %d + rejected %d != sent %d",
			st.PacketsDelivered, st.SinkRejected, st.PacketsSent)
	}
	if st.FlowsCompleted >= st.FlowsStarted {
		t.Fatal("rate-limited flows still all completed")
	}
	if e.IncompleteFlows() == 0 {
		t.Fatal("shed packets left no incomplete flows")
	}
}

// TestEngineDeterministicUnderFilter re-runs the filtered workload and
// demands identical shed/pass accounting: the admission pipeline must
// not introduce nondeterminism.
func TestEngineDeterministicUnderFilter(t *testing.T) {
	run := func() traffic.Stats {
		n, sim, _ := loadNet(t, 0)
		defer n.Close()
		master := []byte("ufms-drkey-master-secret")
		f, err := lightningfilter.New(lightningfilter.Config{
			Local: loadZ, Master: master, MaxAge: time.Minute, RatePPS: 1000, Now: sim.Now,
		})
		if err != nil {
			t.Fatal(err)
		}
		e, err := traffic.New(n, traffic.Config{
			Pairs:          []traffic.Pair{{Src: loadA, Dst: loadZ}},
			ArrivalRate:    500,
			FlowSizes:      fixedSize{8},
			PayloadBytes:   120,
			PacketInterval: 2 * time.Millisecond,
			Seed:           17,
			Wrap: func(src addr.IA, at time.Time, inner []byte) []byte {
				body, err := lightningfilter.Seal(master, at, 3*time.Hour, src, inner)
				if err != nil {
					panic(err)
				}
				return body
			},
			Unwrap: func(payload []byte) ([]byte, bool) {
				_, inner, ok := lightningfilter.DecodeAuth(payload)
				return inner, ok
			},
			SinkCheck: func(raw []byte) bool {
				return f.CheckRaw(raw) == lightningfilter.Pass
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		e.Start(400 * time.Millisecond)
		sim.Run()
		return e.Stats()
	}
	if s1, s2 := run(), run(); s1 != s2 {
		t.Fatalf("filtered runs diverged:\n  %+v\n  %+v", s1, s2)
	}
}
