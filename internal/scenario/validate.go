package scenario

import (
	"fmt"

	"sciera/internal/addr"
)

// Validate checks a normalized scenario for structural soundness and
// returns a descriptive error for the first violation found. The
// loader runs it on every path into the package (files, builtins,
// generated scenarios), so downstream code can assume: unique IAs,
// unique non-empty link names, links between known ASes, core links
// between core ASes, a connected SCION graph in which every non-core AS
// is down-reachable from the core, at least one core AS per ISD, a
// vantage set (≥2, all known), and incidents that target known base
// links with sane windows.
func (s *Scenario) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("scenario %q: unsupported version %d (want %d)", s.Name, s.Version, Version)
	}
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if len(s.ASes) == 0 {
		return fmt.Errorf("scenario %q: no ASes", s.Name)
	}

	byIA := make(map[addr.IA]AS, len(s.ASes))
	coreISDs := make(map[addr.ISD]bool)
	allISDs := make(map[addr.ISD]bool)
	for _, a := range s.ASes {
		if a.Name == "" {
			return fmt.Errorf("scenario %q: AS %s: missing name", s.Name, a.IA)
		}
		if _, dup := byIA[a.IA]; dup {
			return fmt.Errorf("scenario %q: duplicate AS %s", s.Name, a.IA)
		}
		byIA[a.IA] = a
		allISDs[a.IA.ISD()] = true
		if a.Core {
			coreISDs[a.IA.ISD()] = true
		}
		if a.Joined != "" {
			if _, ok := a.JoinedTime(); !ok {
				return fmt.Errorf("scenario %q: AS %s: bad joined date %q (want YYYY-MM)", s.Name, a.IA, a.Joined)
			}
		}
	}
	for isd := range allISDs {
		if !coreISDs[isd] {
			return fmt.Errorf("scenario %q: ISD %d has no core AS", s.Name, isd)
		}
	}

	if len(s.Links) == 0 {
		return fmt.Errorf("scenario %q: no links", s.Name)
	}
	linkNames := make(map[string]bool, len(s.Links))
	checkLink := func(l Link, runtimeLink bool) error {
		if l.Name == "" {
			return fmt.Errorf("scenario %q: link %s~%s: missing name", s.Name, l.A, l.B)
		}
		if linkNames[l.Name] {
			return fmt.Errorf("scenario %q: duplicate link name %q", s.Name, l.Name)
		}
		linkNames[l.Name] = true
		a, okA := byIA[l.A]
		b, okB := byIA[l.B]
		if !okA {
			return fmt.Errorf("scenario %q: link %q: unknown AS %s", s.Name, l.Name, l.A)
		}
		if !okB {
			return fmt.Errorf("scenario %q: link %q: unknown AS %s", s.Name, l.Name, l.B)
		}
		if l.A == l.B {
			return fmt.Errorf("scenario %q: link %q: self-loop on %s", s.Name, l.Name, l.A)
		}
		switch l.Type {
		case LinkCore:
			if !a.Core || !b.Core {
				return fmt.Errorf("scenario %q: core link %q between non-core ASes (%s core=%v, %s core=%v)",
					s.Name, l.Name, l.A, a.Core, l.B, b.Core)
			}
		case LinkParent:
			if b.Core {
				return fmt.Errorf("scenario %q: parent link %q: child %s is a core AS", s.Name, l.Name, l.B)
			}
		case LinkPeer:
		default:
			return fmt.Errorf("scenario %q: link %q: unknown type %q", s.Name, l.Name, l.Type)
		}
		if l.LatencyMS <= 0 {
			return fmt.Errorf("scenario %q: link %q: non-positive latency %g ms", s.Name, l.Name, l.LatencyMS)
		}
		return nil
	}
	for _, l := range s.Links {
		if err := checkLink(l, false); err != nil {
			return err
		}
	}
	for _, nl := range s.NewLinks {
		if err := checkLink(nl.Link, true); err != nil {
			return err
		}
		if nl.ActivateHours < 0 {
			return fmt.Errorf("scenario %q: new link %q: negative activation %g h", s.Name, nl.Name, nl.ActivateHours)
		}
	}

	if err := s.checkConnectivity(byIA); err != nil {
		return err
	}

	if len(s.Vantage) < 2 {
		return fmt.Errorf("scenario %q: need at least 2 vantage ASes, have %d", s.Name, len(s.Vantage))
	}
	checkSubset := func(what string, ias []addr.IA) error {
		seen := make(map[addr.IA]bool, len(ias))
		for _, ia := range ias {
			if _, ok := byIA[ia]; !ok {
				return fmt.Errorf("scenario %q: %s AS %s not in scenario", s.Name, what, ia)
			}
			if seen[ia] {
				return fmt.Errorf("scenario %q: duplicate %s AS %s", s.Name, what, ia)
			}
			seen[ia] = true
		}
		return nil
	}
	if err := checkSubset("vantage", s.Vantage); err != nil {
		return err
	}
	if err := checkSubset("heatmap", s.Heatmap); err != nil {
		return err
	}
	if err := checkSubset("quick-vantage", s.Campaign.QuickVantage); err != nil {
		return err
	}

	if s.Campaign.Days <= 0 {
		return fmt.Errorf("scenario %q: campaign days must be positive, got %d", s.Name, s.Campaign.Days)
	}
	if s.Campaign.QuickDays > s.Campaign.Days {
		return fmt.Errorf("scenario %q: quick days %d exceed campaign days %d", s.Name, s.Campaign.QuickDays, s.Campaign.Days)
	}

	// Incidents may only target base links: a new link's outage window
	// would race its activation event.
	baseNames := make(map[string]bool, len(s.Links))
	for _, l := range s.Links {
		baseNames[l.Name] = true
	}
	for _, inc := range s.Incidents {
		if inc.Name == "" {
			return fmt.Errorf("scenario %q: incident with no name", s.Name)
		}
		if len(inc.Links) == 0 {
			return fmt.Errorf("scenario %q: incident %q targets no links", s.Name, inc.Name)
		}
		for _, ln := range inc.Links {
			if !baseNames[ln] {
				return fmt.Errorf("scenario %q: incident %q targets unknown link %q", s.Name, inc.Name, ln)
			}
		}
		if inc.StartHours < 0 {
			return fmt.Errorf("scenario %q: incident %q: negative start %g h", s.Name, inc.Name, inc.StartHours)
		}
		if inc.DurationHours <= 0 {
			return fmt.Errorf("scenario %q: incident %q: non-positive duration %g h", s.Name, inc.Name, inc.DurationHours)
		}
		if inc.FlapPeriodHours > 0 && inc.FlapDowntimeHours >= inc.FlapPeriodHours {
			return fmt.Errorf("scenario %q: incident %q: flap downtime %g h must be shorter than period %g h",
				s.Name, inc.Name, inc.FlapDowntimeHours, inc.FlapPeriodHours)
		}
	}

	if p := s.IPPlane; p != nil {
		if err := s.validateIPPlane(p, byIA); err != nil {
			return err
		}
	}

	if t := s.Traffic; t != nil {
		if len(t.Pairs) == 0 {
			return fmt.Errorf("scenario %q: traffic section with no pairs", s.Name)
		}
		for _, pr := range t.Pairs {
			if _, ok := byIA[pr.Src]; !ok {
				return fmt.Errorf("scenario %q: traffic pair source %s not in scenario", s.Name, pr.Src)
			}
			if _, ok := byIA[pr.Dst]; !ok {
				return fmt.Errorf("scenario %q: traffic pair destination %s not in scenario", s.Name, pr.Dst)
			}
		}
		if t.EndpointsPerSource <= 0 || t.ArrivalRatePerPair <= 0 || t.FlowPackets <= 0 ||
			t.PayloadBytes <= 0 || t.PacketIntervalMS <= 0 || t.HorizonMS <= 0 {
			return fmt.Errorf("scenario %q: traffic parameters must be positive", s.Name)
		}
	}
	return nil
}

// checkConnectivity verifies the SCION graph is connected (treating
// links as undirected) and that every non-core AS is reachable from
// some core AS walking parent links downward — the beaconing reach
// condition: an AS outside that set never learns a path.
func (s *Scenario) checkConnectivity(byIA map[addr.IA]AS) error {
	adj := make(map[addr.IA][]addr.IA, len(s.ASes))
	down := make(map[addr.IA][]addr.IA, len(s.ASes))
	for _, l := range s.Links {
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
		if l.Type == LinkParent {
			down[l.A] = append(down[l.A], l.B)
		}
	}

	visited := make(map[addr.IA]bool, len(s.ASes))
	queue := []addr.IA{s.ASes[0].IA}
	visited[s.ASes[0].IA] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range adj[cur] {
			if !visited[next] {
				visited[next] = true
				queue = append(queue, next)
			}
		}
	}
	if len(visited) != len(s.ASes) {
		var missing addr.IA
		for _, a := range s.ASes {
			if !visited[a.IA] {
				missing = a.IA
				break
			}
		}
		return fmt.Errorf("scenario %q: graph is disconnected: %s unreachable from %s (%d of %d ASes reachable)",
			s.Name, missing, s.ASes[0].IA, len(visited), len(s.ASes))
	}

	reached := make(map[addr.IA]bool, len(s.ASes))
	queue = queue[:0]
	for _, a := range s.ASes {
		if a.Core {
			reached[a.IA] = true
			queue = append(queue, a.IA)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, child := range down[cur] {
			if !reached[child] {
				reached[child] = true
				queue = append(queue, child)
			}
		}
	}
	for _, a := range s.ASes {
		if !reached[a.IA] {
			return fmt.Errorf("scenario %q: AS %s has no parent chain to a core AS (beacons cannot reach it)",
				s.Name, a.IA)
		}
	}
	_ = byIA
	return nil
}

func (s *Scenario) validateIPPlane(p *IPPlane, byIA map[addr.IA]AS) error {
	if len(p.Hubs) == 0 {
		return fmt.Errorf("scenario %q: IP plane with no hubs", s.Name)
	}
	hubNames := make(map[string]bool, len(p.Hubs))
	hubIAs := make(map[addr.IA]bool, len(p.Hubs))
	for _, h := range p.Hubs {
		if h.Name == "" {
			return fmt.Errorf("scenario %q: IP hub with no name", s.Name)
		}
		if hubNames[h.Name] {
			return fmt.Errorf("scenario %q: duplicate IP hub %q", s.Name, h.Name)
		}
		hubNames[h.Name] = true
		if hubIAs[h.IA] {
			return fmt.Errorf("scenario %q: duplicate IP hub IA %s", s.Name, h.IA)
		}
		hubIAs[h.IA] = true
		if _, clash := byIA[h.IA]; clash {
			return fmt.Errorf("scenario %q: IP hub %q IA %s collides with a scenario AS", s.Name, h.Name, h.IA)
		}
	}
	hubAdj := make(map[string][]string, len(p.Hubs))
	for _, e := range p.Edges {
		if !hubNames[e.A] {
			return fmt.Errorf("scenario %q: IP edge references unknown hub %q", s.Name, e.A)
		}
		if !hubNames[e.B] {
			return fmt.Errorf("scenario %q: IP edge references unknown hub %q", s.Name, e.B)
		}
		if e.Detour <= 0 {
			return fmt.Errorf("scenario %q: IP edge %s-%s: detour must be positive", s.Name, e.A, e.B)
		}
		hubAdj[e.A] = append(hubAdj[e.A], e.B)
		hubAdj[e.B] = append(hubAdj[e.B], e.A)
	}
	if len(p.Hubs) > 1 {
		seen := map[string]bool{p.Hubs[0].Name: true}
		queue := []string{p.Hubs[0].Name}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, next := range hubAdj[cur] {
				if !seen[next] {
					seen[next] = true
					queue = append(queue, next)
				}
			}
		}
		if len(seen) != len(p.Hubs) {
			return fmt.Errorf("scenario %q: IP hub trunk graph is disconnected (%d of %d hubs reachable)",
				s.Name, len(seen), len(p.Hubs))
		}
	}
	return nil
}
