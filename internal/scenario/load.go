package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Load reads a scenario from JSON, fills defaults, resolves derived
// latencies, and validates it. Unknown fields are errors — a typoed
// knob must not silently become a default.
func Load(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	if err := Finish(&s); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile loads and validates a scenario from a file on disk.
func LoadFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	s, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return s, nil
}

// Finish normalizes and validates a programmatically constructed
// scenario in place — the same pipeline Load applies to JSON input.
func Finish(s *Scenario) error {
	if err := s.normalize(); err != nil {
		return err
	}
	return s.Validate()
}

// Canonical serializes the scenario as canonical JSON: fixed field
// order (struct order), two-space indentation, trailing newline. Two
// scenarios are identical iff their canonical bytes are — the
// generator's determinism contract and -scenario-dump both rest on it.
func (s *Scenario) Canonical() ([]byte, error) {
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// Resolve turns a -scenario argument into a loaded, validated scenario.
// Three forms, tried in order: a registered builtin name ("sciera"), a
// generator spec ("gen:ases=210,isds=3,seed=1"), or a path to a
// scenario JSON file.
func Resolve(arg string) (*Scenario, error) {
	if arg == "" {
		arg = "sciera"
	}
	if s, ok := Builtin(arg); ok {
		return s, nil
	}
	if strings.HasPrefix(arg, "gen:") || arg == "gen" {
		spec, err := ParseGenName(arg)
		if err != nil {
			return nil, err
		}
		return Generate(spec)
	}
	if _, err := os.Stat(arg); err != nil {
		return nil, fmt.Errorf("scenario: %q is not a builtin (%s), a gen: spec, or a readable file",
			arg, strings.Join(BuiltinNames(), ", "))
	}
	return LoadFile(arg)
}

// RoundTrip proves a scenario survives serialization: its canonical
// dump reloads to the same canonical bytes. Used by tests and by
// scenario-check tooling.
func RoundTrip(s *Scenario) error {
	buf, err := s.Canonical()
	if err != nil {
		return err
	}
	s2, err := Load(bytes.NewReader(buf))
	if err != nil {
		return fmt.Errorf("scenario %q: canonical dump does not reload: %w", s.Name, err)
	}
	buf2, err := s2.Canonical()
	if err != nil {
		return err
	}
	if !bytes.Equal(buf, buf2) {
		return fmt.Errorf("scenario %q: canonical serialization is not a fixed point", s.Name)
	}
	return nil
}
