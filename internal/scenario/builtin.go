package scenario

import (
	"fmt"
	"sort"
	"sync"

	"sciera/internal/addr"
)

// The builtin registry follows the database/sql driver pattern:
// packages that own a reference deployment (internal/sciera) register a
// constructor from init(), and consumers blank-import them. The
// registry hands out a fresh scenario per call — scenarios are mutable
// documents and callers must not share one.

var (
	builtinMu  sync.Mutex
	builtins   = map[string]func() (*Scenario, error){}
	builtinOrd []string
)

// Register installs a named builtin scenario constructor. The
// constructor returns an unnormalized scenario; the registry finishes
// it (normalize + validate) on every lookup. Register panics on a
// duplicate name — that is a programming error, not an input error.
func Register(name string, build func() (*Scenario, error)) {
	builtinMu.Lock()
	defer builtinMu.Unlock()
	if _, dup := builtins[name]; dup {
		panic(fmt.Sprintf("scenario: builtin %q registered twice", name))
	}
	builtins[name] = build
	builtinOrd = append(builtinOrd, name)
}

// Builtin returns a freshly built, validated builtin scenario.
func Builtin(name string) (*Scenario, bool) {
	builtinMu.Lock()
	build, ok := builtins[name]
	builtinMu.Unlock()
	if !ok {
		return nil, false
	}
	s, err := build()
	if err != nil {
		panic(fmt.Sprintf("scenario: builtin %q failed to build: %v", name, err))
	}
	if err := Finish(s); err != nil {
		panic(fmt.Sprintf("scenario: builtin %q failed validation: %v", name, err))
	}
	return s, true
}

// MustBuiltin returns a builtin scenario or panics.
func MustBuiltin(name string) *Scenario {
	s, ok := Builtin(name)
	if !ok {
		panic(fmt.Sprintf("scenario: no builtin %q", name))
	}
	return s
}

// BuiltinNames lists the registered builtin names, sorted.
func BuiltinNames() []string {
	builtinMu.Lock()
	defer builtinMu.Unlock()
	names := append([]string(nil), builtinOrd...)
	sort.Strings(names)
	return names
}

func init() {
	Register("loadbench", loadbenchScenario)
}

// loadbenchScenario is the two-AS core pair cmd/loadbench historically
// hard-coded: a single 1 ms circuit carrying the million-endpoint
// open-loop workload in both directions.
func loadbenchScenario() (*Scenario, error) {
	iaA := addr.MustParseIA("71-1")
	iaZ := addr.MustParseIA("71-2")
	return &Scenario{
		Version:     Version,
		Name:        "loadbench",
		Description: "Two-AS core pair for million-endpoint traffic-engine benchmarks.",
		ASes: []AS{
			{Name: "src", IA: iaA, Core: true, Role: "core"},
			{Name: "dst", IA: iaZ, Core: true, Role: "core"},
		},
		Links: []Link{
			{Name: "src-dst", A: iaA, B: iaZ, Type: LinkCore, LatencyMS: 1},
		},
		Vantage:  []addr.IA{iaA, iaZ},
		Campaign: Campaign{Days: 1, IntervalMinutes: 10, StartUnix: 1_700_000_000},
		Traffic: &Traffic{
			Pairs:              []TrafficPair{{Src: iaA, Dst: iaZ}, {Src: iaZ, Dst: iaA}},
			EndpointsPerSource: 1 << 20,
			ArrivalRatePerPair: 45_000,
			FlowPackets:        128,
			PayloadBytes:       200,
			PacketIntervalMS:   100,
			Burst:              4,
			HorizonMS:          1500,
			IntraASDelayUS:     1,
			Seed:               42,
		},
	}, nil
}
