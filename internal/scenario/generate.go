package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"sciera/internal/addr"
)

// GenSpec parameterizes the synthetic multi-ISD topology generator.
// The zero value of any field means "default". Generation is a pure
// function of the spec: the same spec yields a byte-identical canonical
// scenario, which is what makes generated topologies shareable by name
// ("gen:ases=210,isds=3,seed=1") instead of by file.
type GenSpec struct {
	Seed int64
	// ISDs is the number of isolation domains (default 3).
	ISDs int
	// ASes is the total AS count across all ISDs (default 210).
	ASes int
	// CoresPerISD sizes each ISD's core clique (default 4).
	CoresPerISD int
	// VantagePerISD is how many measurement vantage ASes each ISD
	// contributes — its first core, transit, and leaf, in that order
	// (default 3, max 3).
	VantagePerISD int
	// Incidents is how many scheduled outages to synthesize on core
	// circuits (default 4).
	Incidents int
	// Days is the campaign length (default 1 — synthetic topologies are
	// for breadth, not for reproducing the 20-day paper run).
	Days int
}

func (g GenSpec) withDefaults() GenSpec {
	if g.ISDs == 0 {
		g.ISDs = 3
	}
	if g.ASes == 0 {
		g.ASes = 210
	}
	if g.CoresPerISD == 0 {
		g.CoresPerISD = 4
	}
	if g.VantagePerISD == 0 {
		g.VantagePerISD = 3
	}
	if g.VantagePerISD > 3 {
		g.VantagePerISD = 3
	}
	if g.Incidents == 0 {
		g.Incidents = 4
	}
	if g.Days == 0 {
		g.Days = 1
	}
	return g
}

// Name is the deterministic scenario name for this spec.
func (g GenSpec) Name() string {
	g = g.withDefaults()
	return fmt.Sprintf("gen-isds%d-ases%d-seed%d", g.ISDs, g.ASes, g.Seed)
}

// ParseGenName parses a "gen:key=value,..." scenario argument into a
// GenSpec. Keys: seed, isds, ases, cores, vantage, incidents, days.
// "gen" alone yields the default spec.
func ParseGenName(arg string) (GenSpec, error) {
	var g GenSpec
	body := strings.TrimPrefix(arg, "gen")
	body = strings.TrimPrefix(body, ":")
	if body == "" {
		return g, nil
	}
	for _, kv := range strings.Split(body, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return g, fmt.Errorf("scenario: gen spec %q: %q is not key=value", arg, kv)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return g, fmt.Errorf("scenario: gen spec %q: bad value for %q: %v", arg, key, err)
		}
		switch key {
		case "seed":
			g.Seed = n
		case "isds":
			g.ISDs = int(n)
		case "ases":
			g.ASes = int(n)
		case "cores":
			g.CoresPerISD = int(n)
		case "vantage":
			g.VantagePerISD = int(n)
		case "incidents":
			g.Incidents = int(n)
		case "days":
			g.Days = int(n)
		default:
			return g, fmt.Errorf("scenario: gen spec %q: unknown key %q (want seed/isds/ases/cores/vantage/incidents/days)", arg, key)
		}
	}
	return g, nil
}

// round2 keeps generated coordinates at two decimals so canonical JSON
// never carries float noise.
func round2(x float64) float64 { return math.Round(x*100) / 100 }

// Generate synthesizes a validated multi-ISD scenario: one core clique
// per ISD, two parallel inter-ISD circuits between adjacent ISDs on a
// ring, a transit tier dual-homed to the cores, leaves hanging off one
// or two transits, geo-derived latencies from generated coordinates,
// vantage/heatmap sets, a synthetic incident schedule on core circuits,
// one mid-campaign circuit, and an IP baseline plane with one hub per
// ISD. Same spec ⇒ byte-identical scenario.
func Generate(spec GenSpec) (*Scenario, error) {
	g := spec.withDefaults()
	if g.ISDs < 1 {
		return nil, fmt.Errorf("scenario: gen: need at least 1 ISD, got %d", g.ISDs)
	}
	minASes := g.ISDs * (g.CoresPerISD + 3)
	if g.ASes < minASes {
		return nil, fmt.Errorf("scenario: gen: %d ASes cannot fill %d ISDs with %d cores + transit + leaf tiers each (need >= %d)",
			g.ASes, g.ISDs, g.CoresPerISD, minASes)
	}
	if g.CoresPerISD < 2 {
		return nil, fmt.Errorf("scenario: gen: need at least 2 cores per ISD, got %d", g.CoresPerISD)
	}
	rng := rand.New(rand.NewSource(g.Seed))

	s := &Scenario{
		Version: Version,
		Name:    g.Name(),
		Description: fmt.Sprintf("Synthetic %d-ISD / %d-AS topology (seed %d): core cliques, dual-homed transit tier, leaf attachment, geo-derived latencies.",
			g.ISDs, g.ASes, g.Seed),
		Campaign: Campaign{
			Days:                 g.Days,
			IntervalMinutes:      10,
			QuickDays:            1,
			QuickIntervalMinutes: 30,
			// Synthetic graphs have far more path diversity than the
			// 28-site deployment; a tight beacon store keeps the
			// path-set (and campaign cost) bounded.
			BestPerOrigin: 4,
		},
	}

	// Per-ISD AS budget: split the total evenly, remainder to the
	// earliest ISDs.
	type isdPlan struct {
		num              uint16
		cores            []addr.IA
		transits         []addr.IA
		leaves           []addr.IA
		ctrLat, ctrLon   float64
		coreN, transN, n int
	}
	plans := make([]*isdPlan, g.ISDs)
	for i := range plans {
		n := g.ASes / g.ISDs
		if i < g.ASes%g.ISDs {
			n++
		}
		transN := (n - g.CoresPerISD) / 6
		if transN < 2 {
			transN = 2
		}
		// ISD centers march around the globe, one longitude sector per
		// ISD, with a seeded latitude band.
		plans[i] = &isdPlan{
			num:    uint16(10 + i),
			n:      n,
			coreN:  g.CoresPerISD,
			transN: transN,
			ctrLat: round2(rng.Float64()*100 - 50),
			ctrLon: round2(-180 + 360*(float64(i)+0.5)/float64(g.ISDs)),
		}
	}

	jitter := func(ctr, spread float64) float64 { return round2(ctr + (rng.Float64()*2-1)*spread) }
	clampLat := func(lat float64) float64 {
		if lat > 85 {
			return 85
		}
		if lat < -85 {
			return -85
		}
		return lat
	}

	// Synthesized deployment metadata: the timeline figure wants joined
	// dates and per-kind efforts even on synthetic graphs.
	joinIdx := 0
	joined := func() string {
		m := joinIdx % 42 // 3.5 years of rollout
		joinIdx++
		return fmt.Sprintf("%04d-%02d", 2022+m/12, 1+m%12)
	}

	for _, p := range plans {
		asn := 1
		addAS := func(role string, spread, effortBase float64, kind string) addr.IA {
			ia := addr.MustParseIA(fmt.Sprintf("%d-%d", p.num, asn))
			s.ASes = append(s.ASes, AS{
				Name:   fmt.Sprintf("%s%d-%d", role, p.num, asn),
				IA:     ia,
				Core:   role == "core",
				Role:   role,
				Region: fmt.Sprintf("R%d", p.num),
				Lat:    clampLat(jitter(p.ctrLat, spread)),
				Lon:    jitter(p.ctrLon, spread),
				Joined: joined(),
				Effort: effortBase + float64(rng.Intn(3)),
				Kind:   kind,
			})
			asn++
			return ia
		}
		for c := 0; c < p.coreN; c++ {
			p.cores = append(p.cores, addAS("core", 3, 7, "core-backbone"))
		}
		for t := 0; t < p.transN; t++ {
			p.transits = append(p.transits, addAS("transit", 8, 4, "nren-attach"))
		}
		for l := 0; l < p.n-p.coreN-p.transN; l++ {
			kind := "leaf-vlan"
			if rng.Intn(2) == 1 {
				kind = "leaf-new-vlan"
			}
			p.leaves = append(p.leaves, addAS("leaf", 15, 1, kind))
		}
	}

	// Core clique within each ISD.
	for _, p := range plans {
		for i := 0; i < len(p.cores); i++ {
			for j := i + 1; j < len(p.cores); j++ {
				s.Links = append(s.Links, Link{
					Name: fmt.Sprintf("core:%d:%d-%d", p.num, i, j),
					A:    p.cores[i], B: p.cores[j], Type: LinkCore,
				})
			}
		}
	}
	// Inter-ISD ring: two parallel circuits between adjacent ISDs.
	if g.ISDs > 1 {
		for i := range plans {
			j := (i + 1) % g.ISDs
			if g.ISDs == 2 && i == 1 {
				break // avoid doubling the single ring edge
			}
			for k := 0; k < 2; k++ {
				s.Links = append(s.Links, Link{
					Name: fmt.Sprintf("xisd:%d-%d:%d", plans[i].num, plans[j].num, k),
					A:    plans[i].cores[k], B: plans[j].cores[k], Type: LinkCore,
				})
			}
		}
	}
	// Transit tier: each transit dual-homes to two distinct cores of
	// its ISD.
	for _, p := range plans {
		for t, ia := range p.transits {
			first := rng.Intn(len(p.cores))
			second := (first + 1 + rng.Intn(len(p.cores)-1)) % len(p.cores)
			for k, c := range []int{first, second} {
				s.Links = append(s.Links, Link{
					Name: fmt.Sprintf("tr:%d-%d:%d", p.num, t, k),
					A:    p.cores[c], B: ia, Type: LinkParent,
				})
			}
		}
	}
	// Leaf attachment: one or two parent circuits into the transit
	// tier.
	for _, p := range plans {
		for l, ia := range p.leaves {
			homes := 1 + rng.Intn(2)
			first := rng.Intn(len(p.transits))
			parents := []int{first}
			if homes == 2 {
				parents = append(parents, (first+1+rng.Intn(len(p.transits)-1))%len(p.transits))
			}
			for k, tr := range parents {
				s.Links = append(s.Links, Link{
					Name: fmt.Sprintf("leaf:%d-%d:%d", p.num, l, k),
					A:    p.transits[tr], B: ia, Type: LinkParent,
				})
			}
		}
	}

	// Vantage: each ISD contributes its first core, transit, and leaf —
	// a cross-tier cross-ISD measurement mesh.
	for _, p := range plans {
		cand := []addr.IA{p.cores[0], p.transits[0]}
		if len(p.leaves) > 0 {
			cand = append(cand, p.leaves[0])
		}
		if len(cand) > g.VantagePerISD {
			cand = cand[:g.VantagePerISD]
		}
		s.Vantage = append(s.Vantage, cand...)
	}

	// Incident schedule: outages across the intra-ISD core circuits,
	// every other one flapping, staggered through the campaign.
	coreLinkNames := []string{}
	for _, l := range s.Links {
		if strings.HasPrefix(l.Name, "core:") {
			coreLinkNames = append(coreLinkNames, l.Name)
		}
	}
	horizon := float64(g.Days) * 24
	for i := 0; i < g.Incidents && len(coreLinkNames) > 0; i++ {
		target := coreLinkNames[rng.Intn(len(coreLinkNames))]
		inc := Incident{
			Name:          fmt.Sprintf("outage-%d", i+1),
			Links:         []string{target},
			StartHours:    round2(horizon * (float64(i) + 0.25) / float64(g.Incidents+1)),
			DurationHours: round2(0.5 + rng.Float64()*2),
		}
		if i%2 == 1 {
			inc.FlapPeriodHours = 0.5
			inc.FlapDowntimeHours = 0.2
		}
		s.Incidents = append(s.Incidents, inc)
	}

	// One circuit provisioned mid-campaign: an extra inter-ISD (or
	// intra-clique) core circuit lighting up at the halfway mark.
	nlA, nlB := plans[0].cores[len(plans[0].cores)-1], plans[len(plans)-1].cores[len(plans[len(plans)-1].cores)-1]
	if nlA == nlB {
		nlB = plans[0].cores[0]
	}
	s.NewLinks = append(s.NewLinks, NewLink{
		Link:          Link{Name: "newcircuit-1", A: nlA, B: nlB, Type: LinkCore, ExtraMS: 0.5},
		ActivateHours: horizon / 2,
	})

	// IP baseline: one transit hub per ISD center, hubs on a ring, the
	// first ISD's region dual-homes.
	plane := &IPPlane{}
	for i, p := range plans {
		plane.Hubs = append(plane.Hubs, IPHub{
			Name: fmt.Sprintf("hub%d", i+1),
			IA:   addr.MustParseIA(fmt.Sprintf("1-%d", i+1)),
			Lat:  p.ctrLat, Lon: p.ctrLon,
		})
	}
	if g.ISDs > 1 {
		for i := range plans {
			j := (i + 1) % g.ISDs
			if g.ISDs == 2 && i == 1 {
				break
			}
			plane.Edges = append(plane.Edges, IPEdge{A: plane.Hubs[i].Name, B: plane.Hubs[j].Name, Detour: 1.2})
		}
	}
	plane.DualHomeRegions = []string{fmt.Sprintf("R%d", plans[0].num)}
	s.IPPlane = plane

	// Traffic: a bidirectional open-loop load between the first two
	// vantage ASes, sized for smoke runs.
	s.Traffic = &Traffic{
		Pairs: []TrafficPair{
			{Src: s.Vantage[0], Dst: s.Vantage[1]},
			{Src: s.Vantage[1], Dst: s.Vantage[0]},
		},
		EndpointsPerSource: 1 << 16,
		ArrivalRatePerPair: 2_000,
		FlowPackets:        32,
		PayloadBytes:       200,
		PacketIntervalMS:   100,
		Burst:              4,
		HorizonMS:          300,
		IntraASDelayUS:     1,
		Seed:               42,
	}

	if err := Finish(s); err != nil {
		return nil, fmt.Errorf("scenario: generated scenario invalid (spec %+v): %w", g, err)
	}
	return s, nil
}
