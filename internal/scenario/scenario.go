// Package scenario turns the repository's evaluation into data: a
// versioned, loadable description of everything a campaign or load run
// needs — the AS-level topology (with ISD membership, core/transit/leaf
// roles and PoP coordinates), the typed links between ASes (with
// explicit or geodesically derived latencies), the measurement vantage
// set, the incident schedule, the commercial-Internet baseline plane,
// and the traffic-engine parameters. Scenarios come from three sources,
// all funneled through the same strict loader: built-in registrations
// (the SCIERA reference deployment registers itself from
// internal/sciera), scenario JSON files on disk, and the seeded
// deterministic generator for synthetic multi-ISD topologies of
// hundreds of ASes (generate.go). Every consumer — the experiment
// suite, cmd/experiments, cmd/loadbench, cmd/multiping — runs unchanged
// on any validated scenario, which is what turns the single paper
// reproduction into a benchmark suite.
package scenario

import (
	"fmt"
	"time"

	"sciera/internal/addr"
	"sciera/internal/topology"
)

// Version is the scenario schema version this package reads and writes.
const Version = 1

// Scenario is one complete, self-contained experiment description.
// A zero LatencyMS on a link means "derive from coordinates" — the
// loader resolves it during normalization, so a validated scenario
// always carries explicit latencies (and its canonical dump is fully
// resolved and diffable).
type Scenario struct {
	Version     int    `json:"version"`
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	ASes     []AS      `json:"ases"`
	Links    []Link    `json:"links"`
	NewLinks []NewLink `json:"new_links,omitempty"`

	// Vantage lists the ASes running the measurement tool; campaigns
	// probe every ordered vantage pair in this exact order (the
	// canonical AllPairs enumeration and its Seq numbering derive from
	// it, so order is semantic, not cosmetic).
	Vantage []addr.IA `json:"vantage"`
	// Heatmap is the AS subset of the per-pair matrix figures
	// (Figures 8/9); defaults to the first nine vantage ASes.
	Heatmap []addr.IA `json:"heatmap,omitempty"`

	Incidents []Incident `json:"incidents,omitempty"`
	Campaign  Campaign   `json:"campaign"`
	Traffic   *Traffic   `json:"traffic,omitempty"`
	IPPlane   *IPPlane   `json:"ip_plane,omitempty"`
	PoPs      []PoP      `json:"pops,omitempty"`
}

// AS is one autonomous system of the scenario.
type AS struct {
	Name string  `json:"name"`
	IA   addr.IA `json:"ia"`
	Core bool    `json:"core,omitempty"`
	// Role classifies the AS for generators and readers: "core",
	// "transit" or "leaf". Informational — the control plane derives
	// behaviour from Core and the link types.
	Role string `json:"role,omitempty"`
	// Region labels the deployment region ("EU", "NA", ...); the IP
	// plane's dual-homing rule keys on it.
	Region string  `json:"region,omitempty"`
	Lat    float64 `json:"lat"`
	Lon    float64 `json:"lon"`
	// Commercial marks commercial providers (research networks must not
	// carry transit between two commercial parties).
	Commercial bool `json:"commercial,omitempty"`

	// Joined ("YYYY-MM") dates the AS's deployment for the timeline
	// figure; empty when unknown.
	Joined string `json:"joined,omitempty"`
	// Effort is the relative deployment-effort estimate (1..10).
	Effort float64 `json:"effort,omitempty"`
	// Kind classifies the deployment for the learning-curve model
	// ("core-backbone", "nren-attach", "leaf-vlan", "leaf-new-vlan").
	Kind string `json:"kind,omitempty"`
}

// JoinedTime parses the Joined month; deployments date to the 15th.
func (a AS) JoinedTime() (time.Time, bool) {
	if a.Joined == "" {
		return time.Time{}, false
	}
	t, err := time.Parse("2006-01", a.Joined)
	if err != nil {
		return time.Time{}, false
	}
	return time.Date(t.Year(), t.Month(), 15, 0, 0, 0, 0, time.UTC), true
}

// Link types as scenario strings.
const (
	LinkCore   = "core"
	LinkParent = "parent"
	LinkPeer   = "peer"
)

// Link is one circuit between two ASes. For parent links, A is the
// parent (provider).
type Link struct {
	Name string  `json:"name"`
	A    addr.IA `json:"a"`
	B    addr.IA `json:"b"`
	Type string  `json:"type"`
	// LatencyMS is the one-way propagation delay. Zero in an input
	// scenario means "derive from the endpoint coordinates": geodesic
	// latency times the cable-detour factor, plus ExtraMS, floored at
	// 0.3 ms of equipment latency.
	LatencyMS float64 `json:"latency_ms,omitempty"`
	// ExtraMS adds cable-detour latency beyond the geodesic estimate.
	ExtraMS float64 `json:"extra_ms,omitempty"`
	// Detour overrides the default cable-detour factor (0 = default:
	// 1.25 for core circuits, 1.6 for last-mile circuits).
	Detour float64 `json:"detour,omitempty"`
	// BandwidthMbps caps the circuit (0 = unconstrained).
	BandwidthMbps float64 `json:"bandwidth_mbps,omitempty"`
}

// RuntimeLinkType maps a scenario link-type string to the topology
// type, for consumers wiring NewLinks as held-down runtime links.
func RuntimeLinkType(s string) (topology.LinkType, error) { return linkType(s) }

// linkType maps the scenario string to the topology type.
func linkType(s string) (topology.LinkType, error) {
	switch s {
	case LinkCore:
		return topology.LinkCore, nil
	case LinkParent:
		return topology.LinkParent, nil
	case LinkPeer:
		return topology.LinkPeer, nil
	default:
		return 0, fmt.Errorf("scenario: unknown link type %q", s)
	}
}

// NewLink is a circuit provisioned mid-campaign: built into the
// topology, held down, and brought up at its activation time. Runtime
// circuits ride provisioned waves, so a zero LatencyMS derives as the
// plain geodesic plus ExtraMS (no detour factor, no floor) — matching
// the reference run's semantics.
type NewLink struct {
	Link
	ActivateHours float64 `json:"activate_hours"`
}

// Activate is the activation offset into the campaign.
func (n NewLink) Activate() time.Duration { return hours(n.ActivateHours) }

// Incident is one scheduled operational event: the named links go down
// at Start for Duration, either solidly or flapping with the given
// period/downtime.
type Incident struct {
	Name  string   `json:"name"`
	Links []string `json:"links"`
	// StartHours offsets the incident from campaign start.
	StartHours    float64 `json:"start_hours"`
	DurationHours float64 `json:"duration_hours"`
	// FlapPeriodHours cycles the outage (0: solid outage for the whole
	// duration)...
	FlapPeriodHours float64 `json:"flap_period_hours,omitempty"`
	// ...staying down for FlapDowntimeHours at the start of each cycle
	// (0: half the period).
	FlapDowntimeHours float64 `json:"flap_downtime_hours,omitempty"`
}

// Start is the incident's offset into the campaign.
func (i Incident) Start() time.Duration { return hours(i.StartHours) }

// Duration is the incident's total window length.
func (i Incident) Duration() time.Duration { return hours(i.DurationHours) }

// FlapPeriod is the flap cycle length (0: solid outage).
func (i Incident) FlapPeriod() time.Duration { return hours(i.FlapPeriodHours) }

// FlapDowntime is the down window at the start of each flap cycle.
func (i Incident) FlapDowntime() time.Duration { return hours(i.FlapDowntimeHours) }

// hours converts a float64 hour count exactly for integral inputs.
func hours(h float64) time.Duration { return time.Duration(h * float64(time.Hour)) }

// Campaign holds the measurement-campaign parameters.
type Campaign struct {
	// Days is the measurement window length.
	Days int `json:"days"`
	// IntervalMinutes is the measurement round interval.
	IntervalMinutes float64 `json:"interval_minutes"`
	// QuickDays / QuickIntervalMinutes / QuickVantage shrink the
	// campaign for fast runs (tests, smoke checks). Defaults: two days
	// (capped at Days), twice the interval, the first six vantage ASes.
	QuickDays            int       `json:"quick_days,omitempty"`
	QuickIntervalMinutes float64   `json:"quick_interval_minutes,omitempty"`
	QuickVantage         []addr.IA `json:"quick_vantage,omitempty"`
	// BestPerOrigin bounds beacon stores (default 16). Large synthetic
	// topologies lower it to bound path-set explosion.
	BestPerOrigin int `json:"best_per_origin,omitempty"`
	// StartUnix is the simulation epoch (default 1737000000 —
	// mid-January, paper time).
	StartUnix int64 `json:"start_unix,omitempty"`
}

// Duration is the full campaign length.
func (c Campaign) Duration() time.Duration { return time.Duration(c.Days) * 24 * time.Hour }

// Interval is the full-campaign measurement round interval.
func (c Campaign) Interval() time.Duration {
	return time.Duration(c.IntervalMinutes * float64(time.Minute))
}

// QuickDuration is the reduced-scale campaign length.
func (c Campaign) QuickDuration() time.Duration {
	return time.Duration(c.QuickDays) * 24 * time.Hour
}

// QuickInterval is the reduced-scale round interval.
func (c Campaign) QuickInterval() time.Duration {
	return time.Duration(c.QuickIntervalMinutes * float64(time.Minute))
}

// Start is the simulation epoch.
func (c Campaign) Start() time.Time { return time.Unix(c.StartUnix, 0) }

// TrafficPair is one directed load relation.
type TrafficPair struct {
	Src addr.IA `json:"src"`
	Dst addr.IA `json:"dst"`
}

// Traffic parameterizes the flow-level traffic engine (cmd/loadbench).
type Traffic struct {
	Pairs              []TrafficPair `json:"pairs"`
	EndpointsPerSource int           `json:"endpoints_per_source"`
	ArrivalRatePerPair float64       `json:"arrival_rate_per_pair"`
	FlowPackets        int           `json:"flow_packets"`
	PayloadBytes       int           `json:"payload_bytes"`
	PacketIntervalMS   float64       `json:"packet_interval_ms"`
	Burst              int           `json:"burst"`
	HorizonMS          float64       `json:"horizon_ms"`
	// IntraASDelayUS is the simulated one-way delay between AS-internal
	// endpoints, in microseconds.
	IntraASDelayUS float64 `json:"intra_as_delay_us,omitempty"`
	Seed           int64   `json:"seed,omitempty"`
}

// IPPlane describes the commercial-Internet baseline: sites attach to
// their nearest transit hubs, the hubs form a sparse trunk graph with
// policy-detour inflation, and the BGP route is hop-count minimal.
type IPPlane struct {
	Hubs  []IPHub  `json:"hubs"`
	Edges []IPEdge `json:"edges"`
	// DualHomeRegions lists regions whose sites attach to their two
	// nearest hubs; sites elsewhere single-home.
	DualHomeRegions []string `json:"dual_home_regions,omitempty"`
	// AccessDetour and AccessExtraMS shape the site-to-hub last mile
	// (defaults 1.03 and 0.3: IXP-dense, near-geodesic).
	AccessDetour  float64 `json:"access_detour,omitempty"`
	AccessExtraMS float64 `json:"access_extra_ms,omitempty"`
	// PerHopMS is the per-hop forwarding cost of the RTT model
	// (default 0.15).
	PerHopMS float64 `json:"per_hop_ms,omitempty"`
}

// IPHub is one commercial transit hub.
type IPHub struct {
	Name string  `json:"name"`
	IA   addr.IA `json:"ia"`
	Lat  float64 `json:"lat"`
	Lon  float64 `json:"lon"`
}

// IPEdge is one hub-hub trunk; Detour inflates the geodesic.
type IPEdge struct {
	A      string  `json:"a"`
	B      string  `json:"b"`
	Detour float64 `json:"detour"`
}

// PoP is one point of presence (the Table 1 inventory).
type PoP struct {
	Location        string   `json:"location"`
	PeeringNRENs    []string `json:"peering_nrens"`
	PartnerNetworks []string `json:"partner_networks,omitempty"`
}

// ASByIA returns the scenario AS for an IA.
func (s *Scenario) ASByIA(target addr.IA) (AS, bool) {
	for _, a := range s.ASes {
		if a.IA == target {
			return a, true
		}
	}
	return AS{}, false
}

// ASName resolves an IA to its scenario name, falling back to the IA
// string.
func (s *Scenario) ASName(target addr.IA) string {
	if a, ok := s.ASByIA(target); ok {
		return a.Name
	}
	return target.String()
}

// QuickVantage returns the reduced-scale vantage set.
func (s *Scenario) QuickVantage() []addr.IA {
	if len(s.Campaign.QuickVantage) > 0 {
		return s.Campaign.QuickVantage
	}
	n := len(s.Vantage)
	if n > 6 {
		n = 6
	}
	return s.Vantage[:n]
}

// normalize fills defaults and resolves derived latencies in place. It
// is idempotent: normalizing an already-normalized scenario changes
// nothing, so canonical dumps reload byte-identically.
func (s *Scenario) normalize() error {
	if s.Campaign.BestPerOrigin == 0 {
		s.Campaign.BestPerOrigin = 16
	}
	if s.Campaign.IntervalMinutes == 0 {
		s.Campaign.IntervalMinutes = 5
	}
	if s.Campaign.QuickDays == 0 {
		s.Campaign.QuickDays = 2
		if s.Campaign.Days < 2 {
			s.Campaign.QuickDays = s.Campaign.Days
		}
	}
	if s.Campaign.QuickIntervalMinutes == 0 {
		s.Campaign.QuickIntervalMinutes = 2 * s.Campaign.IntervalMinutes
	}
	if len(s.Campaign.QuickVantage) == 0 {
		s.Campaign.QuickVantage = append([]addr.IA(nil), s.QuickVantage()...)
	}
	if s.Campaign.StartUnix == 0 {
		s.Campaign.StartUnix = 1_737_000_000
	}
	if len(s.Heatmap) == 0 {
		n := len(s.Vantage)
		if n > 9 {
			n = 9
		}
		s.Heatmap = append([]addr.IA(nil), s.Vantage[:n]...)
	}
	if p := s.IPPlane; p != nil {
		if p.AccessDetour == 0 {
			p.AccessDetour = 1.03
		}
		if p.AccessExtraMS == 0 {
			p.AccessExtraMS = 0.3
		}
		if p.PerHopMS == 0 {
			p.PerHopMS = 0.15
		}
	}
	for i := range s.Links {
		if err := s.resolveLatency(&s.Links[i], false); err != nil {
			return err
		}
	}
	for i := range s.NewLinks {
		if err := s.resolveLatency(&s.NewLinks[i].Link, true); err != nil {
			return err
		}
	}
	return nil
}

// resolveLatency fills a link's LatencyMS from the endpoint coordinates
// when it is not explicit. Academic L2 circuits detour through NREN PoPs
// rather than following geodesics: core circuits ride shared backbones
// (mild detour), last-mile circuits hairpin through exchange points
// (stronger detour). Runtime links (mid-campaign provisioning) ride the
// plain geodesic plus ExtraMS.
func (s *Scenario) resolveLatency(l *Link, runtimeLink bool) error {
	if l.LatencyMS != 0 {
		return nil
	}
	a, okA := s.ASByIA(l.A)
	b, okB := s.ASByIA(l.B)
	if !okA || !okB {
		return fmt.Errorf("scenario: link %q references unknown AS", l.Name)
	}
	if runtimeLink {
		l.LatencyMS = topology.GeoLatencyMS(a.Lat, a.Lon, b.Lat, b.Lon) + l.ExtraMS
		return nil
	}
	detour := 1.25
	if l.Type != LinkCore {
		detour = 1.6
	}
	if l.Detour > 0 {
		detour = l.Detour
	}
	lat := topology.GeoLatencyMS(a.Lat, a.Lon, b.Lat, b.Lon)*detour + l.ExtraMS
	if lat < 0.3 {
		lat = 0.3 // metro circuits still have equipment latency
	}
	l.LatencyMS = lat
	return nil
}

// Build constructs the SCION-plane topology of the scenario. NewLinks
// are not included — campaigns add them as held-down runtime links.
func (s *Scenario) Build() (*topology.Topology, error) {
	topo := topology.New()
	for _, a := range s.ASes {
		if err := topo.AddAS(topology.ASInfo{
			IA: a.IA, Core: a.Core, Name: a.Name, Lat: a.Lat, Lon: a.Lon,
			Commercial: a.Commercial,
		}); err != nil {
			return nil, err
		}
	}
	for _, l := range s.Links {
		t, err := linkType(l.Type)
		if err != nil {
			return nil, fmt.Errorf("scenario: link %q: %w", l.Name, err)
		}
		tl, err := topo.AddLink(
			topology.LinkEnd{IA: l.A}, topology.LinkEnd{IA: l.B},
			t, l.LatencyMS, l.Name,
		)
		if err != nil {
			return nil, fmt.Errorf("scenario: link %q: %w", l.Name, err)
		}
		if l.BandwidthMbps > 0 {
			tl.SetBandwidth(l.BandwidthMbps)
		}
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	return topo, nil
}

// BuildIPPlane constructs the commercial-Internet baseline topology
// over the scenario's sites. Returns an error when the scenario has no
// IP plane (campaign figures need one; pure load scenarios do not).
func (s *Scenario) BuildIPPlane() (*topology.Topology, error) {
	p := s.IPPlane
	if p == nil {
		return nil, fmt.Errorf("scenario %q: no IP plane (campaigns need the IP baseline)", s.Name)
	}
	topo := topology.New()
	for _, h := range p.Hubs {
		if err := topo.AddAS(topology.ASInfo{IA: h.IA, Core: true, Name: "transit-" + h.Name, Lat: h.Lat, Lon: h.Lon}); err != nil {
			return nil, err
		}
	}
	for _, a := range s.ASes {
		if err := topo.AddAS(topology.ASInfo{IA: a.IA, Name: a.Name, Lat: a.Lat, Lon: a.Lon}); err != nil {
			return nil, err
		}
	}
	hubByName := make(map[string]IPHub, len(p.Hubs))
	for _, h := range p.Hubs {
		hubByName[h.Name] = h
	}
	for _, e := range p.Edges {
		a, b := hubByName[e.A], hubByName[e.B]
		lat := topology.GeoLatencyMS(a.Lat, a.Lon, b.Lat, b.Lon) * e.Detour
		if _, err := topo.AddLink(
			topology.LinkEnd{IA: a.IA}, topology.LinkEnd{IA: b.IA},
			topology.LinkCore, lat, fmt.Sprintf("ip:%s-%s", a.Name, b.Name),
		); err != nil {
			return nil, err
		}
	}
	dual := make(map[string]bool, len(p.DualHomeRegions))
	for _, r := range p.DualHomeRegions {
		dual[r] = true
	}
	// Sites in dense transit markets dual-home; sites elsewhere reach
	// the world through their single nearest hub.
	for _, a := range s.ASes {
		homes := 1
		if dual[a.Region] {
			homes = 2
		}
		type cand struct {
			hub IPHub
			lat float64
		}
		best := []cand{}
		for _, h := range p.Hubs {
			l := topology.GeoLatencyMS(a.Lat, a.Lon, h.Lat, h.Lon)
			best = append(best, cand{h, l})
		}
		// Selection sort of the nearest hubs.
		for k := 0; k < homes && k < len(best); k++ {
			minIdx := k
			for m := k + 1; m < len(best); m++ {
				if best[m].lat < best[minIdx].lat {
					minIdx = m
				}
			}
			best[k], best[minIdx] = best[minIdx], best[k]
			access := best[k].lat*p.AccessDetour + p.AccessExtraMS
			if _, err := topo.AddLink(
				topology.LinkEnd{IA: best[k].hub.IA}, topology.LinkEnd{IA: a.IA},
				topology.LinkParent, access, fmt.Sprintf("ip:%s-%s", best[k].hub.Name, a.Name),
			); err != nil {
				return nil, err
			}
		}
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	return topo, nil
}

// IPRTTms computes the BGP-routed round-trip time between two sites on
// the scenario's IP plane, in milliseconds, including per-hop
// forwarding cost. It returns +Inf when unreachable.
func (s *Scenario) IPRTTms(ipTopo *topology.Topology, src, dst addr.IA) float64 {
	perHop := 0.15
	if s.IPPlane != nil && s.IPPlane.PerHopMS > 0 {
		perHop = s.IPPlane.PerHopMS
	}
	r := ipTopo.ShortestRoute(src, dst, topology.BGPWeight)
	return r.RTT(perHop)
}
