package scenario

import (
	"strings"
	"testing"

	"sciera/internal/addr"
)

// tiny returns a minimal valid scenario for mutation tests: two cores,
// one transit, one leaf, in one ISD.
func tiny() *Scenario {
	c1 := addr.MustParseIA("5-1")
	c2 := addr.MustParseIA("5-2")
	tr := addr.MustParseIA("5-3")
	lf := addr.MustParseIA("5-4")
	return &Scenario{
		Version: Version,
		Name:    "tiny",
		ASes: []AS{
			{Name: "c1", IA: c1, Core: true, Lat: 47.38, Lon: 8.54},
			{Name: "c2", IA: c2, Core: true, Lat: 52.37, Lon: 4.90},
			{Name: "tr", IA: tr, Lat: 48.86, Lon: 2.35},
			{Name: "lf", IA: lf, Lat: 46.95, Lon: 7.45},
		},
		Links: []Link{
			{Name: "c1-c2", A: c1, B: c2, Type: LinkCore},
			{Name: "c1-tr", A: c1, B: tr, Type: LinkParent},
			{Name: "tr-lf", A: tr, B: lf, Type: LinkParent},
		},
		Vantage:  []addr.IA{c1, lf},
		Campaign: Campaign{Days: 2, IntervalMinutes: 5},
	}
}

func TestTinyValid(t *testing.T) {
	s := tiny()
	if err := Finish(s); err != nil {
		t.Fatalf("tiny scenario invalid: %v", err)
	}
	// Normalization resolved every latency.
	for _, l := range s.Links {
		if l.LatencyMS <= 0 {
			t.Errorf("link %q latency not resolved: %g", l.Name, l.LatencyMS)
		}
	}
	if err := RoundTrip(s); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	topo, err := s.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if got := len(topo.ASes()); got != 4 {
		t.Errorf("built topology has %d ASes, want 4", got)
	}
}

// mutate applies f to a fresh tiny scenario and asserts Finish rejects
// it with an error mentioning want.
func mutate(t *testing.T, want string, f func(*Scenario)) {
	t.Helper()
	s := tiny()
	f(s)
	err := Finish(s)
	if err == nil {
		t.Fatalf("scenario accepted, want error containing %q", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

func TestValidateRejects(t *testing.T) {
	lf := addr.MustParseIA("5-4")
	island := addr.MustParseIA("5-99")

	t.Run("disconnected graph", func(t *testing.T) {
		mutate(t, "disconnected", func(s *Scenario) {
			s.ASes = append(s.ASes, AS{Name: "island", IA: island, Lat: 1, Lon: 1})
		})
	})
	t.Run("duplicate link name", func(t *testing.T) {
		mutate(t, "duplicate link name", func(s *Scenario) {
			s.Links = append(s.Links, Link{Name: "c1-c2", A: s.ASes[0].IA, B: s.ASes[1].IA, Type: LinkCore})
		})
	})
	t.Run("incident targets unknown link", func(t *testing.T) {
		mutate(t, "unknown link", func(s *Scenario) {
			s.Incidents = append(s.Incidents, Incident{Name: "ghost", Links: []string{"no-such"}, StartHours: 1, DurationHours: 1})
		})
	})
	t.Run("duplicate IA", func(t *testing.T) {
		mutate(t, "duplicate AS", func(s *Scenario) {
			s.ASes = append(s.ASes, AS{Name: "dup", IA: lf, Lat: 1, Lon: 1})
		})
	})
	t.Run("core link to non-core", func(t *testing.T) {
		mutate(t, "core link", func(s *Scenario) {
			s.Links = append(s.Links, Link{Name: "bad-core", A: s.ASes[0].IA, B: lf, Type: LinkCore})
		})
	})
	t.Run("no parent chain to core", func(t *testing.T) {
		mutate(t, "no parent chain", func(s *Scenario) {
			// Peer link keeps the graph connected but beacons can't
			// descend over it.
			s.Links[2].Type = LinkPeer
		})
	})
	t.Run("unknown link endpoint", func(t *testing.T) {
		mutate(t, "unknown AS", func(s *Scenario) {
			s.Links = append(s.Links, Link{Name: "dangling", A: s.ASes[0].IA, B: island, Type: LinkParent})
		})
	})
	t.Run("vantage not in scenario", func(t *testing.T) {
		mutate(t, "not in scenario", func(s *Scenario) {
			s.Vantage = append(s.Vantage, island)
		})
	})
	t.Run("flap downtime exceeds period", func(t *testing.T) {
		mutate(t, "flap downtime", func(s *Scenario) {
			s.Incidents = append(s.Incidents, Incident{
				Name: "bad-flap", Links: []string{"c1-c2"},
				StartHours: 1, DurationHours: 2,
				FlapPeriodHours: 0.5, FlapDowntimeHours: 0.5,
			})
		})
	})
	t.Run("isd without core", func(t *testing.T) {
		mutate(t, "no core AS", func(s *Scenario) {
			other := addr.MustParseIA("9-1")
			s.ASes = append(s.ASes, AS{Name: "lost", IA: other, Lat: 1, Lon: 1})
			s.Links = append(s.Links, Link{Name: "to-lost", A: s.ASes[2].IA, B: other, Type: LinkParent})
		})
	})
	t.Run("bad version", func(t *testing.T) {
		mutate(t, "unsupported version", func(s *Scenario) { s.Version = 99 })
	})
	t.Run("self loop", func(t *testing.T) {
		mutate(t, "self-loop", func(s *Scenario) {
			s.Links = append(s.Links, Link{Name: "loop", A: s.ASes[0].IA, B: s.ASes[0].IA, Type: LinkCore})
		})
	})
	t.Run("single vantage", func(t *testing.T) {
		mutate(t, "vantage", func(s *Scenario) { s.Vantage = s.Vantage[:1] })
	})
}

func TestLoadRejectsUnknownField(t *testing.T) {
	_, err := Load(strings.NewReader(`{"version":1,"name":"x","typo_field":true}`))
	if err == nil || !strings.Contains(err.Error(), "typo_field") {
		t.Fatalf("unknown field not rejected: %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	_, err := Load(strings.NewReader(`{not json`))
	if err == nil {
		t.Fatal("garbage input accepted")
	}
}

func TestBuiltinRegistry(t *testing.T) {
	names := BuiltinNames()
	found := false
	for _, n := range names {
		if n == "loadbench" {
			found = true
		}
	}
	if !found {
		t.Fatalf("loadbench builtin not registered: %v", names)
	}
	s := MustBuiltin("loadbench")
	if s.Traffic == nil || s.Traffic.EndpointsPerSource != 1<<20 {
		t.Fatalf("loadbench traffic defaults wrong: %+v", s.Traffic)
	}
	// The registry hands out fresh copies: mutating one must not leak.
	s.Name = "mutated"
	if MustBuiltin("loadbench").Name != "loadbench" {
		t.Fatal("builtin scenario shared between lookups")
	}
}

func TestResolveErrors(t *testing.T) {
	if _, err := Resolve("no-such-scenario"); err == nil {
		t.Fatal("unknown scenario name accepted")
	}
	if _, err := Resolve("gen:bogus=1"); err == nil {
		t.Fatal("unknown gen key accepted")
	}
	if _, err := Resolve("gen:ases"); err == nil {
		t.Fatal("malformed gen kv accepted")
	}
}

func TestQuickDefaults(t *testing.T) {
	s := tiny()
	if err := Finish(s); err != nil {
		t.Fatal(err)
	}
	if s.Campaign.QuickDays != 2 {
		t.Errorf("quick days = %d, want campaign-capped 2", s.Campaign.QuickDays)
	}
	if s.Campaign.QuickIntervalMinutes != 10 {
		t.Errorf("quick interval = %g, want doubled 10", s.Campaign.QuickIntervalMinutes)
	}
	if len(s.Campaign.QuickVantage) != 2 || len(s.Heatmap) != 2 {
		t.Errorf("quick vantage/heatmap defaults wrong: %v / %v", s.Campaign.QuickVantage, s.Heatmap)
	}
	if s.Campaign.BestPerOrigin != 16 {
		t.Errorf("best-per-origin default = %d, want 16", s.Campaign.BestPerOrigin)
	}
}
