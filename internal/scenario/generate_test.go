package scenario

import (
	"bytes"
	"testing"

	"sciera/internal/addr"
)

func TestGenerateSeedDeterminism(t *testing.T) {
	spec := GenSpec{Seed: 7, ISDs: 3, ASes: 60}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := a.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Fatal("same seed produced different scenarios")
	}

	c, err := Generate(GenSpec{Seed: 8, ISDs: 3, ASes: 60})
	if err != nil {
		t.Fatal(err)
	}
	cc, err := c.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ca, cc) {
		t.Fatal("different seeds produced identical scenarios")
	}
}

func TestGenerateDefaultSpecScale(t *testing.T) {
	s, err := Generate(GenSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.ASes) < 200 {
		t.Errorf("default spec generated %d ASes, want >= 200", len(s.ASes))
	}
	isds := map[addr.ISD]bool{}
	for _, a := range s.ASes {
		isds[a.IA.ISD()] = true
	}
	if len(isds) < 3 {
		t.Errorf("default spec generated %d ISDs, want >= 3", len(isds))
	}
	if len(s.Vantage) < 6 {
		t.Errorf("only %d vantage ASes", len(s.Vantage))
	}
	if len(s.Incidents) == 0 || len(s.NewLinks) == 0 {
		t.Error("default spec missing incidents or mid-campaign links")
	}
	if s.IPPlane == nil || s.Traffic == nil {
		t.Error("default spec missing IP plane or traffic section")
	}
	if err := RoundTrip(s); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if _, err := s.Build(); err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, err := s.BuildIPPlane(); err != nil {
		t.Fatalf("build IP plane: %v", err)
	}
}

func TestGenerateSmallAndSingleISD(t *testing.T) {
	for _, spec := range []GenSpec{
		{Seed: 3, ISDs: 1, ASes: 10, CoresPerISD: 2},
		{Seed: 3, ISDs: 2, ASes: 16},
		{Seed: 9, ISDs: 5, ASes: 300},
	} {
		s, err := Generate(spec)
		if err != nil {
			t.Fatalf("spec %+v: %v", spec, err)
		}
		if len(s.ASes) != spec.ASes {
			t.Errorf("spec %+v: generated %d ASes", spec, len(s.ASes))
		}
	}
}

func TestGenerateRejectsImpossibleSpecs(t *testing.T) {
	if _, err := Generate(GenSpec{Seed: 1, ISDs: 3, ASes: 9}); err == nil {
		t.Error("undersized spec accepted")
	}
	if _, err := Generate(GenSpec{Seed: 1, ISDs: -1}); err == nil {
		t.Error("negative ISD count accepted")
	}
	if _, err := Generate(GenSpec{Seed: 1, CoresPerISD: 1, ASes: 30}); err == nil {
		t.Error("single-core clique accepted")
	}
}

func TestParseGenName(t *testing.T) {
	g, err := ParseGenName("gen:ases=200,isds=4,seed=7,cores=3,vantage=2,incidents=6,days=2")
	if err != nil {
		t.Fatal(err)
	}
	want := GenSpec{Seed: 7, ISDs: 4, ASes: 200, CoresPerISD: 3, VantagePerISD: 2, Incidents: 6, Days: 2}
	if g != want {
		t.Fatalf("parsed %+v, want %+v", g, want)
	}
	if g, err := ParseGenName("gen"); err != nil || g != (GenSpec{}) {
		t.Fatalf("bare gen: %+v, %v", g, err)
	}
	if _, err := ParseGenName("gen:seed=x"); err == nil {
		t.Error("non-numeric value accepted")
	}
	if _, err := ParseGenName("gen:nope=1"); err == nil {
		t.Error("unknown key accepted")
	}
}

func TestResolveGen(t *testing.T) {
	s, err := Resolve("gen:isds=2,ases=16,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "gen-isds2-ases16-seed5" {
		t.Errorf("resolved name %q", s.Name)
	}
}
