// Package benchutil holds small helpers shared by the benchmark
// commands (campaignbench, controlbench, loadbench).
package benchutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts CPU profiling to cpuPath (when non-empty) and
// returns a stop function that finishes the CPU profile and writes a
// heap profile to memPath (when non-empty). Call the stop function
// before process exit — benches os.Exit on failure paths, so call it
// explicitly rather than deferring past an Exit.
func StartProfiles(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("benchutil: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("benchutil: cpu profile: %w", err)
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("benchutil: heap profile: %w", err)
			}
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("benchutil: heap profile: %w", err)
			}
			return f.Close()
		}
		return nil
	}, nil
}
