package shttp_test

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"sciera/internal/addr"
	"sciera/internal/core"
	"sciera/internal/pan"
	"sciera/internal/shttp"
	"sciera/internal/simnet"
	"sciera/internal/topology"
)

var (
	c1 = addr.MustParseIA("71-1")
	lA = addr.MustParseIA("71-10")
	lB = addr.MustParseIA("71-11")
)

func buildNet(t testing.TB, sim *simnet.Sim) *core.Network {
	t.Helper()
	topo := topology.New()
	if err := topo.AddAS(topology.ASInfo{IA: c1, Core: true}); err != nil {
		t.Fatal(err)
	}
	for _, ia := range []addr.IA{lA, lB} {
		if err := topo.AddAS(topology.ASInfo{IA: ia}); err != nil {
			t.Fatal(err)
		}
	}
	for _, leaf := range []addr.IA{lA, lB} {
		if _, err := topo.AddLink(topology.LinkEnd{IA: c1}, topology.LinkEnd{IA: leaf}, topology.LinkParent, 5, ""); err != nil {
			t.Fatal(err)
		}
	}
	n, err := core.Build(topo, sim, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func live(sim *simnet.Sim) func() {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); sim.RunLive(stop) }()
	return func() { close(stop); <-done }
}

func setup(t *testing.T) (*pan.Host, *pan.Host, func()) {
	t.Helper()
	sim := simnet.NewSim(time.Now())
	n := buildNet(t, sim)
	stop := live(sim)
	dA, err := n.NewDaemon(lA)
	if err != nil {
		t.Fatal(err)
	}
	dB, err := n.NewDaemon(lB)
	if err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		stop()
		n.Close()
	}
	return pan.WithDaemon(sim, dA), pan.WithDaemon(sim, dB), cleanup
}

func TestGETAcrossASes(t *testing.T) {
	hA, hB, cleanup := setup(t)
	defer cleanup()

	mux := http.NewServeMux()
	mux.HandleFunc("/hello", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "hello from %s", lB)
	})
	srv, err := shttp.Serve(hB, 443, mux)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &http.Client{Transport: shttp.NewTransport(hA, nil)}
	url := "http://" + shttp.MangleSCIONAddrURL(srv.Addr().String()) + "/hello"
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if string(body) != "hello from "+lB.String() {
		t.Errorf("body = %q", body)
	}
}

func TestPOSTWithBodyAndStatus(t *testing.T) {
	hA, hB, cleanup := setup(t)
	defer cleanup()

	mux := http.NewServeMux()
	mux.HandleFunc("/upload", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "nope", http.StatusMethodNotAllowed)
			return
		}
		b, _ := io.ReadAll(r.Body)
		w.WriteHeader(http.StatusCreated)
		fmt.Fprintf(w, "got %d bytes", len(b))
	})
	srv, err := shttp.Serve(hB, 0, mux)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &http.Client{Transport: shttp.NewTransport(hA, pan.Fastest{})}
	payload := strings.Repeat("x", 40_000) // forces fragmentation
	resp, err := client.Post("http://"+shttp.MangleSCIONAddrURL(srv.Addr().String())+"/upload",
		"text/plain", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Errorf("status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "got 40000 bytes" {
		t.Errorf("body = %q", body)
	}
}

func TestNotFoundAndRemoteAddr(t *testing.T) {
	hA, hB, cleanup := setup(t)
	defer cleanup()

	var remote string
	mux := http.NewServeMux()
	mux.HandleFunc("/whoami", func(w http.ResponseWriter, r *http.Request) {
		remote = r.RemoteAddr
	})
	srv, err := shttp.Serve(hB, 0, mux)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &http.Client{Transport: shttp.NewTransport(hA, nil)}
	base := "http://" + shttp.MangleSCIONAddrURL(srv.Addr().String())
	resp, err := client.Get(base + "/whoami")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.HasPrefix(remote, lA.String()+",") {
		t.Errorf("RemoteAddr = %q", remote)
	}
	resp, err = client.Get(base + "/missing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestParseSCIONHost(t *testing.T) {
	want := addr.MustParseUDPAddr("71-2:0:3b,10.0.0.7:8080")
	cases := []string{
		"71-2:0:3b,10.0.0.7:8080",
		"71-2_0_3b__10.0.0.7_8080",
	}
	for _, c := range cases {
		got, err := shttp.ParseSCIONHost(c)
		if err != nil || got != want {
			t.Errorf("ParseSCIONHost(%q) = %v, %v", c, got, err)
		}
	}
	for _, bad := range []string{"example.com:80", "71-10__noport", ""} {
		if _, err := shttp.ParseSCIONHost(bad); err == nil {
			t.Errorf("ParseSCIONHost(%q) accepted", bad)
		}
	}
}

func TestMangleSCIONAddrURL(t *testing.T) {
	in := "http://71-2:0:3b,10.0.0.7:8080/path?q=1"
	out := shttp.MangleSCIONAddrURL(in)
	if strings.Contains(out, ",") {
		t.Errorf("mangled URL still has a comma: %q", out)
	}
	if !strings.HasSuffix(out, "/path?q=1") {
		t.Errorf("path lost: %q", out)
	}
	// Non-SCION URLs pass through.
	plain := "http://example.com/x"
	if shttp.MangleSCIONAddrURL(plain) != plain {
		t.Error("plain URL modified")
	}
	if shttp.MangleSCIONAddrURL("nourl") != "nourl" {
		t.Error("non-URL modified")
	}
}

func TestRoundTripRejectsNonSCIONHost(t *testing.T) {
	hA, _, cleanup := setup(t)
	defer cleanup()
	client := &http.Client{Transport: shttp.NewTransport(hA, nil)}
	if _, err := client.Get("http://example.com/"); err == nil {
		t.Error("non-SCION host accepted")
	}
}
