// Package shttp provides HTTP over SCION: an http.RoundTripper and a
// server that run the standard library's HTTP machinery over pan
// sockets, so existing web applications become SCION-native with a
// handful of changed lines — the property the paper's application
// enablement case study measures (Section 5.2: the bat CLI needed
// fewer than 20 lines).
//
// Requests and responses are carried in a lightweight datagram framing
// with fragmentation and whole-message retry (substituting for the
// QUIC session the production shttp uses, which is out of scope here;
// the application-facing API is the same shape).
package shttp

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net/http"
	"net/http/httputil"
	"strings"
	"sync"
	"time"

	"sciera/internal/addr"
	"sciera/internal/pan"
)

// Framing constants.
var frameMagic = [4]byte{'S', 'H', 'T', 'P'}

const (
	kindRequest  = 0
	kindResponse = 1
	// fragmentSize keeps frames well under the packet limit.
	fragmentSize = 16 * 1024
	frameHdrLen  = 4 + 4 + 1 + 2 + 2
)

// frame is one datagram of a fragmented message.
type frame struct {
	MsgID uint32
	Kind  uint8
	Frag  uint16
	Total uint16
	Data  []byte
}

func (f *frame) encode() []byte {
	b := make([]byte, frameHdrLen+len(f.Data))
	copy(b[0:4], frameMagic[:])
	binary.BigEndian.PutUint32(b[4:8], f.MsgID)
	b[8] = f.Kind
	binary.BigEndian.PutUint16(b[9:11], f.Frag)
	binary.BigEndian.PutUint16(b[11:13], f.Total)
	copy(b[frameHdrLen:], f.Data)
	return b
}

func decodeFrame(b []byte) (*frame, error) {
	if len(b) < frameHdrLen || [4]byte(b[0:4]) != frameMagic {
		return nil, errors.New("shttp: not a frame")
	}
	return &frame{
		MsgID: binary.BigEndian.Uint32(b[4:8]),
		Kind:  b[8],
		Frag:  binary.BigEndian.Uint16(b[9:11]),
		Total: binary.BigEndian.Uint16(b[11:13]),
		Data:  b[frameHdrLen:],
	}, nil
}

// fragment splits a message into frames.
func fragment(msgID uint32, kind uint8, data []byte) []*frame {
	total := (len(data) + fragmentSize - 1) / fragmentSize
	if total == 0 {
		total = 1
	}
	frames := make([]*frame, 0, total)
	for i := 0; i < total; i++ {
		lo := i * fragmentSize
		hi := lo + fragmentSize
		if hi > len(data) {
			hi = len(data)
		}
		frames = append(frames, &frame{
			MsgID: msgID, Kind: kind,
			Frag: uint16(i), Total: uint16(total),
			Data: data[lo:hi],
		})
	}
	return frames
}

// assembler reassembles fragmented messages.
type assembler struct {
	mu   sync.Mutex
	msgs map[uint32][][]byte
}

func newAssembler() *assembler {
	return &assembler{msgs: make(map[uint32][][]byte)}
}

// add returns the complete message once all fragments arrived.
func (a *assembler) add(f *frame) ([]byte, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	parts, ok := a.msgs[f.MsgID]
	if !ok {
		parts = make([][]byte, f.Total)
		a.msgs[f.MsgID] = parts
	}
	if int(f.Frag) >= len(parts) {
		return nil, false
	}
	parts[f.Frag] = append([]byte(nil), f.Data...)
	for _, p := range parts {
		if p == nil {
			return nil, false
		}
	}
	delete(a.msgs, f.MsgID)
	return bytes.Join(parts, nil), true
}

// Transport is an http.RoundTripper sending requests over SCION. Use it
// as http.Client{Transport: shttp.NewTransport(host, policy)}.
type Transport struct {
	// Host is the process's SCION environment.
	Host *pan.Host
	// Policy selects paths (nil: shortest).
	Policy pan.Policy
	// Timeout bounds one round trip attempt (default 5s); two retries.
	Timeout time.Duration

	mu     sync.Mutex
	nextID uint32
}

// NewTransport builds a SCION HTTP transport; policy may be nil.
func NewTransport(host *pan.Host, policy pan.Policy) *Transport {
	return &Transport{Host: host, Policy: policy}
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	dst, err := ParseSCIONHost(req.URL.Host)
	if err != nil {
		return nil, fmt.Errorf("shttp: %w", err)
	}
	// DumpRequestOut renders the request in outgoing wire format
	// (including the body and Content-Length of client requests).
	raw, err := httputil.DumpRequestOut(req, true)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	t.nextID++
	msgID := t.nextID
	t.mu.Unlock()

	opts := []pan.Option{}
	if t.Policy != nil {
		opts = append(opts, pan.WithPolicy(t.Policy))
	}
	conn, err := t.Host.DialUDP(dst, opts...)
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	timeout := t.Timeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	asm := newAssembler()
	for attempt := 0; attempt < 3; attempt++ {
		for _, f := range fragment(msgID, kindRequest, raw) {
			if _, err := conn.Write(f.encode()); err != nil {
				return nil, err
			}
		}
		deadline := time.Now().Add(timeout)
		for time.Now().Before(deadline) {
			payload, err := conn.ReadFromTimeout(time.Until(deadline))
			if err != nil {
				break
			}
			f, err := decodeFrame(payload.Payload)
			if err != nil || f.Kind != kindResponse || f.MsgID != msgID {
				continue
			}
			if msg, done := asm.add(f); done {
				resp, err := http.ReadResponse(bufio.NewReader(bytes.NewReader(msg)), req)
				if err != nil {
					return nil, err
				}
				return resp, nil
			}
		}
	}
	return nil, fmt.Errorf("shttp: no response from %v", dst)
}

// Server serves an http.Handler over a pan socket.
type Server struct {
	Handler http.Handler
	conn    *pan.Conn
	asm     *assembler
	done    chan struct{}
}

// Serve starts serving on the given SCION port and returns immediately.
func Serve(host *pan.Host, port uint16, handler http.Handler) (*Server, error) {
	conn, err := host.ListenUDP(port)
	if err != nil {
		return nil, err
	}
	s := &Server{Handler: handler, conn: conn, asm: newAssembler(), done: make(chan struct{})}
	go s.loop()
	return s, nil
}

// Addr returns the server's SCION address.
func (s *Server) Addr() addr.UDPAddr { return s.conn.LocalAddr() }

// Close stops the server.
func (s *Server) Close() error {
	close(s.done)
	return s.conn.Close()
}

func (s *Server) loop() {
	for {
		msg, err := s.conn.ReadFrom()
		if err != nil {
			return
		}
		f, err := decodeFrame(msg.Payload)
		if err != nil || f.Kind != kindRequest {
			continue
		}
		raw, done := s.asm.add(f)
		if !done {
			continue
		}
		go s.respond(f.MsgID, raw, msg.From)
	}
}

func (s *Server) respond(msgID uint32, raw []byte, to addr.UDPAddr) {
	req, err := http.ReadRequest(bufio.NewReader(bytes.NewReader(raw)))
	if err != nil {
		return
	}
	req.RemoteAddr = to.String()
	rec := newRecorder()
	s.Handler.ServeHTTP(rec, req)
	respBytes, err := rec.dump()
	if err != nil {
		return
	}
	for _, f := range fragment(msgID, kindResponse, respBytes) {
		if _, err := s.conn.WriteTo(f.encode(), to); err != nil {
			return
		}
	}
}

// recorder captures a handler's response.
type recorder struct {
	status int
	hdr    http.Header
	body   bytes.Buffer
}

func newRecorder() *recorder {
	return &recorder{status: http.StatusOK, hdr: make(http.Header)}
}

func (r *recorder) Header() http.Header         { return r.hdr }
func (r *recorder) WriteHeader(code int)        { r.status = code }
func (r *recorder) Write(b []byte) (int, error) { return r.body.Write(b) }

func (r *recorder) dump() ([]byte, error) {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "HTTP/1.1 %d %s\r\n", r.status, http.StatusText(r.status))
	if r.hdr.Get("Content-Type") == "" {
		r.hdr.Set("Content-Type", "text/plain; charset=utf-8")
	}
	r.hdr.Set("Content-Length", fmt.Sprint(r.body.Len()))
	if err := r.hdr.Write(&buf); err != nil {
		return nil, err
	}
	buf.WriteString("\r\n")
	buf.Write(r.body.Bytes())
	return buf.Bytes(), nil
}

// MangleSCIONAddrURL rewrites a URL containing a SCION authority
// ("http://71-2:0:3b,10.0.0.7:8080/x") into a parseable form; the
// transport understands both. This mirrors the helper the bat diff uses
// (Appendix E).
func MangleSCIONAddrURL(u string) string {
	scheme, rest, ok := strings.Cut(u, "://")
	if !ok {
		return u
	}
	slash := strings.Index(rest, "/")
	hostPart := rest
	tail := ""
	if slash >= 0 {
		hostPart, tail = rest[:slash], rest[slash:]
	}
	if !strings.Contains(hostPart, ",") {
		return u
	}
	mangled := strings.NewReplacer(",", "__", ":", "_", "[", "", "]", "").Replace(hostPart)
	return scheme + "://" + mangled + tail
}

// ParseSCIONHost parses either the native ("71-10,10.0.0.7:8080") or
// mangled ("71-10__10.0.0.7_8080") authority form.
func ParseSCIONHost(host string) (addr.UDPAddr, error) {
	if strings.Contains(host, ",") {
		return addr.ParseUDPAddr(host)
	}
	if strings.Contains(host, "__") {
		parts := strings.SplitN(host, "__", 2)
		ia := strings.ReplaceAll(parts[0], "_", ":")
		hp := parts[1]
		i := strings.LastIndex(hp, "_")
		if i < 0 {
			return addr.UDPAddr{}, fmt.Errorf("mangled host %q missing port", host)
		}
		return addr.ParseUDPAddr(ia + "," + hp[:i] + ":" + hp[i+1:])
	}
	return addr.UDPAddr{}, fmt.Errorf("host %q is not a SCION address", host)
}
