package shttp_test

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"sciera/internal/pan"
	"sciera/internal/shttp"
	"sciera/internal/simnet"
)

// TestMetricsOverSCION serves the network's telemetry registry through
// shttp and scrapes it from another AS — Prometheus-text exposition
// carried over the SCION data plane itself, so an operator can monitor
// an AS without out-of-band connectivity.
func TestMetricsOverSCION(t *testing.T) {
	sim := simnet.NewSim(time.Now())
	n := buildNet(t, sim)
	defer n.Close()
	stop := live(sim)
	defer stop()

	dA, err := n.NewDaemon(lA)
	if err != nil {
		t.Fatal(err)
	}
	dB, err := n.NewDaemon(lB)
	if err != nil {
		t.Fatal(err)
	}

	mux := http.NewServeMux()
	mux.Handle("/metrics", n.Telemetry().Handler())
	srv, err := shttp.Serve(pan.WithDaemon(sim, dB), 9090, mux)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &http.Client{Transport: shttp.NewTransport(pan.WithDaemon(sim, dA), nil)}
	resp, err := client.Get("http://" + shttp.MangleSCIONAddrURL(srv.Addr().String()) + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	// The scrape crossed the data plane, so the router counters it
	// reports include the packets that carried the scrape itself.
	for _, family := range []string{
		"sciera_router_forwarded_total",
		"sciera_beacon_originated_total",
		"sciera_daemon_lookups_total",
		"sciera_simnet_delivered_total",
	} {
		if !strings.Contains(text, "# TYPE "+family+" counter") {
			t.Errorf("exposition missing family %s", family)
		}
	}
}
