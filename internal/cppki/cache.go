package cppki

import (
	"crypto/ecdsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"fmt"
	"hash"
	"sync"
	"time"

	"sciera/internal/addr"
	"sciera/internal/telemetry"
)

// ChainCache memoizes verified AS certificate chains. Verifying a
// SignedMessage from scratch parses two DER certificates and performs
// three ECDSA verifications (AS←CA, CA←root, payload) — but within one
// network the same handful of chains signs every beacon entry, so all of
// it except the payload signature is pure re-derivation. The cache keys
// an entry by SHA-256(ASCertDER ‖ CACertDER ‖ ISD) and stores the parsed
// subject, the AS's ECDSA public key, and the validity window inside
// which the chain verdict holds (the intersection of the AS, CA and root
// certificate validity periods with the TRC's). Entries self-invalidate:
// a lookup outside the window, or against a different TRC object (a TRC
// update replaces the store's pointer), falls back to full verification.
//
// Only positive verdicts are cached. A failed chain never enters the
// cache, so tampered or unanchored chains pay — and fail — the full
// path every time.
//
// The cache is safe for concurrent use and the hit path does not
// allocate (guarded by TestChainCacheResolveZeroAlloc); the beacon
// verification worker pool hits it from several goroutines at once.
type ChainCache struct {
	mu      sync.RWMutex
	entries map[[sha256.Size]byte]*cachedChain
	hashers sync.Pool

	// Hits/Misses count lookups served from / falling through the
	// cache. Register adopts them into a telemetry registry.
	Hits   telemetry.Counter
	Misses telemetry.Counter
}

// cachedChain is one positively verified chain. The verdict — and the
// public key — may be reused for any verification time inside
// [notBefore, notAfter] against the same TRC.
type cachedChain struct {
	ia        addr.IA
	pub       *ecdsa.PublicKey
	notBefore time.Time
	notAfter  time.Time
	trc       *TRC
}

// keyHasher is the pooled scratch state for computing cache keys
// without allocating on the hit path.
type keyHasher struct {
	h       hash.Hash
	scratch [sha256.Size]byte
}

// NewChainCache creates an empty chain cache.
func NewChainCache() *ChainCache {
	c := &ChainCache{entries: make(map[[sha256.Size]byte]*cachedChain)}
	c.hashers.New = func() any { return &keyHasher{h: sha256.New()} }
	return c
}

// Register adopts the hit/miss counters into a telemetry registry.
func (c *ChainCache) Register(reg *telemetry.Registry) {
	reg.RegisterCounter("sciera_cppki_chain_cache_hits_total",
		"verified-chain cache lookups served from the cache", &c.Hits)
	reg.RegisterCounter("sciera_cppki_chain_cache_misses_total",
		"verified-chain cache lookups requiring full chain verification", &c.Misses)
}

// Len returns the number of cached chains.
func (c *ChainCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// key computes SHA-256(ASCertDER ‖ CACertDER ‖ ISD) into out.
func (c *ChainCache) key(m *SignedMessage, isd addr.ISD, out *[sha256.Size]byte) {
	kh := c.hashers.Get().(*keyHasher)
	kh.h.Reset()
	kh.h.Write(m.ASCertDER)
	kh.h.Write(m.CACertDER)
	binary.BigEndian.PutUint16(kh.scratch[:2], uint16(isd))
	kh.h.Write(kh.scratch[:2])
	copy(out[:], kh.h.Sum(kh.scratch[:0]))
	c.hashers.Put(kh)
}

// resolve returns the verified signing key and subject for the
// message's chain, serving repeat chains from the cache. The caller
// still verifies the payload signature — the cache memoizes the chain
// verdict, never the message.
func (c *ChainCache) resolve(m *SignedMessage, trc *TRC, expected addr.IA, at time.Time) (*ecdsa.PublicKey, addr.IA, error) {
	var k [sha256.Size]byte
	c.key(m, trc.ISD, &k)

	c.mu.RLock()
	e := c.entries[k]
	c.mu.RUnlock()
	if e != nil && e.trc == trc && !at.Before(e.notBefore) && !at.After(e.notAfter) {
		c.Hits.Inc()
		if !expected.IsZero() && e.ia != expected {
			return nil, 0, fmt.Errorf("%w: have %v, want %v", ErrWrongSubject, e.ia, expected)
		}
		return e.pub, e.ia, nil
	}
	c.Misses.Inc()

	pub, ia, notBefore, notAfter, err := resolveChain(m, trc, at)
	if err != nil {
		return nil, 0, err
	}
	c.mu.Lock()
	c.entries[k] = &cachedChain{ia: ia, pub: pub, notBefore: notBefore, notAfter: notAfter, trc: trc}
	c.mu.Unlock()
	if !expected.IsZero() && ia != expected {
		return nil, 0, fmt.Errorf("%w: have %v, want %v", ErrWrongSubject, ia, expected)
	}
	return pub, ia, nil
}

// resolveChain is the uncached path: parse both certificates, verify
// the chain against the TRC, and extract the signing key, subject and
// the validity window of the verdict.
func resolveChain(m *SignedMessage, trc *TRC, at time.Time) (*ecdsa.PublicKey, addr.IA, time.Time, time.Time, error) {
	var zero time.Time
	asCert, err := x509.ParseCertificate(m.ASCertDER)
	if err != nil {
		return nil, 0, zero, zero, fmt.Errorf("cppki: parsing AS cert: %w", err)
	}
	caCert, err := x509.ParseCertificate(m.CACertDER)
	if err != nil {
		return nil, 0, zero, zero, fmt.Errorf("cppki: parsing CA cert: %w", err)
	}
	notBefore, notAfter, err := verifyChainWindow(Chain{AS: asCert, CA: caCert}, trc, at)
	if err != nil {
		return nil, 0, zero, zero, err
	}
	pub, ok := asCert.PublicKey.(*ecdsa.PublicKey)
	if !ok {
		return nil, 0, zero, zero, fmt.Errorf("%w: AS cert key is not ECDSA", ErrBadChain)
	}
	ia, err := SubjectIA(asCert)
	if err != nil {
		return nil, 0, zero, zero, err
	}
	return pub, ia, notBefore, notAfter, nil
}
