package cppki

import (
	"fmt"
	"time"

	"sciera/internal/addr"
)

// ProvisionOptions tunes ISD provisioning.
type ProvisionOptions struct {
	NotBefore    time.Time
	TRCValidity  time.Duration // default 2 years
	RootValidity time.Duration // default 5 years
	CAValidity   time.Duration // default 1 year
	Quorum       int           // default: majority of roots
}

// ProvisionedISD is everything needed to stand up a new ISD: root keys,
// a quorum-signed base TRC, and issuing credentials per authoritative
// core AS. The orchestrator uses it when provisioning an ISD (the
// paper's team "needed to set up and configure our own CA ... which
// required a few weeks"; ProvisionISD is the automated version).
type ProvisionedISD struct {
	TRC      *TRC
	RootKeys []*KeyPair
	CACerts  map[addr.IA]CAMaterial
}

// CAMaterial is a core AS's issuing credentials.
type CAMaterial struct {
	Key  *KeyPair
	Cert []byte // DER
}

// ProvisionISD creates a complete trust anchor for an ISD: one root per
// authoritative AS, a base TRC self-signed by a quorum of those roots,
// and one CA certificate per authoritative AS.
func ProvisionISD(isd addr.ISD, core, authoritative []addr.IA, opts ProvisionOptions) (*ProvisionedISD, error) {
	if len(authoritative) == 0 {
		return nil, fmt.Errorf("cppki: ISD %d needs at least one authoritative AS", isd)
	}
	if opts.NotBefore.IsZero() {
		opts.NotBefore = time.Now().Add(-time.Minute)
	}
	if opts.TRCValidity == 0 {
		opts.TRCValidity = 2 * 365 * 24 * time.Hour
	}
	if opts.RootValidity == 0 {
		opts.RootValidity = 5 * 365 * 24 * time.Hour
	}
	if opts.CAValidity == 0 {
		opts.CAValidity = 365 * 24 * time.Hour
	}
	if opts.Quorum == 0 {
		opts.Quorum = len(authoritative)/2 + 1
	}

	out := &ProvisionedISD{CACerts: make(map[addr.IA]CAMaterial)}
	trc := &TRC{
		ISD:           isd,
		Base:          1,
		Serial:        1,
		NotBefore:     opts.NotBefore,
		NotAfter:      opts.NotBefore.Add(opts.TRCValidity),
		CoreASes:      core,
		Authoritative: authoritative,
		VotingQuorum:  opts.Quorum,
	}

	type rootMat struct {
		key  *KeyPair
		cert []byte
	}
	roots := make([]rootMat, len(authoritative))
	for i, ia := range authoritative {
		key, err := GenerateKey()
		if err != nil {
			return nil, err
		}
		cert, err := NewRootCert(ia, key, opts.NotBefore, opts.RootValidity)
		if err != nil {
			return nil, err
		}
		roots[i] = rootMat{key: key, cert: cert.Raw}
		trc.RootCertsDER = append(trc.RootCertsDER, cert.Raw)
		out.RootKeys = append(out.RootKeys, key)
	}
	// Self-sign the base TRC with a quorum of roots.
	for i := 0; i < opts.Quorum; i++ {
		if err := trc.Sign(i, roots[i].key); err != nil {
			return nil, err
		}
	}
	out.TRC = trc

	// Issue a CA cert per authoritative AS under its own root.
	trcRoots, err := trc.Roots()
	if err != nil {
		return nil, err
	}
	for i, ia := range authoritative {
		caKey, err := GenerateKey()
		if err != nil {
			return nil, err
		}
		caCert, err := NewCACert(ia, caKey, trcRoots[i], roots[i].key, opts.NotBefore, opts.CAValidity)
		if err != nil {
			return nil, err
		}
		out.CACerts[ia] = CAMaterial{Key: caKey, Cert: caCert.Raw}
	}
	return out, nil
}

// UpdateTRC builds and quorum-signs a successor TRC with updated core AS
// membership, reusing the predecessor's roots. The returned TRC verifies
// under VerifyUpdate(prev, next).
func UpdateTRC(prev *TRC, rootKeys []*KeyPair, core []addr.IA, at time.Time) (*TRC, error) {
	next := &TRC{
		ISD:           prev.ISD,
		Base:          prev.Base,
		Serial:        prev.Serial + 1,
		NotBefore:     at.Add(-time.Minute),
		NotAfter:      prev.NotAfter,
		CoreASes:      core,
		Authoritative: prev.Authoritative,
		VotingQuorum:  prev.VotingQuorum,
		RootCertsDER:  prev.RootCertsDER,
	}
	if len(rootKeys) < prev.VotingQuorum {
		return nil, fmt.Errorf("%w: have %d keys, need %d", ErrQuorum, len(rootKeys), prev.VotingQuorum)
	}
	for i := 0; i < prev.VotingQuorum; i++ {
		if err := next.Sign(i, rootKeys[i]); err != nil {
			return nil, err
		}
	}
	return next, nil
}
