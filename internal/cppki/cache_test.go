package cppki

import (
	"testing"
	"time"

	"sciera/internal/addr"
	"sciera/internal/telemetry"
)

// cacheFixture provisions a one-CA ISD and returns a signed message from
// coreA plus the provisioned material.
func cacheFixture(t *testing.T, validity time.Duration) (*ProvisionedISD, *SignedMessage, time.Time) {
	t.Helper()
	now := time.Unix(1_737_000_000, 0)
	p, err := ProvisionISD(71, []addr.IA{coreA, coreB, coreC}, []addr.IA{coreA, coreB},
		ProvisionOptions{NotBefore: now.Add(-time.Minute)})
	if err != nil {
		t.Fatal(err)
	}
	caMat := p.CACerts[coreA]
	caCert, err := parseCert(t, caMat.Cert)
	if err != nil {
		t.Fatal(err)
	}
	asKey, _ := GenerateKey()
	asCert, err := NewASCert(coreA, asKey.Public(), caCert, caMat.Key, now.Add(-time.Minute), validity)
	if err != nil {
		t.Fatal(err)
	}
	signer := &Signer{IA: coreA, Key: asKey, Chain: Chain{AS: asCert, CA: caCert}}
	msg, err := signer.Sign([]byte("beacon-entry"))
	if err != nil {
		t.Fatal(err)
	}
	return p, msg, now
}

func TestChainCacheHitMiss(t *testing.T) {
	p, msg, now := cacheFixture(t, 72*time.Hour)
	cache := NewChainCache()
	reg := telemetry.NewRegistry()
	cache.Register(reg)

	for i := 0; i < 3; i++ {
		payload, ia, err := msg.VerifyCached(p.TRC, coreA, now, cache)
		if err != nil {
			t.Fatalf("verify %d: %v", i, err)
		}
		if string(payload) != "beacon-entry" || ia != coreA {
			t.Fatalf("verify %d: payload %q from %v", i, payload, ia)
		}
	}
	if got := cache.Misses.Load(); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	if got := cache.Hits.Load(); got != 2 {
		t.Errorf("hits = %d, want 2", got)
	}
	if cache.Len() != 1 {
		t.Errorf("len = %d, want 1", cache.Len())
	}

	// A cache hit must still verify the payload signature: the cache
	// memoizes chains, never messages.
	forged := *msg
	forged.Payload = []byte("forged")
	if _, _, err := forged.VerifyCached(p.TRC, coreA, now, cache); err == nil {
		t.Fatal("forged payload verified via cached chain")
	}
	// Expected-subject mismatch is enforced on the hit path too.
	if _, _, err := msg.VerifyCached(p.TRC, coreB, now, cache); err == nil {
		t.Fatal("cached chain verified for wrong expected subject")
	}
}

// TestChainCacheExpiry: a cached verdict is only valid inside the
// chain's validity window — verification at a time past the AS cert's
// expiry must bypass the cache and fail, without poisoning later
// lookups inside the window.
func TestChainCacheExpiry(t *testing.T) {
	p, msg, now := cacheFixture(t, time.Hour)
	cache := NewChainCache()

	if _, _, err := msg.VerifyCached(p.TRC, coreA, now, cache); err != nil {
		t.Fatal(err)
	}
	misses := cache.Misses.Load()

	expired := now.Add(2 * time.Hour)
	if _, _, err := msg.VerifyCached(p.TRC, coreA, expired, cache); err == nil {
		t.Fatal("expired chain verified from cache")
	}
	if got := cache.Misses.Load(); got != misses+1 {
		t.Errorf("expired lookup did not miss: misses = %d, want %d", got, misses+1)
	}
	// Back inside the window the original entry still serves hits.
	hits := cache.Hits.Load()
	if _, _, err := msg.VerifyCached(p.TRC, coreA, now.Add(30*time.Minute), cache); err != nil {
		t.Fatalf("in-window verify after expiry probe: %v", err)
	}
	if got := cache.Hits.Load(); got != hits+1 {
		t.Errorf("in-window lookup did not hit: hits = %d, want %d", got, hits+1)
	}
	// Negative verdicts are never cached.
	if cache.Len() != 1 {
		t.Errorf("len = %d after failed lookups, want 1", cache.Len())
	}
}

// TestChainCacheTRCUpdate: a TRC update replaces the store's pointer, so
// entries verified against the old TRC self-invalidate and the chain is
// re-verified against the new one.
func TestChainCacheTRCUpdate(t *testing.T) {
	p, msg, now := cacheFixture(t, 72*time.Hour)
	cache := NewChainCache()

	if _, _, err := msg.VerifyCached(p.TRC, coreA, now, cache); err != nil {
		t.Fatal(err)
	}

	next, err := UpdateTRC(p.TRC, p.RootKeys, []addr.IA{coreA, coreB}, now)
	if err != nil {
		t.Fatal(err)
	}
	misses := cache.Misses.Load()
	if _, _, err := msg.VerifyCached(next, coreA, now, cache); err != nil {
		t.Fatalf("verify against updated TRC: %v", err)
	}
	if got := cache.Misses.Load(); got != misses+1 {
		t.Errorf("lookup against updated TRC did not miss: misses = %d, want %d", got, misses+1)
	}
	// The re-verified entry now serves hits under the new TRC.
	hits := cache.Hits.Load()
	if _, _, err := msg.VerifyCached(next, coreA, now, cache); err != nil {
		t.Fatal(err)
	}
	if got := cache.Hits.Load(); got != hits+1 {
		t.Errorf("repeat lookup under new TRC did not hit: hits = %d, want %d", got, hits+1)
	}
}

// TestChainCacheResolveZeroAlloc guards the warm lookup path: resolving
// an already-cached chain must not allocate, so beacon verification under
// full campaign load does not churn the GC.
func TestChainCacheResolveZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	p, msg, now := cacheFixture(t, 72*time.Hour)
	cache := NewChainCache()
	if _, _, err := cache.resolve(msg, p.TRC, coreA, now); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := cache.resolve(msg, p.TRC, coreA, now); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm resolve allocates %.1f times per run, want 0", allocs)
	}
}
