package cppki

import "sciera/internal/addr"

// TrustMaterial bundles the trust state of a provisioned control plane:
// the TRC store, the per-AS signers, and the verified-chain cache. A
// converged-state snapshot captures the bundle by reference and hands
// it to every cloned replica — all three components are safe to share:
// the Store is written only during provisioning and read-only
// afterwards, Signers are stateless (ECDSA signing is concurrency-safe
// and keeps no per-call state), and the ChainCache is concurrency-safe
// by construction (it already serves concurrent campaign workers).
//
// Private keys never leave the process: the serializable snapshot form
// deliberately omits TrustMaterial, and a snapshot loaded from disk
// provisions a fresh PKI instead (which cannot change figure output —
// PKI material draws from crypto/rand, never the seeded control-plane
// RNG, and an honest network admits the same beacons signed or not).
type TrustMaterial struct {
	TRCs    *Store
	Signers map[addr.IA]*Signer
	Chains  *ChainCache
}
