package cppki

import (
	"testing"
	"time"

	"sciera/internal/addr"
)

var (
	coreA = addr.MustParseIA("71-20965")
	coreB = addr.MustParseIA("71-2:0:3b")
	coreC = addr.MustParseIA("71-2:0:35")
	leaf  = addr.MustParseIA("71-2:0:5c")
)

func provision(t *testing.T) *ProvisionedISD {
	t.Helper()
	p, err := ProvisionISD(71,
		[]addr.IA{coreA, coreB, coreC},
		[]addr.IA{coreA, coreB},
		ProvisionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProvisionISD(t *testing.T) {
	p := provision(t)
	if p.TRC.ISD != 71 || p.TRC.Base != 1 || p.TRC.Serial != 1 {
		t.Errorf("TRC id = %s", p.TRC.ID())
	}
	if p.TRC.VotingQuorum != 2 {
		t.Errorf("quorum = %d", p.TRC.VotingQuorum)
	}
	if err := p.TRC.VerifyBase(time.Now()); err != nil {
		t.Fatalf("base TRC does not verify: %v", err)
	}
	if !p.TRC.IsCore(coreB) || p.TRC.IsCore(leaf) {
		t.Error("IsCore misclassifies")
	}
	if len(p.CACerts) != 2 {
		t.Errorf("CA certs = %d", len(p.CACerts))
	}
	if p.TRC.ID() != "ISD71-B1-S1" {
		t.Errorf("ID = %q", p.TRC.ID())
	}
}

func TestTRCEncodeDecode(t *testing.T) {
	p := provision(t)
	b, err := p.TRC.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTRC(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.VerifyBase(time.Now()); err != nil {
		t.Fatalf("decoded TRC does not verify: %v", err)
	}
	if got.ID() != p.TRC.ID() {
		t.Errorf("ID mismatch: %s vs %s", got.ID(), p.TRC.ID())
	}
}

func TestTRCBaseRejectsTampering(t *testing.T) {
	p := provision(t)
	b, _ := p.TRC.Encode()
	tampered, _ := DecodeTRC(b)
	tampered.CoreASes = append(tampered.CoreASes, leaf)
	if err := tampered.VerifyBase(time.Now()); err == nil {
		t.Error("tampered TRC verified")
	}

	// Insufficient quorum: strip votes.
	short, _ := DecodeTRC(b)
	short.Votes = short.Votes[:1]
	if err := short.VerifyBase(time.Now()); err == nil {
		t.Error("TRC with one vote verified against quorum 2")
	}

	// Duplicate votes must not double-count.
	dup, _ := DecodeTRC(b)
	dup.Votes = []Vote{dup.Votes[0], dup.Votes[0]}
	if err := dup.VerifyBase(time.Now()); err == nil {
		t.Error("duplicate votes satisfied quorum")
	}

	// Expired TRC.
	exp, _ := DecodeTRC(b)
	if err := exp.VerifyBase(exp.NotAfter.Add(time.Hour)); err == nil {
		t.Error("expired TRC verified")
	}
}

func TestTRCUpdateChain(t *testing.T) {
	p := provision(t)
	now := time.Now()

	next, err := UpdateTRC(p.TRC, p.RootKeys, []addr.IA{coreA, coreB}, now)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyUpdate(p.TRC, next, now); err != nil {
		t.Fatalf("valid update rejected: %v", err)
	}

	// Chain through a store.
	store := NewStore()
	if err := store.AddTrusted(p.TRC, now); err != nil {
		t.Fatal(err)
	}
	if err := store.Update(next, now); err != nil {
		t.Fatal(err)
	}
	got, ok := store.Get(71)
	if !ok || got.Serial != 2 {
		t.Fatalf("store latest = %v %v", got, ok)
	}
	if len(store.ISDs()) != 1 {
		t.Errorf("ISDs = %v", store.ISDs())
	}

	// Skipping a serial must fail.
	skip, err := UpdateTRC(next, p.RootKeys, next.CoreASes, now)
	if err != nil {
		t.Fatal(err)
	}
	skip.Serial = 5
	if err := store.Update(skip, now); err == nil {
		t.Error("serial skip accepted")
	}

	// Update signed by an unrelated key must fail.
	rogueKey, _ := GenerateKey()
	rogue := &TRC{
		ISD: 71, Base: 1, Serial: 3,
		NotBefore: now.Add(-time.Minute), NotAfter: p.TRC.NotAfter,
		CoreASes: next.CoreASes, Authoritative: next.Authoritative,
		VotingQuorum: next.VotingQuorum, RootCertsDER: next.RootCertsDER,
	}
	_ = rogue.Sign(0, rogueKey)
	_ = rogue.Sign(1, rogueKey)
	if err := store.Update(rogue, now); err == nil {
		t.Error("rogue-signed update accepted")
	}

	// Unknown ISD.
	other := *next
	other.ISD = 64
	if err := store.Update(&other, now); err == nil {
		t.Error("update for untrusted ISD accepted")
	}
}

func TestChainIssuanceAndVerify(t *testing.T) {
	p := provision(t)
	now := time.Now()
	caMat := p.CACerts[coreA]
	roots, err := p.TRC.Roots()
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 2 {
		t.Fatalf("roots = %d", len(roots))
	}
	caCert, err := parseCert(t, caMat.Cert)
	if err != nil {
		t.Fatal(err)
	}

	asKey, _ := GenerateKey()
	asCert, err := NewASCert(leaf, asKey.Public(), caCert, caMat.Key, now.Add(-time.Second), 72*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	chain := Chain{AS: asCert, CA: caCert}
	if err := VerifyChain(chain, p.TRC, leaf, now); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	// Wrong expected subject.
	if err := VerifyChain(chain, p.TRC, coreB, now); err == nil {
		t.Error("chain verified for wrong subject")
	}
	// Expired.
	if err := VerifyChain(chain, p.TRC, leaf, now.Add(100*time.Hour)); err == nil {
		t.Error("expired chain verified")
	}
	// CA not anchored: provision a different ISD and use its TRC.
	q, err := ProvisionISD(64, []addr.IA{addr.MustParseIA("64-559")},
		[]addr.IA{addr.MustParseIA("64-559")}, ProvisionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyChain(chain, q.TRC, leaf, now); err == nil {
		t.Error("chain verified against foreign TRC")
	}
	// Incomplete chain.
	if err := VerifyChain(Chain{AS: asCert}, p.TRC, leaf, now); err == nil {
		t.Error("incomplete chain verified")
	}
}

func TestSignedMessage(t *testing.T) {
	p := provision(t)
	now := time.Now()
	caMat := p.CACerts[coreA]
	caCert, err := parseCert(t, caMat.Cert)
	if err != nil {
		t.Fatal(err)
	}
	asKey, _ := GenerateKey()
	asCert, err := NewASCert(coreA, asKey.Public(), caCert, caMat.Key, now.Add(-time.Second), 72*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	signer := &Signer{IA: coreA, Key: asKey, Chain: Chain{AS: asCert, CA: caCert}}
	msg, err := signer.Sign([]byte("topology-v1"))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := msg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeSignedMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	payload, ia, err := dec.Verify(p.TRC, coreA, now)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "topology-v1" || ia != coreA {
		t.Errorf("payload %q from %v", payload, ia)
	}
	// Tampered payload.
	dec.Payload = []byte("topology-vEvil")
	if _, _, err := dec.Verify(p.TRC, coreA, now); err == nil {
		t.Error("tampered payload verified")
	}
	// Wrong expected signer.
	if _, _, err := msg.Verify(p.TRC, coreB, now); err == nil {
		t.Error("verified for wrong expected IA")
	}
	// Any-signer verification works with zero IA.
	if _, ia, err := msg.Verify(p.TRC, 0, now); err != nil || ia != coreA {
		t.Errorf("any-signer verify: %v %v", ia, err)
	}
}

func TestProvisionValidation(t *testing.T) {
	if _, err := ProvisionISD(9, nil, nil, ProvisionOptions{}); err == nil {
		t.Error("provisioning without authoritative ASes accepted")
	}
}

func TestUpdateTRCNeedsQuorumKeys(t *testing.T) {
	p := provision(t)
	if _, err := UpdateTRC(p.TRC, p.RootKeys[:1], p.TRC.CoreASes, time.Now()); err == nil {
		t.Error("update with one key accepted despite quorum 2")
	}
}
