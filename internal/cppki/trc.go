package cppki

import (
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"sciera/internal/addr"
)

// TRC is a trust root configuration: the trust anchor of an ISD. It names
// the ISD's core ASes, embeds the root certificates, and defines the
// voting quorum governing its own evolution. TRC updates are chained: a
// successor TRC is only valid if signed by a quorum of the predecessor's
// root keys.
type TRC struct {
	ISD           addr.ISD  `json:"isd"`
	Base          uint64    `json:"base"`   // base number of the update chain
	Serial        uint64    `json:"serial"` // increments by 1 per update
	NotBefore     time.Time `json:"not_before"`
	NotAfter      time.Time `json:"not_after"`
	CoreASes      []addr.IA `json:"core_ases"`
	Authoritative []addr.IA `json:"authoritative_ases"`
	VotingQuorum  int       `json:"voting_quorum"`
	// RootCertsDER holds the DER encodings of the ISD root certificates.
	RootCertsDER [][]byte `json:"root_certs_der"`

	// Votes are signatures over the payload by root keys; for a base TRC
	// they are self-votes by the embedded roots, for updates they must
	// come from the predecessor's roots.
	Votes []Vote `json:"votes"`

	roots []*x509.Certificate // lazily decoded
}

// Vote is a detached signature over the TRC payload.
type Vote struct {
	// RootIndex identifies the signing root in the *voting* TRC (the
	// predecessor for updates, the TRC itself for base TRCs).
	RootIndex int    `json:"root_index"`
	Signature []byte `json:"signature"`
}

// TRC errors.
var (
	ErrTRCExpired   = errors.New("cppki: TRC outside validity")
	ErrQuorum       = errors.New("cppki: insufficient valid votes")
	ErrNotSuccessor = errors.New("cppki: TRC is not the chain successor")
	ErrBadSignature = errors.New("cppki: invalid TRC vote signature")
)

// ID returns the TRC identifier string, e.g. "ISD71-B1-S3".
func (t *TRC) ID() string {
	return fmt.Sprintf("ISD%d-B%d-S%d", t.ISD, t.Base, t.Serial)
}

// payload returns the canonical signed bytes: the JSON encoding with
// votes stripped.
func (t *TRC) payload() ([]byte, error) {
	c := *t
	c.Votes = nil
	return json.Marshal(&c)
}

// Roots returns the decoded root certificates.
func (t *TRC) Roots() ([]*x509.Certificate, error) {
	if t.roots != nil {
		return t.roots, nil
	}
	roots := make([]*x509.Certificate, len(t.RootCertsDER))
	for i, der := range t.RootCertsDER {
		c, err := x509.ParseCertificate(der)
		if err != nil {
			return nil, fmt.Errorf("cppki: parsing TRC root %d: %w", i, err)
		}
		roots[i] = c
	}
	t.roots = roots
	return roots, nil
}

// rootFor returns the TRC root that signed the given CA cert, or nil.
func (t *TRC) rootFor(ca *x509.Certificate) *x509.Certificate {
	roots, err := t.Roots()
	if err != nil {
		return nil
	}
	for _, r := range roots {
		if ca.CheckSignatureFrom(r) == nil {
			return r
		}
	}
	return nil
}

// IsCore reports whether ia is a core AS of the ISD.
func (t *TRC) IsCore(ia addr.IA) bool {
	for _, c := range t.CoreASes {
		if c == ia {
			return true
		}
	}
	return false
}

// Valid reports whether the TRC is within its validity period at time tm.
func (t *TRC) Valid(tm time.Time) bool {
	return !tm.Before(t.NotBefore) && !tm.After(t.NotAfter)
}

// Sign appends a vote by the given root key (identified by its index in
// the voting TRC's root list).
func (t *TRC) Sign(rootIndex int, key *KeyPair) error {
	pl, err := t.payload()
	if err != nil {
		return err
	}
	digest := sha256.Sum256(pl)
	sig, err := ecdsa.SignASN1(rand.Reader, key.Private, digest[:])
	if err != nil {
		return fmt.Errorf("cppki: signing TRC: %w", err)
	}
	t.Votes = append(t.Votes, Vote{RootIndex: rootIndex, Signature: sig})
	return nil
}

// verifyVotes counts distinct valid votes against the given voting TRC.
func (t *TRC) verifyVotes(voting *TRC) (int, error) {
	roots, err := voting.Roots()
	if err != nil {
		return 0, err
	}
	pl, err := t.payload()
	if err != nil {
		return 0, err
	}
	digest := sha256.Sum256(pl)
	seen := make(map[int]bool)
	valid := 0
	for _, v := range t.Votes {
		if v.RootIndex < 0 || v.RootIndex >= len(roots) || seen[v.RootIndex] {
			continue
		}
		pub, ok := roots[v.RootIndex].PublicKey.(*ecdsa.PublicKey)
		if !ok {
			continue
		}
		if ecdsa.VerifyASN1(pub, digest[:], v.Signature) {
			seen[v.RootIndex] = true
			valid++
		}
	}
	return valid, nil
}

// VerifyBase checks a base (serial == base) TRC: it must be self-signed
// by a quorum of its own roots.
func (t *TRC) VerifyBase(at time.Time) error {
	if !t.Valid(at) {
		return ErrTRCExpired
	}
	if t.Serial != t.Base {
		return fmt.Errorf("%w: serial %d != base %d", ErrNotSuccessor, t.Serial, t.Base)
	}
	n, err := t.verifyVotes(t)
	if err != nil {
		return err
	}
	if n < t.VotingQuorum {
		return fmt.Errorf("%w: %d/%d", ErrQuorum, n, t.VotingQuorum)
	}
	return nil
}

// VerifyUpdate checks that next is a valid successor of prev: same ISD
// and base, serial incremented by one, and signed by a quorum of prev's
// roots. This is the "TRC chaining" the bootstrapper relies on after
// securely obtaining the initial TRC.
func VerifyUpdate(prev, next *TRC, at time.Time) error {
	if prev.ISD != next.ISD || prev.Base != next.Base {
		return fmt.Errorf("%w: ISD/base mismatch", ErrNotSuccessor)
	}
	if next.Serial != prev.Serial+1 {
		return fmt.Errorf("%w: serial %d after %d", ErrNotSuccessor, next.Serial, prev.Serial)
	}
	if !next.Valid(at) {
		return ErrTRCExpired
	}
	n, err := next.verifyVotes(prev)
	if err != nil {
		return err
	}
	if n < prev.VotingQuorum {
		return fmt.Errorf("%w: %d/%d", ErrQuorum, n, prev.VotingQuorum)
	}
	return nil
}

// Encode serializes the TRC (including votes) to JSON.
func (t *TRC) Encode() ([]byte, error) { return json.Marshal(t) }

// DecodeTRC parses a serialized TRC.
func DecodeTRC(b []byte) (*TRC, error) {
	var t TRC
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, fmt.Errorf("cppki: decoding TRC: %w", err)
	}
	return &t, nil
}

// Store holds the verified TRC chain of one or more ISDs, as maintained
// by daemons and control services.
type Store struct {
	latest map[addr.ISD]*TRC
}

// NewStore creates an empty TRC store.
func NewStore() *Store {
	return &Store{latest: make(map[addr.ISD]*TRC)}
}

// AddTrusted inserts an initial TRC obtained out-of-band (or via TLS at
// bootstrap); it is verified as a base TRC.
func (s *Store) AddTrusted(t *TRC, at time.Time) error {
	if err := t.VerifyBase(at); err != nil {
		return err
	}
	s.latest[t.ISD] = t
	return nil
}

// Update applies a successor TRC, verifying the chain.
func (s *Store) Update(next *TRC, at time.Time) error {
	prev, ok := s.latest[next.ISD]
	if !ok {
		return fmt.Errorf("cppki: no trusted TRC for ISD %d", next.ISD)
	}
	if err := VerifyUpdate(prev, next, at); err != nil {
		return err
	}
	s.latest[next.ISD] = next
	return nil
}

// Get returns the latest TRC for an ISD.
func (s *Store) Get(isd addr.ISD) (*TRC, bool) {
	t, ok := s.latest[isd]
	return t, ok
}

// ISDs lists the ISDs with a trusted TRC.
func (s *Store) ISDs() []addr.ISD {
	out := make([]addr.ISD, 0, len(s.latest))
	for isd := range s.latest {
		out = append(out, isd)
	}
	return out
}
