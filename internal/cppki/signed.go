package cppki

import (
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"time"

	"sciera/internal/addr"
)

// SignedMessage is a control-plane payload signed with an AS certificate,
// carrying the full chain so any party holding the ISD TRC can verify it.
// Beacon AS entries and bootstrap topology responses use this envelope.
type SignedMessage struct {
	Payload   []byte `json:"payload"`
	Signature []byte `json:"signature"`
	ASCertDER []byte `json:"as_cert_der"`
	CACertDER []byte `json:"ca_cert_der"`
}

// Signer signs control-plane payloads on behalf of an AS.
type Signer struct {
	IA    addr.IA
	Key   *KeyPair
	Chain Chain
}

// Sign wraps payload in a SignedMessage.
func (s *Signer) Sign(payload []byte) (*SignedMessage, error) {
	digest := sha256.Sum256(payload)
	sig, err := ecdsa.SignASN1(rand.Reader, s.Key.Private, digest[:])
	if err != nil {
		return nil, fmt.Errorf("cppki: signing payload: %w", err)
	}
	return &SignedMessage{
		Payload:   payload,
		Signature: sig,
		ASCertDER: s.Chain.AS.Raw,
		CACertDER: s.Chain.CA.Raw,
	}, nil
}

// Verify checks the message against the TRC and returns the payload and
// the signing AS. If expected is non-zero the signer's IA must match.
func (m *SignedMessage) Verify(trc *TRC, expected addr.IA, at time.Time) ([]byte, addr.IA, error) {
	return m.VerifyCached(trc, expected, at, nil)
}

// VerifyCached is Verify with an optional verified-chain cache: repeat
// chains skip certificate parsing and chain verification, leaving only
// the payload ECDSA check (which is always performed — the cache
// memoizes chains, never messages).
func (m *SignedMessage) VerifyCached(trc *TRC, expected addr.IA, at time.Time, cache *ChainCache) ([]byte, addr.IA, error) {
	var (
		pub *ecdsa.PublicKey
		ia  addr.IA
		err error
	)
	if cache != nil {
		pub, ia, err = cache.resolve(m, trc, expected, at)
	} else {
		pub, ia, _, _, err = resolveChain(m, trc, at)
		if err == nil && !expected.IsZero() && ia != expected {
			err = fmt.Errorf("%w: have %v, want %v", ErrWrongSubject, ia, expected)
		}
	}
	if err != nil {
		return nil, 0, err
	}
	digest := sha256.Sum256(m.Payload)
	if !ecdsa.VerifyASN1(pub, digest[:], m.Signature) {
		return nil, 0, fmt.Errorf("%w: payload signature invalid", ErrBadChain)
	}
	return m.Payload, ia, nil
}

// Encode serializes the signed message.
func (m *SignedMessage) Encode() ([]byte, error) { return json.Marshal(m) }

// DecodeSignedMessage parses a serialized signed message.
func DecodeSignedMessage(b []byte) (*SignedMessage, error) {
	var m SignedMessage
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("cppki: decoding signed message: %w", err)
	}
	return &m, nil
}
