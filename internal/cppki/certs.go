// Package cppki implements the SCION control-plane PKI: a per-ISD trust
// root configuration (TRC) anchoring a hierarchy of x509 certificates
// (root → CA → AS), with chained TRC updates and quorum voting.
//
// The design mirrors the deployment reality described in the paper
// (Section 4.5): AS certificates are intentionally short-lived (days), so
// issuance and renewal must be fully automated; see package ca for the
// smallstep-style online CA built on top of this package.
package cppki

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"errors"
	"fmt"
	"math/big"
	"sync/atomic"
	"time"

	"sciera/internal/addr"
)

// Certificate roles within an ISD.
type CertRole int

const (
	RoleRoot CertRole = iota // ISD trust root, listed in the TRC
	RoleCA                   // issuing CA, signed by a root
	RoleAS                   // per-AS certificate, signed by a CA
)

func (r CertRole) String() string {
	switch r {
	case RoleRoot:
		return "root"
	case RoleCA:
		return "ca"
	case RoleAS:
		return "as"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// Errors.
var (
	ErrExpired      = errors.New("cppki: certificate outside validity period")
	ErrBadChain     = errors.New("cppki: chain verification failed")
	ErrNotInTRC     = errors.New("cppki: root certificate not anchored in TRC")
	ErrWrongSubject = errors.New("cppki: certificate subject mismatch")
)

// KeyPair wraps an ECDSA P-256 key used for control-plane signatures.
type KeyPair struct {
	Private *ecdsa.PrivateKey
}

// GenerateKey creates a fresh P-256 key pair.
func GenerateKey() (*KeyPair, error) {
	k, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("cppki: generating key: %w", err)
	}
	return &KeyPair{Private: k}, nil
}

// Public returns the public half.
func (k *KeyPair) Public() *ecdsa.PublicKey { return &k.Private.PublicKey }

// serialCounter is atomic: sharded campaigns provision per-replica
// PKIs concurrently, and serials only need uniqueness.
var serialCounter atomic.Int64

func init() { serialCounter.Store(time.Now().UnixNano()) }

func nextSerial() *big.Int {
	return big.NewInt(serialCounter.Add(1))
}

// subjectFor builds the distinguished name for an IA and role.
func subjectFor(ia addr.IA, role CertRole) pkix.Name {
	return pkix.Name{
		CommonName:   ia.String(),
		Organization: []string{"SCIERA " + role.String()},
	}
}

// NewRootCert creates a self-signed ISD root certificate for the given
// authoritative core AS.
func NewRootCert(ia addr.IA, key *KeyPair, notBefore time.Time, validity time.Duration) (*x509.Certificate, error) {
	tmpl := &x509.Certificate{
		SerialNumber:          nextSerial(),
		Subject:               subjectFor(ia, RoleRoot),
		NotBefore:             notBefore,
		NotAfter:              notBefore.Add(validity),
		IsCA:                  true,
		BasicConstraintsValid: true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, key.Public(), key.Private)
	if err != nil {
		return nil, fmt.Errorf("cppki: creating root cert: %w", err)
	}
	return x509.ParseCertificate(der)
}

// NewCACert issues a CA certificate under a root.
func NewCACert(ia addr.IA, key *KeyPair, root *x509.Certificate, rootKey *KeyPair,
	notBefore time.Time, validity time.Duration) (*x509.Certificate, error) {
	tmpl := &x509.Certificate{
		SerialNumber:          nextSerial(),
		Subject:               subjectFor(ia, RoleCA),
		NotBefore:             notBefore,
		NotAfter:              notBefore.Add(validity),
		IsCA:                  true,
		MaxPathLen:            0,
		MaxPathLenZero:        true,
		BasicConstraintsValid: true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, root, key.Public(), rootKey.Private)
	if err != nil {
		return nil, fmt.Errorf("cppki: creating CA cert: %w", err)
	}
	return x509.ParseCertificate(der)
}

// NewASCert issues an AS certificate under a CA. AS certificates are
// deliberately short-lived (the paper reports "typically just a few
// days"), forcing renewal automation.
func NewASCert(ia addr.IA, pub *ecdsa.PublicKey, ca *x509.Certificate, caKey *KeyPair,
	notBefore time.Time, validity time.Duration) (*x509.Certificate, error) {
	tmpl := &x509.Certificate{
		SerialNumber: nextSerial(),
		Subject:      subjectFor(ia, RoleAS),
		NotBefore:    notBefore,
		NotAfter:     notBefore.Add(validity),
		KeyUsage:     x509.KeyUsageDigitalSignature,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca, pub, caKey.Private)
	if err != nil {
		return nil, fmt.Errorf("cppki: creating AS cert: %w", err)
	}
	return x509.ParseCertificate(der)
}

// Chain is an AS certificate chain: AS cert plus the issuing CA cert.
// The CA's root must be anchored in the verifier's TRC.
type Chain struct {
	AS *x509.Certificate
	CA *x509.Certificate
}

// SubjectIA parses the IA encoded in a certificate subject.
func SubjectIA(c *x509.Certificate) (addr.IA, error) {
	return addr.ParseIA(c.Subject.CommonName)
}

// Validity reports whether t falls within the certificate's validity.
func Validity(c *x509.Certificate, t time.Time) bool {
	return !t.Before(c.NotBefore) && !t.After(c.NotAfter)
}

// VerifyChain verifies an AS chain against a TRC at time t: the AS cert
// must be signed by the CA cert, the CA cert by one of the TRC's roots,
// all certificates must be valid at t, and the AS cert's subject must be
// the expected IA (when non-zero).
func VerifyChain(chain Chain, trc *TRC, expected addr.IA, t time.Time) error {
	_, _, err := verifyChainWindow(chain, trc, t)
	if err != nil {
		return err
	}
	if !expected.IsZero() {
		got, err := SubjectIA(chain.AS)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrWrongSubject, err)
		}
		if got != expected {
			return fmt.Errorf("%w: have %v, want %v", ErrWrongSubject, got, expected)
		}
	}
	return nil
}

// verifyChainWindow performs the cryptographic part of chain
// verification and returns the validity window inside which the verdict
// stays true: the intersection of the AS, CA and matched root
// certificate validity periods with the TRC's own validity. The chain
// cache keys its entries on this window so they self-invalidate at
// cert/TRC expiry without re-parsing or re-verifying anything.
func verifyChainWindow(chain Chain, trc *TRC, t time.Time) (notBefore, notAfter time.Time, err error) {
	if chain.AS == nil || chain.CA == nil {
		return notBefore, notAfter, fmt.Errorf("%w: incomplete chain", ErrBadChain)
	}
	for _, c := range []*x509.Certificate{chain.AS, chain.CA} {
		if !Validity(c, t) {
			return notBefore, notAfter, fmt.Errorf("%w: %q [%s, %s] at %s",
				ErrExpired, c.Subject.CommonName, c.NotBefore, c.NotAfter, t)
		}
	}
	if err := chain.AS.CheckSignatureFrom(chain.CA); err != nil {
		return notBefore, notAfter, fmt.Errorf("%w: AS cert not signed by CA: %v", ErrBadChain, err)
	}
	root := trc.rootFor(chain.CA)
	if root == nil {
		return notBefore, notAfter, ErrNotInTRC
	}
	if !Validity(root, t) {
		return notBefore, notAfter, fmt.Errorf("%w: root %q", ErrExpired, root.Subject.CommonName)
	}
	notBefore, notAfter = chain.AS.NotBefore, chain.AS.NotAfter
	for _, c := range []*x509.Certificate{chain.CA, root} {
		if c.NotBefore.After(notBefore) {
			notBefore = c.NotBefore
		}
		if c.NotAfter.Before(notAfter) {
			notAfter = c.NotAfter
		}
	}
	if trc.NotBefore.After(notBefore) {
		notBefore = trc.NotBefore
	}
	if trc.NotAfter.Before(notAfter) {
		notAfter = trc.NotAfter
	}
	return notBefore, notAfter, nil
}
