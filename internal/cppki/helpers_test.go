package cppki

import (
	"crypto/x509"
	"testing"
)

func parseCert(t *testing.T, der []byte) (*x509.Certificate, error) {
	t.Helper()
	return x509.ParseCertificate(der)
}
