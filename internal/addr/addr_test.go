package addr

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestParseAS(t *testing.T) {
	cases := []struct {
		in   string
		want AS
		ok   bool
	}{
		{"0", 0, true},
		{"559", 559, true},
		{"4294967295", MaxBGPAS, true},
		{"4294967296", 0, false}, // BGP notation must fit 32 bits
		{"2:0:3b", 0x2_0000_003b, true},
		{"0:0:0", 0, true},
		{"ffff:ffff:ffff", MaxAS, true},
		{"2:0", 0, false},
		{"2:0:3b:1", 0, false},
		{"2:0:zz", 0, false},
		{"2:0:12345", 0, false},
		{"2:0:", 0, false},
		{"-1", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAS(c.in)
		if c.ok && err != nil {
			t.Errorf("ParseAS(%q) unexpected error: %v", c.in, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("ParseAS(%q) = %v, want error", c.in, got)
			}
			continue
		}
		if got != c.want {
			t.Errorf("ParseAS(%q) = %#x, want %#x", c.in, uint64(got), uint64(c.want))
		}
	}
}

func TestASString(t *testing.T) {
	cases := []struct {
		as   AS
		want string
	}{
		{559, "559"},
		{0, "0"},
		{MaxBGPAS, "4294967295"},
		{MaxBGPAS + 1, "1:0:0"},
		{0x2_0000_003b, "2:0:3b"},
		{MaxAS, "ffff:ffff:ffff"},
	}
	for _, c := range cases {
		if got := c.as.String(); got != c.want {
			t.Errorf("AS(%#x).String() = %q, want %q", uint64(c.as), got, c.want)
		}
	}
}

func TestASRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		as := AS(v) & MaxAS
		got, err := ParseAS(as.String())
		return err == nil && got == as
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestParseIA(t *testing.T) {
	ia, err := ParseIA("71-2:0:3b")
	if err != nil {
		t.Fatal(err)
	}
	if ia.ISD() != 71 || ia.AS() != 0x2_0000_003b {
		t.Fatalf("got ISD %d AS %#x", ia.ISD(), uint64(ia.AS()))
	}
	if s := ia.String(); s != "71-2:0:3b" {
		t.Fatalf("String() = %q", s)
	}
	for _, bad := range []string{"", "71", "71-", "-559", "71-2:0", "99999-1", "71-2:0:3b-1"} {
		if _, err := ParseIA(bad); err == nil {
			t.Errorf("ParseIA(%q) succeeded, want error", bad)
		}
	}
}

func TestIARoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		ia := MustIA(ISD(rng.Intn(1<<16)), AS(rng.Int63())&MaxAS)
		got, err := ParseIA(ia.String())
		if err != nil || got != ia {
			t.Fatalf("round trip %v: got %v, err %v", ia, got, err)
		}
	}
}

func TestIAAppendTo(t *testing.T) {
	// AppendTo is the allocation-free building block behind String (and
	// path fingerprints, where the bytes are a sort key): pin it to the
	// legacy fmt-based rendering for both AS notations.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		ia := MustIA(ISD(rng.Intn(1<<16)), AS(rng.Int63())&MaxAS)
		as := ia.AS()
		var want string
		if as <= MaxBGPAS {
			want = fmt.Sprintf("%d-%d", ia.ISD(), uint64(as))
		} else {
			want = fmt.Sprintf("%d-%x:%x:%x", ia.ISD(),
				uint16(as>>32), uint16(as>>16), uint16(as))
		}
		if got := string(ia.AppendTo(nil)); got != want {
			t.Fatalf("AppendTo(%#x) = %q, want %q", uint64(ia), got, want)
		}
		if got := ia.String(); got != want {
			t.Fatalf("String(%#x) = %q, want %q", uint64(ia), got, want)
		}
	}
	// Appending extends the given slice in place.
	b := MustParseIA("71-2:0:3b").AppendTo([]byte("x:"))
	if string(b) != "x:71-2:0:3b" {
		t.Fatalf("prefix append = %q", b)
	}
}

func TestIABinary(t *testing.T) {
	ia := MustParseIA("71-2:0:3b")
	var b [8]byte
	PutIA(b[:], ia)
	if got := GetIA(b[:]); got != ia {
		t.Fatalf("binary round trip: got %v want %v", got, ia)
	}
}

func TestIAMatches(t *testing.T) {
	a := MustParseIA("71-559")
	cases := []struct {
		other string
		want  bool
	}{
		{"71-559", true},
		{"71-560", false},
		{"64-559", false},
		{"0-559", true}, // wildcard ISD
		{"71-0", true},  // wildcard AS
		{"0-0", true},   // full wildcard
		{"64-0", false}, // wrong ISD, wildcard AS
	}
	for _, c := range cases {
		if got := a.Matches(MustParseIA(c.other)); got != c.want {
			t.Errorf("%v.Matches(%v) = %v, want %v", a, c.other, got, c.want)
		}
	}
}

func TestIAJSON(t *testing.T) {
	type wrap struct {
		IA IA `json:"ia"`
	}
	in := wrap{IA: MustParseIA("71-2:0:5c")}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"ia":"71-2:0:5c"}` {
		t.Fatalf("marshal = %s", b)
	}
	var out wrap
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.IA != in.IA {
		t.Fatalf("unmarshal = %v, want %v", out.IA, in.IA)
	}
}

func TestParseUDPAddr(t *testing.T) {
	a, err := ParseUDPAddr("71-2:0:3b,192.168.1.7:31000")
	if err != nil {
		t.Fatal(err)
	}
	if a.IA != MustParseIA("71-2:0:3b") {
		t.Errorf("IA = %v", a.IA)
	}
	if a.Host != netip.MustParseAddrPort("192.168.1.7:31000") {
		t.Errorf("Host = %v", a.Host)
	}
	if got := a.String(); got != "71-2:0:3b,192.168.1.7:31000" {
		t.Errorf("String() = %q", got)
	}
	if a.Network() != "scion+udp" {
		t.Errorf("Network() = %q", a.Network())
	}
	if !a.IsValid() {
		t.Error("IsValid() = false")
	}

	v6, err := ParseUDPAddr("71-559,[::1]:443")
	if err != nil {
		t.Fatal(err)
	}
	if !v6.Host.Addr().Is6() {
		t.Errorf("expected IPv6 host, got %v", v6.Host)
	}

	for _, bad := range []string{"", "71-559", "71-559,1.2.3.4", "bogus,1.2.3.4:80"} {
		if _, err := ParseUDPAddr(bad); err == nil {
			t.Errorf("ParseUDPAddr(%q) succeeded, want error", bad)
		}
	}
}

func TestNewIARange(t *testing.T) {
	if _, err := NewIA(1, MaxAS+1); err == nil {
		t.Error("NewIA accepted AS out of range")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustIA did not panic on invalid AS")
		}
	}()
	MustIA(1, MaxAS+1)
}

func TestSVCString(t *testing.T) {
	cases := map[SVC]string{
		SvcNone:      "NONE",
		SvcControl:   "CS",
		SvcBootstrap: "BS",
		SvcCA:        "CA",
		SVC(0x1234):  "SVC(0x1234)",
	}
	for svc, want := range cases {
		if got := svc.String(); got != want {
			t.Errorf("SVC(%d).String() = %q, want %q", svc, got, want)
		}
	}
}

func TestInvalidASString(t *testing.T) {
	s := (MaxAS + 1).String()
	if s == "" {
		t.Error("invalid AS should still format")
	}
}
