// Package addr implements SCION addressing: isolation domain (ISD)
// identifiers, AS numbers in both BGP-style decimal and SCION-style
// colon-separated hexadecimal notation, and the combined ISD-AS (IA)
// identifier used throughout the control and data planes.
//
// The formats follow the SCION addressing specification as deployed in
// SCIERA: an IA is written "<isd>-<as>", e.g. "71-2:0:3b" for a SCION-style
// AS in ISD 71, or "71-559" for a BGP-compatible AS number.
package addr

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// ISD is a SCION isolation domain identifier. ISD 0 is the wildcard.
type ISD uint16

// AS is a SCION AS number. Only the lower 48 bits are significant.
// Values below 2^32 are BGP-compatible AS numbers and are formatted in
// decimal; larger values are formatted as three colon-separated groups of
// 16 bits in lowercase hexadecimal (e.g. "2:0:3b").
type AS uint64

const (
	// ASBits is the number of significant bits in an AS number.
	ASBits = 48
	// MaxAS is the largest representable AS number.
	MaxAS AS = (1 << ASBits) - 1
	// MaxBGPAS is the largest AS number rendered in BGP decimal notation.
	MaxBGPAS AS = (1 << 32) - 1
)

// WildcardISD and WildcardAS match any ISD/AS in path lookups.
const (
	WildcardISD ISD = 0
	WildcardAS  AS  = 0
)

// ParseISD parses a decimal ISD identifier.
func ParseISD(s string) (ISD, error) {
	v, err := strconv.ParseUint(s, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("addr: parsing ISD %q: %w", s, err)
	}
	return ISD(v), nil
}

func (isd ISD) String() string {
	return strconv.FormatUint(uint64(isd), 10)
}

// ParseAS parses an AS number in either BGP decimal ("559") or SCION
// colon-separated hexadecimal ("2:0:3b") notation.
func ParseAS(s string) (AS, error) {
	if !strings.Contains(s, ":") {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("addr: parsing AS %q: %w", s, err)
		}
		if AS(v) > MaxBGPAS {
			return 0, fmt.Errorf("addr: BGP-style AS %q exceeds 2^32-1", s)
		}
		return AS(v), nil
	}
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, fmt.Errorf("addr: SCION-style AS %q must have 3 groups", s)
	}
	var as AS
	for _, p := range parts {
		if len(p) == 0 || len(p) > 4 {
			return 0, fmt.Errorf("addr: AS group %q in %q must be 1-4 hex digits", p, s)
		}
		v, err := strconv.ParseUint(p, 16, 16)
		if err != nil {
			return 0, fmt.Errorf("addr: parsing AS group %q in %q: %w", p, s, err)
		}
		as = as<<16 | AS(v)
	}
	return as, nil
}

func (as AS) String() string {
	if !as.Valid() {
		return fmt.Sprintf("%d [invalid AS]", uint64(as))
	}
	if as <= MaxBGPAS {
		return strconv.FormatUint(uint64(as), 10)
	}
	return fmt.Sprintf("%x:%x:%x",
		uint16(as>>32), uint16(as>>16), uint16(as))
}

// Valid reports whether the AS number fits in 48 bits.
func (as AS) Valid() bool { return as <= MaxAS }

// IA is a combined ISD-AS identifier, packed as isd<<48 | as.
type IA uint64

// MustIA builds an IA and panics if the AS is out of range. It is intended
// for statically-known identifiers such as topology literals.
func MustIA(isd ISD, as AS) IA {
	ia, err := NewIA(isd, as)
	if err != nil {
		panic(err)
	}
	return ia
}

// NewIA builds an IA from its components.
func NewIA(isd ISD, as AS) (IA, error) {
	if !as.Valid() {
		return 0, fmt.Errorf("addr: AS %d out of range", uint64(as))
	}
	return IA(uint64(isd)<<ASBits | uint64(as)), nil
}

// ParseIA parses "<isd>-<as>", e.g. "71-2:0:3b".
func ParseIA(s string) (IA, error) {
	isdStr, asStr, ok := strings.Cut(s, "-")
	if !ok {
		return 0, fmt.Errorf("addr: IA %q missing '-' separator", s)
	}
	isd, err := ParseISD(isdStr)
	if err != nil {
		return 0, err
	}
	as, err := ParseAS(asStr)
	if err != nil {
		return 0, err
	}
	return NewIA(isd, as)
}

// MustParseIA parses an IA literal and panics on error.
func MustParseIA(s string) IA {
	ia, err := ParseIA(s)
	if err != nil {
		panic(err)
	}
	return ia
}

// ISD returns the isolation domain component.
func (ia IA) ISD() ISD { return ISD(ia >> ASBits) }

// AS returns the AS number component.
func (ia IA) AS() AS { return AS(ia) & MaxAS }

func (ia IA) String() string {
	return string(ia.AppendTo(nil))
}

// AppendTo appends the canonical "<isd>-<as>" rendering of ia to b and
// returns the extended slice — the allocation-free building block for
// callers that assemble many IA strings (path fingerprints render one
// per interface crossing on every path combination). The bytes are
// exactly what String returns.
func (ia IA) AppendTo(b []byte) []byte {
	b = strconv.AppendUint(b, uint64(ia.ISD()), 10)
	b = append(b, '-')
	as := ia.AS()
	if as <= MaxBGPAS {
		return strconv.AppendUint(b, uint64(as), 10)
	}
	b = strconv.AppendUint(b, uint64(as>>32)&0xffff, 16)
	b = append(b, ':')
	b = strconv.AppendUint(b, uint64(as>>16)&0xffff, 16)
	b = append(b, ':')
	return strconv.AppendUint(b, uint64(as)&0xffff, 16)
}

// IsZero reports whether the IA is the zero value.
func (ia IA) IsZero() bool { return ia == 0 }

// IsWildcard reports whether either component is a wildcard.
func (ia IA) IsWildcard() bool {
	return ia.ISD() == WildcardISD || ia.AS() == WildcardAS
}

// Equal reports component-wise equality honouring wildcards: a wildcard
// ISD or AS on either side matches anything.
func (ia IA) Matches(other IA) bool {
	isdOK := ia.ISD() == WildcardISD || other.ISD() == WildcardISD || ia.ISD() == other.ISD()
	asOK := ia.AS() == WildcardAS || other.AS() == WildcardAS || ia.AS() == other.AS()
	return isdOK && asOK
}

// PutIA writes the 8-byte big-endian encoding of ia into b.
func PutIA(b []byte, ia IA) { binary.BigEndian.PutUint64(b, uint64(ia)) }

// GetIA reads an IA from the first 8 bytes of b.
func GetIA(b []byte) IA { return IA(binary.BigEndian.Uint64(b)) }

// MarshalText implements encoding.TextMarshaler.
func (ia IA) MarshalText() ([]byte, error) { return []byte(ia.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (ia *IA) UnmarshalText(b []byte) error {
	v, err := ParseIA(string(b))
	if err != nil {
		return err
	}
	*ia = v
	return nil
}

// UDPAddr is a full SCION/UDP end-host address: the AS the host lives in
// plus its AS-local IP:port. The IP is only meaningful inside the AS
// (SCION uses IP as an intra-AS "layer 2.5" underlay).
type UDPAddr struct {
	IA   IA
	Host netip.AddrPort
}

// ParseUDPAddr parses "<isd>-<as>,<ip>:<port>", e.g.
// "71-2:0:3b,192.168.1.7:31000" or "71-559,[::1]:443".
func ParseUDPAddr(s string) (UDPAddr, error) {
	iaStr, hostStr, ok := strings.Cut(s, ",")
	if !ok {
		return UDPAddr{}, fmt.Errorf("addr: UDP address %q missing ',' separator", s)
	}
	ia, err := ParseIA(iaStr)
	if err != nil {
		return UDPAddr{}, err
	}
	host, err := netip.ParseAddrPort(hostStr)
	if err != nil {
		return UDPAddr{}, fmt.Errorf("addr: parsing host of %q: %w", s, err)
	}
	return UDPAddr{IA: ia, Host: host}, nil
}

// MustParseUDPAddr parses a UDP address literal and panics on error.
func MustParseUDPAddr(s string) UDPAddr {
	a, err := ParseUDPAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

func (a UDPAddr) String() string {
	return a.IA.String() + "," + a.Host.String()
}

// Network implements net.Addr.
func (a UDPAddr) Network() string { return "scion+udp" }

// IsValid reports whether both the IA and the host part are set.
func (a UDPAddr) IsValid() bool { return !a.IA.IsZero() && a.Host.IsValid() }

// SVC is an anycast service address resolved by the local AS
// infrastructure (control service, bootstrap server, ...).
type SVC uint16

// Well-known service addresses.
const (
	SvcNone      SVC = 0x0000
	SvcControl   SVC = 0x0001 // control service (beacon/path/cert server)
	SvcBootstrap SVC = 0x0002 // bootstrapping server
	SvcCA        SVC = 0x0003 // certificate authority
)

func (s SVC) String() string {
	switch s {
	case SvcNone:
		return "NONE"
	case SvcControl:
		return "CS"
	case SvcBootstrap:
		return "BS"
	case SvcCA:
		return "CA"
	default:
		return fmt.Sprintf("SVC(%#04x)", uint16(s))
	}
}
