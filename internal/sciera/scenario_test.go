package sciera

import (
	"math"
	"testing"

	"sciera/internal/scenario"
	"sciera/internal/topology"
)

// TestScenarioMatchesTables is the golden equivalence check: the
// built-in "sciera" scenario must load to exactly the deployment the Go
// tables describe — same AS set in the same order, same circuits with
// bit-identical latencies, same vantage/heatmap ordering (the canonical
// AllPairs Seq numbering derives from it), same incident calendar, and
// an IP plane producing bit-identical baseline RTTs. This is what
// guarantees the reference campaign's bytes are unchanged by the
// scenario refactor.
func TestScenarioMatchesTables(t *testing.T) {
	s := scenario.MustBuiltin("sciera")

	sites := Sites()
	if len(s.ASes) != len(sites) {
		t.Fatalf("scenario has %d ASes, tables have %d", len(s.ASes), len(sites))
	}
	for i, a := range s.ASes {
		site := sites[i]
		if a.IA != site.IA || a.Name != site.Name || a.Core != site.Core ||
			a.Lat != site.Lat || a.Lon != site.Lon {
			t.Errorf("AS %d: scenario %+v != table %+v", i, a, site)
		}
		if a.Region != site.Region.String() || a.Kind != site.Kind.String() || a.Effort != site.Effort {
			t.Errorf("AS %d metadata: scenario %+v != table %+v", i, a, site)
		}
		joined, ok := a.JoinedTime()
		if !ok || !joined.Equal(site.Joined) {
			t.Errorf("AS %d joined: %v != %v", i, joined, site.Joined)
		}
	}

	want, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	wl, gl := want.Links(), got.Links()
	if len(wl) != len(gl) {
		t.Fatalf("scenario topology has %d links, tables build %d", len(gl), len(wl))
	}
	for i := range wl {
		w, g := wl[i], gl[i]
		if w.Name != g.Name || w.Type != g.Type || w.A.IA != g.A.IA || w.B.IA != g.B.IA {
			t.Errorf("link %d: %v/%q != %v/%q", i, g.A, g.Name, w.A, w.Name)
		}
		if w.LatencyMS != g.LatencyMS { // bit-exact, not approximate
			t.Errorf("link %q latency: scenario %v != table %v", w.Name, g.LatencyMS, w.LatencyMS)
		}
	}

	vant := VantageASes()
	if len(s.Vantage) != len(vant) {
		t.Fatalf("vantage count %d != %d", len(s.Vantage), len(vant))
	}
	for i := range vant {
		if s.Vantage[i] != vant[i] {
			t.Errorf("vantage %d: %s != %s (Seq numbering would shift)", i, s.Vantage[i], vant[i])
		}
	}
	fig8 := Figure8ASes()
	for i := range fig8 {
		if s.Heatmap[i] != fig8[i] {
			t.Errorf("heatmap %d: %s != %s", i, s.Heatmap[i], fig8[i])
		}
	}

	incs := Incidents()
	if len(s.Incidents) != len(incs) {
		t.Fatalf("incident count %d != %d", len(s.Incidents), len(incs))
	}
	for i, inc := range s.Incidents {
		w := incs[i]
		if inc.Name != w.Name || inc.Start() != w.Start || inc.Duration() != w.Duration ||
			inc.FlapPeriod() != w.FlapPeriod || inc.FlapDowntime() != w.FlapDowntime {
			t.Errorf("incident %d: %+v != %+v", i, inc, w)
		}
	}
	nls := MidCampaignLinks()
	if len(s.NewLinks) != len(nls) {
		t.Fatalf("new-link count %d != %d", len(s.NewLinks), len(nls))
	}
	for i, nl := range s.NewLinks {
		w := nls[i]
		if nl.Name != w.Spec.Name || nl.Activate() != w.Activate {
			t.Errorf("new link %d: %+v != %+v", i, nl, w)
		}
		// The runtime-link latency rule: plain geodesic + extra, no
		// detour, no clamp — the formula buildCampaignNetwork used.
		a, _ := SiteByIA(w.Spec.A)
		b, _ := SiteByIA(w.Spec.B)
		exact := topology.GeoLatencyMS(a.Lat, a.Lon, b.Lat, b.Lon) + w.Spec.ExtraMS
		if nl.LatencyMS != exact {
			t.Errorf("new link %q latency %v != %v", nl.Name, nl.LatencyMS, exact)
		}
	}

	wantIP, err := BuildIPPlane()
	if err != nil {
		t.Fatal(err)
	}
	gotIP, err := s.BuildIPPlane()
	if err != nil {
		t.Fatal(err)
	}
	wil, gil := wantIP.Links(), gotIP.Links()
	if len(wil) != len(gil) {
		t.Fatalf("IP plane link count %d != %d", len(gil), len(wil))
	}
	for i := range wil {
		if wil[i].Name != gil[i].Name || wil[i].LatencyMS != gil[i].LatencyMS {
			t.Errorf("IP link %d: %q/%v != %q/%v", i, gil[i].Name, gil[i].LatencyMS, wil[i].Name, wil[i].LatencyMS)
		}
	}
	for _, src := range vant {
		for _, dst := range vant {
			if src == dst {
				continue
			}
			w := IPRTTms(wantIP, src, dst)
			g := s.IPRTTms(gotIP, src, dst)
			if w != g && !(math.IsInf(w, 1) && math.IsInf(g, 1)) {
				t.Errorf("IP RTT %s->%s: %v != %v", src, dst, g, w)
			}
		}
	}

	if s.Campaign.Days != CampaignDays || s.Campaign.IntervalMinutes != 5 {
		t.Errorf("campaign parameters drifted: %+v", s.Campaign)
	}
	if len(s.PoPs) != len(PoPs()) {
		t.Errorf("PoP count %d != %d", len(s.PoPs), len(PoPs()))
	}
}

// TestScenarioRoundTrip pins that the builtin survives serialization:
// file-based workflows (scenario-dump, committed scenario files) see
// the identical deployment.
func TestScenarioRoundTrip(t *testing.T) {
	if err := scenario.RoundTrip(scenario.MustBuiltin("sciera")); err != nil {
		t.Fatal(err)
	}
}
