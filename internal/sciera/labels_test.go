package sciera

import "testing"

// TestRegionLabels pins the region labels used in reports and the
// Figure 1 rendering.
func TestRegionLabels(t *testing.T) {
	cases := map[Region]string{
		Europe:       "EU",
		NorthAmerica: "NA",
		Asia:         "ASIA",
		SouthAmerica: "SA",
		Africa:       "AF",
		Region(42):   "?",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Region(%d).String() = %q, want %q", r, got, want)
		}
	}
}

// TestDeploymentKindLabels pins the learning-curve class labels.
func TestDeploymentKindLabels(t *testing.T) {
	cases := map[DeploymentKind]string{
		KindCoreBackbone:   "core-backbone",
		KindNRENAttach:     "nren-attach",
		KindLeafVLAN:       "leaf-vlan",
		KindLeafNewVLAN:    "leaf-new-vlan",
		DeploymentKind(42): "?",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("DeploymentKind(%d).String() = %q, want %q", k, got, want)
		}
	}
	// Every site carries a valid region and kind label.
	for _, s := range Sites() {
		if s.Region.String() == "?" {
			t.Errorf("site %s has unknown region", s.Name)
		}
		if s.Kind.String() == "?" {
			t.Errorf("site %s has unknown deployment kind", s.Name)
		}
	}
}
