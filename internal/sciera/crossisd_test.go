package sciera

import (
	"testing"
	"time"

	"sciera/internal/core"
	"sciera/internal/simnet"
)

// TestCrossISDPaths verifies the Section 3.2/3.3 property: the two
// ISD 64 ASes (the Swiss production ISD, reached through SWITCH) are
// reachable from the SCIERA ISD over the inter-ISD core link, and the
// paths verify end to end.
func TestCrossISDPaths(t *testing.T) {
	topo, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	sim := simnet.NewSim(time.Unix(1_700_000_000, 0))
	n, err := core.Build(topo, sim, core.Options{Seed: 5, BestPerOrigin: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	ethz := ia("64-2:0:9")
	swiss := ia("64-559")
	for _, dst := range []string{"71-20965", "71-2:0:5c", "71-2:0:3b", "71-1140"} {
		dstIA := ia(dst)
		paths := n.Paths(ethz, dstIA)
		if len(paths) == 0 {
			t.Errorf("no cross-ISD paths ETH Zurich -> %v", dstIA)
			continue
		}
		// Every cross-ISD path transits the Swiss core and GEANT.
		for _, p := range paths {
			ases := p.ASes()
			foundSwiss, foundGEANT := false, false
			for _, a := range ases {
				if a == swiss {
					foundSwiss = true
				}
				if a == ia("71-20965") {
					foundGEANT = true
				}
			}
			if !foundSwiss || !foundGEANT {
				t.Errorf("cross-ISD path skips the inter-ISD core link: %v", ases)
			}
			if a := ases[0]; a != ethz {
				t.Errorf("path starts at %v", a)
			}
		}
	}

	// And the reverse direction.
	if paths := n.Paths(ia("71-2:0:5c"), ethz); len(paths) == 0 {
		t.Error("no paths UFMS -> ETH Zurich")
	}

	// End-to-end SCMP over the cross-ISD path (full data plane).
	resp, err := n.AttachResponder(ethz)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Close()
	pinger, err := n.NewPinger(ia("71-1140")) // SIDN Labs
	if err != nil {
		t.Fatal(err)
	}
	defer pinger.Close()
	paths := n.Paths(ia("71-1140"), ethz)
	if len(paths) == 0 {
		t.Fatal("no SIDN -> ETHZ paths")
	}
	var rtt time.Duration
	var perr error
	pinger.Ping(ethz, resp.Addr().Addr(), paths[0], 5*time.Second, func(d time.Duration, err error) {
		rtt, perr = d, err
	})
	sim.RunFor(10 * time.Second)
	if perr != nil {
		t.Fatalf("cross-ISD ping: %v", perr)
	}
	// Arnhem -> Zurich over Frankfurt: a regional RTT.
	if rtt < time.Millisecond || rtt > 100*time.Millisecond {
		t.Errorf("cross-ISD RTT = %v", rtt)
	}
}
