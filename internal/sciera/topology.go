package sciera

import (
	"fmt"

	"sciera/internal/addr"
	"sciera/internal/topology"
)

// LinkSpec declares one SCIERA circuit.
type LinkSpec struct {
	A, B addr.IA
	Type topology.LinkType
	// Name labels the physical circuit.
	Name string
	// ExtraMS adds cable-detour latency beyond the geodesic estimate.
	ExtraMS float64
	// Detour overrides the default cable-detour factor (0 = default:
	// 1.25 for core circuits, 1.6 for last-mile circuits). Direct
	// transoceanic NREN trunks (EllaLink, AtlanticWave) run close to
	// the geodesic.
	Detour float64
}

// Links lists the deployment's circuits (Figure 1 plus the textual
// descriptions in Section 3.2 and Appendix C). Parallel entries are
// genuine parallel circuits (e.g. the four Singapore–Amsterdam links).
func Links() []LinkSpec {
	core := topology.LinkCore
	parent := topology.LinkParent
	return []LinkSpec{
		// Transatlantic / inter-core backbone.
		{A: ia("71-20965"), B: ia("71-2:0:35"), Type: core, Name: "GEANT-BRIDGES"},
		{A: ia("71-20965"), B: ia("71-2:0:3e"), Type: core, Name: "GEANT-KISTI@AMS"},
		{A: ia("71-20965"), B: ia("71-2:0:3d"), Type: core, Name: "GEANT-KISTI@SG"},
		// Chicago and Ashburn both sit on Internet2 (Table 1:
		// Internet2/StarLight at the Chicago PoP), interconnecting the
		// KREONET ring with BRIDGES inside North America.
		{A: ia("71-2:0:3f"), B: ia("71-2:0:35"), Type: core, Name: "KISTI@CHG-BRIDGES (Internet2)"},

		// KREONET ring around the Northern Hemisphere:
		// DJ - HK - SG - AMS - CHG - STL - DJ.
		{A: ia("71-2:0:3b"), B: ia("71-2:0:3c"), Type: core, Name: "KREONET DJ-HK"},
		{A: ia("71-2:0:3c"), B: ia("71-2:0:3d"), Type: core, Name: "KREONET HK-SG"},
		// Four distinct Singapore-Amsterdam circuits (KREONET, CAE-1,
		// KAUST I & II) — the multipath showcase of Section 3.2.
		{A: ia("71-2:0:3d"), B: ia("71-2:0:3e"), Type: core, Name: "KREONET SG-AMS"},
		{A: ia("71-2:0:3d"), B: ia("71-2:0:3e"), Type: core, Name: "CAE-1 SG-AMS", ExtraMS: 8},
		{A: ia("71-2:0:3d"), B: ia("71-2:0:3e"), Type: core, Name: "KAUST-I SG-AMS", ExtraMS: 14},
		{A: ia("71-2:0:3d"), B: ia("71-2:0:3e"), Type: core, Name: "KAUST-II SG-AMS", ExtraMS: 17},
		{A: ia("71-2:0:3e"), B: ia("71-2:0:3f"), Type: core, Name: "KREONET AMS-CHG"},
		{A: ia("71-2:0:3f"), B: ia("71-2:0:40"), Type: core, Name: "KREONET CHG-STL"},
		{A: ia("71-2:0:40"), B: ia("71-2:0:3b"), Type: core, Name: "KREONET STL-DJ"},
		// Direct Daejeon-Singapore circuit (the one cut by the 2024
		// submarine cable incident).
		{A: ia("71-2:0:3b"), B: ia("71-2:0:3d"), Type: core, Name: "KREONET DJ-SG"},

		// Inter-ISD: GEANT core to the Swiss production ISD via SWITCH.
		{A: ia("71-20965"), B: ia("64-559"), Type: core, Name: "GEANT-SWITCH64"},
		{A: ia("64-559"), B: ia("64-2:0:9"), Type: parent, Name: "SWITCH64-ETHZ"},

		// European leaves under GEANT.
		{A: ia("71-20965"), B: ia("71-559"), Type: parent, Name: "GEANT-SWITCH (Geneva)"},
		{A: ia("71-20965"), B: ia("71-559"), Type: parent, Name: "GEANT-SWITCH (Paris)", ExtraMS: 3},
		{A: ia("71-20965"), B: ia("71-1140"), Type: parent, Name: "GEANT-SIDN (VLAN1)"},
		{A: ia("71-20965"), B: ia("71-1140"), Type: parent, Name: "GEANT-SIDN (VLAN2)", ExtraMS: 3},
		{A: ia("71-20965"), B: ia("71-2546"), Type: parent, Name: "GEANT-Demokritos"},
		{A: ia("71-20965"), B: ia("71-2:0:42"), Type: parent, Name: "GEANT-OVGU"},
		{A: ia("71-20965"), B: ia("71-2:0:49"), Type: parent, Name: "GEANT-CybExer"},
		{A: ia("71-20965"), B: ia("71-203311"), Type: parent, Name: "GEANT-CCDCoE (reused CybExer VLANs)"},
		// WACREN@London over two VLANs.
		{A: ia("71-20965"), B: ia("71-37288"), Type: parent, Name: "GEANT-WACREN (VLAN1)", Detour: 1.25},
		{A: ia("71-20965"), B: ia("71-37288"), Type: parent, Name: "GEANT-WACREN (VLAN2)", ExtraMS: 2, Detour: 1.25},

		// North America under BRIDGES (Internet2 multipoint VLANs).
		// Measured last miles consist of two physical links each
		// (Section 5.5: "the last mile segments at both ends consist
		// of only two physical links").
		{A: ia("71-2:0:35"), B: ia("71-225"), Type: parent, Name: "BRIDGES-UVa (VLAN1)"},
		{A: ia("71-2:0:35"), B: ia("71-225"), Type: parent, Name: "BRIDGES-UVa (VLAN2)", ExtraMS: 2},
		{A: ia("71-2:0:35"), B: ia("71-88"), Type: parent, Name: "BRIDGES-Princeton"},
		{A: ia("71-2:0:35"), B: ia("71-2:0:48"), Type: parent, Name: "BRIDGES-Equinix (cross-connect 1)"},
		{A: ia("71-2:0:35"), B: ia("71-2:0:48"), Type: parent, Name: "BRIDGES-Equinix (cross-connect 2)", ExtraMS: 1},
		{A: ia("71-2:0:35"), B: ia("71-398900"), Type: parent, Name: "BRIDGES-FABRIC"},

		// South America: RNP dual-homed to GEANT and BRIDGES/Internet2
		// over direct submarine trunks (EllaLink / AtlanticWave).
		{A: ia("71-20965"), B: ia("71-1916"), Type: parent, Name: "GEANT-RNP (EllaLink)", Detour: 1.2},
		{A: ia("71-20965"), B: ia("71-1916"), Type: parent, Name: "GEANT-RNP (RedCLARA)", Detour: 1.35},
		{A: ia("71-2:0:35"), B: ia("71-1916"), Type: parent, Name: "BRIDGES-RNP (Internet2/AtlanticWave)", Detour: 1.2},
		{A: ia("71-1916"), B: ia("71-2:0:5c"), Type: parent, Name: "RNP-UFMS (VLAN1)"},
		{A: ia("71-1916"), B: ia("71-2:0:5c"), Type: parent, Name: "RNP-UFMS (VLAN2)", ExtraMS: 4},

		// Asian leaves under the KREONET cores.
		{A: ia("71-2:0:3d"), B: ia("71-2:0:18"), Type: parent, Name: "KISTI@SG-SEC (VXLAN over SingAREN)"},
		{A: ia("71-2:0:3d"), B: ia("71-2:0:61"), Type: parent, Name: "KISTI@SG-NUS (SingAREN OE)"},
		{A: ia("71-2:0:3d"), B: ia("71-50999"), Type: parent, Name: "KISTI@SG-KAUST"},
		{A: ia("71-2:0:3e"), B: ia("71-50999"), Type: parent, Name: "KISTI@AMS-KAUST"},
		{A: ia("71-2:0:3b"), B: ia("71-2:0:4a"), Type: parent, Name: "KISTI@DJ-KoreaUniv (VLAN1)"},
		{A: ia("71-2:0:3b"), B: ia("71-2:0:4a"), Type: parent, Name: "KISTI@DJ-KoreaUniv (VLAN2)", ExtraMS: 1},
		{A: ia("71-2:0:3c"), B: ia("71-4158"), Type: parent, Name: "KISTI@HK-CityU"},
	}
}

// Build constructs the SCION-plane topology with geodesic latencies.
func Build() (*topology.Topology, error) {
	topo := topology.New()
	sites := Sites()
	for _, s := range sites {
		if err := topo.AddAS(topology.ASInfo{
			IA: s.IA, Core: s.Core, Name: s.Name, Lat: s.Lat, Lon: s.Lon,
		}); err != nil {
			return nil, err
		}
	}
	for _, l := range Links() {
		a, okA := SiteByIA(l.A)
		b, okB := SiteByIA(l.B)
		if !okA || !okB {
			return nil, fmt.Errorf("sciera: link %q references unknown AS", l.Name)
		}
		// Academic L2 circuits detour through NREN PoPs rather than
		// following geodesics: core circuits ride shared backbones
		// (mild detour), last-mile circuits hairpin through exchange
		// points (stronger detour).
		detour := 1.25
		if l.Type == topology.LinkParent {
			detour = 1.6
		}
		if l.Detour > 0 {
			detour = l.Detour
		}
		lat := topology.GeoLatencyMS(a.Lat, a.Lon, b.Lat, b.Lon)*detour + l.ExtraMS
		if lat < 0.3 {
			lat = 0.3 // metro circuits still have equipment latency
		}
		if _, err := topo.AddLink(
			topology.LinkEnd{IA: l.A}, topology.LinkEnd{IA: l.B},
			l.Type, lat, l.Name,
		); err != nil {
			return nil, fmt.Errorf("sciera: link %q: %w", l.Name, err)
		}
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	return topo, nil
}

// LinkIDByName resolves a circuit by name (for the incident calendar).
func LinkIDByName(topo *topology.Topology, name string) (int, bool) {
	for _, l := range topo.Links() {
		if l.Name == name {
			return l.ID, true
		}
	}
	return 0, false
}
