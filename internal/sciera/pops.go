package sciera

import (
	"time"

	"sciera/internal/topology"
)

// PoP is a SCIERA point of presence (Table 1).
type PoP struct {
	Location        string
	PeeringNRENs    []string
	PartnerNetworks []string
}

// PoPs reproduces Table 1.
func PoPs() []PoP {
	return []PoP{
		{"Amsterdam, NL", []string{"GEANT", "KREONET"}, []string{"Netherlight"}},
		{"Ashburn, US", []string{"BRIDGES"}, []string{"Internet2", "MARIA"}},
		{"Chicago, US", []string{"KREONET"}, []string{"Internet2", "StarLight"}},
		{"Daejeon, KR", []string{"KREONET"}, []string{"KISTI"}},
		{"Frankfurt, DE", []string{"GEANT"}, nil},
		{"Geneva, CH", []string{"GEANT"}, []string{"CERN", "SWITCH"}},
		{"Hong Kong, HK", []string{"KREONET"}, []string{"CSTNet", "HARNET"}},
		{"Jacksonville, US", []string{"RNP"}, []string{"Internet2", "AtlanticWave"}},
		{"Jeddah, SA", []string{"GEANT", "KREONET"}, []string{"KAUST"}},
		{"Lisbon, PT", []string{"GEANT", "RNP"}, []string{"RedCLARA"}},
		{"London, GB", []string{"GEANT", "WACREN"}, []string{"AfricaConnect"}},
		{"Madrid, ES", []string{"GEANT", "RNP"}, []string{"RedCLARA"}},
		{"McLean, US", []string{"BRIDGES"}, []string{"Internet2", "WIX"}},
		{"Paris, FR", []string{"GEANT"}, []string{"SWITCH"}},
		{"Seattle, US", []string{"KREONET"}, []string{"Internet2", "PacificWave"}},
		{"Singapore, SG", []string{"GEANT", "KREONET"}, []string{"SingAREN"}},
	}
}

// Incident is one operational event of the measurement window
// (Section 5.4's outlier explanations and Figure 7's spikes). Offsets
// are relative to the campaign start; Links name circuits from Links().
type Incident struct {
	Name     string
	Links    []string
	Start    time.Duration // offset into the campaign
	Duration time.Duration
	// Flapping incidents cycle with this period (zero: solid outage)...
	FlapPeriod time.Duration
	// ...staying down for FlapDowntime at the start of each cycle
	// (defaults to half the period).
	FlapDowntime time.Duration
}

// CampaignDays is the paper's measurement window length.
const CampaignDays = 20

// Incidents reproduces the disclosed events; the campaign runs roughly
// Jan 15 – Feb 4 in paper time, so day offsets map Jan 21 to day 6,
// Jan 25 to day 10 and Feb 6 lies just past the end (we keep its
// preceding churn). The Korea–Singapore cable cut predates the window
// and holds for its entirety.
func Incidents() []Incident {
	day := 24 * time.Hour
	return []Incident{
		{
			// Submarine cable cut: the Korea/Hong Kong-Singapore
			// corridor shares a cable system, so both the direct
			// Daejeon-Singapore circuit and the Hong Kong-Singapore
			// ring segment are down for the whole window; traffic
			// between Daejeon and Singapore routes the long way around
			// the globe (Chicago/Amsterdam) — the paper's first
			// Figure 6 outlier.
			// The corridor is intact for the first days of the window,
			// so the full direct-path diversity is observed before it
			// collapses — producing Figure 9's large median deviation
			// for the Daejeon-Singapore pair.
			Name:     "KR-SG submarine cable cut",
			Links:    []string{"KREONET DJ-SG", "KREONET HK-SG"},
			Start:    4 * day,
			Duration: (CampaignDays - 4) * day,
		},
		{
			// BRIDGES instabilities: the transatlantic circuit of the
			// UVa/Princeton/Equinix hub flaps repeatedly during the
			// window; traffic reroutes over the Chicago Internet2
			// interconnect on longer paths (elevated RTTs, the paper's
			// second Figure 6 outlier — not a disconnection).
			Name:         "BRIDGES routing instabilities",
			Links:        []string{"GEANT-BRIDGES"},
			Start:        2 * day,
			Duration:     14 * day,
			FlapPeriod:   48 * time.Hour,
			FlapDowntime: 5 * time.Hour,
		},
		{
			// The RNP-Internet2 circuit is down during the window, so
			// UFMS reaches North America through GEANT (the third
			// outlier set of Figure 6).
			Name:     "RNP-Internet2 circuit outage (UFMS detours via GEANT)",
			Links:    []string{"BRIDGES-RNP (Internet2/AtlanticWave)"},
			Start:    0,
			Duration: CampaignDays * day,
		},
		{
			// Jan 21: maintenance affecting several links at once.
			Name: "maintenance window (Jan 21)",
			Links: []string{
				"GEANT-KISTI@AMS",
				"KREONET AMS-CHG",
				"GEANT-SWITCH (Geneva)",
			},
			Start:    6 * day,
			Duration: 18 * time.Hour,
		},
		{
			// Jan 22-24: post-maintenance churn.
			Name:         "post-maintenance churn",
			Links:        []string{"GEANT-KISTI@AMS"},
			Start:        7 * day,
			Duration:     2 * day,
			FlapPeriod:   12 * time.Hour,
			FlapDowntime: 4 * time.Hour,
		},
		{
			// Feb 6 spike equivalents: node upgrades near the end.
			Name:         "node upgrades",
			Links:        []string{"KREONET CHG-STL", "GEANT-BRIDGES"},
			Start:        18 * day,
			Duration:     2 * day,
			FlapPeriod:   16 * time.Hour,
			FlapDowntime: 5 * time.Hour,
		},
	}
}

// NewLinks lists circuits that come up mid-campaign (Jan 25: "several
// new links between EU and US became available"). They are built into
// the topology but held down until Activate.
type NewLink struct {
	Spec     LinkSpec
	Activate time.Duration
}

// MidCampaignLinks returns the EU-US circuits activated on day 10.
func MidCampaignLinks() []NewLink {
	day := 24 * time.Hour
	// The new circuits parallel existing EU-US corridors (additional
	// capacity/redundancy on trunks that already exist), so they add
	// resilience without reshaping the per-pair path-count maxima.
	return []NewLink{
		{
			Spec: LinkSpec{A: ia("71-20965"), B: ia("71-2:0:35"),
				Type: topology.LinkCore, Name: "GEANT-BRIDGES (new circuit)", ExtraMS: 4},
			Activate: 10 * day,
		},
		{
			Spec: LinkSpec{A: ia("71-20965"), B: ia("71-2:0:3e"),
				Type: topology.LinkCore, Name: "GEANT-KISTI@AMS (new circuit)", ExtraMS: 2},
			Activate: 10 * day,
		},
	}
}
