package sciera

import (
	"math"
	"testing"
	"time"

	"sciera/internal/addr"
	"sciera/internal/core"
	"sciera/internal/simnet"
	"sciera/internal/topology"
)

func TestSitesConsistent(t *testing.T) {
	seen := make(map[addr.IA]bool)
	cores := 0
	for _, s := range Sites() {
		if seen[s.IA] {
			t.Errorf("duplicate IA %v", s.IA)
		}
		seen[s.IA] = true
		if s.Name == "" || (s.Lat == 0 && s.Lon == 0) {
			t.Errorf("site %v incomplete: %+v", s.IA, s)
		}
		if s.Core {
			cores++
		}
	}
	// Cores: GEANT, BRIDGES, six KREONET ring ASes, SWITCH(ISD64).
	if cores != 9 {
		t.Errorf("cores = %d, want 9", cores)
	}
	// All measurement vantage ASes are sites.
	for _, ia := range VantageASes() {
		if !seen[ia] {
			t.Errorf("vantage %v not a site", ia)
		}
	}
	if len(VantageASes()) != 11 {
		t.Errorf("vantage count = %d, want 11 (Section 5.4)", len(VantageASes()))
	}
	if len(Figure8ASes()) != 9 {
		t.Errorf("figure 8 ASes = %d, want 9", len(Figure8ASes()))
	}
	if _, ok := SiteByIA(ia("71-20965")); !ok {
		t.Error("GEANT missing")
	}
	if _, ok := SiteByIA(ia("99-1")); ok {
		t.Error("phantom site found")
	}
}

func TestBuildTopology(t *testing.T) {
	topo, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(topo.ASes()); got != len(Sites()) {
		t.Errorf("ASes = %d, want %d", got, len(Sites()))
	}
	// The four Singapore-Amsterdam circuits are parallel links.
	sgams := 0
	for _, l := range topo.Links() {
		pair := [2]addr.IA{l.A.IA, l.B.IA}
		if pair == [2]addr.IA{ia("71-2:0:3d"), ia("71-2:0:3e")} ||
			pair == [2]addr.IA{ia("71-2:0:3e"), ia("71-2:0:3d")} {
			sgams++
		}
		if l.LatencyMS <= 0 {
			t.Errorf("link %q has no latency", l.Name)
		}
	}
	if sgams != 4 {
		t.Errorf("SG-AMS circuits = %d, want 4", sgams)
	}
	// Every incident references a real link.
	for _, inc := range Incidents() {
		for _, name := range inc.Links {
			if _, ok := LinkIDByName(topo, name); !ok {
				t.Errorf("incident %q references unknown link %q", inc.Name, name)
			}
		}
	}
	// Transpacific latency sanity: Daejeon-Seattle is ~8000 km, so the
	// circuit should be 50-90 ms one way.
	id, ok := LinkIDByName(topo, "KREONET STL-DJ")
	if !ok {
		t.Fatal("STL-DJ link missing")
	}
	for _, l := range topo.Links() {
		if l.ID == id && (l.LatencyMS < 40 || l.LatencyMS > 100) {
			t.Errorf("STL-DJ latency = %v ms", l.LatencyMS)
		}
	}
}

func TestDeploymentPathDiversity(t *testing.T) {
	topo, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	sim := simnet.NewSim(time.Unix(1_700_000_000, 0))
	n, err := core.Build(topo, sim, core.Options{Seed: 42, BestPerOrigin: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	// Every Figure 8 pair has at least 2 paths (the figure's minimum).
	fig8 := Figure8ASes()
	minPaths, maxPaths := 1<<30, 0
	for _, src := range fig8 {
		for _, dst := range fig8 {
			if src == dst {
				continue
			}
			paths := n.Paths(src, dst)
			if len(paths) < 2 {
				t.Errorf("%v -> %v: %d paths, want >= 2", src, dst, len(paths))
			}
			if len(paths) < minPaths {
				minPaths = len(paths)
			}
			if len(paths) > maxPaths {
				maxPaths = len(paths)
			}
		}
	}
	// All vantage pairs are at least connected.
	for _, src := range VantageASes() {
		for _, dst := range VantageASes() {
			if src != dst && len(n.Paths(src, dst)) == 0 {
				t.Errorf("%v -> %v unreachable", src, dst)
			}
		}
	}
	// Some pair exhibits two-digit diversity (the paper reports up to
	// 113 for UVa-UFMS).
	if maxPaths < 20 {
		t.Errorf("max paths = %d, want >= 20", maxPaths)
	}
	t.Logf("path diversity across vantage pairs: min=%d max=%d", minPaths, maxPaths)

	// The Daejeon-Singapore pair has paths both via the direct circuit
	// and around the globe.
	dj, sg := ia("71-2:0:3b"), ia("71-2:0:3d")
	paths := n.Paths(dj, sg)
	direct, long := false, false
	for _, p := range paths {
		if p.LatencyMS < 60 {
			direct = true
		}
		if p.LatencyMS > 150 {
			long = true
		}
	}
	if !direct || !long {
		t.Errorf("DJ-SG path mix: direct=%v around-the-globe=%v (%d paths)", direct, long, len(paths))
	}
}

func TestIPPlane(t *testing.T) {
	ipTopo, err := BuildIPPlane()
	if err != nil {
		t.Fatal(err)
	}
	// Every site pair is reachable with a plausible RTT.
	sites := VantageASes()
	for _, a := range sites {
		for _, b := range sites {
			if a == b {
				continue
			}
			rtt := IPRTTms(ipTopo, a, b)
			if math.IsInf(rtt, 1) {
				t.Errorf("%v -> %v unreachable on IP plane", a, b)
				continue
			}
			// Worst case: Singapore <-> Campo Grande over the sparse
			// transit backbone is just above 500 ms.
			if rtt < 1 || rtt > 550 {
				t.Errorf("%v -> %v IP RTT = %v ms", a, b, rtt)
			}
		}
	}
	// Geographically close pairs are fast: GEANT (Frankfurt) to SIDN
	// (Arnhem) should be well under 30ms RTT.
	if rtt := IPRTTms(ipTopo, ia("71-20965"), ia("71-1140")); rtt > 30 {
		t.Errorf("GEANT-SIDN IP RTT = %v ms", rtt)
	}
	// Antipodal pairs are slow: Daejeon to UFMS well over 150ms.
	if rtt := IPRTTms(ipTopo, ia("71-2:0:3b"), ia("71-2:0:5c")); rtt < 150 {
		t.Errorf("DJ-UFMS IP RTT = %v ms", rtt)
	}
}

func TestPoPsTable(t *testing.T) {
	pops := PoPs()
	if len(pops) != 16 {
		t.Errorf("PoPs = %d, want 16 (Table 1)", len(pops))
	}
	for _, p := range pops {
		if p.Location == "" || len(p.PeeringNRENs) == 0 {
			t.Errorf("PoP incomplete: %+v", p)
		}
	}
}

func TestTimelineOrdered(t *testing.T) {
	var first, last time.Time
	for _, s := range Sites() {
		if s.Joined.IsZero() {
			continue
		}
		if first.IsZero() || s.Joined.Before(first) {
			first = s.Joined
		}
		if s.Joined.After(last) {
			last = s.Joined
		}
		if s.Effort <= 0 || s.Effort > 10 {
			t.Errorf("%s effort = %v", s.Name, s.Effort)
		}
	}
	if first.Year() != 2022 || last.Year() != 2025 {
		t.Errorf("timeline spans %v - %v, want 2022 - 2025 (Figure 3)", first, last)
	}
}

func TestMidCampaignLinks(t *testing.T) {
	for _, nl := range MidCampaignLinks() {
		if _, ok := SiteByIA(nl.Spec.A); !ok {
			t.Errorf("new link %q references unknown AS", nl.Spec.Name)
		}
		if nl.Activate <= 0 {
			t.Errorf("new link %q has no activation time", nl.Spec.Name)
		}
	}
	_ = topology.LinkCore
}
