// Package sciera encodes the SCIERA deployment itself: the Figure 1
// topology (ISD 71 plus the two ISD 64 ASes reached via SWITCH), the
// Table 1 points of presence with coordinates, the Figure 3 deployment
// timeline, the incident calendar disclosed in Section 5.4, and the
// richer IP-plane topology used as the BGP baseline.
//
// Link latencies are derived from great-circle distances between the
// PoPs (see topology.GeoLatencyMS) — the substitution documented in
// DESIGN.md for the paper's physical circuits. AS numbers follow the
// paper; where the paper leaves an AS unnamed (71-2:0:4a appears only
// in Figures 8/9) we assign it to Korea University and note it here.
package sciera

import (
	"time"

	"sciera/internal/addr"
)

// Region labels the paper's deployment regions.
type Region int

const (
	Europe Region = iota
	NorthAmerica
	Asia
	SouthAmerica
	Africa
)

func (r Region) String() string {
	switch r {
	case Europe:
		return "EU"
	case NorthAmerica:
		return "NA"
	case Asia:
		return "ASIA"
	case SouthAmerica:
		return "SA"
	case Africa:
		return "AF"
	default:
		return "?"
	}
}

// Site is one SCIERA AS.
type Site struct {
	Name     string
	IA       addr.IA
	Core     bool
	Region   Region
	Lat, Lon float64
	// Joined is when the AS connected (Figure 3); zero when under
	// construction during the paper's snapshot.
	Joined time.Time
	// Effort is the paper's relative deployment-effort estimate
	// (Figure 3's y-axis, 1 = trivial, 10 = months of coordination).
	Effort float64
	// Kind classifies the deployment for the learning-curve model.
	Kind DeploymentKind
}

// DeploymentKind classifies deployments for the effort model.
type DeploymentKind int

const (
	KindCoreBackbone DeploymentKind = iota // new core AS with hardware procurement
	KindNRENAttach                         // attach via an experienced NREN
	KindLeafVLAN                           // leaf over established VLAN infrastructure
	KindLeafNewVLAN                        // leaf needing new multi-party VLANs
)

func (k DeploymentKind) String() string {
	switch k {
	case KindCoreBackbone:
		return "core-backbone"
	case KindNRENAttach:
		return "nren-attach"
	case KindLeafVLAN:
		return "leaf-vlan"
	case KindLeafNewVLAN:
		return "leaf-new-vlan"
	default:
		return "?"
	}
}

func d(y int, m time.Month) time.Time { return time.Date(y, m, 15, 0, 0, 0, 0, time.UTC) }

func ia(s string) addr.IA { return addr.MustParseIA(s) }

// Sites lists every AS of the deployment (Figure 1 plus Figure 3
// timing). Order: roughly by join date.
func Sites() []Site {
	return []Site{
		// Europe.
		{Name: "GEANT", IA: ia("71-20965"), Core: true, Region: Europe, Lat: 50.11, Lon: 8.68,
			Joined: d(2022, time.June), Effort: 9.0, Kind: KindCoreBackbone},
		{Name: "SWITCH", IA: ia("71-559"), Region: Europe, Lat: 46.20, Lon: 6.14,
			Joined: d(2022, time.September), Effort: 2.0, Kind: KindNRENAttach},
		{Name: "SIDN Labs", IA: ia("71-1140"), Region: Europe, Lat: 52.09, Lon: 5.12,
			Joined: d(2023, time.March), Effort: 2.0, Kind: KindLeafVLAN},
		{Name: "CybExer", IA: ia("71-2:0:49"), Region: Europe, Lat: 59.44, Lon: 24.75,
			Joined: d(2023, time.July), Effort: 1.5, Kind: KindLeafVLAN},
		{Name: "OVGU", IA: ia("71-2:0:42"), Region: Europe, Lat: 52.14, Lon: 11.64,
			Joined: d(2023, time.August), Effort: 2.0, Kind: KindLeafVLAN},
		{Name: "Demokritos", IA: ia("71-2546"), Region: Europe, Lat: 37.99, Lon: 23.82,
			Joined: d(2023, time.September), Effort: 1.5, Kind: KindLeafVLAN},
		{Name: "CCDCoE", IA: ia("71-203311"), Region: Europe, Lat: 59.40, Lon: 24.67,
			Joined: d(2024, time.September), Effort: 1.0, Kind: KindLeafVLAN},

		// North America.
		{Name: "BRIDGES", IA: ia("71-2:0:35"), Core: true, Region: NorthAmerica, Lat: 38.95, Lon: -77.45,
			Joined: d(2023, time.March), Effort: 8.0, Kind: KindCoreBackbone},
		{Name: "UVa", IA: ia("71-225"), Region: NorthAmerica, Lat: 38.03, Lon: -78.51,
			Joined: d(2023, time.March), Effort: 5.0, Kind: KindLeafNewVLAN},
		{Name: "Equinix", IA: ia("71-2:0:48"), Region: NorthAmerica, Lat: 39.02, Lon: -77.46,
			Joined: d(2023, time.May), Effort: 4.0, Kind: KindLeafNewVLAN},
		{Name: "Princeton", IA: ia("71-88"), Region: NorthAmerica, Lat: 40.34, Lon: -74.65,
			Joined: d(2023, time.August), Effort: 5.0, Kind: KindLeafNewVLAN},
		{Name: "FABRIC", IA: ia("71-398900"), Region: NorthAmerica, Lat: 35.91, Lon: -79.05,
			Joined: d(2023, time.November), Effort: 3.0, Kind: KindLeafVLAN},

		// Asia (KREONET ring cores + leaves).
		{Name: "KISTI DJ", IA: ia("71-2:0:3b"), Core: true, Region: Asia, Lat: 36.35, Lon: 127.38,
			Joined: d(2024, time.May), Effort: 6.0, Kind: KindCoreBackbone},
		{Name: "KISTI SG", IA: ia("71-2:0:3d"), Core: true, Region: Asia, Lat: 1.35, Lon: 103.82,
			Joined: d(2024, time.May), Effort: 5.5, Kind: KindCoreBackbone},
		{Name: "KISTI AMS", IA: ia("71-2:0:3e"), Core: true, Region: Europe, Lat: 52.37, Lon: 4.90,
			Joined: d(2024, time.May), Effort: 5.5, Kind: KindCoreBackbone},
		{Name: "KISTI CHG", IA: ia("71-2:0:3f"), Core: true, Region: NorthAmerica, Lat: 41.88, Lon: -87.63,
			Joined: d(2023, time.October), Effort: 4.5, Kind: KindCoreBackbone},
		{Name: "KISTI HK", IA: ia("71-2:0:3c"), Core: true, Region: Asia, Lat: 22.32, Lon: 114.17,
			Joined: d(2024, time.August), Effort: 2.5, Kind: KindCoreBackbone},
		{Name: "KISTI STL", IA: ia("71-2:0:40"), Core: true, Region: NorthAmerica, Lat: 47.61, Lon: -122.33,
			Joined: d(2024, time.August), Effort: 2.5, Kind: KindCoreBackbone},
		{Name: "SEC", IA: ia("71-2:0:18"), Region: Asia, Lat: 1.30, Lon: 103.77,
			Joined: d(2023, time.October), Effort: 3.5, Kind: KindLeafNewVLAN},
		// 71-2:0:4a appears in Figures 8/9 without a name; we assign it
		// to Korea University (the remaining named Asian leaf).
		{Name: "Korea University", IA: ia("71-2:0:4a"), Region: Asia, Lat: 37.59, Lon: 127.03,
			Joined: d(2024, time.June), Effort: 2.0, Kind: KindLeafVLAN},
		{Name: "CityU HK", IA: ia("71-4158"), Region: Asia, Lat: 22.34, Lon: 114.17,
			Joined: d(2024, time.October), Effort: 2.0, Kind: KindLeafVLAN},
		{Name: "NUS", IA: ia("71-2:0:61"), Region: Asia, Lat: 1.30, Lon: 103.78,
			Joined: d(2025, time.June), Effort: 1.5, Kind: KindLeafVLAN},
		{Name: "KAUST", IA: ia("71-50999"), Region: Asia, Lat: 22.31, Lon: 39.10,
			Joined: d(2025, time.March), Effort: 3.0, Kind: KindLeafNewVLAN},

		// South America.
		{Name: "RNP", IA: ia("71-1916"), Region: SouthAmerica, Lat: -22.91, Lon: -43.17,
			Joined: d(2025, time.April), Effort: 2.0, Kind: KindNRENAttach},
		{Name: "UFMS", IA: ia("71-2:0:5c"), Region: SouthAmerica, Lat: -20.47, Lon: -54.62,
			Joined: d(2024, time.August), Effort: 2.5, Kind: KindLeafVLAN},

		// Africa.
		{Name: "WACREN", IA: ia("71-37288"), Region: Africa, Lat: 51.51, Lon: -0.13, // WACREN@London PoP
			Joined: d(2024, time.November), Effort: 3.0, Kind: KindNRENAttach},

		// ISD 64 (the Swiss production ISD reached via SWITCH).
		{Name: "SWITCH (ISD64)", IA: ia("64-559"), Core: true, Region: Europe, Lat: 47.38, Lon: 8.54,
			Joined: d(2022, time.September), Effort: 1.0, Kind: KindNRENAttach},
		{Name: "ETH Zurich", IA: ia("64-2:0:9"), Region: Europe, Lat: 47.38, Lon: 8.55,
			Joined: d(2022, time.September), Effort: 1.0, Kind: KindLeafVLAN},
	}
}

// SiteByIA returns the site for an IA.
func SiteByIA(target addr.IA) (Site, bool) {
	for _, s := range Sites() {
		if s.IA == target {
			return s, true
		}
	}
	return Site{}, false
}

// VantageASes lists the ASes running the multiping measurement tool
// (Section 5.4 deploys it in 11 ASes; the nine of Figures 8/9 plus
// SWITCH and SIDN Labs).
func VantageASes() []addr.IA {
	return []addr.IA{
		ia("71-20965"),  // GEANT (EU)
		ia("71-559"),    // SWITCH (EU)
		ia("71-1140"),   // SIDN Labs (EU)
		ia("71-2:0:3e"), // KISTI AMS (EU)
		ia("71-2:0:3b"), // KISTI DJ (Asia)
		ia("71-2:0:3d"), // KISTI SG (Asia)
		ia("71-2:0:4a"), // Korea University (Asia)
		ia("71-225"),    // UVa (NA)
		ia("71-2:0:48"), // Equinix (NA)
		ia("71-2:0:3f"), // KISTI CHG (NA)
		ia("71-2:0:5c"), // UFMS (SA)
	}
}

// Figure8ASes lists the nine ASes of the path-diversity heatmaps.
func Figure8ASes() []addr.IA {
	return []addr.IA{
		ia("71-20965"),
		ia("71-225"),
		ia("71-2:0:3b"),
		ia("71-2:0:3d"),
		ia("71-2:0:3e"),
		ia("71-2:0:3f"),
		ia("71-2:0:48"),
		ia("71-2:0:4a"),
		ia("71-2:0:5c"),
	}
}
