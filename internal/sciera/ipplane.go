package sciera

import (
	"fmt"

	"sciera/internal/addr"
	"sciera/internal/topology"
)

// The IP baseline plane. The paper compares SCION RTTs against ICMP
// over the commercial Internet, which has far more direct links than
// SCIERA's L2 circuits but routes by BGP policy (AS-path length, not
// latency) with the usual path inflation. We model this as a transit
// topology: every site attaches to its one or two nearest commercial
// transit hubs, the hubs form a full mesh, and hub-hub circuits carry a
// deterministic "policy detour" inflation of 15-40% over the geodesic.
// The BGP route is the hop-count-minimal path (topology.BGPWeight).

// ipHub is a commercial transit hub.
type ipHub struct {
	Name     string
	IA       addr.IA
	Lat, Lon float64
}

func ipHubs() []ipHub {
	return []ipHub{
		{"Frankfurt", ia("1-1"), 50.11, 8.68},
		{"London", ia("1-2"), 51.51, -0.13},
		{"Ashburn", ia("1-3"), 39.02, -77.46},
		{"LosAngeles", ia("1-4"), 34.05, -118.24},
		{"SaoPaulo", ia("1-5"), -23.55, -46.63},
		{"Singapore", ia("1-6"), 1.35, 103.82},
		{"Tokyo", ia("1-7"), 35.68, 139.69},
	}
}

// hubEdge is one transit trunk with its policy-detour factor:
// competitive primary trunks stay near the geodesic, secondary routes
// detour heavily (interdomain paths do not follow geodesics).
type hubEdge struct {
	a, b   string
	detour float64
}

// hubEdges is the transit backbone: a realistic sparse graph (there is
// no direct São Paulo-Singapore cable), so BGP's hop-count-minimal
// routes between far-apart regions compound detours — producing the
// heavy IP tail of Figure 5 — while the dense primary trunks keep
// midrange pairs fast.
func hubEdges() []hubEdge {
	return []hubEdge{
		{"Frankfurt", "London", 1.15},
		{"Frankfurt", "Ashburn", 1.2},
		{"London", "Ashburn", 1.25},
		{"Ashburn", "LosAngeles", 1.3},
		{"LosAngeles", "Tokyo", 1.25},
		{"Tokyo", "Singapore", 1.45},
		{"LosAngeles", "Singapore", 1.65},
		{"Frankfurt", "Singapore", 1.8}, // via Suez, congested
		{"SaoPaulo", "Ashburn", 1.4},
		{"SaoPaulo", "London", 1.65},
	}
}

// BuildIPPlane constructs the commercial-Internet topology over the
// same sites.
func BuildIPPlane() (*topology.Topology, error) {
	topo := topology.New()
	hubs := ipHubs()
	for _, h := range hubs {
		if err := topo.AddAS(topology.ASInfo{IA: h.IA, Core: true, Name: "transit-" + h.Name, Lat: h.Lat, Lon: h.Lon}); err != nil {
			return nil, err
		}
	}
	for _, s := range Sites() {
		if err := topo.AddAS(topology.ASInfo{IA: s.IA, Name: s.Name, Lat: s.Lat, Lon: s.Lon}); err != nil {
			return nil, err
		}
	}
	// Sparse transit backbone with policy detours.
	hubByName := make(map[string]ipHub, len(hubs))
	for _, h := range hubs {
		hubByName[h.Name] = h
	}
	for _, e := range hubEdges() {
		a, b := hubByName[e.a], hubByName[e.b]
		lat := topology.GeoLatencyMS(a.Lat, a.Lon, b.Lat, b.Lon) * e.detour
		if _, err := topo.AddLink(
			topology.LinkEnd{IA: a.IA}, topology.LinkEnd{IA: b.IA},
			topology.LinkCore, lat, fmt.Sprintf("ip:%s-%s", a.Name, b.Name),
		); err != nil {
			return nil, err
		}
	}
	// Sites in the dense EU/NA transit markets are dual-homed; sites
	// elsewhere reach the world through their single regional hub (the
	// common reality for SA/Asia/Africa NRENs).
	for _, s := range Sites() {
		homes := 1
		if s.Region == Europe || s.Region == NorthAmerica {
			homes = 2
		}
		type cand struct {
			hub ipHub
			lat float64
		}
		best := []cand{}
		for _, h := range hubs {
			l := topology.GeoLatencyMS(s.Lat, s.Lon, h.Lat, h.Lon)
			best = append(best, cand{h, l})
		}
		// Selection sort of the nearest hubs.
		for k := 0; k < homes && k < len(best); k++ {
			minIdx := k
			for m := k + 1; m < len(best); m++ {
				if best[m].lat < best[minIdx].lat {
					minIdx = m
				}
			}
			best[k], best[minIdx] = best[minIdx], best[k]
			access := best[k].lat*1.03 + 0.3 // IXP-dense last mile: near-geodesic
			if _, err := topo.AddLink(
				topology.LinkEnd{IA: best[k].hub.IA}, topology.LinkEnd{IA: s.IA},
				topology.LinkParent, access, fmt.Sprintf("ip:%s-%s", best[k].hub.Name, s.Name),
			); err != nil {
				return nil, err
			}
		}
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	return topo, nil
}

// IPRTTms computes the BGP-routed round-trip time between two sites on
// the IP plane, in milliseconds, including per-hop forwarding cost.
// It returns +Inf when unreachable.
func IPRTTms(ipTopo *topology.Topology, src, dst addr.IA) float64 {
	r := ipTopo.ShortestRoute(src, dst, topology.BGPWeight)
	return r.RTT(0.15)
}
