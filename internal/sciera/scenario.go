package sciera

import (
	"sciera/internal/addr"
	"sciera/internal/scenario"
	"sciera/internal/topology"
)

// This file re-expresses the hard-coded deployment tables as the
// built-in "sciera" reference scenario. The Go tables in ases.go,
// topology.go, pops.go and ipplane.go remain the single source of
// truth; Scenario() is a pure projection of them into the scenario
// schema, registered at init time so every scenario consumer (the
// experiment suite, cmd/experiments -scenario sciera, -scenario-dump)
// reaches the deployment by name. The projection is latency-exact: the
// scenario loader resolves geodesic latencies with the same expressions
// Build uses, so the reference campaign's bytes do not change
// (TestScenarioMatchesTables pins this).

func init() {
	scenario.Register("sciera", Scenario)
}

// linkTypeName maps a topology link type to its scenario string.
func linkTypeName(t topology.LinkType) string {
	switch t {
	case topology.LinkCore:
		return scenario.LinkCore
	case topology.LinkParent:
		return scenario.LinkParent
	default:
		return scenario.LinkPeer
	}
}

// Scenario projects the deployment tables into a scenario document.
func Scenario() (*scenario.Scenario, error) {
	// Transit ASes are the non-core ASes that parent other ASes (RNP,
	// both SWITCH deployments); everything else non-core is a leaf.
	hasChildren := map[addr.IA]bool{}
	for _, l := range Links() {
		if l.Type == topology.LinkParent {
			hasChildren[l.A] = true
		}
	}

	s := &scenario.Scenario{
		Version: scenario.Version,
		Name:    "sciera",
		Description: "The SCIERA deployment: Figure 1 topology (ISD 71 plus the " +
			"ISD 64 ASes reached via SWITCH), Table 1 PoPs, the Figure 3 " +
			"deployment timeline, the Section 5.4 incident calendar, and the " +
			"commercial-Internet baseline plane.",
		Campaign: scenario.Campaign{
			Days:                 CampaignDays,
			IntervalMinutes:      5,
			QuickDays:            2,
			QuickIntervalMinutes: 10,
			// The region-spanning quick subset: GEANT (EU), SIDN (EU),
			// KISTI DJ and SG (Asia), UVa (NA), UFMS (SA).
			QuickVantage: []addr.IA{
				ia("71-20965"), ia("71-1140"), ia("71-2:0:3b"),
				ia("71-2:0:3d"), ia("71-225"), ia("71-2:0:5c"),
			},
			BestPerOrigin: 16,
			StartUnix:     1_737_000_000, // mid-January, paper time
		},
		Vantage: VantageASes(),
		Heatmap: Figure8ASes(),
	}

	for _, site := range Sites() {
		role := "leaf"
		if site.Core {
			role = "core"
		} else if hasChildren[site.IA] {
			role = "transit"
		}
		s.ASes = append(s.ASes, scenario.AS{
			Name:   site.Name,
			IA:     site.IA,
			Core:   site.Core,
			Role:   role,
			Region: site.Region.String(),
			Lat:    site.Lat,
			Lon:    site.Lon,
			Joined: site.Joined.Format("2006-01"),
			Effort: site.Effort,
			Kind:   site.Kind.String(),
		})
	}

	for _, l := range Links() {
		s.Links = append(s.Links, scenario.Link{
			Name: l.Name, A: l.A, B: l.B,
			Type:    linkTypeName(l.Type),
			ExtraMS: l.ExtraMS, Detour: l.Detour,
		})
	}
	for _, nl := range MidCampaignLinks() {
		s.NewLinks = append(s.NewLinks, scenario.NewLink{
			Link: scenario.Link{
				Name: nl.Spec.Name, A: nl.Spec.A, B: nl.Spec.B,
				Type:    linkTypeName(nl.Spec.Type),
				ExtraMS: nl.Spec.ExtraMS, Detour: nl.Spec.Detour,
			},
			ActivateHours: nl.Activate.Hours(),
		})
	}

	for _, inc := range Incidents() {
		s.Incidents = append(s.Incidents, scenario.Incident{
			Name:              inc.Name,
			Links:             inc.Links,
			StartHours:        inc.Start.Hours(),
			DurationHours:     inc.Duration.Hours(),
			FlapPeriodHours:   inc.FlapPeriod.Hours(),
			FlapDowntimeHours: inc.FlapDowntime.Hours(),
		})
	}

	plane := &scenario.IPPlane{
		DualHomeRegions: []string{Europe.String(), NorthAmerica.String()},
		AccessDetour:    1.03,
		AccessExtraMS:   0.3,
		PerHopMS:        0.15,
	}
	for _, h := range ipHubs() {
		plane.Hubs = append(plane.Hubs, scenario.IPHub{Name: h.Name, IA: h.IA, Lat: h.Lat, Lon: h.Lon})
	}
	for _, e := range hubEdges() {
		plane.Edges = append(plane.Edges, scenario.IPEdge{A: e.a, B: e.b, Detour: e.detour})
	}
	s.IPPlane = plane

	for _, p := range PoPs() {
		s.PoPs = append(s.PoPs, scenario.PoP{
			Location: p.Location, PeeringNRENs: p.PeeringNRENs, PartnerNetworks: p.PartnerNetworks,
		})
	}

	// A modest open-loop load between the Amsterdam and Daejeon cores,
	// so the traffic engine (cmd/loadbench -scenario sciera) has a
	// workload to replay on the real deployment topology.
	s.Traffic = &scenario.Traffic{
		Pairs: []scenario.TrafficPair{
			{Src: ia("71-2:0:3e"), Dst: ia("71-2:0:3b")},
			{Src: ia("71-2:0:3b"), Dst: ia("71-2:0:3e")},
		},
		EndpointsPerSource: 1 << 16,
		ArrivalRatePerPair: 2_000,
		FlowPackets:        32,
		PayloadBytes:       200,
		PacketIntervalMS:   100,
		Burst:              4,
		HorizonMS:          300,
		IntraASDelayUS:     1,
		Seed:               42,
	}
	return s, nil
}
