package topology

import (
	"container/heap"
	"math"

	"sciera/internal/addr"
)

// Route is a path through the topology at link granularity.
type Route struct {
	Src, Dst  addr.IA
	Links     []*Link
	LatencyMS float64
	Hops      int
}

// item is a priority-queue entry for Dijkstra.
type item struct {
	ia   addr.IA
	cost float64
	idx  int
}

type pq []*item

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].cost < p[j].cost }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i]; p[i].idx, p[j].idx = i, j }
func (p *pq) Push(x interface{}) { it := x.(*item); it.idx = len(*p); *p = append(*p, it) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*p = old[:n-1]
	return it
}

// Weight assigns a cost to traversing a link; returning +Inf excludes it.
type Weight func(l *Link) float64

// LatencyWeight routes by propagation delay.
func LatencyWeight(l *Link) float64 { return l.LatencyMS }

// BGPWeight models BGP's path selection for the IP baseline: BGP
// minimizes AS-path length, not latency, so each hop costs a full unit
// and latency only breaks ties. This is why the IP plane often takes
// geographically longer routes than SCION's latency-optimizing end hosts
// (paper Section 5.4).
func BGPWeight(l *Link) float64 { return 1 + l.LatencyMS/1e6 }

// ShortestRoute runs Dijkstra over the currently-up links under the given
// weight. It returns nil when dst is unreachable.
func (t *Topology) ShortestRoute(src, dst addr.IA, w Weight) *Route {
	if src == dst {
		return &Route{Src: src, Dst: dst}
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	dist := map[addr.IA]float64{src: 0}
	prevLink := map[addr.IA]*Link{}
	items := map[addr.IA]*item{}
	q := &pq{}
	heap.Init(q)
	start := &item{ia: src, cost: 0}
	heap.Push(q, start)
	items[src] = start

	for q.Len() > 0 {
		cur := heap.Pop(q).(*item)
		if cur.ia == dst {
			break
		}
		if cur.cost > dist[cur.ia] {
			continue
		}
		for _, l := range t.byIA[cur.ia] {
			if !l.up.Load() {
				continue
			}
			cost := w(l)
			if math.IsInf(cost, 1) {
				continue
			}
			other, _ := l.Other(cur.ia)
			nd := cur.cost + cost
			if d, ok := dist[other.IA]; !ok || nd < d {
				dist[other.IA] = nd
				prevLink[other.IA] = l
				if it, ok := items[other.IA]; ok && it.idx >= 0 && it.idx < q.Len() && (*q)[it.idx] == it {
					it.cost = nd
					heap.Fix(q, it.idx)
				} else {
					it := &item{ia: other.IA, cost: nd}
					heap.Push(q, it)
					items[other.IA] = it
				}
			}
		}
	}
	if _, ok := dist[dst]; !ok {
		return nil
	}
	// Reconstruct.
	var rev []*Link
	lat := 0.0
	for cur := dst; cur != src; {
		l := prevLink[cur]
		rev = append(rev, l)
		lat += l.LatencyMS
		end, _ := l.Other(cur)
		cur = end.IA
	}
	links := make([]*Link, len(rev))
	for i := range rev {
		links[i] = rev[len(rev)-1-i]
	}
	return &Route{Src: src, Dst: dst, Links: links, LatencyMS: lat, Hops: len(links)}
}

// RTT returns the round-trip time over the route in milliseconds,
// including a small per-hop forwarding cost.
func (r *Route) RTT(perHopMS float64) float64 {
	if r == nil {
		return math.Inf(1)
	}
	return 2 * (r.LatencyMS + float64(r.Hops)*perHopMS)
}

// Connected reports whether every AS pair can reach each other over
// currently-up links (used by the Figure 10c failure sweep).
func (t *Topology) Connected(src, dst addr.IA) bool {
	return t.ShortestRoute(src, dst, func(*Link) float64 { return 1 }) != nil
}
