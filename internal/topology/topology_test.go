package topology

import (
	"math"
	"testing"

	"sciera/internal/addr"
)

var (
	core1 = addr.MustParseIA("71-1")
	core2 = addr.MustParseIA("71-2")
	core3 = addr.MustParseIA("71-3")
	leafA = addr.MustParseIA("71-10")
	leafB = addr.MustParseIA("71-11")
	leafC = addr.MustParseIA("71-12")
)

// diamond builds:
//
//	core1 === core2 === core3   (core mesh, c1-c2 also has a second link)
//	  |         |          |
//	leafA     leafB      leafC
//	leafA --- leafB (peer)
func diamond(t *testing.T) *Topology {
	t.Helper()
	topo := New()
	for _, ia := range []addr.IA{core1, core2, core3} {
		if err := topo.AddAS(ASInfo{IA: ia, Core: true}); err != nil {
			t.Fatal(err)
		}
	}
	for _, ia := range []addr.IA{leafA, leafB, leafC} {
		if err := topo.AddAS(ASInfo{IA: ia}); err != nil {
			t.Fatal(err)
		}
	}
	mustLink := func(a, b addr.IA, typ LinkType, lat float64) *Link {
		l, err := topo.AddLink(LinkEnd{IA: a}, LinkEnd{IA: b}, typ, lat, "")
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	mustLink(core1, core2, LinkCore, 10)
	mustLink(core1, core2, LinkCore, 30) // redundant parallel link
	mustLink(core2, core3, LinkCore, 10)
	mustLink(core1, core3, LinkCore, 50)
	mustLink(core1, leafA, LinkParent, 5)
	mustLink(core2, leafB, LinkParent, 5)
	mustLink(core3, leafC, LinkParent, 5)
	mustLink(leafA, leafB, LinkPeer, 3)
	return topo
}

func TestBuildAndValidate(t *testing.T) {
	topo := diamond(t)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(topo.Links()); got != 8 {
		t.Errorf("links = %d", got)
	}
	if got := topo.CoreASes(); len(got) != 3 {
		t.Errorf("cores = %v", got)
	}
	if got := len(topo.ASes()); got != 6 {
		t.Errorf("ases = %d", got)
	}
	a, ok := topo.AS(leafA)
	if !ok || a.Core {
		t.Errorf("AS(leafA) = %+v %v", a, ok)
	}
	if a.MTU != 1472 {
		t.Errorf("default MTU = %d", a.MTU)
	}
}

func TestInterfaceAllocation(t *testing.T) {
	topo := diamond(t)
	// Every link end resolves back to its link.
	for _, l := range topo.Links() {
		for _, end := range []LinkEnd{l.A, l.B} {
			if end.IfID == 0 {
				t.Fatalf("unassigned interface on %v", l)
			}
			got, ok := topo.LinkAt(end)
			if !ok || got.ID != l.ID {
				t.Errorf("LinkAt(%v) = %v, %v", end, got, ok)
			}
		}
	}
	// Explicit interface collision rejected.
	l0 := topo.Links()[0]
	if _, err := topo.AddLink(l0.A, LinkEnd{IA: core3, IfID: 999}, LinkCore, 1, ""); err == nil {
		t.Error("interface reuse accepted")
	}
}

func TestAddLinkValidation(t *testing.T) {
	topo := New()
	if err := topo.AddAS(ASInfo{IA: core1, Core: true}); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddAS(ASInfo{IA: leafA}); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddAS(ASInfo{IA: core1, Core: true}); err == nil {
		t.Error("duplicate AS accepted")
	}
	if _, err := topo.AddLink(LinkEnd{IA: core1}, LinkEnd{IA: core1}, LinkCore, 1, ""); err == nil {
		t.Error("self-link accepted")
	}
	if _, err := topo.AddLink(LinkEnd{IA: core1}, LinkEnd{IA: leafA}, LinkCore, 1, ""); err == nil {
		t.Error("core link to non-core accepted")
	}
	if _, err := topo.AddLink(LinkEnd{IA: core1}, LinkEnd{IA: leafB}, LinkParent, 1, ""); err == nil {
		t.Error("link to unknown AS accepted")
	}
}

func TestValidateCatchesOrphans(t *testing.T) {
	topo := New()
	_ = topo.AddAS(ASInfo{IA: core1, Core: true})
	_ = topo.AddAS(ASInfo{IA: leafA})
	// leafA has no parent chain to a core.
	if err := topo.Validate(); err == nil {
		t.Error("orphan AS not detected")
	}
}

func TestValidateCatchesParentCycle(t *testing.T) {
	topo := New()
	_ = topo.AddAS(ASInfo{IA: core1, Core: true})
	_ = topo.AddAS(ASInfo{IA: leafA})
	_ = topo.AddAS(ASInfo{IA: leafB})
	_, _ = topo.AddLink(LinkEnd{IA: core1}, LinkEnd{IA: leafA}, LinkParent, 1, "")
	_, _ = topo.AddLink(LinkEnd{IA: leafA}, LinkEnd{IA: leafB}, LinkParent, 1, "")
	_, _ = topo.AddLink(LinkEnd{IA: leafB}, LinkEnd{IA: leafA}, LinkParent, 1, "")
	if err := topo.Validate(); err == nil {
		t.Error("parent cycle not detected")
	}
}

func TestFamilyQueries(t *testing.T) {
	topo := diamond(t)
	if ch := topo.Children(core1); len(ch) != 1 || ch[0].B.IA != leafA {
		t.Errorf("Children(core1) = %v", ch)
	}
	if ps := topo.Parents(leafB); len(ps) != 1 || ps[0].A.IA != core2 {
		t.Errorf("Parents(leafB) = %v", ps)
	}
	if ps := topo.Parents(core1); len(ps) != 0 {
		t.Errorf("Parents(core1) = %v", ps)
	}
}

func TestShortestRouteLatency(t *testing.T) {
	topo := diamond(t)
	r := topo.ShortestRoute(leafA, leafC, LatencyWeight)
	if r == nil {
		t.Fatal("no route")
	}
	// leafA -peer-> leafB -> core2 -> core3 -> leafC = 3+5+10+5 = 23,
	// cheaper than going up through core1 (5+10+10+5 = 30).
	if r.LatencyMS != 23 || r.Hops != 4 {
		t.Errorf("route latency=%v hops=%d", r.LatencyMS, r.Hops)
	}
	if rtt := r.RTT(0.1); math.Abs(rtt-2*23.4) > 1e-9 {
		t.Errorf("RTT = %v", rtt)
	}
}

func TestBGPWeightPrefersFewerHops(t *testing.T) {
	topo := diamond(t)
	// Latency-wise, core1->core3 via core2 is 20ms; the direct link is
	// 50ms. BGP-style routing picks the direct link (1 hop < 2 hops).
	bgp := topo.ShortestRoute(core1, core3, BGPWeight)
	if bgp.Hops != 1 || bgp.LatencyMS != 50 {
		t.Errorf("BGP route hops=%d lat=%v", bgp.Hops, bgp.LatencyMS)
	}
	lat := topo.ShortestRoute(core1, core3, LatencyWeight)
	if lat.Hops != 2 || lat.LatencyMS != 20 {
		t.Errorf("latency route hops=%d lat=%v", lat.Hops, lat.LatencyMS)
	}
}

func TestRouteSelf(t *testing.T) {
	topo := diamond(t)
	r := topo.ShortestRoute(leafA, leafA, LatencyWeight)
	if r == nil || r.Hops != 0 || r.LatencyMS != 0 {
		t.Errorf("self route = %+v", r)
	}
}

func TestLinkFailureReroutes(t *testing.T) {
	topo := diamond(t)
	direct := topo.ShortestRoute(core1, core2, LatencyWeight)
	if direct.LatencyMS != 10 {
		t.Fatalf("direct = %v", direct.LatencyMS)
	}
	// Fail the 10ms link: the detour down through the leaves
	// (core1->leafA->leafB->core2 = 5+3+5) beats the parallel 30ms link.
	if err := topo.SetLinkUp(direct.Links[0].ID, false); err != nil {
		t.Fatal(err)
	}
	alt := topo.ShortestRoute(core1, core2, LatencyWeight)
	if alt == nil || alt.LatencyMS != 13 || alt.Hops != 3 {
		t.Fatalf("alt = %+v", alt)
	}
	if topo.LinkUp(direct.Links[0].ID) {
		t.Error("link still up")
	}
	// Restore.
	if err := topo.SetLinkUp(direct.Links[0].ID, true); err != nil {
		t.Fatal(err)
	}
	if got := topo.ShortestRoute(core1, core2, LatencyWeight).LatencyMS; got != 10 {
		t.Errorf("after restore = %v", got)
	}
	if err := topo.SetLinkUp(9999, false); err == nil {
		t.Error("bad link id accepted")
	}
}

func TestConnected(t *testing.T) {
	topo := diamond(t)
	if !topo.Connected(leafA, leafC) {
		t.Error("leafA-leafC should be connected")
	}
	// Cut leafC's only link.
	for _, l := range topo.LinksOf(leafC) {
		_ = topo.SetLinkUp(l.ID, false)
	}
	if topo.Connected(leafA, leafC) {
		t.Error("leafC should be isolated")
	}
	if topo.Connected(leafA, leafB) != true {
		t.Error("unrelated pair affected")
	}
}

func TestUpLinksOf(t *testing.T) {
	topo := diamond(t)
	all := topo.LinksOf(core1)
	_ = topo.SetLinkUp(all[0].ID, false)
	up := topo.UpLinksOf(core1)
	if len(up) != len(all)-1 {
		t.Errorf("up links = %d, want %d", len(up), len(all)-1)
	}
}

func TestLinkEndHelpers(t *testing.T) {
	topo := diamond(t)
	l := topo.Links()[0]
	if o, ok := l.Other(core1); !ok || o.IA != core2 {
		t.Errorf("Other = %v %v", o, ok)
	}
	if _, ok := l.Other(leafC); ok {
		t.Error("Other for non-member should fail")
	}
	if loc, ok := l.Local(core2); !ok || loc.IA != core2 {
		t.Errorf("Local = %v %v", loc, ok)
	}
	if l.A.String() == "" || LinkCore.String() != "core" || LinkType(9).String() == "" {
		t.Error("string helpers broken")
	}
}

func TestGeoLatency(t *testing.T) {
	// Zurich (47.37, 8.54) to Singapore (1.35, 103.82) is ~10,300 km.
	d := GreatCircleKM(47.37, 8.54, 1.35, 103.82)
	if d < 10000 || d > 10700 {
		t.Errorf("ZRH-SIN distance = %v km", d)
	}
	lat := GeoLatencyMS(47.37, 8.54, 1.35, 103.82)
	// One-way fibre latency should land in a plausible 60-90 ms window.
	if lat < 60 || lat > 90 {
		t.Errorf("ZRH-SIN latency = %v ms", lat)
	}
	if GreatCircleKM(1, 2, 1, 2) != 0 {
		t.Error("zero distance expected")
	}
}

func BenchmarkShortestRoute(b *testing.B) {
	topo := New()
	// A 10x10 grid of ASes.
	ias := make([]addr.IA, 100)
	for i := range ias {
		ias[i] = addr.MustIA(71, addr.AS(1000+i))
		_ = topo.AddAS(ASInfo{IA: ias[i], Core: true})
	}
	for r := 0; r < 10; r++ {
		for c := 0; c < 10; c++ {
			if c+1 < 10 {
				_, _ = topo.AddLink(LinkEnd{IA: ias[r*10+c]}, LinkEnd{IA: ias[r*10+c+1]}, LinkCore, 1, "")
			}
			if r+1 < 10 {
				_, _ = topo.AddLink(LinkEnd{IA: ias[r*10+c]}, LinkEnd{IA: ias[(r+1)*10+c]}, LinkCore, 1, "")
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if topo.ShortestRoute(ias[0], ias[99], LatencyWeight) == nil {
			b.Fatal("no route")
		}
	}
}
