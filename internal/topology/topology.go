// Package topology models inter-domain topologies: ASes, the typed links
// between them (core, parent-child, peering), per-link propagation
// latencies, and link state. It provides the graph substrate shared by
// the SCION control plane (beaconing walks the typed graph), the
// discrete-event simulator (links carry delays), and the BGP-like IP
// baseline the paper compares against.
package topology

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"sciera/internal/addr"
)

// LinkType classifies an inter-AS link.
type LinkType int

const (
	// LinkCore connects two core ASes.
	LinkCore LinkType = iota
	// LinkParent is a provider-to-customer link; end A is the parent.
	LinkParent
	// LinkPeer connects two non-core ASes laterally.
	LinkPeer
)

func (t LinkType) String() string {
	switch t {
	case LinkCore:
		return "core"
	case LinkParent:
		return "parent"
	case LinkPeer:
		return "peer"
	default:
		return fmt.Sprintf("linktype(%d)", int(t))
	}
}

// LinkEnd identifies one end of a link: an AS and its interface ID.
type LinkEnd struct {
	IA   addr.IA
	IfID uint16
}

func (e LinkEnd) String() string { return fmt.Sprintf("%s#%d", e.IA, e.IfID) }

// Link is an inter-AS link. For LinkParent, A is the parent (provider).
type Link struct {
	ID        int
	A, B      LinkEnd
	Type      LinkType
	LatencyMS float64
	// BandwidthMbps caps the circuit's throughput in the simulator
	// (0 = unconstrained). Packets queue behind each other per
	// direction, so multipath senders aggregate capacity across
	// parallel circuits — the Science-DMZ property of Section 4.7.1.
	BandwidthMbps float64
	// Name optionally labels the physical circuit (e.g. "CAE-1").
	Name string

	// up is atomic so the data plane's per-packet latency model can
	// read link state without contending on the topology lock.
	up atomic.Bool
}

// Up reports link state lock-free.
func (l *Link) Up() bool { return l.up.Load() }

// SetBandwidth sets the link's capacity (Mbit/s; 0 = unconstrained).
func (l *Link) SetBandwidth(mbps float64) { l.BandwidthMbps = mbps }

// Other returns the far end as seen from ia.
func (l *Link) Other(ia addr.IA) (LinkEnd, bool) {
	switch ia {
	case l.A.IA:
		return l.B, true
	case l.B.IA:
		return l.A, true
	default:
		return LinkEnd{}, false
	}
}

// Local returns the near end for ia.
func (l *Link) Local(ia addr.IA) (LinkEnd, bool) {
	switch ia {
	case l.A.IA:
		return l.A, true
	case l.B.IA:
		return l.B, true
	default:
		return LinkEnd{}, false
	}
}

// ASInfo describes one AS.
type ASInfo struct {
	IA   addr.IA
	Core bool
	MTU  uint16
	// Name is the human-readable deployment name ("GEANT", "UFMS", ...).
	Name string
	// Lat and Lon locate the AS's PoP for latency derivation.
	Lat, Lon float64
	// Commercial marks commercial providers. Research networks must
	// not carry transit between commercial parties (Section 4.9), so
	// beaconing refuses to extend a commercially-originated beacon
	// toward another commercial AS.
	Commercial bool
}

// Topology is a mutable AS-level topology. All methods are safe for
// concurrent use.
type Topology struct {
	mu     sync.RWMutex
	ases   map[addr.IA]*ASInfo
	links  []*Link
	byIA   map[addr.IA][]*Link
	byIf   map[LinkEnd]*Link
	nextIf map[addr.IA]uint16
}

// New creates an empty topology.
func New() *Topology {
	return &Topology{
		ases:   make(map[addr.IA]*ASInfo),
		byIA:   make(map[addr.IA][]*Link),
		byIf:   make(map[LinkEnd]*Link),
		nextIf: make(map[addr.IA]uint16),
	}
}

// Errors.
var (
	ErrUnknownAS   = errors.New("topology: unknown AS")
	ErrDupAS       = errors.New("topology: AS already present")
	ErrBadLink     = errors.New("topology: invalid link")
	ErrIfInUse     = errors.New("topology: interface already in use")
	ErrUnknownLink = errors.New("topology: unknown link")
)

// AddAS registers an AS.
func (t *Topology) AddAS(info ASInfo) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.ases[info.IA]; ok {
		return fmt.Errorf("%w: %v", ErrDupAS, info.IA)
	}
	if info.MTU == 0 {
		info.MTU = 1472
	}
	cp := info
	t.ases[info.IA] = &cp
	t.nextIf[info.IA] = 1
	return nil
}

// AS returns the AS info.
func (t *Topology) AS(ia addr.IA) (ASInfo, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	a, ok := t.ases[ia]
	if !ok {
		return ASInfo{}, false
	}
	return *a, true
}

// ASes returns all ASes sorted by IA.
func (t *Topology) ASes() []ASInfo {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]ASInfo, 0, len(t.ases))
	for _, a := range t.ases {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IA < out[j].IA })
	return out
}

// CoreASes returns the core ASes sorted by IA.
func (t *Topology) CoreASes() []addr.IA {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []addr.IA
	for ia, a := range t.ases {
		if a.Core {
			out = append(out, ia)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddLink connects two ASes. Interface IDs of 0 are auto-assigned. For
// LinkParent, a is the parent end. The link starts up.
func (t *Topology) AddLink(a, b LinkEnd, typ LinkType, latencyMS float64, name string) (*Link, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	asA, okA := t.ases[a.IA]
	asB, okB := t.ases[b.IA]
	if !okA {
		return nil, fmt.Errorf("%w: %v", ErrUnknownAS, a.IA)
	}
	if !okB {
		return nil, fmt.Errorf("%w: %v", ErrUnknownAS, b.IA)
	}
	if a.IA == b.IA {
		return nil, fmt.Errorf("%w: self-link at %v", ErrBadLink, a.IA)
	}
	switch typ {
	case LinkCore:
		if !asA.Core || !asB.Core {
			return nil, fmt.Errorf("%w: core link requires two core ASes (%v-%v)", ErrBadLink, a.IA, b.IA)
		}
	case LinkParent:
		// Parent end must be able to offer transit; no structural
		// requirement beyond distinct ASes.
	case LinkPeer:
	default:
		return nil, fmt.Errorf("%w: type %d", ErrBadLink, typ)
	}
	if a.IfID == 0 {
		a.IfID = t.allocIfLocked(a.IA)
	}
	if b.IfID == 0 {
		b.IfID = t.allocIfLocked(b.IA)
	}
	if _, used := t.byIf[a]; used {
		return nil, fmt.Errorf("%w: %v", ErrIfInUse, a)
	}
	if _, used := t.byIf[b]; used {
		return nil, fmt.Errorf("%w: %v", ErrIfInUse, b)
	}
	l := &Link{
		ID:        len(t.links),
		A:         a,
		B:         b,
		Type:      typ,
		LatencyMS: latencyMS,
		Name:      name,
	}
	l.up.Store(true)
	t.links = append(t.links, l)
	t.byIA[a.IA] = append(t.byIA[a.IA], l)
	t.byIA[b.IA] = append(t.byIA[b.IA], l)
	t.byIf[a] = l
	t.byIf[b] = l
	return l, nil
}

func (t *Topology) allocIfLocked(ia addr.IA) uint16 {
	for {
		id := t.nextIf[ia]
		t.nextIf[ia] = id + 1
		if _, used := t.byIf[LinkEnd{IA: ia, IfID: id}]; !used && id != 0 {
			return id
		}
	}
}

// Links returns a snapshot of all links.
func (t *Topology) Links() []*Link {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]*Link(nil), t.links...)
}

// LinksOf returns the links attached to an AS.
func (t *Topology) LinksOf(ia addr.IA) []*Link {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]*Link(nil), t.byIA[ia]...)
}

// LinkIDByName resolves a circuit by its name (incident calendars and
// orchestration scripts address links by name, not ID).
func (t *Topology) LinkIDByName(name string) (int, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, l := range t.links {
		if l.Name == name {
			return l.ID, true
		}
	}
	return 0, false
}

// LinkAt resolves an AS-local interface to its link.
func (t *Topology) LinkAt(end LinkEnd) (*Link, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	l, ok := t.byIf[end]
	return l, ok
}

// SetLinkUp flips link state; the data plane drops packets on down links
// and the control plane stops propagating beacons across them.
func (t *Topology) SetLinkUp(id int, up bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || id >= len(t.links) {
		return fmt.Errorf("%w: %d", ErrUnknownLink, id)
	}
	t.links[id].up.Store(up)
	return nil
}

// LinkUp reports link state.
func (t *Topology) LinkUp(id int) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < 0 || id >= len(t.links) {
		return false
	}
	return t.links[id].up.Load()
}

// UpLinksOf returns the currently-up links of an AS.
func (t *Topology) UpLinksOf(ia addr.IA) []*Link {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []*Link
	for _, l := range t.byIA[ia] {
		if l.up.Load() {
			out = append(out, l)
		}
	}
	return out
}

// Children returns the parent->child links where ia is the parent.
func (t *Topology) Children(ia addr.IA) []*Link {
	var out []*Link
	for _, l := range t.LinksOf(ia) {
		if l.Type == LinkParent && l.A.IA == ia {
			out = append(out, l)
		}
	}
	return out
}

// Parents returns the parent->child links where ia is the child.
func (t *Topology) Parents(ia addr.IA) []*Link {
	var out []*Link
	for _, l := range t.LinksOf(ia) {
		if l.Type == LinkParent && l.B.IA == ia {
			out = append(out, l)
		}
	}
	return out
}

// Validate performs structural sanity checks: every parent relation must
// be acyclic and every non-core AS must have a path of parent links up to
// a core AS (otherwise it can never learn segments).
func (t *Topology) Validate() error {
	t.mu.RLock()
	defer t.mu.RUnlock()

	// Parent-graph cycle check via DFS colors.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[addr.IA]int, len(t.ases))
	var visit func(ia addr.IA) error
	visit = func(ia addr.IA) error {
		color[ia] = gray
		for _, l := range t.byIA[ia] {
			if l.Type != LinkParent || l.A.IA != ia {
				continue
			}
			child := l.B.IA
			switch color[child] {
			case gray:
				return fmt.Errorf("topology: parent cycle through %v and %v", ia, child)
			case white:
				if err := visit(child); err != nil {
					return err
				}
			}
		}
		color[ia] = black
		return nil
	}
	for ia := range t.ases {
		if color[ia] == white {
			if err := visit(ia); err != nil {
				return err
			}
		}
	}

	// Reachability: BFS down from cores along parent links.
	reached := make(map[addr.IA]bool)
	var queue []addr.IA
	for ia, a := range t.ases {
		if a.Core {
			reached[ia] = true
			queue = append(queue, ia)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, l := range t.byIA[cur] {
			if l.Type != LinkParent || l.A.IA != cur {
				continue
			}
			if !reached[l.B.IA] {
				reached[l.B.IA] = true
				queue = append(queue, l.B.IA)
			}
		}
	}
	for ia := range t.ases {
		if !reached[ia] {
			return fmt.Errorf("topology: %v unreachable from any core AS via parent links", ia)
		}
	}
	return nil
}
