package topology

import "math"

// GreatCircleKM returns the great-circle distance in kilometres between
// two (lat, lon) coordinates in degrees.
func GreatCircleKM(lat1, lon1, lat2, lon2 float64) float64 {
	const earthRadiusKM = 6371.0
	toRad := func(d float64) float64 { return d * math.Pi / 180 }
	la1, lo1, la2, lo2 := toRad(lat1), toRad(lon1), toRad(lat2), toRad(lon2)
	dLat := la2 - la1
	dLon := lo2 - lo1
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(la1)*math.Cos(la2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKM * math.Asin(math.Min(1, math.Sqrt(a)))
}

// PropagationMS estimates one-way fibre propagation delay in
// milliseconds for a great-circle distance, using the standard
// speed-of-light-in-fibre rule of thumb (~200 km/ms) and a 1.4x
// cable-routing detour factor.
func PropagationMS(distanceKM float64) float64 {
	const fibreKMPerMS = 200.0
	const detour = 1.4
	return distanceKM * detour / fibreKMPerMS
}

// GeoLatencyMS estimates the one-way latency between two coordinates.
func GeoLatencyMS(lat1, lon1, lat2, lon2 float64) float64 {
	return PropagationMS(GreatCircleKM(lat1, lon1, lat2, lon2))
}
