package pan_test

import (
	"testing"
	"time"

	"sciera/internal/addr"
	"sciera/internal/core"
	"sciera/internal/pan"
	"sciera/internal/simnet"
	"sciera/internal/slayers"
	"sciera/internal/topology"
)

// buildPeerNet builds the integration topology plus a direct peering
// link between the two leaves: 3ms vs 30ms via the cores.
func buildPeerNet(t testing.TB, sim *simnet.Sim) *core.Network {
	t.Helper()
	topo := topology.New()
	for _, ia := range []addr.IA{c1, c2} {
		if err := topo.AddAS(topology.ASInfo{IA: ia, Core: true}); err != nil {
			t.Fatal(err)
		}
	}
	for _, ia := range []addr.IA{lA, lB} {
		if err := topo.AddAS(topology.ASInfo{IA: ia}); err != nil {
			t.Fatal(err)
		}
	}
	link := func(a, b addr.IA, typ topology.LinkType, lat float64) {
		if _, err := topo.AddLink(topology.LinkEnd{IA: a}, topology.LinkEnd{IA: b}, typ, lat, ""); err != nil {
			t.Fatal(err)
		}
	}
	link(c1, c2, topology.LinkCore, 20)
	link(c1, lA, topology.LinkParent, 5)
	link(c2, lB, topology.LinkParent, 5)
	link(lA, lB, topology.LinkPeer, 3)
	n, err := core.Build(topo, sim, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestPeeringPreferredByPolicies: both the hop-count and the latency
// policy must put the one-hop peering path first, and application
// traffic must flow over it end to end — including the reply, which the
// server sends by reversing the Peer-flagged path in flight.
func TestPeeringPreferredByPolicies(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n := buildPeerNet(t, sim)
	defer n.Close()
	stop := live(sim)
	defer stop()

	hA := hostIn(t, n, lA)
	hB := hostIn(t, n, lB)

	server, err := hB.ListenUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	go func() {
		for {
			msg, err := server.ReadFrom()
			if err != nil {
				return
			}
			_, _ = server.WriteTo(msg.Payload, msg.From)
		}
	}()

	for _, policy := range []pan.Policy{pan.Shortest{}, pan.Fastest{}} {
		client, err := hA.DialUDP(server.LocalAddr(), pan.WithPolicy(policy))
		if err != nil {
			t.Fatal(err)
		}
		paths, err := client.Paths(lB)
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) < 2 {
			t.Fatalf("%s: only %d paths (peer + core expected)", policy.Name(), len(paths))
		}
		best := paths[0]
		if best.NumHops() != 1 || best.LatencyMS != 3 {
			t.Errorf("%s: best path = %d hops %.1f ms, want the 1-hop 3 ms peer path",
				policy.Name(), best.NumHops(), best.LatencyMS)
		}
		if !best.Raw.Infos[0].Peer {
			t.Errorf("%s: best path not Peer-flagged", policy.Name())
		}

		start := sim.Now()
		if _, err := client.Write([]byte("ping " + policy.Name())); err != nil {
			t.Fatal(err)
		}
		reply, err := client.Read()
		if err != nil {
			t.Fatal(err)
		}
		if string(reply) != "ping "+policy.Name() {
			t.Errorf("%s: reply = %q", policy.Name(), reply)
		}
		// Round trip over the 3ms peer link, far under the 60ms core
		// alternative.
		if rtt := sim.Now().Sub(start); rtt > 20*time.Millisecond {
			t.Errorf("%s: rtt %v suggests the core route was used", policy.Name(), rtt)
		}
		client.Close()
	}
}

// TestPeerLinkFailover injects a peering-circuit failure: the client is
// pinned to the 1-hop peer path by the Fastest policy; when the circuit
// dies, the boundary router's SCMP revocation flushes the cache and
// traffic fails over to the up-core-down route.
func TestPeerLinkFailover(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n := buildPeerNet(t, sim)
	defer n.Close()
	stop := live(sim)
	defer stop()

	hA := hostIn(t, n, lA)
	hB := hostIn(t, n, lB)
	server, err := hB.ListenUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := hA.ListenUDP(0, pan.WithPolicy(pan.Fastest{}))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var revocations int
	client.OnSCMPError = func(_ *slayers.SCMP) { revocations++ }

	// Baseline: the peer circuit carries traffic.
	if _, err := client.WriteTo([]byte("via peer"), server.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if _, err := server.ReadFromTimeout(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// The peering circuit dies.
	for _, l := range n.Topo.Links() {
		if l.Type == topology.LinkPeer {
			if err := n.Topo.SetLinkUp(l.ID, false); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Stale cached peer path -> SCMP ExternalInterfaceDown -> flush;
	// after the next beaconing interval traffic rides the core route.
	if _, err := client.WriteTo([]byte("black hole"), server.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if _, err := server.ReadFromTimeout(500 * time.Millisecond); err == nil {
		t.Fatal("packet crossed the dead peering circuit")
	}
	if err := n.RefreshControlPlane(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	delivered := false
	for time.Now().Before(deadline) {
		if _, err := client.WriteTo([]byte("rerouted"), server.LocalAddr()); err != nil {
			continue
		}
		if msg, err := server.ReadFromTimeout(time.Second); err == nil && string(msg.Payload) == "rerouted" {
			delivered = true
			break
		}
	}
	if !delivered {
		t.Fatal("no failover from the peering circuit to the core route")
	}
	if revocations == 0 {
		t.Error("no SCMP revocation observed")
	}
	// The surviving best path is the 30ms core route, not the peer path.
	paths, err := client.Paths(lB)
	if err != nil {
		t.Fatal(err)
	}
	if paths[0].Raw.Infos[0].Peer {
		t.Error("revoked peer path still ranked first")
	}
}
