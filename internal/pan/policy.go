// Package pan is the SCION application library ("path-aware
// networking"): drop-in UDP-style sockets with path selection. It
// implements the three operation modes of Section 4.2.1 — sharing a
// pre-installed daemon, embedding the daemon with an external
// bootstrapper, or fully standalone (the library bootstraps itself, so
// applications work on hosts with no SCION components installed) — and
// the path policies the SCIERA evaluation exercises: shortest, fastest,
// most disjoint, hop-sequence predicates, and interactive selection.
package pan

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"sciera/internal/combinator"
)

// Policy orders candidate paths by preference; the first usable one is
// selected.
type Policy interface {
	Name() string
	Order(paths []*combinator.Path) []*combinator.Path
}

// AvailablePreferencePolicies lists the named policies usable from
// command lines (mirroring the PAN library's flag support, Appendix E).
var AvailablePreferencePolicies = []string{"shortest", "fastest", "disjoint"}

// PolicyByName resolves a named policy ("" means shortest).
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "", "shortest":
		return Shortest{}, nil
	case "fastest":
		return Fastest{}, nil
	case "disjoint":
		return MostDisjoint{}, nil
	default:
		return nil, fmt.Errorf("pan: unknown policy %q (have %s)",
			name, strings.Join(AvailablePreferencePolicies, "|"))
	}
}

// Shortest prefers the fewest AS hops, tie-broken by the lowest path
// identifier (the multiping tool's "shortest path" definition).
type Shortest struct{}

func (Shortest) Name() string { return "shortest" }

func (Shortest) Order(paths []*combinator.Path) []*combinator.Path {
	out := append([]*combinator.Path(nil), paths...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].NumHops() != out[j].NumHops() {
			return out[i].NumHops() < out[j].NumHops()
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// Fastest prefers the lowest expected latency: measured RTTs when
// available (see RTTRecorder), control-plane latency metadata otherwise.
type Fastest struct {
	// RTTs supplies measured round-trip estimates keyed by path
	// fingerprint; nil uses metadata only.
	RTTs *RTTRecorder
}

func (Fastest) Name() string { return "fastest" }

func (f Fastest) Order(paths []*combinator.Path) []*combinator.Path {
	out := append([]*combinator.Path(nil), paths...)
	cost := func(p *combinator.Path) float64 {
		if f.RTTs != nil {
			if rtt, ok := f.RTTs.Get(p.Fingerprint); ok {
				return rtt.Seconds() * 1000
			}
		}
		return 2 * p.LatencyMS
	}
	sort.SliceStable(out, func(i, j int) bool {
		ci, cj := cost(out[i]), cost(out[j])
		if ci != cj {
			return ci < cj
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// MostDisjoint prefers the path sharing the fewest globally unique
// interfaces with the given reference paths (the multiping tool's third
// probe path: most disjoint from the shortest and the fastest).
type MostDisjoint struct {
	References []*combinator.Path
}

func (MostDisjoint) Name() string { return "disjoint" }

func (m MostDisjoint) Order(paths []*combinator.Path) []*combinator.Path {
	refs := m.References
	if len(refs) == 0 && len(paths) > 0 {
		refs = []*combinator.Path{paths[0]}
	}
	score := func(p *combinator.Path) float64 {
		min := 2.0
		for _, r := range refs {
			if d := combinator.Disjointness(p, r); d < min {
				min = d
			}
		}
		return min
	}
	out := append([]*combinator.Path(nil), paths...)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := score(out[i]), score(out[j])
		if si != sj {
			return si > sj
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// Sequence selects only paths whose AS sequence matches a list of hop
// predicates ("71-1 71-2 0-0 71-5c"; "0-0" is a single-AS wildcard).
type Sequence struct {
	Predicates []string
}

func (Sequence) Name() string { return "sequence" }

// ParseSequence builds a Sequence from a space-separated predicate
// string.
func ParseSequence(s string) Sequence {
	return Sequence{Predicates: strings.Fields(s)}
}

func (s Sequence) Order(paths []*combinator.Path) []*combinator.Path {
	var out []*combinator.Path
	for _, p := range paths {
		if s.matches(p) {
			out = append(out, p)
		}
	}
	return out
}

func (s Sequence) matches(p *combinator.Path) bool {
	ases := p.ASes()
	if len(s.Predicates) != len(ases) {
		return false
	}
	for i, pred := range s.Predicates {
		if pred == "0-0" {
			continue
		}
		if pred != ases[i].String() {
			return false
		}
	}
	return true
}

// Interactive delegates the choice to a callback (the bat tool's
// interactive path selection, Section 5.2).
type Interactive struct {
	Choose func(paths []*combinator.Path) int
}

func (Interactive) Name() string { return "interactive" }

func (i Interactive) Order(paths []*combinator.Path) []*combinator.Path {
	if len(paths) == 0 || i.Choose == nil {
		return paths
	}
	idx := i.Choose(paths)
	if idx < 0 || idx >= len(paths) {
		return paths
	}
	out := []*combinator.Path{paths[idx]}
	for j, p := range paths {
		if j != idx {
			out = append(out, p)
		}
	}
	return out
}

// RTTRecorder tracks exponentially weighted RTT estimates per path
// fingerprint.
type RTTRecorder struct {
	mu   sync.Mutex
	rtts map[string]time.Duration
}

// NewRTTRecorder creates an empty recorder.
func NewRTTRecorder() *RTTRecorder {
	return &RTTRecorder{rtts: make(map[string]time.Duration)}
}

// Observe folds a measurement into the estimate (EWMA, alpha = 1/4).
func (r *RTTRecorder) Observe(fingerprint string, rtt time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.rtts[fingerprint]; ok {
		r.rtts[fingerprint] = old*3/4 + rtt/4
		return
	}
	r.rtts[fingerprint] = rtt
}

// Get returns the current estimate.
func (r *RTTRecorder) Get(fingerprint string) (time.Duration, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rtt, ok := r.rtts[fingerprint]
	return rtt, ok
}
