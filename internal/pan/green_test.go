package pan

import (
	"testing"

	"sciera/internal/combinator"
)

func TestGreenestPolicy(t *testing.T) {
	// Two same-shape paths over different transit ASes.
	dirty := fakePath(2, 10, 1)  // fast but through coal-powered transit
	green := fakePath(2, 50, 50) // slower but through hydro-powered transit
	index := CarbonIndex{}
	for _, ia := range dirty.ASes() {
		index[ia] = 400 // coal
	}
	for _, ia := range green.ASes() {
		index[ia] = 20 // hydro
	}
	g := Greenest{Index: index}
	got := g.Order([]*combinator.Path{dirty, green})
	if got[0] != green {
		t.Error("greenest policy chose the dirty path")
	}
	if g.Name() != "greenest" {
		t.Error("name")
	}

	// Unreported ASes default to DefaultCarbon: a path through unknown
	// ASes loses to a reported clean one.
	unknown := fakePath(2, 5, 90)
	got = g.Order([]*combinator.Path{unknown, green})
	if got[0] != green {
		t.Error("unreported ASes treated as green")
	}

	// Equal carbon: latency breaks the tie.
	a := fakePath(2, 30, 120)
	b := fakePath(2, 20, 150)
	got = Greenest{Index: CarbonIndex{}}.Order([]*combinator.Path{a, b})
	if got[0] != b {
		t.Error("latency tie-break failed")
	}

	// PathCarbon arithmetic.
	if c := index.PathCarbon(green); c != 20*float64(len(green.ASes())) {
		t.Errorf("PathCarbon = %v", c)
	}
}
