package pan

import (
	"sort"

	"sciera/internal/addr"
	"sciera/internal/combinator"
)

// CarbonIndex maps ASes to the carbon intensity of their infrastructure
// (grams CO₂-equivalent per forwarded gigabyte, or any consistent
// relative unit). Section 4.7 describes green path selection — "SCION
// allows users to choose 'green' paths based on energy or carbon
// metrics, incentivizing ISPs to reduce emissions" — as one of the
// compelling end-user scenarios; this policy implements it.
type CarbonIndex map[addr.IA]float64

// DefaultCarbon is assumed for ASes missing from the index, so
// unreported ASes never look greener than reported ones.
const DefaultCarbon = 100.0

// PathCarbon sums the carbon intensity over the ASes a path traverses.
func (ci CarbonIndex) PathCarbon(p *combinator.Path) float64 {
	var sum float64
	for _, ia := range p.ASes() {
		if v, ok := ci[ia]; ok {
			sum += v
		} else {
			sum += DefaultCarbon
		}
	}
	return sum
}

// Greenest orders paths by ascending carbon footprint, breaking ties by
// latency so among equally green paths the fastest wins.
type Greenest struct {
	Index CarbonIndex
}

func (Greenest) Name() string { return "greenest" }

func (g Greenest) Order(paths []*combinator.Path) []*combinator.Path {
	out := append([]*combinator.Path(nil), paths...)
	sort.SliceStable(out, func(i, j int) bool {
		ci, cj := g.Index.PathCarbon(out[i]), g.Index.PathCarbon(out[j])
		if ci != cj {
			return ci < cj
		}
		if out[i].LatencyMS != out[j].LatencyMS {
			return out[i].LatencyMS < out[j].LatencyMS
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}
