package pan

import (
	"fmt"
	"net/netip"
	"time"

	"sciera/internal/bootstrap"
	"sciera/internal/daemon"
	"sciera/internal/simnet"
)

// Mode identifies how the library obtained its SCION environment
// (Section 4.2.1).
type Mode int

const (
	// ModeDaemon shares a pre-installed daemon process.
	ModeDaemon Mode = iota
	// ModeBootstrapper embeds the daemon but relies on an external
	// bootstrapper's configuration.
	ModeBootstrapper
	// ModeStandalone embeds both: the library bootstrapped itself.
	ModeStandalone
)

func (m Mode) String() string {
	switch m {
	case ModeDaemon:
		return "daemon"
	case ModeBootstrapper:
		return "bootstrapper"
	case ModeStandalone:
		return "standalone"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Host is a process's SCION environment: the entry point for opening
// sockets. Obtain one via WithDaemon, WithBootstrapper, Standalone, or
// the auto-fallback AutoInit.
type Host struct {
	net  simnet.Network
	d    *daemon.Daemon
	mode Mode
	ownD bool // we created the daemon and own its lifecycle
	rtts *RTTRecorder
}

// WithDaemon uses a shared, externally managed daemon (daemon-dependent
// mode).
func WithDaemon(net simnet.Network, d *daemon.Daemon) *Host {
	return &Host{net: net, d: d, mode: ModeDaemon, rtts: NewRTTRecorder()}
}

// WithBootstrapper embeds a private daemon configured from an external
// bootstrapper's result (bootstrapper-dependent mode; platforms that
// cannot run a shared background daemon).
func WithBootstrapper(net simnet.Network, res *bootstrap.Result) (*Host, error) {
	d, err := daemon.New(net, daemon.Info{
		LocalIA:     res.Topology.IA,
		RouterAddr:  res.Topology.RouterAddr,
		ControlAddr: res.Topology.ControlAddr,
	}, netip.AddrPort{})
	if err != nil {
		return nil, err
	}
	return &Host{net: net, d: d, mode: ModeBootstrapper, ownD: true, rtts: NewRTTRecorder()}, nil
}

// Standalone bootstraps the library itself — no pre-installed
// components at all — and embeds the daemon. The callback fires once
// with the ready Host or an error.
func Standalone(net simnet.Network, env bootstrap.Env, local netip.AddrPort, cb func(*Host, error)) {
	cli, err := bootstrap.NewClient(net, local, env)
	if err != nil {
		cb(nil, err)
		return
	}
	cli.Bootstrap(nil, func(res *bootstrap.Result, err error) {
		defer cli.Close()
		if err != nil {
			cb(nil, fmt.Errorf("pan: standalone bootstrap: %w", err))
			return
		}
		h, err := WithBootstrapper(net, res)
		if err != nil {
			cb(nil, err)
			return
		}
		h.mode = ModeStandalone
		cb(h, nil)
	})
}

// AutoInit implements the automatic mode fallback (P1): use the shared
// daemon when one is present, otherwise bootstrap standalone. There is
// no mode knob for applications — "it will just work".
func AutoInit(net simnet.Network, shared *daemon.Daemon, env bootstrap.Env, cb func(*Host, error)) {
	if shared != nil {
		cb(WithDaemon(net, shared), nil)
		return
	}
	Standalone(net, env, netip.AddrPort{}, cb)
}

// Mode reports how the host was initialized.
func (h *Host) Mode() Mode { return h.mode }

// Daemon exposes the underlying lookup engine.
func (h *Host) Daemon() *daemon.Daemon { return h.d }

// LocalIA returns the host's AS.
func (h *Host) LocalIA() addrIA { return h.d.LocalIA() }

// RTTs returns the host-wide RTT recorder feeding the Fastest policy.
func (h *Host) RTTs() *RTTRecorder { return h.rtts }

// Now returns the transport's clock — virtual time on the simulator.
// Protocols measuring elapsed network time (e.g. throughput) must use
// this, not the wall clock.
func (h *Host) Now() time.Time { return h.net.Now() }

// Close releases resources the host owns (a private daemon in
// bootstrapper/standalone modes; a shared daemon is left running).
func (h *Host) Close() error {
	if h.ownD {
		return h.d.Close()
	}
	return nil
}

// pathTimeout bounds implicit lookups inside socket operations.
const pathTimeout = 5 * time.Second
