package pan

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"sciera/internal/addr"
	"sciera/internal/combinator"
	"sciera/internal/dispatcher"
	"sciera/internal/simnet"
	"sciera/internal/slayers"
	"sciera/internal/spath"
)

// addrIA aliases addr.IA for the host file.
type addrIA = addr.IA

// Message is one received datagram with its source address.
type Message struct {
	Payload []byte
	From    addr.UDPAddr
}

// Errors.
var (
	ErrNoPath   = errors.New("pan: no path to destination")
	ErrClosed   = errors.New("pan: connection closed")
	ErrDeadline = errors.New("pan: read deadline exceeded")
)

// Conn is a SCION/UDP socket: a drop-in replacement for a UDP
// net.PacketConn that transparently handles the IP-UDP layer-2.5
// encapsulation, path lookup and path selection (Section 4.2.2).
type Conn struct {
	host   *Host
	conn   simnet.Conn
	policy Policy
	disp   *dispatcher.Dispatcher

	local addr.UDPAddr

	mu sync.Mutex
	// replyPaths remembers the reversed path of the last packet
	// received from each remote, so servers answer without lookups.
	replyPaths map[addr.UDPAddr]*spath.Path
	// downPaths records fingerprints SCMP declared broken.
	downPaths map[string]time.Time
	recvq     chan Message
	closed    bool
	scmpSeq   uint16
	// OnSCMPError, when set, observes SCMP errors delivered to this
	// socket (after the selector has processed them).
	OnSCMPError func(scmp *slayers.SCMP)
}

// Option configures a socket.
type Option func(*Conn)

// WithPolicy sets the path selection policy (default Shortest).
func WithPolicy(p Policy) Option { return func(c *Conn) { c.policy = p } }

// WithDispatcher routes the socket's inbound traffic through the
// legacy shared dispatcher instead of binding its own underlay port for
// SCION traffic (Section 4.8's historical mode).
func WithDispatcher(d *dispatcher.Dispatcher) Option { return func(c *Conn) { c.disp = d } }

// ListenUDP opens a socket on the given SCION port (0 for ephemeral).
func (h *Host) ListenUDP(port uint16, opts ...Option) (*Conn, error) {
	c := &Conn{
		host:       h,
		policy:     Shortest{},
		replyPaths: make(map[addr.UDPAddr]*spath.Path),
		downPaths:  make(map[string]time.Time),
		recvq:      make(chan Message, 256),
	}
	for _, o := range opts {
		o(c)
	}
	// Dispatcherless sockets with an explicit SCION port bind that
	// underlay port directly — the defining property of the
	// dispatcherless architecture (Section 4.8). Dispatcher-routed and
	// ephemeral sockets take any port.
	bind := netip.AddrPort{}
	if port != 0 && c.disp == nil {
		bind = netip.AddrPortFrom(netip.Addr{}, port)
	}
	conn, err := h.net.Listen(bind, c.handle)
	if err != nil {
		return nil, err
	}
	c.conn = conn
	scionPort := port
	if scionPort == 0 {
		scionPort = conn.LocalAddr().Port()
	}
	c.local = addr.UDPAddr{
		IA:   h.d.LocalIA(),
		Host: netip.AddrPortFrom(conn.LocalAddr().Addr(), scionPort),
	}
	if c.disp != nil {
		// Dispatcher mode: the socket's SCION address is the
		// dispatcher host's; inbound traffic lands on the shared port
		// and is demultiplexed to our private underlay socket.
		c.local.Host = netip.AddrPortFrom(c.disp.Addr().Addr(), scionPort)
		if err := c.disp.Register(scionPort, conn.LocalAddr()); err != nil {
			_ = conn.Close()
			return nil, err
		}
	}
	return c, nil
}

// DialUDP opens a socket bound to a remote address. Reads only accept
// that peer; writes may omit the destination.
func (h *Host) DialUDP(remote addr.UDPAddr, opts ...Option) (*DialedConn, error) {
	c, err := h.ListenUDP(0, opts...)
	if err != nil {
		return nil, err
	}
	return &DialedConn{Conn: c, remote: remote}, nil
}

// LocalAddr returns the socket's SCION address.
func (c *Conn) LocalAddr() addr.UDPAddr { return c.local }

// Close releases the socket.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.closed = true
	close(c.recvq)
	c.mu.Unlock()
	if c.disp != nil {
		c.disp.Unregister(c.local.Host.Port())
	}
	return c.conn.Close()
}

// handle processes one underlay datagram addressed to this socket.
func (c *Conn) handle(raw []byte, from netip.AddrPort) {
	var pkt slayers.Packet
	if err := pkt.Decode(raw); err != nil {
		return
	}
	switch {
	case pkt.UDP != nil:
		c.handleUDP(&pkt)
	case pkt.SCMP != nil:
		c.handleSCMP(&pkt)
	}
}

func (c *Conn) handleUDP(pkt *slayers.Packet) {
	src := addr.UDPAddr{
		IA:   pkt.Hdr.SrcIA,
		Host: netip.AddrPortFrom(pkt.Hdr.SrcHost, pkt.UDP.SrcPort),
	}
	// Remember the reply path (reverse of the received, in-flight
	// mutated path).
	if rev, err := spath.ReverseFromCurrent(&pkt.Hdr.Path); err == nil {
		c.mu.Lock()
		c.replyPaths[src] = rev
		c.mu.Unlock()
	}
	msg := Message{Payload: append([]byte(nil), pkt.Payload...), From: src}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return
	}
	select {
	case c.recvq <- msg:
	default: // receive queue full: drop, as UDP would
	}
}

func (c *Conn) handleSCMP(pkt *slayers.Packet) {
	scmp := pkt.SCMP
	switch scmp.Type {
	case slayers.SCMPEchoRequest:
		// The end-host stack answers echos addressed to it.
		rev, err := spath.ReverseFromCurrent(&pkt.Hdr.Path)
		if err != nil {
			return
		}
		reply := &slayers.Packet{
			Hdr: slayers.SCION{
				DstIA:   pkt.Hdr.SrcIA,
				SrcIA:   c.local.IA,
				DstHost: pkt.Hdr.SrcHost,
				SrcHost: c.local.Host.Addr(),
				Path:    *rev,
			},
			SCMP: &slayers.SCMP{
				Type:       slayers.SCMPEchoReply,
				Identifier: scmp.Identifier,
				SeqNo:      scmp.SeqNo,
			},
			Payload: append([]byte(nil), pkt.Payload...),
		}
		raw, err := reply.Serialize(nil)
		if err != nil {
			return
		}
		_ = c.conn.Send(raw, c.host.d.Info().RouterAddr)
	case slayers.SCMPExternalInterfaceDown, slayers.SCMPInternalConnectivityDown:
		// Path revocation: flush lookup caches so the next write
		// re-selects (instant failover, Section 4.7).
		c.host.d.FlushCache()
		c.mu.Lock()
		cb := c.OnSCMPError
		c.mu.Unlock()
		if cb != nil {
			cb(scmp)
		}
	default:
		if scmp.Type.IsError() {
			c.mu.Lock()
			cb := c.OnSCMPError
			c.mu.Unlock()
			if cb != nil {
				cb(scmp)
			}
		}
	}
}

// WriteTo sends payload to dst, selecting a path with the socket's
// policy (or replying over the remembered reverse path when no
// forward path is known — the server case).
func (c *Conn) WriteTo(payload []byte, dst addr.UDPAddr) (int, error) {
	return c.writeVia(payload, dst, nil)
}

// WriteToVia sends over an explicit path (the "path-aware" API).
func (c *Conn) WriteToVia(payload []byte, dst addr.UDPAddr, path *combinator.Path) (int, error) {
	return c.writeVia(payload, dst, path)
}

func (c *Conn) writeVia(payload []byte, dst addr.UDPAddr, path *combinator.Path) (int, error) {
	var raw spath.Path
	switch {
	case path != nil:
		raw = *path.Raw.Copy()
	case dst.IA == c.local.IA:
		// AS-internal: empty path.
	default:
		// Prefer the remembered reverse path of traffic we received
		// from this peer: servers answer clients without performing a
		// path lookup of their own.
		c.mu.Lock()
		rev, ok := c.replyPaths[dst]
		c.mu.Unlock()
		if ok {
			raw = *rev.Copy()
			break
		}
		p, err := c.selectPath(dst.IA)
		if err != nil {
			return 0, err
		}
		raw = *p.Raw.Copy()
	}

	pkt := &slayers.Packet{
		Hdr: slayers.SCION{
			DstIA:   dst.IA,
			SrcIA:   c.local.IA,
			DstHost: dst.Host.Addr(),
			SrcHost: c.local.Host.Addr(),
			Path:    raw,
		},
		UDP: &slayers.UDP{
			SrcPort: c.local.Host.Port(),
			DstPort: dst.Host.Port(),
		},
		Payload: payload,
	}
	out, err := pkt.Serialize(nil)
	if err != nil {
		return 0, err
	}
	if err := c.conn.Send(out, c.host.d.Info().RouterAddr); err != nil {
		return 0, err
	}
	return len(payload), nil
}

// selectPath runs the policy over the daemon's paths.
func (c *Conn) selectPath(dst addr.IA) (*combinator.Path, error) {
	paths, err := c.host.d.Paths(dst)
	if err != nil {
		return nil, err
	}
	ordered := c.policy.Order(paths)
	if len(ordered) == 0 {
		return nil, fmt.Errorf("%w: %v (policy %s)", ErrNoPath, dst, c.policy.Name())
	}
	return ordered[0], nil
}

// Paths exposes the policy-ordered candidate paths (for path-aware
// applications and CLI tools).
func (c *Conn) Paths(dst addr.IA) ([]*combinator.Path, error) {
	paths, err := c.host.d.Paths(dst)
	if err != nil {
		return nil, err
	}
	return c.policy.Order(paths), nil
}

// ReadFrom blocks for the next datagram (transport must be driven
// independently; see simnet.Sim.RunLive).
func (c *Conn) ReadFrom() (Message, error) {
	msg, ok := <-c.recvq
	if !ok {
		return Message{}, ErrClosed
	}
	return msg, nil
}

// ReadFromTimeout is ReadFrom with a wall-clock deadline.
func (c *Conn) ReadFromTimeout(d time.Duration) (Message, error) {
	select {
	case msg, ok := <-c.recvq:
		if !ok {
			return Message{}, ErrClosed
		}
		return msg, nil
	case <-time.After(d):
		return Message{}, ErrDeadline
	}
}

// DialedConn is a Conn bound to one remote.
type DialedConn struct {
	*Conn
	remote addr.UDPAddr
}

// RemoteAddr returns the dialed peer.
func (c *DialedConn) RemoteAddr() addr.UDPAddr { return c.remote }

// Write sends to the dialed peer.
func (c *DialedConn) Write(payload []byte) (int, error) {
	return c.WriteTo(payload, c.remote)
}

// Read blocks for the next datagram from the dialed peer, discarding
// others.
func (c *DialedConn) Read() ([]byte, error) {
	for {
		msg, err := c.ReadFrom()
		if err != nil {
			return nil, err
		}
		if msg.From == c.remote {
			return msg.Payload, nil
		}
	}
}
