package pan_test

import (
	"net/netip"
	"testing"
	"time"

	"sciera/internal/addr"
	"sciera/internal/bootstrap"
	"sciera/internal/combinator"
	"sciera/internal/core"
	"sciera/internal/dispatcher"
	"sciera/internal/pan"
	"sciera/internal/simnet"
	"sciera/internal/slayers"
	"sciera/internal/topology"
)

var (
	c1 = addr.MustParseIA("71-1")
	c2 = addr.MustParseIA("71-2")
	lA = addr.MustParseIA("71-10")
	lB = addr.MustParseIA("71-11")
)

func buildNet(t testing.TB, sim *simnet.Sim, opts core.Options) *core.Network {
	t.Helper()
	topo := topology.New()
	for _, ia := range []addr.IA{c1, c2} {
		if err := topo.AddAS(topology.ASInfo{IA: ia, Core: true}); err != nil {
			t.Fatal(err)
		}
	}
	for _, ia := range []addr.IA{lA, lB} {
		if err := topo.AddAS(topology.ASInfo{IA: ia}); err != nil {
			t.Fatal(err)
		}
	}
	link := func(a, b addr.IA, typ topology.LinkType, lat float64) {
		if _, err := topo.AddLink(topology.LinkEnd{IA: a}, topology.LinkEnd{IA: b}, typ, lat, ""); err != nil {
			t.Fatal(err)
		}
	}
	link(c1, c2, topology.LinkCore, 20)
	link(c1, c2, topology.LinkCore, 50)
	link(c1, lA, topology.LinkParent, 5)
	link(c2, lB, topology.LinkParent, 5)
	n, err := core.Build(topo, sim, opts)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// live starts a sim driver and returns a stopper.
func live(sim *simnet.Sim) func() {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		sim.RunLive(stop)
	}()
	return func() { close(stop); <-done }
}

func hostIn(t *testing.T, n *core.Network, ia addr.IA) *pan.Host {
	t.Helper()
	d, err := n.NewDaemon(ia)
	if err != nil {
		t.Fatal(err)
	}
	return pan.WithDaemon(n.Transport, d)
}

func TestDialAndEcho(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n := buildNet(t, sim, core.Options{Seed: 1})
	defer n.Close()
	stop := live(sim)
	defer stop()

	hA := hostIn(t, n, lA)
	hB := hostIn(t, n, lB)

	server, err := hB.ListenUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	// Server echo loop.
	go func() {
		for {
			msg, err := server.ReadFrom()
			if err != nil {
				return
			}
			if _, err := server.WriteTo(append([]byte("re:"), msg.Payload...), msg.From); err != nil {
				t.Errorf("server write: %v", err)
			}
		}
	}()

	client, err := hA.DialUDP(server.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	reply, err := client.Read()
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "re:hello" {
		t.Fatalf("reply = %q", reply)
	}
	if client.LocalAddr().IA != lA || client.RemoteAddr().IA != lB {
		t.Errorf("addresses: %v -> %v", client.LocalAddr(), client.RemoteAddr())
	}
	// The server answered without any path lookup of its own (reply
	// path), so its daemon saw no lookups for lA.
	lookups, _ := hB.Daemon().Stats()
	if lookups != 0 {
		t.Errorf("server performed %d lookups, want 0 (reply-path answering)", lookups)
	}
}

func TestPolicyOrdering(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n := buildNet(t, sim, core.Options{Seed: 1})
	defer n.Close()
	stop := live(sim)
	defer stop()

	hA := hostIn(t, n, lA)
	conn, err := hA.ListenUDP(0, pan.WithPolicy(pan.Fastest{}))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	paths, err := conn.Paths(lB)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Fatalf("paths = %d, want >= 2 (parallel core links)", len(paths))
	}
	// Fastest first: the 20ms core link beats the 50ms one.
	if paths[0].LatencyMS >= paths[1].LatencyMS {
		t.Errorf("fastest policy ordering: %v then %v", paths[0].LatencyMS, paths[1].LatencyMS)
	}

	// Disjoint policy ranks a path disjoint from the first highest.
	dis := pan.MostDisjoint{References: []*combinator.Path{paths[0]}}
	ordered := dis.Order(paths)
	if ordered[0].Fingerprint == paths[0].Fingerprint && len(ordered) > 1 {
		t.Error("most-disjoint policy returned the reference path first")
	}

	// Sequence policy filters exactly.
	seq := pan.ParseSequence(lA.String() + " " + c1.String() + " " + c2.String() + " " + lB.String())
	filtered := seq.Order(paths)
	for _, p := range filtered {
		if len(p.ASes()) != 4 {
			t.Errorf("sequence let through %v", p.ASes())
		}
	}
	// Wildcard sequence.
	seqW := pan.ParseSequence("0-0 0-0 0-0 0-0")
	if len(seqW.Order(paths)) != len(filtered) {
		t.Error("wildcard sequence mismatch")
	}

	// Interactive policy puts the chosen path first.
	inter := pan.Interactive{Choose: func(ps []*combinator.Path) int { return len(ps) - 1 }}
	io := inter.Order(paths)
	if io[0].Fingerprint != paths[len(paths)-1].Fingerprint {
		t.Error("interactive choice not honoured")
	}
}

func TestWriteToViaExplicitPath(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n := buildNet(t, sim, core.Options{Seed: 1})
	defer n.Close()
	stop := live(sim)
	defer stop()

	hA := hostIn(t, n, lA)
	hB := hostIn(t, n, lB)
	server, _ := hB.ListenUDP(0)
	defer server.Close()
	client, _ := hA.ListenUDP(0)
	defer client.Close()

	paths, err := client.Paths(lB)
	if err != nil || len(paths) < 2 {
		t.Fatalf("paths: %d %v", len(paths), err)
	}
	// Send one message over each path explicitly.
	for i, p := range paths {
		if _, err := client.WriteToVia([]byte{byte(i)}, server.LocalAddr(), p); err != nil {
			t.Fatal(err)
		}
	}
	for range paths {
		if _, err := server.ReadFromTimeout(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
}

func TestASInternalTraffic(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n := buildNet(t, sim, core.Options{Seed: 1})
	defer n.Close()
	stop := live(sim)
	defer stop()

	h := hostIn(t, n, lA)
	a, _ := h.ListenUDP(0)
	defer a.Close()
	b, _ := h.ListenUDP(0)
	defer b.Close()
	if _, err := a.WriteTo([]byte("local"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	msg, err := b.ReadFromTimeout(5 * time.Second)
	if err != nil || string(msg.Payload) != "local" {
		t.Fatalf("local delivery: %v %q", err, msg.Payload)
	}
}

func TestDispatcherMode(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n := buildNet(t, sim, core.Options{Seed: 1, UseDispatcher: true})
	defer n.Close()
	stop := live(sim)
	defer stop()

	hA := hostIn(t, n, lA)
	hB := hostIn(t, n, lB)

	dispB, err := dispatcher.Start(sim, sim.AllocAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer dispB.Close()
	dispA, err := dispatcher.Start(sim, sim.AllocAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer dispA.Close()

	server, err := hB.ListenUDP(7777, pan.WithDispatcher(dispB))
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	go func() {
		for {
			msg, err := server.ReadFrom()
			if err != nil {
				return
			}
			_, _ = server.WriteTo(msg.Payload, msg.From)
		}
	}()

	client, err := hA.DialUDP(server.LocalAddr(), pan.WithDispatcher(dispA))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Write([]byte("via dispatchers")); err != nil {
		t.Fatal(err)
	}
	reply, err := client.Read()
	if err != nil || string(reply) != "via dispatchers" {
		t.Fatalf("reply: %q %v", reply, err)
	}
	if dispB.Forwarded.Load() == 0 || dispA.Forwarded.Load() == 0 {
		t.Errorf("dispatcher forward counts: %d/%d", dispB.Forwarded.Load(), dispA.Forwarded.Load())
	}
	// Port collision on the shared dispatcher is rejected.
	if _, err := hB.ListenUDP(7777, pan.WithDispatcher(dispB)); err == nil {
		t.Error("dispatcher port collision accepted")
	}
}

func TestStandaloneModeBootstrapsItself(t *testing.T) {
	// The virtual clock must carry a realistic date: certificate and
	// TRC validity are checked against it during bootstrap.
	sim := simnet.NewSim(time.Now())
	n := buildNet(t, sim, core.Options{Seed: 1, WithPKI: true})
	defer n.Close()

	// The AS runs a bootstrap server + LAN hints for its campus.
	rtr, _ := n.Router(lA)
	svc, _ := n.ControlService(lA)
	bs := &bootstrap.Server{
		Topology: bootstrap.TopologyFile{
			IA:          lA,
			RouterAddr:  rtr.LocalAddr(),
			ControlAddr: svc.Addr(),
		},
		Signer: n.Signer(lA),
		TRCs:   n.TRCs(),
	}
	if err := bs.Start(sim, netip.AddrPortFrom(sim.AllocAddr(), bootstrap.PortBootstrap)); err != nil {
		t.Fatal(err)
	}
	defer bs.Close()
	lan, err := bootstrap.StartLAN(sim, sim.AllocAddr, bootstrap.LANConfig{
		BootstrapServer: bs.Addr(),
		DHCPVIVO:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lan.Close()

	stop := live(sim)
	defer stop()

	// The application has NO pre-installed components: AutoInit falls
	// back to standalone and bootstraps in-process.
	hostCh := make(chan *pan.Host, 1)
	errCh := make(chan error, 1)
	pan.AutoInit(sim, nil, bootstrap.Env{}, func(h *pan.Host, err error) {
		if err != nil {
			errCh <- err
			return
		}
		hostCh <- h
	})
	var hA *pan.Host
	select {
	case hA = <-hostCh:
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("standalone init timed out")
	}
	defer hA.Close()
	if hA.Mode() != pan.ModeStandalone {
		t.Errorf("mode = %v", hA.Mode())
	}
	if hA.LocalIA() != lA {
		t.Errorf("IA = %v", hA.LocalIA())
	}

	// And it can talk across the network immediately.
	hB := hostIn(t, n, lB)
	server, _ := hB.ListenUDP(0)
	defer server.Close()
	client, err := hA.DialUDP(server.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Write([]byte("just works")); err != nil {
		t.Fatal(err)
	}
	msg, err := server.ReadFromTimeout(5 * time.Second)
	if err != nil || string(msg.Payload) != "just works" {
		t.Fatalf("standalone traffic: %q %v", msg.Payload, err)
	}
}

func TestInstantFailover(t *testing.T) {
	// Section 4.7: "switching paths instantly if performance worsens".
	// A link on the active path dies; the SCMP revocation flushes the
	// daemon cache and the very next write takes the surviving circuit.
	sim := simnet.NewSim(time.Unix(0, 0))
	n := buildNet(t, sim, core.Options{Seed: 1})
	defer n.Close()
	stop := live(sim)
	defer stop()

	hA := hostIn(t, n, lA)
	hB := hostIn(t, n, lB)
	server, err := hB.ListenUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := hA.ListenUDP(0, pan.WithPolicy(pan.Fastest{}))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var revocations int
	client.OnSCMPError = func(_ *slayers.SCMP) { revocations++ }

	// Baseline delivery over the fastest (20ms) circuit.
	if _, err := client.WriteTo([]byte("one"), server.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if _, err := server.ReadFromTimeout(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Kill the 20ms core circuit (data plane only: cached paths go
	// stale, exactly the failure mode SCMP revocation handles).
	for _, l := range n.Topo.Links() {
		if l.Type == topology.LinkCore && l.LatencyMS == 20 {
			if err := n.Topo.SetLinkUp(l.ID, false); err != nil {
				t.Fatal(err)
			}
		}
	}

	// The next write rides the stale path and dies; the router's SCMP
	// ExternalInterfaceDown flushes the cache. Refresh the control
	// plane (the periodic beaconing) and retry: traffic must flow over
	// the surviving 50ms circuit without re-dialing.
	if _, err := client.WriteTo([]byte("lost"), server.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if _, err := server.ReadFromTimeout(500 * time.Millisecond); err == nil {
		t.Fatal("packet crossed a dead circuit")
	}
	if err := n.RefreshControlPlane(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	delivered := false
	for time.Now().Before(deadline) {
		if _, err := client.WriteTo([]byte("failover"), server.LocalAddr()); err != nil {
			continue
		}
		if msg, err := server.ReadFromTimeout(time.Second); err == nil && string(msg.Payload) == "failover" {
			delivered = true
			break
		}
	}
	if !delivered {
		t.Fatal("no failover to the surviving circuit")
	}
	if revocations == 0 {
		t.Error("no SCMP revocation observed")
	}
}

func TestAutoInitPrefersSharedDaemon(t *testing.T) {
	sim := simnet.NewSim(time.Unix(0, 0))
	n := buildNet(t, sim, core.Options{Seed: 1})
	defer n.Close()
	d, err := n.NewDaemon(lA)
	if err != nil {
		t.Fatal(err)
	}
	var h *pan.Host
	pan.AutoInit(sim, d, bootstrap.Env{}, func(got *pan.Host, err error) {
		if err != nil {
			t.Error(err)
			return
		}
		h = got
	})
	if h == nil || h.Mode() != pan.ModeDaemon {
		t.Fatalf("host = %+v", h)
	}
}
